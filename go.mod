module dialga

go 1.22
