package dialga

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func ExampleCodec() {
	codec, _ := NewCodec(4, 2) // RS(6,4): 4 data + 2 parity

	payload := []byte("the quick brown fox jumps over the lazy dog!")
	data, _ := Split(payload, 4)
	parity, _ := codec.EncodeAppend(data)

	stripe := append(data, parity...)
	stripe[1], stripe[4] = nil, nil // lose one data and one parity block
	_ = codec.Reconstruct(stripe)

	restored, _ := Join(stripe[:4], len(payload))
	fmt.Println(string(restored))
	// Output: the quick brown fox jumps over the lazy dog!
}

func ExampleLRC() {
	lrc, _ := NewLRC(4, 2, 2) // 4 data, 2 global RS, 2 local XOR parities

	data, _ := Split([]byte("locally repairable codes cut repair traffic"), 4)
	global, local, _ := lrc.EncodeAppend(data)

	stripe := append(append(data, global...), local...)
	stripe[0] = nil // single failure: local repair reads k/l = 2 blocks
	fmt.Println("repair cost:", lrc.RepairCost(stripe, 0), "blocks")
	_ = lrc.Reconstruct(stripe)
	restored, _ := Join(stripe[:4], 43)
	fmt.Println(string(restored))
	// Output:
	// repair cost: 2 blocks
	// locally repairable codes cut repair traffic
}

func TestFacadeCodecRoundtrip(t *testing.T) {
	c, err := NewCodec(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 6 || c.M() != 3 {
		t.Fatal("accessors wrong")
	}
	payload := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(payload)
	data, err := Split(payload, 6)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := c.EncodeAppend(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatal("verify failed")
	}
	stripe := append(append([][]byte{}, data...), parity...)
	stripe[0], stripe[4], stripe[7] = nil, nil, nil
	if err := c.Reconstruct(stripe); err != nil {
		t.Fatal(err)
	}
	back, err := Join(stripe[:6], len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestFacadeCodecEncodeInPlaceAndUpdate(t *testing.T) {
	c, _ := NewCodec(4, 2)
	r := rand.New(rand.NewSource(2))
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 256)
		r.Read(data[i])
	}
	parity := make([][]byte, 2)
	for i := range parity {
		parity[i] = make([]byte, 256)
	}
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	newBlock := make([]byte, 256)
	r.Read(newBlock)
	if err := c.Update(1, data[1], newBlock, parity); err != nil {
		t.Fatal(err)
	}
	data[1] = newBlock
	ok, _ := c.Verify(data, parity)
	if !ok {
		t.Fatal("update broke parity")
	}
}

func TestFacadeLRC(t *testing.T) {
	c, err := NewLRC(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 12 || c.M() != 4 || c.L() != 2 {
		t.Fatal("accessors wrong")
	}
	r := rand.New(rand.NewSource(3))
	data := make([][]byte, 12)
	for i := range data {
		data[i] = make([]byte, 128)
		r.Read(data[i])
	}
	global, local, err := c.EncodeAppend(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(data, global, local)
	if err != nil || !ok {
		t.Fatal("verify failed")
	}
	stripe := append(append(append([][]byte{}, data...), global...), local...)
	want := stripe[3]
	stripe[3] = nil
	if cost := c.RepairCost(stripe, 3); cost != 6 {
		t.Fatalf("local repair cost = %d, want 6", cost)
	}
	if err := c.Reconstruct(stripe); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stripe[3], want) {
		t.Fatal("repair wrong")
	}
}

// TestFacadeStreamRoundtrip drives the streaming pipeline end to end
// through the public facade: encode a payload to in-memory shard
// streams, lose m of them, and decode the payload back.
func TestFacadeStreamRoundtrip(t *testing.T) {
	codec, err := NewCodec(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{Codec: codec, StripeSize: 256 << 10, Workers: 4}
	payload := make([]byte, 3<<20+999)
	rand.New(rand.NewSource(77)).Read(payload)

	bufs := make([]bytes.Buffer, 12)
	writers := make([]io.Writer, 12)
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	st, err := StreamEncode(context.Background(), opts, bytes.NewReader(payload), writers)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesIn != uint64(len(payload)) {
		t.Fatalf("BytesIn = %d, want %d", st.BytesIn, len(payload))
	}
	if st.Stripes != 13 { // ceil((3 MiB + 999) / 256 KiB)
		t.Fatalf("Stripes = %d, want 13", st.Stripes)
	}

	readers := make([]io.Reader, 12)
	for i := range bufs {
		readers[i] = bytes.NewReader(bufs[i].Bytes())
	}
	readers[0], readers[3], readers[8], readers[11] = nil, nil, nil, nil // lose m=4 shards
	var out bytes.Buffer
	st, err = StreamDecode(context.Background(), opts, readers, &out, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("streaming roundtrip corrupted the payload")
	}
	if st.Reconstructed != 13 {
		t.Fatalf("Reconstructed = %d, want every stripe", st.Reconstructed)
	}
}

// TestFacadeStreamHealing flips bytes inside encoded shard streams
// and checks the default CRC-32C mode detects and heals them through
// the public facade, surfacing the integrity counters; beyond the
// parity budget the typed ErrTooManyCorrupt surfaces instead.
func TestFacadeStreamHealing(t *testing.T) {
	codec, err := NewCodec(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{Codec: codec, StripeSize: 4 << 10, Workers: 2}
	payload := make([]byte, 5<<10+333)
	rand.New(rand.NewSource(5)).Read(payload)

	encodeShards := func() [][]byte {
		bufs := make([]bytes.Buffer, 6)
		writers := make([]io.Writer, 6)
		for i := range bufs {
			writers[i] = &bufs[i]
		}
		if _, err := StreamEncode(context.Background(), opts, bytes.NewReader(payload), writers); err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, 6)
		for i := range bufs {
			out[i] = bufs[i].Bytes()
		}
		return out
	}

	// Corrupt one byte in two different shards (within the parity
	// budget m=2): decode heals and reports it.
	shards := encodeShards()
	shards[1][10] ^= 0xff
	shards[4][100] ^= 0x01
	readers := make([]io.Reader, 6)
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	var out bytes.Buffer
	st, err := StreamDecode(context.Background(), opts, readers, &out, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("healed decode returned wrong bytes")
	}
	if st.ShardsCorrupted != 2 {
		t.Fatalf("ShardsCorrupted = %d, want 2", st.ShardsCorrupted)
	}
	if st.StripesHealed == 0 {
		t.Fatal("StripesHealed = 0 after healing corrupt blocks")
	}

	// Corrupt m+1=3 shards in the same stripe: typed failure, no
	// silent wrong bytes.
	shards = encodeShards()
	shards[0][20] ^= 0x80
	shards[2][25] ^= 0x80
	shards[5][30] ^= 0x80
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	out.Reset()
	if _, err := StreamDecode(context.Background(), opts, readers, &out, int64(len(payload))); !errors.Is(err, ErrTooManyCorrupt) {
		t.Fatalf("decode with m+1 corrupt shards returned %v, want ErrTooManyCorrupt", err)
	}
}

// TestFacadeStreamLRC runs the pipeline with an LRC codec through the
// facade adapter.
func TestFacadeStreamLRC(t *testing.T) {
	lrc, err := NewLRC(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := StreamOptions{Codec: lrc.StreamCodec(), StripeSize: 6 * 1024, Workers: 2}
	payload := make([]byte, 100000)
	rand.New(rand.NewSource(78)).Read(payload)
	bufs := make([]bytes.Buffer, 10) // 6 data + 2 global + 2 local
	writers := make([]io.Writer, 10)
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if _, err := StreamEncode(context.Background(), opts, bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, 10)
	for i := range bufs {
		readers[i] = bytes.NewReader(bufs[i].Bytes())
	}
	readers[1] = nil // single data failure: locally repairable
	var out bytes.Buffer
	if _, err := StreamDecode(context.Background(), opts, readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("LRC streaming roundtrip corrupted the payload")
	}
}

func TestFacadeSplitCopy(t *testing.T) {
	payload := []byte("aliasing is a contract, not an accident")
	orig := append([]byte(nil), payload...)
	shards, err := SplitCopy(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shards {
		for i := range s {
			s[i] = 0xAA
		}
	}
	if !bytes.Equal(payload, orig) {
		t.Fatal("SplitCopy shards alias the input")
	}
}

func TestFacadeInvalidParams(t *testing.T) {
	if _, err := NewCodec(0, 4); err == nil {
		t.Fatal("bad codec params accepted")
	}
	if _, err := NewLRC(10, 4, 3); err == nil {
		t.Fatal("l not dividing k accepted")
	}
}

func TestFacadeFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d figure ids", len(ids))
	}
	// The returned slice is a copy.
	ids[0] = "mutated"
	if FigureIDs()[0] == "mutated" {
		t.Fatal("FigureIDs leaked internal storage")
	}
}

func TestFacadeReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("reproduction smoke skipped in -short mode")
	}
	f, err := Reproduce("fig03", true)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig03" || len(f.Series) == 0 {
		t.Fatal("bad figure")
	}
	if _, err := Reproduce("nope", true); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestFacadeObservability drives a traced, metered roundtrip through
// the public facade: the registry accumulates stream_* series for both
// directions, Expose renders them in Prometheus text format, and the
// tracer retains per-stripe spans.
func TestFacadeObservability(t *testing.T) {
	codec, err := NewCodec(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	tr := NewStreamTracer(0) // DefaultTraceCapacity
	opts := StreamOptions{Codec: codec, StripeSize: 64 << 10, Workers: 2, Metrics: reg, Trace: tr}
	payload := make([]byte, 1<<20+123)
	rand.New(rand.NewSource(5)).Read(payload)

	bufs := make([]bytes.Buffer, 6)
	writers := make([]io.Writer, 6)
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if _, err := StreamEncode(context.Background(), opts, bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, 6)
	for i := range bufs {
		readers[i] = bytes.NewReader(bufs[i].Bytes())
	}
	readers[1] = nil // force reconstruction so decode-side series move
	var out bytes.Buffer
	if _, err := StreamDecode(context.Background(), opts, readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("observed roundtrip corrupted the payload")
	}

	var text bytes.Buffer
	if err := reg.Expose(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`stream_stripes_total{pipeline="decode"}`,
		`stream_stripes_total{pipeline="encode"}`,
		`stream_reconstructed_total{pipeline="decode"}`,
		`stream_stripe_latency_us_bucket`,
		`shardio_deadline_us`,
	} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Fatalf("exposition missing %s:\n%s", want, text.String())
		}
	}
	if tr.Total() == 0 {
		t.Fatal("tracer recorded no spans")
	}
	spans := tr.Snapshot()
	if len(spans) == 0 {
		t.Fatal("tracer snapshot empty")
	}
	seen := map[string]bool{}
	for _, sp := range spans {
		for _, ev := range sp.Events {
			seen[ev.Name] = true
		}
	}
	for _, want := range []string{"read", "emit"} {
		if !seen[want] {
			t.Fatalf("no %q span event recorded (saw %v)", want, seen)
		}
	}
}
