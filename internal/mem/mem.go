// Package mem defines the shared vocabulary of the memory-hierarchy
// simulator: addresses, access granularities, device kinds, SIMD widths
// and the calibrated latency/cost model.
//
// The DIALGA paper's testbed (Xeon Gold 6240, 6 channels of DDR4 +
// Optane DCPMM 100) is not reachable from Go, so the simulator models
// the architectural mechanisms the paper's observations rest on:
// the 64 B cacheline / 256 B XPLine granularity mismatch, the on-DIMM
// read buffer, the L2 stream prefetcher, and frequency-independent
// memory latency. Absolute numbers are calibrated to the Optane
// characterization literature; experiments compare shapes, not GB/s.
package mem

import "fmt"

// Addr is a simulated physical byte address.
type Addr uint64

// Access granularities (bytes).
const (
	// CachelineSize is the CPU cache transfer granularity.
	CachelineSize = 64
	// XPLineSize is the PM media access granularity (Optane XPLine).
	XPLineSize = 256
	// PageSize is the 4 KiB boundary hardware prefetchers do not cross.
	PageSize = 4096
)

// Line returns the cacheline index of addr.
func (a Addr) Line() uint64 { return uint64(a) / CachelineSize }

// LineAddr returns addr rounded down to its cacheline base.
func (a Addr) LineAddr() Addr { return a &^ (CachelineSize - 1) }

// XPLine returns the XPLine index of addr.
func (a Addr) XPLine() uint64 { return uint64(a) / XPLineSize }

// Page returns the 4 KiB page index of addr.
func (a Addr) Page() uint64 { return uint64(a) / PageSize }

// PageOffset returns the byte offset of addr within its page.
func (a Addr) PageOffset() uint64 { return uint64(a) % PageSize }

// DeviceKind distinguishes the two memory technologies of the testbed.
type DeviceKind int

const (
	// DRAM is conventional DDR4.
	DRAM DeviceKind = iota
	// PM is Optane-style persistent memory with an on-DIMM read buffer.
	PM
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case PM:
		return "PM"
	}
	return fmt.Sprintf("DeviceKind(%d)", int(k))
}

// SIMDWidth is the vector register width used by the encode kernels.
type SIMDWidth int

const (
	// AVX256 processes 32 bytes per vector op.
	AVX256 SIMDWidth = 32
	// AVX512 processes 64 bytes per vector op (one cacheline).
	AVX512 SIMDWidth = 64
)

// String implements fmt.Stringer.
func (w SIMDWidth) String() string {
	switch w {
	case AVX256:
		return "AVX256"
	case AVX512:
		return "AVX512"
	}
	return fmt.Sprintf("SIMDWidth(%d)", int(w))
}

// Config carries the full hardware model configuration. The zero value
// is not usable; start from DefaultConfig.
type Config struct {
	// CPUFreqGHz converts compute cycles to nanoseconds. Memory
	// latencies are specified in ns and are frequency-independent,
	// which is what produces the paper's Fig. 4 plateau on PM.
	CPUFreqGHz float64
	// SIMD selects the vector width of the encode kernel.
	SIMD SIMDWidth

	// Cache geometry.
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int

	// Cache hit latencies, cycles.
	L1LatCycles, L2LatCycles, LLCLatCycles float64

	// Device timing.
	DRAMLatencyNS float64 // DRAM load-to-use latency
	PMBufHitNS    float64 // PM load hitting the on-DIMM read buffer
	PMMediaNS     float64 // PM load requiring a media (XPLine) fetch

	// Channel geometry and bandwidth.
	Channels         int
	DRAMChanGBps     float64 // per-channel DRAM bandwidth
	PMMediaReadGBps  float64 // per-channel PM media read bandwidth
	PMMediaWriteGBps float64 // per-channel PM media write bandwidth
	PMReadBufBytes   int     // total on-DIMM read buffer capacity
	// PMLineSize is the PM media access granularity in bytes (the
	// XPLine on Optane: 256 B; flash-backed devices such as Samsung
	// CMM-H use larger internal pages — §6 "Generality").
	PMLineSize int

	// Core microarchitecture.
	MLP                    int     // line-fill buffers: max outstanding demand fills
	SQDepth                int     // L2 superqueue: max outstanding memory fills of any kind
	LoadIssueCyc           float64 // issue cost per demand load
	StoreIssueCyc          float64 // issue cost per non-temporal store
	PrefetchIssueCyc       float64 // issue cost per software prefetch (branchless)
	ComputeCycPerVecParity float64 // GF mul-acc cycles per SIMD vector per parity
	XORCycPerVec           float64 // XOR cycles per SIMD vector (XOR-based codecs)

	// Hardware prefetcher parameters.
	HWPrefetchEnabled bool
	StreamTableSize   int // unidirectional streams tracked (32 CLX, 64 ICX)
	StreamTrigger     int // sequential hits before first issue
	StreamMaxDegree   int // max lines prefetched ahead
}

// DefaultConfig returns the calibrated model of the paper's testbed:
// Xeon Gold 6240 (3.3 GHz, 32 KB L1d, 1 MB L2, 24.75 MB LLC) with six
// channels of DDR4-2666 and Optane DCPMM 100.
func DefaultConfig() Config {
	return Config{
		CPUFreqGHz: 3.3,
		SIMD:       AVX512,

		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 1 << 20, L2Ways: 16,
		LLCSize: 24.75 * (1 << 20), LLCWays: 11,

		L1LatCycles: 4, L2LatCycles: 14, LLCLatCycles: 48,

		DRAMLatencyNS: 85,
		PMBufHitNS:    160,
		PMMediaNS:     330,

		Channels:         6,
		DRAMChanGBps:     14.0,
		PMMediaReadGBps:  6.0,
		PMMediaWriteGBps: 2.0,
		PMReadBufBytes:   96 << 10,
		PMLineSize:       XPLineSize,

		MLP:                    10,
		SQDepth:                32,
		LoadIssueCyc:           3,
		StoreIssueCyc:          2,
		PrefetchIssueCyc:       3,
		ComputeCycPerVecParity: 5,
		XORCycPerVec:           1.5,

		HWPrefetchEnabled: true,
		StreamTableSize:   32,
		StreamTrigger:     4,
		StreamMaxDegree:   4,
	}
}

// CMMHConfig returns a model of a flash-backed memory-semantic device
// in the spirit of Samsung CMM-H (§6 "Generality"): a much larger
// internal DRAM buffer hiding a large-granularity, high-latency flash
// tier. DIALGA's mechanisms target exactly this structure — higher
// latency than DRAM, an internal buffer, and a granularity mismatch —
// so its scheduling transfers.
func CMMHConfig() Config {
	cfg := DefaultConfig()
	cfg.PMLineSize = 4096        // flash page granularity
	cfg.PMReadBufBytes = 4 << 20 // multi-MB internal DRAM buffer
	cfg.PMBufHitNS = 140         // near-DRAM on buffer hit
	cfg.PMMediaNS = 1800         // flash-tier read on miss
	cfg.PMMediaReadGBps = 3.0    // per-channel flash read bandwidth
	cfg.PMMediaWriteGBps = 1.0
	return cfg
}

// CyclesToNS converts cycles to nanoseconds at the configured frequency.
func (c *Config) CyclesToNS(cycles float64) float64 { return cycles / c.CPUFreqGHz }

// NSToCycles converts nanoseconds to cycles at the configured frequency.
func (c *Config) NSToCycles(ns float64) float64 { return ns * c.CPUFreqGHz }

// VectorsPerLine returns how many SIMD ops cover one 64 B cacheline.
func (c *Config) VectorsPerLine() float64 {
	return float64(CachelineSize) / float64(c.SIMD)
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.CPUFreqGHz <= 0 {
		return fmt.Errorf("mem: CPUFreqGHz must be positive, got %g", c.CPUFreqGHz)
	}
	if c.SIMD != AVX256 && c.SIMD != AVX512 {
		return fmt.Errorf("mem: unsupported SIMD width %d", c.SIMD)
	}
	if c.Channels <= 0 {
		return fmt.Errorf("mem: Channels must be positive, got %d", c.Channels)
	}
	if c.MLP <= 0 {
		return fmt.Errorf("mem: MLP must be positive, got %d", c.MLP)
	}
	if c.SQDepth <= 0 {
		return fmt.Errorf("mem: SQDepth must be positive, got %d", c.SQDepth)
	}
	if c.PMLineSize < CachelineSize || c.PMLineSize%CachelineSize != 0 {
		return fmt.Errorf("mem: PMLineSize %d must be a multiple of the cacheline size", c.PMLineSize)
	}
	if c.PMReadBufBytes < c.PMLineSize {
		return fmt.Errorf("mem: PM read buffer smaller than one media line")
	}
	for _, g := range []struct {
		name       string
		size, ways int
	}{{"L1", c.L1Size, c.L1Ways}, {"L2", c.L2Size, c.L2Ways}, {"LLC", c.LLCSize, c.LLCWays}} {
		if g.size <= 0 || g.ways <= 0 {
			return fmt.Errorf("mem: %s cache geometry invalid (%d bytes, %d ways)", g.name, g.size, g.ways)
		}
		if g.size%(g.ways*CachelineSize) != 0 {
			return fmt.Errorf("mem: %s size %d not divisible by ways*linesize", g.name, g.size)
		}
	}
	return nil
}
