package mem

import "testing"

func TestAddrHelpers(t *testing.T) {
	a := Addr(4096 + 256 + 64 + 3)
	if a.Line() != (4096+256+64+3)/64 {
		t.Fatal("Line wrong")
	}
	if a.LineAddr() != Addr(4096+256+64) {
		t.Fatal("LineAddr wrong")
	}
	if a.XPLine() != (4096+256+64+3)/256 {
		t.Fatal("XPLine wrong")
	}
	if a.Page() != 1 {
		t.Fatal("Page wrong")
	}
	if a.PageOffset() != 256+64+3 {
		t.Fatal("PageOffset wrong")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.CPUFreqGHz = 0 },
		func(c *Config) { c.SIMD = 7 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.MLP = 0 },
		func(c *Config) { c.PMReadBufBytes = 1 },
		func(c *Config) { c.L1Size = 0 },
		func(c *Config) { c.L2Size = 100 }, // not divisible
	}
	for i, f := range mut {
		cfg := DefaultConfig()
		f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestFrequencyConversion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPUFreqGHz = 2.0
	if cfg.CyclesToNS(10) != 5 {
		t.Fatal("CyclesToNS wrong")
	}
	if cfg.NSToCycles(5) != 10 {
		t.Fatal("NSToCycles wrong")
	}
}

func TestVectorsPerLine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SIMD = AVX512
	if cfg.VectorsPerLine() != 1 {
		t.Fatal("AVX512 should cover a line in 1 vector")
	}
	cfg.SIMD = AVX256
	if cfg.VectorsPerLine() != 2 {
		t.Fatal("AVX256 should need 2 vectors per line")
	}
}

func TestStringers(t *testing.T) {
	if DRAM.String() != "DRAM" || PM.String() != "PM" {
		t.Fatal("DeviceKind strings wrong")
	}
	if AVX256.String() != "AVX256" || AVX512.String() != "AVX512" {
		t.Fatal("SIMDWidth strings wrong")
	}
	if DeviceKind(9).String() == "" || SIMDWidth(9).String() == "" {
		t.Fatal("unknown values should still format")
	}
}
