package harness

import (
	"fmt"

	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

// Defaults shared across experiments (§5.1): m = 4 parity blocks, 1 KB
// blocks, PM source, AVX512, 3.3 GHz.
const (
	defaultM     = 4
	defaultBlock = 1024
)

func (r *Runner) kSweep() []int {
	if r.Quick {
		return []int{8, 24, 48}
	}
	return []int{4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 56, 64}
}

func (r *Runner) threadSweep() []int {
	if r.Quick {
		return []int{1, 4, 18}
	}
	return []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// baseSpec returns the common configuration for a strategy run.
func baseSpec(strat Strategy, k, m, block, threads int) RunSpec {
	s := RunSpec{
		K: k, M: m, BlockSize: block, Threads: threads,
		Source: mem.PM, HWP: true, Strategy: strat,
	}
	if strat == StratISALNoPF {
		s.HWP = false
		s.Strategy = StratISAL
	}
	return s
}

// Fig03 reproduces Figure 3: RS(12,8) encoding throughput and L3 cache
// miss cycles with data sourced from DRAM vs PM, hardware prefetcher
// off/on.
func (r *Runner) Fig03() (*Figure, error) {
	f := &Figure{
		ID:      "fig03",
		Title:   "RS(12,8) encoding by load source and HW prefetcher",
		XName:   "config",
		YName:   "throughput GB/s | miss cycles/load",
		XLabels: []string{"DRAM/pf-off", "DRAM/pf-on", "PM/pf-off", "PM/pf-on"},
	}
	for _, src := range []mem.DeviceKind{mem.DRAM, mem.PM} {
		for _, hwp := range []bool{false, true} {
			s := baseSpec(StratISAL, 8, defaultM, defaultBlock, 1)
			s.Source = src
			s.HWP = hwp
			res, err := r.Run(s)
			if err != nil {
				return nil, err
			}
			cfg := r.config(s)
			f.AddPoint("throughput", res.ThroughputGBps)
			f.AddPoint("missCyc/load", res.MissCyclesPerLoad(&cfg))
		}
	}
	return f, nil
}

// Fig04 reproduces Figure 4: RS(12,8) encoding throughput across CPU
// frequencies, PM vs DRAM, AVX512 vs AVX256 — the compute-vs-memory
// bottleneck separation.
func (r *Runner) Fig04() (*Figure, error) {
	freqs := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.3}
	if r.Quick {
		freqs = []float64{1.0, 2.0, 3.3}
	}
	f := &Figure{
		ID:    "fig04",
		Title: "RS(12,8) encoding throughput vs CPU frequency",
		XName: "GHz",
		YName: "throughput GB/s",
	}
	for _, fr := range freqs {
		f.XLabels = append(f.XLabels, fmt.Sprintf("%.1f", fr))
		for _, src := range []mem.DeviceKind{mem.PM, mem.DRAM} {
			for _, simd := range []mem.SIMDWidth{mem.AVX512, mem.AVX256} {
				s := baseSpec(StratISAL, 8, defaultM, defaultBlock, 1)
				s.Source = src
				s.Freq = fr
				s.SIMD = simd
				res, err := r.Run(s)
				if err != nil {
					return nil, err
				}
				f.AddPoint(fmt.Sprintf("%s/%s", src, simd), res.ThroughputGBps)
			}
		}
	}
	return f, nil
}

// Fig05 reproduces Figure 5: encoding throughput, useless hardware
// prefetch ratio, and L2 prefetch ratio as the stripe width k grows
// (m=4, 4 KB blocks) — the stream-table capacity cliff.
func (r *Runner) Fig05() (*Figure, error) {
	f := &Figure{
		ID:    "fig05",
		Title: "stripe-width sweep, 4KB blocks (stream-table capacity)",
		XName: "k",
		YName: "GB/s | ratio",
	}
	for _, k := range r.kSweep() {
		f.XLabels = append(f.XLabels, itoa(k))
		res, err := r.Run(baseSpec(StratISAL, k, defaultM, 4096, 1))
		if err != nil {
			return nil, err
		}
		f.AddPoint("throughput", res.ThroughputGBps)
		f.AddPoint("uselessPF", res.UselessPrefetchRatio())
		f.AddPoint("l2PFratio", res.L2PrefetchRatio())
	}
	return f, nil
}

// Fig06 reproduces Figure 6: RS(28,24) throughput and PM media read
// amplification across block sizes, HW prefetcher on/off.
func (r *Runner) Fig06() (*Figure, error) {
	blocks := []int{256, 512, 1024, 2048, 3072, 4096, 5120}
	if r.Quick {
		blocks = []int{256, 1024, 4096}
	}
	f := &Figure{
		ID:    "fig06",
		Title: "RS(28,24) block-size sweep on PM",
		XName: "block",
		YName: "GB/s | media amplification",
	}
	for _, bs := range blocks {
		f.XLabels = append(f.XLabels, bytesLabel(bs))
		on, err := r.Run(baseSpec(StratISAL, 24, defaultM, bs, 1))
		if err != nil {
			return nil, err
		}
		off, err := r.Run(baseSpec(StratISALNoPF, 24, defaultM, bs, 1))
		if err != nil {
			return nil, err
		}
		f.AddPoint("tput/pf-on", on.ThroughputGBps)
		f.AddPoint("tput/pf-off", off.ThroughputGBps)
		f.AddPoint("mediaAmp/pf-on",
			float64(on.MediaReadBytes)/float64(on.EncodeReadBytes))
	}
	return f, nil
}

// Fig07 reproduces Figure 7: RS(28,24) multi-thread scalability with
// the HW prefetcher on vs off (4 KB blocks, the §3.2 default) — read
// buffer thrashing under concurrency.
func (r *Runner) Fig07() (*Figure, error) {
	f := &Figure{
		ID:    "fig07",
		Title: "RS(28,24) 4KB multi-thread scalability on PM",
		XName: "threads",
		YName: "aggregate GB/s",
	}
	for _, t := range r.threadSweep() {
		f.XLabels = append(f.XLabels, itoa(t))
		on, err := r.throughputAvg(baseSpec(StratISAL, 24, defaultM, 4096, t))
		if err != nil {
			return nil, err
		}
		off, err := r.throughputAvg(baseSpec(StratISALNoPF, 24, defaultM, 4096, t))
		if err != nil {
			return nil, err
		}
		f.AddPoint("pf-on", on)
		f.AddPoint("pf-off", off)
	}
	return f, nil
}

// strategies returns the §5 comparison set for a given k (Zerasure has
// no result beyond its search horizon, mirroring the paper's missing
// wide-stripe points).
func comparedStrategies() []Strategy {
	return []Strategy{StratZerasure, StratCerasure, StratISAL, StratISALD, StratDialga}
}

func (r *Runner) runStrategy(strat Strategy, k, m, block, threads int) (float64, error) {
	s := baseSpec(strat, k, m, block, threads)
	return r.throughputAvg(s)
}

// throughputAvg runs the spec Repeats times (multi-threaded runs only)
// with varied layout seeds and returns the mean throughput.
func (r *Runner) throughputAvg(s RunSpec) (float64, error) {
	n := r.Repeats
	if n < 1 || s.Threads <= 1 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		s.Seed = int64(i * 1009)
		res, err := r.Run(s)
		if err != nil {
			return NaN, err
		}
		sum += res.ThroughputGBps
	}
	return sum / float64(n), nil
}

// Fig10 reproduces Figure 10: encoding throughput across stripe widths
// for all five systems (m=4, 1 KB blocks).
func (r *Runner) Fig10() (*Figure, error) {
	f := &Figure{
		ID:    "fig10",
		Title: "encoding throughput vs stripe width (m=4, 1KB)",
		XName: "k",
		YName: "GB/s",
	}
	for _, k := range r.kSweep() {
		f.XLabels = append(f.XLabels, itoa(k))
		for _, st := range comparedStrategies() {
			if st == StratZerasure && k > 32 {
				f.AddPoint(string(st), NaN)
				continue
			}
			y, err := r.runStrategy(st, k, defaultM, defaultBlock, 1)
			if err != nil {
				return nil, err
			}
			f.AddPoint(string(st), y)
		}
	}
	f.Notes = append(f.Notes, "Zerasure is missing for k>32: its annealing search does not converge (§5.2.1)")
	return f, nil
}

// Fig11 reproduces Figure 11: encoding throughput across parity counts
// m for narrow, medium and wide stripes (1 KB blocks).
func (r *Runner) Fig11() (*Figure, error) {
	ms := []int{2, 4, 6, 8}
	ks := []int{8, 24, 48}
	if r.Quick {
		ms = []int{2, 8}
		ks = []int{8, 48}
	}
	f := &Figure{
		ID:    "fig11",
		Title: "encoding throughput vs parity count (1KB blocks)",
		XName: "k/m",
		YName: "GB/s",
	}
	for _, k := range ks {
		for _, m := range ms {
			f.XLabels = append(f.XLabels, fmt.Sprintf("k%d/m%d", k, m))
			for _, st := range comparedStrategies() {
				if st == StratZerasure && k > 32 {
					f.AddPoint(string(st), NaN)
					continue
				}
				y, err := r.runStrategy(st, k, m, defaultBlock, 1)
				if err != nil {
					return nil, err
				}
				f.AddPoint(string(st), y)
			}
		}
	}
	return f, nil
}

// Fig12 reproduces Figure 12: encoding throughput across block sizes
// for RS(12,8) and RS(28,24).
func (r *Runner) Fig12() (*Figure, error) {
	blocks := []int{256, 512, 1024, 2048, 4096, 5120}
	if r.Quick {
		blocks = []int{256, 1024, 4096}
	}
	f := &Figure{
		ID:    "fig12",
		Title: "encoding throughput vs block size",
		XName: "k/block",
		YName: "GB/s",
	}
	for _, k := range []int{8, 24} {
		for _, bs := range blocks {
			f.XLabels = append(f.XLabels, fmt.Sprintf("k%d/%s", k, bytesLabel(bs)))
			for _, st := range comparedStrategies() {
				y, err := r.runStrategy(st, k, defaultM, bs, 1)
				if err != nil {
					return nil, err
				}
				f.AddPoint(string(st), y)
			}
		}
	}
	return f, nil
}

// Fig13 reproduces Figure 13: multi-thread scalability of ISA-L,
// the decompose strategy and DIALGA for RS(28,24)@1KB, RS(28,24)@4KB
// and RS(52,48)@1KB.
func (r *Runner) Fig13() (*Figure, error) {
	type panel struct {
		k, block int
	}
	panels := []panel{{24, 1024}, {24, 4096}, {48, 1024}}
	f := &Figure{
		ID:    "fig13",
		Title: "multi-thread encoding scalability",
		XName: "cfg/threads",
		YName: "aggregate GB/s",
	}
	for _, p := range panels {
		for _, t := range r.threadSweep() {
			f.XLabels = append(f.XLabels, fmt.Sprintf("k%d/%s/t%d", p.k, bytesLabel(p.block), t))
			for _, st := range []Strategy{StratISAL, StratISALNoPF, StratISALD, StratDialga} {
				y, err := r.runStrategy(st, p.k, defaultM, p.block, t)
				if err != nil {
					return nil, err
				}
				f.AddPoint(string(st), y)
			}
		}
	}
	return f, nil
}

// Fig14 reproduces Figure 14: decoding throughput across stripe widths.
// Decoding reads k survivor blocks and rebuilds m missing ones; for
// table-lookup codecs the memory pattern equals encoding, while
// XOR-based decode matrices are denser than their optimized encode
// matrices (§5.4).
func (r *Runner) Fig14() (*Figure, error) {
	f := &Figure{
		ID:    "fig14",
		Title: "decoding throughput vs stripe width (m=4 erasures, 1KB)",
		XName: "k",
		YName: "GB/s",
	}
	for _, k := range r.kSweep() {
		f.XLabels = append(f.XLabels, itoa(k))
		for _, st := range comparedStrategies() {
			if st == StratZerasure && k > 32 {
				f.AddPoint(string(st), NaN)
				continue
			}
			y, err := r.runDecode(st, k, defaultM, defaultBlock)
			if err != nil {
				return nil, err
			}
			f.AddPoint(string(st), y)
		}
	}
	return f, nil
}

// Fig15 reproduces Figure 15: AVX256 vs AVX512 encoding throughput.
func (r *Runner) Fig15() (*Figure, error) {
	f := &Figure{
		ID:    "fig15",
		Title: "encoding throughput by SIMD width (1KB blocks)",
		XName: "k/simd",
		YName: "GB/s",
	}
	for _, k := range []int{8, 24} {
		for _, simd := range []mem.SIMDWidth{mem.AVX512, mem.AVX256} {
			f.XLabels = append(f.XLabels, fmt.Sprintf("k%d/%s", k, simd))
			for _, st := range []Strategy{StratCerasure, StratISAL, StratDialga} {
				s := baseSpec(st, k, defaultM, defaultBlock, 1)
				s.SIMD = simd
				res, err := r.Run(s)
				if err != nil {
					return nil, err
				}
				f.AddPoint(string(st), res.ThroughputGBps)
			}
		}
	}
	f.Notes = append(f.Notes, "Zerasure/Cerasure support only AVX256 in the original; here both run at the configured width")
	return f, nil
}

// Fig16 reproduces Figure 16: LRC(k, m, l) encoding throughput. The
// stripe writes m global parities plus l local XOR parities; the higher
// store fraction shrinks DIALGA's edge (§5.6).
func (r *Runner) Fig16() (*Figure, error) {
	type lrcCfg struct{ k, m, l int }
	cfgs := []lrcCfg{{8, 4, 2}, {24, 4, 4}, {48, 4, 4}}
	if r.Quick {
		cfgs = []lrcCfg{{8, 4, 2}, {48, 4, 4}}
	}
	f := &Figure{
		ID:    "fig16",
		Title: "LRC encoding throughput (1KB blocks)",
		XName: "LRC(k,m,l)",
		YName: "GB/s",
	}
	for _, c := range cfgs {
		f.XLabels = append(f.XLabels, fmt.Sprintf("(%d,%d,%d)", c.k, c.m, c.l))
		for _, st := range []Strategy{StratCerasure, StratISAL, StratISALD, StratDialga} {
			y, err := r.runLRC(st, c.k, c.m, c.l)
			if err != nil {
				return nil, err
			}
			f.AddPoint(string(st), y)
		}
	}
	return f, nil
}

// Fig17 reproduces Figure 17: LLC miss cycles per load, normalized, for
// three stripe widths.
func (r *Runner) Fig17() (*Figure, error) {
	f := &Figure{
		ID:    "fig17",
		Title: "memory stall cycles per load (1KB blocks)",
		XName: "k",
		YName: "stall cycles/load",
	}
	for _, k := range []int{8, 24, 48} {
		f.XLabels = append(f.XLabels, itoa(k))
		for _, st := range []Strategy{StratISAL, StratISALD, StratDialga} {
			s := baseSpec(st, k, defaultM, defaultBlock, 1)
			res, err := r.Run(s)
			if err != nil {
				return nil, err
			}
			cfg := r.config(s)
			f.AddPoint(string(st), res.StallCyclesPerLoad(&cfg))
		}
	}
	f.Notes = append(f.Notes, "stall cycles include residual waits of prefetched streams, matching the paper's normalization intent")
	return f, nil
}

// Fig18 reproduces Figure 18: the ablation breakdown. Vanilla disables
// both prefetchers; +SW adds pipelined software prefetching (hill-
// climbed distance); +HW re-enables the hardware prefetcher; +BF adds
// the read-buffer-friendly scheme.
func (r *Runner) Fig18() (*Figure, error) {
	f := &Figure{
		ID:    "fig18",
		Title: "DIALGA breakdown, 1KB single-thread",
		XName: "k",
		YName: "GB/s",
	}
	for _, k := range []int{8, 24, 48} {
		f.XLabels = append(f.XLabels, itoa(k))
		for _, v := range []struct {
			name    string
			hwp, sw bool
			bf      bool
		}{
			{"Vanilla", false, false, false},
			{"+SW", false, true, false},
			{"+HW", true, true, false},
			{"+BF", true, true, true},
		} {
			s := baseSpec(StratDialga, k, defaultM, defaultBlock, 1)
			s.HWP = v.hwp
			y, err := r.runBreakdown(s, v.sw, v.bf)
			if err != nil {
				return nil, err
			}
			f.AddPoint(v.name, y)
		}
	}
	return f, nil
}

// Fig19 reproduces Figure 19: read traffic at the encode, memory
// controller and PM media layers, normalized by the encode-layer
// traffic, for ISA-L and DIALGA at 1 thread (low pressure) and 18
// threads (high pressure).
func (r *Runner) Fig19() (*Figure, error) {
	f := &Figure{
		ID:    "fig19",
		Title: "read traffic per layer, RS(28,24) 1KB",
		XName: "pressure/strategy",
		YName: "bytes normalized to encode layer",
	}
	for _, t := range []int{1, 18} {
		for _, st := range []Strategy{StratISAL, StratDialga} {
			f.XLabels = append(f.XLabels, fmt.Sprintf("t%d/%s", t, st))
			s := baseSpec(st, 24, defaultM, defaultBlock, t)
			res, err := r.Run(s)
			if err != nil {
				return nil, err
			}
			enc := float64(res.EncodeReadBytes)
			f.AddPoint("encode", 1)
			f.AddPoint("controller", float64(res.CtrlReadBytes)/enc)
			f.AddPoint("media", float64(res.MediaReadBytes)/enc)
		}
	}
	return f, nil
}

// All runs every figure in order.
func (r *Runner) All() ([]*Figure, error) {
	runs := []func() (*Figure, error){
		r.Fig03, r.Fig04, r.Fig05, r.Fig06, r.Fig07,
		r.Fig10, r.Fig11, r.Fig12, r.Fig13, r.Fig14,
		r.Fig15, r.Fig16, r.Fig17, r.Fig18, r.Fig19,
	}
	var out []*Figure
	for _, fn := range runs {
		f, err := fn()
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Gen01 is the §6 "Generality" experiment: the same strategies on the
// Optane profile and on a flash-backed CMM-H-style profile (4 KiB media
// lines behind a multi-MB internal DRAM buffer). DIALGA's mechanisms
// target the structure — internal buffer + granularity mismatch + high
// miss latency — so its advantage should transfer.
func (r *Runner) Gen01() (*Figure, error) {
	f := &Figure{
		ID:    "gen01",
		Title: "generality: Optane vs CMM-H-style device (RS(28,24), 1KB)",
		XName: "device/threads",
		YName: "GB/s",
	}
	profiles := []struct {
		name string
		cfg  func() mem.Config
	}{
		{"Optane", nil},
		{"CMM-H", mem.CMMHConfig},
	}
	for _, p := range profiles {
		for _, threads := range []int{1, 8} {
			f.XLabels = append(f.XLabels, fmt.Sprintf("%s/t%d", p.name, threads))
			for _, st := range []Strategy{StratISALNoPF, StratISAL, StratDialga} {
				s := baseSpec(st, 24, defaultM, defaultBlock, threads)
				s.BaseConfig = p.cfg
				res, err := r.Run(s)
				if err != nil {
					return nil, err
				}
				name := string(st)
				if st == StratISALNoPF {
					name = "ISA-L-noPF"
				}
				f.AddPoint(name, res.ThroughputGBps)
			}
		}
	}
	f.Notes = append(f.Notes, "CMM-H profile: 4KB media lines, 4MB internal buffer, 140ns hit / 1800ns miss")
	return f, nil
}

// Mix01 is a motivation experiment beyond the paper's figures: a
// production-like workload whose object (block) sizes vary within one
// run (§3.2 cites the Twitter cache study for exactly this variance).
// Each thread encodes consecutive segments of 4 KB, 1 KB, 512 B and
// 256 B blocks; DIALGA's coordinator re-tunes at each segment via its
// fluctuation re-trigger.
func (r *Runner) Mix01() (*Figure, error) {
	f := &Figure{
		ID:    "mix01",
		Title: "mixed object sizes (RS(28,24); 4KB/1KB/512B/256B segments)",
		XName: "threads",
		YName: "GB/s",
	}
	sizes := []int{4096, 1024, 512, 256}
	for _, threads := range []int{1, 8} {
		f.XLabels = append(f.XLabels, itoa(threads))
		for _, st := range []Strategy{StratISALNoPF, StratISAL, StratDialga} {
			s := baseSpec(st, 24, defaultM, sizes[0], threads)
			res, err := r.RunWith(s, func(l *workload.Layout, cfg *mem.Config) (engine.Program, error) {
				// l's thread id is implicit in its addresses; carve
				// per-segment layouts from disjoint pseudo-thread
				// regions derived from the base layout's region.
				return r.mixedProgram(s, l, cfg, sizes)
			})
			if err != nil {
				return nil, err
			}
			name := string(st)
			if st == StratISALNoPF {
				name = "ISA-L-noPF"
			}
			f.AddPoint(name, res.ThroughputGBps)
		}
	}
	return f, nil
}

// FigureIDs lists every reproducible figure in paper order, plus the
// §6 generality experiment and the mixed-size motivation experiment.
var FigureIDs = []string{
	"fig03", "fig04", "fig05", "fig06", "fig07",
	"fig10", "fig11", "fig12", "fig13", "fig14",
	"fig15", "fig16", "fig17", "fig18", "fig19",
	"gen01", "mix01",
}

// ByID dispatches a single figure by its id ("fig03".."fig19").
func (r *Runner) ByID(id string) (*Figure, error) {
	m := map[string]func() (*Figure, error){
		"fig03": r.Fig03, "fig04": r.Fig04, "fig05": r.Fig05,
		"fig06": r.Fig06, "fig07": r.Fig07, "fig10": r.Fig10,
		"fig11": r.Fig11, "fig12": r.Fig12, "fig13": r.Fig13,
		"fig14": r.Fig14, "fig15": r.Fig15, "fig16": r.Fig16,
		"fig17": r.Fig17, "fig18": r.Fig18, "fig19": r.Fig19,
		"gen01": r.Gen01, "mix01": r.Mix01,
	}
	fn, ok := m[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown figure %q", id)
	}
	return fn()
}
