// Package harness regenerates every table and figure of the paper's
// evaluation (§3 observations and §5 evaluation) on the simulated
// testbed. Each FigXX method returns a Figure whose series carry the
// same quantities the paper plots; dialga-bench renders them as text
// tables or CSV, and EXPERIMENTS.md records them against the paper.
package harness

import (
	"fmt"
	"math"

	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/workload"
	"dialga/internal/xorec"
)

// Strategy names a compared encoding system (§5.1).
type Strategy string

// The compared systems.
const (
	StratZerasure Strategy = "Zerasure"
	StratCerasure Strategy = "Cerasure"
	StratISAL     Strategy = "ISA-L"
	StratISALNoPF Strategy = "ISA-L-noPF"
	StratISALD    Strategy = "ISA-L-D"
	StratDialga   Strategy = "DIALGA"
)

// Runner executes experiments. The zero value runs the full-size
// configuration; Quick trims working sets and sweep points for smoke
// runs (shapes are not trustworthy in quick mode — the working set no
// longer exceeds the LLC).
type Runner struct {
	Quick bool
	// Repeats averages multi-threaded throughput points over this many
	// seeds (min 1). Thrash onset near the knee is bistable in a
	// deterministic simulation, so the thread-sweep figures benefit
	// from averaging.
	Repeats int
	// Verbose, if set, receives one line per completed run.
	Verbose func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Verbose != nil {
		r.Verbose(format, args...)
	}
}

// perThreadBytes returns the working set per thread: it must exceed
// the 24.75 MB LLC single-threaded so streaming behaviour is honest.
func (r *Runner) perThreadBytes(threads int) int {
	if r.Quick {
		if threads == 1 {
			return 8 << 20
		}
		return 4 << 20
	}
	if threads == 1 {
		return 32 << 20
	}
	return 16 << 20
}

// RunSpec is one encode/decode measurement.
type RunSpec struct {
	K, M      int
	BlockSize int
	Threads   int
	Source    mem.DeviceKind
	Freq      float64 // 0 = default 3.3 GHz
	SIMD      mem.SIMDWidth
	HWP       bool
	Params    isal.KernelParams // for fixed-kernel ISA-L runs
	Strategy  Strategy
	LRCGroups int // l > 0 models LRC(k, m-l global, l local)
	Placement workload.Placement
	Seed      int64
	// DialgaOpts overrides the coordinator options for DIALGA runs
	// (used by the Fig. 18 breakdown and the ablations).
	DialgaOpts *dialga.Options
	// BaseConfig overrides the hardware model (nil = mem.DefaultConfig;
	// the generality experiment passes mem.CMMHConfig).
	BaseConfig func() mem.Config
}

func (r *Runner) config(s RunSpec) mem.Config {
	cfg := mem.DefaultConfig()
	if s.BaseConfig != nil {
		cfg = s.BaseConfig()
	}
	cfg.HWPrefetchEnabled = s.HWP
	if s.Freq > 0 {
		cfg.CPUFreqGHz = s.Freq
	}
	if s.SIMD != 0 {
		cfg.SIMD = s.SIMD
	}
	return cfg
}

func (r *Runner) layouts(s RunSpec, cfg *mem.Config) ([]*workload.Layout, error) {
	ls := make([]*workload.Layout, s.Threads)
	for t := 0; t < s.Threads; t++ {
		l, err := workload.New(workload.Config{
			K: s.K, M: s.M, BlockSize: s.BlockSize,
			TotalDataBytes: r.perThreadBytes(s.Threads),
			Placement:      s.Placement,
			Seed:           s.Seed + 42,
		}, t)
		if err != nil {
			return nil, err
		}
		ls[t] = l
	}
	return ls, nil
}

// Run executes one measurement and returns the engine result.
func (r *Runner) Run(s RunSpec) (*engine.Result, error) {
	return r.RunWith(s, func(l *workload.Layout, cfg *mem.Config) (engine.Program, error) {
		return r.program(s, l, cfg)
	})
}

// RunWith executes one measurement with a custom per-thread program
// factory (used for decode schedules and ablation variants).
func (r *Runner) RunWith(s RunSpec, factory func(*workload.Layout, *mem.Config) (engine.Program, error)) (*engine.Result, error) {
	cfg := r.config(s)
	e, err := engine.New(cfg, s.Source)
	if err != nil {
		return nil, err
	}
	layouts, err := r.layouts(s, e.Config())
	if err != nil {
		return nil, err
	}
	for _, l := range layouts {
		p, err := factory(l, e.Config())
		if err != nil {
			return nil, err
		}
		e.AddThread(p)
	}
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	r.logf("%-10s k=%-2d m=%d bs=%-4d t=%-2d %s: %.2f GB/s",
		s.Strategy, s.K, s.M, s.BlockSize, s.Threads, s.Source, res.ThroughputGBps)
	return res, nil
}

// program builds the per-thread engine program for a strategy.
func (r *Runner) program(s RunSpec, l *workload.Layout, cfg *mem.Config) (engine.Program, error) {
	switch s.Strategy {
	case StratDialga:
		opts := dialga.DefaultOptions()
		if s.DialgaOpts != nil {
			opts = *s.DialgaOpts
		}
		sch := dialga.New(l, cfg, opts)
		if s.LRCGroups > 0 {
			sch.SetLRCLocalGroups(s.LRCGroups)
		}
		return sch, nil
	case StratISALD:
		return isal.NewDecomposedProgram(l, cfg, 16), nil
	case StratZerasure:
		enc, err := xorec.NewZerasure(s.K, s.M, xorec.ZerasureOptions{Seed: 1})
		if err != nil {
			return nil, err
		}
		return xorec.NewProgram(l, cfg, enc.Schedule()), nil
	case StratCerasure:
		return cerasureProgram(s.K, s.M, l, cfg)
	case StratISAL, StratISALNoPF, "":
		p := isal.NewProgram(l, cfg, s.Params)
		p.LRCLocalGroups = s.LRCGroups
		return p, nil
	default:
		return nil, fmt.Errorf("harness: unknown strategy %q", s.Strategy)
	}
}

// cerasureProgram builds the Cerasure access program: greedy-optimized
// bitmatrix for narrow stripes, decomposed sub-stripes for wide ones
// (§5.1: "We report Cerasure's best performance").
func cerasureProgram(k, m int, l *workload.Layout, cfg *mem.Config) (engine.Program, error) {
	if k <= 32 {
		enc, err := xorec.NewCerasure(k, m)
		if err != nil {
			return nil, err
		}
		return xorec.NewProgram(l, cfg, enc.Schedule()), nil
	}
	dec, err := xorec.NewDecomposed(k, m, 16, nil)
	if err != nil {
		return nil, err
	}
	return xorec.NewProgram(l, cfg, dec.CombinedSchedule()), nil
}

// Figure is one reproduced table/figure.
type Figure struct {
	ID    string
	Title string
	XName string
	YName string
	// XLabels are the x-axis points (shared by all series).
	XLabels []string
	Series  []Series
	// Notes records deviations or reading aids.
	Notes []string
}

// Series is one line/bar group of a figure. NaN marks missing points
// (e.g. Zerasure beyond its search horizon).
type Series struct {
	Name string
	Y    []float64
}

// AddPoint appends y to the named series, creating it on first use.
func (f *Figure) AddPoint(series string, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Y: []float64{y}})
}

// NaN is the missing-point marker.
var NaN = math.NaN()
