package harness

import (
	"testing"

	"dialga/internal/mem"
)

// Shape tests: medium-size runs asserting the paper's qualitative
// claims hold on the simulated testbed. These use working sets large
// enough to exceed the LLC, so they are guarded by -short.

// shapeRunner uses full-size working sets but no sweeps.
func shapeRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("shape tests need full working sets; skipped in -short mode")
	}
	return &Runner{}
}

func mustRun(t *testing.T, r *Runner, s RunSpec) float64 {
	t.Helper()
	res, err := r.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res.ThroughputGBps
}

// Obs. 1: PM encoding is much slower than DRAM encoding.
func TestShapePMSlowerThanDRAM(t *testing.T) {
	r := shapeRunner(t)
	pm := baseSpec(StratISAL, 8, 4, 1024, 1)
	dram := pm
	dram.Source = mem.DRAM
	if mustRun(t, r, dram) < 1.4*mustRun(t, r, pm) {
		t.Fatal("DRAM should be much faster than PM (Obs. 1)")
	}
}

// Obs. 3: the stream-table cliff — k=36 collapses relative to k=32.
func TestShapeStreamTableCliff(t *testing.T) {
	r := shapeRunner(t)
	at32 := mustRun(t, r, baseSpec(StratISAL, 32, 4, 4096, 1))
	at36 := mustRun(t, r, baseSpec(StratISAL, 36, 4, 4096, 1))
	if at36 > 0.55*at32 {
		t.Fatalf("no stream-table cliff: k=36 (%v) vs k=32 (%v)", at36, at32)
	}
}

// Obs. 4: the prefetcher is useless at 256 B blocks and strong at 4 KB.
func TestShapeBlockSizeSensitivity(t *testing.T) {
	r := shapeRunner(t)
	small := baseSpec(StratISAL, 24, 4, 256, 1)
	smallOff := baseSpec(StratISALNoPF, 24, 4, 256, 1)
	big := baseSpec(StratISAL, 24, 4, 4096, 1)
	bigOff := baseSpec(StratISALNoPF, 24, 4, 4096, 1)
	gainSmall := mustRun(t, r, small) / mustRun(t, r, smallOff)
	gainBig := mustRun(t, r, big) / mustRun(t, r, bigOff)
	if gainSmall > 1.1 {
		t.Fatalf("256B blocks should see ~no prefetcher benefit, got %.2fx", gainSmall)
	}
	if gainBig < 1.5 {
		t.Fatalf("4KB blocks should see a large prefetcher benefit, got %.2fx", gainBig)
	}
}

// Obs. 5: prefetch-on scalability collapses past its knee.
func TestShapeConcurrencyKnee(t *testing.T) {
	r := shapeRunner(t)
	at8 := mustRun(t, r, baseSpec(StratISAL, 24, 4, 4096, 8))
	at18 := mustRun(t, r, baseSpec(StratISAL, 24, 4, 4096, 18))
	if at18 > 0.75*at8 {
		t.Fatalf("no thrash knee: t=18 (%v) vs t=8 (%v)", at18, at8)
	}
}

// §5.2: DIALGA beats ISA-L across narrow, medium and wide stripes.
func TestShapeDialgaBeatsISAL(t *testing.T) {
	r := shapeRunner(t)
	for _, k := range []int{8, 24, 48} {
		isal := mustRun(t, r, baseSpec(StratISAL, k, 4, 1024, 1))
		dial := mustRun(t, r, baseSpec(StratDialga, k, 4, 1024, 1))
		if dial < 1.2*isal {
			t.Fatalf("k=%d: DIALGA (%v) not clearly above ISA-L (%v)", k, dial, isal)
		}
	}
}

// §5.2: XOR codecs sit below the table-lookup codec on PM.
func TestShapeXORBelowISAL(t *testing.T) {
	r := shapeRunner(t)
	isal := mustRun(t, r, baseSpec(StratISAL, 24, 4, 1024, 1))
	cer := mustRun(t, r, baseSpec(StratCerasure, 24, 4, 1024, 1))
	if cer >= isal {
		t.Fatalf("Cerasure (%v) not below ISA-L (%v) on PM", cer, isal)
	}
}

// §5.2.1: decomposition recovers wide stripes for the table-lookup
// codec.
func TestShapeDecomposeRecoversWideStripes(t *testing.T) {
	r := shapeRunner(t)
	isal := mustRun(t, r, baseSpec(StratISAL, 48, 4, 1024, 1))
	isald := mustRun(t, r, baseSpec(StratISALD, 48, 4, 1024, 1))
	if isald < 1.3*isal {
		t.Fatalf("ISA-L-D (%v) should clearly beat collapsed ISA-L (%v) at k=48", isald, isal)
	}
}

// §5.4: XOR decode is not faster than XOR encode (dense decode
// matrices), while table-lookup decode matches encode.
func TestShapeDecode(t *testing.T) {
	r := shapeRunner(t)
	encC, err := r.Run(baseSpec(StratCerasure, 24, 4, 1024, 1))
	if err != nil {
		t.Fatal(err)
	}
	decC, err := r.runDecode(StratCerasure, 24, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if decC > 1.1*encC.ThroughputGBps {
		t.Fatalf("XOR decode (%v) unexpectedly above encode (%v)", decC, encC.ThroughputGBps)
	}
	decI, err := r.runDecode(StratISAL, 24, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if decI < 2*decC {
		t.Fatalf("table-lookup decode (%v) should far exceed XOR decode (%v)", decI, decC)
	}
}

// §5.9: DIALGA removes most of ISA-L's media amplification at 18
// threads.
func TestShapeReadTrafficReduction(t *testing.T) {
	r := shapeRunner(t)
	isal, err := r.Run(baseSpec(StratISAL, 24, 4, 1024, 18))
	if err != nil {
		t.Fatal(err)
	}
	dial, err := r.Run(baseSpec(StratDialga, 24, 4, 1024, 18))
	if err != nil {
		t.Fatal(err)
	}
	ampI := float64(isal.MediaReadBytes) / float64(isal.EncodeReadBytes)
	ampD := float64(dial.MediaReadBytes) / float64(dial.EncodeReadBytes)
	if ampI < 1.3 {
		t.Fatalf("ISA-L at 18 threads should amplify media reads, got %.2fx", ampI)
	}
	if ampD > 0.6*ampI {
		t.Fatalf("DIALGA amplification %.2fx not well below ISA-L %.2fx", ampD, ampI)
	}
}
