package harness

import (
	"fmt"
	"math"
	"strings"
)

// Table renders the figure as an aligned text table.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  y = %s\n", f.YName)

	wide := len(f.XName)
	for _, x := range f.XLabels {
		if len(x) > wide {
			wide = len(x)
		}
	}
	colw := make([]int, len(f.Series))
	for i, s := range f.Series {
		colw[i] = len(s.Name)
		if colw[i] < 9 {
			colw[i] = 9
		}
	}
	fmt.Fprintf(&b, "  %-*s", wide, f.XName)
	for i, s := range f.Series {
		fmt.Fprintf(&b, "  %*s", colw[i], s.Name)
	}
	b.WriteByte('\n')
	for row, x := range f.XLabels {
		fmt.Fprintf(&b, "  %-*s", wide, x)
		for i, s := range f.Series {
			if row < len(s.Y) && !math.IsNaN(s.Y[row]) {
				fmt.Fprintf(&b, "  %*.3f", colw[i], s.Y[row])
			} else {
				fmt.Fprintf(&b, "  %*s", colw[i], "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XName))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for row, x := range f.XLabels {
		b.WriteString(csvEscape(x))
		for _, s := range f.Series {
			b.WriteByte(',')
			if row < len(s.Y) && !math.IsNaN(s.Y[row]) {
				fmt.Fprintf(&b, "%g", s.Y[row])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Improvement returns (a/b - 1) as a percentage, guarding zeros.
func Improvement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a/b - 1) * 100
}

// ImprovementRange returns the min and max percentage improvement of
// the target series over the best other series, across all x points
// where both are present — the form of the paper's headline claims
// ("DIALGA achieves 20.1–96.6% improvement over the best alternative").
func (f *Figure) ImprovementRange(target string) (minPct, maxPct float64, ok bool) {
	var tgt *Series
	for i := range f.Series {
		if f.Series[i].Name == target {
			tgt = &f.Series[i]
		}
	}
	if tgt == nil {
		return 0, 0, false
	}
	minPct, maxPct = math.Inf(1), math.Inf(-1)
	for row := range f.XLabels {
		if row >= len(tgt.Y) || math.IsNaN(tgt.Y[row]) {
			continue
		}
		best := math.Inf(-1)
		for i := range f.Series {
			s := &f.Series[i]
			if s.Name == target || row >= len(s.Y) || math.IsNaN(s.Y[row]) {
				continue
			}
			if s.Y[row] > best {
				best = s.Y[row]
			}
		}
		if math.IsInf(best, -1) || best <= 0 {
			continue
		}
		imp := Improvement(tgt.Y[row], best)
		if imp < minPct {
			minPct = imp
		}
		if imp > maxPct {
			maxPct = imp
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return minPct, maxPct, true
}

// bytesLabel renders a block size the way the paper does.
func bytesLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}
