package harness

import (
	"math"
	"strings"
	"testing"

	"dialga/internal/mem"
)

// quickRunner trims everything; these tests exercise plumbing, not
// shapes (quick working sets fit the LLC).
func quickRunner() *Runner { return &Runner{Quick: true} }

func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke run skipped in -short mode")
	}
	r := quickRunner()
	for _, id := range FigureIDs {
		f, err := r.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if f.ID != id {
			t.Fatalf("figure id mismatch: %s vs %s", f.ID, id)
		}
		if len(f.XLabels) == 0 || len(f.Series) == 0 {
			t.Fatalf("%s: empty figure", id)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.XLabels) {
				t.Fatalf("%s series %q: %d points for %d labels", id, s.Name, len(s.Y), len(f.XLabels))
			}
		}
		// Tables and CSV render without panicking and carry the data.
		tab := f.Table()
		if !strings.Contains(tab, id) {
			t.Fatalf("%s: table missing id", id)
		}
		csv := f.CSV()
		if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(f.XLabels)+1 {
			t.Fatalf("%s: csv row count wrong", id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := quickRunner().ByID("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunSpecStrategies(t *testing.T) {
	r := quickRunner()
	for _, st := range comparedStrategies() {
		s := baseSpec(st, 8, 2, 1024, 1)
		res, err := r.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", st, err)
		}
		if res.ThroughputGBps <= 0 {
			t.Fatalf("%s: no throughput", st)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	r := quickRunner()
	s := baseSpec("nope", 4, 2, 1024, 1)
	if _, err := r.Run(s); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestZerasureWideStripeError(t *testing.T) {
	r := quickRunner()
	s := baseSpec(StratZerasure, 48, 4, 1024, 1)
	if _, err := r.Run(s); err == nil {
		t.Fatal("Zerasure at k=48 should fail (search space)")
	}
}

func TestDecodeRun(t *testing.T) {
	r := quickRunner()
	for _, st := range []Strategy{StratISAL, StratCerasure, StratDialga} {
		y, err := r.runDecode(st, 8, 4, 1024)
		if err != nil {
			t.Fatalf("%s decode: %v", st, err)
		}
		if y <= 0 || math.IsNaN(y) {
			t.Fatalf("%s decode: bad throughput %v", st, y)
		}
	}
}

func TestLRCRun(t *testing.T) {
	r := quickRunner()
	y, err := r.runLRC(StratDialga, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y <= 0 {
		t.Fatal("no LRC throughput")
	}
}

func TestGen01AndMix01Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run skipped in -short mode")
	}
	r := quickRunner()
	for _, id := range []string{"gen01", "mix01"} {
		f, err := r.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, s := range f.Series {
			for _, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s series %s has non-positive point", id, s.Name)
				}
			}
		}
	}
}

func TestRepeatsAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("averaging smoke skipped in -short mode")
	}
	r := &Runner{Quick: true, Repeats: 2}
	y, err := r.throughputAvg(baseSpec(StratISAL, 8, 4, 1024, 2))
	if err != nil {
		t.Fatal(err)
	}
	if y <= 0 {
		t.Fatal("averaged throughput not positive")
	}
	// Single-threaded runs are not repeated (deterministic anyway).
	y1, err := r.throughputAvg(baseSpec(StratISAL, 8, 4, 1024, 1))
	if err != nil || y1 <= 0 {
		t.Fatal("single-thread average failed")
	}
}

func TestFigureAddPoint(t *testing.T) {
	f := &Figure{}
	f.AddPoint("a", 1)
	f.AddPoint("b", 2)
	f.AddPoint("a", 3)
	if len(f.Series) != 2 {
		t.Fatal("series not deduplicated by name")
	}
	if len(f.Series[0].Y) != 2 || f.Series[0].Y[1] != 3 {
		t.Fatal("points not appended")
	}
}

func TestImprovementRange(t *testing.T) {
	f := &Figure{XLabels: []string{"a", "b", "c"}}
	f.Series = []Series{
		{Name: "DIALGA", Y: []float64{2, 4, NaN}},
		{Name: "ISA-L", Y: []float64{1, 2, 3}},
		{Name: "Zerasure", Y: []float64{0.5, NaN, 1}},
	}
	lo, hi, ok := f.ImprovementRange("DIALGA")
	if !ok {
		t.Fatal("no range computed")
	}
	// Points: a: 2 vs best-other 1 => +100%; b: 4 vs 2 => +100%;
	// c: NaN skipped.
	if lo != 100 || hi != 100 {
		t.Fatalf("range = [%v, %v], want [100, 100]", lo, hi)
	}
	if _, _, ok := f.ImprovementRange("nope"); ok {
		t.Fatal("missing series accepted")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(2, 1) != 100 {
		t.Fatal("Improvement(2,1) != 100%")
	}
	if Improvement(1, 0) != 0 {
		t.Fatal("zero baseline not guarded")
	}
}

func TestCSVEscape(t *testing.T) {
	f := &Figure{XName: "a,b", XLabels: []string{`he"y`}}
	f.AddPoint("s", 1)
	csv := f.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"he""y"`) {
		t.Fatalf("csv escaping wrong: %q", csv)
	}
}

func TestBytesLabel(t *testing.T) {
	if bytesLabel(256) != "256B" || bytesLabel(1024) != "1KB" || bytesLabel(5120) != "5KB" {
		t.Fatal("bytesLabel wrong")
	}
}

func TestPerThreadBytesExceedLLCInFullMode(t *testing.T) {
	r := &Runner{}
	cfg := mem.DefaultConfig()
	if r.perThreadBytes(1) <= cfg.LLCSize {
		t.Fatal("full-mode single-thread working set must exceed the LLC")
	}
}
