package harness

import (
	"dialga/internal/dialga"
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/workload"
	"dialga/internal/xorec"
)

// runDecode measures decode throughput: k survivor blocks are read and
// m missing blocks reconstructed. Table-lookup decode shares encode's
// memory pattern (§4.1 "Other Coding Tasks"); XOR decode replays the
// (denser) decode bitmatrix schedule derived from the inverted survivor
// matrix (§5.4).
func (r *Runner) runDecode(st Strategy, k, m, block int) (float64, error) {
	s := baseSpec(st, k, m, block, 1)
	switch st {
	case StratZerasure, StratCerasure:
		var enc *xorec.Encoder
		var err error
		if st == StratZerasure {
			enc, err = xorec.NewZerasure(k, m, xorec.ZerasureOptions{Seed: 1})
		} else {
			enc, err = xorec.NewCerasure(k, m)
		}
		if err != nil {
			return NaN, err
		}
		// Erase the first m data blocks: the hardest pattern.
		missing := make([]int, m)
		for i := range missing {
			missing[i] = i
		}
		dec, err := enc.NewDecoder(missing)
		if err != nil {
			return NaN, err
		}
		res, err := r.RunWith(s, func(l *workload.Layout, cfg *mem.Config) (engine.Program, error) {
			return xorec.NewProgram(l, cfg, dec.Schedule()), nil
		})
		if err != nil {
			return NaN, err
		}
		return res.ThroughputGBps, nil
	default:
		res, err := r.Run(s)
		if err != nil {
			return NaN, err
		}
		return res.ThroughputGBps, nil
	}
}

// runLRC measures LRC(k, m, l) encoding: m global parities plus l local
// XOR parities (the stripe writes m+l parity blocks).
func (r *Runner) runLRC(st Strategy, k, m, l int) (float64, error) {
	s := baseSpec(st, k, m+l, defaultBlock, 1)
	s.LRCGroups = l
	if st == StratCerasure {
		var enc *xorec.Encoder
		var err error
		if k <= 32 {
			enc, err = xorec.NewCerasure(k, m)
		} else {
			enc, err = xorec.NewEncoder(k, m, xorec.Options{SmartSchedule: true})
		}
		if err != nil {
			return NaN, err
		}
		sched, err := enc.LRCSchedule(l)
		if err != nil {
			return NaN, err
		}
		res, err := r.RunWith(s, func(lay *workload.Layout, cfg *mem.Config) (engine.Program, error) {
			return xorec.NewProgram(lay, cfg, sched), nil
		})
		if err != nil {
			return NaN, err
		}
		return res.ThroughputGBps, nil
	}
	res, err := r.Run(s)
	if err != nil {
		return NaN, err
	}
	return res.ThroughputGBps, nil
}

// mixedProgram builds one thread's mixed-size workload: consecutive
// segments with different block sizes, each in its own address region.
func (r *Runner) mixedProgram(s RunSpec, base *workload.Layout, cfg *mem.Config, sizes []int) (engine.Program, error) {
	// Recover the thread id from the base layout's region.
	threadID := int(uint64(base.Data[0][0]) >> 34)
	segBytes := r.perThreadBytes(s.Threads) / len(sizes)
	var progs []engine.Program
	for seg, bs := range sizes {
		l, err := workload.New(workload.Config{
			K: s.K, M: s.M, BlockSize: bs,
			TotalDataBytes: segBytes,
			Placement:      workload.Scattered,
			Seed:           s.Seed + int64(seg),
		}, threadID+64*(seg+1)) // disjoint pseudo-thread regions
		if err != nil {
			return nil, err
		}
		var p engine.Program
		if s.Strategy == StratDialga {
			p = dialga.New(l, cfg, dialga.DefaultOptions())
		} else {
			p = isal.NewProgram(l, cfg, s.Params)
		}
		progs = append(progs, p)
	}
	return engine.NewSequence(progs...), nil
}

// runBreakdown runs a Fig. 18 ablation variant: a DIALGA scheduler with
// individual optimizations disabled. The hardware prefetcher is
// controlled by the machine switch (s.HWP), not the coordinator.
func (r *Runner) runBreakdown(s RunSpec, sw, bf bool) (float64, error) {
	opts := dialga.DefaultOptions()
	opts.DisableSWPrefetch = !sw
	opts.DisableBufferFriendly = !bf
	opts.DisableHWManagement = true
	s.DialgaOpts = &opts
	s.Strategy = StratDialga
	res, err := r.Run(s)
	if err != nil {
		return NaN, err
	}
	return res.ThroughputGBps, nil
}
