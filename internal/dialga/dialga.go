// Package dialga implements the paper's contribution: an adaptive
// hardware/software prefetcher scheduler for erasure coding on
// persistent memory.
//
// The Scheduler wraps an ISA-L entry-point program (package isal) and
// plays the role of DIALGA's two components:
//
//   - the adaptive coordinator (§4.1): collects the I/O access pattern
//     (k, m, block size, thread count) through the library interface,
//     samples "PMU" counters (load latency, useless L2 prefetches) at
//     1 kHz of simulated time, and switches the kernel entry point per
//     stripe — the simulator analogue of selecting among statically
//     generated ec_encode_data variants;
//   - the lightweight operator (§4.2): the entry points themselves
//     (static shuffle mapping as the fine-grained hardware-prefetcher
//     switch, branchless pipelined software prefetch), plus the PM read
//     buffer-friendly scheme of §4.3 (non-uniform distances, Eq. 1
//     distance capping, XPLine loop expansion under pressure).
//
// The coordinator tunes with measured windows: above the concurrency
// threshold (or when the sampled counters signal contention plus an
// inefficient hardware prefetcher) it trials the high-pressure entry
// point — shuffle mapping plus XPLine-expanded loop — against the
// current one and keeps whichever wins. Prefetch distance is tuned by
// hill climbing (§4.1.2): starting at d=k, exploring a neighbourhood of
// 16 around the current distance, re-triggering whenever windowed
// performance fluctuates by more than 10%, and always capped by Eq. 1.
package dialga

import (
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/mem"
	"dialga/internal/pmu"
	"dialga/internal/workload"
)

// Options are the coordinator's tunables, defaulting to the paper's
// constants.
type Options struct {
	// LatencyThreshold is the read-contention trigger: sampled load
	// latency above LatencyThreshold x the low-pressure baseline
	// indicates traffic contention (paper: 1.10).
	LatencyThreshold float64
	// UselessPFThreshold is the prefetcher-inefficiency trigger on the
	// useless-prefetch rate relative to baseline (paper: 1.50).
	UselessPFThreshold float64
	// ThreadThreshold is the concurrency above which the high-pressure
	// entry point is trialed (paper: 12, from Eq. 1).
	ThreadThreshold int
	// SamplePeriodNS is the counter sampling period (paper: 1 kHz).
	SamplePeriodNS float64
	// Neighborhood is the hill-climbing exploration radius (paper: 16).
	Neighborhood int
	// RetriggerFluctuation re-starts tuning when windowed performance
	// moves by more than this fraction (paper: 0.10).
	RetriggerFluctuation float64
	// WideStripeStreams is the stream-tracking capacity beyond which
	// the hardware prefetcher self-disables, so DIALGA need not manage
	// it (paper: 32 on Cascade Lake).
	WideStripeStreams int
	// DisableSWPrefetch turns off the pipelined software prefetcher
	// (ablation).
	DisableSWPrefetch bool
	// DisableHWManagement prevents the coordinator from ever engaging
	// the shuffle mapping (ablation).
	DisableHWManagement bool
	// DisableBufferFriendly turns off §4.3 entirely (ablation).
	DisableBufferFriendly bool
	// DisableHillClimbing pins the prefetch distance at its initial
	// value d=k, still subject to the Eq. 1 cap (ablation).
	DisableHillClimbing bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		LatencyThreshold:     1.10,
		UselessPFThreshold:   1.50,
		ThreadThreshold:      12,
		SamplePeriodNS:       1e6, // 1 kHz in simulated time
		Neighborhood:         16,
		RetriggerFluctuation: 0.10,
		WideStripeStreams:    32,
	}
}

// phase is the coordinator's tuning state.
type phase int

const (
	phaseModeMeasure  phase = iota // measuring the current entry point
	phaseModeTrial                 // trialing the alternate entry point
	phaseClimbMeasure              // distance search: measuring the centre
	phaseClimbProbe                // distance search: probing a neighbour
	phaseSettled                   // local optimum; watching for fluctuation
)

// String implements fmt.Stringer.
func (p phase) String() string {
	switch p {
	case phaseModeMeasure:
		return "mode-measure"
	case phaseModeTrial:
		return "mode-trial"
	case phaseClimbMeasure:
		return "climb-measure"
	case phaseClimbProbe:
		return "climb-probe"
	case phaseSettled:
		return "settled"
	}
	return "unknown"
}

// TraceEvent is one coordinator decision window, emitted through
// Scheduler.Trace for observability.
type TraceEvent struct {
	NowNS      float64 // simulated time at the window boundary
	WindowGBps float64 // throughput of the completed window
	Phase      string  // tuner phase entered after this window
	Distance   int     // software prefetch distance now in force
	HighMode   bool    // high-pressure entry point active
	Contended  bool    // sampled-contention state
}

// Scheduler is a DIALGA-scheduled encoding program for one thread.
// It implements engine.Program and engine.TelemetryAware.
type Scheduler struct {
	prog *isal.Program
	opts Options
	cfg  *mem.Config
	tel  *engine.Telemetry

	// Trace, if set, receives one event per tuning window.
	Trace func(TraceEvent)

	// Static I/O pattern.
	k, m, blockSize int

	// Sampling state (§4.1.2 "Cache Events").
	sampler   *pmu.Sampler
	contended bool

	// Windowed tuner.
	phase            phase
	highMode         bool // current entry point is the high-pressure one
	modePerfLow      float64
	windowStart      float64
	windowStripe     int
	stripesPerWindow int
	settledPerf      float64
	modeTrials       int
	modeCooldown     int // windows until the next mode trial is allowed

	// Distance search (cacheline tasks).
	curD, bestD  int
	center       int
	bestPerf     float64
	probeIdx     int
	probeOffsets []int
}

// New builds a DIALGA scheduler over a workload layout. The returned
// scheduler is the engine program for one encoding thread.
func New(l *workload.Layout, cfg *mem.Config, opts Options) *Scheduler {
	s := &Scheduler{
		opts:      opts,
		cfg:       cfg,
		k:         l.K,
		m:         l.M,
		blockSize: l.BlockSize,
		curD:      l.K, // the search begins at d = k (§4.1.2)
		bestD:     l.K,
		sampler:   pmu.NewSampler(opts.SamplePeriodNS, opts.LatencyThreshold, opts.UselessPFThreshold),
	}
	if s.opts.Neighborhood <= 0 {
		s.opts.Neighborhood = 16
	}
	n := s.opts.Neighborhood
	// Probe order within the neighbourhood: prefer growing the
	// distance (latency hiding), then shrinking.
	s.probeOffsets = []int{n, n / 2, -n / 2, 2 * n}
	// Windows long enough to smooth per-stripe noise, short enough to
	// adapt quickly.
	s.stripesPerWindow = 16
	s.prog = isal.NewProgram(l, cfg, isal.KernelParams{})
	s.prog.OnStripe = s.onStripe
	return s
}

// Attach implements engine.TelemetryAware.
func (s *Scheduler) Attach(t *engine.Telemetry) { s.tel = t }

// SetLRCLocalGroups marks the layout's last l parity blocks as LRC
// local XOR parities; DIALGA's scheduling applies to LRC unchanged
// (§4.1 "Other Coding Tasks").
func (s *Scheduler) SetLRCLocalGroups(l int) { s.prog.LRCLocalGroups = l }

// Next implements engine.Program.
func (s *Scheduler) Next(op *engine.Op) bool { return s.prog.Next(op) }

// DataBytes implements engine.Program.
func (s *Scheduler) DataBytes() uint64 { return s.prog.DataBytes() }

// Params returns the kernel parameters currently in force (diagnostic).
func (s *Scheduler) Params() isal.KernelParams { return s.prog.Params }

// Distance returns the current software prefetch distance (diagnostic).
func (s *Scheduler) Distance() int { return s.curD }

// Contended reports whether the coordinator currently sees read
// traffic contention (diagnostic).
func (s *Scheduler) Contended() bool { return s.contended }

// HighMode reports whether the high-pressure entry point is active
// (diagnostic).
func (s *Scheduler) HighMode() bool { return s.highMode }

// ModeTrials returns how many entry-point trials the coordinator ran
// (diagnostic).
func (s *Scheduler) ModeTrials() int { return s.modeTrials }

// onStripe is the per-stripe coordinator hook.
func (s *Scheduler) onStripe(stripe int, p *isal.KernelParams) {
	if s.tel == nil {
		return
	}
	if stripe == 0 {
		s.applyMode(p, false)
		s.windowStart = s.tel.NowNS()
		s.windowStripe = 0
		s.phase = phaseModeMeasure
		return
	}
	s.samplePMU()

	s.windowStripe++
	if s.windowStripe < s.stripesPerWindow {
		return
	}
	now := s.tel.NowNS()
	elapsed := now - s.windowStart
	if elapsed <= 0 {
		return
	}
	perf := float64(s.windowStripe*s.k*s.blockSize) / elapsed
	s.windowStart = now
	s.windowStripe = 0
	s.step(perf, p)
	if s.Trace != nil {
		s.Trace(TraceEvent{
			NowNS:      now,
			WindowGBps: perf,
			Phase:      s.phase.String(),
			Distance:   s.curD,
			HighMode:   s.highMode,
			Contended:  s.contended,
		})
	}
}

// wantsTrial reports whether the high-pressure entry point should be
// considered at all: concurrency above the threshold, or detected
// contention with an inefficient hardware prefetcher (§4.1.2) — except
// for wide stripes, where the stream table self-disables and there is
// nothing to manage.
func (s *Scheduler) wantsTrial() bool {
	if s.opts.DisableHWManagement {
		return false
	}
	if s.modeCooldown > 0 {
		return false
	}
	if s.k > s.opts.WideStripeStreams {
		return false
	}
	if s.opts.ThreadThreshold > 0 && s.tel.ThreadCount() > s.opts.ThreadThreshold {
		return true
	}
	return s.contended
}

// modeCooldownWindows is how many measurement windows a mode decision
// holds before another trial may run — hysteresis against flip-flopping
// on noisy windows near a thrash knee.
const modeCooldownWindows = 12

// step advances the windowed tuner with the last window's performance.
func (s *Scheduler) step(perf float64, p *isal.KernelParams) {
	if s.modeCooldown > 0 {
		s.modeCooldown--
	}
	switch s.phase {
	case phaseModeMeasure:
		if !s.wantsTrial() {
			s.startClimb(perf, p)
			return
		}
		// Trial the alternate entry point next window.
		s.modePerfLow = perf
		s.applyMode(p, !s.highMode)
		s.modeTrials++
		s.phase = phaseModeTrial
	case phaseModeTrial:
		if perf < s.modePerfLow {
			// The alternate lost: revert.
			s.applyMode(p, !s.highMode)
			perf = s.modePerfLow
		}
		s.modeCooldown = modeCooldownWindows
		s.startClimb(perf, p)
	case phaseClimbMeasure:
		s.center = s.curD
		s.bestPerf = perf
		s.bestD = s.curD
		s.probeIdx = 0
		s.curD = s.clampProbe(s.center + s.probeOffsets[0])
		s.capDistance(p)
		s.phase = phaseClimbProbe
	case phaseClimbProbe:
		if perf > s.bestPerf {
			s.bestPerf = perf
			s.bestD = s.curD
		}
		s.probeIdx++
		if s.probeIdx < len(s.probeOffsets) {
			s.curD = s.clampProbe(s.center + s.probeOffsets[s.probeIdx])
			s.capDistance(p)
			return
		}
		// Neighbourhood exhausted: adopt the best distance. If it
		// moved off the centre, climb again around the new centre;
		// otherwise settle.
		s.curD = s.bestD
		s.capDistance(p)
		if s.bestD != s.center {
			s.phase = phaseClimbMeasure
		} else {
			s.phase = phaseSettled
			s.settledPerf = s.bestPerf
		}
	case phaseSettled:
		// Re-trigger the full tuning cycle on >10% fluctuation
		// (§4.1.2).
		if s.settledPerf > 0 {
			fl := perf/s.settledPerf - 1
			if fl > s.opts.RetriggerFluctuation || fl < -s.opts.RetriggerFluctuation {
				s.phase = phaseModeMeasure
			}
		}
	}
}

// startClimb enters the distance search, or settles directly when the
// search is disabled.
func (s *Scheduler) startClimb(perf float64, p *isal.KernelParams) {
	if s.opts.DisableHillClimbing || s.opts.DisableSWPrefetch {
		s.phase = phaseSettled
		s.settledPerf = perf
		return
	}
	s.center = s.curD
	s.bestPerf = perf
	s.bestD = s.curD
	s.probeIdx = 0
	s.curD = s.clampProbe(s.center + s.probeOffsets[0])
	s.capDistance(p)
	s.phase = phaseClimbProbe
}

// applyMode installs an entry point: the low-pressure point keeps the
// hardware prefetcher and adds buffer-friendly pipelined prefetching;
// the high-pressure point de-trains the prefetcher with the shuffle
// mapping and expands the loop to XPLine granularity (§4.3.3).
func (s *Scheduler) applyMode(p *isal.KernelParams, high bool) {
	s.highMode = high
	p.SWPrefetch = !s.opts.DisableSWPrefetch
	if high {
		p.Shuffle = true
		p.BufferFriendly = false
		p.XPLineLoop = !s.opts.DisableBufferFriendly
	} else {
		p.Shuffle = false
		p.XPLineLoop = false
		if !s.opts.DisableBufferFriendly {
			p.BufferFriendly = true
			p.FirstLineBoost = isal.DefaultBoost
			p.RestReduce = isal.DefaultRestReduce
		} else {
			p.BufferFriendly = false
		}
	}
	s.capDistance(p)
}

// samplePMU reads the simulated counters at the configured rate and
// updates the contention estimate (§4.1.2 "Cache Events"). A change in
// the contention state re-opens tuning from the settled phase.
func (s *Scheduler) samplePMU() {
	sampled := s.sampler.Sample(s.tel.NowNS(), pmu.Counters{
		Loads:             s.tel.Loads(),
		LoadLatencySumNS:  s.tel.LoadLatencySumNS(),
		UselessPrefetches: s.tel.UselessHWPrefetches(),
	})
	if !sampled {
		return
	}
	was := s.contended
	s.contended = s.sampler.Contended()
	if s.contended != was && s.phase == phaseSettled {
		s.phase = phaseModeMeasure
	}
}

// MaxDistance implements Eq. 1: the largest prefetch distance (in
// cacheline tasks) whose read-buffer footprint across all threads fits
// the device buffer:
//
//	nthread x k x 256B x ceil(maxd/(k+m)) <= buffersize,
//
// with m = 0 for non-temporal stores.
func MaxDistance(bufferLines, threads, k int) int {
	if bufferLines <= 0 || threads <= 0 || k <= 0 {
		return 1 << 30 // DRAM or degenerate: unconstrained
	}
	windows := bufferLines / (threads * k)
	if windows < 1 {
		windows = 1
	}
	return windows * k
}

// capDistance applies Eq. 1 and publishes the distance.
func (s *Scheduler) capDistance(p *isal.KernelParams) {
	maxD := MaxDistance(s.tel.ReadBufferCapacityLines(), s.tel.ThreadCount(), s.k)
	if s.curD > maxD {
		s.curD = maxD
	}
	if s.curD < 1 {
		s.curD = 1
	}
	p.PrefetchDistance = s.curD
}

func (s *Scheduler) clampProbe(d int) int {
	if d < 1 {
		return 1
	}
	maxD := MaxDistance(s.tel.ReadBufferCapacityLines(), s.tel.ThreadCount(), s.k)
	if d > maxD {
		return maxD
	}
	return d
}
