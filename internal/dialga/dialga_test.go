package dialga

import (
	"testing"

	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func testLayout(t *testing.T, k, m, block, totalKB, thread int) *workload.Layout {
	t.Helper()
	l, err := workload.New(workload.Config{
		K: k, M: m, BlockSize: block,
		TotalDataBytes: totalKB << 10,
		Placement:      workload.Scattered,
		Seed:           3,
	}, thread)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func runThreads(t *testing.T, threads int, mk func(thread int) engine.Program) (*engine.Result, []*Scheduler) {
	t.Helper()
	cfg := mem.DefaultConfig()
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		t.Fatal(err)
	}
	var scheds []*Scheduler
	for i := 0; i < threads; i++ {
		p := mk(i)
		if s, ok := p.(*Scheduler); ok {
			scheds = append(scheds, s)
		}
		e.AddThread(p)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, scheds
}

func TestMaxDistanceEq1(t *testing.T) {
	// 384 XPLines, 1 thread, k=24: 16 windows of k tasks.
	if got := MaxDistance(384, 1, 24); got != 16*24 {
		t.Fatalf("MaxDistance = %d, want %d", got, 16*24)
	}
	// 18 threads: less than one window per thread: clamped to k.
	if got := MaxDistance(384, 18, 24); got != 24 {
		t.Fatalf("MaxDistance = %d, want 24", got)
	}
	// DRAM (no buffer): unconstrained.
	if got := MaxDistance(0, 4, 24); got < 1<<20 {
		t.Fatalf("MaxDistance on DRAM should be unconstrained, got %d", got)
	}
	// Degenerate inputs do not panic.
	if MaxDistance(384, 0, 24) < 1 || MaxDistance(384, 1, 0) < 1 {
		t.Fatal("degenerate MaxDistance")
	}
}

func TestSchedulerBeatsPlainISAL(t *testing.T) {
	// DIALGA with hill climbing must outperform the plain ISA-L kernel
	// on the same workload (k=24, 1KB, single thread).
	resD, scheds := runThreads(t, 1, func(i int) engine.Program {
		return New(testLayout(t, 24, 4, 1024, 8<<10, i), cfgPtr(), DefaultOptions())
	})
	resP, _ := runThreads(t, 1, func(i int) engine.Program {
		l := testLayout(t, 24, 4, 1024, 8<<10, i)
		return plainProgram(l)
	})
	if resD.ThroughputGBps <= resP.ThroughputGBps {
		t.Fatalf("DIALGA (%v GB/s) did not beat plain ISA-L (%v GB/s)",
			resD.ThroughputGBps, resP.ThroughputGBps)
	}
	s := scheds[0]
	if !s.Params().SWPrefetch {
		t.Fatal("low-pressure policy should enable software prefetching")
	}
	if s.Params().Shuffle {
		t.Fatal("low-pressure policy should keep the HW prefetcher (no shuffle)")
	}
}

func TestHillClimbingMovesDistance(t *testing.T) {
	_, scheds := runThreads(t, 1, func(i int) engine.Program {
		return New(testLayout(t, 8, 4, 1024, 8<<10, i), cfgPtr(), DefaultOptions())
	})
	s := scheds[0]
	// At k=8 the optimal distance is far above the d=k start; the
	// climber must have moved.
	if s.Distance() <= 8 {
		t.Fatalf("hill climbing stuck at initial distance %d", s.Distance())
	}
}

func TestHillClimbingDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableHillClimbing = true
	_, scheds := runThreads(t, 1, func(i int) engine.Program {
		return New(testLayout(t, 8, 4, 1024, 4<<10, i), cfgPtr(), opts)
	})
	if d := scheds[0].Distance(); d != 8 {
		t.Fatalf("distance moved to %d with hill climbing disabled", d)
	}
}

func TestHighConcurrencyTrialsHighPressureMode(t *testing.T) {
	const threads = 14 // above the threshold of 12
	_, scheds := runThreads(t, threads, func(i int) engine.Program {
		return New(testLayout(t, 24, 4, 1024, 4<<10, i), cfgPtr(), DefaultOptions())
	})
	s := scheds[0]
	// Above the threshold the coordinator must have trialed the
	// shuffle+XPLine entry point (it keeps whichever wins the window
	// comparison).
	if s.ModeTrials() == 0 {
		t.Fatal("no entry-point trial above the thread threshold")
	}
	// Eq. 1 must cap the distance regardless of the winning mode.
	if s.Distance() > MaxDistance(384, threads, 24) {
		t.Fatalf("distance %d exceeds the Eq. 1 cap", s.Distance())
	}
}

func TestLowConcurrencyNeverTrials(t *testing.T) {
	_, scheds := runThreads(t, 2, func(i int) engine.Program {
		return New(testLayout(t, 24, 4, 1024, 4<<10, i), cfgPtr(), DefaultOptions())
	})
	s := scheds[0]
	if s.Params().Shuffle || s.HighMode() {
		t.Fatal("low concurrency must stay on the low-pressure entry point")
	}
}

func TestDisableHWManagementNeverShuffles(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableHWManagement = true
	_, scheds := runThreads(t, 14, func(i int) engine.Program {
		return New(testLayout(t, 24, 4, 1024, 2<<10, i), cfgPtr(), opts)
	})
	if scheds[0].ModeTrials() != 0 {
		t.Fatal("HW management disabled but a mode trial ran")
	}
	if scheds[0].Params().Shuffle {
		t.Fatal("HW management disabled but shuffle engaged")
	}
}

func TestWideStripeLeavesPrefetcherAlone(t *testing.T) {
	_, scheds := runThreads(t, 1, func(i int) engine.Program {
		return New(testLayout(t, 48, 4, 1024, 4<<10, i), cfgPtr(), DefaultOptions())
	})
	if scheds[0].Params().Shuffle {
		t.Fatal("wide stripes need no shuffle: the stream table self-disables (§4.1.2)")
	}
}

func TestDisableSWPrefetchOption(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableSWPrefetch = true
	res, scheds := runThreads(t, 1, func(i int) engine.Program {
		return New(testLayout(t, 8, 4, 1024, 4<<10, i), cfgPtr(), opts)
	})
	if scheds[0].Params().SWPrefetch {
		t.Fatal("SW prefetch not disabled")
	}
	var sw uint64
	for _, th := range res.Threads {
		sw += th.SWPrefetches
	}
	if sw != 0 {
		t.Fatalf("%d software prefetches issued with SW disabled", sw)
	}
}

func TestTraceEvents(t *testing.T) {
	var events []TraceEvent
	_, _ = runThreads(t, 1, func(i int) engine.Program {
		s := New(testLayout(t, 8, 4, 1024, 4<<10, i), cfgPtr(), DefaultOptions())
		s.Trace = func(ev TraceEvent) { events = append(events, ev) }
		return s
	})
	if len(events) == 0 {
		t.Fatal("no trace events emitted")
	}
	var lastNS float64
	settled := false
	for _, ev := range events {
		if ev.NowNS <= lastNS {
			t.Fatal("trace time not monotone")
		}
		lastNS = ev.NowNS
		if ev.WindowGBps <= 0 {
			t.Fatal("trace window throughput not positive")
		}
		if ev.Distance < 1 {
			t.Fatal("trace distance invalid")
		}
		if ev.Phase == "settled" {
			settled = true
		}
	}
	if !settled {
		t.Fatal("tuner never settled on a 4MB run")
	}
}

func TestSchedulerDataBytes(t *testing.T) {
	l := testLayout(t, 8, 4, 1024, 4<<10, 0)
	s := New(l, cfgPtr(), DefaultOptions())
	if s.DataBytes() != l.DataBytes() {
		t.Fatal("DataBytes mismatch")
	}
}

func TestSchedulerHighPressureBeatsISALAtScale(t *testing.T) {
	// The pressure effects (read-buffer thrash, Eq. 1) need a real
	// working set to develop.
	const threads = 18
	mkD := func(i int) engine.Program {
		return New(testLayout(t, 24, 4, 1024, 8<<10, i), cfgPtr(), DefaultOptions())
	}
	mkP := func(i int) engine.Program {
		return plainProgram(testLayout(t, 24, 4, 1024, 8<<10, i))
	}
	resD, _ := runThreads(t, threads, mkD)
	resP, _ := runThreads(t, threads, mkP)
	if resD.ThroughputGBps <= resP.ThroughputGBps {
		t.Fatalf("DIALGA at %d threads (%v) did not beat ISA-L (%v)",
			threads, resD.ThroughputGBps, resP.ThroughputGBps)
	}
	// Media amplification must be lower too (Fig. 19b).
	ampD := float64(resD.MediaReadBytes) / float64(resD.EncodeReadBytes)
	ampP := float64(resP.MediaReadBytes) / float64(resP.EncodeReadBytes)
	if ampD >= ampP {
		t.Fatalf("DIALGA amplification %v not below ISA-L %v", ampD, ampP)
	}
}

// helpers

var testCfg = mem.DefaultConfig()

func cfgPtr() *mem.Config { return &testCfg }

func plainProgram(l *workload.Layout) engine.Program {
	return newPlain(l)
}
