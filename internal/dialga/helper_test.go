package dialga

import (
	"dialga/internal/engine"
	"dialga/internal/isal"
	"dialga/internal/workload"
)

// newPlain builds the unscheduled ISA-L kernel program for comparison
// baselines in tests.
func newPlain(l *workload.Layout) engine.Program {
	return isal.NewProgram(l, cfgPtr(), isal.KernelParams{})
}
