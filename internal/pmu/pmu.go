// Package pmu implements the performance-counter sampling DIALGA's
// coordinator relies on (§4.1.2 "Cache Events"): a fixed-rate sampler
// over hardware-counter snapshots that maintains a low-pressure
// baseline and raises a contention signal when both the average load
// latency (vs 110% of baseline) and the useless-hardware-prefetch rate
// (vs 150% of baseline) are elevated.
//
// On the paper's testbed these are PEBS/PMU events (e.g. 0xf2 for L2
// useless prefetches) read at 1 kHz; here the counters come from the
// simulator's engine.Telemetry, with identical semantics.
package pmu

// Counters is a monotonically increasing counter snapshot.
type Counters struct {
	// Loads is the number of demand loads retired.
	Loads uint64
	// LoadLatencySumNS is the cumulative demand-load latency.
	LoadLatencySumNS float64
	// UselessPrefetches counts prefetched lines evicted unused
	// (the PMU 0xf2 analogue).
	UselessPrefetches uint64
}

// Sampler detects read-traffic contention from windowed counter deltas.
// The zero value is not usable; use NewSampler.
type Sampler struct {
	periodNS         float64
	latThreshold     float64
	uselessThreshold float64

	lastNS   float64
	last     Counters
	haveBase bool

	baselineLatNS   float64
	baselineUseless float64
	contended       bool
	samples         int
}

// NewSampler constructs a sampler with the given period (ns of
// simulated time between samples) and thresholds (the paper uses 1 ms,
// 1.10 and 1.50).
func NewSampler(periodNS, latThreshold, uselessThreshold float64) *Sampler {
	return &Sampler{
		periodNS:         periodNS,
		latThreshold:     latThreshold,
		uselessThreshold: uselessThreshold,
	}
}

// Sample feeds a counter snapshot at time nowNS. It returns true when a
// sampling window elapsed and the contention estimate was updated.
func (s *Sampler) Sample(nowNS float64, c Counters) bool {
	if nowNS-s.lastNS < s.periodNS {
		return false
	}
	dLoads := c.Loads - s.last.Loads
	if dLoads == 0 {
		s.lastNS = nowNS
		return false
	}
	avgLat := (c.LoadLatencySumNS - s.last.LoadLatencySumNS) / float64(dLoads)
	uselessRate := float64(c.UselessPrefetches-s.last.UselessPrefetches) / float64(dLoads)
	s.lastNS = nowNS
	s.last = c
	s.samples++

	if !s.haveBase {
		// The first window establishes the low-pressure baseline
		// (the paper profiles this at startup).
		s.baselineLatNS = avgLat
		s.baselineUseless = uselessRate
		s.haveBase = true
		return true
	}
	latHigh := avgLat > s.latThreshold*s.baselineLatNS
	pfWasteful := uselessRate > s.uselessThreshold*(s.baselineUseless+1e-9)
	s.contended = latHigh && pfWasteful
	if !latHigh {
		// Slowly track an improving baseline so the detector re-arms
		// after a pressure burst subsides.
		s.baselineLatNS = 0.9*s.baselineLatNS + 0.1*avgLat
	}
	return true
}

// Contended reports whether the last window showed both elevated load
// latency and a wasteful hardware prefetcher — the paper's condition
// for disabling the prefetcher.
func (s *Sampler) Contended() bool { return s.contended }

// BaselineLatencyNS returns the current low-pressure latency baseline.
func (s *Sampler) BaselineLatencyNS() float64 { return s.baselineLatNS }

// Samples returns how many windows have been evaluated.
func (s *Sampler) Samples() int { return s.samples }
