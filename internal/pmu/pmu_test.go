package pmu

import "testing"

func feed(s *Sampler, t, lat float64, loads, useless uint64) bool {
	return s.Sample(t, Counters{Loads: loads, LoadLatencySumNS: lat, UselessPrefetches: useless})
}

func TestBaselineEstablishment(t *testing.T) {
	s := NewSampler(1000, 1.10, 1.50)
	// Below the period: no sample.
	if feed(s, 500, 100*200, 100, 0) {
		t.Fatal("sampled before the period elapsed")
	}
	if !feed(s, 1000, 100*200, 100, 0) {
		t.Fatal("did not sample at the period")
	}
	if s.BaselineLatencyNS() != 200 {
		t.Fatalf("baseline = %v, want 200", s.BaselineLatencyNS())
	}
	if s.Contended() {
		t.Fatal("contended right after baseline")
	}
}

func TestContentionRequiresBothSignals(t *testing.T) {
	mk := func() *Sampler {
		s := NewSampler(1000, 1.10, 1.50)
		feed(s, 1000, 1000*200, 1000, 100) // baseline: 200ns, 0.1 useless/load
		return s
	}

	// Latency up 50%, useless rate unchanged: no contention.
	s := mk()
	feed(s, 2000, 1000*200+1000*300, 2000, 200)
	if s.Contended() {
		t.Fatal("latency alone must not signal contention")
	}

	// Useless rate up 3x, latency flat: no contention.
	s = mk()
	feed(s, 2000, 2000*200, 2000, 100+300)
	if s.Contended() {
		t.Fatal("useless prefetches alone must not signal contention")
	}

	// Both elevated: contention.
	s = mk()
	feed(s, 2000, 1000*200+1000*300, 2000, 100+300)
	if !s.Contended() {
		t.Fatal("both signals elevated but not contended")
	}
}

func TestRecoveryClearsContention(t *testing.T) {
	s := NewSampler(1000, 1.10, 1.50)
	feed(s, 1000, 1000*200, 1000, 100)
	feed(s, 2000, 1000*200+1000*400, 2000, 100+500) // pressure
	if !s.Contended() {
		t.Fatal("pressure not detected")
	}
	feed(s, 3000, 1000*600+1000*200, 3000, 600+50) // back to baseline
	if s.Contended() {
		t.Fatal("recovery not detected")
	}
}

func TestBaselineTracksImprovement(t *testing.T) {
	s := NewSampler(1000, 1.10, 1.50)
	feed(s, 1000, 1000*300, 1000, 0) // baseline 300
	before := s.BaselineLatencyNS()
	// Several calmer windows: baseline drifts down.
	lat := 1000 * 300.0
	loads := uint64(1000)
	for i := 0; i < 10; i++ {
		lat += 1000 * 150
		loads += 1000
		feed(s, float64(2000+i*1000), lat, loads, 0)
	}
	if s.BaselineLatencyNS() >= before {
		t.Fatal("baseline did not track the calmer regime")
	}
}

func TestZeroLoadWindow(t *testing.T) {
	s := NewSampler(1000, 1.10, 1.50)
	feed(s, 1000, 1000*200, 1000, 0)
	if feed(s, 2000, 1000*200, 1000, 0) { // no new loads
		t.Fatal("empty window should not update")
	}
	if s.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", s.Samples())
	}
}
