// Package workload builds the simulated address layouts the encode
// programs run over, mirroring the paper's benchmark setup: RS(k+m, k)
// random encoding over a large pre-filled region (§5.1).
//
// The default Scattered placement puts each block in an independent
// block-size-aligned slot of a shuffled region, matching "random
// stripes": the memory after a block within its 4 KiB page belongs to
// unrelated stripes, so hardware-prefetch overrun is wasted — the
// mechanism behind Obs. 4's read amplification. The Sequential placement
// makes each block column contiguous, the friendliest possible layout.
package workload

import (
	"fmt"
	"math/rand"

	"dialga/internal/mem"
)

// Placement selects the block placement policy.
type Placement int

const (
	// Scattered places blocks in shuffled, block-aligned slots
	// ("random stripes", the paper's default).
	Scattered Placement = iota
	// Sequential places stripe s's block j at column base j plus
	// s*blockSize (contiguous per-block streams).
	Sequential
)

// Layout is the address map of one thread's encoding workload.
type Layout struct {
	K, M      int
	BlockSize int
	Stripes   int
	placement Placement

	// Data[s][j] is the base address of data block j of stripe s.
	Data [][]mem.Addr
	// Parity[s][i] is the base address of parity block i of stripe s.
	Parity [][]mem.Addr
}

// ThreadRegion returns the base address of a thread's private address
// region; regions are 16 GiB apart so layouts never collide while still
// interleaving over the same device channels.
func ThreadRegion(threadID int) mem.Addr {
	return mem.Addr(uint64(threadID) << 34)
}

// parityRegionOffset separates the parity area from the data area
// within a thread region.
const parityRegionOffset = 8 << 30

// Config describes a workload layout.
type Config struct {
	K, M      int
	BlockSize int
	// TotalDataBytes is the amount of data encoded (the paper uses
	// 1 GiB; the simulator defaults to less since behaviour is
	// steady-state once the working set exceeds the LLC).
	TotalDataBytes int
	Placement      Placement
	Seed           int64
}

// New builds a layout for one thread.
func New(cfg Config, threadID int) (*Layout, error) {
	if cfg.K <= 0 || cfg.M < 0 {
		return nil, fmt.Errorf("workload: invalid k=%d m=%d", cfg.K, cfg.M)
	}
	if cfg.BlockSize <= 0 || cfg.BlockSize%mem.CachelineSize != 0 {
		return nil, fmt.Errorf("workload: block size %d must be a positive multiple of %d", cfg.BlockSize, mem.CachelineSize)
	}
	stripes := cfg.TotalDataBytes / (cfg.K * cfg.BlockSize)
	if stripes <= 0 {
		return nil, fmt.Errorf("workload: total %d B too small for one stripe of %d x %d B",
			cfg.TotalDataBytes, cfg.K, cfg.BlockSize)
	}
	l := &Layout{
		K: cfg.K, M: cfg.M, BlockSize: cfg.BlockSize,
		Stripes:   stripes,
		placement: cfg.Placement,
		Data:      make([][]mem.Addr, stripes),
		Parity:    make([][]mem.Addr, stripes),
	}
	base := ThreadRegion(threadID)
	parityBase := base + parityRegionOffset

	switch cfg.Placement {
	case Sequential:
		// Column layout: block j of all stripes contiguous.
		colStride := mem.Addr(stripes * cfg.BlockSize)
		for s := 0; s < stripes; s++ {
			l.Data[s] = make([]mem.Addr, cfg.K)
			for j := 0; j < cfg.K; j++ {
				l.Data[s][j] = base + mem.Addr(j)*colStride + mem.Addr(s*cfg.BlockSize)
			}
		}
	case Scattered:
		// Shuffled block-aligned slots.
		r := rand.New(rand.NewSource(cfg.Seed + int64(threadID)*7919))
		nSlots := stripes * cfg.K
		perm := r.Perm(nSlots)
		slot := 0
		for s := 0; s < stripes; s++ {
			l.Data[s] = make([]mem.Addr, cfg.K)
			for j := 0; j < cfg.K; j++ {
				l.Data[s][j] = base + mem.Addr(perm[slot]*cfg.BlockSize)
				slot++
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown placement %d", cfg.Placement)
	}

	// Parity always sequential per column in its own region: parity is
	// freshly written, placement does not affect the read path. Columns
	// are staggered by one page each so they do not alias onto the
	// same interleave channel.
	parityStride := mem.Addr(stripes*cfg.BlockSize) + mem.PageSize
	for s := 0; s < stripes; s++ {
		l.Parity[s] = make([]mem.Addr, cfg.M)
		for i := 0; i < cfg.M; i++ {
			l.Parity[s][i] = parityBase + mem.Addr(i)*parityStride + mem.Addr(s*cfg.BlockSize)
		}
	}
	return l, nil
}

// DataBytes returns the total data bytes the layout encodes.
func (l *Layout) DataBytes() uint64 {
	return uint64(l.Stripes) * uint64(l.K) * uint64(l.BlockSize)
}

// LinesPerBlock returns the number of 64 B cachelines per block.
func (l *Layout) LinesPerBlock() int {
	return (l.BlockSize + mem.CachelineSize - 1) / mem.CachelineSize
}
