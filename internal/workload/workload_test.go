package workload

import (
	"testing"

	"dialga/internal/mem"
)

func TestValidation(t *testing.T) {
	bad := []Config{
		{K: 0, M: 4, BlockSize: 1024, TotalDataBytes: 1 << 20},
		{K: 8, M: -1, BlockSize: 1024, TotalDataBytes: 1 << 20},
		{K: 8, M: 4, BlockSize: 100, TotalDataBytes: 1 << 20}, // unaligned
		{K: 8, M: 4, BlockSize: 1024, TotalDataBytes: 1024},   // < one stripe
		{K: 8, M: 4, BlockSize: 1024, TotalDataBytes: 1 << 20, Placement: Placement(9)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 0); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestScatteredLayout(t *testing.T) {
	cfg := Config{K: 8, M: 4, BlockSize: 1024, TotalDataBytes: 1 << 20, Placement: Scattered, Seed: 1}
	l, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Stripes != (1<<20)/(8*1024) {
		t.Fatalf("stripes = %d", l.Stripes)
	}
	if l.DataBytes() != 1<<20 {
		t.Fatalf("DataBytes = %d", l.DataBytes())
	}
	// All data blocks are block-aligned, unique, and inside the data
	// region.
	seen := map[mem.Addr]bool{}
	for s := 0; s < l.Stripes; s++ {
		if len(l.Data[s]) != 8 || len(l.Parity[s]) != 4 {
			t.Fatal("wrong stripe width")
		}
		for _, a := range l.Data[s] {
			if uint64(a)%1024 != 0 {
				t.Fatalf("block %x not aligned", uint64(a))
			}
			if seen[a] {
				t.Fatalf("block %x reused", uint64(a))
			}
			seen[a] = true
			if a >= ThreadRegion(0)+parityRegionOffset {
				t.Fatal("data block in parity region")
			}
		}
	}
}

func TestScatteredIsShuffled(t *testing.T) {
	cfg := Config{K: 4, M: 2, BlockSize: 1024, TotalDataBytes: 1 << 20, Placement: Scattered, Seed: 7}
	l, _ := New(cfg, 0)
	sequentialPairs := 0
	total := 0
	var prev mem.Addr
	for s := 0; s < l.Stripes; s++ {
		for _, a := range l.Data[s] {
			if total > 0 && a == prev+1024 {
				sequentialPairs++
			}
			prev = a
			total++
		}
	}
	if sequentialPairs > total/10 {
		t.Fatalf("scattered layout looks sequential: %d/%d consecutive pairs", sequentialPairs, total)
	}
}

func TestSequentialLayout(t *testing.T) {
	cfg := Config{K: 4, M: 2, BlockSize: 512, TotalDataBytes: 1 << 19, Placement: Sequential}
	l, err := New(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Column-contiguity: stripe s+1's block j directly follows stripe
	// s's block j.
	for s := 0; s+1 < l.Stripes; s++ {
		for j := 0; j < 4; j++ {
			if l.Data[s+1][j] != l.Data[s][j]+512 {
				t.Fatalf("sequential layout broken at stripe %d block %d", s, j)
			}
		}
	}
}

func TestThreadRegionsDisjoint(t *testing.T) {
	cfg := Config{K: 8, M: 4, BlockSize: 4096, TotalDataBytes: 4 << 20, Placement: Scattered, Seed: 3}
	l0, _ := New(cfg, 0)
	l1, _ := New(cfg, 1)
	if ThreadRegion(1)-ThreadRegion(0) < mem.Addr(cfg.TotalDataBytes)*4 {
		t.Fatal("thread regions too close")
	}
	max0 := mem.Addr(0)
	for s := range l0.Parity {
		for _, a := range l0.Parity[s] {
			if a > max0 {
				max0 = a
			}
		}
	}
	if max0 >= ThreadRegion(1) {
		t.Fatal("thread 0 layout spills into thread 1's region")
	}
	if l1.Data[0][0] < ThreadRegion(1) {
		t.Fatal("thread 1 layout below its region")
	}
}

func TestParityDistinctFromData(t *testing.T) {
	cfg := Config{K: 4, M: 2, BlockSize: 1024, TotalDataBytes: 1 << 20, Placement: Scattered, Seed: 5}
	l, _ := New(cfg, 0)
	for s := range l.Parity {
		for i, a := range l.Parity[s] {
			if uint64(a)%64 != 0 {
				t.Fatal("parity unaligned")
			}
			if i > 0 && l.Parity[s][i] == l.Parity[s][i-1] {
				t.Fatal("duplicate parity address")
			}
		}
	}
}

func TestLinesPerBlock(t *testing.T) {
	cfg := Config{K: 2, M: 1, BlockSize: 5120, TotalDataBytes: 1 << 20}
	l, _ := New(cfg, 0)
	if l.LinesPerBlock() != 80 {
		t.Fatalf("5 KB block = %d lines, want 80", l.LinesPerBlock())
	}
}

// Parity columns must not alias onto a single interleave channel
// (stride multiples of the channel count would serialize all parity
// writes; the columns are page-staggered to prevent it).
func TestParityColumnsSpreadAcrossChannels(t *testing.T) {
	cfg := Config{K: 8, M: 4, BlockSize: 1024, TotalDataBytes: 8 << 20, Placement: Scattered, Seed: 1}
	l, _ := New(cfg, 0)
	const channels = 6
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		seen[uint64(l.Parity[0][i].Page())%channels] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all parity columns alias to %d channel(s)", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{K: 8, M: 4, BlockSize: 1024, TotalDataBytes: 1 << 20, Placement: Scattered, Seed: 11}
	a, _ := New(cfg, 0)
	b, _ := New(cfg, 0)
	for s := range a.Data {
		for j := range a.Data[s] {
			if a.Data[s][j] != b.Data[s][j] {
				t.Fatal("layout not deterministic")
			}
		}
	}
}
