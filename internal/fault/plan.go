package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// String serializes the plan to a compact, order-preserving form —
// "flip@100.3;zero@40+12;trunc@999;err@50" — suitable for pinning a
// failing chaos case in a regression test. Parse inverts it.
func (p Plan) String() string {
	var b strings.Builder
	for i, op := range p.Ops {
		if i > 0 {
			b.WriteByte(';')
		}
		switch op.Kind {
		case BitFlip:
			fmt.Fprintf(&b, "flip@%d.%d", op.Off, op.Bit&7)
		case ZeroFill:
			fmt.Fprintf(&b, "zero@%d+%d", op.Off, op.Len)
		case Stall:
			fmt.Fprintf(&b, "stall@%d+%d", op.Off, op.Len)
		case Slow:
			if op.Span > 0 {
				fmt.Fprintf(&b, "slow@%d+%d~%d", op.Off, op.Len, op.Span)
			} else {
				fmt.Fprintf(&b, "slow@%d+%d", op.Off, op.Len)
			}
		case Refuse, Blackhole:
			fmt.Fprintf(&b, "%s@%d+%d", op.Kind, op.Off, op.Len)
		default:
			fmt.Fprintf(&b, "%s@%d", op.Kind, op.Off)
		}
	}
	return b.String()
}

// Parse decodes a plan produced by Plan.String. An empty string is
// the empty plan.
func Parse(s string) (Plan, error) {
	var p Plan
	if s == "" {
		return p, nil
	}
	for _, tok := range strings.Split(s, ";") {
		name, rest, ok := strings.Cut(tok, "@")
		if !ok {
			return Plan{}, fmt.Errorf("%w: op %q has no offset", errBadPlan, tok)
		}
		var op Op
		switch name {
		case "flip":
			op.Kind = BitFlip
			offs, bits, ok := strings.Cut(rest, ".")
			if !ok {
				return Plan{}, fmt.Errorf("%w: flip op %q wants off.bit", errBadPlan, tok)
			}
			off, err := strconv.ParseInt(offs, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("%w: %v", errBadPlan, err)
			}
			bit, err := strconv.ParseUint(bits, 10, 8)
			if err != nil || bit > 7 {
				return Plan{}, fmt.Errorf("%w: flip bit %q out of range", errBadPlan, bits)
			}
			op.Off, op.Bit = off, uint8(bit)
		case "zero", "stall", "slow", "refuse", "hole":
			switch name {
			case "zero":
				op.Kind = ZeroFill
			case "stall":
				op.Kind = Stall
			case "slow":
				op.Kind = Slow
			case "refuse":
				op.Kind = Refuse
			case "hole":
				op.Kind = Blackhole
			}
			offs, lens, ok := strings.Cut(rest, "+")
			if !ok {
				return Plan{}, fmt.Errorf("%w: %s op %q wants off+len", errBadPlan, name, tok)
			}
			off, err := strconv.ParseInt(offs, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("%w: %v", errBadPlan, err)
			}
			// Slow accepts an optional "~span" suffix bounding the slow
			// period: "slow@0+500~4096" straggles only bytes [0, 4096).
			if spans, hasSpan := "", false; true {
				lens, spans, hasSpan = strings.Cut(lens, "~")
				if hasSpan {
					if op.Kind != Slow {
						return Plan{}, fmt.Errorf("%w: %s op %q: span only valid for slow", errBadPlan, name, tok)
					}
					sp, err := strconv.ParseInt(spans, 10, 64)
					if err != nil || sp <= 0 {
						return Plan{}, fmt.Errorf("%w: slow span %q invalid", errBadPlan, spans)
					}
					op.Span = sp
				}
			}
			l, err := strconv.ParseInt(lens, 10, 64)
			if err != nil || l < 0 {
				return Plan{}, fmt.Errorf("%w: %s length %q invalid", errBadPlan, name, lens)
			}
			op.Off, op.Len = off, l
		case "trunc", "err", "short":
			switch name {
			case "trunc":
				op.Kind = Truncate
			case "err":
				op.Kind = ErrOnce
			case "short":
				op.Kind = ShortWrite
			}
			off, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("%w: %v", errBadPlan, err)
			}
			op.Off = off
		default:
			return Plan{}, fmt.Errorf("%w: unknown op %q", errBadPlan, name)
		}
		if op.Off < 0 {
			return Plan{}, fmt.Errorf("%w: negative offset in %q", errBadPlan, tok)
		}
		p.Ops = append(p.Ops, op)
	}
	return p, nil
}

// Generate derives a reproducible read-side plan from seed: n faults
// drawn over a stream of size bytes, weighted toward data corruption
// (bit flips and zero fills) with occasional transient errors and at
// most one truncation. The same (seed, size, n) always yields the
// same plan, so a fuzz crash reproduces from its inputs alone.
func Generate(seed uint64, size int64, n int) Plan {
	var p Plan
	if size <= 0 || n <= 0 {
		return p
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	truncated := false
	for i := 0; i < n; i++ {
		off := rng.Int63n(size)
		switch draw := rng.Intn(10); {
		case draw < 5:
			p.Ops = append(p.Ops, Op{Kind: BitFlip, Off: off, Bit: uint8(rng.Intn(8))})
		case draw < 8:
			l := rng.Int63n(64) + 1
			if off+l > size {
				l = size - off
			}
			p.Ops = append(p.Ops, Op{Kind: ZeroFill, Off: off, Len: l})
		case draw < 9 || truncated:
			p.Ops = append(p.Ops, Op{Kind: ErrOnce, Off: off})
		default:
			truncated = true
			p.Ops = append(p.Ops, Op{Kind: Truncate, Off: off})
		}
	}
	return p
}
