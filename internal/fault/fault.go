// Package fault provides deterministic, reproducible I/O fault
// injection for the erasure-coding pipeline's chaos tests.
//
// A Plan is an ordered list of byte-offset-addressed operations —
// flip a bit, zero a range, truncate the stream, raise a one-shot
// transient error, cut or stall a write, slow every read like a
// straggling device — applied by the Reader and Writer wrappers as
// bytes flow through them. Plans are plain data:
// they serialize to a compact string (Plan.String / Parse) so a
// failing fuzz or property-test case can be pinned verbatim in a
// regression test, and Generate derives a random-but-reproducible
// plan from a bare seed.
//
// Transient faults are reported as *Err, which satisfies
// errors.Is(err, ErrInjected) and exposes Transient() bool so
// consumers (internal/stream's decoder) can distinguish a flaky read
// from a dead one without importing this package.
package fault

import (
	"errors"
	"fmt"
)

// Kind enumerates the injectable fault operations.
type Kind uint8

const (
	// BitFlip flips bit Bit of the byte at offset Off (read and
	// write paths).
	BitFlip Kind = iota
	// ZeroFill zeroes Len bytes starting at offset Off (read and
	// write paths).
	ZeroFill
	// Truncate ends the stream at offset Off: reads return io.EOF,
	// writes silently drop every byte from Off on (a torn write).
	Truncate
	// ErrOnce raises a single transient *Err immediately before the
	// byte at offset Off is transferred; the stream position does not
	// advance, so a retry continues where it left off.
	ErrOnce
	// ShortWrite cuts the write that crosses offset Off at Off and
	// returns a transient *Err for the undelivered tail, once.
	ShortWrite
	// Stall sleeps Len microseconds before the transfer that crosses
	// offset Off proceeds (write path).
	Stall
	// Slow turns the stream into a straggler: every read that
	// transfers a byte at or past offset Off — and, when Span is
	// positive, before Off+Span — first sleeps a delay drawn
	// deterministically per read from the op itself. The j-th delayed
	// read sleeps a value in [Len/2, 3*Len/2) microseconds derived by
	// hashing (Off, Len, j), so a plan replays the same latency trace
	// every run without any extra seed state (read path). Span zero
	// means the straggling persists to EOF; a bounded Span models a
	// device that is slow for a while and then recovers, which is how
	// chaos tests move a straggler from one shard to another mid-run.
	Slow
	// Refuse is a connection-level fault interpreted by Transport: the
	// request is failed immediately with a transient error, as a
	// refused connection would be. Unlike the byte-addressed ops, Off
	// and Len count whole requests: requests Off..Off+Len-1 (counted
	// from when the plan was installed for the host) are refused, and
	// Len zero refuses every request from Off on — a network partition
	// that holds until the plan is cleared. Ignored by Reader/Writer.
	Refuse
	// Blackhole is a connection-level fault interpreted by Transport:
	// affected requests hang until their context ends, the way a
	// blackholed route (packets silently dropped, no RST) behaves.
	// Off/Len address whole requests exactly like Refuse. Ignored by
	// Reader/Writer.
	Blackhole
)

var kindNames = map[Kind]string{
	BitFlip:    "flip",
	ZeroFill:   "zero",
	Truncate:   "trunc",
	ErrOnce:    "err",
	ShortWrite: "short",
	Stall:      "stall",
	Slow:       "slow",
	Refuse:     "refuse",
	Blackhole:  "hole",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one injected fault. Byte-stream ops are addressed by absolute
// stream offset; the connection-level ops (Refuse, Blackhole) are
// addressed by request count instead.
type Op struct {
	Kind Kind
	Off  int64 // absolute byte offset (Refuse/Blackhole: first request index)
	Len  int64 // ZeroFill: span in bytes; Stall/Slow: microseconds; Refuse/Blackhole: request count, 0 = unbounded
	Span int64 // Slow: bytes the op covers from Off; 0 = to EOF
	Bit  uint8 // BitFlip: bit index 0..7
}

// Plan is an ordered set of fault operations sharing one stream.
type Plan struct {
	Ops []Op
}

// Err is the transient error the injector raises for ErrOnce and
// ShortWrite faults. errors.Is(err, ErrInjected) matches every
// instance regardless of offset.
type Err struct {
	Off int64 // stream offset the fault fired at
}

func (e *Err) Error() string {
	return fmt.Sprintf("fault: injected transient error at offset %d", e.Off)
}

// Transient reports that the failure is momentary: the wrapped stream
// is still usable and a retry may succeed. internal/stream keys its
// per-stripe (rather than permanent) shard demotion off this method.
func (e *Err) Transient() bool { return true }

// Is makes every *Err match ErrInjected under errors.Is.
func (e *Err) Is(target error) bool {
	_, ok := target.(*Err)
	return ok
}

// ErrInjected is the sentinel for injected transient faults:
// errors.Is(err, ErrInjected) is true for every error a Reader or
// Writer raises on purpose.
var ErrInjected error = &Err{Off: -1}

// errBadPlan wraps plan-parse failures.
var errBadPlan = errors.New("fault: malformed plan")
