package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dialga/internal/obs"
)

func TestConnPlanRoundTrip(t *testing.T) {
	cases := []string{
		"refuse@0+0",
		"refuse@2+5",
		"hole@0+0",
		"hole@1+3",
		"refuse@0+2;flip@100.3;slow@0+500",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	if _, err := Parse("refuse@5"); err == nil {
		t.Fatal("refuse without +len must not parse")
	}
}

// transportPair is a live server plus a fault transport client aimed
// at it.
func transportPair(t *testing.T, reg *obs.Registry) (host string, cli *http.Client, ft *Transport) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	t.Cleanup(ts.Close)
	ft = NewTransport(nil)
	if reg != nil {
		ft.WithMetrics(reg)
	}
	return ts.Listener.Addr().String(), &http.Client{Transport: ft}, ft
}

func get(cli *http.Client, host string) error {
	resp, err := cli.Get("http://" + host + "/")
	if err != nil {
		return err
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	return err
}

func TestTransportRefuseWindow(t *testing.T) {
	reg := obs.NewRegistry()
	host, cli, ft := transportPair(t, reg)

	// refuse@1+2: request 0 passes, 1 and 2 refused, 3+ pass again.
	plan, err := Parse("refuse@1+2")
	if err != nil {
		t.Fatal(err)
	}
	ft.Set(host, plan)
	for i, wantErr := range []bool{false, true, true, false, false} {
		err := get(cli, host)
		if wantErr != (err != nil) {
			t.Fatalf("request %d: err=%v, want error=%v", i, err, wantErr)
		}
		if wantErr && !errors.Is(err, ErrInjected) {
			t.Fatalf("request %d: %v does not match ErrInjected", i, err)
		}
	}
	if got := reg.Counter("fault_injected_total", "",
		obs.Label{Key: "kind", Value: "refuse"}).Value(); got != 2 {
		t.Fatalf("fault_injected_total{refuse} = %d, want 2", got)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	host, cli, ft := transportPair(t, nil)

	ft.Partition(host)
	if err := get(cli, host); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned request: %v, want injected fault", err)
	}
	// The partition is unbounded: still refused many requests later.
	for i := 0; i < 5; i++ {
		if err := get(cli, host); err == nil {
			t.Fatalf("request %d crossed the partition", i)
		}
	}
	ft.Heal(host)
	if err := get(cli, host); err != nil {
		t.Fatalf("healed request: %v", err)
	}
	// Set resets the request counter: a fresh refuse@0+1 fires on the
	// very next request even though the host served traffic before.
	ft.Set(host, Plan{Ops: []Op{{Kind: Refuse, Len: 1}}})
	if err := get(cli, host); err == nil {
		t.Fatal("counter did not reset with the new plan")
	}
	if err := get(cli, host); err != nil {
		t.Fatalf("request past the refuse window: %v", err)
	}
}

func TestTransportBlackholeHonoursContext(t *testing.T) {
	host, cli, ft := transportPair(t, nil)
	ft.Set(host, Plan{Ops: []Op{{Kind: Blackhole}}})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+host+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cli.Do(req); err == nil {
		t.Fatal("blackholed request succeeded")
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 5*time.Second {
		t.Fatalf("blackhole held the request %v, want ~ctx deadline", d)
	}
}

func TestTransportBodyFaultsStillApply(t *testing.T) {
	host, cli, ft := transportPair(t, nil)
	// Conn ops and body ops share one plan: request 0 refused, then
	// every body truncated to 3 bytes.
	plan, err := Parse("refuse@0+1;trunc@3")
	if err != nil {
		t.Fatal(err)
	}
	ft.Set(host, plan)
	if err := get(cli, host); err == nil {
		t.Fatal("first request should be refused")
	}
	resp, err := cli.Get("http://" + host + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != "pay" {
		t.Fatalf("truncated body = %q, %v; want \"pay\"", body, err)
	}
}
