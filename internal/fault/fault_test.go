package fault

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"dialga/internal/obs"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

// readAllFlaky drains r, retrying across transient injected errors the
// way a fault-aware consumer would.
func readAllFlaky(t *testing.T, r io.Reader) ([]byte, int) {
	t.Helper()
	var out []byte
	transients := 0
	buf := make([]byte, 13) // odd size to exercise op-boundary capping
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		switch {
		case err == nil:
		case err == io.EOF:
			return out, transients
		case errors.Is(err, ErrInjected):
			transients++
			if transients > 100 {
				t.Fatal("transient error injected more than once per op")
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestReaderBitFlip(t *testing.T) {
	src := payload(100)
	plan := Plan{Ops: []Op{{Kind: BitFlip, Off: 42, Bit: 5}}}
	got, _ := readAllFlaky(t, NewReader(bytes.NewReader(src), plan))
	if len(got) != 100 {
		t.Fatalf("got %d bytes, want 100", len(got))
	}
	want := payload(100)
	want[42] ^= 1 << 5
	if !bytes.Equal(got, want) {
		t.Fatal("bit flip not applied exactly at offset 42")
	}
}

func TestReaderZeroFill(t *testing.T) {
	src := payload(200)
	plan := Plan{Ops: []Op{{Kind: ZeroFill, Off: 50, Len: 30}}}
	got, _ := readAllFlaky(t, NewReader(bytes.NewReader(src), plan))
	want := payload(200)
	clear(want[50:80])
	if !bytes.Equal(got, want) {
		t.Fatal("zero fill not applied to [50,80)")
	}
}

func TestReaderTruncate(t *testing.T) {
	src := payload(100)
	plan := Plan{Ops: []Op{{Kind: Truncate, Off: 33}}}
	got, _ := readAllFlaky(t, NewReader(bytes.NewReader(src), plan))
	if !bytes.Equal(got, src[:33]) {
		t.Fatalf("truncate: got %d bytes, want clean EOF after 33", len(got))
	}
}

// TestReaderErrOnce pins the transient contract: the error fires once,
// consumes nothing, and the stream resumes byte-exact.
func TestReaderErrOnce(t *testing.T) {
	src := payload(100)
	plan := Plan{Ops: []Op{{Kind: ErrOnce, Off: 40}}}
	got, transients := readAllFlaky(t, NewReader(bytes.NewReader(src), plan))
	if transients != 1 {
		t.Fatalf("transient fired %d times, want 1", transients)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stream corrupted or misaligned after transient error")
	}
}

func TestReaderErrOnceAtStart(t *testing.T) {
	src := payload(20)
	r := NewReader(bytes.NewReader(src), Plan{Ops: []Op{{Kind: ErrOnce, Off: 0}}})
	if _, err := r.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("first read returned %v, want injected error", err)
	}
	got, transients := readAllFlaky(t, r)
	if transients != 0 || !bytes.Equal(got, src) {
		t.Fatal("stream did not resume cleanly after offset-0 transient")
	}
}

func TestErrTransientAndIs(t *testing.T) {
	err := error(&Err{Off: 7})
	if !errors.Is(err, ErrInjected) {
		t.Fatal("errors.Is(ErrInjected) false for *Err")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("*Err does not advertise Transient() == true")
	}
	if errors.Is(errors.New("other"), ErrInjected) {
		t.Fatal("foreign error matched ErrInjected")
	}
}

func TestWriterShortWriteAndResume(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{{Kind: ShortWrite, Off: 10}}})
	src := payload(30)
	n, err := w.Write(src)
	if n != 10 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned (%d, %v), want (10, injected)", n, err)
	}
	if n, err := w.Write(src[10:]); n != 20 || err != nil {
		t.Fatalf("resumed write returned (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.Bytes(), src) {
		t.Fatal("writer payload corrupted across short write")
	}
}

func TestWriterTornWrite(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{{Kind: Truncate, Off: 12}}})
	src := payload(40)
	if n, err := w.Write(src); n != 40 || err != nil {
		t.Fatalf("torn write returned (%d, %v), want silent success", n, err)
	}
	if !bytes.Equal(sink.Bytes(), src[:12]) {
		t.Fatalf("sink has %d bytes, want 12 (silent truncation)", sink.Len())
	}
}

func TestWriterCorruptsCopyNotCaller(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{
		{Kind: BitFlip, Off: 3, Bit: 0},
		{Kind: ZeroFill, Off: 8, Len: 4},
	}})
	src := payload(16)
	orig := append([]byte(nil), src...)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, orig) {
		t.Fatal("writer mutated the caller's buffer")
	}
	want := append([]byte(nil), orig...)
	want[3] ^= 1
	clear(want[8:12])
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatal("corruption ops not applied to the written stream")
	}
}

func TestWriterErrOnce(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{{Kind: ErrOnce, Off: 5}}})
	src := payload(20)
	n, err := w.Write(src)
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write returned (%d, %v), want (5, injected)", n, err)
	}
	if n, err := w.Write(src[5:]); n != 15 || err != nil {
		t.Fatalf("retry returned (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.Bytes(), src) {
		t.Fatal("payload corrupted across transient write error")
	}
}

func TestWriterStall(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{{Kind: Stall, Off: 4, Len: 1}}})
	src := payload(10)
	if n, err := w.Write(src); n != 10 || err != nil {
		t.Fatalf("stalled write returned (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.Bytes(), src) {
		t.Fatal("stall corrupted the stream")
	}
}

func TestPlanStringParseRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Ops: []Op{{Kind: BitFlip, Off: 100, Bit: 3}}},
		{Ops: []Op{
			{Kind: BitFlip, Off: 0, Bit: 7},
			{Kind: ZeroFill, Off: 40, Len: 12},
			{Kind: Truncate, Off: 999},
			{Kind: ErrOnce, Off: 50},
			{Kind: ShortWrite, Off: 8},
			{Kind: Stall, Off: 64, Len: 250},
			{Kind: Slow, Off: 0, Len: 4000},
			{Kind: Slow, Off: 512, Len: 3000, Span: 4096},
		}},
	}
	for _, p := range plans {
		s := p.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got.String() != s {
			t.Fatalf("round trip %q -> %q", s, got.String())
		}
	}
	for _, bad := range []string{"flip@", "zap@3", "flip@1.9", "zero@5", "trunc@-1", "flip@x.1",
		"zero@5+2~9", "slow@5+2~0", "slow@5+2~-3", "slow@5+2~x"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted a malformed plan", bad)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(12345, 1<<16, 8)
	b := Generate(12345, 1<<16, 8)
	if a.String() != b.String() {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}
	if len(a.Ops) != 8 {
		t.Fatalf("Generate produced %d ops, want 8", len(a.Ops))
	}
	c := Generate(54321, 1<<16, 8)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical plans")
	}
	truncs := 0
	for _, op := range a.Ops {
		if op.Off < 0 || op.Off >= 1<<16 {
			t.Fatalf("op offset %d outside stream", op.Off)
		}
		if op.Kind == Truncate {
			truncs++
		}
	}
	if truncs > 1 {
		t.Fatalf("%d truncations in one plan, want at most 1", truncs)
	}
	if got := Generate(1, 0, 5); len(got.Ops) != 0 {
		t.Fatal("Generate on an empty stream should produce no ops")
	}
}

// TestReaderPlanFromString drives the reader with a parsed plan,
// proving a serialized chaos case replays identically.
func TestReaderPlanFromString(t *testing.T) {
	plan, err := Parse("flip@10.2;zero@20+5;err@30;trunc@50")
	if err != nil {
		t.Fatal(err)
	}
	src := payload(100)
	got, transients := readAllFlaky(t, NewReader(bytes.NewReader(src), plan))
	want := payload(50)
	want[10] ^= 1 << 2
	clear(want[20:25])
	if transients != 1 || !bytes.Equal(got, want) {
		t.Fatalf("replayed plan mismatch: %d transients, %d bytes", transients, len(got))
	}
}

// TestReaderSlowDeterministic pins the Slow contract: every read that
// transfers a byte at or past the op's offset sleeps a per-read delay
// that replays identically run over run, and the payload is untouched.
func TestReaderSlowDeterministic(t *testing.T) {
	src := payload(64)
	run := func() ([]byte, time.Duration) {
		start := time.Now()
		got, _ := readAllFlaky(t, NewReader(bytes.NewReader(src), Plan{
			Ops: []Op{{Kind: Slow, Off: 0, Len: 2000}}, // ~2ms mean per read
		}))
		return got, time.Since(start)
	}
	got, dur := run()
	if !bytes.Equal(got, src) {
		t.Fatal("slow reader corrupted the stream")
	}
	// 64 bytes in 13-byte reads = 5 delayed reads of >= 1ms each.
	if dur < 5*time.Millisecond {
		t.Fatalf("slow plan added only %v of latency, want >= 5ms", dur)
	}
	// The delay schedule itself is a pure function of the op.
	for j := int64(0); j < 16; j++ {
		if slowDelay(Op{Kind: Slow, Off: 0, Len: 2000}, j) != slowDelay(Op{Kind: Slow, Off: 0, Len: 2000}, j) {
			t.Fatal("slowDelay not deterministic")
		}
		d := slowDelay(Op{Kind: Slow, Off: 0, Len: 2000}, j)
		if d < time.Millisecond || d >= 3*time.Millisecond {
			t.Fatalf("draw %d = %v outside [Len/2, 3*Len/2)", j, d)
		}
	}
}

// TestReaderSlowRespectsOffset: reads entirely before the offset pay
// no latency.
func TestReaderSlowRespectsOffset(t *testing.T) {
	src := payload(100)
	r := NewReader(bytes.NewReader(src), Plan{
		Ops: []Op{{Kind: Slow, Off: 90, Len: 50000}},
	})
	start := time.Now()
	buf := make([]byte, 45)
	for pos := 0; pos < 90; pos += 45 {
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("reads before the slow offset took %v", d)
	}
}

// TestReaderSlowSpanBounded: a Slow op with a Span stops straggling
// once the stream position passes Off+Span — the device recovered.
func TestReaderSlowSpanBounded(t *testing.T) {
	src := payload(200)
	// Slow only over bytes [0, 50): heavy 20ms-mean delays, then clean.
	r := NewReader(bytes.NewReader(src), Plan{
		Ops: []Op{{Kind: Slow, Off: 0, Len: 20000, Span: 50}},
	})
	buf := make([]byte, 50)
	start := time.Now()
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("in-span read added only %v of latency, want >= 10ms", d)
	}
	start = time.Now()
	for pos := 50; pos < 200; pos += 50 {
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("post-span reads took %v, want fast", d)
	}
}

// TestReaderSlowCancelled: a cancelled context interrupts an injected
// sleep instead of serving it out.
func TestReaderSlowCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewReader(bytes.NewReader(payload(64)), Plan{
		Ops: []Op{{Kind: Slow, Off: 0, Len: 10_000_000}}, // ~10s mean
	}).WithContext(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled slow read returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled slow read did not return")
	}
}

// TestWriterStallCancelled: the write-side stall honours its context
// the same way.
func TestWriterStallCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{
		Ops: []Op{{Kind: Stall, Off: 0, Len: 10_000_000}},
	}).WithContext(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := w.Write(payload(8))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled stall returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled stalled write did not return")
	}
}

// TestInjectMetrics checks WithMetrics accounting: every fault a
// Reader or Writer actually delivers shows up once in
// fault_injected_total{kind=...}.
func TestInjectMetrics(t *testing.T) {
	kindCount := func(reg *obs.Registry, k Kind) uint64 {
		return reg.Counter("fault_injected_total", "", obs.Label{Key: "kind", Value: k.String()}).Value()
	}

	reg := obs.NewRegistry()
	src := payload(16)
	r := NewReader(bytes.NewReader(src), Plan{Ops: []Op{
		{Kind: BitFlip, Off: 2, Bit: 0},
		{Kind: ErrOnce, Off: 4},
		{Kind: Truncate, Off: 8},
	}}).WithMetrics(reg)
	if _, err := io.ReadAll(onlyTransient{r}); err != nil {
		t.Fatal(err)
	}
	if got := kindCount(reg, BitFlip); got != 1 {
		t.Fatalf("flip count = %d, want 1", got)
	}
	if got := kindCount(reg, ErrOnce); got != 1 {
		t.Fatalf("err count = %d, want 1", got)
	}
	// Drive one read past the truncation point so the EOF injection is
	// observed and counted exactly once despite repeated reads.
	for i := 0; i < 3; i++ {
		if _, err := r.Read(make([]byte, 4)); err != io.EOF {
			t.Fatalf("post-truncate read error = %v, want EOF", err)
		}
	}
	if got := kindCount(reg, Truncate); got != 1 {
		t.Fatalf("trunc count = %d, want 1", got)
	}

	wreg := obs.NewRegistry()
	var sink bytes.Buffer
	w := NewWriter(&sink, Plan{Ops: []Op{
		{Kind: ZeroFill, Off: 1, Len: 2},
		{Kind: Stall, Off: 3, Len: 1},
		{Kind: ShortWrite, Off: 6},
	}}).WithMetrics(wreg)
	data := payload(8)
	n, err := w.Write(data)
	if err == nil {
		t.Fatal("short write did not surface a fault")
	}
	if _, err := w.Write(data[n:]); err != nil {
		t.Fatal(err)
	}
	if got := kindCount(wreg, ZeroFill); got != 1 {
		t.Fatalf("zero count = %d, want 1", got)
	}
	if got := kindCount(wreg, Stall); got != 1 {
		t.Fatalf("stall count = %d, want 1", got)
	}
	if got := kindCount(wreg, ShortWrite); got != 1 {
		t.Fatalf("short count = %d, want 1", got)
	}
}

// onlyTransient retries transient injected errors so ReadAll can run a
// faulty stream to EOF.
type onlyTransient struct{ r io.Reader }

func (o onlyTransient) Read(p []byte) (int, error) {
	for {
		n, err := o.r.Read(p)
		if err != nil && errors.Is(err, ErrInjected) {
			if n == 0 {
				continue
			}
			return n, nil
		}
		return n, err
	}
}
