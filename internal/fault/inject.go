package fault

import (
	"context"
	"io"
	"time"

	"dialga/internal/obs"
)

// injectMetrics counts applied fault injections per kind in a
// registry as fault_injected_total{kind=...}. Nil (the default) is a
// no-op, so the injectors stay dependency-free unless a registry is
// attached with WithMetrics.
type injectMetrics struct {
	c [Blackhole + 1]*obs.Counter // indexed by Kind
}

func newInjectMetrics(reg *obs.Registry) *injectMetrics {
	if reg == nil {
		return nil
	}
	m := &injectMetrics{}
	for k := range m.c {
		m.c[k] = reg.Counter("fault_injected_total",
			"Fault injections applied to wrapped streams, by kind.",
			obs.Label{Key: "kind", Value: Kind(k).String()})
	}
	return m
}

func (m *injectMetrics) inc(k Kind, n uint64) {
	if m == nil || n == 0 {
		return
	}
	m.c[k].Add(n)
}

// sleep pauses for d unless ctx is cancelled first, in which case it
// returns the context's error. A nil ctx sleeps unconditionally.
// Injected latency (Stall, Slow) goes through here so a cancelled
// decode is never held hostage by its own fault plan.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, stateless hash used
// to derive per-read Slow delays from plan data alone, so the latency
// trace is reproducible without carrying RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slowDelay returns the sleep for the j-th read delayed by a Slow op:
// uniform over [Len/2, 3*Len/2) microseconds, deterministic in
// (Off, Len, j).
func slowDelay(op Op, j int64) time.Duration {
	if op.Len <= 0 {
		return 0
	}
	h := splitmix64(uint64(op.Off)*0x100000001b3 ^ uint64(op.Len)<<1 ^ uint64(j))
	us := op.Len/2 + int64(h%uint64(op.Len))
	return time.Duration(us) * time.Microsecond
}

// Reader applies a Plan to the bytes flowing out of an underlying
// reader. Offsets are absolute: byte 0 is the first byte the wrapped
// reader would ever return. BitFlip and ZeroFill mutate data in
// place, Truncate converts the stream to a clean early EOF, and
// ErrOnce raises one transient *Err without consuming input — the
// next Read resumes exactly where the stream stopped, the way a
// flaky-but-live transport behaves. Slow makes the reader a
// persistent straggler: a deterministic per-read sleep before every
// transfer at or past its offset.
type Reader struct {
	r     io.Reader
	ctx   context.Context
	pos   int64
	ops   []Op
	fired []bool  // ErrOnce (and first-Truncate) ops that already triggered
	count []int64 // Slow ops: reads delayed so far (the delay-draw index)
	m     *injectMetrics
}

// NewReader wraps r with the plan's read-side faults. Write-side ops
// (ShortWrite, Stall) are ignored.
func NewReader(r io.Reader, p Plan) *Reader {
	ops := append([]Op(nil), p.Ops...)
	return &Reader{r: r, ops: ops, fired: make([]bool, len(ops)), count: make([]int64, len(ops))}
}

// WithContext binds ctx to the reader's injected sleeps: a Slow delay
// in progress returns ctx.Err() as soon as ctx is cancelled instead of
// sleeping out its full draw. It returns f for chaining.
func (f *Reader) WithContext(ctx context.Context) *Reader {
	f.ctx = ctx
	return f
}

// WithMetrics counts every applied injection in reg as
// fault_injected_total{kind=...}, so chaos runs can cross-check the
// faults actually delivered against the pipeline's healing counters.
// It returns f for chaining.
func (f *Reader) WithMetrics(reg *obs.Registry) *Reader {
	f.m = newInjectMetrics(reg)
	return f
}

func (f *Reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return f.r.Read(p)
	}
	limit := int64(len(p))
	for i, op := range f.ops {
		switch op.Kind {
		case Truncate:
			if op.Off <= f.pos {
				if !f.fired[i] {
					f.fired[i] = true
					f.m.inc(Truncate, 1)
				}
				return 0, io.EOF
			}
			if d := op.Off - f.pos; d < limit {
				limit = d
			}
		case ErrOnce:
			if f.fired[i] || op.Off > f.pos+limit {
				continue
			}
			if op.Off <= f.pos {
				f.fired[i] = true
				f.m.inc(ErrOnce, 1)
				return 0, &Err{Off: f.pos}
			}
			// Stop this read just short of the trigger byte so the
			// fault fires with nothing lost.
			limit = op.Off - f.pos
		}
	}
	// Straggler latency fires after the transfer window is known: any
	// read whose window [pos, pos+limit) overlaps a Slow op's covered
	// range [Off, Off+Span) — unbounded when Span is zero — sleeps that
	// op's next deterministic delay first.
	for i, op := range f.ops {
		if op.Kind != Slow || op.Off >= f.pos+limit {
			continue
		}
		if op.Span > 0 && f.pos >= op.Off+op.Span {
			continue // the slow period ended before this read
		}
		j := f.count[i]
		f.count[i]++
		f.m.inc(Slow, 1)
		if err := sleep(f.ctx, slowDelay(op, j)); err != nil {
			return 0, err
		}
	}
	n, err := f.r.Read(p[:limit])
	if n > 0 {
		f.corrupt(p[:n], f.pos)
		f.pos += int64(n)
	}
	return n, err
}

// corrupt applies the data-mutation ops overlapping [pos, pos+len(b)).
func (f *Reader) corrupt(b []byte, pos int64) {
	flips, zeros := applyDataOps(f.ops, b, pos)
	f.m.inc(BitFlip, flips)
	f.m.inc(ZeroFill, zeros)
}

// applyDataOps mutates b in place and reports how many BitFlip and
// ZeroFill ops actually touched this window, so callers can meter the
// corruption they delivered.
func applyDataOps(ops []Op, b []byte, pos int64) (flips, zeros uint64) {
	end := pos + int64(len(b))
	for _, op := range ops {
		switch op.Kind {
		case BitFlip:
			if op.Off >= pos && op.Off < end {
				b[op.Off-pos] ^= 1 << (op.Bit & 7)
				flips++
			}
		case ZeroFill:
			lo, hi := op.Off, op.Off+op.Len
			if lo < pos {
				lo = pos
			}
			if hi > end {
				hi = end
			}
			if lo < hi {
				clear(b[lo-pos : hi-pos])
				zeros++
			}
		}
	}
	return flips, zeros
}

// Writer applies a Plan to the bytes flowing into an underlying
// writer. BitFlip and ZeroFill corrupt a private copy (the caller's
// buffer is never touched), Truncate silently drops everything from
// its offset on — a torn write — while still reporting success, and
// ShortWrite/ErrOnce surface transient *Err failures. Stall sleeps
// before the write that crosses its offset, emulating a device that
// hiccups without failing.
type Writer struct {
	w     io.Writer
	ctx   context.Context
	pos   int64
	ops   []Op
	fired []bool // ErrOnce/ShortWrite/Stall/Truncate ops that already triggered
	buf   []byte // scratch for corrupted copies
	m     *injectMetrics
}

// NewWriter wraps w with the plan's write-side faults.
func NewWriter(w io.Writer, p Plan) *Writer {
	ops := append([]Op(nil), p.Ops...)
	return &Writer{w: w, ops: ops, fired: make([]bool, len(ops))}
}

// WithContext binds ctx to the writer's injected sleeps (Stall): a
// stall in progress returns ctx.Err() as soon as ctx is cancelled. It
// returns f for chaining.
func (f *Writer) WithContext(ctx context.Context) *Writer {
	f.ctx = ctx
	return f
}

// WithMetrics counts every applied injection in reg as
// fault_injected_total{kind=...}. It returns f for chaining.
func (f *Writer) WithMetrics(reg *obs.Registry) *Writer {
	f.m = newInjectMetrics(reg)
	return f
}

func (f *Writer) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return f.w.Write(p)
	}
	limit := int64(len(p))
	for i, op := range f.ops {
		if f.fired[i] {
			continue
		}
		switch op.Kind {
		case ErrOnce:
			if op.Off <= f.pos {
				f.fired[i] = true
				f.m.inc(ErrOnce, 1)
				return 0, &Err{Off: f.pos}
			}
			if d := op.Off - f.pos; d < limit {
				limit = d
			}
		case ShortWrite:
			// Cut the write that crosses Off: deliver the head, fail
			// the tail once.
			if op.Off > f.pos && op.Off < f.pos+limit {
				limit = op.Off - f.pos
			}
		case Stall:
			if op.Off >= f.pos && op.Off < f.pos+limit {
				f.fired[i] = true
				f.m.inc(Stall, 1)
				if err := sleep(f.ctx, time.Duration(op.Len)*time.Microsecond); err != nil {
					return 0, err
				}
			}
		}
	}
	n, err := f.write(p[:limit])
	f.pos += int64(n)
	if err != nil {
		return n, err
	}
	if n < len(p) {
		// The write was cut at an op boundary (ShortWrite tail, or an
		// ErrOnce trigger byte). Fire that op now and report the
		// undelivered tail as a transient fault, per the io.Writer
		// contract — exactly once per op.
		for i, op := range f.ops {
			if (op.Kind == ShortWrite || op.Kind == ErrOnce) && !f.fired[i] && op.Off == f.pos {
				f.fired[i] = true
				f.m.inc(op.Kind, 1)
			}
		}
		return n, &Err{Off: f.pos}
	}
	return n, nil
}

// write forwards b, honouring Truncate (drop bytes silently) and the
// data-corruption ops (mutate a copy, never the caller's buffer).
func (f *Writer) write(b []byte) (int, error) {
	keep := int64(len(b))
	for i, op := range f.ops {
		if op.Kind != Truncate {
			continue
		}
		if op.Off <= f.pos {
			keep = 0
		} else if d := op.Off - f.pos; d < keep {
			keep = d
		}
		if keep < int64(len(b)) && !f.fired[i] {
			f.fired[i] = true
			f.m.inc(Truncate, 1)
		}
	}
	out := b[:keep]
	if f.needsCorrupt(f.pos, f.pos+keep) {
		f.buf = append(f.buf[:0], out...)
		flips, zeros := applyDataOps(f.ops, f.buf, f.pos)
		f.m.inc(BitFlip, flips)
		f.m.inc(ZeroFill, zeros)
		out = f.buf
	}
	if len(out) > 0 {
		n, err := f.w.Write(out)
		if err != nil {
			return n, err
		}
	}
	// Dropped (truncated) bytes count as "written": the torn write is
	// silent, which is the failure mode worth testing.
	return len(b), nil
}

func (f *Writer) needsCorrupt(lo, hi int64) bool {
	for _, op := range f.ops {
		switch op.Kind {
		case BitFlip:
			if op.Off >= lo && op.Off < hi {
				return true
			}
		case ZeroFill:
			if op.Off < hi && op.Off+op.Len > lo {
				return true
			}
		}
	}
	return false
}
