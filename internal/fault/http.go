package fault

import (
	"fmt"
	"io"
	"net/http"
	"sync"

	"dialga/internal/obs"
)

// Transport is an http.RoundTripper that applies a fault Plan to the
// traffic of a wrapped transport, keyed by the request's host. Two
// classes of op apply:
//
// Byte-stream ops (flip, zero, trunc, err, slow, ...) wrap the
// response body, so the plan's offsets are relative to the start of
// each response — a `slow@0+3000` plan makes every read from that
// host a straggler, a `flip@100.3` plan corrupts byte 100 of every
// body.
//
// Connection-level ops (refuse, hole) fire before the request is even
// sent and are addressed by request count rather than byte offset:
// `refuse@0+3` refuses the first three requests after the plan was
// installed, `refuse@0+0` refuses every request until the plan is
// cleared (a network partition), and `hole@0+0` makes every request
// hang until its context ends (a blackholed route). Refused and
// blackholed requests surface as transient *Err faults, so clients
// classify them exactly like a real connection failure.
//
// This is how the cluster chaos tests inject deterministic network
// faults under the shard client without touching the servers: the
// same Plan grammar, seeded Generate, and metrics that the
// reader/writer wrappers use, applied at the transport seam.
//
// The zero value is unusable; build one with NewTransport. Safe for
// concurrent use.
type Transport struct {
	base http.RoundTripper
	reg  *obs.Registry

	mu    sync.Mutex
	plans map[string]Plan  // request host -> plan applied to its traffic
	reqs  map[string]int64 // request host -> requests since its plan was installed
}

// NewTransport wraps base (http.DefaultTransport when nil) with an
// empty plan table: hosts without a plan pass through untouched.
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plans: make(map[string]Plan), reqs: make(map[string]int64)}
}

// WithMetrics counts every applied injection in reg as
// fault_injected_total{kind=...}. It returns t for chaining.
func (t *Transport) WithMetrics(reg *obs.Registry) *Transport {
	t.reg = reg
	return t
}

// Set installs (or, with an empty plan, clears) the fault plan for
// every future request to host ("host:port" as it appears in request
// URLs), resetting the host's request counter so the plan's
// connection-level ops address requests from this moment. In-flight
// bodies keep the plan they started with.
func (t *Transport) Set(host string, p Plan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqs[host] = 0
	if len(p.Ops) == 0 {
		delete(t.plans, host)
		return
	}
	t.plans[host] = p
}

// Partition installs an unbounded refuse plan (`refuse@0+0`) for each
// host: every request fails immediately with a transient fault until
// Heal. It composes with Set — a partitioned host's previous plan is
// replaced, matching a node that fell off the network entirely.
func (t *Transport) Partition(hosts ...string) {
	for _, h := range hosts {
		t.Set(h, Plan{Ops: []Op{{Kind: Refuse}}})
	}
}

// Heal clears the fault plan for each host, ending a Partition (or
// any other plan) so traffic flows clean again.
func (t *Transport) Heal(hosts ...string) {
	for _, h := range hosts {
		t.Set(h, Plan{})
	}
}

// covers reports whether a request-count-addressed op covers the n-th
// request: n in [Off, Off+Len), unbounded when Len is zero.
func covers(op Op, n int64) bool {
	return n >= op.Off && (op.Len == 0 || n < op.Off+op.Len)
}

// RoundTrip applies the request host's plan: connection-level ops may
// refuse or blackhole the request outright; otherwise the request
// runs on the wrapped transport and the response body is re-wrapped
// so the plan's read-side faults fire as the caller consumes it.
// Injected sleeps and blackholes honour the request context: a
// cancelled request is never held hostage by its own fault plan.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	plan, ok := t.plans[req.URL.Host]
	var n int64
	if ok {
		n = t.reqs[req.URL.Host]
		t.reqs[req.URL.Host] = n + 1
	}
	t.mu.Unlock()
	if !ok {
		return t.base.RoundTrip(req)
	}
	m := newInjectMetrics(t.reg)
	for _, op := range plan.Ops {
		switch op.Kind {
		case Refuse:
			if covers(op, n) {
				m.inc(Refuse, 1)
				return nil, fmt.Errorf("fault: connection to %s refused (request %d): %w",
					req.URL.Host, n, &Err{Off: n})
			}
		case Blackhole:
			if covers(op, n) {
				m.inc(Blackhole, 1)
				<-req.Context().Done()
				return nil, fmt.Errorf("fault: connection to %s blackholed (request %d): %w",
					req.URL.Host, n, &Err{Off: n})
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	fr := NewReader(resp.Body, plan).WithContext(req.Context())
	if t.reg != nil {
		fr.WithMetrics(t.reg)
	}
	resp.Body = &faultBody{Reader: fr, closer: resp.Body}
	return resp, nil
}

// faultBody pairs the fault-injecting reader with the original body's
// Close so connections are still released properly.
type faultBody struct {
	*Reader
	closer io.Closer
}

func (b *faultBody) Close() error { return b.closer.Close() }
