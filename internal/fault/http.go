package fault

import (
	"io"
	"net/http"
	"sync"

	"dialga/internal/obs"
)

// Transport is an http.RoundTripper that applies a fault Plan to the
// response bodies of a wrapped transport, keyed by the request's host.
// Every response body is its own byte stream, so a plan's offsets are
// relative to the start of each response — a `slow@0+3000` plan makes
// every read from that host a straggler, a `flip@100.3` plan corrupts
// byte 100 of every body. This is how the cluster chaos tests inject
// deterministic network faults under the shard client without touching
// the servers: the same Plan grammar, seeded Generate, and metrics
// that the reader/writer wrappers use, applied at the transport seam.
//
// The zero value is unusable; build one with NewTransport. Safe for
// concurrent use.
type Transport struct {
	base http.RoundTripper
	reg  *obs.Registry

	mu    sync.Mutex
	plans map[string]Plan // request host -> plan applied to its responses
}

// NewTransport wraps base (http.DefaultTransport when nil) with an
// empty plan table: hosts without a plan pass through untouched.
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, plans: make(map[string]Plan)}
}

// WithMetrics counts every applied injection in reg as
// fault_injected_total{kind=...}. It returns t for chaining.
func (t *Transport) WithMetrics(reg *obs.Registry) *Transport {
	t.reg = reg
	return t
}

// Set installs (or, with an empty plan, clears) the fault plan for
// every future response from host ("host:port" as it appears in
// request URLs). In-flight bodies keep the plan they started with.
func (t *Transport) Set(host string, p Plan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(p.Ops) == 0 {
		delete(t.plans, host)
		return
	}
	t.plans[host] = p
}

// RoundTrip performs the request on the wrapped transport and, when
// the request's host has a plan, re-wraps the response body so the
// plan's read-side faults fire as the caller consumes it. Injected
// sleeps honour the request context: a cancelled request is never held
// hostage by its own fault plan.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	t.mu.Lock()
	plan, ok := t.plans[req.URL.Host]
	t.mu.Unlock()
	if !ok {
		return resp, nil
	}
	fr := NewReader(resp.Body, plan).WithContext(req.Context())
	if t.reg != nil {
		fr.WithMetrics(t.reg)
	}
	resp.Body = &faultBody{Reader: fr, closer: resp.Body}
	return resp, nil
}

// faultBody pairs the fault-injecting reader with the original body's
// Close so connections are still released properly.
type faultBody struct {
	*Reader
	closer io.Closer
}

func (b *faultBody) Close() error { return b.closer.Close() }
