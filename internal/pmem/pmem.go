// Package pmem models the memory devices of the testbed: DDR4 DRAM and
// Optane-style persistent memory.
//
// The PM model implements the mechanisms behind the paper's PM-specific
// observations:
//
//   - the 64 B (DDR-T request) vs 256 B (XPLine media) granularity
//     mismatch: any 64 B read that misses the on-DIMM read buffer
//     implicitly loads its whole 256 B XPLine (§2.1 "implicit data
//     loads"), which is where media-level read amplification comes from;
//   - a small (96 KB across 6 channels) read buffer (FIFO with
//     consumed-first eviction) whose entries are evicted before reuse
//     under high concurrency — read buffer thrashing (Obs. 5);
//   - per-channel media bandwidth with queueing delay, so concurrent
//     threads contend and load latency rises under pressure, the signal
//     DIALGA's coordinator samples.
//
// Reads and non-temporal writes use separate per-channel occupancy so
// the read-side effects the paper studies are not confounded by the
// write path; writes still model XPBuffer write combining at XPLine
// granularity.
package pmem

import (
	"fmt"

	"dialga/internal/mem"
)

// Stats aggregates device-level traffic and buffer events. Byte counts
// let the harness compute the per-layer read amplification of Fig. 19.
type Stats struct {
	CtrlReadBytes   uint64 // 64 B requests served (demand + prefetch)
	MediaReadBytes  uint64 // bytes fetched from media (256 B per XPLine on PM)
	CtrlWriteBytes  uint64 // 64 B non-temporal stores received
	MediaWriteBytes uint64 // bytes written to media (combined XPLines on PM)

	BufHits          uint64 // reads served from the on-DIMM read buffer
	BufMisses        uint64 // reads requiring a media fetch
	BufEvictedUnused uint64 // XPLines evicted without a single subsequent hit
}

// ReadAmplification returns media read bytes / controller read bytes —
// the PM-media-layer amplification of Fig. 19 (1.0 means none; DRAM is
// always 1.0).
func (s Stats) ReadAmplification() float64 {
	if s.CtrlReadBytes == 0 {
		return 1
	}
	return float64(s.MediaReadBytes) / float64(s.CtrlReadBytes)
}

type bufEntry struct {
	xpline  uint64
	lru     uint64
	readyAt float64 // when the media fetch that filled this entry completes
	hits    int
	valid   bool
}

// wcEntries is the number of write-combining slots per channel,
// modelling the multi-entry XPBuffer write side: interleaved NT-store
// streams (one per parity block) each keep their own combine window.
const wcEntries = 16

type wcEntry struct {
	xpline uint64
	lru    uint64
	valid  bool
}

type channel struct {
	readBusyUntil  float64
	writeBusyUntil float64
	// Read buffer partition: small, so linear scans are fine and keep
	// the model allocation-free and deterministic.
	buf []bufEntry
	// Write-combining table.
	wc   [wcEntries]wcEntry
	tick uint64
}

// Device is a memory device shared by all simulated threads. Not safe
// for concurrent use; the engine serializes accesses in timestamp order.
type Device struct {
	Kind  mem.DeviceKind
	cfg   *mem.Config
	ch    []channel
	stats Stats
}

// New constructs a device of the given kind from the configuration.
func New(kind mem.DeviceKind, cfg *mem.Config) *Device {
	d := &Device{Kind: kind, cfg: cfg, ch: make([]channel, cfg.Channels)}
	if kind == mem.PM {
		per := cfg.PMReadBufBytes / cfg.PMLineSize / cfg.Channels
		if per < 1 {
			per = 1
		}
		for i := range d.ch {
			d.ch[i].buf = make([]bufEntry, per)
		}
	}
	return d
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears statistics, retaining buffer and queue state.
func (d *Device) ResetStats() { d.stats = Stats{} }

// BufferCapacityLines returns the total read buffer capacity in XPLines
// (0 for DRAM); DIALGA's Eq. 1 uses this to bound prefetch distance.
func (d *Device) BufferCapacityLines() int {
	if d.Kind != mem.PM {
		return 0
	}
	return len(d.ch) * len(d.ch[0].buf)
}

// mediaLine returns the media-line index of addr at the device's
// access granularity (XPLine on Optane, flash page on CMM-H-style
// devices).
func (d *Device) mediaLine(addr mem.Addr) uint64 {
	return uint64(addr) / uint64(d.cfg.PMLineSize)
}

func (d *Device) channelOf(addr mem.Addr) *channel {
	if d.Kind == mem.PM {
		// Optane AppDirect interleaved sets stripe at 4 KiB
		// granularity across DIMMs: a page lives on one DIMM.
		return &d.ch[addr.Page()%uint64(len(d.ch))]
	}
	// DRAM interleaves at fine (256 B) granularity across channels.
	return &d.ch[addr.XPLine()%uint64(len(d.ch))]
}

// Read services a 64 B cacheline read beginning at time now and returns
// the time the data is available.
func (d *Device) Read(addr mem.Addr, now float64) (readyAt float64) {
	d.stats.CtrlReadBytes += mem.CachelineSize
	ch := d.channelOf(addr)
	if d.Kind == mem.DRAM {
		d.stats.MediaReadBytes += mem.CachelineSize
		start := now
		if ch.readBusyUntil > start {
			start = ch.readBusyUntil
		}
		ch.readBusyUntil = start + float64(mem.CachelineSize)/d.cfg.DRAMChanGBps
		return start + d.cfg.DRAMLatencyNS
	}

	xp := d.mediaLine(addr)
	ch.tick++
	// Buffer lookup. Eviction is FIFO (insertion order): entries are
	// not refreshed on hit. FIFO matches the paper's own capacity
	// arithmetic (§5.3: the 96 KB buffer sustains ~8x48 streams) and is
	// the natural hardware choice for a fetch buffer.
	for i := range ch.buf {
		e := &ch.buf[i]
		if e.valid && e.xpline == xp {
			e.hits++
			d.stats.BufHits++
			ready := now + d.cfg.PMBufHitNS
			if e.readyAt > ready {
				// The implicit load that filled this entry has not
				// completed yet: the hit waits for the media fetch.
				ready = e.readyAt
			}
			return ready
		}
	}
	// Media fetch of the whole media line (implicit load).
	d.stats.BufMisses++
	d.stats.MediaReadBytes += uint64(d.cfg.PMLineSize)
	start := now
	if ch.readBusyUntil > start {
		start = ch.readBusyUntil
	}
	ch.readBusyUntil = start + float64(d.cfg.PMLineSize)/d.cfg.PMMediaReadGBps
	readyAt = start + d.cfg.PMMediaNS

	// Insert into the buffer. Eviction prefers invalid slots, then the
	// oldest fully-consumed XPLine (all three remaining cachelines
	// already served — a dead entry), then the oldest entry overall.
	// Thrashing therefore begins exactly when the number of
	// *unconsumed* XPLines across all threads exceeds the buffer
	// capacity — the capacity arithmetic of Obs. 5 and Eq. 1.
	consumedHits := d.cfg.PMLineSize/mem.CachelineSize - 1
	victim, victimConsumed := -1, -1
	var oldest, oldestConsumed uint64 = ^uint64(0), ^uint64(0)
	for i := range ch.buf {
		e := &ch.buf[i]
		if !e.valid {
			victim = i
			oldest = 0
			victimConsumed = -1
			break
		}
		if e.hits >= consumedHits && e.lru < oldestConsumed {
			victimConsumed = i
			oldestConsumed = e.lru
		}
		if e.lru < oldest {
			victim = i
			oldest = e.lru
		}
	}
	if victimConsumed >= 0 {
		victim = victimConsumed
	}
	if ch.buf[victim].valid && ch.buf[victim].hits == 0 {
		d.stats.BufEvictedUnused++
	}
	ch.buf[victim] = bufEntry{xpline: xp, lru: ch.tick, readyAt: readyAt, valid: true}
	return readyAt
}

// ReadQueueDelayNS returns how long a read arriving at `now` would wait
// for addr's channel (0 when idle). Hardware prefetchers sample this
// kind of occupancy signal to throttle under memory pressure.
func (d *Device) ReadQueueDelayNS(addr mem.Addr, now float64) float64 {
	ch := d.channelOf(addr)
	if ch.readBusyUntil <= now {
		return 0
	}
	return ch.readBusyUntil - now
}

// WriteBacklogNS is the maximum per-channel write-queue depth (in ns of
// occupancy) before a store stalls the issuing thread.
const WriteBacklogNS = 2000

// Write services a 64 B non-temporal store beginning at time now. It
// returns the time at which the issuing thread may proceed — usually
// now (posted write), later only when the channel's write queue is full.
func (d *Device) Write(addr mem.Addr, now float64) (proceedAt float64) {
	d.stats.CtrlWriteBytes += mem.CachelineSize
	ch := d.channelOf(addr)
	if d.Kind == mem.DRAM {
		start := now
		if ch.writeBusyUntil > start {
			start = ch.writeBusyUntil
		}
		ch.writeBusyUntil = start + float64(mem.CachelineSize)/d.cfg.DRAMChanGBps
		d.stats.MediaWriteBytes += mem.CachelineSize
		return d.backpressure(ch, now)
	}
	xp := d.mediaLine(addr)
	ch.tick++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range ch.wc {
		e := &ch.wc[i]
		if e.valid && e.xpline == xp {
			// Combined into a pending XPLine write: no extra media
			// traffic.
			e.lru = ch.tick
			return d.backpressure(ch, now)
		}
		if !e.valid {
			victim = i
			oldest = 0
		} else if e.lru < oldest {
			victim = i
			oldest = e.lru
		}
	}
	// New XPLine: open a combine window (evicting the LRU one) and
	// charge its media write.
	ch.wc[victim] = wcEntry{xpline: xp, lru: ch.tick, valid: true}
	d.stats.MediaWriteBytes += uint64(d.cfg.PMLineSize)
	start := now
	if ch.writeBusyUntil > start {
		start = ch.writeBusyUntil
	}
	ch.writeBusyUntil = start + float64(d.cfg.PMLineSize)/d.cfg.PMMediaWriteGBps
	return d.backpressure(ch, now)
}

func (d *Device) backpressure(ch *channel, now float64) float64 {
	if ch.writeBusyUntil-now > WriteBacklogNS {
		return ch.writeBusyUntil - WriteBacklogNS
	}
	return now
}

// Drain returns the time all pending channel activity completes after
// now — the analogue of the final memory fence the paper's benchmark
// issues after encoding.
func (d *Device) Drain(now float64) float64 {
	t := now
	for i := range d.ch {
		if d.ch[i].readBusyUntil > t {
			t = d.ch[i].readBusyUntil
		}
		if d.ch[i].writeBusyUntil > t {
			t = d.ch[i].writeBusyUntil
		}
	}
	return t
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%d channels)", d.Kind, len(d.ch))
}
