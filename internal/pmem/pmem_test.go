package pmem

import (
	"testing"

	"dialga/internal/mem"
)

func newPM() (*Device, *mem.Config) {
	cfg := mem.DefaultConfig()
	return New(mem.PM, &cfg), &cfg
}

func newDRAM() (*Device, *mem.Config) {
	cfg := mem.DefaultConfig()
	return New(mem.DRAM, &cfg), &cfg
}

func TestPMImplicitLoad(t *testing.T) {
	d, cfg := newPM()
	// First 64 B read of an XPLine: media fetch of 256 B.
	ready := d.Read(0, 0)
	if ready != cfg.PMMediaNS {
		t.Fatalf("first read ready at %v, want media latency %v", ready, cfg.PMMediaNS)
	}
	st := d.Stats()
	if st.MediaReadBytes != mem.XPLineSize {
		t.Fatalf("media read %d bytes, want one XPLine", st.MediaReadBytes)
	}
	if st.CtrlReadBytes != mem.CachelineSize {
		t.Fatalf("ctrl read %d bytes, want one cacheline", st.CtrlReadBytes)
	}
	// Subsequent reads within the same XPLine hit the buffer.
	for i := 1; i < 4; i++ {
		ready = d.Read(mem.Addr(i*64), 1000)
		if ready != 1000+cfg.PMBufHitNS {
			t.Fatalf("buffer hit latency wrong: %v", ready)
		}
	}
	st = d.Stats()
	if st.BufHits != 3 || st.BufMisses != 1 {
		t.Fatalf("buffer stats %+v", st)
	}
	if st.MediaReadBytes != mem.XPLineSize {
		t.Fatal("buffer hits must not add media traffic")
	}
	if got := st.ReadAmplification(); got != 1.0 {
		t.Fatalf("4x64B over one XPLine should have amplification 1.0, got %v", got)
	}
}

func TestPMReadAmplificationScatteredReads(t *testing.T) {
	d, _ := newPM()
	// One 64 B read per distinct XPLine: 4x media amplification.
	for i := 0; i < 100; i++ {
		d.Read(mem.Addr(i*mem.XPLineSize), float64(i*1000))
	}
	if got := d.Stats().ReadAmplification(); got != 4.0 {
		t.Fatalf("scattered reads amplification = %v, want 4.0", got)
	}
}

func TestDRAMNoAmplification(t *testing.T) {
	d, cfg := newDRAM()
	ready := d.Read(0, 0)
	if ready != cfg.DRAMLatencyNS {
		t.Fatalf("DRAM latency %v, want %v", ready, cfg.DRAMLatencyNS)
	}
	for i := 0; i < 50; i++ {
		d.Read(mem.Addr(i*mem.XPLineSize), float64(i*1000))
	}
	if got := d.Stats().ReadAmplification(); got != 1.0 {
		t.Fatalf("DRAM amplification = %v, want 1.0", got)
	}
	if d.BufferCapacityLines() != 0 {
		t.Fatal("DRAM has no read buffer")
	}
}

func TestPMBufferCapacityAndThrash(t *testing.T) {
	d, cfg := newPM()
	capLines := d.BufferCapacityLines()
	want := cfg.PMReadBufBytes / mem.XPLineSize
	if capLines != want {
		t.Fatalf("buffer capacity %d XPLines, want %d", capLines, want)
	}
	// Stream far more XPLines than capacity through one channel, never
	// reusing: every eviction is of an unused line... (each fetched line
	// is hit 0 further times).
	ch := cfg.Channels
	n := capLines * 3
	for i := 0; i < n; i++ {
		// Same channel: XPLine index multiples of Channels.
		d.Read(mem.Addr(i*ch*mem.XPLineSize), float64(i*500))
	}
	st := d.Stats()
	if st.BufEvictedUnused == 0 {
		t.Fatal("streaming beyond capacity should evict unused XPLines")
	}
	if st.BufHits != 0 {
		t.Fatal("no reuse pattern should have no buffer hits")
	}
}

func TestPMChannelQueueing(t *testing.T) {
	d, cfg := newPM()
	// PM interleaves at page granularity: two XPLines of the same page
	// share a channel and their media fetches queue.
	r1 := d.Read(0, 0)
	r2 := d.Read(mem.Addr(mem.XPLineSize), 0)
	occupancy := float64(mem.XPLineSize) / cfg.PMMediaReadGBps
	if r2 <= r1 {
		t.Fatalf("queued read should finish later: r1=%v r2=%v", r1, r2)
	}
	if want := occupancy + cfg.PMMediaNS; r2 != want {
		t.Fatalf("queued read ready at %v, want %v", r2, want)
	}
	// A read on a different page maps to another channel: no queueing.
	r3 := d.Read(mem.Addr(mem.PageSize), 0)
	if r3 != cfg.PMMediaNS {
		t.Fatalf("other channel queued: %v", r3)
	}
}

func TestWriteCombining(t *testing.T) {
	d, _ := newPM()
	// 4 sequential NT stores within one XPLine: one media write.
	for i := 0; i < 4; i++ {
		d.Write(mem.Addr(i*64), float64(i))
	}
	st := d.Stats()
	if st.MediaWriteBytes != mem.XPLineSize {
		t.Fatalf("combined writes produced %d media bytes, want %d", st.MediaWriteBytes, mem.XPLineSize)
	}
	if st.CtrlWriteBytes != 4*mem.CachelineSize {
		t.Fatalf("ctrl write bytes %d", st.CtrlWriteBytes)
	}
	// Next XPLine on the same channel opens a new combine window.
	d.Write(mem.Addr(6*mem.XPLineSize), 100) // channel 0 again (6 channels)
	if d.Stats().MediaWriteBytes != 2*mem.XPLineSize {
		t.Fatal("new XPLine write not counted")
	}
}

func TestWriteBackpressure(t *testing.T) {
	d, _ := newPM()
	// Flood one channel with writes; eventually the thread must stall.
	var stalled bool
	for i := 0; i < 100; i++ {
		addr := mem.Addr(i * 6 * mem.XPLineSize) // always channel 0
		if p := d.Write(addr, 0); p > 0 {
			stalled = true
			break
		}
	}
	if !stalled {
		t.Fatal("unbounded write queue: no backpressure observed")
	}
}

func TestDrain(t *testing.T) {
	d, cfg := newPM()
	d.Read(0, 0)
	d.Write(mem.Addr(4096), 0)
	done := d.Drain(0)
	if done <= 0 {
		t.Fatal("Drain should report pending occupancy")
	}
	if done < float64(mem.XPLineSize)/cfg.PMMediaWriteGBps {
		t.Fatal("Drain earlier than the pending write occupancy")
	}
}

func TestResetStats(t *testing.T) {
	d, _ := newPM()
	d.Read(0, 0)
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
	// Buffer content is retained: the next read of the same XPLine hits.
	d.Read(mem.Addr(64), 10)
	if d.Stats().BufHits != 1 {
		t.Fatal("ResetStats must retain buffer contents")
	}
}

func TestReadAmplificationEmpty(t *testing.T) {
	var s Stats
	if s.ReadAmplification() != 1 {
		t.Fatal("empty stats should report amplification 1")
	}
}

func TestStringer(t *testing.T) {
	d, _ := newPM()
	if d.String() != "PM(6 channels)" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestReadQueueDelay(t *testing.T) {
	d, cfg := newPM()
	if d.ReadQueueDelayNS(0, 0) != 0 {
		t.Fatal("idle channel should report zero delay")
	}
	d.Read(0, 0) // media fetch occupies the channel
	if got := d.ReadQueueDelayNS(0, 0); got <= 0 {
		t.Fatalf("busy channel delay = %v", got)
	}
	occupancy := float64(cfg.PMLineSize) / cfg.PMMediaReadGBps
	if got := d.ReadQueueDelayNS(0, occupancy+1); got != 0 {
		t.Fatalf("delay after drain = %v", got)
	}
}

func TestCMMHProfileGranularity(t *testing.T) {
	cfg := mem.CMMHConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	d := New(mem.PM, &cfg)
	// One 64 B read per distinct 4 KB media line: 64x amplification.
	for i := 0; i < 32; i++ {
		d.Read(mem.Addr(i*cfg.PMLineSize), float64(i*10000))
	}
	if got := d.Stats().ReadAmplification(); got != 64 {
		t.Fatalf("flash-page amplification = %v, want 64", got)
	}
	// Sequential reads within one media line: a single media fetch.
	d2 := New(mem.PM, &cfg)
	for i := 0; i < cfg.PMLineSize/mem.CachelineSize; i++ {
		d2.Read(mem.Addr(i*mem.CachelineSize), float64(100000+i*10000))
	}
	st := d2.Stats()
	if st.BufMisses != 1 {
		t.Fatalf("sequential page reads caused %d media fetches, want 1", st.BufMisses)
	}
	if st.MediaReadBytes != uint64(cfg.PMLineSize) {
		t.Fatalf("media bytes = %d, want one flash page", st.MediaReadBytes)
	}
	wantCap := cfg.PMReadBufBytes / cfg.PMLineSize / cfg.Channels * cfg.Channels
	if d2.BufferCapacityLines() != wantCap {
		t.Fatalf("buffer capacity = %d media lines, want %d", d2.BufferCapacityLines(), wantCap)
	}
}

func TestPMLineSizeValidation(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.PMLineSize = 100 // not a multiple of 64
	if cfg.Validate() == nil {
		t.Fatal("unaligned PMLineSize accepted")
	}
	cfg = mem.DefaultConfig()
	cfg.PMLineSize = 32
	if cfg.Validate() == nil {
		t.Fatal("sub-cacheline PMLineSize accepted")
	}
}
