package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"

	"dialga/internal/fault"
)

// chaosTrial is one randomized round trip: encode a random payload
// under a random geometry, push every shard stream through a seeded
// fault.Reader plan, and check the decode outcome against exactly
// what the plan injected.
type chaosTrial struct {
	k, m      int
	shardSize int
	payload   []byte
	shards    [][]byte // pristine encoded shard streams (with trailers)
	stripes   int
	blockSize int
	plans     []fault.Plan
	missing   map[int]bool
	// expectations derived from the plan
	wantCorrupt    uint64 // blocks whose CRC must fail
	wantHealed     uint64 // distinct stripes with >= 1 corrupt block
	wantTransients uint64 // ErrOnce ops that must fire
}

func newChaosTrial(t *testing.T, rng *rand.Rand) *chaosTrial {
	tr := &chaosTrial{
		k:         2 + rng.Intn(6), // 2..7
		m:         1 + rng.Intn(3), // 1..3
		shardSize: []int{16, 64, 256, 1024}[rng.Intn(4)],
		missing:   map[int]bool{},
	}
	// Payload length: include zero, sub-stripe, exact multiples, and
	// ragged tails.
	stripeSize := tr.k * tr.shardSize
	switch rng.Intn(5) {
	case 0:
		tr.payload = nil
	case 1:
		tr.payload = randBytes(t, 1+rng.Intn(stripeSize), rng.Int63())
	default:
		tr.payload = randBytes(t, rng.Intn(8*stripeSize)+1, rng.Int63())
	}
	opts := Options{Codec: mustRS(t, tr.k, tr.m), StripeSize: stripeSize,
		Workers: 1 + rng.Intn(4), Checksum: ChecksumCRC32C}
	tr.shards = encodeAll(t, opts, tr.payload)
	tr.blockSize = tr.shardSize + crcSize
	tr.stripes = len(tr.shards[0]) / tr.blockSize
	tr.plans = make([]fault.Plan, tr.k+tr.m)
	return tr
}

// planWithinParity injects at most m faults per stripe: a random set
// of missing shards plus per-stripe bit flips on the survivors, never
// exceeding the parity budget. Returns false if the trial has no
// stripes to corrupt.
func (tr *chaosTrial) planWithinParity(rng *rand.Rand) {
	nMissing := rng.Intn(tr.m + 1)
	for len(tr.missing) < nMissing {
		tr.missing[rng.Intn(tr.k+tr.m)] = true
	}
	budget := tr.m - nMissing // corruptible shards per stripe
	healed := map[int]bool{}
	for s := 0; s < tr.stripes; s++ {
		c := rng.Intn(budget + 1)
		picked := map[int]bool{}
		for len(picked) < c {
			i := rng.Intn(tr.k + tr.m)
			if tr.missing[i] || picked[i] {
				continue
			}
			picked[i] = true
			// One flip per (shard, stripe) block — anywhere in the
			// block, payload or trailer; CRC-32C catches either.
			off := int64(s*tr.blockSize) + int64(rng.Intn(tr.blockSize))
			tr.plans[i].Ops = append(tr.plans[i].Ops, fault.Op{
				Kind: fault.BitFlip, Off: off, Bit: uint8(rng.Intn(8)),
			})
			tr.wantCorrupt++
			healed[s] = true
		}
	}
	tr.wantHealed = uint64(len(healed))
	// Sprinkle transient one-shot errors on live shards; with
	// checksums on, the decoder resyncs and trusts the re-read block.
	streamLen := int64(tr.stripes * tr.blockSize)
	if streamLen > 0 {
		for i := range tr.plans {
			if tr.missing[i] || rng.Intn(3) != 0 {
				continue
			}
			tr.plans[i].Ops = append(tr.plans[i].Ops, fault.Op{
				Kind: fault.ErrOnce, Off: rng.Int63n(streamLen),
			})
			tr.wantTransients++
		}
	}
}

// planBeyondParity poisons one stripe with m+1 corrupt blocks.
func (tr *chaosTrial) planBeyondParity(rng *rand.Rand) bool {
	if tr.stripes == 0 {
		return false
	}
	s := rng.Intn(tr.stripes)
	picked := map[int]bool{}
	for len(picked) < tr.m+1 {
		i := rng.Intn(tr.k + tr.m)
		if picked[i] {
			continue
		}
		picked[i] = true
		off := int64(s*tr.blockSize) + int64(rng.Intn(tr.blockSize))
		tr.plans[i].Ops = append(tr.plans[i].Ops, fault.Op{
			Kind: fault.BitFlip, Off: off, Bit: uint8(rng.Intn(8)),
		})
	}
	return true
}

func (tr *chaosTrial) decode(t *testing.T) (*Decoder, *bytes.Buffer, error) {
	t.Helper()
	dec, err := NewDecoder(Options{Codec: mustRS(t, tr.k, tr.m),
		StripeSize: tr.k * tr.shardSize, Checksum: ChecksumCRC32C})
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, tr.k+tr.m)
	for i, s := range tr.shards {
		if tr.missing[i] {
			continue
		}
		readers[i] = fault.NewReader(bytes.NewReader(s), tr.plans[i])
	}
	var out bytes.Buffer
	err = dec.Decode(context.Background(), readers, &out, int64(len(tr.payload)))
	return dec, &out, err
}

// TestChaosRoundTrip is the property-based integrity suite: across
// many seeded random geometries and fault plans, any combination of
// missing shards and corrupt blocks within the parity budget must
// yield byte-identical output with stats matching the plan exactly,
// and anything beyond the budget must fail with ErrTooManyCorrupt
// without ever emitting a wrong byte.
func TestChaosRoundTrip(t *testing.T) {
	const trials = 60
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := newChaosTrial(t, rng)
		tr.planWithinParity(rng)
		dec, out, err := tr.decode(t)
		if err != nil {
			t.Fatalf("seed %d (k=%d m=%d shard=%d payload=%d): decode: %v",
				seed, tr.k, tr.m, tr.shardSize, len(tr.payload), err)
		}
		if !bytes.Equal(out.Bytes(), tr.payload) {
			t.Fatalf("seed %d: decoded bytes differ from payload", seed)
		}
		st := dec.Stats()
		if st.ShardsCorrupted != tr.wantCorrupt {
			t.Fatalf("seed %d: ShardsCorrupted = %d, plan injected %d", seed, st.ShardsCorrupted, tr.wantCorrupt)
		}
		if st.StripesHealed != tr.wantHealed {
			t.Fatalf("seed %d: StripesHealed = %d, plan poisoned %d stripes", seed, st.StripesHealed, tr.wantHealed)
		}
		if st.TransientFaults != tr.wantTransients {
			t.Fatalf("seed %d: TransientFaults = %d, plan fired %d", seed, st.TransientFaults, tr.wantTransients)
		}
		if st.ShardFailures != 0 {
			t.Fatalf("seed %d: ShardFailures = %d — a within-budget fault killed a shard permanently", seed, st.ShardFailures)
		}
	}
}

func TestChaosBeyondParityFailsCleanly(t *testing.T) {
	const trials = 40
	poisoned := 0
	for seed := int64(1000); poisoned < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := newChaosTrial(t, rng)
		if !tr.planBeyondParity(rng) {
			continue // zero-stripe payload: nothing to poison
		}
		poisoned++
		_, out, err := tr.decode(t)
		if err == nil {
			t.Fatalf("seed %d: decode succeeded with %d corrupt blocks in one stripe (m=%d)", seed, tr.m+1, tr.m)
		}
		if !errors.Is(err, ErrTooManyCorrupt) {
			t.Fatalf("seed %d: error %v does not wrap ErrTooManyCorrupt", seed, err)
		}
		// Whatever was delivered before the poisoned stripe must be a
		// clean prefix: corruption must never surface as wrong bytes.
		if got := out.Bytes(); !bytes.Equal(got, tr.payload[:len(got)]) {
			t.Fatalf("seed %d: decoder emitted non-prefix bytes before failing", seed)
		}
	}
}
