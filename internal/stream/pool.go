package stream

import "sync"

// bufPool recycles fixed-size stripe buffers across the pipeline.
// Buffers flow producer -> worker -> consumer and return here when a
// job is released, so steady-state allocation is zero and peak live
// buffers track the in-flight window, not the input size.
//
// Both the buffers and their boxed slice headers are pooled: Put'ing a
// freshly taken &b would heap-allocate a 3-word header per cycle, so
// put refills a header recycled by get instead. The GC still reclaims
// idle buffers through sync.Pool as usual.
type bufPool struct {
	size int
	p    sync.Pool // *[]byte boxes holding full-size buffers
	hdrs sync.Pool // empty *[]byte boxes awaiting reuse by put
}

func newBufPool(size int) *bufPool {
	bp := &bufPool{size: size}
	bp.p.New = func() any {
		b := make([]byte, size)
		return &b
	}
	bp.hdrs.New = func() any { return new([]byte) }
	return bp
}

func (bp *bufPool) get() []byte {
	hdr := bp.p.Get().(*[]byte)
	b := *hdr
	*hdr = nil // don't pin the buffer from the header pool
	bp.hdrs.Put(hdr)
	return b
}

func (bp *bufPool) put(b []byte) {
	// Accept any buffer whose backing array still fits a full stripe:
	// callers legitimately return reslices (a short final stripe, a
	// trimmed view), and judging by len alone leaked one allocation per
	// such stripe. Restore the canonical length before pooling so get()
	// always hands out exactly size bytes.
	if cap(b) < bp.size {
		return // foreign buffer; drop it rather than poison the pool
	}
	hdr := bp.hdrs.Get().(*[]byte)
	*hdr = b[:bp.size]
	bp.p.Put(hdr)
}
