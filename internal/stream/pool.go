package stream

import "sync"

// bufPool recycles fixed-size stripe buffers across the pipeline.
// Buffers flow producer -> worker -> consumer and return here when a
// job is released, so steady-state allocation is zero and peak live
// buffers track the in-flight window, not the input size.
type bufPool struct {
	size int
	p    sync.Pool
}

func newBufPool(size int) *bufPool {
	bp := &bufPool{size: size}
	bp.p.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return bp
}

func (bp *bufPool) get() []byte { return *bp.p.Get().(*[]byte) }

func (bp *bufPool) put(b []byte) {
	if len(b) != bp.size {
		return // foreign buffer; drop it rather than poison the pool
	}
	bp.p.Put(&b)
}
