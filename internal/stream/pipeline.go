package stream

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"dialga/internal/obs"
	"dialga/internal/shardio"
)

// PanicError is a panic recovered from a pipeline-stage or shard-reader
// goroutine and surfaced as an ordinary error: Stage names the
// goroutine, Value is the recovered panic value, Stack the captured
// stack. Counted in Stats.WorkerPanics.
type PanicError = shardio.PanicError

// job is one stripe moving through the pipeline. The producer fills
// seq/data/blocks/n, a worker fills parity/err and signals ready, and
// the consumer waits on ready before emitting — so every field is
// written before the channel operation that publishes it and no field
// needs a lock.
//
// Jobs are pooled: ready is a persistent capacity-1 channel signalled
// exactly once per cycle (the consumer's receive drains it before the
// job returns to the pool), and the scratch slices below keep their
// capacity so the steady-state per-stripe path never allocates.
type job struct {
	seq   int64
	ready chan struct{} // receives one value once the worker (or an abort) is done
	err   error         // sticky per-job failure, set before ready is signalled

	data    []byte          // encoder: pooled stripe buffer (k*shardSize)
	n       int             // encoder: valid payload bytes in data (tail stripe may be short)
	parity  []byte          // encoder: pooled parity buffer (m*shardSize), set by the worker
	crc     []byte          // encoder: pooled checksum trailers ((k+m)*crcSize), set by the worker
	buf     []byte          // decoder: pooled stripe buffer ((k+m)*blockSize, trailers inline)
	blocks  [][]byte        // decoder: k+m full block slices, nil for missing shards
	demoted int             // decoder: blocks discarded as untrustworthy by the producer
	stripe  *shardio.Stripe // decoder: gather result backing blocks; released with the job

	// Reusable per-job scratch, capacity preserved across pool cycles.
	dviews [][]byte // encoder: k data shard views into data
	pviews [][]byte // encoder: m parity shard views into parity
	sums   []uint32 // encoder: k+m fused CRC sums
	eras   []int    // decoder: indices handed pooled spare output buffers

	// span is the stripe's lifecycle trace (nil when tracing is off).
	// It rides the same producer -> worker -> consumer handoffs as the
	// rest of the job, so event appends never race; release publishes
	// it to the tracer's ring.
	span *obs.Span
}

// jobPool recycles jobs across stripes. get returns a job whose ready
// channel is empty and whose transient fields are zeroed; scratch
// slices keep their capacity.
type jobPool struct{ p sync.Pool }

func (jp *jobPool) get() *job {
	j, _ := jp.p.Get().(*job)
	if j == nil {
		j = &job{ready: make(chan struct{}, 1)}
	}
	return j
}

func (jp *jobPool) put(j *job) {
	j.seq, j.err, j.n, j.demoted = 0, nil, 0, 0
	j.data, j.parity, j.crc, j.buf = nil, nil, nil, nil
	j.blocks = j.blocks[:0]
	j.dviews, j.pviews = j.dviews[:0], j.pviews[:0]
	j.eras = j.eras[:0]
	j.stripe, j.span = nil, nil
	jp.p.Put(j)
}

// failFirst records the first error of the run and cancels the
// pipeline context exactly once.
type failFirst struct {
	mu     sync.Mutex
	err    error
	cancel context.CancelFunc
}

func (f *failFirst) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.cancel()
}

func (f *failFirst) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// run drives a bounded, order-preserving pipeline:
//
//	produce (1 goroutine) -> work (workers goroutines) -> deliver (caller goroutine)
//
// produce creates jobs in sequence order and submits them via push;
// push blocks once window jobs are in flight (backpressure) and
// returns false when the pipeline is cancelled. work runs on any
// worker, concurrently and out of order. deliver runs on the calling
// goroutine strictly in submission order. release is called exactly
// once per submitted job, after deliver (or after the job is skipped),
// to recycle its buffers.
//
// The first error from any stage cancels the context, drains the
// remaining jobs without delivering them, and is returned after every
// goroutine has exited. A panic in produce or work is recovered into a
// *PanicError and fails the pipeline the same way — a buggy codec or
// reader implementation cannot take the process down or leak the
// pipeline's goroutines.
func run(parent context.Context, g geom, stats *counters,
	produce func(ctx context.Context, push func(*job) bool) error,
	work func(*job) error,
	deliver func(*job) error,
	release func(*job),
) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	fail := &failFirst{cancel: cancel}

	recovered := func(stage string, p any) error {
		stats.workerPanics.Add(1)
		return &PanicError{Stage: stage, Value: p, Stack: debug.Stack()}
	}
	safeWork := func(j *job) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = recovered(fmt.Sprintf("worker (stripe %d)", j.seq), p)
			}
		}()
		return work(j)
	}

	workCh := make(chan *job)            // unbuffered: a successful send is a worker handoff
	orderCh := make(chan *job, g.window) // submission order; buffer bounds in-flight stripes

	// Dynamic gates exist only under a Tuner; without one the pipeline
	// runs the historical static path untouched.
	var wGate *workerGate
	var winGate *windowGate
	if g.tuner != nil {
		wGate = newWorkerGate(g.workers)
		winGate = newWindowGate(g.window)
		release = func(inner func(*job)) func(*job) {
			return func(j *job) {
				winGate.release()
				inner(j)
			}
		}(release)
	}

	var workers sync.WaitGroup
	workers.Add(g.workers)
	for i := 0; i < g.workers; i++ {
		go func(i int) {
			defer workers.Done()
			for {
				if wGate != nil {
					wGate.enter(i)
				}
				j, ok := <-workCh
				if !ok {
					return
				}
				if ctx.Err() != nil {
					j.err = ctx.Err()
				} else if err := safeWork(j); err != nil {
					j.err = err
					fail.set(err)
				}
				j.ready <- struct{}{}
			}
		}(i)
	}

	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		push := func(j *job) bool {
			if winGate != nil {
				// Stripe boundary: refresh the pipeline-level knobs,
				// then claim an in-flight slot under the (possibly
				// just-moved) window limit.
				t := g.tuner.PipelineTuning()
				wGate.setLimit(t.Workers)
				winGate.setLimit(t.Window)
				winGate.acquire()
			}
			select {
			case orderCh <- j:
			case <-ctx.Done():
				// Never entered the pipeline: recycle here.
				release(j)
				return false
			}
			select {
			case workCh <- j:
			case <-ctx.Done():
				// In orderCh but no worker will touch it; unblock
				// the consumer, which releases it.
				j.err = ctx.Err()
				j.ready <- struct{}{}
				return false
			}
			return true
		}
		err := func() (err error) {
			// Closing the channels inside the recovery scope (rather
			// than deferred around it) keeps the shutdown order fixed:
			// recover first, then release the workers and consumer.
			defer close(workCh)
			defer close(orderCh)
			defer func() {
				if p := recover(); p != nil {
					err = recovered("producer", p)
				}
			}()
			return produce(ctx, push)
		}()
		if err != nil {
			fail.set(err)
		}
	}()

	for j := range orderCh {
		// ready is always signalled exactly once: an unbuffered workCh
		// send means a worker holds the job (and signals it), and
		// aborted pushes signal it themselves. The receive drains the
		// capacity-1 channel, so the job can return to its pool.
		<-j.ready
		if j.err == nil && ctx.Err() == nil {
			if err := deliver(j); err != nil {
				fail.set(err)
			}
		}
		release(j)
	}
	if wGate != nil {
		wGate.close()
	}
	workers.Wait()
	<-prodDone

	if err := fail.get(); err != nil {
		return err
	}
	return parent.Err()
}
