package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/lrc"
)

// decodeAll runs the streaming decoder over the given shard byte
// streams (nil entries = missing shards) and returns the recovered
// payload.
func decodeAll(t testing.TB, opts Options, shards [][]byte, size int64) []byte {
	t.Helper()
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		if s != nil {
			readers[i] = bytes.NewReader(s)
		}
	}
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, size); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestDecoderRoundtripAllShards(t *testing.T) {
	code := mustRS(t, 5, 3)
	opts := Options{Codec: code, StripeSize: 1000, Workers: 3}
	for _, n := range []int{0, 1, 999, 1000, 1001, 5*1000 + 123} {
		payload := randBytes(t, n, int64(n)+99)
		shards := encodeAll(t, opts, payload)
		got := decodeAll(t, opts, shards, int64(n))
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestDecoderExactlyKShards(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 4096, Workers: 2}
	payload := randBytes(t, 3<<16, 5)
	shards := encodeAll(t, opts, payload)
	// Feed exactly k of k+m streams: drop one data and one parity.
	shards[1] = nil
	shards[5] = nil
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		if s != nil {
			readers[i] = bytes.NewReader(s)
		}
	}
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("roundtrip mismatch with exactly k shards")
	}
	st := dec.Stats()
	if st.Reconstructed != st.Stripes || st.Stripes == 0 {
		t.Fatalf("Reconstructed = %d, want every one of %d stripes", st.Reconstructed, st.Stripes)
	}
}

func TestDecoderTooManyMissing(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 1024}
	payload := randBytes(t, 10000, 6)
	shards := encodeAll(t, opts, payload)
	shards[0], shards[2], shards[4] = nil, nil, nil // 3 > m=2
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		if s != nil {
			readers[i] = bytes.NewReader(s)
		}
	}
	if err := dec.Decode(context.Background(), readers, io.Discard, int64(len(payload))); err == nil {
		t.Fatal("decode succeeded with more than m missing shards")
	}
}

// erraticReader fails with err after serving n bytes.
type erraticReader struct {
	data []byte
	n    int
	err  error
}

func (r *erraticReader) Read(p []byte) (int, error) {
	if r.n >= len(r.data) || r.n < 0 {
		return 0, r.err
	}
	want := len(p)
	if r.n+want > len(r.data) {
		want = len(r.data) - r.n
	}
	copy(p, r.data[r.n:r.n+want])
	r.n += want
	if r.n >= len(r.data) {
		r.n = -1
		return want, r.err
	}
	return want, nil
}

// TestDecoderMidStreamReaderFailure kills two shard readers partway
// through the stream; decode must retire them and keep going.
func TestDecoderMidStreamReaderFailure(t *testing.T) {
	code := mustRS(t, 6, 3)
	opts := Options{Codec: code, StripeSize: 6 * 512, Workers: 4}
	payload := randBytes(t, 40*6*512+77, 8)
	shards := encodeAll(t, opts, payload)
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	// Shard 2 errors halfway; shard 7 goes ragged-short (clean EOF
	// while its peers still have data).
	readers[2] = &erraticReader{data: shards[2][:len(shards[2])/2], err: errors.New("nvme dropped off the bus")}
	readers[7] = bytes.NewReader(shards[7][:len(shards[7])/3])

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("payload corrupted after mid-stream shard failures")
	}
	st := dec.Stats()
	if st.ShardFailures != 2 {
		t.Fatalf("ShardFailures = %d, want 2", st.ShardFailures)
	}
	if st.Reconstructed == 0 {
		t.Fatal("expected reconstructed stripes")
	}
}

func TestDecoderFailuresExceedParityMidStream(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 4 * 256, Workers: 2}
	payload := randBytes(t, 20*4*256, 10)
	shards := encodeAll(t, opts, payload)
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	boom := errors.New("bus error")
	for _, i := range []int{0, 3, 5} { // 3 dead > m=2
		readers[i] = &erraticReader{data: shards[i][:len(shards[i])/2], err: boom}
	}
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	err = dec.Decode(context.Background(), readers, io.Discard, int64(len(payload)))
	if err == nil {
		t.Fatal("decode succeeded with failures exceeding parity")
	}
}

func TestDecoderPrematureEnd(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 1024}
	payload := randBytes(t, 8000, 12)
	shards := encodeAll(t, opts, payload)
	for i := range shards {
		shards[i] = shards[i][:len(shards[i])/2] // truncate every shard
	}
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	if err := dec.Decode(context.Background(), readers, io.Discard, int64(len(payload))); err == nil {
		t.Fatal("decode succeeded on truncated shards with a declared size")
	}
}

// TestDecoderUnknownSize decodes with size < 0: the stream ends at
// shard EOF and includes the encoder's tail padding.
func TestDecoderUnknownSize(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 1024, Workers: 2}
	payload := randBytes(t, 3000, 13) // pads to 3 stripes = 3072 bytes
	shards := encodeAll(t, opts, payload)
	got := decodeAll(t, opts, shards, -1)
	if len(got) != 3072 {
		t.Fatalf("got %d bytes, want 3072 (payload + padding)", len(got))
	}
	if !bytes.Equal(got[:3000], payload) {
		t.Fatal("payload prefix corrupted")
	}
	for _, b := range got[3000:] {
		if b != 0 {
			t.Fatal("padding not zero")
		}
	}
}

func TestDecoderCancellationMidStream(t *testing.T) {
	// ChecksumNone: blockingReader yields uninitialized bytes, which
	// CRC verification would (correctly) reject before cancellation.
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 1024, Workers: 2, Checksum: ChecksumNone}
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	readers := make([]io.Reader, dec.Shards())
	for i := range readers {
		readers[i] = &blockingReader{remaining: 4 * dec.ShardSize(), ctx: ctx}
	}
	done := make(chan error, 1)
	go func() {
		done <- dec.Decode(ctx, readers, io.Discard, -1)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("Decode returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Decode did not return after cancellation")
	}
}

// TestDecoderTransientErrorsStayPerStripe is the regression test for
// the old behaviour of killing a shard permanently on its first read
// error. With one shard genuinely missing and two more throwing
// one-shot transient faults (fault.ErrOnce-style, Transient() == true)
// at different stripes, permanent demotion would leave 3 dead > m=2
// and fail the decode; the per-stripe path must absorb both faults and
// round-trip.
func TestDecoderTransientErrorsStayPerStripe(t *testing.T) {
	for _, tc := range []struct {
		name     string
		checksum Checksum
		// With no trailer the re-read block cannot be trusted, so it is
		// demoted for that stripe; with CRC the trailer clears it.
		wantCorrupted, wantHealed uint64
	}{
		{"checksum none demotes per stripe", ChecksumNone, 2, 2},
		{"crc32c clears re-read blocks", ChecksumCRC32C, 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code := mustRS(t, 4, 2)
			opts := Options{Codec: code, StripeSize: 4 * 256, Workers: 2, Checksum: tc.checksum}
			payload := randBytes(t, 10*4*256+100, 31)
			shards := encodeAll(t, opts, payload)
			dec, err := NewDecoder(opts)
			if err != nil {
				t.Fatal(err)
			}
			blockSize := dec.BlockSize()
			readers := make([]io.Reader, len(shards))
			for i, s := range shards {
				readers[i] = bytes.NewReader(s)
			}
			readers[0] = nil // one shard genuinely gone
			// Shards 1 and 3 hiccup once each, at different stripes
			// (one at a block boundary, one mid-block).
			readers[1] = fault.NewReader(bytes.NewReader(shards[1]), fault.Plan{
				Ops: []fault.Op{{Kind: fault.ErrOnce, Off: int64(2 * blockSize)}},
			})
			readers[3] = fault.NewReader(bytes.NewReader(shards[3]), fault.Plan{
				Ops: []fault.Op{{Kind: fault.ErrOnce, Off: int64(6*blockSize) + 17}},
			})
			var out bytes.Buffer
			if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
				t.Fatalf("decode failed on transient faults: %v", err)
			}
			if !bytes.Equal(out.Bytes(), payload) {
				t.Fatal("payload mismatch after transient faults")
			}
			st := dec.Stats()
			if st.ShardFailures != 0 {
				t.Fatalf("ShardFailures = %d: transient fault killed a shard permanently", st.ShardFailures)
			}
			if st.TransientFaults != 2 {
				t.Fatalf("TransientFaults = %d, want 2", st.TransientFaults)
			}
			if st.ShardsCorrupted != tc.wantCorrupted || st.StripesHealed != tc.wantHealed {
				t.Fatalf("ShardsCorrupted/StripesHealed = %d/%d, want %d/%d",
					st.ShardsCorrupted, st.StripesHealed, tc.wantCorrupted, tc.wantHealed)
			}
		})
	}
}

func TestDecoderValidation(t *testing.T) {
	dec, err := NewDecoder(Options{Codec: mustRS(t, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(context.Background(), make([]io.Reader, 3), io.Discard, 0); err == nil {
		t.Fatal("wrong reader count accepted")
	}
	// Only 3 of 6 readers present (< k=4).
	readers := make([]io.Reader, 6)
	for i := 0; i < 3; i++ {
		readers[i] = bytes.NewReader(nil)
	}
	if err := dec.Decode(context.Background(), readers, io.Discard, 0); err == nil {
		t.Fatal("too few present readers accepted")
	}
}

// TestLRCStreamRoundtrip drives the pipeline with a wrapped LRC codec,
// exercising the generic (non-fast-path) reconstruct branch.
func TestLRCStreamRoundtrip(t *testing.T) {
	code, err := lrc.New(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := WrapLRC(code)
	if w.K() != 6 || w.M() != 4 {
		t.Fatalf("wrapped geometry %d+%d, want 6+4", w.K(), w.M())
	}
	opts := Options{Codec: w, StripeSize: 6 * 300, Workers: 3}
	payload := randBytes(t, 20000, 21)
	shards := encodeAll(t, opts, payload)
	// Lose one data shard (locally repairable) and one global parity.
	shards[2] = nil
	shards[6] = nil
	got := decodeAll(t, opts, shards, int64(len(payload)))
	if !bytes.Equal(got, payload) {
		t.Fatal("LRC streaming roundtrip mismatch")
	}
}
