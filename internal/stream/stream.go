// Package stream is a concurrent, streaming erasure-coding pipeline
// over the repository's byte-level codecs.
//
// The whole-buffer API (rs.Code, lrc.Code) encodes one stripe at a
// time on the calling goroutine and requires the entire payload in
// memory. This package chunks an io.Reader into fixed-size stripes,
// fans the stripes out to a worker pool, encodes each with the fused
// word-parallel GF(2^8) kernels (internal/gf), and emits the resulting
// shards through an
// order-preserving bounded in-flight window, so arbitrarily large
// inputs are processed in O(stripe) memory with all cores busy.
//
// Both directions are provided:
//
//   - Encoder: io.Reader -> k+m per-shard io.Writers
//   - Decoder: k+m per-shard io.Readers (nil or failing entries
//     tolerated, up to m per stripe) -> io.Writer
//
// Stripe buffers are pooled (sync.Pool), cancellation is by
// context.Context, and the first error from any stage cancels the
// pipeline and drains the workers before returning. Per-pipeline
// counters (stripes, bytes in/out, stripe latency histogram) are
// available via Stats().
package stream

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"dialga/internal/lrc"
	"dialga/internal/obs"
	"dialga/internal/shardio"
	"dialga/internal/vclock"
)

// DefaultStripeSize is the data payload per stripe when
// Options.StripeSize is zero: 1 MiB, large enough to amortize
// per-stripe scheduling, small enough that a deep window stays cheap.
const DefaultStripeSize = 1 << 20

// crcSize is the per-block checksum trailer width: one little-endian
// CRC-32C word. Checksums come from internal/gf (gf.CRC32C), the same
// primitive the fused encode+CRC sweep folds per tile, so trailers are
// identical whichever path produced them.
const crcSize = 4

// Checksum selects the per-block integrity trailer the pipeline
// appends on encode and verifies on decode.
type Checksum int

const (
	// ChecksumCRC32C appends a 4-byte little-endian CRC-32C
	// (Castagnoli) over each shard block. It is the zero value:
	// pipelines detect and self-heal silent corruption by default.
	ChecksumCRC32C Checksum = iota
	// ChecksumNone emits bare shard blocks — the legacy (v2 shard
	// header) framing. The decoder then has no way to detect wrong
	// bytes; only reader errors and early EOFs demote shards.
	ChecksumNone
)

func (c Checksum) String() string {
	switch c {
	case ChecksumCRC32C:
		return "crc32c"
	case ChecksumNone:
		return "none"
	default:
		return fmt.Sprintf("checksum(%d)", int(c))
	}
}

// trailerSize is the number of trailer bytes appended to every shard
// block under this checksum.
func (c Checksum) trailerSize() int {
	if c == ChecksumCRC32C {
		return crcSize
	}
	return 0
}

// ErrTooManyCorrupt reports a stripe left with fewer than k usable
// shard blocks once corrupt (checksum-failed), unreadable, and missing
// shards are discounted. The decoder returns it — wrapped with the
// stripe number — instead of ever emitting unverified bytes.
var ErrTooManyCorrupt = errors.New("stream: too many corrupt or missing shard blocks in stripe")

// Codec is the stripe-level erasure codec the pipeline drives: k data
// shards in, m parity shards out, and reconstruction of a k+m stripe
// with nil entries for missing shards. *rs.Code and the public
// dialga.Codec satisfy it directly; wrap an LRC code with WrapLRC.
// Implementations must be safe for concurrent use.
type Codec interface {
	K() int
	M() int
	Encode(data, parity [][]byte) error
	Reconstruct(blocks [][]byte) error
}

// dataReconstructor is the optional fast path for decoding: rebuild
// only the data shards, skipping parity. *rs.Code implements it.
// Implementations must honour the spare-buffer contract — a zero-length
// entry with capacity is "missing, rebuild in place" — which lets the
// decoder hand out pooled output buffers instead of allocating per
// stripe.
type dataReconstructor interface {
	ReconstructData(blocks [][]byte) error
}

// sumEncoder is the optional fused encode+CRC fast path: a single
// cache-tiled sweep produces the parity blocks and the CRC-32C of all
// k+m blocks, folded per 4 KiB tile while the data is L1-resident.
// *rs.Code and the public dialga.Codec implement it. The sums must be
// byte-for-byte what gf.CRC32C would return over each full block.
type sumEncoder interface {
	EncodeSumInto(sums []uint32, data, parity [][]byte) error
}

// WrapLRC adapts an LRC(k, m, l) code to the pipeline Codec: the
// m global and l local parities are flattened into M() = m+l parity
// shards in stripe order (global first), matching lrc.Code's stripe
// layout.
func WrapLRC(c *lrc.Code) Codec { return lrcCodec{c} }

type lrcCodec struct{ c *lrc.Code }

func (w lrcCodec) K() int { return w.c.K() }
func (w lrcCodec) M() int { return w.c.M() + w.c.L() }

func (w lrcCodec) Encode(data, parity [][]byte) error {
	m := w.c.M()
	return w.c.Encode(data, parity[:m], parity[m:])
}

func (w lrcCodec) Reconstruct(blocks [][]byte) error { return w.c.Reconstruct(blocks) }

// Options configures a pipeline. The zero value of every field except
// Codec is usable: defaults are filled in by NewEncoder/NewDecoder.
type Options struct {
	// Codec encodes and reconstructs stripes. Required.
	Codec Codec

	// StripeSize is the number of data bytes per stripe, rounded up
	// to a multiple of Codec.K() so shards stay equally sized.
	// Default DefaultStripeSize.
	StripeSize int

	// Workers is the number of encoding goroutines.
	// Default runtime.GOMAXPROCS(0).
	Workers int

	// Window bounds the number of in-flight stripes (read but not
	// yet emitted); the producer blocks once the window is full, so
	// memory stays at O(Window * StripeSize) regardless of input
	// size. Default 2*Workers.
	Window int

	// Checksum selects the per-block integrity trailer. The zero
	// value is ChecksumCRC32C; pass ChecksumNone to read or write the
	// legacy trailer-less framing.
	Checksum Checksum

	// DisableFused forces the encoder onto the two-pass path (encode,
	// then a separate CRC sweep per block) even when the codec offers
	// the fused single-pass encode+CRC. The output is byte-identical
	// either way; this is an escape hatch for benchmarking and for
	// bisecting a suspected fused-path miscompute in production.
	DisableFused bool

	// HedgeAfter enables hedged degraded reads on decode when
	// positive: a shard that misses the stripe's adaptive deadline
	// (derived from the fleet-median block-read latency) while at
	// least k blocks have arrived is demoted to slow, and the stripe
	// reconstructs around it immediately while the slow read continues
	// in the background — first finisher wins. HedgeAfter is also the
	// deadline floor. Zero (the default) disables hedging and the
	// circuit breaker: every stripe waits for all live shards.
	HedgeAfter time.Duration

	// DeadlineMult scales the fleet-median latency EWMA into the
	// per-stripe deadline. Default shardio.DefaultDeadlineMult (3x).
	DeadlineMult float64

	// MaxDeadline caps the adaptive deadline. Default
	// shardio.DefaultMaxDeadline.
	MaxDeadline time.Duration

	// MaxRetries bounds exponential-backoff retries of transient shard
	// read errors per block. Default shardio.DefaultMaxRetries;
	// negative disables retries.
	MaxRetries int

	// Backoff is the base of the full-jitter backoff between retries.
	// Default shardio.DefaultBackoff.
	Backoff time.Duration

	// BreakerThreshold is the number of consecutive deadline misses
	// that trips a shard's circuit breaker open (the decoder stops
	// waiting for it until a half-open probe succeeds). Default
	// shardio.DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is the open period before the first half-open
	// probe, doubling with every consecutive trip. Default
	// shardio.DefaultBreakerCooldown.
	BreakerCooldown time.Duration

	// Seed makes retry jitter (and fault-injection schedules layered
	// underneath) reproducible.
	Seed uint64

	// CloseReaders, on decode, closes every shard reader that
	// implements io.Closer when Decode returns — including readers a
	// hedged stripe abandoned mid-Read. Network sources (HTTP response
	// bodies) need this: without it a decoder that reconstructed
	// around a straggler would leak the straggler's connection until
	// its read happened to finish. The readers' Close must be safe to
	// call concurrently with a blocked Read (http.Response.Body is);
	// that is exactly how a stuck remote read gets unblocked promptly.
	CloseReaders bool

	// Metrics, when non-nil, is the observability registry the
	// pipeline registers its counter/gauge/histogram series in
	// (stream_* series labelled by pipeline direction, shardio_*
	// series for the decoder's shard scheduler); Stats() snapshots
	// read from those live series, and `dialga-bench -serve` exposes
	// the registry at /metrics. Nil keeps the historical behaviour: a
	// private registry per pipeline, observable only through Stats().
	// Pipelines sharing a registry accumulate into the same series.
	Metrics *obs.Registry

	// Trace, when non-nil, records a lifecycle span per stripe (read →
	// verify → reconstruct → emit on decode, read → encode → emit on
	// encode, annotated with hedge/breaker/heal decisions) into the
	// tracer's ring buffer; `dialga-bench -serve` exposes it at
	// /debug/trace. Nil disables tracing at zero cost.
	Trace *obs.Tracer

	// Readahead is the initial per-shard readahead depth on decode:
	// each shard goroutine speculatively reads up to this many blocks
	// past its last request while idle, so a request for a buffered
	// block completes without touching the device. Zero (the default)
	// disables prefetching; a Tuner can raise or lower the live depth
	// at stripe boundaries.
	Readahead int

	// Tuner, when non-nil, is consulted once per stripe at the
	// producer's submission point (and by the decoder's shard scheduler
	// at every gather) for dynamic knob overrides: hedge interval,
	// deadline multiplier, readahead depth, active worker count, and
	// in-flight window. Implementations must be safe for concurrent
	// use. Nil keeps every knob at its static Options value — the
	// pipeline then runs byte-for-byte identically to a build without
	// adaptive support.
	Tuner Tuner

	// Clock, when non-nil, replaces the wall clock for every
	// time-driven decision (hedge deadlines, breaker cooldowns, retry
	// backoff, latency stamps) — the determinism seam tests and the
	// adaptive controller share. Nil means time.Now.
	Clock vclock.Clock
}

// Tuning is one snapshot of dynamic pipeline knob overrides. The zero
// value of each field (and any out-of-range value) leaves that knob at
// its current setting, so a Tuner only moves the knobs it means to.
type Tuning struct {
	// HedgeAfter overrides the hedge interval when positive. It cannot
	// enable hedging on a pipeline built with HedgeAfter == 0 (the
	// scheduler has no breaker or late-slot machinery to hedge with).
	HedgeAfter time.Duration
	// DeadlineMult overrides the deadline multiplier when >= 1.
	DeadlineMult float64
	// Readahead overrides the per-shard readahead depth when >= 0;
	// 0 disables prefetching, negative leaves the depth unchanged.
	Readahead int
	// Workers overrides the number of active encode/decode workers
	// when >= 1, clamped to the static Options.Workers ceiling (the
	// goroutines exist for the pipeline's lifetime; the knob gates how
	// many may hold a stripe).
	Workers int
	// Window overrides the bounded in-flight window when >= 1, clamped
	// to the static Options.Window ceiling.
	Window int
}

// Tuner supplies the pipeline's dynamic knobs. PipelineTuning is
// called from the producer goroutine once per stripe and from the
// decoder's gather loop once per stripe; it must be fast, non-blocking,
// and safe for concurrent use.
type Tuner interface {
	PipelineTuning() Tuning
}

// shardTunerAdapter narrows a pipeline Tuner to the shard scheduler's
// TuningSource: the shard-level knobs pass through, the pipeline-level
// ones (Workers, Window) are dropped.
type shardTunerAdapter struct{ t Tuner }

func (a shardTunerAdapter) ShardTuning() shardio.Tuning {
	pt := a.t.PipelineTuning()
	ra := pt.Readahead
	if ra < 0 {
		ra = -1
	}
	return shardio.Tuning{
		DeadlineMult: pt.DeadlineMult,
		HedgeAfter:   pt.HedgeAfter,
		Readahead:    ra,
	}
}

// geom is a validated, defaulted view of Options.
type geom struct {
	codec      Codec
	k, m       int
	shardSize  int // data bytes per shard per stripe
	stripeSize int // k * shardSize
	workers    int
	window     int
	checksum   Checksum
	trailer    int             // trailer bytes per shard block (0 or crcSize)
	blockSize  int             // shardSize + trailer: bytes on the wire per shard per stripe
	fused      sumEncoder      // non-nil: encoder uses the single-pass encode+CRC sweep
	straggler  shardio.Options // validated shard-I/O scheduling config (decoder)
	closeRead  bool            // close closable shard readers when Decode returns
	metrics    *obs.Registry   // nil: each pipeline gets a private registry
	trace      *obs.Tracer     // nil: tracing off
	tuner      Tuner           // nil: every knob static
	clock      vclock.Clock    // nil: wall clock
}

var errNoCodec = errors.New("stream: Options.Codec is required")

func (o Options) geometry() (geom, error) {
	if o.Codec == nil {
		return geom{}, errNoCodec
	}
	k, m := o.Codec.K(), o.Codec.M()
	if k <= 0 || m <= 0 {
		return geom{}, fmt.Errorf("stream: codec geometry k=%d m=%d invalid", k, m)
	}
	stripe := o.StripeSize
	if stripe == 0 {
		stripe = DefaultStripeSize
	}
	if stripe < 0 {
		return geom{}, fmt.Errorf("stream: StripeSize %d must be positive", stripe)
	}
	shard := (stripe + k - 1) / k
	workers := o.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		return geom{}, fmt.Errorf("stream: Workers %d must be positive", workers)
	}
	window := o.Window
	if window == 0 {
		window = 2 * workers
	}
	if window < 0 {
		return geom{}, fmt.Errorf("stream: Window %d must be positive", window)
	}
	if o.Checksum != ChecksumCRC32C && o.Checksum != ChecksumNone {
		return geom{}, fmt.Errorf("stream: unknown Checksum %d", o.Checksum)
	}
	trailer := o.Checksum.trailerSize()
	var fused sumEncoder
	if se, ok := o.Codec.(sumEncoder); ok && trailer > 0 && !o.DisableFused {
		// Fusion only pays when trailers are wanted: without checksums
		// the plain Encode sweep already does all the work there is.
		fused = se
	}
	if o.Readahead < 0 {
		return geom{}, fmt.Errorf("stream: Readahead %d must be non-negative", o.Readahead)
	}
	sopts := shardio.Options{
		BlockSize:        shard + trailer,
		Quorum:           k,
		HedgeAfter:       o.HedgeAfter,
		DeadlineMult:     o.DeadlineMult,
		MaxDeadline:      o.MaxDeadline,
		MaxRetries:       o.MaxRetries,
		Backoff:          o.Backoff,
		BreakerThreshold: o.BreakerThreshold,
		BreakerCooldown:  o.BreakerCooldown,
		Seed:             o.Seed,
		Metrics:          o.Metrics,
		Readahead:        o.Readahead,
		Clock:            o.Clock,
	}
	if o.Tuner != nil {
		sopts.Tuning = shardTunerAdapter{o.Tuner}
	}
	straggler, err := sopts.Normalize()
	if err != nil {
		return geom{}, err
	}
	return geom{
		codec:      o.Codec,
		k:          k,
		m:          m,
		shardSize:  shard,
		stripeSize: shard * k,
		workers:    workers,
		window:     window,
		checksum:   o.Checksum,
		trailer:    trailer,
		blockSize:  shard + trailer,
		fused:      fused,
		straggler:  straggler,
		closeRead:  o.CloseReaders,
		metrics:    o.Metrics,
		trace:      o.Trace,
		tuner:      o.Tuner,
		clock:      o.Clock,
	}, nil
}

// shardViews slices buf into n consecutive shardSize-byte views
// without copying. The views alias buf (the same deliberate aliasing
// rs.Split performs on full-length inputs); the pipeline owns its
// pooled buffers, so the aliasing never escapes to callers.
func shardViews(buf []byte, n, shardSize int) [][]byte {
	return shardViewsInto(make([][]byte, 0, n), buf, n, shardSize)
}

// shardViewsInto is shardViews writing into caller scratch: jobs keep
// their view slices across pool cycles so the per-stripe hot path
// re-slices instead of allocating.
func shardViewsInto(views [][]byte, buf []byte, n, shardSize int) [][]byte {
	views = views[:0]
	for i := 0; i < n; i++ {
		views = append(views, buf[i*shardSize:(i+1)*shardSize:(i+1)*shardSize])
	}
	return views
}

// sliceN returns s resized to n zeroed elements, reallocating only
// when the capacity is short — pooled-job scratch management.
func sliceN[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
