package stream

import (
	"bytes"
	"context"
	"io"
	"testing"

	"dialga/internal/fault"
)

// FuzzStreamRoundTrip throws arbitrary payloads and seeded fault
// plans at the checksummed pipeline. The invariant is absolute: the
// decoder either returns an error or returns exactly the encoded
// payload — corrupted, truncated, or flaky shard streams must never
// surface as wrong bytes, and the pristine stream must always decode.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint64(0))
	f.Add([]byte("dialga"), uint64(1))
	f.Add(bytes.Repeat([]byte{0xa5}, 4096), uint64(7))
	f.Add(bytes.Repeat([]byte("stripe!"), 613), uint64(1<<40))

	f.Fuzz(func(t *testing.T, payload []byte, seed uint64) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		k := 2 + int(seed%5)      // 2..6
		m := 1 + int((seed>>3)%3) // 1..3
		shardSize := 16 << (seed >> 6 % 3)
		opts := Options{Codec: mustRS(t, k, m), StripeSize: k * shardSize,
			Workers: 2, Checksum: ChecksumCRC32C}
		shards := encodeAll(t, opts, payload)

		// Pristine decode must always round-trip.
		got := decodeAll(t, opts, shards, int64(len(payload)))
		if !bytes.Equal(got, payload) {
			t.Fatalf("pristine round trip mismatch: k=%d m=%d shard=%d len=%d", k, m, shardSize, len(payload))
		}

		// Chaos decode: derive a deterministic fault plan per shard
		// from the seed and let it hit an arbitrary number of shards —
		// beyond the parity budget is fair game.
		dec, err := NewDecoder(opts)
		if err != nil {
			t.Fatal(err)
		}
		streamLen := int64(len(shards[0]))
		readers := make([]io.Reader, k+m)
		for i, s := range shards {
			sub := seed*0x9e3779b97f4a7c15 + uint64(i)
			if sub%4 == 0 || streamLen == 0 {
				readers[i] = bytes.NewReader(s) // clean shard
				continue
			}
			plan := fault.Generate(sub, streamLen, 1+int(sub>>8%4))
			readers[i] = fault.NewReader(bytes.NewReader(s), plan)
		}
		var out bytes.Buffer
		if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err == nil {
			if !bytes.Equal(out.Bytes(), payload) {
				t.Fatalf("faulted decode returned success with wrong bytes: k=%d m=%d seed=%d", k, m, seed)
			}
		} else if got := out.Bytes(); !bytes.Equal(got, payload[:len(got)]) {
			t.Fatalf("faulted decode emitted non-prefix bytes before failing: k=%d m=%d seed=%d", k, m, seed)
		}
	})
}
