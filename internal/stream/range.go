package stream

import (
	"context"
	"fmt"
	"io"
)

// DecodeRange reconstructs the byte window [off, off+length) of a
// stream whose full payload is size bytes, writing exactly the window
// to w. The shard readers must be positioned at the first block of
// stripe off/StripeSize — the stripe containing the window's first
// byte — which is where a whole-shard reader already is when off is 0;
// remote callers get there with a block-windowed shard fetch. Work and
// I/O are proportional to the stripes the window covers, not to the
// stream: the leading partial stripe is decoded and trimmed locally,
// and decoding stops after the window's last stripe.
//
// off == 0 with length == size is exactly Decode. length is clamped
// to the end of the stream.
func (d *Decoder) DecodeRange(ctx context.Context, shards []io.Reader, w io.Writer, size, off, length int64) error {
	stripe := int64(d.g.stripeSize)
	if off < 0 || off > size {
		return fmt.Errorf("stream: decode range offset %d outside stream of %d bytes", off, size)
	}
	if length < 0 || off+length > size {
		length = size - off
	}
	// The decodable unit is the stripe: back the window's start up to
	// its stripe boundary, decode through the window's end, and drop
	// the lead-in bytes on the way to w. Decode's own size handling
	// trims the final stripe.
	start := off / stripe * stripe
	window := off + length - start
	rw := &rangeWriter{w: w, skip: off - start}
	return d.Decode(ctx, shards, rw, window)
}

// rangeWriter discards the first skip bytes and passes the rest
// through — the lead-in of a range's first stripe, decoded because
// reconstruction needs whole stripes but not part of the range.
type rangeWriter struct {
	w    io.Writer
	skip int64
}

func (r *rangeWriter) Write(p []byte) (int, error) {
	n := len(p)
	if r.skip > 0 {
		if int64(n) <= r.skip {
			r.skip -= int64(n)
			return n, nil
		}
		p = p[r.skip:]
		r.skip = 0
	}
	if _, err := r.w.Write(p); err != nil {
		return 0, err
	}
	return n, nil
}
