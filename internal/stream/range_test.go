package stream

import (
	"bytes"
	"context"
	"io"
	"testing"
)

// decodeRange runs DecodeRange over block-windowed slices of the
// shard streams — the same windows a remote block fetch would return:
// each reader starts at the first block of the stripe containing off
// and holds exactly the blocks the window covers.
func decodeRange(t testing.TB, opts Options, shards [][]byte, size, off, length int64) []byte {
	t.Helper()
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	stripe := int64(dec.StripeSize())
	block := int64(dec.BlockSize())
	first := off / stripe
	end := off + length
	if length < 0 || end > size {
		end = size
	}
	last := (end + stripe - 1) / stripe
	if last <= first {
		last = first + 1
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		if s == nil {
			continue
		}
		lo, hi := first*block, last*block
		if hi > int64(len(s)) {
			hi = int64(len(s))
		}
		readers[i] = bytes.NewReader(s[lo:hi])
	}
	var out bytes.Buffer
	if err := dec.DecodeRange(context.Background(), readers, &out, size, off, length); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestDecodeRangeMatchesSlices is the core range-read property: for
// any window, DecodeRange over block-windowed shard readers yields
// exactly payload[off:off+length], including ragged-tail and
// clamped-length windows.
func TestDecodeRangeMatchesSlices(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 1000, Workers: 2}
	size := int64(4*1000 + 123) // five stripes, ragged tail
	payload := randBytes(t, int(size), 77)
	shards := encodeAll(t, opts, payload)

	cases := []struct {
		name        string
		off, length int64
	}{
		{"start", 0, 10},
		{"full-object", 0, size},
		{"mid-stripe", 450, 200},
		{"stripe-aligned", 1000, 1000},
		{"cross-stripe", 900, 1200},
		{"three-stripes", 500, 3000},
		{"tail-partial-stripe", 4000, 123},
		{"into-ragged-tail", 3990, 50},
		{"last-byte", size - 1, 1},
		{"open-ended", 2500, -1},
		{"length-clamped", 3500, 1 << 20},
		{"zero-length", 1500, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := decodeRange(t, opts, shards, size, tc.off, tc.length)
			end := tc.off + tc.length
			if tc.length < 0 || end > size {
				end = size
			}
			want := payload[tc.off:end]
			if !bytes.Equal(got, want) {
				t.Fatalf("off=%d length=%d: got %d bytes, want %d (mismatch)",
					tc.off, tc.length, len(got), len(want))
			}
		})
	}
}

// TestDecodeRangeReconstructs proves a window decodes through missing
// shards: with m shards gone, every block of the window is rebuilt
// from the survivors and the bytes still match the payload slice.
func TestDecodeRangeReconstructs(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 1000, Workers: 2}
	size := int64(6*1000 + 500)
	payload := randBytes(t, int(size), 13)
	shards := encodeAll(t, opts, payload)
	shards[1], shards[4] = nil, nil // one data, one parity shard lost

	got := decodeRange(t, opts, shards, size, 2345, 2000)
	if want := payload[2345 : 2345+2000]; !bytes.Equal(got, want) {
		t.Fatalf("degraded range decode mismatch: got %d bytes, want %d", len(got), len(want))
	}
}

// TestDecodeRangeFullEqualsDecode pins the degenerate window: off 0,
// length size over full shard streams must behave exactly like Decode.
func TestDecodeRangeFullEqualsDecode(t *testing.T) {
	code := mustRS(t, 3, 2)
	opts := Options{Codec: code, StripeSize: 600, Workers: 2}
	for _, n := range []int64{0, 1, 599, 600, 601, 3*600 + 17} {
		payload := randBytes(t, int(n), n+5)
		shards := encodeAll(t, opts, payload)
		got := decodeRange(t, opts, shards, n, 0, n)
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: full-window DecodeRange != payload", n)
		}
	}
}

// TestDecodeRangeBadOffset rejects windows starting outside the
// stream instead of quietly decoding garbage.
func TestDecodeRangeBadOffset(t *testing.T) {
	code := mustRS(t, 3, 2)
	opts := Options{Codec: code, StripeSize: 600, Workers: 1}
	payload := randBytes(t, 1200, 3)
	shards := encodeAll(t, opts, payload)
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	for _, off := range []int64{-1, 1201} {
		if err := dec.DecodeRange(context.Background(), readers, io.Discard, 1200, off, 10); err == nil {
			t.Fatalf("off=%d: want error, got nil", off)
		}
	}
}
