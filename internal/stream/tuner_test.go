package stream

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"
	"time"
)

// staticTuner returns a fixed Tuning on every pull and counts pulls.
type staticTuner struct {
	mu    sync.Mutex
	t     Tuning
	pulls int
}

func (s *staticTuner) PipelineTuning() Tuning {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pulls++
	return s.t
}

func (s *staticTuner) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pulls
}

// TestTunerThrottledPipelineRoundTrip squeezes a decode through the
// dynamic gates at their minimum (one worker, window of one, readahead
// on) and requires byte-exact output: throttling must slow the
// pipeline, never corrupt or deadlock it.
func TestTunerThrottledPipelineRoundTrip(t *testing.T) {
	const k, m, shardSize, stripes = 4, 2, 256, 12
	opts := Options{
		Codec:      mustRS(t, k, m),
		StripeSize: k * shardSize,
		Workers:    3,
		Window:     4,
		Seed:       1,
	}
	payload := randBytes(t, stripes*k*shardSize, 23)
	shards := encodeAll(t, opts, payload)

	tuner := &staticTuner{t: Tuning{
		Workers:   1,
		Window:    1,
		Readahead: 2,
	}}
	opts.Tuner = tuner
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, k+m)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("throttled decode produced wrong bytes")
	}
	// The tuner is pulled at every stripe boundary from both the
	// producer and the shard gather loop.
	if got := tuner.count(); got < stripes {
		t.Fatalf("tuner pulled %d times, want >= %d (once per stripe)", got, stripes)
	}

	// Encode through the same gates.
	tuner2 := &staticTuner{t: Tuning{Workers: 1, Window: 1}}
	opts2 := opts
	opts2.Tuner = tuner2
	shards2 := encodeAll(t, opts2, payload)
	for i := range shards {
		if !bytes.Equal(shards[i], shards2[i]) {
			t.Fatalf("throttled encode shard %d differs from static encode", i)
		}
	}
	if tuner2.count() < stripes {
		t.Fatalf("encode pulled the tuner %d times, want >= %d", tuner2.count(), stripes)
	}
}

// TestTunerOutOfRangeLeavesKnobsAlone: zero/negative tuning values
// mean "don't move", so a zero-value Tuning is a no-op and the decode
// matches the static pipeline exactly.
func TestTunerOutOfRangeLeavesKnobsAlone(t *testing.T) {
	const k, m, shardSize, stripes = 3, 2, 128, 6
	opts := Options{
		Codec:      mustRS(t, k, m),
		StripeSize: k * shardSize,
		Workers:    2,
		Seed:       2,
		HedgeAfter: 50 * time.Millisecond, // never fires on clean readers
	}
	payload := randBytes(t, stripes*k*shardSize, 29)
	shards := encodeAll(t, opts, payload)

	opts.Tuner = &staticTuner{t: Tuning{Readahead: -1, Workers: -5, Window: 0}}
	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, k+m)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("no-op-tuned decode produced wrong bytes")
	}
	st := dec.Stats()
	if st.Stripes != stripes {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}
}
