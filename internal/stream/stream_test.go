package stream

import (
	"runtime"
	"testing"
	"time"
)

func TestOptionsDefaults(t *testing.T) {
	g, err := Options{Codec: mustRS(t, 8, 4)}.geometry()
	if err != nil {
		t.Fatal(err)
	}
	if g.stripeSize != DefaultStripeSize {
		t.Fatalf("stripeSize = %d, want %d", g.stripeSize, DefaultStripeSize)
	}
	if g.shardSize != DefaultStripeSize/8 {
		t.Fatalf("shardSize = %d, want %d", g.shardSize, DefaultStripeSize/8)
	}
	if g.workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("workers = %d, want GOMAXPROCS", g.workers)
	}
	if g.window != 2*g.workers {
		t.Fatalf("window = %d, want %d", g.window, 2*g.workers)
	}
}

func TestOptionsStripeRounding(t *testing.T) {
	// StripeSize 1000 with k=3 rounds up to shards of 334 bytes.
	g, err := Options{Codec: mustRS(t, 3, 2), StripeSize: 1000}.geometry()
	if err != nil {
		t.Fatal(err)
	}
	if g.shardSize != 334 || g.stripeSize != 1002 {
		t.Fatalf("got shard %d stripe %d, want 334/1002", g.shardSize, g.stripeSize)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := (Options{}).geometry(); err == nil {
		t.Fatal("nil codec accepted")
	}
	code := mustRS(t, 4, 2)
	for _, o := range []Options{
		{Codec: code, StripeSize: -1},
		{Codec: code, Workers: -1},
		{Codec: code, Window: -1},
	} {
		if _, err := o.geometry(); err == nil {
			t.Fatalf("invalid options %+v accepted", o)
		}
	}
	if _, err := NewEncoder(Options{}); err == nil {
		t.Fatal("NewEncoder accepted nil codec")
	}
	if _, err := NewDecoder(Options{}); err == nil {
		t.Fatal("NewDecoder accepted nil codec")
	}
}

func TestLatencyHistogram(t *testing.T) {
	c := newCounters(nil, "test")
	c.observe(500 * time.Nanosecond) // bucket 0
	c.observe(3 * time.Microsecond)  // (2µs,4µs] -> bucket 2
	c.observe(3 * time.Microsecond)
	c.observe(10 * time.Millisecond) // 10000µs -> bucket 14
	h := c.snapshot().Latency
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[2] != 2 || h.Counts[14] != 1 {
		t.Fatalf("bucket counts wrong: %v", h.Counts)
	}
	if lo, hi := h.Bucket(2); lo != 2*time.Microsecond || hi != 4*time.Microsecond {
		t.Fatalf("Bucket(2) = [%v,%v), want [2µs,4µs)", lo, hi)
	}
	// Quantiles are monotone and bracket the observations.
	if q := h.Quantile(0); q > time.Microsecond {
		t.Fatalf("Quantile(0) = %v, want <= 1µs", q)
	}
	if q := h.Quantile(1); q < 10*time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want >= 10ms", q)
	}
	if h.Quantile(0.5) > h.Quantile(0.9) {
		t.Fatal("quantiles not monotone")
	}
	// Overflow clamps into the last bucket instead of panicking.
	c.observe(10 * time.Hour)
	if c.snapshot().Latency.Counts[latencyBuckets-1] != 1 {
		t.Fatal("overflow observation not clamped to last bucket")
	}
	var empty LatencyHistogram
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestBufPool(t *testing.T) {
	p := newBufPool(64)
	b := p.get()
	if len(b) != 64 {
		t.Fatalf("got %d-byte buffer, want 64", len(b))
	}
	p.put(b)
	p.put(make([]byte, 3)) // undersized backing array must be dropped
	if got := p.get(); len(got) != 64 {
		t.Fatalf("pool returned %d-byte buffer after foreign put", len(got))
	}
}

// TestBufPoolRecyclesShortTail is the regression test for the pool
// leak: put() used to drop any buffer whose len differed from the pool
// size, so a reslice — the natural shape of a short final stripe —
// leaked its backing array and cost a fresh allocation every cycle.
// put() must accept any buffer with sufficient capacity and restore
// the canonical length.
func TestBufPoolRecyclesShortTail(t *testing.T) {
	if raceEnabled {
		// Race instrumentation makes sync.Pool.Put randomly drop items,
		// so the buffer-identity and alloc assertions below are flaky.
		t.Skip("sync.Pool drops randomly under the race detector")
	}
	p := newBufPool(64)
	b := p.get()
	p.put(b[:10]) // tail-stripe-shaped reslice
	got := p.get()
	if len(got) != 64 {
		t.Fatalf("got %d-byte buffer after short put, want 64", len(got))
	}
	if &got[0] != &b[0] {
		t.Fatal("short-tail buffer was dropped instead of recycled")
	}
	p.put(got)

	// Steady state stays allocation-free even when every cycle hands
	// back a trimmed view.
	allocs := testing.AllocsPerRun(200, func() {
		b := p.get()
		p.put(b[:1])
	})
	if allocs != 0 {
		t.Fatalf("short-tail pool cycle allocates %v objects per run, want 0", allocs)
	}
}
