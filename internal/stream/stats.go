package stream

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of power-of-two stripe-latency buckets:
// bucket i counts stripes whose encode/reconstruct time fell in
// [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs), so the histogram
// spans <1µs to ~1min with no allocation on the hot path.
const latencyBuckets = 27

// counters is the internal, atomically updated statistics block of a
// pipeline.
type counters struct {
	stripes         atomic.Uint64
	bytesIn         atomic.Uint64
	bytesOut        atomic.Uint64
	shardFailures   atomic.Uint64
	reconstructed   atomic.Uint64
	shardsCorrupted atomic.Uint64
	stripesHealed   atomic.Uint64
	transientFaults atomic.Uint64
	hedgedReads     atomic.Uint64
	hedgeWins       atomic.Uint64
	breakerTrips    atomic.Uint64
	retries         atomic.Uint64
	workerPanics    atomic.Uint64
	lat             [latencyBuckets]atomic.Uint64
}

func (c *counters) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for <1µs, then ceil(log2(us))+ boundaries
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	c.lat[i].Add(1)
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Stripes:         c.stripes.Load(),
		BytesIn:         c.bytesIn.Load(),
		BytesOut:        c.bytesOut.Load(),
		ShardFailures:   c.shardFailures.Load(),
		Reconstructed:   c.reconstructed.Load(),
		ShardsCorrupted: c.shardsCorrupted.Load(),
		StripesHealed:   c.stripesHealed.Load(),
		TransientFaults: c.transientFaults.Load(),
		HedgedReads:     c.hedgedReads.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		BreakerTrips:    c.breakerTrips.Load(),
		Retries:         c.retries.Load(),
		WorkerPanics:    c.workerPanics.Load(),
	}
	for i := range c.lat {
		s.Latency.Counts[i] = c.lat[i].Load()
	}
	return s
}

// Stats is a point-in-time snapshot of a pipeline's counters, safe to
// read while the pipeline runs.
type Stats struct {
	// Stripes is the number of stripes fully emitted downstream.
	Stripes uint64
	// BytesIn counts payload bytes consumed from the input reader(s).
	BytesIn uint64
	// BytesOut counts bytes written to the output writer(s),
	// including parity on encode.
	BytesOut uint64
	// ShardFailures counts shard input streams that died mid-stream
	// (decoder only): read errors and short/ragged shards.
	ShardFailures uint64
	// Reconstructed counts stripes that needed erasure reconstruction
	// (decoder only).
	Reconstructed uint64
	// ShardsCorrupted counts shard blocks demoted to erasures for one
	// stripe (decoder only): checksum-trailer mismatches, plus blocks
	// discarded after a transient read fault when no checksum is
	// available to clear them. Unlike ShardFailures, a corrupted
	// shard stays live for later stripes.
	ShardsCorrupted uint64
	// StripesHealed counts stripes that decoded correctly despite one
	// or more corrupted shard blocks (decoder only).
	StripesHealed uint64
	// TransientFaults counts momentary read errors (errors exposing
	// Transient() bool == true, e.g. fault.ErrInjected) the decoder
	// absorbed without retiring the shard (decoder only).
	TransientFaults uint64
	// HedgedReads counts stripes that proceeded to reconstruction
	// without waiting for at least one live shard that missed its
	// adaptive deadline (decoder only; requires Options.HedgeAfter).
	HedgedReads uint64
	// HedgeWins counts hedged stripes where reconstruction finished
	// before the straggler's block arrived — the hedge genuinely saved
	// the stripe's latency, rather than merely racing a read that won
	// anyway (decoder only).
	HedgeWins uint64
	// BreakerTrips counts per-shard circuit-breaker trips: a shard
	// demoted after missing BreakerThreshold consecutive deadlines,
	// plus every half-open probe that missed again (decoder only).
	BreakerTrips uint64
	// Retries counts exponential-backoff retries of transient shard
	// read errors, including retries spent on reads that ultimately
	// failed (decoder only).
	Retries uint64
	// WorkerPanics counts panics recovered from pipeline stages and
	// shard-reader goroutines and surfaced as *PanicError instead of
	// crashing the process.
	WorkerPanics uint64
	// Latency is the per-stripe codec latency histogram (encode or
	// reconstruct time, excluding I/O).
	Latency LatencyHistogram
}

// LatencyHistogram is a fixed power-of-two histogram of per-stripe
// codec latency.
type LatencyHistogram struct {
	Counts [latencyBuckets]uint64
}

// Total returns the number of observations.
func (h LatencyHistogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Bucket returns the [lo, hi) duration range covered by bucket i.
func (h LatencyHistogram) Bucket(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, time.Microsecond
	}
	return time.Duration(1<<(i-1)) * time.Microsecond, time.Duration(1<<i) * time.Microsecond
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// observed stripe latency, at bucket resolution. It returns 0 when
// nothing has been observed.
func (h LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if rank < cum {
			_, hi := h.Bucket(i)
			return hi
		}
	}
	_, hi := h.Bucket(latencyBuckets - 1)
	return hi
}
