package stream

import (
	"math"
	"time"

	"dialga/internal/obs"
)

// latencyBuckets is the number of stripe-latency buckets: 26 finite
// power-of-two buckets plus one overflow bucket. Bucket 0 covers
// [0, 1µs]; bucket i (1 <= i <= 25) covers (2^(i-1), 2^i] microseconds
// — upper bounds inclusive, matching the Prometheus `le` convention —
// and bucket 26 is everything above 2^25µs (~33s). An exact
// power-of-two latency therefore lands with its peers at the top of
// its bucket, not at the bottom of the one above (the pre-obs
// histogram got this boundary wrong).
const latencyBuckets = 27

// latencyBoundsUS returns the finite inclusive bucket upper bounds in
// microseconds: 2^0 .. 2^25.
func latencyBoundsUS() []float64 {
	bounds := make([]float64, latencyBuckets-1)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << i)
	}
	return bounds
}

// counters is the statistics block of a pipeline, backed by series in
// an obs.Registry: every field is a live registry metric, and Stats is
// a snapshot view over them. Pipelines constructed without
// Options.Metrics get a private registry, preserving the historical
// per-pipeline counter semantics; pipelines sharing a registry share
// (and sum into) the same series per pipeline direction.
type counters struct {
	reg *obs.Registry

	stripes         *obs.Counter
	bytesIn         *obs.Counter
	bytesOut        *obs.Counter
	shardFailures   *obs.Counter
	reconstructed   *obs.Counter
	shardsCorrupted *obs.Counter
	stripesHealed   *obs.Counter
	transientFaults *obs.Counter
	hedgedReads     *obs.Counter
	hedgeWins       *obs.Counter
	breakerTrips    *obs.Counter
	retries         *obs.Counter
	workerPanics    *obs.Counter
	lat             *obs.Histogram
}

// newCounters registers the pipeline counter set in reg (a private
// registry when reg is nil) under the given pipeline label ("encode"
// or "decode").
func newCounters(reg *obs.Registry, pipeline string) *counters {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lbl := obs.Label{Key: "pipeline", Value: pipeline}
	return &counters{
		reg: reg,
		stripes: reg.Counter("stream_stripes_total",
			"Stripes fully emitted downstream.", lbl),
		bytesIn: reg.Counter("stream_bytes_in_total",
			"Payload bytes consumed from the input reader(s).", lbl),
		bytesOut: reg.Counter("stream_bytes_out_total",
			"Bytes written to the output writer(s), including parity on encode.", lbl),
		shardFailures: reg.Counter("stream_shard_failures_total",
			"Shard input streams that died mid-stream (decode).", lbl),
		reconstructed: reg.Counter("stream_reconstructed_total",
			"Stripes that needed erasure reconstruction (decode).", lbl),
		shardsCorrupted: reg.Counter("stream_shards_corrupted_total",
			"Shard blocks demoted to per-stripe erasures (decode).", lbl),
		stripesHealed: reg.Counter("stream_stripes_healed_total",
			"Stripes decoded correctly despite corrupt shard blocks (decode).", lbl),
		transientFaults: reg.Counter("stream_transient_faults_total",
			"Momentary read errors absorbed without retiring the shard (decode).", lbl),
		hedgedReads: reg.Counter("stream_hedged_reads_total",
			"Stripes that proceeded without a live shard that missed its deadline (decode).", lbl),
		hedgeWins: reg.Counter("stream_hedge_wins_total",
			"Hedged stripes where reconstruction beat the straggler's block (decode).", lbl),
		breakerTrips: reg.Counter("stream_breaker_trips_total",
			"Per-shard circuit-breaker trips, including half-open re-trips (decode).", lbl),
		retries: reg.Counter("stream_retries_total",
			"Exponential-backoff retries of transient shard read errors (decode).", lbl),
		workerPanics: reg.Counter("stream_worker_panics_total",
			"Panics recovered from pipeline stages and shard readers.", lbl),
		lat: reg.Histogram("stream_stripe_latency_us",
			"Per-stripe codec latency (encode or reconstruct time, excluding I/O).",
			latencyBoundsUS(), lbl),
	}
}

// observe records one stripe's codec latency.
func (c *counters) observe(d time.Duration) {
	c.lat.Observe(float64(d) / float64(time.Microsecond))
}

func (c *counters) snapshot() Stats {
	s := Stats{
		Stripes:         c.stripes.Value(),
		BytesIn:         c.bytesIn.Value(),
		BytesOut:        c.bytesOut.Value(),
		ShardFailures:   c.shardFailures.Value(),
		Reconstructed:   c.reconstructed.Value(),
		ShardsCorrupted: c.shardsCorrupted.Value(),
		StripesHealed:   c.stripesHealed.Value(),
		TransientFaults: c.transientFaults.Value(),
		HedgedReads:     c.hedgedReads.Value(),
		HedgeWins:       c.hedgeWins.Value(),
		BreakerTrips:    c.breakerTrips.Value(),
		Retries:         c.retries.Value(),
		WorkerPanics:    c.workerPanics.Value(),
	}
	counts, _, _ := c.lat.Snapshot()
	copy(s.Latency.Counts[:], counts)
	return s
}

// Stats is a point-in-time snapshot of a pipeline's counters, safe to
// read while the pipeline runs. Since the obs migration the fields are
// views over registry series (see Options.Metrics); their meaning and
// the snapshot semantics are unchanged.
type Stats struct {
	// Stripes is the number of stripes fully emitted downstream.
	Stripes uint64
	// BytesIn counts payload bytes consumed from the input reader(s).
	BytesIn uint64
	// BytesOut counts bytes written to the output writer(s),
	// including parity on encode.
	BytesOut uint64
	// ShardFailures counts shard input streams that died mid-stream
	// (decoder only): read errors and short/ragged shards.
	ShardFailures uint64
	// Reconstructed counts stripes that needed erasure reconstruction
	// (decoder only).
	Reconstructed uint64
	// ShardsCorrupted counts shard blocks demoted to erasures for one
	// stripe (decoder only): checksum-trailer mismatches, plus blocks
	// discarded after a transient read fault when no checksum is
	// available to clear them. Unlike ShardFailures, a corrupted
	// shard stays live for later stripes.
	ShardsCorrupted uint64
	// StripesHealed counts stripes that decoded correctly despite one
	// or more corrupted shard blocks (decoder only).
	StripesHealed uint64
	// TransientFaults counts momentary read errors (errors exposing
	// Transient() bool == true, e.g. fault.ErrInjected) the decoder
	// absorbed without retiring the shard (decoder only).
	TransientFaults uint64
	// HedgedReads counts stripes that proceeded to reconstruction
	// without waiting for at least one live shard that missed its
	// adaptive deadline (decoder only; requires Options.HedgeAfter).
	HedgedReads uint64
	// HedgeWins counts hedged stripes where reconstruction finished
	// before the straggler's block arrived — the hedge genuinely saved
	// the stripe's latency, rather than merely racing a read that won
	// anyway (decoder only).
	HedgeWins uint64
	// BreakerTrips counts per-shard circuit-breaker trips: a shard
	// demoted after missing BreakerThreshold consecutive deadlines,
	// plus every half-open probe that missed again (decoder only).
	BreakerTrips uint64
	// Retries counts exponential-backoff retries of transient shard
	// read errors, including retries spent on reads that ultimately
	// failed (decoder only).
	Retries uint64
	// WorkerPanics counts panics recovered from pipeline stages and
	// shard-reader goroutines and surfaced as *PanicError instead of
	// crashing the process.
	WorkerPanics uint64
	// Latency is the per-stripe codec latency histogram (encode or
	// reconstruct time, excluding I/O).
	Latency LatencyHistogram
}

// LatencyHistogram is a fixed power-of-two histogram of per-stripe
// codec latency: 26 finite buckets with inclusive upper bounds
// 2^0..2^25 microseconds plus an overflow bucket.
type LatencyHistogram struct {
	Counts [latencyBuckets]uint64
}

// Total returns the number of observations.
func (h LatencyHistogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Bounds returns the inclusive upper bound of every bucket: 2^i
// microseconds for buckets 0..25, and a sentinel of the maximum
// representable duration for the final overflow bucket. The slice is
// freshly allocated and has latencyBuckets entries, aligned with
// Counts.
func (h LatencyHistogram) Bounds() []time.Duration {
	bounds := make([]time.Duration, latencyBuckets)
	for i := 0; i < latencyBuckets-1; i++ {
		bounds[i] = time.Duration(1<<i) * time.Microsecond
	}
	bounds[latencyBuckets-1] = time.Duration(math.MaxInt64)
	return bounds
}

// Bucket returns the (lo, hi] duration range covered by bucket i:
// observations in bucket i satisfy lo < d <= hi (bucket 0 covers
// [0, 1µs]). The final bucket's hi is the overflow sentinel.
func (h LatencyHistogram) Bucket(i int) (lo, hi time.Duration) {
	if i <= 0 {
		return 0, time.Microsecond
	}
	if i >= latencyBuckets-1 {
		return time.Duration(1<<(latencyBuckets-2)) * time.Microsecond, time.Duration(math.MaxInt64)
	}
	return time.Duration(1<<(i-1)) * time.Microsecond, time.Duration(1<<i) * time.Microsecond
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// observed stripe latency, at bucket resolution. With inclusive upper
// bounds the estimate is tight for observations that sit exactly on a
// bucket boundary. It returns 0 when nothing has been observed.
func (h LatencyHistogram) Quantile(q float64) time.Duration {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if rank < cum {
			_, hi := h.Bucket(i)
			return hi
		}
	}
	_, hi := h.Bucket(latencyBuckets - 1)
	return hi
}
