package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"dialga/internal/gf"
	"dialga/internal/shardio"
)

// statesAttr renders a stripe's per-shard dispositions as a compact
// comma-joined attribute for trace spans, e.g. "ok,ok,slow,ok,open".
func statesAttr(states []shardio.ShardState) string {
	var b strings.Builder
	for i, s := range states {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// Decoder is the inverse pipeline: it reads one block per stripe from
// each of k+m shard readers, verifies each block's checksum trailer
// (under ChecksumCRC32C, the default), reconstructs missing, failed,
// corrupt, or straggling shards (up to m per stripe), and writes the
// recovered data payload to a single writer in stripe order.
//
// Shard reads are scheduled by an internal/shardio.Group: one goroutine
// per shard owns its reader, so a slow shard blocks only itself, and
// transient errors are retried with exponential full-jitter backoff.
//
// Shards degrade at four severities:
//
//   - missing: a nil entry in the reader slice — never read at all.
//   - dead: a reader that failed hard (non-transient error with
//     retries exhausted, or EOF before its peers); retired and treated
//     as missing for that stripe and all later ones.
//   - erased: a block whose checksum trailer does not verify, or that
//     was read across a transient (Transient() bool == true) error
//     with no checksum to clear it; an erasure for that stripe only —
//     the shard stays live and may serve the next stripe.
//   - slow: with Options.HedgeAfter set, a live shard that missed the
//     stripe's adaptive deadline while at least k blocks had arrived.
//     The stripe proceeds to reconstruction immediately (a hedged
//     degraded read) while the slow read continues in the background;
//     whichever finishes first supplies the block. A shard that stays
//     slow trips its circuit breaker and is skipped entirely until a
//     half-open probe readmits it.
//
// Decoding continues as long as at least k usable blocks remain per
// stripe; a stripe below that returns an error wrapping
// ErrTooManyCorrupt rather than ever emitting unverified bytes.
type Decoder struct {
	g     geom
	stats *counters
	jobs  jobPool
	// rd/spare: codecs that rebuild data shards in place accept
	// zero-length-with-capacity output buffers, so reconstruction can
	// draw from a pool instead of allocating per stripe.
	rd    dataReconstructor
	spare *bufPool
}

// NewDecoder validates opts and returns a ready Decoder.
func NewDecoder(opts Options) (*Decoder, error) {
	g, err := opts.geometry()
	if err != nil {
		return nil, err
	}
	d := &Decoder{g: g, stats: newCounters(g.metrics, "decode")}
	if rd, ok := g.codec.(dataReconstructor); ok {
		d.rd = rd
		d.spare = newBufPool(g.shardSize)
	}
	return d, nil
}

// StripeSize returns the data payload per stripe.
func (d *Decoder) StripeSize() int { return d.g.stripeSize }

// ShardSize returns the data bytes per shard per stripe, excluding
// any checksum trailer.
func (d *Decoder) ShardSize() int { return d.g.shardSize }

// BlockSize returns the bytes consumed from each shard reader per
// stripe: ShardSize plus the checksum trailer.
func (d *Decoder) BlockSize() int { return d.g.blockSize }

// Shards returns the total shard count k+m.
func (d *Decoder) Shards() int { return d.g.k + d.g.m }

// Stats returns a snapshot of the pipeline counters.
func (d *Decoder) Stats() Stats { return d.stats.snapshot() }

// transienter matches errors that advertise themselves as momentary —
// fault.ErrInjected, flaky-transport wrappers — via a Transient() bool
// method (the net.Error convention).
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// Decode reconstructs the original stream from k+m shard readers and
// writes it to w. size is the original payload length: output is
// trimmed to exactly size bytes and Decode fails if the shards end
// early. size < 0 means "until EOF": every recovered stripe is written
// in full, including any zero padding the encoder added to the tail.
func (d *Decoder) Decode(ctx context.Context, shards []io.Reader, w io.Writer, size int64) error {
	k, m, blockSize := d.g.k, d.g.m, d.g.blockSize
	if len(shards) != k+m {
		return fmt.Errorf("stream: got %d shard readers, want k+m=%d", len(shards), k+m)
	}
	healthy := 0
	for _, r := range shards {
		if r != nil {
			healthy++
		}
	}
	if healthy < k {
		return fmt.Errorf("stream: only %d shard readers present, need at least k=%d", healthy, k)
	}
	wantStripes := int64(-1)
	if size >= 0 {
		wantStripes = (size + int64(d.g.stripeSize) - 1) / int64(d.g.stripeSize)
	}

	if d.g.closeRead {
		// Closed after grp.Close (LIFO defers): closing a body whose
		// shard goroutine is still blocked in Read unblocks that Read,
		// so abandoned straggler connections are released promptly
		// instead of leaking until the remote end gives up.
		defer func() {
			for _, r := range shards {
				if c, ok := r.(io.Closer); ok {
					c.Close()
				}
			}
		}()
	}
	grp, err := shardio.NewGroup(shards, d.g.straggler)
	if err != nil {
		return err
	}
	defer grp.Close()

	// counted marks shards already charged to ShardFailures: the group
	// re-reports dead and ragged-EOF shards on every later stripe.
	counted := make([]bool, k+m)

	produce := func(ctx context.Context, push func(*job) bool) error {
		for seq := int64(0); wantStripes < 0 || seq < wantStripes; seq++ {
			span := d.g.trace.Begin(seq)
			st, err := grp.Next(ctx)
			if err != nil {
				return nil // only context cancellation; run() reports it
			}
			d.stats.retries.Add(st.Retries)
			d.stats.breakerTrips.Add(st.Trips)
			d.stats.workerPanics.Add(st.Panics)
			d.stats.transientFaults.Add(st.LateTransients)
			if st.Hedged {
				d.stats.hedgedReads.Add(1)
			}

			j := d.jobs.get()
			j.blocks = sliceN(j.blocks, k+m)
			var eofIdx []int
			got, demoted := 0, 0
			var firstErr error
			for i, state := range st.States {
				switch state {
				case shardio.StateOK:
					if t := st.Transients[i]; t > 0 {
						d.stats.transientFaults.Add(t)
						if d.g.trailer == 0 {
							// No checksum to clear bytes read across a
							// fault: demote for this stripe only.
							demoted++
							d.stats.shardsCorrupted.Add(1)
							continue
						}
						// The checksum trailer is the arbiter: the
						// worker verifies this block like any other.
					}
					j.blocks[i] = st.Blocks[i]
					got++
				case shardio.StateEOF:
					// Clean stripe-boundary EOF: end of stream if
					// everyone agrees, a dead shard otherwise.
					if !counted[i] {
						eofIdx = append(eofIdx, i)
					}
				case shardio.StateDead:
					if !counted[i] {
						counted[i] = true
						d.stats.shardFailures.Add(1)
						if firstErr == nil {
							firstErr = fmt.Errorf("stream: shard %d failed at stripe %d: %w", i, seq, st.Errs[i])
						}
					}
				case shardio.StateSlow, shardio.StateOpen, shardio.StateMissing:
					// Slow and breaker-open shards are erasures for this
					// stripe; the worker may still claim a slow shard's
					// late block. Missing shards were never read.
				}
			}
			if span != nil {
				span.Event("read", fmt.Sprintf("got=%d demoted=%d states=%s", got, demoted, statesAttr(st.States)))
				if st.Hedged {
					span.Event("hedge", "deadline missed; reconstructing around stragglers")
				}
				if st.Trips > 0 {
					span.Event("breaker", fmt.Sprintf("trips=%d", st.Trips))
				}
			}
			if got == 0 && demoted == 0 {
				st.Release()
				d.jobs.put(j)
				if wantStripes >= 0 {
					span.Event("error", "shards ended early")
					span.End()
					return fmt.Errorf("stream: shards ended at stripe %d, want %d stripes", seq, wantStripes)
				}
				if firstErr != nil && len(eofIdx) == 0 {
					span.Event("error", "all shards dead")
					span.End()
					return firstErr
				}
				span.Event("eof", "")
				span.End()
				return nil // unanimous EOF
			}
			if got < k && !st.Hedged {
				st.Release()
				d.jobs.put(j)
				span.Event("error", "too many corrupt or missing shard blocks")
				span.End()
				if firstErr != nil {
					return fmt.Errorf("stream: stripe %d: only %d of %d required shard blocks usable (%w): %v", seq, got, k, ErrTooManyCorrupt, firstErr)
				}
				return fmt.Errorf("stream: stripe %d: only %d of %d required shard blocks usable: %w", seq, got, k, ErrTooManyCorrupt)
			}
			// Shards that hit EOF while peers still had data are
			// ragged-short: retire them so they never resync.
			for _, i := range eofIdx {
				counted[i] = true
				d.stats.shardFailures.Add(1)
			}
			d.stats.bytesIn.Add(uint64(got * blockSize))
			j.seq, j.demoted, j.stripe, j.span = seq, demoted, st, span
			if !push(j) {
				return nil
			}
		}
		return nil
	}

	work := d.processStripe

	remaining := size // consumer-goroutine state only; <0 means unbounded
	deliver := func(j *job) error {
		var wrote int64
		for i := 0; i < k; i++ {
			b := j.blocks[i]
			if remaining >= 0 && int64(len(b)) > remaining {
				b = b[:remaining]
			}
			if len(b) == 0 {
				break
			}
			if _, err := w.Write(b); err != nil {
				return fmt.Errorf("stream: write output: %w", err)
			}
			d.stats.bytesOut.Add(uint64(len(b)))
			wrote += int64(len(b))
			if remaining >= 0 {
				remaining -= int64(len(b))
			}
		}
		d.stats.stripes.Add(1)
		if j.span != nil {
			j.span.Event("emit", fmt.Sprintf("bytes=%d", wrote))
		}
		return nil
	}

	release := func(j *job) {
		if d.spare != nil {
			for _, i := range j.eras {
				d.spare.put(j.blocks[i])
			}
		}
		if j.stripe != nil {
			j.stripe.Release()
		}
		j.span.End()
		d.jobs.put(j)
	}

	return run(ctx, d.g, d.stats, produce, work, deliver, release)
}

// processStripe is the worker body for one gathered stripe: resolve
// the hedge race for slow shards, verify checksum trailers, and
// reconstruct missing data shards. With a data-reconstructing codec it
// runs allocation-free against warmed pools — erasure outputs come
// from the decoder's spare-buffer pool as zero-length-with-capacity
// slices the codec fills in place.
func (d *Decoder) processStripe(j *job) error {
	k, m := d.g.k, d.g.m
	shardSize, blockSize := d.g.shardSize, d.g.blockSize
	st := j.stripe
	demoted := j.demoted
	// Resolve the hedge race for slow shards: claim the block if
	// the direct read beat us here (TakeLate is the commit point),
	// but only under a checksum, which can vouch for bytes that
	// arrived out from under the gather loop. Without a trailer,
	// reconstruction always wins.
	hedgeLost := 0 // slow shards whose direct read won after all
	if d.g.trailer > 0 {
		for i, state := range st.States {
			if state != shardio.StateSlow {
				continue
			}
			if late := st.TakeLate(i); late != nil {
				want := binary.LittleEndian.Uint32(late[shardSize:blockSize])
				if gf.CRC32C(late[:shardSize]) == want {
					j.blocks[i] = late
					hedgeLost++
				}
			}
		}
	}
	if d.g.trailer > 0 {
		// Verify every block that was read; a bad trailer demotes
		// the block to an erasure for this stripe only.
		for i, state := range st.States {
			if j.blocks[i] == nil || state == shardio.StateSlow {
				continue // slow claims were verified above
			}
			bl := j.blocks[i]
			want := binary.LittleEndian.Uint32(bl[shardSize:blockSize])
			if gf.CRC32C(bl[:shardSize]) != want {
				j.blocks[i] = nil
				demoted++
				d.stats.shardsCorrupted.Add(1)
			}
		}
		if j.span != nil {
			j.span.Event("verify", fmt.Sprintf("corrupt=%d late_claimed=%d", demoted-j.demoted, hedgeLost))
		}
	}
	// Truncate the surviving full blocks to their data payload for
	// the codec.
	valid := 0
	for i := range j.blocks {
		if j.blocks[i] != nil {
			j.blocks[i] = j.blocks[i][:shardSize:shardSize]
			valid++
		}
	}
	if valid < k {
		return fmt.Errorf("stream: stripe %d: %d corrupt or missing shard blocks leave %d of %d required: %w",
			j.seq, (k+m)-valid, valid, k, ErrTooManyCorrupt)
	}
	missing := false
	for i := 0; i < k; i++ {
		if j.blocks[i] == nil {
			missing = true
			break
		}
	}
	if missing {
		start := time.Now()
		var err error
		if d.rd != nil {
			// Hand every absent data entry a pooled spare as its
			// output buffer; release returns them after delivery.
			for i := 0; i < k; i++ {
				if j.blocks[i] == nil {
					j.blocks[i] = d.spare.get()[:0]
					j.eras = append(j.eras, i)
				}
			}
			err = d.rd.ReconstructData(j.blocks)
		} else {
			err = d.g.codec.Reconstruct(j.blocks)
		}
		if err != nil {
			return fmt.Errorf("stream: reconstruct stripe %d: %w", j.seq, err)
		}
		d.stats.reconstructed.Add(1)
		d.stats.observe(time.Since(start))
		j.span.Event("reconstruct", "")
	}
	if st.Hedged {
		slow := 0
		for _, state := range st.States {
			if state == shardio.StateSlow {
				slow++
			}
		}
		if slow > hedgeLost {
			// At least one straggler's block never made it in time:
			// reconstruction beat the direct read.
			d.stats.hedgeWins.Add(1)
			j.span.Event("hedge_win", "reconstruction beat the straggler")
		}
	}
	if demoted > 0 {
		// The stripe decoded despite corrupt blocks: either a
		// data block was rebuilt through the erasure path, or the
		// corruption was confined to parity we did not need.
		d.stats.stripesHealed.Add(1)
		if j.span != nil {
			j.span.Event("heal", fmt.Sprintf("demoted=%d", demoted))
		}
	}
	return nil
}
