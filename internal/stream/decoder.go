package stream

import (
	"context"
	"fmt"
	"io"
	"time"
)

// Decoder is the inverse pipeline: it reads one shardSize block per
// stripe from each of k+m shard readers, reconstructs missing or
// failed shards (up to m per stripe), and writes the recovered data
// payload to a single writer in stripe order.
//
// A nil entry in the reader slice is a shard known to be missing. A
// reader that fails mid-stream — an error, or EOF before its peers —
// is marked dead and treated as missing for that stripe and all later
// ones; decoding continues as long as at least k healthy shards
// remain.
type Decoder struct {
	g     geom
	stats counters
	buf   *bufPool
}

// NewDecoder validates opts and returns a ready Decoder.
func NewDecoder(opts Options) (*Decoder, error) {
	g, err := opts.geometry()
	if err != nil {
		return nil, err
	}
	return &Decoder{
		g:   g,
		buf: newBufPool((g.k + g.m) * g.shardSize),
	}, nil
}

// StripeSize returns the data payload per stripe.
func (d *Decoder) StripeSize() int { return d.g.stripeSize }

// ShardSize returns the per-shard byte count of every stripe.
func (d *Decoder) ShardSize() int { return d.g.shardSize }

// Shards returns the total shard count k+m.
func (d *Decoder) Shards() int { return d.g.k + d.g.m }

// Stats returns a snapshot of the pipeline counters.
func (d *Decoder) Stats() Stats { return d.stats.snapshot() }

// Decode reconstructs the original stream from k+m shard readers and
// writes it to w. size is the original payload length: output is
// trimmed to exactly size bytes and Decode fails if the shards end
// early. size < 0 means "until EOF": every recovered stripe is written
// in full, including any zero padding the encoder added to the tail.
func (d *Decoder) Decode(ctx context.Context, shards []io.Reader, w io.Writer, size int64) error {
	k, m, shardSize := d.g.k, d.g.m, d.g.shardSize
	if len(shards) != k+m {
		return fmt.Errorf("stream: got %d shard readers, want k+m=%d", len(shards), k+m)
	}
	healthy := 0
	for _, r := range shards {
		if r != nil {
			healthy++
		}
	}
	if healthy < k {
		return fmt.Errorf("stream: only %d shard readers present, need at least k=%d", healthy, k)
	}
	wantStripes := int64(-1)
	if size >= 0 {
		wantStripes = (size + int64(d.g.stripeSize) - 1) / int64(d.g.stripeSize)
	}

	dead := make([]bool, k+m) // producer-goroutine state only

	produce := func(ctx context.Context, push func(*job) bool) error {
		for seq := int64(0); wantStripes < 0 || seq < wantStripes; seq++ {
			if ctx.Err() != nil {
				return nil
			}
			buf := d.buf.get()
			blocks := make([][]byte, k+m)
			var eofIdx []int
			got := 0
			var firstErr error
			for i, r := range shards {
				if r == nil || dead[i] {
					continue
				}
				bl := buf[i*shardSize : (i+1)*shardSize]
				n, err := io.ReadFull(r, bl)
				switch {
				case err == nil:
					blocks[i] = bl
					got++
				case err == io.EOF && n == 0:
					// Clean stripe-boundary EOF: end of stream if
					// everyone agrees, a dead shard otherwise.
					eofIdx = append(eofIdx, i)
				default:
					dead[i] = true
					d.stats.shardFailures.Add(1)
					if firstErr == nil {
						firstErr = fmt.Errorf("stream: shard %d failed at stripe %d: %w", i, seq, err)
					}
				}
			}
			if got == 0 {
				d.buf.put(buf)
				if wantStripes >= 0 {
					return fmt.Errorf("stream: shards ended at stripe %d, want %d stripes", seq, wantStripes)
				}
				if firstErr != nil && len(eofIdx) == 0 {
					return firstErr
				}
				return nil // unanimous EOF
			}
			if got < k {
				d.buf.put(buf)
				if firstErr != nil {
					return fmt.Errorf("stream: stripe %d: only %d of %d required shards readable: %w", seq, got, k, firstErr)
				}
				return fmt.Errorf("stream: stripe %d: only %d of %d required shards readable", seq, got, k)
			}
			// Shards that hit EOF while peers still had data are
			// ragged-short: retire them so they never resync.
			for _, i := range eofIdx {
				dead[i] = true
				d.stats.shardFailures.Add(1)
			}
			d.stats.bytesIn.Add(uint64(got * shardSize))
			j := &job{seq: seq, ready: make(chan struct{}), buf: buf, blocks: blocks}
			if !push(j) {
				return nil
			}
		}
		return nil
	}

	work := func(j *job) error {
		missing := false
		for i := 0; i < k; i++ {
			if j.blocks[i] == nil {
				missing = true
				break
			}
		}
		if !missing {
			return nil
		}
		start := time.Now()
		var err error
		if rd, ok := d.g.codec.(dataReconstructor); ok {
			err = rd.ReconstructData(j.blocks)
		} else {
			err = d.g.codec.Reconstruct(j.blocks)
		}
		if err != nil {
			return fmt.Errorf("stream: reconstruct stripe %d: %w", j.seq, err)
		}
		d.stats.reconstructed.Add(1)
		d.stats.observe(time.Since(start))
		return nil
	}

	remaining := size // consumer-goroutine state only; <0 means unbounded
	deliver := func(j *job) error {
		for i := 0; i < k; i++ {
			b := j.blocks[i]
			if remaining >= 0 && int64(len(b)) > remaining {
				b = b[:remaining]
			}
			if len(b) == 0 {
				break
			}
			if _, err := w.Write(b); err != nil {
				return fmt.Errorf("stream: write output: %w", err)
			}
			d.stats.bytesOut.Add(uint64(len(b)))
			if remaining >= 0 {
				remaining -= int64(len(b))
			}
		}
		d.stats.stripes.Add(1)
		return nil
	}

	release := func(j *job) {
		if j.buf != nil {
			d.buf.put(j.buf)
		}
	}

	return run(ctx, d.g, produce, work, deliver, release)
}
