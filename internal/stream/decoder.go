package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Decoder is the inverse pipeline: it reads one block per stripe from
// each of k+m shard readers, verifies each block's checksum trailer
// (under ChecksumCRC32C, the default), reconstructs missing, failed,
// or corrupt shards (up to m per stripe), and writes the recovered
// data payload to a single writer in stripe order.
//
// Shards degrade at three severities:
//
//   - A nil entry in the reader slice is a shard known to be missing.
//   - A reader that fails hard — a non-transient error, or EOF before
//     its peers — is retired and treated as missing for that stripe
//     and all later ones.
//   - A block whose checksum trailer does not verify, or that was
//     read across a transient (Transient() bool == true) error with
//     no checksum to clear it, is demoted to an erasure for that
//     stripe only; the shard stays live and may serve the next
//     stripe.
//
// Decoding continues as long as at least k usable blocks remain per
// stripe; a stripe below that returns an error wrapping
// ErrTooManyCorrupt rather than ever emitting unverified bytes.
type Decoder struct {
	g     geom
	stats counters
	buf   *bufPool
}

// NewDecoder validates opts and returns a ready Decoder.
func NewDecoder(opts Options) (*Decoder, error) {
	g, err := opts.geometry()
	if err != nil {
		return nil, err
	}
	return &Decoder{
		g:   g,
		buf: newBufPool((g.k + g.m) * g.blockSize),
	}, nil
}

// StripeSize returns the data payload per stripe.
func (d *Decoder) StripeSize() int { return d.g.stripeSize }

// ShardSize returns the data bytes per shard per stripe, excluding
// any checksum trailer.
func (d *Decoder) ShardSize() int { return d.g.shardSize }

// BlockSize returns the bytes consumed from each shard reader per
// stripe: ShardSize plus the checksum trailer.
func (d *Decoder) BlockSize() int { return d.g.blockSize }

// Shards returns the total shard count k+m.
func (d *Decoder) Shards() int { return d.g.k + d.g.m }

// Stats returns a snapshot of the pipeline counters.
func (d *Decoder) Stats() Stats { return d.stats.snapshot() }

// transienter matches errors that advertise themselves as momentary —
// fault.ErrInjected, flaky-transport wrappers — via a Transient() bool
// method (the net.Error convention).
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// Decode reconstructs the original stream from k+m shard readers and
// writes it to w. size is the original payload length: output is
// trimmed to exactly size bytes and Decode fails if the shards end
// early. size < 0 means "until EOF": every recovered stripe is written
// in full, including any zero padding the encoder added to the tail.
func (d *Decoder) Decode(ctx context.Context, shards []io.Reader, w io.Writer, size int64) error {
	k, m, blockSize := d.g.k, d.g.m, d.g.blockSize
	shardSize := d.g.shardSize
	if len(shards) != k+m {
		return fmt.Errorf("stream: got %d shard readers, want k+m=%d", len(shards), k+m)
	}
	healthy := 0
	for _, r := range shards {
		if r != nil {
			healthy++
		}
	}
	if healthy < k {
		return fmt.Errorf("stream: only %d shard readers present, need at least k=%d", healthy, k)
	}
	wantStripes := int64(-1)
	if size >= 0 {
		wantStripes = (size + int64(d.g.stripeSize) - 1) / int64(d.g.stripeSize)
	}

	dead := make([]bool, k+m) // producer-goroutine state only

	produce := func(ctx context.Context, push func(*job) bool) error {
		for seq := int64(0); wantStripes < 0 || seq < wantStripes; seq++ {
			if ctx.Err() != nil {
				return nil
			}
			buf := d.buf.get()
			blocks := make([][]byte, k+m)
			var eofIdx []int
			got, demoted := 0, 0
			var firstErr error
			for i, r := range shards {
				if r == nil || dead[i] {
					continue
				}
				bl := buf[i*blockSize : (i+1)*blockSize]
				n, err := io.ReadFull(r, bl)
				switch {
				case err == nil:
					blocks[i] = bl[:shardSize:shardSize]
					got++
				case err == io.EOF && n == 0:
					// Clean stripe-boundary EOF: end of stream if
					// everyone agrees, a dead shard otherwise.
					eofIdx = append(eofIdx, i)
				case isTransient(err):
					// A flaky reader, not a dead one. Finish the
					// block so the shard stays stripe-aligned, then
					// decide how much of it to trust.
					if _, err2 := io.ReadFull(r, bl[n:]); err2 == nil {
						d.stats.transientFaults.Add(1)
						if d.g.trailer > 0 {
							// The checksum trailer is the arbiter:
							// the worker verifies this block like any
							// other.
							blocks[i] = bl[:shardSize:shardSize]
							got++
						} else {
							// No checksum to clear bytes read across
							// a fault: demote for this stripe only.
							demoted++
							d.stats.shardsCorrupted.Add(1)
						}
					} else {
						dead[i] = true
						d.stats.shardFailures.Add(1)
						if firstErr == nil {
							firstErr = fmt.Errorf("stream: shard %d failed at stripe %d: %w", i, seq, err2)
						}
					}
				default:
					dead[i] = true
					d.stats.shardFailures.Add(1)
					if firstErr == nil {
						firstErr = fmt.Errorf("stream: shard %d failed at stripe %d: %w", i, seq, err)
					}
				}
			}
			if got == 0 && demoted == 0 {
				d.buf.put(buf)
				if wantStripes >= 0 {
					return fmt.Errorf("stream: shards ended at stripe %d, want %d stripes", seq, wantStripes)
				}
				if firstErr != nil && len(eofIdx) == 0 {
					return firstErr
				}
				return nil // unanimous EOF
			}
			if got < k {
				d.buf.put(buf)
				if firstErr != nil {
					return fmt.Errorf("stream: stripe %d: only %d of %d required shard blocks usable (%w): %v", seq, got, k, ErrTooManyCorrupt, firstErr)
				}
				return fmt.Errorf("stream: stripe %d: only %d of %d required shard blocks usable: %w", seq, got, k, ErrTooManyCorrupt)
			}
			// Shards that hit EOF while peers still had data are
			// ragged-short: retire them so they never resync.
			for _, i := range eofIdx {
				dead[i] = true
				d.stats.shardFailures.Add(1)
			}
			d.stats.bytesIn.Add(uint64(got * blockSize))
			j := &job{seq: seq, ready: make(chan struct{}), buf: buf, blocks: blocks, demoted: demoted}
			if !push(j) {
				return nil
			}
		}
		return nil
	}

	work := func(j *job) error {
		demoted := j.demoted
		if d.g.trailer > 0 {
			// Verify every block that was read; a bad trailer demotes
			// the block to an erasure for this stripe only.
			for i := 0; i < k+m; i++ {
				if j.blocks[i] == nil {
					continue
				}
				bl := j.buf[i*blockSize : (i+1)*blockSize]
				want := binary.LittleEndian.Uint32(bl[shardSize:])
				if crc32.Checksum(bl[:shardSize], castagnoli) != want {
					j.blocks[i] = nil
					demoted++
					d.stats.shardsCorrupted.Add(1)
				}
			}
		}
		valid := 0
		for i := 0; i < k+m; i++ {
			if j.blocks[i] != nil {
				valid++
			}
		}
		if valid < k {
			return fmt.Errorf("stream: stripe %d: %d corrupt or missing shard blocks leave %d of %d required: %w",
				j.seq, (k+m)-valid, valid, k, ErrTooManyCorrupt)
		}
		missing := false
		for i := 0; i < k; i++ {
			if j.blocks[i] == nil {
				missing = true
				break
			}
		}
		if missing {
			start := time.Now()
			var err error
			if rd, ok := d.g.codec.(dataReconstructor); ok {
				err = rd.ReconstructData(j.blocks)
			} else {
				err = d.g.codec.Reconstruct(j.blocks)
			}
			if err != nil {
				return fmt.Errorf("stream: reconstruct stripe %d: %w", j.seq, err)
			}
			d.stats.reconstructed.Add(1)
			d.stats.observe(time.Since(start))
		}
		if demoted > 0 {
			// The stripe decoded despite corrupt blocks: either a
			// data block was rebuilt through the erasure path, or the
			// corruption was confined to parity we did not need.
			d.stats.stripesHealed.Add(1)
		}
		return nil
	}

	remaining := size // consumer-goroutine state only; <0 means unbounded
	deliver := func(j *job) error {
		for i := 0; i < k; i++ {
			b := j.blocks[i]
			if remaining >= 0 && int64(len(b)) > remaining {
				b = b[:remaining]
			}
			if len(b) == 0 {
				break
			}
			if _, err := w.Write(b); err != nil {
				return fmt.Errorf("stream: write output: %w", err)
			}
			d.stats.bytesOut.Add(uint64(len(b)))
			if remaining >= 0 {
				remaining -= int64(len(b))
			}
		}
		d.stats.stripes.Add(1)
		return nil
	}

	release := func(j *job) {
		if j.buf != nil {
			d.buf.put(j.buf)
		}
	}

	return run(ctx, d.g, produce, work, deliver, release)
}
