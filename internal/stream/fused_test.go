package stream

import (
	"bytes"
	"testing"

	"dialga/internal/shardio"
)

// TestFusedTrailersByteIdentical pins the core fused-path contract:
// the single-pass encode+CRC sweep must emit exactly the shard bytes
// — payload and trailers — the two-pass path emits, for full stripes,
// a padded ragged tail, and both checksum settings.
func TestFusedTrailersByteIdentical(t *testing.T) {
	const k, m, stripe = 10, 4, 40 << 10
	code := mustRS(t, k, m)
	for _, tc := range []struct {
		name string
		size int
		sum  Checksum
	}{
		{"crc multi-stripe", 3*stripe + 12345, ChecksumCRC32C},
		{"crc single short stripe", 777, ChecksumCRC32C},
		{"crc exact stripes", 2 * stripe, ChecksumCRC32C},
		{"no checksum", 2*stripe + 9, ChecksumNone},
	} {
		t.Run(tc.name, func(t *testing.T) {
			payload := randBytes(t, tc.size, int64(tc.size))
			base := Options{Codec: code, StripeSize: stripe, Checksum: tc.sum}

			fusedOpts := base
			fused := encodeAll(t, fusedOpts, payload)

			plainOpts := base
			plainOpts.DisableFused = true
			plain := encodeAll(t, plainOpts, payload)

			for i := range fused {
				if !bytes.Equal(fused[i], plain[i]) {
					t.Fatalf("shard %d: fused output differs from two-pass output", i)
				}
			}

			enc, err := NewEncoder(fusedOpts)
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.sum == ChecksumCRC32C; enc.Fused() != want {
				t.Fatalf("Fused() = %v, want %v (checksum %v)", enc.Fused(), want, tc.sum)
			}
			encPlain, err := NewEncoder(plainOpts)
			if err != nil {
				t.Fatal(err)
			}
			if encPlain.Fused() {
				t.Fatal("DisableFused encoder still reports the fused path")
			}
		})
	}
}

// TestFusedRoundTrip: shards written by the fused encoder decode (and
// self-heal a corrupt block) exactly like two-pass shards.
func TestFusedRoundTrip(t *testing.T) {
	const k, m, stripe = 6, 3, 12 << 10
	code := mustRS(t, k, m)
	payload := randBytes(t, 2*stripe+4321, 77)
	opts := Options{Codec: code, StripeSize: stripe}
	shards := encodeAll(t, opts, payload)

	shards[3][100] ^= 0xff // corrupt a data block: trailer must catch it
	got := decodeAll(t, opts, shards, int64(len(payload)))
	if !bytes.Equal(got, payload) {
		t.Fatal("fused-encoded shards did not decode back to the payload")
	}
}

// TestEncodeStripeAllocs: the encoder worker body — fused or two-pass
// — must not allocate once pools are warm.
func TestEncodeStripeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const k, m, stripe = 10, 4, 64 << 10
	code := mustRS(t, k, m)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"fused", false}, {"two-pass", true}} {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := NewEncoder(Options{Codec: code, StripeSize: stripe, DisableFused: tc.disable})
			if err != nil {
				t.Fatal(err)
			}
			j := enc.jobs.get()
			j.data = enc.data.get()
			copy(j.data, randBytes(t, enc.g.stripeSize, 5))
			j.n = enc.g.stripeSize
			reset := func() {
				if j.parity != nil {
					enc.parity.put(j.parity)
					j.parity = nil
				}
				if j.crc != nil {
					enc.crc.put(j.crc)
					j.crc = nil
				}
			}
			if err := enc.encodeStripe(j); err != nil { // warm codec plan + pools
				t.Fatal(err)
			}
			if a := testing.AllocsPerRun(20, func() {
				reset()
				if err := enc.encodeStripe(j); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Errorf("encodeStripe allocates %.1f per stripe, want 0", a)
			}
		})
	}
}

// TestProcessStripeAllocs: the decoder worker body must not allocate
// in steady state — neither for a healthy stripe nor for a hedged one
// that reconstructs a missing data shard through the spare-buffer
// pool.
func TestProcessStripeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const k, m, stripe = 10, 4, 64 << 10
	code := mustRS(t, k, m)
	enc, err := NewEncoder(Options{Codec: code, StripeSize: stripe})
	if err != nil {
		t.Fatal(err)
	}
	payload := randBytes(t, stripe, 11)
	shards := encodeAll(t, Options{Codec: code, StripeSize: stripe}, payload)

	dec, err := NewDecoder(Options{Codec: code, StripeSize: stripe})
	if err != nil {
		t.Fatal(err)
	}
	blockSize := enc.BlockSize()
	// Build the stripe/job the gather loop would hand the worker. A
	// zero-value shardio.Stripe backs it: TakeLate and Release are
	// no-ops, which is exactly the "no late block arrived" case.
	st := &shardio.Stripe{
		States:     make([]shardio.ShardState, k+m),
		Transients: make([]uint64, k+m),
	}
	slowShard := 2 // hedged straggler: nil block, reconstructed around
	prep := func(j *job) {
		j.blocks = sliceN(j.blocks, k+m)
		for i := range j.blocks {
			if i == slowShard {
				st.States[i] = shardio.StateSlow
				continue
			}
			st.States[i] = shardio.StateOK
			j.blocks[i] = shards[i][:blockSize]
		}
		j.stripe = st
		j.demoted = 0
	}
	j := dec.jobs.get()
	prep(j)
	if err := dec.processStripe(j); err != nil { // warm decode-plan cache + spares
		t.Fatal(err)
	}
	for _, i := range j.eras {
		dec.spare.put(j.blocks[i])
	}
	j.eras = j.eras[:0]
	if a := testing.AllocsPerRun(20, func() {
		prep(j)
		if err := dec.processStripe(j); err != nil {
			t.Fatal(err)
		}
		for _, i := range j.eras {
			dec.spare.put(j.blocks[i])
		}
		j.eras = j.eras[:0]
	}); a != 0 {
		t.Errorf("hedged processStripe allocates %.1f per stripe, want 0", a)
	}
	if !bytes.Equal(j.blocks[slowShard], payload[slowShard*enc.ShardSize():(slowShard+1)*enc.ShardSize()]) {
		t.Fatal("reconstructed block has wrong bytes")
	}

	// Healthy stripe: all blocks present, verify-only.
	healthy := dec.jobs.get()
	prepAll := func(j *job) {
		j.blocks = sliceN(j.blocks, k+m)
		for i := range j.blocks {
			st.States[i] = shardio.StateOK
			j.blocks[i] = shards[i][:blockSize]
		}
		j.stripe = st
		j.demoted = 0
	}
	prepAll(healthy)
	if err := dec.processStripe(healthy); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(20, func() {
		prepAll(healthy)
		if err := dec.processStripe(healthy); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("healthy processStripe allocates %.1f per stripe, want 0", a)
	}
}
