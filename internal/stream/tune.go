package stream

import "sync"

// workerGate throttles how many of the pipeline's worker goroutines
// may pick up stripes. The goroutines themselves live for the whole
// run — spawning and reaping OS-thread-backed goroutines per knob move
// would cost more than it saves — so the knob instead gates admission:
// worker i may take a job only while i < limit. Worker 0 is therefore
// always eligible, which is the liveness floor (the limit clamps to at
// least 1). Parked workers hold no job, so a shrunken limit never
// strands a stripe; it only idles spare goroutines.
type workerGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	limit   int // workers with index < limit may take jobs
	ceiling int // static Options.Workers
	closed  bool
}

func newWorkerGate(ceiling int) *workerGate {
	g := &workerGate{limit: ceiling, ceiling: ceiling}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter blocks worker i until it is eligible (i < limit) or the gate
// is closed for shutdown.
func (g *workerGate) enter(i int) {
	g.mu.Lock()
	for i >= g.limit && !g.closed {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// setLimit clamps n to [1, ceiling]; n < 1 leaves the limit unchanged
// (the Tuning zero value means "don't move this knob").
func (g *workerGate) setLimit(n int) {
	if n < 1 {
		return
	}
	if n > g.ceiling {
		n = g.ceiling
	}
	g.mu.Lock()
	if n != g.limit {
		g.limit = n
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// close releases every parked worker so they can observe the closed
// work channel and exit; called before workers.Wait().
func (g *workerGate) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// windowGate bounds in-flight stripes below the static channel-buffer
// ceiling. The producer acquires one slot per submitted job; the slot
// is returned when the job is released. Shrinking the limit below the
// current in-flight count stalls new submissions until enough stripes
// drain — it never cancels work already admitted.
type windowGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	limit    int
	ceiling  int // static Options.Window
	inflight int
}

func newWindowGate(ceiling int) *windowGate {
	g := &windowGate{limit: ceiling, ceiling: ceiling}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until an in-flight slot is free. It needs no
// cancellation path: blocking implies inflight >= limit >= 1, and every
// admitted job is eventually released by the consumer — including on
// pipeline failure, which drains rather than abandons the window.
func (g *windowGate) acquire() {
	g.mu.Lock()
	for g.inflight >= g.limit {
		g.cond.Wait()
	}
	g.inflight++
	g.mu.Unlock()
}

func (g *windowGate) release() {
	g.mu.Lock()
	g.inflight--
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *windowGate) setLimit(n int) {
	if n < 1 {
		return
	}
	if n > g.ceiling {
		n = g.ceiling
	}
	g.mu.Lock()
	if n != g.limit {
		g.limit = n
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}
