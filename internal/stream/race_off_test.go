//go:build !race

package stream

// raceEnabled reports whether the race detector is active; race-only
// tests (concurrent Stats polling during a healing decode) scale
// their workload down under instrumentation.
const raceEnabled = false
