package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/obs"
)

// TestStatsConcurrentWithHealingDecode hammers Stats() from several
// goroutines while a decode is actively demoting and healing corrupt
// blocks. Run under -race this proves the counter snapshot path is
// safe against the producer/worker goroutines; in any mode it checks
// that observed counters are monotonic and land on the exact totals.
func TestStatsConcurrentWithHealingDecode(t *testing.T) {
	stripes := 400
	if raceEnabled {
		stripes = 120 // instrumentation makes each stripe pricier
	}
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 4 * 64, Workers: 4, Checksum: ChecksumCRC32C}
	payload := randBytes(t, stripes*4*64, 99)
	shards := encodeAll(t, opts, payload)

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	blockSize := dec.BlockSize()
	// Corrupt one block of shard 1 in every stripe: every stripe heals.
	var plan fault.Plan
	for s := 0; s < stripes; s++ {
		plan.Ops = append(plan.Ops, fault.Op{Kind: fault.BitFlip, Off: int64(s * blockSize), Bit: 3})
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	readers[1] = fault.NewReader(bytes.NewReader(shards[1]), plan)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Stats
			for {
				st := dec.Stats()
				if st.ShardsCorrupted < last.ShardsCorrupted ||
					st.StripesHealed < last.StripesHealed ||
					st.Stripes < last.Stripes ||
					st.BytesOut < last.BytesOut {
					t.Error("Stats went backwards during decode")
					return
				}
				last = st
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	var out bytes.Buffer
	err = dec.Decode(context.Background(), readers, &out, int64(len(payload)))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("healing decode under concurrent Stats() corrupted the payload")
	}
	st := dec.Stats()
	if st.ShardsCorrupted != uint64(stripes) || st.StripesHealed != uint64(stripes) {
		t.Fatalf("healed %d blocks / %d stripes, want %d / %d",
			st.ShardsCorrupted, st.StripesHealed, stripes, stripes)
	}
}

// TestLatencyBucketEdges pins the histogram's bucket boundaries:
// inclusive upper bounds, so an exact power-of-two latency lands with
// its peers at the top of its bucket rather than at the bottom of the
// next one (the bits.Len64-based histogram got this edge wrong).
func TestLatencyBucketEdges(t *testing.T) {
	us := time.Microsecond
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{us, 0},                   // exactly 2^0µs: top of bucket 0
		{us + time.Nanosecond, 1}, // just past the bound
		{2 * us, 1},               // exactly 2^1µs: top of bucket 1
		{2*us + time.Nanosecond, 2},
		{(1<<10 - 1) * us, 10}, // 2^10-1 inside (2^9, 2^10]
		{(1 << 10) * us, 10},   // exactly 2^10µs
		{(1<<10 + 1) * us, 11},
		{(1 << 25) * us, 25},   // top finite bound
		{(1<<25 + 1) * us, 26}, // first overflow value
		{10 * time.Hour, 26},   // deep overflow
	}
	for _, tc := range cases {
		c := newCounters(nil, "edges")
		c.observe(tc.d)
		h := c.snapshot().Latency
		for i, n := range h.Counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("observe(%v): bucket %d count = %d, want %d", tc.d, i, n, want)
			}
		}
	}
}

// TestLatencyHistogramBounds checks Bounds() alignment with Counts:
// 27 entries, powers of two up to 2^25µs, and an overflow sentinel.
func TestLatencyHistogramBounds(t *testing.T) {
	var h LatencyHistogram
	bounds := h.Bounds()
	if len(bounds) != latencyBuckets {
		t.Fatalf("len(Bounds()) = %d, want %d", len(bounds), latencyBuckets)
	}
	for i := 0; i < latencyBuckets-1; i++ {
		if want := time.Duration(1<<i) * time.Microsecond; bounds[i] != want {
			t.Fatalf("Bounds()[%d] = %v, want %v", i, bounds[i], want)
		}
	}
	if bounds[latencyBuckets-1] != time.Duration(math.MaxInt64) {
		t.Fatalf("overflow bound = %v, want max duration", bounds[latencyBuckets-1])
	}
	for i := range bounds {
		if _, hi := h.Bucket(i); hi != bounds[i] {
			t.Fatalf("Bucket(%d) hi = %v, but Bounds()[%d] = %v", i, hi, i, bounds[i])
		}
	}
}

// TestStatsAndExposeConcurrentWithDecode hammers both snapshot paths —
// Stats() and the registry's Prometheus exposition — from separate
// goroutines while a traced, hedge-capable decode mutates every series
// underneath them. Run under -race (see race_on_test.go) this is the
// registry-vs-pipeline race test; in any mode it checks the exposition
// stays parseable and the final counters land exactly.
func TestStatsAndExposeConcurrentWithDecode(t *testing.T) {
	stripes := 300
	if raceEnabled {
		stripes = 100
	}
	code := mustRS(t, 4, 2)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	opts := Options{
		Codec: code, StripeSize: 4 * 64, Workers: 4,
		Checksum: ChecksumCRC32C, Metrics: reg, Trace: tr,
	}
	payload := randBytes(t, stripes*4*64, 7)
	shards := encodeAll(t, Options{Codec: code, StripeSize: 4 * 64, Workers: 4, Checksum: ChecksumCRC32C}, payload)

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	readers[2] = nil // reconstruction keeps the decode-side series moving

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_ = dec.Stats()
				var buf bytes.Buffer
				if err := reg.Expose(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = tr.Snapshot()
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	var out bytes.Buffer
	err = dec.Decode(context.Background(), readers, &out, int64(len(payload)))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("decode under concurrent exposition corrupted the payload")
	}
	st := dec.Stats()
	if st.Stripes != uint64(stripes) {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}
	var text bytes.Buffer
	if err := reg.Expose(&text); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("stream_stripes_total{pipeline=%q} %d", "decode", stripes)
	if !strings.Contains(text.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, text.String())
	}
}
