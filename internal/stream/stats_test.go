package stream

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"

	"dialga/internal/fault"
)

// TestStatsConcurrentWithHealingDecode hammers Stats() from several
// goroutines while a decode is actively demoting and healing corrupt
// blocks. Run under -race this proves the counter snapshot path is
// safe against the producer/worker goroutines; in any mode it checks
// that observed counters are monotonic and land on the exact totals.
func TestStatsConcurrentWithHealingDecode(t *testing.T) {
	stripes := 400
	if raceEnabled {
		stripes = 120 // instrumentation makes each stripe pricier
	}
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 4 * 64, Workers: 4, Checksum: ChecksumCRC32C}
	payload := randBytes(t, stripes*4*64, 99)
	shards := encodeAll(t, opts, payload)

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	blockSize := dec.BlockSize()
	// Corrupt one block of shard 1 in every stripe: every stripe heals.
	var plan fault.Plan
	for s := 0; s < stripes; s++ {
		plan.Ops = append(plan.Ops, fault.Op{Kind: fault.BitFlip, Off: int64(s * blockSize), Bit: 3})
	}
	readers := make([]io.Reader, len(shards))
	for i, s := range shards {
		readers[i] = bytes.NewReader(s)
	}
	readers[1] = fault.NewReader(bytes.NewReader(shards[1]), plan)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last Stats
			for {
				st := dec.Stats()
				if st.ShardsCorrupted < last.ShardsCorrupted ||
					st.StripesHealed < last.StripesHealed ||
					st.Stripes < last.Stripes ||
					st.BytesOut < last.BytesOut {
					t.Error("Stats went backwards during decode")
					return
				}
				last = st
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	var out bytes.Buffer
	err = dec.Decode(context.Background(), readers, &out, int64(len(payload)))
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("healing decode under concurrent Stats() corrupted the payload")
	}
	st := dec.Stats()
	if st.ShardsCorrupted != uint64(stripes) || st.StripesHealed != uint64(stripes) {
		t.Fatalf("healed %d blocks / %d stripes, want %d / %d",
			st.ShardsCorrupted, st.StripesHealed, stripes, stripes)
	}
}
