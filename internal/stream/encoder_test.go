package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"dialga/internal/rs"
)

func randBytes(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func mustRS(t testing.TB, k, m int) *rs.Code {
	t.Helper()
	c, err := rs.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encodeAll runs the streaming encoder over payload and returns the
// k+m shard byte streams.
func encodeAll(t testing.TB, opts Options, payload []byte) [][]byte {
	t.Helper()
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]bytes.Buffer, enc.Shards())
	writers := make([]io.Writer, enc.Shards())
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(bufs))
	for i := range bufs {
		out[i] = append([]byte{}, bufs[i].Bytes()...) // non-nil even when empty
	}
	return out
}

// referenceEncode produces the expected shard streams with the
// single-threaded whole-buffer kernel, stripe by stripe. It uses
// rs.SplitCopy so the reference path never aliases (and never
// mutates) the payload under test.
func referenceEncode(t testing.TB, code *rs.Code, stripeSize int, payload []byte) [][]byte {
	t.Helper()
	k, m := code.K(), code.M()
	out := make([][]byte, k+m)
	for off := 0; off < len(payload); off += stripeSize {
		end := off + stripeSize
		if end > len(payload) {
			end = len(payload)
		}
		stripe := make([]byte, stripeSize)
		copy(stripe, payload[off:end])
		data, err := rs.SplitCopy(stripe, k)
		if err != nil {
			t.Fatal(err)
		}
		parity, err := code.EncodeAppend(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			out[i] = append(out[i], data[i]...)
		}
		for i := 0; i < m; i++ {
			out[k+i] = append(out[k+i], parity[i]...)
		}
	}
	return out
}

func TestEncoderMatchesWholeBufferKernel(t *testing.T) {
	code := mustRS(t, 5, 3)
	// ChecksumNone: this test pins byte-identity against the raw
	// whole-buffer kernel, which has no trailers.
	opts := Options{Codec: code, StripeSize: 1000, Workers: 3, Checksum: ChecksumNone}
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	stripeSize := enc.StripeSize()
	for _, n := range []int{1, 17, stripeSize - 1, stripeSize, stripeSize + 1, 3*stripeSize + 123} {
		payload := randBytes(t, n, int64(n))
		got := encodeAll(t, opts, payload)
		want := referenceEncode(t, code, stripeSize, payload)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("n=%d: shard %d differs from whole-buffer kernel", n, i)
			}
		}
	}
}

func TestEncoderEmptyInput(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 64}
	shards := encodeAll(t, opts, nil)
	for i, s := range shards {
		if len(s) != 0 {
			t.Fatalf("shard %d has %d bytes for empty input", i, len(s))
		}
	}
}

func TestEncoderInputSmallerThanOneStripe(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 4096, Workers: 2, Checksum: ChecksumNone}
	payload := randBytes(t, 100, 1)
	shards := encodeAll(t, opts, payload)
	want := referenceEncode(t, code, 4096, payload)
	for i := range want {
		if !bytes.Equal(shards[i], want[i]) {
			t.Fatalf("shard %d differs", i)
		}
	}
	if len(shards[0]) != 1024 {
		t.Fatalf("shard size %d, want one full zero-padded stripe shard of 1024", len(shards[0]))
	}
}

// TestEncoderWorkerEquivalence checks that shard output is
// byte-identical regardless of worker count and window depth.
func TestEncoderWorkerEquivalence(t *testing.T) {
	code := mustRS(t, 8, 4)
	payload := randBytes(t, 2<<20, 42)
	base := encodeAll(t, Options{Codec: code, StripeSize: 64 << 10, Workers: 1, Window: 1}, payload)
	for _, workers := range []int{2, 4, 8} {
		for _, window := range []int{1, 3, 16} {
			got := encodeAll(t, Options{Codec: code, StripeSize: 64 << 10, Workers: workers, Window: window}, payload)
			for i := range base {
				if !bytes.Equal(base[i], got[i]) {
					t.Fatalf("workers=%d window=%d: shard %d differs from single-worker output", workers, window, i)
				}
			}
		}
	}
}

func TestEncoderStats(t *testing.T) {
	code := mustRS(t, 4, 2)
	opts := Options{Codec: code, StripeSize: 1024, Workers: 2}
	payload := randBytes(t, 2500, 9) // 3 stripes, last one short
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]io.Writer, enc.Shards())
	for i := range writers {
		writers[i] = io.Discard
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	st := enc.Stats()
	if st.Stripes != 3 {
		t.Fatalf("Stripes = %d, want 3", st.Stripes)
	}
	if st.BytesIn != 2500 {
		t.Fatalf("BytesIn = %d, want 2500", st.BytesIn)
	}
	wantOut := uint64(3 * 6 * enc.BlockSize())
	if st.BytesOut != wantOut {
		t.Fatalf("BytesOut = %d, want %d", st.BytesOut, wantOut)
	}
	if st.Latency.Total() != 3 {
		t.Fatalf("latency observations = %d, want 3", st.Latency.Total())
	}
	if q := st.Latency.Quantile(0.99); q <= 0 {
		t.Fatalf("Quantile(0.99) = %v, want > 0", q)
	}
}

// blockingReader yields a few stripes then blocks until its context is
// cancelled, simulating a stalled input.
type blockingReader struct {
	remaining int
	ctx       context.Context
}

func (r *blockingReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		<-r.ctx.Done()
		return 0, r.ctx.Err()
	}
	n := len(p)
	if n > r.remaining {
		n = r.remaining
	}
	r.remaining -= n
	return n, nil
}

func TestEncoderCancellationMidStream(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 1024, Workers: 2}
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	writers := make([]io.Writer, enc.Shards())
	for i := range writers {
		writers[i] = io.Discard
	}
	done := make(chan error, 1)
	go func() {
		done <- enc.Encode(ctx, &blockingReader{remaining: 10 * 1024, ctx: ctx}, writers)
	}()
	time.Sleep(10 * time.Millisecond) // let a few stripes through
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("Encode returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Encode did not return after cancellation")
	}
}

type failingReader struct {
	n   int
	err error
	off int
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.off >= r.n {
		return 0, r.err
	}
	n := len(p)
	if r.off+n > r.n {
		n = r.n - r.off
	}
	for i := 0; i < n; i++ {
		p[i] = byte(r.off + i)
	}
	r.off += n
	return n, nil
}

func TestEncoderReaderErrorPropagates(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 512, Workers: 2}
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	writers := make([]io.Writer, enc.Shards())
	for i := range writers {
		writers[i] = io.Discard
	}
	boom := errors.New("disk on fire")
	err = enc.Encode(context.Background(), &failingReader{n: 5 * 512, err: boom}, writers)
	if !errors.Is(err, boom) {
		t.Fatalf("Encode returned %v, want the reader error", err)
	}
}

type failingWriter struct {
	allow int
	err   error
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.allow <= 0 {
		return 0, w.err
	}
	w.allow--
	return len(p), nil
}

func TestEncoderWriterErrorPropagates(t *testing.T) {
	opts := Options{Codec: mustRS(t, 4, 2), StripeSize: 512, Workers: 4}
	enc, err := NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("quota exceeded")
	writers := make([]io.Writer, enc.Shards())
	for i := range writers {
		writers[i] = io.Discard
	}
	writers[3] = &failingWriter{allow: 2, err: boom}
	payload := randBytes(t, 64<<10, 3)
	err = enc.Encode(context.Background(), bytes.NewReader(payload), writers)
	if !errors.Is(err, boom) {
		t.Fatalf("Encode returned %v, want the writer error", err)
	}
}

func TestEncoderShardCountValidation(t *testing.T) {
	enc, err := NewEncoder(Options{Codec: mustRS(t, 4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(nil), make([]io.Writer, 5)); err == nil {
		t.Fatal("wrong writer count accepted")
	}
	writers := make([]io.Writer, 6)
	for i := 0; i < 5; i++ {
		writers[i] = io.Discard
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(nil), writers); err == nil {
		t.Fatal("nil writer accepted")
	}
}

func TestEncoderReusableAcrossCalls(t *testing.T) {
	code := mustRS(t, 4, 2)
	enc, err := NewEncoder(Options{Codec: code, StripeSize: 1024, Workers: 2, Checksum: ChecksumNone})
	if err != nil {
		t.Fatal(err)
	}
	payload := randBytes(t, 5000, 11)
	want := referenceEncode(t, code, enc.StripeSize(), payload)
	for round := 0; round < 3; round++ {
		bufs := make([]bytes.Buffer, enc.Shards())
		writers := make([]io.Writer, enc.Shards())
		for i := range bufs {
			writers[i] = &bufs[i]
		}
		if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(bufs[i].Bytes(), want[i]) {
				t.Fatalf("round %d: shard %d differs (pooled buffers leaked state?)", round, i)
			}
		}
	}
	if st := enc.Stats(); st.Stripes != 15 { // 5 stripes x 3 rounds
		t.Fatalf("Stripes = %d, want 15 accumulated", st.Stripes)
	}
}

func ExampleEncoder() {
	code, _ := rs.New(4, 2)
	enc, _ := NewEncoder(Options{Codec: code, StripeSize: 8, Workers: 2})
	var shards [6]bytes.Buffer
	writers := make([]io.Writer, 6)
	for i := range writers {
		writers[i] = &shards[i]
	}
	_ = enc.Encode(context.Background(), bytes.NewReader([]byte("persistent-memory!")), writers)
	fmt.Println(enc.Stats().Stripes, "stripes,", enc.Stats().BytesIn, "bytes in")
	// Output: 3 stripes, 18 bytes in
}
