package stream

import (
	"bytes"
	"context"
	"io"
	"testing"

	"dialga/internal/obs"
)

// benchPayloadMB is the per-iteration payload for pipeline benchmarks.
const benchPayloadMB = 8

func BenchmarkPipelineEncode(b *testing.B) {
	code := mustRS(b, 8, 4)
	payload := randBytes(b, benchPayloadMB<<20, 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers=1", 2: "workers=2", 4: "workers=4"}[workers], func(b *testing.B) {
			enc, err := NewEncoder(Options{Codec: code, StripeSize: 1 << 20, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			writers := make([]io.Writer, enc.Shards())
			for i := range writers {
				writers[i] = io.Discard
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineDecodeDegraded(b *testing.B) {
	code := mustRS(b, 8, 4)
	opts := Options{Codec: code, StripeSize: 1 << 20}
	payload := randBytes(b, benchPayloadMB<<20, 2)
	shards := encodeAll(b, opts, payload)
	shards[0] = nil // force reconstruction on every stripe
	shards[3] = nil
	dec, err := NewDecoder(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readers := make([]io.Reader, len(shards))
		for j, s := range shards {
			if s != nil {
				readers[j] = bytes.NewReader(s)
			}
		}
		if err := dec.Decode(context.Background(), readers, io.Discard, int64(len(payload))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamEncode is the instrumentation-overhead benchmark: the
// same encode pipeline with metrics/tracing detached (each pipeline's
// private registry, no tracer) and attached (shared registry plus span
// tracer). CI's bench-obs job records both and checks the attached
// variant stays within a few percent.
func BenchmarkStreamEncode(b *testing.B) {
	code := mustRS(b, 8, 4)
	payload := randBytes(b, benchPayloadMB<<20, 3)
	run := func(b *testing.B, opts Options) {
		enc, err := NewEncoder(opts)
		if err != nil {
			b.Fatal(err)
		}
		writers := make([]io.Writer, enc.Shards())
		for i := range writers {
			writers[i] = io.Discard
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
				b.Fatal(err)
			}
		}
	}
	base := Options{Codec: code, StripeSize: 1 << 20, Workers: 4}
	b.Run("stripe=1024KiB/obs=off", func(b *testing.B) { run(b, base) })
	b.Run("stripe=1024KiB/obs=on", func(b *testing.B) {
		opts := base
		opts.Metrics = obs.NewRegistry()
		opts.Trace = obs.NewTracer(obs.DefaultTraceCapacity)
		run(b, opts)
	})
}
