package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"dialga/internal/fault"
)

// laggard delays each of the first slowReads Reads by delay (every
// Read when slowReads < 0), then serves at full speed — a straggler
// that recovers.
type laggard struct {
	r         io.Reader
	delay     time.Duration
	slowReads int
	calls     int
}

func (l *laggard) Read(p []byte) (int, error) {
	l.calls++
	if l.slowReads < 0 || l.calls <= l.slowReads {
		time.Sleep(l.delay)
	}
	return l.r.Read(p)
}

// pacedWriter sleeps before every Write, slowing delivery so the
// producer keeps gathering stripes for a known minimum wall time (the
// straggler tests need the decode to outlive the straggler's reads).
type pacedWriter struct {
	w     io.Writer
	pause time.Duration
}

func (p *pacedWriter) Write(b []byte) (int, error) {
	time.Sleep(p.pause)
	return p.w.Write(b)
}

// stragglerOpts is the common geometry of the straggler matrix: small
// stripes so reconstruction is cheap relative to the injected delays,
// hedging with a 1ms floor, and everything seeded.
func stragglerOpts(t *testing.T, k, m, shardSize int) Options {
	t.Helper()
	return Options{
		Codec:      mustRS(t, k, m),
		StripeSize: k * shardSize,
		Workers:    2,
		Checksum:   ChecksumCRC32C,
		HedgeAfter: time.Millisecond,
		Seed:       42,
	}
}

// TestChaosStragglerHedgedDecode is the acceptance scenario: one shard
// at ~10x the fleet's latency. Hedged, the decode reconstructs around
// the straggler and finishes in a fraction of the stalled time;
// unhedged, the same shard set demonstrably stalls (every stripe pays
// the straggler's delay, which has a deterministic seeded lower
// bound). Output must be byte-exact both ways.
func TestChaosStragglerHedgedDecode(t *testing.T) {
	const (
		k, m, shardSize = 4, 2, 256
		stripes         = 6
		slowMicros      = 20_000 // fault.Slow mean; per-read floor is half that
	)
	opts := stragglerOpts(t, k, m, shardSize)
	opts.BreakerThreshold = -1 // isolate hedging; the breaker has its own test
	payload := randBytes(t, stripes*k*shardSize, 7)
	shards := encodeAll(t, opts, payload)

	decode := func(hedge bool) (time.Duration, Stats, []byte) {
		o := opts
		if !hedge {
			o.HedgeAfter = 0
		}
		dec, err := NewDecoder(o)
		if err != nil {
			t.Fatal(err)
		}
		readers := make([]io.Reader, k+m)
		for i := range readers {
			readers[i] = bytes.NewReader(shards[i])
		}
		// Shard 1 (a data shard) pays a seeded recurring delay on every
		// read: mean slowMicros, deterministic floor slowMicros/2.
		readers[1] = fault.NewReader(bytes.NewReader(shards[1]), fault.Plan{
			Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: slowMicros}},
		})
		var out bytes.Buffer
		start := time.Now()
		if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
			t.Fatalf("decode (hedge=%v): %v", hedge, err)
		}
		return time.Since(start), dec.Stats(), out.Bytes()
	}

	hedgedDur, st, got := decode(true)
	if !bytes.Equal(got, payload) {
		t.Fatal("hedged decode produced wrong bytes")
	}
	if st.HedgedReads == 0 {
		t.Fatal("HedgedReads = 0: the straggler never triggered a hedge")
	}
	if st.HedgeWins == 0 {
		t.Fatal("HedgeWins = 0: reconstruction never beat the straggler")
	}
	if st.ShardFailures != 0 {
		t.Fatalf("ShardFailures = %d: a slow shard was retired as dead", st.ShardFailures)
	}
	if st.Stripes != stripes {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}

	unhedgedDur, st0, got0 := decode(false)
	if !bytes.Equal(got0, payload) {
		t.Fatal("unhedged decode produced wrong bytes")
	}
	if st0.HedgedReads != 0 || st0.HedgeWins != 0 {
		t.Fatalf("unhedged decode hedged anyway: HedgedReads=%d HedgeWins=%d", st0.HedgedReads, st0.HedgeWins)
	}
	// The unhedged pipeline pays the straggler on every stripe; the
	// injected sleeps give it a deterministic floor no scheduler can
	// shrink.
	stallFloor := time.Duration(stripes) * (slowMicros / 2) * time.Microsecond
	if unhedgedDur < stallFloor {
		t.Fatalf("unhedged decode took %v, below the injected stall floor %v", unhedgedDur, stallFloor)
	}
	if hedgedDur*2 >= unhedgedDur {
		t.Fatalf("hedging saved too little: hedged %v vs unhedged %v", hedgedDur, unhedgedDur)
	}
}

// TestChaosStragglerWithCorruption combines a straggler with checksum
// corruption on another shard, staying within the parity budget
// (slow + corrupt = 2 erasures = m). The corruption counters must
// match the plan exactly and the output must be byte-exact.
func TestChaosStragglerWithCorruption(t *testing.T) {
	const (
		k, m, shardSize = 4, 2, 128
		stripes         = 5
	)
	opts := stragglerOpts(t, k, m, shardSize)
	opts.BreakerThreshold = -1
	payload := randBytes(t, stripes*k*shardSize, 11)
	shards := encodeAll(t, opts, payload)
	blockSize := shardSize + crcSize

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, k+m)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	// Shard 5 (parity) straggles on every read; shard 2 serves corrupt
	// blocks on stripes 1 and 3.
	readers[5] = fault.NewReader(bytes.NewReader(shards[5]), fault.Plan{
		Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: 10_000}},
	})
	readers[2] = fault.NewReader(bytes.NewReader(shards[2]), fault.Plan{
		Ops: []fault.Op{
			{Kind: fault.BitFlip, Off: int64(1*blockSize) + 17, Bit: 3},
			{Kind: fault.BitFlip, Off: int64(3*blockSize) + 101, Bit: 6},
		},
	})
	var out bytes.Buffer
	if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("decode with straggler + corruption produced wrong bytes")
	}
	st := dec.Stats()
	if st.ShardsCorrupted != 2 {
		t.Fatalf("ShardsCorrupted = %d, plan flipped 2 blocks", st.ShardsCorrupted)
	}
	if st.StripesHealed != 2 {
		t.Fatalf("StripesHealed = %d, plan poisoned 2 stripes", st.StripesHealed)
	}
	if st.ShardFailures != 0 {
		t.Fatalf("ShardFailures = %d, want 0", st.ShardFailures)
	}
	if st.Stripes != stripes {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}
}

// TestChaosStragglerRecovers: a shard that is slow for its first two
// reads and then healthy must be hedged around while slow, re-admitted
// once fast, and never counted as failed or breaker-tripped (the
// threshold is above its two misses).
func TestChaosStragglerRecovers(t *testing.T) {
	const (
		k, m, shardSize = 3, 2, 128
		stripes         = 30
	)
	opts := stragglerOpts(t, k, m, shardSize)
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = time.Millisecond
	payload := randBytes(t, stripes*k*shardSize, 13)
	shards := encodeAll(t, opts, payload)

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, k+m)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	readers[0] = &laggard{r: bytes.NewReader(shards[0]), delay: 8 * time.Millisecond, slowReads: 2}
	var out bytes.Buffer
	// Pace delivery so the decode outlives the straggler's slow phase
	// and its recovery is actually exercised.
	w := &pacedWriter{w: &out, pause: 300 * time.Microsecond}
	if err := dec.Decode(context.Background(), readers, w, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("decode with recovering straggler produced wrong bytes")
	}
	st := dec.Stats()
	if st.HedgedReads == 0 {
		t.Fatal("HedgedReads = 0: the slow phase never triggered a hedge")
	}
	if st.BreakerTrips != 0 {
		t.Fatalf("BreakerTrips = %d: two misses tripped a threshold of three", st.BreakerTrips)
	}
	if st.ShardFailures != 0 {
		t.Fatalf("ShardFailures = %d, want 0", st.ShardFailures)
	}
	if st.Stripes != stripes {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}
}

// TestChaosStragglerBreakerProbe: a shard slow for exactly two reads
// under BreakerThreshold 2 trips the breaker once; after the cooldown
// the half-open probe finds it recovered, closes the breaker, and the
// decode finishes with the shard back in rotation. Exactly one trip,
// no shard failures, byte-exact output.
func TestChaosStragglerBreakerProbe(t *testing.T) {
	const (
		k, m, shardSize = 3, 2, 128
		stripes         = 40
	)
	opts := stragglerOpts(t, k, m, shardSize)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Millisecond
	payload := randBytes(t, stripes*k*shardSize, 17)
	shards := encodeAll(t, opts, payload)

	dec, err := NewDecoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	readers := make([]io.Reader, k+m)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	readers[4] = &laggard{r: bytes.NewReader(shards[4]), delay: 8 * time.Millisecond, slowReads: 2}
	var out bytes.Buffer
	w := &pacedWriter{w: &out, pause: 300 * time.Microsecond}
	if err := dec.Decode(context.Background(), readers, w, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatal("decode across a breaker trip produced wrong bytes")
	}
	st := dec.Stats()
	if st.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want exactly 1 (two misses, then a successful probe)", st.BreakerTrips)
	}
	if st.ShardFailures != 0 {
		t.Fatalf("ShardFailures = %d, want 0", st.ShardFailures)
	}
	if st.Stripes != stripes {
		t.Fatalf("Stripes = %d, want %d", st.Stripes, stripes)
	}
}

// TestChaosStragglerNoGoroutineLeaks drives the decoder through the
// three abortive paths — a cancelled decode, a failed (beyond-parity)
// decode, and a breaker-tripped straggler decode — and requires the
// goroutine count to return to baseline: shard readers, workers, and
// the producer must all drain.
func TestChaosStragglerNoGoroutineLeaks(t *testing.T) {
	const (
		k, m, shardSize = 3, 2, 128
		stripes         = 20
	)
	opts := stragglerOpts(t, k, m, shardSize)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Millisecond
	payload := randBytes(t, stripes*k*shardSize, 19)
	shards := encodeAll(t, opts, payload)
	blockSize := shardSize + crcSize

	base := runtime.NumGoroutine()

	// Cancelled mid-decode, with a straggler still mid-read. The
	// injected sleeps are context-aware, so cancellation propagates
	// into the blocked Read instead of waiting it out.
	func() {
		dec, err := NewDecoder(opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		readers := make([]io.Reader, k+m)
		for i := range readers {
			readers[i] = bytes.NewReader(shards[i])
		}
		readers[1] = fault.NewReader(bytes.NewReader(shards[1]), fault.Plan{
			Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: 500_000}},
		}).WithContext(ctx)
		var out bytes.Buffer
		go func() {
			time.Sleep(3 * time.Millisecond)
			cancel()
		}()
		err = dec.Decode(ctx, readers, &pacedWriter{w: &out, pause: 200 * time.Microsecond}, int64(len(payload)))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled decode returned %v, want context.Canceled", err)
		}
	}()

	// Failed decode: one stripe corrupted beyond the parity budget.
	func() {
		dec, err := NewDecoder(opts)
		if err != nil {
			t.Fatal(err)
		}
		readers := make([]io.Reader, k+m)
		for i := range readers {
			plan := fault.Plan{Ops: []fault.Op{
				{Kind: fault.BitFlip, Off: int64(2*blockSize) + int64(i+1), Bit: 1},
			}}
			readers[i] = fault.NewReader(bytes.NewReader(shards[i]), plan)
		}
		var out bytes.Buffer
		err = dec.Decode(context.Background(), readers, &out, int64(len(payload)))
		if !errors.Is(err, ErrTooManyCorrupt) {
			t.Fatalf("poisoned decode returned %v, want ErrTooManyCorrupt", err)
		}
	}()

	// Breaker-tripped straggler decode that runs to completion.
	func() {
		dec, err := NewDecoder(opts)
		if err != nil {
			t.Fatal(err)
		}
		readers := make([]io.Reader, k+m)
		for i := range readers {
			readers[i] = bytes.NewReader(shards[i])
		}
		readers[4] = &laggard{r: bytes.NewReader(shards[4]), delay: 5 * time.Millisecond, slowReads: 3}
		var out bytes.Buffer
		err = dec.Decode(context.Background(), readers, &pacedWriter{w: &out, pause: 200 * time.Microsecond}, int64(len(payload)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), payload) {
			t.Fatal("decode produced wrong bytes")
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d at baseline, %d after decodes", base, runtime.NumGoroutine())
}
