package stream

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"dialga/internal/gf"
)

// Encoder is a streaming erasure encoder: it chunks a reader into
// stripes, encodes stripes concurrently, and writes the k data and m
// parity shards of each stripe to k+m writers in stripe order. The
// tail stripe is zero-padded to a full stripe, so every shard writer
// receives exactly BlockSize bytes per stripe — shardSize data bytes
// plus, under ChecksumCRC32C (the default), a 4-byte CRC-32C trailer
// the decoder verifies and heals against. Recording the original
// length for trimming on decode is the caller's job (the dialga-encode
// shard header does this).
//
// An Encoder is safe for concurrent use; each Encode call runs its own
// pipeline and the shared Stats accumulate across calls.
type Encoder struct {
	g      geom
	stats  *counters
	data   *bufPool
	parity *bufPool
	crc    *bufPool // nil when checksums are disabled
	jobs   jobPool
}

// NewEncoder validates opts and returns a ready Encoder.
func NewEncoder(opts Options) (*Encoder, error) {
	g, err := opts.geometry()
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		g:      g,
		stats:  newCounters(g.metrics, "encode"),
		data:   newBufPool(g.stripeSize),
		parity: newBufPool(g.m * g.shardSize),
	}
	if g.trailer > 0 {
		e.crc = newBufPool((g.k + g.m) * crcSize)
	}
	return e, nil
}

// StripeSize returns the data payload per stripe after rounding
// StripeSize up to a multiple of k.
func (e *Encoder) StripeSize() int { return e.g.stripeSize }

// ShardSize returns the data bytes per shard per stripe, excluding
// any checksum trailer.
func (e *Encoder) ShardSize() int { return e.g.shardSize }

// BlockSize returns the bytes each shard writer receives per stripe:
// ShardSize plus the checksum trailer.
func (e *Encoder) BlockSize() int { return e.g.blockSize }

// Shards returns the total shard count k+m.
func (e *Encoder) Shards() int { return e.g.k + e.g.m }

// Stats returns a snapshot of the pipeline counters.
func (e *Encoder) Stats() Stats { return e.stats.snapshot() }

// Fused reports whether this encoder uses the codec's single-pass
// fused encode+CRC sweep for its checksum trailers (false when the
// codec does not offer it, checksums are off, or Options.DisableFused
// forced the two-pass path).
func (e *Encoder) Fused() bool { return e.g.fused != nil }

// encodeStripe is the worker body: encode one stripe's parity and,
// under ChecksumCRC32C, its k+m block trailers. With a fused codec the
// parity and every CRC come out of one cache-tiled sweep — each 4 KiB
// tile is checksummed while still L1-resident — instead of a second
// full pass over k+m blocks. Both paths produce byte-identical
// trailers. Runs allocation-free against warmed pools.
func (e *Encoder) encodeStripe(j *job) error {
	start := time.Now()
	// Full-length stripes split into pure aliases of the pooled
	// buffer (see the pinned rs.Split aliasing contract) — the
	// zero-copy path the pipeline is built around. Callers that
	// need ownership use rs.SplitCopy instead.
	j.dviews = shardViewsInto(j.dviews, j.data, e.g.k, e.g.shardSize)
	j.parity = e.parity.get()
	j.pviews = shardViewsInto(j.pviews, j.parity, e.g.m, e.g.shardSize)
	if e.g.fused != nil {
		j.sums = sliceN(j.sums, e.g.k+e.g.m)
		if err := e.g.fused.EncodeSumInto(j.sums, j.dviews, j.pviews); err != nil {
			return fmt.Errorf("stream: encode stripe %d: %w", j.seq, err)
		}
		j.crc = e.crc.get()
		for i, sum := range j.sums {
			binary.LittleEndian.PutUint32(j.crc[i*crcSize:], sum)
		}
	} else {
		if err := e.g.codec.Encode(j.dviews, j.pviews); err != nil {
			return fmt.Errorf("stream: encode stripe %d: %w", j.seq, err)
		}
		if e.crc != nil {
			// Two-pass trailers: CRC-32C of each block after the fact,
			// hardware-accelerated, off the serial deliver path.
			j.crc = e.crc.get()
			for i := 0; i < e.g.k; i++ {
				sum := gf.CRC32C(j.data[i*e.g.shardSize : (i+1)*e.g.shardSize])
				binary.LittleEndian.PutUint32(j.crc[i*crcSize:], sum)
			}
			for i := 0; i < e.g.m; i++ {
				sum := gf.CRC32C(j.parity[i*e.g.shardSize : (i+1)*e.g.shardSize])
				binary.LittleEndian.PutUint32(j.crc[(e.g.k+i)*crcSize:], sum)
			}
		}
	}
	e.stats.observe(time.Since(start))
	j.span.Event("encode", "")
	return nil
}

// Encode reads r to EOF and writes shard i of every stripe to
// shards[i] (k data writers then m parity writers). It returns the
// first error from the reader, any writer, the codec, or ctx, after
// all workers have drained. Output is deterministic: byte-identical
// for any worker count.
func (e *Encoder) Encode(ctx context.Context, r io.Reader, shards []io.Writer) error {
	if len(shards) != e.g.k+e.g.m {
		return fmt.Errorf("stream: got %d shard writers, want k+m=%d", len(shards), e.g.k+e.g.m)
	}
	for i, w := range shards {
		if w == nil {
			return fmt.Errorf("stream: shard writer %d is nil", i)
		}
	}

	produce := func(ctx context.Context, push func(*job) bool) error {
		for seq := int64(0); ; seq++ {
			span := e.g.trace.Begin(seq)
			buf := e.data.get()
			n, err := io.ReadFull(r, buf)
			if n == 0 {
				e.data.put(buf)
				if err == io.EOF || err == nil {
					return nil
				}
				return fmt.Errorf("stream: read input: %w", err)
			}
			if err != nil && err != io.ErrUnexpectedEOF {
				e.data.put(buf)
				return fmt.Errorf("stream: read input: %w", err)
			}
			final := err == io.ErrUnexpectedEOF
			if n < len(buf) {
				clear(buf[n:]) // pooled buffer: scrub stale bytes into the padding
			}
			e.stats.bytesIn.Add(uint64(n))
			if span != nil {
				span.Event("read", fmt.Sprintf("bytes=%d", n))
			}
			j := e.jobs.get()
			j.seq, j.data, j.n, j.span = seq, buf, n, span
			if !push(j) {
				return nil
			}
			if final {
				return nil
			}
		}
	}

	work := e.encodeStripe

	writeBlock := func(w io.Writer, idx int, block []byte, crc []byte) error {
		if _, err := w.Write(block); err != nil {
			return fmt.Errorf("stream: write shard %d: %w", idx, err)
		}
		if crc != nil {
			if _, err := w.Write(crc); err != nil {
				return fmt.Errorf("stream: write shard %d trailer: %w", idx, err)
			}
		}
		return nil
	}

	deliver := func(j *job) error {
		var crc []byte
		for i := 0; i < e.g.k; i++ {
			if j.crc != nil {
				crc = j.crc[i*crcSize : (i+1)*crcSize]
			}
			if err := writeBlock(shards[i], i, j.data[i*e.g.shardSize:(i+1)*e.g.shardSize], crc); err != nil {
				return err
			}
		}
		for i := 0; i < e.g.m; i++ {
			if j.crc != nil {
				crc = j.crc[(e.g.k+i)*crcSize : (e.g.k+i+1)*crcSize]
			}
			if err := writeBlock(shards[e.g.k+i], e.g.k+i, j.parity[i*e.g.shardSize:(i+1)*e.g.shardSize], crc); err != nil {
				return err
			}
		}
		e.stats.stripes.Add(1)
		e.stats.bytesOut.Add(uint64((e.g.k + e.g.m) * e.g.blockSize))
		j.span.Event("emit", "")
		return nil
	}

	release := func(j *job) {
		if j.data != nil {
			e.data.put(j.data)
		}
		if j.parity != nil {
			e.parity.put(j.parity)
		}
		if j.crc != nil {
			e.crc.put(j.crc)
		}
		j.span.End()
		e.jobs.put(j)
	}

	return run(ctx, e.g, e.stats, produce, work, deliver, release)
}
