package cluster

import (
	"fmt"
	"sort"
)

// Placement is the node assignment for one object's stripe: entry i
// holds shard i. It is a pure function of (map, object, n), so every
// node derives it independently and identically.
type Placement []NodeInfo

// Node returns the node holding shard idx.
func (p Placement) Node(idx int) NodeInfo { return p[idx] }

// fnv64 is the FNV-1a hash of s — the stable object/node fingerprint
// placement scores are derived from. Inlined rather than hash/fnv so
// the two-string combination below allocates nothing.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the SplitMix64 finalizer, the same whitener internal/fault
// uses: it turns the correlated (object, node) hash pair into an
// independent uniform score.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// score is node n's rendezvous (highest-random-weight) score for
// object: deterministic, uniform, and independent per (object, node),
// so removing one node only moves the shards that lived on it.
func score(object string, n NodeInfo) uint64 {
	return mix(fnv64(object) ^ mix(fnv64(string(n.ID))))
}

// Place assigns the n shards of object's stripe to nodes:
//
//   - Deterministic: rendezvous hashing orders the nodes by
//     per-(object, node) score, so placement needs no directory, and
//     node loss only reshuffles the lost node's shards.
//   - Rack-disjoint: no two shards ever share a failure domain
//     (zone/rack pair). A map with fewer domains than shards is a
//     configuration error — redundancy that can be wiped out by one
//     rack is not redundancy — so Place refuses rather than relaxing
//     silently.
//   - Zone-spread: among the rack-disjoint choices, shards prefer
//     zones not yet used by this stripe, so a zone-sized failure
//     takes out as few shards as possible.
func (m *Map) Place(object string, n int) (Placement, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: placement for %d shards", n)
	}
	if d := m.Domains(); n > d {
		return nil, fmt.Errorf("cluster: %d shards need %d disjoint failure domains, map has %d", n, n, d)
	}
	ranked := make([]NodeInfo, len(m.nodes))
	copy(ranked, m.nodes)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(object, ranked[i]), score(object, ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i].ID < ranked[j].ID // total order even on score ties
	})

	placement := make(Placement, 0, n)
	usedDomain := make(map[string]bool, n)
	usedZone := make(map[string]bool, n)
	taken := make([]bool, len(ranked))
	// Pass 1 per slot: best-scored node in an unused domain AND an
	// unused zone; pass 2 relaxes the zone (all zones already
	// represented), never the domain.
	for len(placement) < n {
		pick := -1
		for pass := 0; pass < 2 && pick < 0; pass++ {
			for i, cand := range ranked {
				if taken[i] || usedDomain[cand.Domain()] {
					continue
				}
				if pass == 0 && usedZone[cand.Zone] {
					continue
				}
				pick = i
				break
			}
		}
		if pick < 0 {
			// Unreachable given the Domains() precheck, but refuse
			// loudly rather than looping.
			return nil, fmt.Errorf("cluster: placement for %q stuck at %d of %d shards", object, len(placement), n)
		}
		taken[pick] = true
		usedDomain[ranked[pick].Domain()] = true
		if zonesLeft(ranked, taken, usedZone) == 0 {
			// Every remaining candidate's zone is already used: start a
			// fresh zone round so spreading stays as even as it can be.
			usedZone = make(map[string]bool, n)
		}
		usedZone[ranked[pick].Zone] = true
		placement = append(placement, ranked[pick])
	}
	return placement, nil
}

// zonesLeft counts untaken candidates in zones not yet used this
// round.
func zonesLeft(ranked []NodeInfo, taken []bool, usedZone map[string]bool) int {
	left := 0
	for i, cand := range ranked {
		if !taken[i] && !usedZone[cand.Zone] {
			left++
		}
	}
	return left
}
