package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/shardfile"
)

// testNode is one in-process cluster member on a real loopback
// listener, stoppable and restartable (optionally with a fresh empty
// store) to simulate node loss and replacement.
type testNode struct {
	t    *testing.T
	id   NodeID
	dir  string
	addr string
	srv  *http.Server
	reg  *obs.Registry
}

func (n *testNode) start() {
	n.t.Helper()
	store, err := node.OpenStore(n.dir, n.reg)
	if err != nil {
		n.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", n.addr)
	if err != nil {
		n.t.Fatal(err)
	}
	if n.addr == "127.0.0.1:0" {
		n.addr = ln.Addr().String()
	}
	n.srv = &http.Server{Handler: node.NewServer(store, nil, n.reg).Handler()}
	srv := n.srv
	go srv.Serve(ln)
}

func (n *testNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
}

// replace restarts the node with a brand-new empty store on the same
// address — a replacement machine racked in where the old one died.
func (n *testNode) replace() {
	n.t.Helper()
	n.stop()
	n.dir = n.t.TempDir()
	n.start()
}

type testCluster struct {
	t     *testing.T
	nodes []*testNode
	cmap  *Map
	gw    *Gateway
	reg   *obs.Registry
}

// startCluster brings up n in-process nodes (one rack each, two
// zones) and a gateway with the given geometry and seed. spares is
// GatewayOptions.Spares: 0 keeps the default (k+1 opens per read);
// pass m to open every shard, which reads through up to m corrupt
// shards without reopening.
func startCluster(t *testing.T, n, k, m, spares int, seed uint64) *testCluster {
	t.Helper()
	return startClusterOpts(t, n, k, m, spares, seed, nil)
}

// startClusterOpts is startCluster with a hook to adjust the gateway
// options (quorum, intents, a fault transport) before it is built.
func startClusterOpts(t *testing.T, n, k, m, spares int, seed uint64, mod func(*GatewayOptions)) *testCluster {
	t.Helper()
	reg := obs.NewRegistry()
	tc := &testCluster{t: t, reg: reg}
	infos := make([]NodeInfo, n)
	for i := 0; i < n; i++ {
		tn := &testNode{
			t: t, id: NodeID(fmt.Sprintf("n%d", i)),
			dir: t.TempDir(), addr: "127.0.0.1:0", reg: reg,
		}
		tn.start()
		t.Cleanup(tn.stop)
		tc.nodes = append(tc.nodes, tn)
		infos[i] = NodeInfo{
			ID: tn.id, Addr: tn.addr,
			Rack: fmt.Sprintf("r%d", i),
			Zone: fmt.Sprintf("z%d", i%2),
		}
	}
	cmap, err := New(infos)
	if err != nil {
		t.Fatal(err)
	}
	opts := GatewayOptions{
		Map: cmap, K: k, M: m,
		StripeSize: 64 * 1024,
		Spares:     spares,
		HedgeAfter: 10 * time.Millisecond,
		Metrics:    reg,
		Seed:       seed,
		// No pooled keep-alive connections: a killed-and-replaced node
		// must not be reached over a stale socket.
		HTTPClient: &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
	}
	if mod != nil {
		mod(&opts)
	}
	gw, err := NewGateway(opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.cmap, tc.gw = cmap, gw
	return tc
}

func (tc *testCluster) node(id NodeID) *testNode {
	for _, n := range tc.nodes {
		if n.id == id {
			return n
		}
	}
	tc.t.Fatalf("no node %s", id)
	return nil
}

func clusterPayload(seed uint64, n int) []byte {
	buf := make([]byte, n)
	st := seed
	for i := range buf {
		st = st*6364136223846793005 + 1442695040888963407
		buf[i] = byte(st >> 56)
	}
	return buf
}

func (tc *testCluster) mustGet(ctx context.Context, object string, want []byte) {
	tc.t.Helper()
	var out bytes.Buffer
	if err := tc.gw.GetObject(ctx, object, &out, node.ClassForeground); err != nil {
		tc.t.Fatalf("get %s: %v", object, err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		tc.t.Fatalf("get %s: payload mismatch (%d vs %d bytes)", object, out.Len(), len(want))
	}
}

// TestClusterLifecycle is the acceptance path: rack-disjoint PUT over
// six nodes, reads with two nodes down, replacement nodes repaired
// back to full redundancy while foreground reads keep succeeding.
func TestClusterLifecycle(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 1)
	ctx := context.Background()

	const objects = 3
	const objSize = 300_000
	payloads := map[string][]byte{}
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("life-%d", i)
		payloads[name] = clusterPayload(uint64(100+i), objSize)
		p, err := tc.gw.PutObject(ctx, name, bytes.NewReader(payloads[name]), objSize, node.ClassForeground)
		if err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		// The stripe really is rack-disjoint on disk, not just on
		// paper: each placed node serves its shard, no domain repeats.
		domains := map[string]bool{}
		for idx, info := range p {
			if domains[info.Domain()] {
				t.Fatalf("%s: domain %s repeated", name, info.Domain())
			}
			domains[info.Domain()] = true
			cli, _ := tc.gw.Client(info.ID)
			st, err := cli.StatShard(ctx, name, idx)
			if err != nil || int(st.Index) != idx {
				t.Fatalf("%s shard %d on %s: stat %+v, %v", name, idx, info.ID, st, err)
			}
		}
	}
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}

	// Kill two nodes. RS(4,2) tolerates exactly two lost shards per
	// stripe, so every object must still read back.
	tc.nodes[0].stop()
	tc.nodes[1].stop()
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}

	// Replacement machines arrive empty; the repair queue rebuilds
	// every shard the dead nodes held, while foreground reads continue.
	tc.nodes[0].replace()
	tc.nodes[1].replace()

	stopReads := make(chan struct{})
	readsDone := make(chan error, 1)
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			for name, want := range payloads {
				var out bytes.Buffer
				if err := tc.gw.GetObject(ctx, name, &out, node.ClassForeground); err != nil {
					readsDone <- fmt.Errorf("foreground get %s during repair: %w", name, err)
					return
				}
				if !bytes.Equal(out.Bytes(), want) {
					readsDone <- fmt.Errorf("foreground get %s during repair: wrong bytes", name)
					return
				}
			}
		}
	}()

	rep := NewRepairer(tc.gw, nil, tc.reg)
	enqueued, err := rep.ScanOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	repaired, failed := rep.DrainOnce(ctx)
	close(stopReads)
	if err := <-readsDone; err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("%d repairs failed", failed)
	}
	// Each replaced node held one shard of each object.
	if want := 2 * objects; enqueued != want || repaired != want {
		t.Fatalf("enqueued=%d repaired=%d, want %d", enqueued, repaired, want)
	}

	// Full redundancy restored: a second scan finds nothing, and every
	// placed shard stats clean on its node.
	if enqueued, err = rep.ScanOnce(ctx); err != nil || enqueued != 0 {
		t.Fatalf("post-repair scan: enqueued=%d, %v", enqueued, err)
	}
	for name := range payloads {
		p, _ := tc.gw.Place(name)
		for idx, info := range p {
			cli, _ := tc.gw.Client(info.ID)
			if _, err := cli.StatShard(ctx, name, idx); err != nil {
				t.Fatalf("%s shard %d on %s after repair: %v", name, idx, info.ID, err)
			}
		}
	}
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}
}

// corruptShard damages one stored shard file in place with a seeded
// fault plan (bit flips and zero fills past the header) — simulated
// silent media corruption for the scrub to find.
func corruptShard(t *testing.T, tc *testCluster, object string, idx int, seed uint64) {
	t.Helper()
	p, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	tn := tc.node(p[idx].ID)
	path := shardfile.Path(filepath.Join(tn.dir, object), idx)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := int64(len(raw) - shardfile.HeaderSizeV3)
	plan := fault.Generate(seed, body, 4)
	// Keep only in-place corruption: truncation and transient errors
	// would change the file length or abort the rewrite.
	ops := plan.Ops[:0]
	for _, op := range plan.Ops {
		if op.Kind == fault.BitFlip || op.Kind == fault.ZeroFill {
			op.Off += shardfile.HeaderSizeV3
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		ops = append(ops, fault.Op{Kind: fault.BitFlip, Off: shardfile.HeaderSizeV3 + int64(seed%uint64(body)), Bit: 1})
	}
	plan.Ops = ops
	damaged, err := io.ReadAll(fault.NewReader(bytes.NewReader(raw), plan))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(damaged, raw) {
		t.Fatal("fault plan was a no-op")
	}
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRepairQueueSeededCorruption corrupts shards across racks with a
// seeded fault plan, then verifies the scrub finds exactly those
// shards, the queue repairs exactly those shards, and foreground read
// latency stays bounded while repair churns.
func TestRepairQueueSeededCorruption(t *testing.T) {
	// Spares = m: with up to two corrupt shards per object (the RS(4,2)
	// limit) every read needs all six shards open to survive.
	tc := startCluster(t, 6, 4, 2, 2, 2)
	ctx := context.Background()

	const objects = 4
	const objSize = 200_000
	payloads := map[string][]byte{}
	names := make([]string, 0, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("scrub-%d", i)
		names = append(names, name)
		payloads[name] = clusterPayload(uint64(900+i), objSize)
		if _, err := tc.gw.PutObject(ctx, name, bytes.NewReader(payloads[name]), objSize, node.ClassForeground); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(names)

	// Corrupt two shards of each object — the decode limit for
	// RS(4,2), landing on different racks by construction (placement
	// is rack-disjoint, and we damage distinct shard indices).
	const damagedShards = 2 * objects
	for i, name := range names {
		corruptShard(t, tc, name, i%3, uint64(1000+i))
		corruptShard(t, tc, name, 3+i%3, uint64(2000+i))
	}

	// Pace repair hard (but foreground not at all) so the drain
	// overlaps the foreground read loop below.
	lim := NewLimiter(map[string]Rate{
		node.ClassRepair: {PerSecond: 200, Burst: 4},
	}, tc.reg)
	rep := NewRepairer(tc.gw, lim, tc.reg)

	enqueued, err := rep.ScanOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if enqueued != damagedShards {
		t.Fatalf("scan enqueued %d, want %d", enqueued, damagedShards)
	}
	if got := tc.reg.Counter("cluster_scrub_damaged_total", "",
		obs.Label{Key: "status", Value: "corrupt"}).Value(); got != damagedShards {
		t.Fatalf("cluster_scrub_damaged_total{corrupt} = %d, want %d", got, damagedShards)
	}
	if got := rep.Pending(); got != damagedShards {
		t.Fatalf("pending = %d, want %d", got, damagedShards)
	}

	// Foreground reads run during the entire drain; their latency must
	// stay bounded (generously — this is loopback) rather than being
	// starved behind repair traffic.
	var mu sync.Mutex
	var latencies []time.Duration
	stopReads := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			name := names[len(latencies)%len(names)]
			start := time.Now()
			var out bytes.Buffer
			if err := tc.gw.GetObject(ctx, name, &out, node.ClassForeground); err != nil {
				readErr <- fmt.Errorf("foreground get %s during drain: %w", name, err)
				return
			}
			mu.Lock()
			latencies = append(latencies, time.Since(start))
			mu.Unlock()
		}
	}()

	repaired, failed := rep.DrainOnce(ctx)
	close(stopReads)
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
	if repaired != damagedShards || failed != 0 {
		t.Fatalf("repaired=%d failed=%d, want %d/0", repaired, failed, damagedShards)
	}

	// Exact accounting: every damaged shard repaired once, queue empty.
	if got := tc.reg.Counter("cluster_repairs_total", "",
		obs.Label{Key: "result", Value: "ok"}).Value(); got != damagedShards {
		t.Fatalf("cluster_repairs_total{ok} = %d, want %d", got, damagedShards)
	}
	if got := tc.reg.Counter("cluster_repairs_total", "",
		obs.Label{Key: "result", Value: "error"}).Value(); got != 0 {
		t.Fatalf("cluster_repairs_total{error} = %d, want 0", got)
	}
	if got := tc.reg.Gauge("cluster_repair_queue", "").Value(); got != 0 {
		t.Fatalf("cluster_repair_queue = %v, want 0", got)
	}
	if got := rep.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}

	// Foreground p99 during repair stays sane.
	mu.Lock()
	lats := append([]time.Duration(nil), latencies...)
	mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[len(lats)*99/100]
		if p99 > 5*time.Second {
			t.Fatalf("foreground p99 during repair = %v", p99)
		}
	}

	// The cluster scrubs clean and every object reads back intact.
	if enqueued, err := rep.ScanOnce(ctx); err != nil || enqueued != 0 {
		t.Fatalf("post-repair scan: enqueued=%d, %v", enqueued, err)
	}
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}
}
