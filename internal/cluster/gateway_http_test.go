package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dialga/internal/obs"
	"dialga/internal/shardfile"
)

// startHTTP wraps the gateway's handler in a real HTTP server, the way
// clients actually reach it.
func startHTTP(t *testing.T, tc *testCluster) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(tc.gw.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func httpPut(t *testing.T, srv *httptest.Server, object string, payload []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/object/"+object, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func httpGet(t *testing.T, srv *httptest.Server, object, rangeHeader string) (*http.Response, []byte, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/object/"+object, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHeader != "" {
		req.Header.Set("Range", rangeHeader)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, readErr := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, readErr
}

// shardGets reads the cluster-wide count of foreground shard-body
// fetches — the work a read fans out into.
func shardGets(tc *testCluster) uint64 {
	return tc.reg.Counter("node_requests_total", "",
		obs.Label{Key: "route", Value: "shard_get"},
		obs.Label{Key: "class", Value: "foreground"}).Value()
}

// TestGatewayHTTPRoundtrip covers the object API end to end over the
// wire: put, headers on get, delete, and 404 after delete.
func TestGatewayHTTPRoundtrip(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 41)
	srv := startHTTP(t, tc)
	payload := clusterPayload(41, 200_000)

	if resp := httpPut(t, srv, "rt", payload); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: status %d, want 201", resp.StatusCode)
	}
	resp, body, err := httpGet(t, srv, "rt", "")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d, err %v", resp.StatusCode, err)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(len(payload)) {
		t.Fatalf("get: Content-Length %q, want %d", got, len(payload))
	}
	if got := resp.Header.Get("Accept-Ranges"); got != "bytes" {
		t.Fatalf("get: Accept-Ranges %q, want bytes", got)
	}
	if !bytes.Equal(body, payload) {
		t.Fatalf("get: body mismatch (%d vs %d bytes)", len(body), len(payload))
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/object/rt", nil)
	dresp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", dresp.StatusCode)
	}
	if resp, _, _ := httpGet(t, srv, "rt", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
}

// TestGatewayHTTPNotFoundVsUnavailable is the status-mapping
// regression: an object that no node has ever seen is 404 — every
// probed shard answered "not found", so the cluster authoritatively
// does not hold it — while the same read with a node unreachable is
// 502, because the missing answer could have been the object.
func TestGatewayHTTPNotFoundVsUnavailable(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 2, 43) // spares=m: probe every shard
	srv := startHTTP(t, tc)

	resp, body, _ := httpGet(t, srv, "never-put", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent object: status %d (%s), want 404", resp.StatusCode, body)
	}

	tc.nodes[3].stop()
	resp, body, _ = httpGet(t, srv, "never-put", "")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("absent object with node down: status %d (%s), want 502", resp.StatusCode, body)
	}
}

// TestGatewayHTTPPutRequiresLength rejects chunked puts up front: the
// encoder needs the object size before the first stripe.
func TestGatewayHTTPPutRequiresLength(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 44)
	srv := startHTTP(t, tc)

	// Wrapping the reader hides its concrete type from net/http, so
	// the request goes out chunked with no Content-Length.
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/object/chunked",
		struct{ io.Reader }{bytes.NewReader(make([]byte, 1000))})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusLengthRequired {
		t.Fatalf("chunked put: status %d, want 411", resp.StatusCode)
	}
}

// TestGatewayHTTPRange drives Range reads over the wire: single,
// open-ended, and suffix forms; 416 with "Content-Range: bytes */size"
// for unsatisfiable ranges; and full 200 for forms the server ignores.
// It also pins the efficiency claim: a small range fans out into
// strictly fewer shard fetches than a full read.
func TestGatewayHTTPRange(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 45)
	srv := startHTTP(t, tc)
	size := 3*64*1024 + 777 // four stripes at the 64 KiB test stripe size
	payload := clusterPayload(45, size)
	if resp := httpPut(t, srv, "ranged", payload); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: status %d", resp.StatusCode)
	}

	cases := []struct {
		name, header string
		status       int
		from, to     int // payload[from:to] when 206; full payload when 200
	}{
		{"single", "bytes=100-199", http.StatusPartialContent, 100, 200},
		{"cross-stripe", "bytes=65000-66000", http.StatusPartialContent, 65000, 66001},
		{"open-ended", "bytes=196000-", http.StatusPartialContent, 196000, size},
		{"suffix", "bytes=-500", http.StatusPartialContent, size - 500, size},
		{"suffix-over-size", fmt.Sprintf("bytes=-%d", size*2), http.StatusPartialContent, 0, size},
		{"last-byte", fmt.Sprintf("bytes=%d-", size-1), http.StatusPartialContent, size - 1, size},
		{"past-end", fmt.Sprintf("bytes=%d-", size), http.StatusRequestedRangeNotSatisfiable, 0, 0},
		{"empty-suffix", "bytes=-0", http.StatusRequestedRangeNotSatisfiable, 0, 0},
		{"backwards-ignored", "bytes=200-100", http.StatusOK, 0, size},
		{"multi-ignored", "bytes=0-1,10-11", http.StatusOK, 0, size},
		{"other-unit-ignored", "chunks=0-100", http.StatusOK, 0, size},
		{"garbage-ignored", "bytes=abc-def", http.StatusOK, 0, size},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body, err := httpGet(t, srv, "ranged", c.header)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.status)
			}
			switch c.status {
			case http.StatusRequestedRangeNotSatisfiable:
				want := fmt.Sprintf("bytes */%d", size)
				if got := resp.Header.Get("Content-Range"); got != want {
					t.Fatalf("Content-Range %q, want %q", got, want)
				}
			case http.StatusPartialContent:
				want := fmt.Sprintf("bytes %d-%d/%d", c.from, c.to-1, size)
				if got := resp.Header.Get("Content-Range"); got != want {
					t.Fatalf("Content-Range %q, want %q", got, want)
				}
				if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(c.to-c.from) {
					t.Fatalf("Content-Length %q, want %d", got, c.to-c.from)
				}
				if !bytes.Equal(body, payload[c.from:c.to]) {
					t.Fatalf("body mismatch: got %d bytes, want payload[%d:%d]", len(body), c.from, c.to)
				}
			default:
				if !bytes.Equal(body, payload) {
					t.Fatalf("ignored range: got %d bytes, want full %d", len(body), size)
				}
			}
		})
	}

	// O(range) on the wire: a one-stripe window must open strictly
	// fewer shards than the full read (exactly k, vs k+spares).
	before := shardGets(tc)
	if resp, _, err := httpGet(t, srv, "ranged", ""); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("full get: %d, %v", resp.StatusCode, err)
	}
	fullGets := shardGets(tc) - before
	before = shardGets(tc)
	if resp, _, err := httpGet(t, srv, "ranged", "bytes=100-199"); err != nil || resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range get: %d, %v", resp.StatusCode, err)
	}
	rangeGets := shardGets(tc) - before
	if rangeGets >= fullGets {
		t.Fatalf("range read opened %d shards, full read %d: range must open strictly fewer", rangeGets, fullGets)
	}
}

// corruptBlock flips one byte inside a specific block of a stored
// shard file — targeted damage at a known stripe, so a test can make
// exactly one stripe of an object undecodable.
func corruptBlock(t *testing.T, tc *testCluster, object string, idx int, stripe int64) {
	t.Helper()
	p, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	tn := tc.node(p[idx].ID)
	path := shardfile.Path(filepath.Join(tn.dir, object), idx)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := shardfile.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	off := int64(h.HeaderSize()) + stripe*h.BlockSize() + 7
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayHTTPTruncationNoErrorProse is the mid-stream-failure
// contract: once payload bytes are on the wire, a decode failure must
// surface as a truncated (aborted) response — never as error text
// appended to object data. The client sees the advertised
// Content-Length, a clean prefix of the object, and a transport error.
func TestGatewayHTTPTruncationNoErrorProse(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 2, 46) // spares=m: no reopen can dodge the damage
	srv := startHTTP(t, tc)
	size := 5 * 64 * 1024
	payload := clusterPayload(46, size)
	if resp := httpPut(t, srv, "trunc", payload); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put: status %d", resp.StatusCode)
	}
	// Stripe 3 loses m+1 blocks: unrecoverable, but only discovered
	// after stripes 0-2 have already been streamed to the client.
	for _, idx := range []int{0, 2, 4} {
		corruptBlock(t, tc, "trunc", idx, 3)
	}

	resp, body, readErr := httpGet(t, srv, "trunc", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (failure is mid-stream)", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Length"); got != strconv.Itoa(size) {
		t.Fatalf("Content-Length %q, want %d", got, size)
	}
	if readErr == nil && len(body) == size {
		t.Fatal("read completed cleanly; want a truncated response")
	}
	if readErr == nil {
		t.Fatalf("got %d of %d bytes with no transport error: truncation must be detectable", len(body), size)
	}
	// Whatever did arrive is object data, byte for byte — no error
	// prose mixed in.
	if !bytes.Equal(body, payload[:len(body)]) {
		t.Fatalf("received %d bytes are not a clean prefix of the object", len(body))
	}
}

// TestParseRangeResolve pins the Range grammar and its resolution
// against an object size, including every reject-and-ignore form.
func TestParseRangeResolve(t *testing.T) {
	const size = 1000
	cases := []struct {
		header      string
		ok          bool  // parses as a usable spec
		off, length int64 // resolved window; length -1 = expect RangeError
	}{
		{"bytes=0-99", true, 0, 100},
		{"bytes=500-", true, 500, 500},
		{"bytes=-200", true, 800, 200},
		{"bytes=-2000", true, 0, 1000},
		{"bytes=999-999", true, 999, 1},
		{"bytes=0-9999", true, 0, 1000},
		{" bytes=1-2", true, 1, 2},
		{"bytes=1000-", true, 0, -1},
		{"bytes=-0", true, 0, -1},
		{"", false, 0, 0},
		{"bytes=", false, 0, 0},
		{"bytes=5-2", false, 0, 0},
		{"bytes=-", false, 0, 0},
		{"bytes=a-b", false, 0, 0},
		{"bytes=0-1,5-6", false, 0, 0},
		{"chunks=0-5", false, 0, 0},
		{"bytes=--5", false, 0, 0},
	}
	for _, c := range cases {
		spec, ok := parseRange(c.header)
		if ok != c.ok {
			t.Errorf("parseRange(%q): ok=%v, want %v", c.header, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		off, length, err := spec.resolve(size)
		if c.length == -1 {
			var re *RangeError
			if !errors.As(err, &re) || re.Size != size {
				t.Errorf("resolve(%q): err %v, want RangeError{%d}", c.header, err, size)
			}
			continue
		}
		if err != nil || off != c.off || length != c.length {
			t.Errorf("resolve(%q) = (%d, %d, %v), want (%d, %d)", c.header, off, length, err, c.off, c.length)
		}
	}
}

// TestClientForUnknownNode pins the typed error for a placement that
// names a node the current map does not know — the case that used to
// be a nil-map-lookup panic.
func TestClientForUnknownNode(t *testing.T) {
	tc := startCluster(t, 4, 2, 2, 0, 47)
	_, err := tc.gw.clientFor(tc.gw.snap(), "ghost")
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err %v, want ErrUnknownNode", err)
	}
	if got := tc.reg.Counter("cluster_unknown_node_total", "",
		obs.Label{Key: "node", Value: "ghost"}).Value(); got != 1 {
		t.Fatalf("cluster_unknown_node_total = %d, want 1", got)
	}
	if cli, err := tc.gw.clientFor(tc.gw.snap(), tc.nodes[0].id); err != nil || cli == nil {
		t.Fatalf("known node: %v", err)
	}
}

// TestGatewayHTTPClusterMap exposes the serving map and its epoch.
func TestGatewayHTTPClusterMap(t *testing.T) {
	tc := startCluster(t, 4, 2, 2, 0, 48)
	srv := startHTTP(t, tc)
	resp, body, err := func() (*http.Response, []byte, error) {
		resp, err := srv.Client().Get(srv.URL + "/v1/cluster/map")
		if err != nil {
			t.Fatal(err)
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b, rerr
	}()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster map: %d, %v", resp.StatusCode, err)
	}
	if !bytes.Contains(body, []byte(`"epoch":0`)) || !bytes.Contains(body, []byte(`"n0"`)) {
		t.Fatalf("cluster map body missing epoch/nodes: %s", body)
	}
}
