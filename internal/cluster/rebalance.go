// Rebalancing: when the cluster map changes, shards do not move by
// themselves — placement is a pure function of the map, so a swapped
// map silently re-homes every object while the bytes stay where the
// old map put them. Rebalance closes that gap: it diffs each object's
// placement under the old and current maps and enqueues one bounded
// migration per moved shard, journaling a durable intent first so a
// crash mid-rebalance converges when the intents are adopted as
// repairs at the new placement.
//
// Migrations ride the repair queue itself, at redundancy m (the best
// possible health), so any genuine repair — an object actually missing
// shards — preempts every migration, and redundancy-0 work preempts
// everything. Each migration is copy-then-delete: the shard is copied
// to its new home as exact shardfile bytes (the destination validates
// it like any upload), and only then removed from the old one, so no
// step of rebalancing ever reduces the number of live copies. Data
// movement is paced by the repairer's shared bandwidth budget.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dialga/internal/node"
	"dialga/internal/obs"
)

// Rebalance diffs every object's placement under old against the
// gateway's current map and enqueues a migration for each shard whose
// home changed. It returns how many migrations it enqueued. Objects
// are discovered from every node in either map, so shards stranded on
// removed nodes are found. Run DrainOnce (or the background Run loop)
// afterwards to execute the queue.
func (r *Repairer) Rebalance(ctx context.Context, old *Map) (int, error) {
	if old == nil {
		return 0, errors.New("cluster: rebalance needs the previous map")
	}
	st := r.gw.snap()
	names, err := r.objectsAcross(ctx, st, old)
	if err != nil {
		return 0, err
	}
	n := r.gw.k + r.gw.m
	moves := 0
	for _, object := range names {
		po, err := old.Place(object, n)
		if err != nil {
			return moves, fmt.Errorf("cluster: rebalance %q under old map: %w", object, err)
		}
		pn, err := st.cmap.Place(object, n)
		if err != nil {
			return moves, fmt.Errorf("cluster: rebalance %q: %w", object, err)
		}
		for i := 0; i < n; i++ {
			if po[i].ID == pn[i].ID {
				continue
			}
			// Journal the move before queueing it: if this process dies
			// before the copy lands, the adopted intent rebuilds the
			// shard at its new home.
			if err := r.gw.intents.Add(object, i); err != nil {
				return moves, err
			}
			if r.enqueueItem(&repairItem{
				repairTask: repairTask{Object: object, Index: i},
				redundancy: r.gw.m,
				migrate:    true,
				srcID:      po[i].ID,
				srcAddr:    po[i].Addr,
			}) {
				moves++
			}
		}
	}
	r.reg.Counter("cluster_rebalance_runs_total",
		"Placement-diff rebalance passes started.").Inc()
	r.reg.Counter("cluster_rebalance_moves_total",
		"Shard migrations enqueued by rebalance passes.").Add(uint64(moves))
	return moves, nil
}

// objectsAcross lists every object any node of either map stores
// shards for — the current members plus transient clients for nodes
// only the old map knows, whose shards still need to move off.
func (r *Repairer) objectsAcross(ctx context.Context, st *mapState, old *Map) ([]string, error) {
	clients := make(map[string]*node.Client, st.cmap.Len())
	for _, info := range st.cmap.Nodes() {
		clients[info.Addr] = st.clients[info.ID]
	}
	for _, info := range old.Nodes() {
		if _, ok := clients[info.Addr]; !ok {
			clients[info.Addr] = r.gw.dial(info.Addr)
		}
	}
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, cli := range clients {
		list, err := cli.WithClass(node.ClassRepair).Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: rebalance scan: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

func (r *Repairer) migrations(result string) *obs.Counter {
	return r.reg.Counter("cluster_migrations_total",
		"Shard migrations completed by rebalancing, by how the shard reached its new home.",
		obs.Label{Key: "result", Value: result})
}

// migrateOne executes one queued migration: move shard it.Index of
// it.Object from its old home to its placement under the current map.
// The happy path is a paced byte copy (the shard travels as exact
// shardfile bytes, validated by the destination); if the source no
// longer has a healthy copy, the shard is rebuilt at its new home by
// a degraded decode instead. Either way the source's copy is removed
// afterwards and the move's durable intent is discharged. A transient
// failure returns an error so DrainOnce requeues the item.
func (r *Repairer) migrateOne(ctx context.Context, it *repairItem) error {
	st := r.gw.snap()
	object, idx := it.Object, it.Index
	placement, err := st.cmap.Place(object, r.gw.k+r.gw.m)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(placement) {
		return fmt.Errorf("cluster: migrate %q shard %d out of range", object, idx)
	}

	// Source: the old home. Reuse the pooled client if the node is
	// still a member at the same address; otherwise dial it directly —
	// a removed node keeps serving its shards until they are drained.
	var src *node.Client
	if cur, ok := st.cmap.Get(it.srcID); ok && cur.Addr == it.srcAddr {
		src = st.clients[it.srcID]
	} else {
		src = r.gw.dial(it.srcAddr)
	}
	src = src.WithClass(node.ClassRepair)

	dstInfo := placement[idx]
	if dstInfo.ID == it.srcID {
		// The map changed again and the shard's home moved back;
		// nothing to move.
		return r.gw.intents.Done(object, idx)
	}
	if err := r.admit(ctx); err != nil {
		return err
	}
	dstCli, err := r.gw.clientFor(st, dstInfo.ID)
	if err != nil {
		return fmt.Errorf("cluster: migrate %q shard %d: %w", object, idx, err)
	}
	dst := dstCli.WithClass(node.ClassRepair)

	// Fast path: a previous attempt already landed the copy (and maybe
	// died before cleanup) — finish the delete and settle the intent.
	if _, err := dst.StatShard(ctx, object, idx); err == nil {
		src.DeleteShard(ctx, object, idx)
		r.migrations("already").Inc()
		return r.gw.intents.Done(object, idx)
	}

	stat, err := src.StatShard(ctx, object, idx)
	switch {
	case errors.Is(err, node.ErrNotFound):
		// The old home has nothing to give; rebuild at the new one.
		return r.migrateByRebuild(ctx, it, src)
	case err != nil && node.Transient(err):
		return fmt.Errorf("cluster: migrate %q shard %d: source %s: %w", object, idx, it.srcID, err)
	case err != nil:
		return r.migrateByRebuild(ctx, it, src)
	}

	// One shard's bytes spend against the same budget repair uses, so
	// rebalance and repair together never exceed the configured rate.
	shardBytes := int64(stat.StripeCount) * int64(stat.ShardSize)
	if err := r.pacer.wait(ctx, shardBytes); err != nil {
		return err
	}

	body, err := src.GetShard(ctx, object, idx)
	if err != nil {
		if node.Transient(err) {
			return fmt.Errorf("cluster: migrate %q shard %d: read %s: %w", object, idx, it.srcID, err)
		}
		return r.migrateByRebuild(ctx, it, src)
	}
	err = dst.PutShard(ctx, object, idx, body)
	body.Close()
	if err != nil {
		if node.Transient(err) {
			return fmt.Errorf("cluster: migrate %q shard %d: write %s: %w", object, idx, dstInfo.ID, err)
		}
		// The destination rejected the bytes (e.g. the source copy is
		// corrupt); a rebuild produces a fresh validated shard.
		return r.migrateByRebuild(ctx, it, src)
	}
	// Copy landed and is validated; only now drop the source's copy.
	// A failed delete strands a harmless extra copy the next scan's
	// drain pass can retry; it never loses data.
	src.DeleteShard(ctx, object, idx)
	r.migrations("copied").Inc()
	r.reg.Counter("cluster_migrate_bytes_total",
		"Shard bytes moved to new homes by rebalancing.").Add(uint64(shardBytes))
	return r.gw.intents.Done(object, idx)
}

// migrateByRebuild converges a migration whose source cannot supply a
// healthy copy: the shard is reconstructed at its new placement from
// the other shards (RepairOne also discharges the durable intent),
// then whatever stale copy the old home still holds is dropped.
func (r *Repairer) migrateByRebuild(ctx context.Context, it *repairItem, src *node.Client) error {
	if err := r.RepairOne(ctx, it.Object, it.Index); err != nil {
		return err
	}
	src.DeleteShard(ctx, it.Object, it.Index)
	r.migrations("rebuilt").Inc()
	return nil
}
