package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// RangeError reports a byte range that cannot be satisfied against an
// object of the given size — the HTTP 416 case. It carries the size
// so the handler can emit the required "Content-Range: bytes */size".
type RangeError struct {
	Size int64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("requested range not satisfiable (object is %d bytes)", e.Size)
}

// rangeSpec is one parsed byte-range request, before resolution
// against the object's size. Non-suffix: bytes start..end inclusive,
// end == -1 meaning to the end of the object. Suffix ("bytes=-n"):
// the final start bytes (start holds n, end is unused).
type rangeSpec struct {
	start  int64
	end    int64
	suffix bool
}

// parseRange parses an HTTP Range header value. It handles exactly
// the shapes the gateway serves — a single "bytes=a-b", "bytes=a-",
// or "bytes=-n" range. Anything else (empty header, other units,
// multiple ranges, malformed values) returns ok=false, which per RFC
// 9110 the server may ignore by serving the full object with 200.
func parseRange(header string) (rangeSpec, bool) {
	header = strings.TrimSpace(header)
	rest, found := strings.CutPrefix(header, "bytes=")
	if !found || strings.Contains(rest, ",") {
		return rangeSpec{}, false
	}
	first, last, dash := strings.Cut(strings.TrimSpace(rest), "-")
	if !dash {
		return rangeSpec{}, false
	}
	if first == "" {
		// Suffix form "-n": the final n bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n < 0 {
			return rangeSpec{}, false
		}
		return rangeSpec{start: n, suffix: true}, true
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return rangeSpec{}, false
	}
	if last == "" {
		return rangeSpec{start: start, end: -1}, true
	}
	end, err := strconv.ParseInt(last, 10, 64)
	if err != nil || end < start {
		return rangeSpec{}, false
	}
	return rangeSpec{start: start, end: end}, true
}

// resolve maps the spec onto an object of the given size, returning
// the absolute byte window [off, off+length). Unsatisfiable specs —
// start at or past the end, a zero-byte suffix, any range of an empty
// object — return a *RangeError.
func (s rangeSpec) resolve(size int64) (off, length int64, err error) {
	if s.suffix {
		n := s.start
		if n == 0 || size == 0 {
			return 0, 0, &RangeError{Size: size}
		}
		if n > size {
			n = size
		}
		return size - n, n, nil
	}
	if s.start >= size {
		return 0, 0, &RangeError{Size: size}
	}
	end := s.end
	if end < 0 || end >= size {
		end = size - 1
	}
	return s.start, end - s.start + 1, nil
}
