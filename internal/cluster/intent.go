package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dialga/internal/obs"
)

// An Intent records one shard the gateway acknowledged an object
// without: the put reached its write quorum, but this shard's upload
// failed, so the durability the client was promised is short one unit
// of redundancy until repair rebuilds it.
type Intent struct {
	Object string `json:"object"`
	Index  int    `json:"index"`
}

func (in Intent) key() string { return fmt.Sprintf("%s/%d", in.Object, in.Index) }

// intentRecord is one log entry: an intent being opened ("add") or
// discharged ("done").
type intentRecord struct {
	Op     string `json:"op"` // "add" | "done"
	Object string `json:"object"`
	Index  int    `json:"index"`
}

var intentCRC = crc32.MakeTable(crc32.Castagnoli)

// IntentLog is a durable, append-only journal of write intents. Every
// record is framed as [u32 payload length][u32 CRC-32C][JSON payload]
// and fsynced before the append returns, so an intent logged before
// the gateway acknowledges a quorum put survives a gateway crash; on
// reopen, Pending replays the log and hands the survivors to the
// repair queue. A torn tail — the frame a crash cut mid-write — is
// detected by the length/CRC framing and truncated away, exactly like
// the node store's recovery scan: every record the replay reports was
// written completely.
//
// The log compacts itself (rewrite-and-rename with only the open
// intents) once discharged records dominate, so it stays proportional
// to the number of outstanding intents rather than the write history.
//
// A nil *IntentLog is a valid no-op log: Add, Done, and Close succeed,
// Pending is empty. The gateway runs without durability bookkeeping
// unless one is configured. Safe for concurrent use.
type IntentLog struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	open    map[string]Intent // outstanding intents by key
	dead    int               // discharged records still occupying the file
	pending *obs.Gauge        // cluster_intents_pending
	logged  *obs.Counter      // cluster_intents_logged_total
	done    *obs.Counter      // cluster_intents_resolved_total
	replay  *obs.Counter      // cluster_intents_recovered_total
}

// compactSlack is how many discharged records may accumulate before an
// append triggers compaction.
const compactSlack = 256

// OpenIntentLog opens (creating if needed) the intent journal at path,
// replaying any existing records. Intents that were logged but never
// discharged are immediately visible via Pending. A non-nil reg
// receives the log's cluster_intents_* series.
func OpenIntentLog(path string, reg *obs.Registry) (*IntentLog, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	l := &IntentLog{
		path: path,
		open: make(map[string]Intent),
		pending: reg.Gauge("cluster_intents_pending",
			"Write intents logged but not yet discharged by repair."),
		logged: reg.Counter("cluster_intents_logged_total",
			"Write intents journaled for shards missing at ack time."),
		done: reg.Counter("cluster_intents_resolved_total",
			"Write intents discharged after the shard was rebuilt."),
		replay: reg.Counter("cluster_intents_recovered_total",
			"Write intents recovered from the journal at startup."),
	}
	valid, err := l.replayFile()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail, if any, so appends start at a clean frame.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.replay.Add(uint64(len(l.open)))
	l.pending.Set(float64(len(l.open)))
	return l, nil
}

// replayFile reads every complete record from the journal into l.open
// and returns the byte offset of the last valid frame's end. A missing
// file replays as empty.
func (l *IntentLog) replayFile() (int64, error) {
	b, err := os.ReadFile(l.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var off int64
	for int64(len(b))-off >= 8 {
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n == 0 || n > 1<<20 || int64(len(b))-off-8 < int64(n) {
			break // torn or garbage tail
		}
		payload := b[off+8 : off+8+int64(n)]
		if crc32.Checksum(payload, intentCRC) != sum {
			break
		}
		var rec intentRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		in := Intent{Object: rec.Object, Index: rec.Index}
		switch rec.Op {
		case "add":
			l.open[in.key()] = in
		case "done":
			if _, ok := l.open[in.key()]; ok {
				delete(l.open, in.key())
				l.dead += 2 // the add and the done are both settled
			}
		}
		off += 8 + int64(n)
	}
	return off, nil
}

// Add journals an intent: the shard at (object, index) was not written
// even though the put was acknowledged. The record is durable (synced)
// when Add returns. Re-adding an open intent is a no-op.
func (l *IntentLog) Add(object string, index int) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	in := Intent{Object: object, Index: index}
	if _, ok := l.open[in.key()]; ok {
		return nil
	}
	if err := l.append(intentRecord{Op: "add", Object: object, Index: index}); err != nil {
		return err
	}
	l.open[in.key()] = in
	l.logged.Inc()
	l.pending.Set(float64(len(l.open)))
	return nil
}

// Done discharges an intent after the shard exists again (repair
// rebuilt it, or a later full-width put overwrote the object).
// Discharging an unknown intent is a no-op.
func (l *IntentLog) Done(object string, index int) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	in := Intent{Object: object, Index: index}
	if _, ok := l.open[in.key()]; !ok {
		return nil
	}
	if err := l.append(intentRecord{Op: "done", Object: object, Index: index}); err != nil {
		return err
	}
	delete(l.open, in.key())
	l.dead += 2
	l.done.Inc()
	l.pending.Set(float64(len(l.open)))
	if l.dead >= compactSlack {
		return l.compactLocked()
	}
	return nil
}

// Pending snapshots the outstanding intents, ordered by object then
// index so replay into the repair queue is deterministic.
func (l *IntentLog) Pending() []Intent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Intent, 0, len(l.open))
	for _, in := range l.open {
		out = append(out, in)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Compact rewrites the journal with only the open intents.
func (l *IntentLog) Compact() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *IntentLog) compactLocked() error {
	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	for _, in := range l.open {
		if _, err := f.Write(frame(intentRecord{Op: "add", Object: in.Object, Index: in.Index})); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return err
	}
	old := l.f
	nf, err := os.OpenFile(l.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.dead = nf, 0
	return old.Close()
}

// Close flushes and closes the journal. The file stays on disk for the
// next open to replay.
func (l *IntentLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func (l *IntentLog) append(rec intentRecord) error {
	if l.f == nil {
		return fmt.Errorf("cluster: intent log %s is closed", l.path)
	}
	if _, err := l.f.Write(frame(rec)); err != nil {
		return err
	}
	return l.f.Sync()
}

// frame serializes one record with its length/CRC-32C header.
func frame(rec intentRecord) []byte {
	payload, _ := json.Marshal(rec) // a struct of string+int cannot fail
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, intentCRC))
	copy(b[8:], payload)
	return b
}
