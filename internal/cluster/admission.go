package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
)

// Rate configures one traffic class's token bucket: a steady refill
// rate and a burst ceiling. The zero Rate means "unmetered".
type Rate struct {
	// PerSecond is the sustained admission rate in tokens per second.
	PerSecond float64
	// Burst is the bucket capacity: how many tokens can accumulate
	// while the class is idle (and so how far it can exceed PerSecond
	// momentarily). Defaults to PerSecond when zero.
	Burst float64
}

// bucket is one class's token bucket. Guarded by Limiter.mu.
type bucket struct {
	rate   Rate
	tokens float64
	last   time.Time
}

// Limiter is token-bucket admission control keyed by traffic class. A
// node installs one as its node.Admitter so foreground and repair
// traffic drain separate buckets: however deep the repair backlog, the
// repair class can never consume foreground's tokens, and a starved
// repair bucket merely slows reconstruction. Classes without a
// configured Rate are admitted immediately. Admit blocks (it is
// pacing, not rejection); node.Server turns a context-expired Admit
// into 429, and the repair queue simply proceeds at the paced rate.
type Limiter struct {
	mu      sync.Mutex
	classes map[string]*bucket

	reg *obs.Registry
	now func() time.Time // test hook
}

var _ node.Admitter = (*Limiter)(nil)

// NewLimiter builds a limiter from per-class rates. Classes absent
// from rates (and classes with a zero Rate) are unmetered.
func NewLimiter(rates map[string]Rate, reg *obs.Registry) *Limiter {
	l := &Limiter{classes: make(map[string]*bucket, len(rates)), reg: reg, now: time.Now}
	for class, r := range rates {
		if r.PerSecond <= 0 {
			continue
		}
		if r.Burst <= 0 {
			r.Burst = r.PerSecond
		}
		l.classes[class] = &bucket{rate: r, tokens: r.Burst}
	}
	return l
}

// Admit blocks until the class's bucket covers cost tokens or ctx
// ends. Costs larger than the bucket's burst capacity can never be
// covered and fail immediately.
func (l *Limiter) Admit(ctx context.Context, class string, cost float64) error {
	for {
		wait, err := l.take(class, cost)
		if err != nil {
			return err
		}
		if wait <= 0 {
			l.reg.Counter("cluster_admitted_total",
				"Admission-control grants, by traffic class.",
				obs.Label{Key: "class", Value: class}).Inc()
			return nil
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// TryAdmit is the non-blocking variant: it takes cost tokens if the
// bucket covers them right now and reports whether it did.
func (l *Limiter) TryAdmit(class string, cost float64) bool {
	wait, err := l.take(class, cost)
	if err != nil || wait > 0 {
		return false
	}
	l.reg.Counter("cluster_admitted_total",
		"Admission-control grants, by traffic class.",
		obs.Label{Key: "class", Value: class}).Inc()
	return true
}

// take refills the class's bucket and either deducts cost (returning
// wait 0) or returns how long until the bucket could cover it.
func (l *Limiter) take(class string, cost float64) (time.Duration, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.classes[class]
	if b == nil {
		return 0, nil // unmetered class
	}
	if cost > b.rate.Burst {
		return 0, fmt.Errorf("cluster: admission cost %.1f exceeds %s burst %.1f", cost, class, b.rate.Burst)
	}
	now := l.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate.PerSecond
		if b.tokens > b.rate.Burst {
			b.tokens = b.rate.Burst
		}
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, nil
	}
	wait := time.Duration((cost - b.tokens) / b.rate.PerSecond * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, nil
}
