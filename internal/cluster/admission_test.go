package cluster

import (
	"context"
	"testing"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
)

// fakeClock drives a Limiter without real sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time               { return c.t }
func (c *fakeClock) advance(d time.Duration)      { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                    { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(l *Limiter, c *fakeClock) *Limiter { l.now = c.now; return l }

func TestLimiterBurstAndRefill(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	lim := withClock(NewLimiter(map[string]Rate{
		node.ClassRepair: {PerSecond: 10, Burst: 3},
	}, reg), clock)

	// The burst drains, then the class is paced.
	for i := 0; i < 3; i++ {
		if !lim.TryAdmit(node.ClassRepair, 1) {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("admitted past burst")
	}
	// 100ms at 10/s refills exactly one token.
	clock.advance(100 * time.Millisecond)
	if !lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("refilled token denied")
	}
	if lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("second token admitted without refill")
	}
	// Idle refill caps at the burst.
	clock.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !lim.TryAdmit(node.ClassRepair, 1) {
			t.Fatalf("post-idle token %d denied", i)
		}
	}
	if lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("idle refill exceeded burst")
	}
	if got := reg.Counter("cluster_admitted_total", "",
		obs.Label{Key: "class", Value: node.ClassRepair}).Value(); got != 7 {
		t.Fatalf("cluster_admitted_total = %d, want 7", got)
	}
}

func TestLimiterClassesAreIndependent(t *testing.T) {
	clock := newFakeClock()
	lim := withClock(NewLimiter(map[string]Rate{
		node.ClassForeground: {PerSecond: 100, Burst: 5},
		node.ClassRepair:     {PerSecond: 1, Burst: 1},
	}, obs.NewRegistry()), clock)

	// Exhaust repair entirely; foreground must be untouched.
	if !lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("repair burst denied")
	}
	if lim.TryAdmit(node.ClassRepair, 1) {
		t.Fatal("repair over-admitted")
	}
	for i := 0; i < 5; i++ {
		if !lim.TryAdmit(node.ClassForeground, 1) {
			t.Fatalf("foreground token %d denied while repair starved", i)
		}
	}
}

func TestLimiterUnmeteredClass(t *testing.T) {
	lim := NewLimiter(map[string]Rate{node.ClassRepair: {PerSecond: 1}}, nil)
	for i := 0; i < 100; i++ {
		if err := lim.Admit(context.Background(), "unmetered", 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdmitBlocksUntilContextEnds(t *testing.T) {
	lim := NewLimiter(map[string]Rate{
		node.ClassRepair: {PerSecond: 0.001, Burst: 1},
	}, nil)
	if err := lim.Admit(context.Background(), node.ClassRepair, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := lim.Admit(ctx, node.ClassRepair, 1)
	if err != context.DeadlineExceeded {
		t.Fatalf("Admit on drained bucket = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("Admit returned before the context deadline")
	}
}

func TestAdmitRejectsCostAboveBurst(t *testing.T) {
	lim := NewLimiter(map[string]Rate{node.ClassRepair: {PerSecond: 10, Burst: 2}}, nil)
	if err := lim.Admit(context.Background(), node.ClassRepair, 5); err == nil {
		t.Fatal("cost above burst must fail fast, not block forever")
	}
}
