package cluster

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
)

// TestRepairQueuePriorityOrder: tasks pop lowest-redundancy first,
// FIFO within a level, and re-enqueueing can only raise urgency.
func TestRepairQueuePriorityOrder(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 21)
	r := NewRepairer(tc.gw, nil, tc.reg)

	r.enqueue(repairTask{Object: "healthy-ish", Index: 0}, 1, 0)
	r.enqueue(repairTask{Object: "critical", Index: 3}, 0, 0)
	r.enqueue(repairTask{Object: "healthy-ish", Index: 1}, 1, 0)
	r.enqueue(repairTask{Object: "critical-2", Index: 2}, 0, 0)
	// Already-queued task discovered again at lower redundancy climbs.
	r.enqueue(repairTask{Object: "healthy-ish", Index: 1}, 0, 0)

	if g := tc.reg.Gauge("cluster_repair_queue_priority", "",
		obs.Label{Key: "redundancy", Value: "0"}).Value(); g != 3 {
		t.Fatalf("priority-0 depth = %v, want 3", g)
	}
	if g := tc.reg.Gauge("cluster_repair_queue_priority", "",
		obs.Label{Key: "redundancy", Value: "1"}).Value(); g != 1 {
		t.Fatalf("priority-1 depth = %v, want 1", g)
	}

	want := []repairTask{
		{Object: "critical", Index: 3},    // redundancy 0, first in
		{Object: "healthy-ish", Index: 1}, // promoted to 0, keeps its older seq
		{Object: "critical-2", Index: 2},  // redundancy 0, newest
		{Object: "healthy-ish", Index: 0}, // redundancy 1
	}
	for i, w := range want {
		it, ok := r.pop()
		if !ok || it.repairTask != w {
			t.Fatalf("pop %d = %+v (ok=%v), want %v", i, it, ok, w)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("queue not empty")
	}
	if g := tc.reg.Gauge("cluster_repair_queue", "").Value(); g != 0 {
		t.Fatalf("total depth after drain = %v", g)
	}
}

// TestRepairAttemptCap: a task whose rebuild cannot succeed is retried
// MaxAttempts times, counted, then dropped — never stranded in the
// dedup map, never spinning forever.
func TestRepairAttemptCap(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 23)
	r := NewRepairerOpts(tc.gw, nil, tc.reg, RepairerOptions{MaxAttempts: 3})
	ctx := context.Background()

	// No such object anywhere: every rebuild fails to open sources.
	if !r.Enqueue("phantom", 0) {
		t.Fatal("enqueue")
	}
	totalFailed := 0
	for pass := 0; pass < 10 && r.Pending() > 0; pass++ {
		_, failed := r.DrainOnce(ctx)
		totalFailed += failed
	}
	if r.Pending() != 0 {
		t.Fatalf("task still queued after cap: pending=%d", r.Pending())
	}
	if totalFailed != 3 {
		t.Fatalf("failed attempts = %d, want 3", totalFailed)
	}
	if v := tc.reg.Counter("cluster_repair_failures_total", "").Value(); v != 3 {
		t.Fatalf("cluster_repair_failures_total = %d, want 3", v)
	}
	if v := tc.reg.Counter("cluster_repair_dropped_total", "").Value(); v != 1 {
		t.Fatalf("cluster_repair_dropped_total = %d, want 1", v)
	}
	// The dedup map let go of the key: the task can be found again.
	if !r.Enqueue("phantom", 0) {
		t.Fatal("dropped task could not be re-enqueued")
	}
}

// TestRepairAdoptsIntents: a degraded quorum put's journaled intent is
// adopted into the queue at startup, repaired, and discharged.
func TestRepairAdoptsIntents(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "intents.log")
	log, err := OpenIntentLog(logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := startClusterOpts(t, 6, 4, 2, 0, 29, func(o *GatewayOptions) {
		o.WriteQuorum = 5
		o.PutBackoff = 2 * time.Millisecond
		o.Intents = log
	})
	ctx := context.Background()

	const object = "owed"
	payload := clusterPayload(61, 150_000)
	place, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	tc.node(place[4].ID).stop()
	if _, err := tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// "Restart": reopen the journal, adopt, bring the node back, drain.
	log2, err := OpenIntentLog(logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	tc.gw.intents = log2
	tc.node(place[4].ID).start()

	r := NewRepairer(tc.gw, nil, tc.reg)
	if n := r.AdoptIntents(); n != 1 {
		t.Fatalf("adopted %d intents, want 1", n)
	}
	repaired, failed := r.DrainOnce(ctx)
	if repaired != 1 || failed != 0 {
		t.Fatalf("repaired=%d failed=%d, want 1/0", repaired, failed)
	}
	if got := log2.Pending(); len(got) != 0 {
		t.Fatalf("intents after repair = %v, want none", got)
	}
	cli, _ := tc.gw.Client(place[4].ID)
	if st, err := cli.StatShard(ctx, object, 4); err != nil || int(st.Index) != 4 {
		t.Fatalf("rebuilt shard: %+v, %v", st, err)
	}
	tc.mustGet(ctx, object, payload)
}

// TestRepairBandwidthBudget: with a budget of one object per ~50ms,
// three rebuilds must take at least ~100ms (first is free).
func TestRepairBandwidthBudget(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 31)
	ctx := context.Background()

	const objSize = 50_000
	payloads := map[string][]byte{}
	for _, name := range []string{"bw-0", "bw-1", "bw-2"} {
		payloads[name] = clusterPayload(71, objSize)
		if _, err := tc.gw.PutObject(ctx, name, bytes.NewReader(payloads[name]), objSize, node.ClassForeground); err != nil {
			t.Fatal(err)
		}
		place, _ := tc.gw.Place(name)
		cli, _ := tc.gw.Client(place[2].ID)
		if err := cli.DeleteShard(ctx, name, 2); err != nil {
			t.Fatal(err)
		}
	}

	// objSize bytes per 50ms.
	r := NewRepairerOpts(tc.gw, nil, tc.reg, RepairerOptions{Bandwidth: objSize * 20})
	if _, err := r.ScanOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", r.Pending())
	}
	start := time.Now()
	repaired, failed := r.DrainOnce(ctx)
	elapsed := time.Since(start)
	if repaired != 3 || failed != 0 {
		t.Fatalf("repaired=%d failed=%d", repaired, failed)
	}
	if elapsed < 80*time.Millisecond {
		t.Fatalf("3 paced rebuilds finished in %v; budget not applied", elapsed)
	}
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}
}

// TestScanSetsRedundancyMin: the scan publishes the lowest live-shard
// count it saw, and prioritizes the weakest object's shards first.
func TestScanSetsRedundancyMin(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 37)
	ctx := context.Background()

	const objSize = 60_000
	for _, name := range []string{"strong", "weak"} {
		if _, err := tc.gw.PutObject(ctx, name, bytes.NewReader(clusterPayload(83, objSize)), objSize, node.ClassForeground); err != nil {
			t.Fatal(err)
		}
	}
	// strong loses one shard (live 5), weak loses two (live 4).
	del := func(name string, idx int) {
		place, _ := tc.gw.Place(name)
		cli, _ := tc.gw.Client(place[idx].ID)
		if err := cli.DeleteShard(ctx, name, idx); err != nil {
			t.Fatal(err)
		}
	}
	del("strong", 1)
	del("weak", 0)
	del("weak", 3)

	r := NewRepairer(tc.gw, nil, tc.reg)
	if _, err := r.ScanOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if g := tc.reg.Gauge("cluster_redundancy_min", "").Value(); g != 4 {
		t.Fatalf("cluster_redundancy_min = %v, want 4", g)
	}
	// Both weak shards (redundancy 0) pop before strong's (redundancy 1).
	first, _ := r.pop()
	second, _ := r.pop()
	third, _ := r.pop()
	if first.Object != "weak" || second.Object != "weak" || third.Object != "strong" {
		t.Fatalf("pop order %s, %s, %s; want weak, weak, strong",
			first.Object, second.Object, third.Object)
	}
}
