package cluster

import (
	"bytes"
	"container/heap"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/stream"
)

// repairTask names one damaged shard: rebuild shard Index of Object.
type repairTask struct {
	Object string
	Index  int
}

func (t repairTask) key() string { return t.Object + "/" + strconv.Itoa(t.Index) }

// repairItem is a queued task with its scheduling state. redundancy is
// the object's remaining parity headroom (live shards minus K) when
// the task was enqueued: an object one shard from unreadable sorts
// before one that can still lose a node, because the cost of being
// wrong about the ordering is data loss on one side and latency on the
// other. seq breaks ties FIFO so same-priority work is not starved.
//
// A migration item (migrate set) moves a healthy shard from src — its
// home under a previous map — to the object's placement under the
// current map. Migrations ride the same heap at redundancy m, so any
// genuine repair (redundancy < m) preempts rebalancing, and within a
// priority level repairs still go first.
type repairItem struct {
	repairTask
	redundancy int
	attempts   int
	seq        uint64
	pos        int // index in the heap, maintained by the heap interface

	migrate bool
	srcID   NodeID // node holding the shard under the old map
	srcAddr string // its address (the node may be gone from the current map)
}

type repairHeap []*repairItem

func (h repairHeap) Len() int { return len(h) }
func (h repairHeap) Less(i, j int) bool {
	if h[i].redundancy != h[j].redundancy {
		return h[i].redundancy < h[j].redundancy
	}
	if h[i].migrate != h[j].migrate {
		return !h[i].migrate // repair before rebalance at equal urgency
	}
	return h[i].seq < h[j].seq
}
func (h repairHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}
func (h *repairHeap) Push(x any) {
	it := x.(*repairItem)
	it.pos = len(*h)
	*h = append(*h, it)
}
func (h *repairHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// RepairerOptions tunes the repair queue's scheduling.
type RepairerOptions struct {
	// MaxAttempts is how many rebuild attempts a task gets before it is
	// dropped (a later scan re-discovers the shard and starts fresh, so
	// a drop bounds queue churn, not durability). Default 5.
	MaxAttempts int
	// Bandwidth caps repair's data movement in object bytes per second
	// across the whole queue — each rebuild decodes one object, so an
	// object's FileSize is the unit of spend. Zero leaves repair
	// unpaced (the admission limiter still applies per request).
	Bandwidth int64
}

// Repairer is the background repair queue: it scrubs every placed
// shard of every object in the cluster (reusing the same shardfile
// scrub that dialga-inspect -verify runs locally), queues the damaged
// and missing ones, and rebuilds each by a degraded streaming decode
// of the surviving shards piped straight back through the encoder —
// only the damaged shard's output is kept, so repair moves O(object)
// bytes but writes only the one shard.
//
// The queue is a priority queue ordered by remaining redundancy:
// objects at redundancy zero (one more loss and they are unreadable)
// rebuild before objects that still have parity headroom, FIFO within
// a priority. Failed rebuilds are retried with a capped attempt
// counter, and the queue seeds itself from the gateway's durable
// write-intent journal at startup (AdoptIntents), so shards owed by
// quorum writes survive a gateway crash and restart.
//
// All repair traffic — scrub probes, source reads, the rebuilt-shard
// write — is tagged node.ClassRepair and paced by the limiter's repair
// bucket at both ends, plus an optional global bandwidth budget, so
// however deep the damage backlog is, foreground reads keep their own
// token budget and their own node capacity.
type Repairer struct {
	gw          *Gateway
	lim         *Limiter
	reg         *obs.Registry
	maxAttempts int
	pacer       *bwPacer

	mu     sync.Mutex
	heap   repairHeap
	queued map[string]*repairItem
	seq    uint64
}

// NewRepairer wires a repair queue over the gateway's cluster view
// with default scheduling. lim may be nil (unpaced); reg may be nil
// (unmetered).
func NewRepairer(gw *Gateway, lim *Limiter, reg *obs.Registry) *Repairer {
	return NewRepairerOpts(gw, lim, reg, RepairerOptions{})
}

// NewRepairerOpts is NewRepairer with explicit scheduling options.
func NewRepairerOpts(gw *Gateway, lim *Limiter, reg *obs.Registry, opts RepairerOptions) *Repairer {
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 5
	}
	var pacer *bwPacer
	if opts.Bandwidth > 0 {
		pacer = &bwPacer{rate: float64(opts.Bandwidth)}
	}
	return &Repairer{
		gw: gw, lim: lim, reg: reg,
		maxAttempts: maxAttempts,
		pacer:       pacer,
		queued:      make(map[string]*repairItem),
	}
}

// Pending returns the number of queued repair tasks.
func (r *Repairer) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.heap)
}

// Enqueue queues shard idx of object for rebuild at the most urgent
// single-loss priority the caller can assert without a scan (the
// object is down at least this one shard). It reports whether the
// task was new; re-enqueueing an existing task can only raise its
// urgency, never reset its attempt count.
func (r *Repairer) Enqueue(object string, idx int) bool {
	red := r.gw.m - 1
	if red < 0 {
		red = 0
	}
	return r.enqueue(repairTask{Object: object, Index: idx}, red, 0)
}

// enqueue adds or re-prioritizes a task. A task already queued keeps
// its attempt count and takes the lower (more urgent) redundancy.
func (r *Repairer) enqueue(t repairTask, redundancy, attempts int) bool {
	return r.enqueueItem(&repairItem{repairTask: t, redundancy: redundancy, attempts: attempts})
}

// enqueueItem adds or re-prioritizes a task, preserving the incoming
// item's kind (repair vs migration) and source when it is new. A slot
// already queued only gets more urgent: it takes the lower redundancy
// and keeps its attempt count. A queued migration is not demoted to a
// rebuild by a later repair enqueue for the same slot — the copy is
// cheaper, and migrateOne falls back to rebuilding if its source is
// gone.
func (r *Repairer) enqueueItem(it *repairItem) bool {
	if it.redundancy < 0 {
		it.redundancy = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.queued[it.key()]; ok {
		if it.redundancy < cur.redundancy {
			cur.redundancy = it.redundancy
			heap.Fix(&r.heap, cur.pos)
			r.updateGaugesLocked()
		}
		return false
	}
	r.seq++
	it.seq = r.seq
	r.queued[it.key()] = it
	heap.Push(&r.heap, it)
	r.updateGaugesLocked()
	return true
}

// pop takes the most urgent task off the queue.
func (r *Repairer) pop() (*repairItem, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) == 0 {
		return nil, false
	}
	it := heap.Pop(&r.heap).(*repairItem)
	delete(r.queued, it.key())
	r.updateGaugesLocked()
	return it, true
}

// updateGaugesLocked refreshes the queue-depth gauges: the total, and
// one series per redundancy level so dashboards can see whether the
// backlog is annoying (redundancy m-1) or dangerous (redundancy 0).
func (r *Repairer) updateGaugesLocked() {
	counts := make(map[int]int)
	repairs, migrations := 0, 0
	for _, it := range r.heap {
		counts[it.redundancy]++
		if it.migrate {
			migrations++
		} else {
			repairs++
		}
	}
	r.reg.Gauge("cluster_repair_queue",
		"Damaged shards currently queued for rebuild.").Set(float64(repairs))
	r.reg.Gauge("cluster_rebalance_queue",
		"Shard migrations currently queued by rebalancing.").Set(float64(migrations))
	for red := 0; red <= r.gw.m; red++ {
		r.reg.Gauge("cluster_repair_queue_priority",
			"Damaged shards queued for rebuild, by the object's remaining redundancy.",
			obs.Label{Key: "redundancy", Value: strconv.Itoa(red)}).Set(float64(counts[red]))
	}
}

// AdoptIntents seeds the queue from the gateway's durable write-intent
// journal: every shard a quorum put acknowledged without is queued for
// rebuild. Run it once at startup, after OpenIntentLog replayed the
// journal, to resume the repairs a crashed gateway still owed. It
// returns how many tasks it queued.
func (r *Repairer) AdoptIntents() int {
	n := 0
	for _, in := range r.gw.intents.Pending() {
		if r.Enqueue(in.Object, in.Index) {
			n++
		}
	}
	return n
}

// admit paces one repair-class operation through the limiter.
func (r *Repairer) admit(ctx context.Context) error {
	if r.lim == nil {
		return nil
	}
	return r.lim.Admit(ctx, node.ClassRepair, 1)
}

// objects lists every object any node stores shards for, over
// repair-class requests.
func (r *Repairer) objects(ctx context.Context) ([]string, error) {
	st := r.gw.snap()
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, info := range st.cmap.Nodes() {
		list, err := st.clients[info.ID].WithClass(node.ClassRepair).Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: repair scan: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

// ScanOnce scrubs every placed shard of every object, enqueues the
// damaged ones at a priority reflecting the object's remaining
// redundancy, and publishes cluster_redundancy_min — the lowest live
// shard count across everything it scanned. It returns how many new
// tasks it queued. A shard whose node answers 404 is missing
// (enqueued); a shard whose node is unreachable is skipped — under the
// persistent-memory fault model the node's shards survive it, so
// rebuilding them elsewhere while the node is down would churn data
// that will reappear.
func (r *Repairer) ScanOnce(ctx context.Context) (int, error) {
	names, err := r.objects(ctx)
	if err != nil {
		return 0, err
	}
	st := r.gw.snap()
	enqueued := 0
	n := r.gw.k + r.gw.m
	minLive := n
	for _, object := range names {
		placement, err := st.cmap.Place(object, n)
		if err != nil {
			return enqueued, err
		}
		var damaged []int
		for idx, info := range placement {
			if err := r.admit(ctx); err != nil {
				return enqueued, err
			}
			cli, cerr := r.gw.clientFor(st, info.ID)
			if cerr != nil {
				r.reg.Counter("cluster_scrub_unreachable_total",
					"Placed shards the repair scan could not probe (node down).").Inc()
				continue
			}
			status, err := cli.WithClass(node.ClassRepair).ScrubShard(ctx, object, idx)
			switch {
			case errors.Is(err, node.ErrNotFound):
				r.reg.Counter("cluster_scrub_damaged_total",
					"Placed shards found damaged by repair scans, by kind.",
					obs.Label{Key: "status", Value: "missing"}).Inc()
				damaged = append(damaged, idx)
			case err != nil:
				r.reg.Counter("cluster_scrub_unreachable_total",
					"Placed shards the repair scan could not probe (node down).").Inc()
			case status.Damaged:
				r.reg.Counter("cluster_scrub_damaged_total",
					"Placed shards found damaged by repair scans, by kind.",
					obs.Label{Key: "status", Value: status.Status}).Inc()
				damaged = append(damaged, idx)
			default:
				r.reg.Counter("cluster_scrub_ok_total",
					"Placed shards that passed a repair-scan scrub.").Inc()
			}
		}
		live := n - len(damaged)
		if live < minLive {
			minLive = live
		}
		for _, idx := range damaged {
			if r.enqueue(repairTask{Object: object, Index: idx}, live-r.gw.k, 0) {
				enqueued++
			}
		}
	}
	r.reg.Gauge("cluster_redundancy_min",
		"Lowest live-shard count across all objects at the last repair scan.").
		Set(float64(minLive))
	return enqueued, nil
}

// RepairOne rebuilds one damaged shard: a degraded streaming decode of
// the surviving shards is piped straight into a re-encode whose output
// is discarded for every shard but the damaged one, which streams to
// its placed node as a fresh validated shardfile. A successful rebuild
// discharges the shard's durable write intent, if one is journaled.
func (r *Repairer) RepairOne(ctx context.Context, object string, idx int) error {
	st := r.gw.snap()
	placement, err := st.cmap.Place(object, r.gw.k+r.gw.m)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(placement) {
		return fmt.Errorf("cluster: repair %q shard %d out of range", object, idx)
	}
	if err := r.admit(ctx); err != nil {
		return err
	}
	dst, err := r.gw.clientFor(st, placement[idx].ID)
	if err != nil {
		return fmt.Errorf("cluster: repair %q shard %d: %w", object, idx, err)
	}
	set, err := r.gw.open(ctx, st, object, placement, node.ClassRepair, r.gw.spares, idx, 0, -1)
	if err != nil {
		return fmt.Errorf("cluster: repair %q shard %d: %w", object, idx, err)
	}

	h := set.header
	h.Index = uint32(idx)
	stripeSize := int(h.ShardSize) * r.gw.k

	// Spend this object's bytes against the global repair budget
	// before moving them.
	if err := r.pacer.wait(ctx, int64(h.FileSize)); err != nil {
		for _, rd := range set.readers {
			if c, ok := rd.(io.Closer); ok {
				c.Close()
			}
		}
		return err
	}

	decOpts := r.gw.streamOptions()
	decOpts.StripeSize = stripeSize
	decOpts.Checksum = h.Algo.Stream()
	decOpts.CloseReaders = true
	// Repair is background work that may already be at the decode
	// limit (every spare block can be load-bearing); hedging a slow
	// shard into an erasure here trades correctness margin for latency
	// nobody is waiting on. Read every block.
	decOpts.HedgeAfter = 0
	dec, err := stream.NewDecoder(decOpts)
	if err != nil {
		return err
	}
	encOpts := r.gw.streamOptions()
	encOpts.StripeSize = stripeSize
	encOpts.Checksum = h.Algo.Stream()
	enc, err := stream.NewEncoder(encOpts)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// decode -> object bytes -> re-encode; one rebuilt shard survives.
	objR, objW := io.Pipe()
	go func() {
		objW.CloseWithError(dec.Decode(ctx, set.readers, objW, int64(h.FileSize)))
	}()

	shardR, shardW := io.Pipe()
	writers := make([]io.Writer, r.gw.k+r.gw.m)
	for i := range writers {
		writers[i] = io.Discard
	}
	writers[idx] = shardW

	putErr := make(chan error, 1)
	go func() {
		body := io.MultiReader(bytes.NewReader(h.Marshal()), shardR)
		err := dst.WithClass(node.ClassRepair).PutShard(ctx, object, idx, body)
		if err != nil {
			shardR.CloseWithError(err)
			cancel()
		} else {
			shardR.Close()
		}
		putErr <- err
	}()

	encErr := enc.Encode(ctx, objR, writers)
	shardW.CloseWithError(encErr)
	objR.CloseWithError(encErr) // unblock the decoder if encode quit first
	if err := <-putErr; err != nil {
		return fmt.Errorf("cluster: repair %q shard %d: upload: %w", object, idx, err)
	}
	if encErr != nil {
		return fmt.Errorf("cluster: repair %q shard %d: %w", object, idx, encErr)
	}
	r.reg.Counter("cluster_repair_bytes_total",
		"Bytes of rebuilt shard data written by the repair queue.").
		Add(uint64(h.ExpectedFileSize()))
	// The shard exists again; whatever a degraded put still owed for
	// this slot is settled.
	r.gw.intents.Done(object, idx)
	return nil
}

// DrainOnce works the queue until it is empty or ctx ends, returning
// how many tasks (repairs and migrations) succeeded and failed. A
// failed task is re-queued (its nodes may be back next pass) with its
// attempt counter bumped, until MaxAttempts; after that it is dropped
// — a later scan that still finds the shard damaged starts it over
// with a fresh budget.
func (r *Repairer) DrainOnce(ctx context.Context) (repaired, failed int) {
	var requeue []*repairItem
	for {
		it, ok := r.pop()
		if !ok {
			break
		}
		var err error
		if it.migrate {
			err = r.migrateOne(ctx, it)
		} else {
			err = r.RepairOne(ctx, it.Object, it.Index)
		}
		if err == nil {
			repaired++
			if !it.migrate {
				r.reg.Counter("cluster_repairs_total", "Shard rebuilds, by result.",
					obs.Label{Key: "result", Value: "ok"}).Inc()
			}
			continue
		}
		failed++
		if !it.migrate {
			r.reg.Counter("cluster_repairs_total", "Shard rebuilds, by result.",
				obs.Label{Key: "result", Value: "error"}).Inc()
			r.reg.Counter("cluster_repair_failures_total",
				"Shard rebuild attempts that failed.").Inc()
		}
		if ctx.Err() != nil {
			// Put the interrupted task back so nothing is stranded.
			requeue = append(requeue, it)
			break
		}
		it.attempts++
		if it.attempts >= r.maxAttempts {
			r.reg.Counter("cluster_repair_dropped_total",
				"Repair tasks dropped after exhausting their attempt budget.").Inc()
			continue
		}
		requeue = append(requeue, it)
	}
	for _, it := range requeue {
		// Re-inserting the popped item keeps its kind, source, and
		// attempt count — a requeued migration stays a migration.
		it.pos = 0
		r.enqueueItem(it)
	}
	return repaired, failed
}

// Run scans and drains on every tick until ctx ends — the background
// repair loop a node runs for the life of the process. Scan errors are
// counted and retried next tick, never fatal.
func (r *Repairer) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := r.ScanOnce(ctx); err != nil {
				r.reg.Counter("cluster_scan_errors_total",
					"Repair scans that aborted with an error.").Inc()
				continue
			}
			r.DrainOnce(ctx)
		}
	}
}

// bwPacer meters repair bandwidth: wait reserves n bytes against a
// rate, sleeping until the reservation's start time. A nil pacer is
// unlimited.
type bwPacer struct {
	rate float64 // bytes per second

	mu   sync.Mutex
	next time.Time
}

func (p *bwPacer) wait(ctx context.Context, n int64) error {
	if p == nil || n <= 0 {
		return nil
	}
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	start := p.next
	p.next = start.Add(time.Duration(float64(n) / p.rate * float64(time.Second)))
	p.mu.Unlock()
	return sleepCtx(ctx, start.Sub(now))
}
