package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/stream"
)

// repairTask names one damaged shard: rebuild shard Index of Object.
type repairTask struct {
	Object string
	Index  int
}

func (t repairTask) key() string { return t.Object + "/" + strconv.Itoa(t.Index) }

// Repairer is the background repair queue: it scrubs every placed
// shard of every object in the cluster (reusing the same shardfile
// scrub that dialga-inspect -verify runs locally), queues the damaged
// and missing ones, and rebuilds each by a degraded streaming decode
// of the surviving shards piped straight back through the encoder —
// only the damaged shard's output is kept, so repair moves O(object)
// bytes but writes only the one shard.
//
// All repair traffic — scrub probes, source reads, the rebuilt-shard
// write — is tagged node.ClassRepair and paced by the limiter's repair
// bucket at both ends, so however deep the damage backlog is,
// foreground reads keep their own token budget and their own node
// capacity.
type Repairer struct {
	gw  *Gateway
	lim *Limiter
	reg *obs.Registry

	mu     sync.Mutex
	queue  []repairTask
	queued map[string]bool
}

// NewRepairer wires a repair queue over the gateway's cluster view.
// lim may be nil (unpaced); reg may be nil (unmetered).
func NewRepairer(gw *Gateway, lim *Limiter, reg *obs.Registry) *Repairer {
	return &Repairer{gw: gw, lim: lim, reg: reg, queued: make(map[string]bool)}
}

// Pending returns the number of queued repair tasks.
func (r *Repairer) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue)
}

// Enqueue queues shard idx of object for rebuild, deduplicating
// against tasks already queued. It reports whether the task was new.
func (r *Repairer) Enqueue(object string, idx int) bool {
	t := repairTask{Object: object, Index: idx}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queued[t.key()] {
		return false
	}
	r.queued[t.key()] = true
	r.queue = append(r.queue, t)
	r.reg.Gauge("cluster_repair_queue",
		"Damaged shards currently queued for rebuild.").Set(float64(len(r.queue)))
	return true
}

// pop takes the oldest task off the queue.
func (r *Repairer) pop() (repairTask, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) == 0 {
		return repairTask{}, false
	}
	t := r.queue[0]
	r.queue = r.queue[1:]
	delete(r.queued, t.key())
	r.reg.Gauge("cluster_repair_queue",
		"Damaged shards currently queued for rebuild.").Set(float64(len(r.queue)))
	return t, true
}

// admit paces one repair-class operation through the limiter.
func (r *Repairer) admit(ctx context.Context) error {
	if r.lim == nil {
		return nil
	}
	return r.lim.Admit(ctx, node.ClassRepair, 1)
}

// objects lists every object any node stores shards for, over
// repair-class requests.
func (r *Repairer) objects(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, info := range r.gw.Map().Nodes() {
		cli, _ := r.gw.Client(info.ID)
		list, err := cli.WithClass(node.ClassRepair).Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: repair scan: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

// ScanOnce scrubs every placed shard of every object and enqueues the
// damaged ones, returning how many new tasks it queued. A shard whose
// node answers 404 is missing (enqueued); a shard whose node is
// unreachable is skipped — under the persistent-memory fault model the
// node's shards survive it, so rebuilding them elsewhere while the
// node is down would churn data that will reappear.
func (r *Repairer) ScanOnce(ctx context.Context) (int, error) {
	names, err := r.objects(ctx)
	if err != nil {
		return 0, err
	}
	enqueued := 0
	for _, object := range names {
		placement, err := r.gw.Place(object)
		if err != nil {
			return enqueued, err
		}
		for idx, info := range placement {
			if err := r.admit(ctx); err != nil {
				return enqueued, err
			}
			cli, _ := r.gw.Client(info.ID)
			status, err := cli.WithClass(node.ClassRepair).ScrubShard(ctx, object, idx)
			switch {
			case errors.Is(err, node.ErrNotFound):
				r.reg.Counter("cluster_scrub_damaged_total",
					"Placed shards found damaged by repair scans, by kind.",
					obs.Label{Key: "status", Value: "missing"}).Inc()
				if r.Enqueue(object, idx) {
					enqueued++
				}
			case err != nil:
				r.reg.Counter("cluster_scrub_unreachable_total",
					"Placed shards the repair scan could not probe (node down).").Inc()
			case status.Damaged:
				r.reg.Counter("cluster_scrub_damaged_total",
					"Placed shards found damaged by repair scans, by kind.",
					obs.Label{Key: "status", Value: status.Status}).Inc()
				if r.Enqueue(object, idx) {
					enqueued++
				}
			default:
				r.reg.Counter("cluster_scrub_ok_total",
					"Placed shards that passed a repair-scan scrub.").Inc()
			}
		}
	}
	return enqueued, nil
}

// RepairOne rebuilds one damaged shard: a degraded streaming decode of
// the surviving shards is piped straight into a re-encode whose output
// is discarded for every shard but the damaged one, which streams to
// its placed node as a fresh validated shardfile.
func (r *Repairer) RepairOne(ctx context.Context, object string, idx int) error {
	placement, err := r.gw.Place(object)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(placement) {
		return fmt.Errorf("cluster: repair %q shard %d out of range", object, idx)
	}
	if err := r.admit(ctx); err != nil {
		return err
	}
	set, err := r.gw.open(ctx, object, placement, node.ClassRepair, r.gw.spares, idx)
	if err != nil {
		return fmt.Errorf("cluster: repair %q shard %d: %w", object, idx, err)
	}

	h := set.header
	h.Index = uint32(idx)
	stripeSize := int(h.ShardSize) * r.gw.k

	decOpts := r.gw.streamOptions()
	decOpts.StripeSize = stripeSize
	decOpts.Checksum = h.Algo.Stream()
	decOpts.CloseReaders = true
	dec, err := stream.NewDecoder(decOpts)
	if err != nil {
		return err
	}
	encOpts := r.gw.streamOptions()
	encOpts.StripeSize = stripeSize
	encOpts.Checksum = h.Algo.Stream()
	enc, err := stream.NewEncoder(encOpts)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// decode -> object bytes -> re-encode; one rebuilt shard survives.
	objR, objW := io.Pipe()
	go func() {
		objW.CloseWithError(dec.Decode(ctx, set.readers, objW, int64(h.FileSize)))
	}()

	shardR, shardW := io.Pipe()
	writers := make([]io.Writer, r.gw.k+r.gw.m)
	for i := range writers {
		writers[i] = io.Discard
	}
	writers[idx] = shardW

	cli, _ := r.gw.Client(placement[idx].ID)
	putErr := make(chan error, 1)
	go func() {
		body := io.MultiReader(bytes.NewReader(h.Marshal()), shardR)
		err := cli.WithClass(node.ClassRepair).PutShard(ctx, object, idx, body)
		if err != nil {
			shardR.CloseWithError(err)
			cancel()
		} else {
			shardR.Close()
		}
		putErr <- err
	}()

	encErr := enc.Encode(ctx, objR, writers)
	shardW.CloseWithError(encErr)
	objR.CloseWithError(encErr) // unblock the decoder if encode quit first
	if err := <-putErr; err != nil {
		return fmt.Errorf("cluster: repair %q shard %d: upload: %w", object, idx, err)
	}
	if encErr != nil {
		return fmt.Errorf("cluster: repair %q shard %d: %w", object, idx, encErr)
	}
	r.reg.Counter("cluster_repair_bytes_total",
		"Bytes of rebuilt shard data written by the repair queue.").
		Add(uint64(h.ExpectedFileSize()))
	return nil
}

// DrainOnce works the queue until it is empty or ctx ends, returning
// how many repairs succeeded and failed. A failed task is re-queued at
// the back (its nodes may be back next pass) unless ctx ended.
func (r *Repairer) DrainOnce(ctx context.Context) (repaired, failed int) {
	requeue := []repairTask{}
	for {
		t, ok := r.pop()
		if !ok {
			break
		}
		err := r.RepairOne(ctx, t.Object, t.Index)
		if err == nil {
			repaired++
			r.reg.Counter("cluster_repairs_total", "Shard rebuilds, by result.",
				obs.Label{Key: "result", Value: "ok"}).Inc()
			continue
		}
		failed++
		r.reg.Counter("cluster_repairs_total", "Shard rebuilds, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		if ctx.Err() != nil {
			break
		}
		requeue = append(requeue, t)
	}
	for _, t := range requeue {
		r.Enqueue(t.Object, t.Index)
	}
	return repaired, failed
}

// Run scans and drains on every tick until ctx ends — the background
// repair loop a node runs for the life of the process. Scan errors are
// counted and retried next tick, never fatal.
func (r *Repairer) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			if _, err := r.ScanOnce(ctx); err != nil {
				r.reg.Counter("cluster_scan_errors_total",
					"Repair scans that aborted with an error.").Inc()
				continue
			}
			r.DrainOnce(ctx)
		}
	}
}
