package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"dialga/internal/obs"
)

func TestIntentLogDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intents.log")
	l, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add("obj-a", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("obj-a", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("obj-b", 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Done("obj-a", 5); err != nil {
		t.Fatal(err)
	}
	// Re-adding an open intent and discharging an unknown one are
	// no-ops, not duplicate records.
	if err := l.Add("obj-a", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Done("never-logged", 9); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// "Crash" and reopen: the undischarged intents survive verbatim.
	reg := obs.NewRegistry()
	l2, err := OpenIntentLog(path, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Pending()
	want := []Intent{{Object: "obj-a", Index: 3}, {Object: "obj-b", Index: 0}}
	if len(got) != len(want) {
		t.Fatalf("pending = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pending[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if v := reg.Counter("cluster_intents_recovered_total", "").Value(); v != 2 {
		t.Fatalf("cluster_intents_recovered_total = %d, want 2", v)
	}
	if v := reg.Gauge("cluster_intents_pending", "").Value(); v != 2 {
		t.Fatalf("cluster_intents_pending = %v, want 2", v)
	}
}

func TestIntentLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intents.log")
	l, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add("whole", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Add("torn", 2); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the last frame mid-payload, as a crash during append would.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := l2.Pending()
	if len(got) != 1 || got[0].Object != "whole" {
		t.Fatalf("pending after torn tail = %v, want just whole/1", got)
	}
	// The torn bytes were truncated away; a fresh append lands on a
	// clean frame boundary and both records replay next time.
	if err := l2.Add("after", 7); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := l3.Pending(); len(got) != 2 {
		t.Fatalf("pending after post-tear append = %v, want 2 intents", got)
	}
}

func TestIntentLogGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intents.log")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Pending(); len(got) != 0 {
		t.Fatalf("garbage file replayed intents: %v", got)
	}
	if err := l.Add("fresh", 0); err != nil {
		t.Fatal(err)
	}
}

func TestIntentLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intents.log")
	l, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Churn enough add/done pairs to cross the compaction threshold
	// several times, with one intent held open throughout.
	if err := l.Add("sticky", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := l.Add("churn", i); err != nil {
			t.Fatal(err)
		}
		if err := l.Done("churn", i); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 801 appended frames would be tens of KB; a compacted log holds
	// roughly the open set plus slack.
	if fi.Size() > 20_000 {
		t.Fatalf("log is %d bytes after churn; compaction did not run", fi.Size())
	}
	l.Close()
	l2, err := OpenIntentLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Pending()
	if len(got) != 1 || got[0].Object != "sticky" {
		t.Fatalf("pending after compaction = %v, want just sticky/0", got)
	}
}

func TestNilIntentLogIsNoOp(t *testing.T) {
	var l *IntentLog
	if err := l.Add("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Done("x", 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Pending(); got != nil {
		t.Fatalf("nil log pending = %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
