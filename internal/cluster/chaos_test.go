package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// slowChunkReader feeds its payload in small chunks with a delay, so
// a put is reliably still streaming when chaos hits it.
type slowChunkReader struct {
	b     []byte
	chunk int
	delay time.Duration
}

func (r *slowChunkReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	n := r.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.b) {
		n = len(r.b)
	}
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return n, nil
}

// TestClusterChaosQuorumConvergence is the acceptance test for the
// quorum-write / durable-intent / crash-recovery stack: a seeded,
// serializable fault plan partitions one node, blackholes another, and
// a third is killed outright in the middle of a streaming put. Every
// put the gateway ACKNOWLEDGED must decode byte-exact throughout — the
// durability contract — and once the network heals and the dead node
// returns (with its persistent shards intact, per the PPM fault
// model), intent adoption plus repair must converge the cluster back
// to full redundancy.
func TestClusterChaosQuorumConvergence(t *testing.T) {
	ft := fault.NewTransport(&http.Transport{DisableKeepAlives: true})
	log, err := OpenIntentLog(filepath.Join(t.TempDir(), "intents.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	tc := startClusterOpts(t, 6, 4, 2, 0, 97, func(o *GatewayOptions) {
		o.WriteQuorum = 5
		o.PutBackoff = 5 * time.Millisecond
		o.Intents = log
		// The client timeout is what bounds a blackholed request: the
		// route drops packets silently, so only our own deadline ends it.
		o.HTTPClient = &http.Client{Timeout: time.Second, Transport: ft}
	})
	ctx := context.Background()

	const objSize = 80_000
	acked := map[string][]byte{}
	put := func(name string, r io.Reader, size int64) error {
		payload := clusterPayload(uint64(len(name))*1009+77, int(size))
		if r == nil {
			r = bytes.NewReader(payload)
		}
		_, err := tc.gw.PutObject(ctx, name, r, size, node.ClassForeground)
		if err == nil {
			acked[name] = payload
		}
		return err
	}
	verifyAcked := func(phase string) {
		t.Helper()
		for name, want := range acked {
			var out bytes.Buffer
			if err := tc.gw.GetObject(ctx, name, &out, node.ClassForeground); err != nil {
				t.Fatalf("%s: acked object %s unreadable: %v", phase, name, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("%s: acked object %s decoded wrong bytes", phase, name)
			}
		}
	}

	// Phase A: calm seas.
	for i := 0; i < 2; i++ {
		if err := put(fmt.Sprintf("calm-%d", i), nil, objSize); err != nil {
			t.Fatalf("clean put: %v", err)
		}
	}

	// Phase B: partition one rack. With K+M = 6 nodes, every placement
	// uses every node, so each put is forced through the quorum path:
	// five shards land, the partitioned node's shard becomes a durable
	// intent.
	partitioned := tc.nodes[2]
	ft.Partition(partitioned.addr)
	for i := 0; i < 3; i++ {
		if err := put(fmt.Sprintf("partitioned-%d", i), nil, objSize); err != nil {
			t.Fatalf("put during partition: %v", err)
		}
	}
	if got := len(log.Pending()); got != 3 {
		t.Fatalf("intents during partition = %d, want 3", got)
	}
	verifyAcked("during partition")
	ft.Heal(partitioned.addr)

	// Phase C: a blackholed route (first request hangs until the client
	// deadline; a serialized plan, same grammar the CLI takes). The
	// retry must push the shard through — a fully redundant ack.
	holePlan, err := fault.Parse("hole@0+1")
	if err != nil {
		t.Fatal(err)
	}
	ft.Set(tc.nodes[4].addr, holePlan)
	before := tc.reg.Counter("cluster_put_degraded_total", "").Value()
	if err := put("blackholed", nil, objSize); err != nil {
		t.Fatalf("put through blackhole: %v", err)
	}
	if after := tc.reg.Counter("cluster_put_degraded_total", "").Value(); after != before {
		t.Fatal("blackholed put was degraded; the retry should have landed the shard")
	}
	ft.Heal(tc.nodes[4].addr)

	// Phase D: kill a node in the middle of a streaming put, then keep
	// writing while it is down. Acks must continue (quorum 5 of 6) and
	// every missing shard must be journaled.
	killed := tc.nodes[5]
	killPayload := clusterPayload(3001, 4*objSize)
	killDone := make(chan error, 1)
	go func() {
		r := &slowChunkReader{b: killPayload, chunk: 16 * 1024, delay: 2 * time.Millisecond}
		_, err := tc.gw.PutObject(ctx, "killed-mid-put", r, int64(len(killPayload)), node.ClassForeground)
		killDone <- err
	}()
	time.Sleep(15 * time.Millisecond) // the put is mid-stream now
	killed.stop()
	if err := <-killDone; err != nil {
		t.Fatalf("put with node killed mid-stream: %v", err)
	}
	acked["killed-mid-put"] = killPayload
	for i := 0; i < 2; i++ {
		if err := put(fmt.Sprintf("down-%d", i), nil, objSize); err != nil {
			t.Fatalf("put with node down: %v", err)
		}
	}
	verifyAcked("with node down")

	// Phase E: the dead node returns with its persistent shards intact
	// (only shards put while it was down are missing). Adopt the
	// journal, then scan-and-drain until the cluster converges.
	killed.start()
	rep := NewRepairer(tc.gw, nil, tc.reg)
	rep.AdoptIntents()
	converged := false
	for pass := 0; pass < 6; pass++ {
		if _, err := rep.ScanOnce(ctx); err != nil {
			t.Fatalf("scan pass %d: %v", pass, err)
		}
		_, failed := rep.DrainOnce(ctx)
		if failed != 0 {
			continue
		}
		enq, err := rep.ScanOnce(ctx)
		if err != nil {
			t.Fatalf("verify scan pass %d: %v", pass, err)
		}
		if enq == 0 && rep.Pending() == 0 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("repair did not converge to full redundancy")
	}
	if got := log.Pending(); len(got) != 0 {
		t.Fatalf("intents after convergence: %v, want none", got)
	}
	if g := tc.reg.Gauge("cluster_redundancy_min", "").Value(); g != 6 {
		t.Fatalf("cluster_redundancy_min after convergence = %v, want 6", g)
	}

	// Full redundancy, byte-exact: every shard of every acked object
	// stats clean on its placed node, and every object decodes.
	for name := range acked {
		place, err := tc.gw.Place(name)
		if err != nil {
			t.Fatal(err)
		}
		for idx, info := range place {
			cli, _ := tc.gw.Client(info.ID)
			if _, err := cli.StatShard(ctx, name, idx); err != nil {
				t.Fatalf("%s shard %d on %s after convergence: %v", name, idx, info.ID, err)
			}
		}
	}
	verifyAcked("after convergence")
	if len(acked) != 9 {
		t.Fatalf("acked %d objects, expected all 9", len(acked))
	}

	// Per-priority queue gauges read zero across the board.
	for red := 0; red <= 2; red++ {
		if g := tc.reg.Gauge("cluster_repair_queue_priority", "",
			obs.Label{Key: "redundancy", Value: fmt.Sprint(red)}).Value(); g != 0 {
			t.Fatalf("cluster_repair_queue_priority{redundancy=%d} = %v after convergence", red, g)
		}
	}
}
