package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dialga/internal/shardio"
)

// Router orders the shards of a placement by read preference: the
// gateway opens shards in the returned order and stops once it has
// quorum plus hedging headroom, so the policy decides which nodes
// absorb read load. Observe feeds per-node outcomes back so adaptive
// policies can learn. Implementations must be safe for concurrent use.
type Router interface {
	// Order returns a permutation of [0, len(p)): shard indices in
	// descending read preference.
	Order(object string, p Placement) []int
	// Observe reports one read against a node: how long it took and
	// whether it failed.
	Observe(id NodeID, d time.Duration, err error)
}

// FirstK reads shards in placement order (0, 1, 2, …): the k data
// shards first, so healthy-path reads never touch parity and decode is
// pure pass-through. The natural default.
type FirstK struct{}

// Order returns the identity permutation.
func (FirstK) Order(_ string, p Placement) []int { return identity(len(p)) }

// Observe is a no-op: FirstK does not adapt.
func (FirstK) Observe(NodeID, time.Duration, error) {}

// RoundRobin rotates the starting shard on every read, spreading load
// evenly across all k+m nodes of a placement regardless of latency.
type RoundRobin struct {
	n atomic.Uint64
}

// Order returns placement order rotated by the read sequence number.
func (r *RoundRobin) Order(_ string, p Placement) []int {
	n := len(p)
	order := make([]int, n)
	start := int(r.n.Add(1)-1) % n
	for i := range order {
		order[i] = (start + i) % n
	}
	return order
}

// Observe is a no-op: RoundRobin does not adapt.
func (*RoundRobin) Observe(NodeID, time.Duration, error) {}

// errPenaltyFloor is the minimum synthetic latency folded into a
// node's EWMA when a read against it fails: a failed node must rank
// behind any node that is merely slow.
const errPenaltyFloor = 500 * time.Millisecond

// LeastLoaded ranks nodes by a per-node latency EWMA — the same
// estimator shardio's adaptive deadlines use — preferring the
// currently fastest nodes. Failures fold in as large synthetic
// latencies, so an unresponsive node sinks to the back of the order
// within an observation or two and climbs back as probes succeed.
// Unobserved nodes rank first (optimistically fast), which doubles as
// exploration. Construct with NewLeastLoaded.
type LeastLoaded struct {
	mu    sync.Mutex
	ewmas map[NodeID]*shardio.EWMA
}

// NewLeastLoaded returns an empty (all nodes unobserved) router.
func NewLeastLoaded() *LeastLoaded {
	return &LeastLoaded{ewmas: make(map[NodeID]*shardio.EWMA)}
}

// Observe folds one read outcome into the node's moving average. An
// error observes max(4x current average, errPenaltyFloor) instead of
// the measured duration.
func (r *LeastLoaded) Observe(id NodeID, d time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.ewmas[id]
	if e == nil {
		e = &shardio.EWMA{}
		r.ewmas[id] = e
	}
	if err != nil {
		penalty := 4 * e.Value()
		if penalty < errPenaltyFloor {
			penalty = errPenaltyFloor
		}
		d = penalty
	}
	e.Observe(d)
}

// Order sorts the placement's shards by their node's average latency,
// fastest first; unobserved nodes sort ahead of observed ones, and
// ties break on shard index so the order is deterministic.
func (r *LeastLoaded) Order(_ string, p Placement) []int {
	type ranked struct {
		idx      int
		observed bool
		micros   float64
	}
	rank := make([]ranked, len(p))
	r.mu.Lock()
	for i, n := range p {
		rank[i] = ranked{idx: i}
		if e := r.ewmas[n.ID]; e != nil && e.Samples() > 0 {
			rank[i].observed = true
			rank[i].micros = e.Micros()
		}
	}
	r.mu.Unlock()
	sort.SliceStable(rank, func(a, b int) bool {
		if rank[a].observed != rank[b].observed {
			return !rank[a].observed
		}
		if rank[a].micros != rank[b].micros {
			return rank[a].micros < rank[b].micros
		}
		return rank[a].idx < rank[b].idx
	})
	order := make([]int, len(rank))
	for i, x := range rank {
		order[i] = x.idx
	}
	return order
}

// NewRouter builds a router by policy name — the flag-friendly
// constructor: "first-k", "round-robin", or "least-loaded".
func NewRouter(policy string) (Router, bool) {
	switch policy {
	case "", "first-k":
		return FirstK{}, true
	case "round-robin":
		return &RoundRobin{}, true
	case "least-loaded":
		return NewLeastLoaded(), true
	default:
		return nil, false
	}
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
