package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/node"
)

// TestUpdateMapValidation pins the swap rules: only strictly newer
// epochs with enough failure domains are accepted, and a surviving
// node's pooled client is reused across the swap.
func TestUpdateMapValidation(t *testing.T) {
	tc := startCluster(t, 6, 4, 2, 0, 52)
	cur := tc.gw.Map()

	if err := tc.gw.UpdateMap(nil); err == nil {
		t.Fatal("nil map accepted")
	}
	if err := tc.gw.UpdateMap(cur.WithEpoch(0)); err == nil {
		t.Fatal("same-epoch map accepted")
	}
	small, err := New(cur.Nodes()[:4])
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.gw.UpdateMap(small.WithEpoch(5)); err == nil {
		t.Fatal("map with too few domains for RS(4,2) accepted")
	}

	before, _ := tc.gw.Client("n0")
	if err := tc.gw.UpdateMap(cur.WithEpoch(1)); err != nil {
		t.Fatalf("valid swap rejected: %v", err)
	}
	if got := tc.gw.Map().Epoch(); got != 1 {
		t.Fatalf("epoch after swap = %d, want 1", got)
	}
	after, _ := tc.gw.Client("n0")
	if before != after {
		t.Fatal("client for unchanged node was rebuilt, not reused")
	}
	if err := tc.gw.UpdateMap(cur.WithEpoch(1)); err == nil {
		t.Fatal("replayed epoch accepted")
	}
}

// TestRepairPreemptsMigration pins the queue's scheduling contract:
// genuine repairs sort before migrations at equal urgency, lower
// redundancy preempts everything, and a queued migration is never
// demoted to a rebuild by a later repair enqueue for the same slot.
func TestRepairPreemptsMigration(t *testing.T) {
	infos := make([]NodeInfo, 6)
	for i := range infos {
		infos[i] = NodeInfo{
			ID:   NodeID(fmt.Sprintf("n%d", i)),
			Addr: fmt.Sprintf("203.0.113.%d:1", i), // never dialed
			Rack: fmt.Sprintf("r%d", i),
		}
	}
	cmap, err := New(infos)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewGateway(GatewayOptions{Map: cmap, K: 4, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepairer(gw, nil, nil)

	r.enqueueItem(&repairItem{
		repairTask: repairTask{Object: "moved", Index: 0},
		redundancy: 2, migrate: true, srcID: "n0",
	})
	r.enqueueItem(&repairItem{
		repairTask: repairTask{Object: "later", Index: 0},
		redundancy: 2, migrate: true, srcID: "n1",
	})
	r.enqueue(repairTask{Object: "damaged", Index: 0}, 2, 0)
	// A repair report for an already-queued migration raises its
	// urgency but keeps the cheap copy as the plan.
	r.Enqueue("moved", 0)

	want := []struct {
		object  string
		migrate bool
	}{
		{"moved", true},    // redundancy lowered to m-1 by the repair enqueue
		{"damaged", false}, // repair before migration at redundancy m
		{"later", true},
	}
	for i, w := range want {
		it, ok := r.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if it.Object != w.object || it.migrate != w.migrate {
			t.Fatalf("pop %d: got %s (migrate=%v), want %s (migrate=%v)",
				i, it.Object, it.migrate, w.object, w.migrate)
		}
	}
}

// placementDiff counts the shard indices whose home differs for
// object between two maps.
func placementDiff(t *testing.T, a, b *Map, object string, n int) int {
	t.Helper()
	pa, err := a.Place(object, n)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Place(object, n)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if pa[i].ID != pb[i].ID {
			diff++
		}
	}
	return diff
}

// TestEpochSwapRebalanceConvergence is the acceptance test for
// versioned membership: while a seeded fault plan disturbs the
// network, the cluster map is swapped mid-workload — one node added,
// one node (a whole rack) removed. A read opened under the old epoch
// must complete byte-exact on the old epoch; reads during and after
// the swap must stay byte-exact; Rebalance plus a drain must converge
// every object onto the new placement with zero lost shards, an
// emptied removed node, and a drained intent journal; and a Range
// read afterwards must match the full read's bytes while opening
// strictly fewer shards.
func TestEpochSwapRebalanceConvergence(t *testing.T) {
	ft := fault.NewTransport(&http.Transport{DisableKeepAlives: true})
	log, err := OpenIntentLog(filepath.Join(t.TempDir(), "intents.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	tc := startClusterOpts(t, 6, 4, 2, 2, 51, func(o *GatewayOptions) {
		o.Intents = log
		o.HTTPClient = &http.Client{Timeout: 5 * time.Second, Transport: ft}
	})
	ctx := context.Background()
	const n = 6 // k+m

	// The incoming member: a live node the serving map does not know
	// yet, in a brand-new rack.
	extra := &testNode{t: t, id: "n6", dir: t.TempDir(), addr: "127.0.0.1:0", reg: tc.reg}
	extra.start()
	t.Cleanup(extra.stop)

	oldMap := tc.gw.Map()
	var infos []NodeInfo
	for _, in := range oldMap.Nodes() {
		if in.ID == "n1" { // drop n1: rack r1 leaves the cluster
			continue
		}
		infos = append(infos, in)
	}
	infos = append(infos, NodeInfo{ID: extra.id, Addr: extra.addr, Rack: "r6", Zone: "z0"})
	newMap, err := New(infos)
	if err != nil {
		t.Fatal(err)
	}
	newMap = newMap.WithEpoch(oldMap.Epoch() + 1)

	// Pick objects that stay readable throughout the move: every
	// object loses its n1 shard, and RS(4,2) with all shards probed
	// tolerates up to m=2 displaced shards mid-migration.
	var names []string
	expectMoves := 0
	for i := 0; i < 400 && len(names) < 5; i++ {
		name := fmt.Sprintf("swap-%d", i)
		if d := placementDiff(t, oldMap, newMap, name, n); d >= 1 && d <= 2 {
			names = append(names, name)
			expectMoves += d
		}
	}
	if len(names) < 3 {
		t.Fatalf("seed yields only %d movable-but-readable objects", len(names))
	}

	const objSize = 200_000
	payloads := map[string][]byte{}
	for i, name := range names {
		payloads[name] = clusterPayload(uint64(500+i), objSize)
		if _, err := tc.gw.PutObject(ctx, name, bytes.NewReader(payloads[name]), objSize, node.ClassForeground); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
	}

	// Open a read under epoch 0, swap to epoch 1 underneath it, then
	// let it finish: it must stream byte-exact from the epoch-0 shard
	// set it opened.
	inflight, err := tc.gw.OpenObject(ctx, names[0], node.ClassForeground)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.gw.UpdateMap(newMap); err != nil {
		t.Fatalf("swap: %v", err)
	}
	if got := tc.gw.Map().Epoch(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
	var got bytes.Buffer
	if err := inflight.WriteTo(ctx, &got); err != nil {
		t.Fatalf("in-flight read across swap: %v", err)
	}
	if !bytes.Equal(got.Bytes(), payloads[names[0]]) {
		t.Fatal("in-flight read across swap: payload mismatch")
	}

	// Reads under the new epoch, before any byte has moved: displaced
	// shards are simply absent at their new homes, within tolerance.
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}

	// Seeded chaos on the migration destination: the first PutShard
	// attempts to the new node are refused (a transient fault), so the
	// drain must requeue and retry through it.
	refuse, err := fault.Parse("refuse@0+2")
	if err != nil {
		t.Fatal(err)
	}
	ft.Set(extra.addr, refuse)

	rep := NewRepairerOpts(tc.gw, nil, tc.reg, RepairerOptions{Bandwidth: 64 << 20})
	moves, err := rep.Rebalance(ctx, oldMap)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if moves != expectMoves {
		t.Fatalf("rebalance enqueued %d moves, placement diff says %d", moves, expectMoves)
	}

	// Foreground reads run while the queue drains.
	stop := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for name, want := range payloads {
				var out bytes.Buffer
				if err := tc.gw.GetObject(ctx, name, &out, node.ClassForeground); err != nil {
					readErr <- fmt.Errorf("read %s during rebalance: %w", name, err)
					return
				}
				if !bytes.Equal(out.Bytes(), want) {
					readErr <- fmt.Errorf("read %s during rebalance: payload mismatch", name)
					return
				}
			}
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for rep.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rebalance queue not drained: %d pending", rep.Pending())
		}
		rep.DrainOnce(ctx)
	}
	close(stop)
	if err := <-readErr; err != nil {
		t.Fatal(err)
	}
	ft.Heal(extra.addr)

	// Converged: every shard lives at its new home, the removed node
	// is empty, the journal holds no undischarged moves, and every
	// object still reads byte-exact.
	for _, name := range names {
		p, err := newMap.Place(name, n)
		if err != nil {
			t.Fatal(err)
		}
		for idx, info := range p {
			cli, ok := tc.gw.Client(info.ID)
			if !ok {
				t.Fatalf("no client for %s", info.ID)
			}
			if _, err := cli.StatShard(ctx, name, idx); err != nil {
				t.Fatalf("%s shard %d missing at new home %s: %v", name, idx, info.ID, err)
			}
		}
	}
	left, err := node.NewClient(tc.nodes[1].addr).Objects(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("removed node still holds shards for %v", left)
	}
	if pend := log.Pending(); len(pend) != 0 {
		t.Fatalf("intent journal still holds %d moves: %v", len(pend), pend)
	}
	for name, want := range payloads {
		tc.mustGet(ctx, name, want)
	}

	// Range reads on the rebalanced cluster: byte-identical to slices
	// of the full read, for strictly fewer shard opens.
	name, payload := names[0], payloads[names[0]]
	before := shardGets(tc)
	var full bytes.Buffer
	if err := tc.gw.GetObject(ctx, name, &full, node.ClassForeground); err != nil {
		t.Fatal(err)
	}
	fullGets := shardGets(tc) - before
	for _, win := range [][2]int64{{0, 100}, {70_000, 4_000}, {objSize - 999, 999}} {
		before = shardGets(tc)
		var part bytes.Buffer
		if err := tc.gw.GetObjectRange(ctx, name, &part, win[0], win[1], node.ClassForeground); err != nil {
			t.Fatalf("range (%d,%d): %v", win[0], win[1], err)
		}
		rangeGets := shardGets(tc) - before
		if !bytes.Equal(part.Bytes(), payload[win[0]:win[0]+win[1]]) {
			t.Fatalf("range (%d,%d): bytes differ from full-read slice", win[0], win[1])
		}
		if !bytes.Equal(part.Bytes(), full.Bytes()[win[0]:win[0]+win[1]]) {
			t.Fatalf("range (%d,%d): bytes differ from the full GET", win[0], win[1])
		}
		if rangeGets >= fullGets {
			t.Fatalf("range (%d,%d) opened %d shards, full read %d: want strictly fewer",
				win[0], win[1], rangeGets, fullGets)
		}
	}
}
