package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/node"
	"dialga/internal/obs"
)

// quorumCluster starts a cluster whose gateway acks at quorum, with a
// durable intent log and fast retry backoff.
func quorumCluster(t *testing.T, n, k, m, quorum int) (*testCluster, *IntentLog) {
	t.Helper()
	log, err := OpenIntentLog(filepath.Join(t.TempDir(), "intents.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	tc := startClusterOpts(t, n, k, m, 0, 7, func(o *GatewayOptions) {
		o.WriteQuorum = quorum
		o.PutBackoff = 2 * time.Millisecond
		o.Intents = log
	})
	return tc, log
}

func TestQuorumOptionValidation(t *testing.T) {
	cmap, err := New([]NodeInfo{
		{ID: "a", Addr: "h:1", Rack: "r1"}, {ID: "b", Addr: "h:2", Rack: "r2"},
		{ID: "c", Addr: "h:3", Rack: "r3"}, {ID: "d", Addr: "h:4", Rack: "r4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{1, 2, 5, -1} { // k=2, m=2: valid explicit range is [3,4]
		if _, err := NewGateway(GatewayOptions{Map: cmap, K: 2, M: 2, WriteQuorum: q}); err == nil {
			t.Errorf("WriteQuorum %d accepted for RS(2,2)", q)
		}
	}
	for _, q := range []int{0, 3, 4} {
		if _, err := NewGateway(GatewayOptions{Map: cmap, K: 2, M: 2, WriteQuorum: q}); err != nil {
			t.Errorf("WriteQuorum %d rejected for RS(2,2): %v", q, err)
		}
	}
}

// TestPutQuorumDegradedAck: one node down, quorum k+1 over RS(4,2) —
// the put must succeed degraded, journal an intent for the missing
// shard, fire the OnDegraded hook, and the object must read back.
func TestPutQuorumDegradedAck(t *testing.T) {
	tc, log := quorumCluster(t, 6, 4, 2, 5)
	ctx := context.Background()

	var mu sync.Mutex
	var hooked []Intent
	tc.gw.onDegraded = func(object string, index int) {
		mu.Lock()
		hooked = append(hooked, Intent{Object: object, Index: index})
		mu.Unlock()
	}

	const object = "degraded-put"
	payload := clusterPayload(41, 256_000)
	place, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	downIdx := 2
	tc.node(place[downIdx].ID).stop()

	p, err := tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground)
	if err != nil {
		t.Fatalf("degraded put: %v", err)
	}
	if len(p) != 6 {
		t.Fatalf("placement size %d", len(p))
	}
	tc.mustGet(ctx, object, payload)

	want := []Intent{{Object: object, Index: downIdx}}
	if got := log.Pending(); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("pending intents = %v, want %v", got, want)
	}
	mu.Lock()
	h := append([]Intent(nil), hooked...)
	mu.Unlock()
	if len(h) != 1 || h[0] != want[0] {
		t.Fatalf("OnDegraded saw %v, want %v", h, want)
	}
	if v := tc.reg.Counter("cluster_put_degraded_total", "").Value(); v != 1 {
		t.Fatalf("cluster_put_degraded_total = %d, want 1", v)
	}
	if v := tc.reg.Counter("cluster_puts_total", "",
		obs.Label{Key: "result", Value: "degraded"}).Value(); v != 1 {
		t.Fatalf("cluster_puts_total{degraded} = %d, want 1", v)
	}
	if v := tc.reg.Counter("cluster_put_shard_failures_total", "",
		obs.Label{Key: "node", Value: string(place[downIdx].ID)}).Value(); v == 0 {
		t.Fatal("cluster_put_shard_failures_total for the dead node never moved")
	}

	// A later full-width rewrite of the object discharges the intent.
	tc.node(place[downIdx].ID).start()
	if _, err := tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got := log.Pending(); len(got) != 0 {
		t.Fatalf("intents after full rewrite = %v, want none", got)
	}
}

// TestPutBelowQuorumFails: with two nodes down and quorum k+1 the put
// must fail, and the shards that landed must be cleaned up.
func TestPutBelowQuorumFails(t *testing.T) {
	tc, log := quorumCluster(t, 6, 4, 2, 5)
	ctx := context.Background()

	const object = "below-quorum"
	payload := clusterPayload(43, 128_000)
	place, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	tc.node(place[0].ID).stop()
	tc.node(place[3].ID).stop()

	_, err = tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground)
	if err == nil {
		t.Fatal("put below quorum succeeded")
	}
	if got := log.Pending(); len(got) != 0 {
		t.Fatalf("failed put journaled intents: %v", got)
	}
	// Best-effort cleanup: the live nodes hold nothing for the object.
	for idx, info := range place {
		if idx == 0 || idx == 3 {
			continue
		}
		cli, _ := tc.gw.Client(info.ID)
		if _, err := cli.StatShard(ctx, object, idx); !errors.Is(err, node.ErrNotFound) {
			t.Errorf("shard %d on %s survived a failed put: %v", idx, info.ID, err)
		}
	}
}

// TestPutRetriesTransientFaults: a node whose first two requests are
// refused at the transport must still receive its shard via the
// spool-replay retry path, leaving the put fully redundant.
func TestPutRetriesTransientFaults(t *testing.T) {
	ft := fault.NewTransport(&http.Transport{DisableKeepAlives: true})
	tc := startClusterOpts(t, 6, 4, 2, 0, 11, func(o *GatewayOptions) {
		o.WriteQuorum = 5
		o.PutBackoff = 2 * time.Millisecond
		o.HTTPClient = &http.Client{Transport: ft}
	})
	ctx := context.Background()

	const object = "retry-me"
	payload := clusterPayload(47, 200_000)
	place, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("refuse@0+2")
	if err != nil {
		t.Fatal(err)
	}
	ft.Set(place[1].Addr, plan)

	if _, err := tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground); err != nil {
		t.Fatalf("put with transient refusals: %v", err)
	}
	// Third attempt (request index 2) got through: the shard is on the
	// faulted node, and the put was not even degraded.
	cli, _ := tc.gw.Client(place[1].ID)
	if st, err := cli.StatShard(ctx, object, 1); err != nil || int(st.Index) != 1 {
		t.Fatalf("shard 1 on refused node: %+v, %v", st, err)
	}
	if v := tc.reg.Counter("cluster_puts_total", "",
		obs.Label{Key: "result", Value: "ok"}).Value(); v != 1 {
		t.Fatalf("cluster_puts_total{ok} = %d, want 1", v)
	}
	if v := tc.reg.Counter("cluster_put_degraded_total", "").Value(); v != 0 {
		t.Fatalf("cluster_put_degraded_total = %d, want 0", v)
	}
	tc.mustGet(ctx, object, payload)
}

// trickleReader yields one byte every few milliseconds, forever — the
// pathological slow client that used to pin a cancelled put's
// pipeline (encoder, pipes, and uploader goroutines) indefinitely.
type trickleReader struct{}

func (trickleReader) Read(p []byte) (int, error) {
	time.Sleep(2 * time.Millisecond)
	if len(p) > 0 {
		p[0] = 'z'
	}
	return 1, nil
}

// TestPutCancellationReleasesPipeline cancels a put fed by a trickling
// reader and requires both a prompt error return and that every
// goroutine the put spawned exits.
func TestPutCancellationReleasesPipeline(t *testing.T) {
	tc, _ := quorumCluster(t, 6, 4, 2, 5)
	ctx, cancel := context.WithCancel(context.Background())

	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	go func() {
		_, err := tc.gw.PutObject(ctx, "cancelled", trickleReader{}, 1<<30, node.ClassForeground)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the pipeline spin up mid-encode
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled put returned nil")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled put returned %v, want context.Canceled in the chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled put never returned")
	}

	// Every pipeline goroutine must wind down. Allow generous slack
	// for unrelated runtime/net goroutines to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; put leaked:\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPutRetryDisabled: PutRetries -1 keeps the original
// fail-fast-per-shard behaviour (no spool), still under quorum rules.
func TestPutRetryDisabled(t *testing.T) {
	log, err := OpenIntentLog(filepath.Join(t.TempDir(), "intents.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	tc := startClusterOpts(t, 6, 4, 2, 0, 13, func(o *GatewayOptions) {
		o.WriteQuorum = 5
		o.PutRetries = -1
		o.Intents = log
	})
	ctx := context.Background()

	const object = "no-retries"
	payload := clusterPayload(53, 100_000)
	place, err := tc.gw.Place(object)
	if err != nil {
		t.Fatal(err)
	}
	tc.node(place[5].ID).stop()
	if _, err := tc.gw.PutObject(ctx, object, bytes.NewReader(payload), int64(len(payload)), node.ClassForeground); err != nil {
		t.Fatalf("put: %v", err)
	}
	if got := log.Pending(); len(got) != 1 || got[0].Index != 5 {
		t.Fatalf("pending = %v, want shard 5 owed", got)
	}
	tc.mustGet(ctx, object, payload)
}
