package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

// GatewayOptions configures a Gateway. Map and geometry (K, M) are
// required; everything else defaults sensibly.
type GatewayOptions struct {
	// Map is the cluster membership placement draws from. Required.
	Map *Map
	// K and M are the erasure geometry: K data + M parity shards per
	// stripe. Required; K+M must not exceed the map's failure domains.
	K, M int
	// StripeSize is the data bytes per stripe on PUT. Default
	// stream.DefaultStripeSize.
	StripeSize int
	// Router orders shards for reads. Default FirstK.
	Router Router
	// Spares is how many shards beyond K a read opens up front: the
	// headroom hedged degraded reads need to reconstruct around a
	// straggler without a mid-stream reopen. Clamped to [0, M];
	// default 1 (when M > 0).
	Spares int
	// HedgeAfter enables hedged degraded reads on GET (see
	// stream.Options.HedgeAfter). Zero disables hedging.
	HedgeAfter time.Duration
	// HTTPClient is the transport shard requests ride — the hook for
	// timeouts, pooling, and fault.Transport chaos. Default
	// http.DefaultClient.
	HTTPClient *http.Client
	// Metrics receives cluster_* and the underlying stream_*/shardio_*
	// series. Nil disables.
	Metrics *obs.Registry
	// Seed makes decoder retry jitter reproducible.
	Seed uint64
	// WriteQuorum is the number of shard uploads that must land before
	// a put is acknowledged. Zero means all K+M (every put fully
	// redundant at ack). Any other value must lie in [K+1, K+M]: at
	// least one shard beyond the data minimum, so an acked object
	// always survives the immediate loss of any single node. Shards
	// missing at ack time are journaled as write intents (see Intents)
	// and handed to repair.
	WriteQuorum int
	// PutRetries is the per-shard retry budget for transient upload
	// failures during a put. Zero means the default (2 retries); -1
	// disables retries entirely, which also disables the per-shard
	// replay spool — with retries on, each in-flight shard buffers its
	// own bytes in memory (roughly size·(K+M)/K per object total) so a
	// failed upload can be replayed from the start.
	PutRetries int
	// PutBackoff is the base delay between per-shard retry attempts,
	// grown linearly with full deterministic jitter. Default 50ms.
	PutBackoff time.Duration
	// Intents is the durable write-intent journal degraded puts record
	// the missing shards in before acknowledging. Nil disables
	// journaling (quorum puts still succeed, but a gateway crash
	// forgets which shards were owed).
	Intents *IntentLog
	// OnDegraded is called once per shard missing at ack time, after
	// its intent is journaled — the hook the repairer registers to
	// learn about owed shards without polling. Called from PutObject's
	// goroutine; keep it fast. Nil disables.
	OnDegraded func(object string, index int)
}

// Gateway stripes whole objects across the cluster: PUT encodes an
// object through the streaming pipeline into K+M shard uploads placed
// rack-disjoint by Place; GET opens shards in router order and decodes
// — degraded, hedged, and CRC-healed exactly like local reads, because
// remote shards arrive as ordinary stream readers. Any node can host a
// gateway (placement is deterministic), so there is no metadata
// service to lose.
type Gateway struct {
	k, m       int
	stripe     int
	spares     int
	router     Router
	hedge      time.Duration
	seed       uint64
	reg        *obs.Registry
	hc         *http.Client
	codec      *rs.Code
	quorum     int // shard uploads required to ack a put
	retries    int // per-shard transient retry budget (-1: disabled)
	backoff    time.Duration
	intents    *IntentLog
	onDegraded func(object string, index int)

	// state is the current membership generation: the map plus one
	// shard client per member. Every operation loads it exactly once at
	// entry, so a concurrent UpdateMap never changes the placement or
	// client set an in-flight stream is using — reads opened under
	// epoch N complete under epoch N.
	state  atomic.Pointer[mapState]
	swapMu sync.Mutex // serializes UpdateMap
}

// mapState pairs a cluster map with the shard clients built from it.
// Both are immutable once published.
type mapState struct {
	cmap    *Map
	clients map[NodeID]*node.Client
}

// ErrUnknownNode reports a placement that names a node the current map
// has no client for — a stale placement raced a membership change, or
// the map is inconsistent. Operations return it instead of panicking.
var ErrUnknownNode = errors.New("cluster: placement names unknown node")

// snap loads the current membership generation.
func (g *Gateway) snap() *mapState { return g.state.Load() }

// clientFor resolves a node's shard client within one generation,
// counting (instead of panicking on) placements that name a node the
// map does not know.
func (g *Gateway) clientFor(st *mapState, id NodeID) (*node.Client, error) {
	if c, ok := st.clients[id]; ok {
		return c, nil
	}
	g.counter("cluster_unknown_node_total",
		"Operations that hit a placement naming a node absent from the map, by node.",
		obs.Label{Key: "node", Value: string(id)}).Inc()
	return nil, fmt.Errorf("%w: %s (map epoch %d)", ErrUnknownNode, id, st.cmap.Epoch())
}

// dial builds a shard client for an address outside the current map —
// the migrator uses it to read shards back from nodes a map change
// removed.
func (g *Gateway) dial(addr string) *node.Client {
	return node.NewClient(addr).WithHTTPClient(g.hc)
}

// NewGateway validates opts into a Gateway.
func NewGateway(opts GatewayOptions) (*Gateway, error) {
	if opts.Map == nil {
		return nil, errors.New("cluster: gateway needs a Map")
	}
	codec, err := rs.New(opts.K, opts.M)
	if err != nil {
		return nil, err
	}
	if d := opts.Map.Domains(); opts.K+opts.M > d {
		return nil, fmt.Errorf("cluster: RS(%d,%d) needs %d failure domains, map has %d",
			opts.K, opts.M, opts.K+opts.M, d)
	}
	stripeSize := opts.StripeSize
	if stripeSize <= 0 {
		stripeSize = stream.DefaultStripeSize
	}
	router := opts.Router
	if router == nil {
		router = FirstK{}
	}
	spares := opts.Spares
	if spares == 0 && opts.M > 0 {
		spares = 1
	}
	if spares > opts.M {
		spares = opts.M
	}
	if spares < 0 {
		spares = 0
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	quorum := opts.WriteQuorum
	switch {
	case quorum == 0:
		quorum = opts.K + opts.M // full-width ack, always self-consistent
	case quorum < opts.K+1 || quorum > opts.K+opts.M:
		return nil, fmt.Errorf("cluster: write quorum %d outside [%d, %d]",
			opts.WriteQuorum, opts.K+1, opts.K+opts.M)
	}
	retries := opts.PutRetries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = -1
	}
	backoff := opts.PutBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	g := &Gateway{
		k:          opts.K,
		m:          opts.M,
		stripe:     stripeSize,
		spares:     spares,
		router:     router,
		hedge:      opts.HedgeAfter,
		seed:       opts.Seed,
		reg:        opts.Metrics,
		hc:         hc,
		codec:      codec,
		quorum:     quorum,
		retries:    retries,
		backoff:    backoff,
		intents:    opts.Intents,
		onDegraded: opts.OnDegraded,
	}
	g.state.Store(g.buildState(opts.Map, nil))
	return g, nil
}

// buildState makes the client set for a map, reusing the previous
// generation's client for any node whose address did not change so
// connection pools survive a swap.
func (g *Gateway) buildState(next *Map, prev *mapState) *mapState {
	clients := make(map[NodeID]*node.Client, next.Len())
	for _, n := range next.Nodes() {
		if prev != nil {
			if old, ok := prev.cmap.Get(n.ID); ok && old.Addr == n.Addr {
				clients[n.ID] = prev.clients[n.ID]
				continue
			}
		}
		clients[n.ID] = g.dial(n.Addr)
	}
	return &mapState{cmap: next, clients: clients}
}

// UpdateMap atomically swaps the cluster map for a newer generation.
// The new map must carry a higher epoch than the current one and keep
// enough failure domains for the gateway's geometry. In-flight
// operations finish on the map they started with; operations started
// after UpdateMap returns see only the new one. Swapping the map does
// not move any data — diff the placements with Repairer.Rebalance to
// converge shards onto the new map.
func (g *Gateway) UpdateMap(next *Map) error {
	if next == nil {
		return errors.New("cluster: UpdateMap needs a map")
	}
	if d := next.Domains(); g.k+g.m > d {
		return fmt.Errorf("cluster: RS(%d,%d) needs %d failure domains, new map has %d",
			g.k, g.m, g.k+g.m, d)
	}
	g.swapMu.Lock()
	defer g.swapMu.Unlock()
	cur := g.state.Load()
	if next.Epoch() <= cur.cmap.Epoch() {
		return fmt.Errorf("cluster: map epoch %d is not newer than current epoch %d",
			next.Epoch(), cur.cmap.Epoch())
	}
	g.state.Store(g.buildState(next, cur))
	g.reg.Gauge("cluster_map_epoch", "Epoch of the cluster map currently serving.").
		Set(float64(next.Epoch()))
	g.counter("cluster_map_swaps_total", "Cluster map generations swapped in since start.").Inc()
	return nil
}

// Shards returns the stripe width K+M.
func (g *Gateway) Shards() int { return g.k + g.m }

// SetOnDegraded installs the degraded-put callback after construction
// — the gateway is usually built before the repairer that wants the
// hook. Call before the gateway starts serving puts; the hook is read
// without synchronization.
func (g *Gateway) SetOnDegraded(f func(object string, index int)) { g.onDegraded = f }

// Map returns the gateway's current cluster map. Operations that need
// a stable view across several calls should hold on to the returned
// map rather than calling Map repeatedly.
func (g *Gateway) Map() *Map { return g.snap().cmap }

// Place returns the object's deterministic shard placement under the
// gateway's geometry and current map.
func (g *Gateway) Place(object string) (Placement, error) {
	return g.snap().cmap.Place(object, g.k+g.m)
}

// Client returns the shard client for a node in the current map.
func (g *Gateway) Client(id NodeID) (*node.Client, bool) {
	c, ok := g.snap().clients[id]
	return c, ok
}

func (g *Gateway) counter(name, help string, labels ...obs.Label) *obs.Counter {
	return g.reg.Counter(name, help, labels...)
}

// header builds shard idx's shardfile header for an object of size
// bytes encoded with the gateway's geometry and stripe size.
func (g *Gateway) header(idx int, size int64, shardSize int) shardfile.Header {
	stripeSize := uint64(shardSize * g.k)
	stripes := (uint64(size) + stripeSize - 1) / stripeSize
	return shardfile.Header{
		Version: shardfile.VersionV3,
		K:       uint32(g.k), M: uint32(g.m), Index: uint32(idx),
		ShardSize:   uint32(shardSize),
		StripeCount: stripes,
		FileSize:    uint64(size),
		Algo:        shardfile.AlgoCRC32C,
	}
}

// streamOptions is the shared pipeline config for this gateway's
// geometry.
func (g *Gateway) streamOptions() stream.Options {
	return stream.Options{
		Codec:      g.codec,
		StripeSize: g.stripe,
		Checksum:   stream.ChecksumCRC32C,
		HedgeAfter: g.hedge,
		Seed:       g.seed,
		Metrics:    g.reg,
	}
}

// PutObject encodes size bytes from r into K+M shards streamed
// concurrently to the object's placement. Every shard upload carries a
// full shardfile (header + checksummed blocks), so each node validates
// its shard independently and a node directory is scrubbable with
// dialga-inspect.
//
// A put is acknowledged once WriteQuorum shard uploads have landed.
// Transient upload failures (connection errors, throttling, 5xx) are
// retried per shard with backoff and full jitter, replaying the shard
// from an in-memory spool; a shard that still cannot land does not
// fail the put as long as quorum holds — its absence is journaled as a
// durable write intent *before* the ack, then reported through
// OnDegraded so repair rebuilds it. Below quorum the put fails and the
// shards that did land are deleted best-effort. Returns the placement
// used.
func (g *Gateway) PutObject(ctx context.Context, object string, r io.Reader, size int64, class string) (Placement, error) {
	if size < 0 {
		return nil, fmt.Errorf("cluster: put %q needs a known size", object)
	}
	st := g.snap()
	placement, err := st.cmap.Place(object, g.k+g.m)
	if err != nil {
		return nil, err
	}
	enc, err := stream.NewEncoder(g.streamOptions())
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := g.k + g.m
	writers := make([]io.Writer, n)
	pipes := make([]*io.PipeWriter, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		h := g.header(i, size, enc.ShardSize())
		pr, pw := io.Pipe()
		pipes[i] = pw
		writers[i] = pw
		cli, cerr := g.clientFor(st, placement[i].ID)
		wg.Add(1)
		go func(i int, cli *node.Client, cerr error, pr *io.PipeReader, hdr []byte) {
			defer wg.Done()
			if cerr != nil {
				// No destination for this shard; keep the encoder moving.
				io.Copy(io.Discard, pr)
				pr.Close()
				errs[i] = fmt.Errorf("shard %d -> %s: %w", i, placement[i].ID, cerr)
				return
			}
			if err := g.uploadShard(ctx, object, i, cli.WithClass(class), pr, hdr); err != nil {
				errs[i] = fmt.Errorf("shard %d -> %s: %w", i, placement[i].ID, err)
			}
		}(i, cli, cerr, pr, h.Marshal())
	}

	// Count input bytes locally: enc.Stats() aggregates across every
	// pipeline sharing the registry, so it cannot size-check one put.
	// The ctx wrapper bounds cancellation latency: the encoder's
	// producer loop reads the caller's reader without watching ctx, so
	// a trickling (or stalled-between-reads) source would otherwise
	// keep the whole put — pipes, uploader goroutines and all — alive
	// long after the caller gave up.
	cr := &countingReader{r: readerCtx(ctx, r)}
	encErr := enc.Encode(ctx, cr, writers)
	for _, pw := range pipes {
		if encErr != nil {
			pw.CloseWithError(encErr)
		} else {
			pw.Close()
		}
	}
	wg.Wait()

	fail := func(err error) (Placement, error) {
		g.counter("cluster_puts_total", "Object puts, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, fmt.Errorf("cluster: put %q: %w", object, err)
	}
	if encErr != nil {
		return fail(encErr)
	}
	if cr.n != size {
		return fail(fmt.Errorf("read %d bytes, expected %d", cr.n, size))
	}

	landed := 0
	var missing []int
	var firstErr error
	for i, err := range errs {
		if err == nil {
			landed++
			continue
		}
		missing = append(missing, i)
		if firstErr == nil {
			firstErr = err
		}
		g.counter("cluster_put_shard_failures_total",
			"Shard uploads that failed permanently during puts, by node.",
			obs.Label{Key: "node", Value: string(placement[i].ID)}).Inc()
	}
	if landed < g.quorum {
		// Not enough durability to ack. The shards that landed are
		// stale the moment the client retries; clear them best-effort
		// on a fresh context (ours may already be cancelled).
		cleanCtx, cleanCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cleanCancel()
		for i, err := range errs {
			if err == nil {
				if cli, cerr := g.clientFor(st, placement[i].ID); cerr == nil {
					cli.WithClass(class).DeleteShard(cleanCtx, object, i)
				}
			}
		}
		return fail(fmt.Errorf("only %d of %d shards landed, quorum is %d: %w",
			landed, n, g.quorum, firstErr))
	}

	// Quorum holds. Journal what is owed before acknowledging — the
	// durability contract is that an acked degraded put survives a
	// gateway crash — and discharge stale intents for shards this put
	// just (re)wrote.
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			if err := g.intents.Done(object, i); err != nil {
				return fail(err)
			}
		}
	}
	for _, i := range missing {
		if err := g.intents.Add(object, i); err != nil {
			return fail(err)
		}
	}
	if g.onDegraded != nil {
		for _, i := range missing {
			g.onDegraded(object, i)
		}
	}

	result := "ok"
	if len(missing) > 0 {
		result = "degraded"
		g.counter("cluster_put_degraded_total",
			"Puts acknowledged at quorum with one or more shards owed to repair.").Inc()
	}
	g.counter("cluster_puts_total", "Object puts, by result.",
		obs.Label{Key: "result", Value: result}).Inc()
	g.counter("cluster_put_bytes_total", "Object payload bytes written.").Add(uint64(size))
	return placement, nil
}

// uploadShard streams one shard from its pipe into its node. With
// retries enabled, the bytes are teed into a spool as the first
// attempt streams them; a transient failure drains the encoder's
// remaining output into the spool (keeping the pipeline moving) and
// replays the complete shard from memory, with linearly growing,
// fully-jittered backoff between attempts. Failures never tear down
// the put: the pipe is always drained to EOF so the other shards'
// encode is unaffected, and the caller decides afterwards whether
// quorum held.
func (g *Gateway) uploadShard(ctx context.Context, object string, idx int, cli *node.Client, pr *io.PipeReader, hdr []byte) error {
	defer pr.Close()
	if g.retries < 0 {
		err := cli.PutShard(ctx, object, idx, io.MultiReader(bytes.NewReader(hdr), pr))
		if err != nil {
			io.Copy(io.Discard, pr)
		}
		return err
	}
	sp := &putSpool{}
	body := &spoolBody{src: io.MultiReader(bytes.NewReader(hdr), pr), sp: sp}
	err := cli.PutShard(ctx, object, idx, body)
	rest := body.seal()
	if err == nil {
		return nil
	}
	if !node.Transient(err) {
		io.Copy(io.Discard, pr)
		return err
	}
	// Drain what the failed attempt did not consume — from the sealed
	// body's source, so the spool also picks up header bytes a
	// refused-at-connect attempt never read. Only a complete spool can
	// be replayed; a drain error means the encode itself failed and
	// there is nothing to retry.
	if _, derr := io.Copy(sp, rest); derr != nil {
		return err
	}
	for attempt := 1; attempt <= g.retries; attempt++ {
		if serr := sleepCtx(ctx, putBackoff(g.seed, idx, attempt, g.backoff)); serr != nil {
			return err
		}
		err = cli.PutShard(ctx, object, idx, bytes.NewReader(sp.bytes()))
		if err == nil || !node.Transient(err) {
			return err
		}
	}
	return err
}

// putBackoff is the delay before retry attempt (1-based): full jitter
// over [0, attempt·base), deterministic in (seed, shard, attempt) so a
// seeded chaos run replays its exact retry schedule.
func putBackoff(seed uint64, shard, attempt int, base time.Duration) time.Duration {
	span := time.Duration(attempt) * base
	h := mix(seed ^ uint64(shard)<<32 ^ uint64(attempt))
	return time.Duration(h % uint64(span))
}

// sleepCtx pauses for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// putSpool is a mutex-guarded append-only byte buffer. The lock
// matters: net/http's transport may still be reading (and closing) a
// request body from its own goroutine after RoundTrip has returned,
// so the tee that fills the spool can race the drain that completes
// it unless both sides serialize here.
type putSpool struct {
	mu sync.Mutex
	b  []byte
}

func (s *putSpool) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.b = append(s.b, p...)
	s.mu.Unlock()
	return len(p), nil
}

// bytes snapshots the spooled contents. Callers only read it after
// the upload attempt that fed the spool has been sealed and drained,
// so the copy is stable.
func (s *putSpool) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b
}

// spoolBody tees an upload body into a spool and can be sealed: after
// seal, reads report EOF without touching the source, cutting off the
// transport's post-RoundTrip body goroutine so the uploader gets the
// source back for exclusive use and can drain the unread remainder
// into the spool itself.
type spoolBody struct {
	mu     sync.Mutex
	src    io.Reader
	sp     *putSpool
	sealed bool
}

func (b *spoolBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed {
		return 0, io.EOF
	}
	n, err := b.src.Read(p)
	if n > 0 {
		b.sp.Write(p[:n])
	}
	return n, err
}

// seal cuts the transport off and hands the not-yet-consumed source
// back to the caller.
func (b *spoolBody) seal() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sealed = true
	return b.src
}

// readerCtx wraps r so each Read first checks ctx: once the put's
// context ends, the next read fails instead of letting a slow source
// hold the pipeline open. (A single Read already blocked inside r is
// beyond rescue — this bounds the damage to one call.)
func readerCtx(ctx context.Context, r io.Reader) io.Reader {
	return &ctxReader{ctx: ctx, r: r}
}

type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// openSet is the result of opening an object's shards for decode.
type openSet struct {
	header  shardfile.Header
	readers []io.Reader // k+m entries, nil where unopened/failed
	opened  int
}

// open fetches shards of object in router preference order until k +
// spares are streaming (or candidates run out), observing per-node
// open latency into the router. exclude skips one shard index (the
// shard being rebuilt; -1 to open any). block/count select a window
// of blocks within each shard ((0, -1) reads whole shards). Callers
// own the readers — pass them to a decoder with CloseReaders set.
//
// When too few shards open, the error wraps node.ErrNotFound only if
// *every* failure was a clean not-found — the object is genuinely
// absent. Any other failure in the mix (node down, bad header) means
// the object may exist but be unreadable right now, which is a
// gateway-side 502, not a 404.
func (g *Gateway) open(ctx context.Context, st *mapState, object string, placement Placement, class string, spares, exclude int, block, count int64) (openSet, error) {
	n := len(placement)
	want := g.k + spares
	if want > n {
		want = n
	}
	set := openSet{readers: make([]io.Reader, n)}
	var firstErr error
	failures, notFound := 0, 0
	fail := func(err error) {
		failures++
		if errors.Is(err, node.ErrNotFound) {
			notFound++
		} else if firstErr == nil || errors.Is(firstErr, node.ErrNotFound) {
			// A non-404 failure is the more telling diagnosis; let it
			// displace an earlier not-found as the reported cause.
			firstErr = err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, idx := range g.router.Order(object, placement) {
		if set.opened >= want {
			break
		}
		if idx == exclude {
			continue
		}
		info := placement[idx]
		cli, cerr := g.clientFor(st, info.ID)
		if cerr != nil {
			fail(fmt.Errorf("shard %d: %w", idx, cerr))
			continue
		}
		cli = cli.WithClass(class)
		start := time.Now()
		h, body, err := cli.OpenShardAt(ctx, object, idx, block, count)
		g.router.Observe(info.ID, time.Since(start), err)
		if err != nil {
			fail(fmt.Errorf("shard %d from %s: %w", idx, info.ID, err))
			g.counter("cluster_open_failures_total",
				"Shard opens that failed during object reads, by node.",
				obs.Label{Key: "node", Value: string(info.ID)}).Inc()
			continue
		}
		if int(h.Index) != idx || int(h.K) != g.k || int(h.M) != g.m {
			body.Close()
			fail(fmt.Errorf("shard %d from %s: header (k=%d m=%d index=%d) does not match cluster geometry",
				idx, info.ID, h.K, h.M, h.Index))
			continue
		}
		if set.opened == 0 {
			set.header = h
		}
		set.readers[idx] = body
		set.opened++
	}
	if set.opened < g.k {
		for _, r := range set.readers {
			if c, ok := r.(io.Closer); ok {
				c.Close()
			}
		}
		if set.opened == 0 && failures > 0 && notFound == failures {
			return openSet{}, fmt.Errorf("cluster: get %q: %w on all %d shards",
				object, node.ErrNotFound, failures)
		}
		if firstErr == nil {
			firstErr = errors.New("no shards reachable")
		}
		return openSet{}, fmt.Errorf("cluster: get %q: only %d of %d shards available: %w",
			object, set.opened, g.k, firstErr)
	}
	return set, nil
}

// ObjectRead is an opened object read pinned to one map generation:
// the shards are already streaming when OpenObject returns, so the
// object's size is known before the first payload byte and a
// concurrent map swap cannot disturb the read. Stream the bytes with
// WriteTo, or Close without streaming to release the shards.
type ObjectRead struct {
	g        *Gateway
	object   string
	set      openSet
	size     int64 // full object size
	off      int64 // first payload byte this read yields
	length   int64 // payload bytes this read yields
	ranged   bool  // opened as a byte-range read
	streamed bool
}

// Size returns the full object size in bytes.
func (o *ObjectRead) Size() int64 { return o.size }

// Off returns the offset of the first byte WriteTo will produce.
func (o *ObjectRead) Off() int64 { return o.off }

// Length returns how many bytes WriteTo will produce.
func (o *ObjectRead) Length() int64 { return o.length }

// Ranged reports whether the read covers a byte range rather than the
// whole object.
func (o *ObjectRead) Ranged() bool { return o.ranged }

// Close releases the open shard streams of a read that was never
// streamed. After WriteTo it is a no-op (the decoder owns the
// readers).
func (o *ObjectRead) Close() {
	if o.streamed {
		return
	}
	o.streamed = true
	for _, r := range o.set.readers {
		if c, ok := r.(io.Closer); ok {
			c.Close()
		}
	}
}

// WriteTo decodes the read's byte window into w — degraded, hedged,
// and CRC-healed exactly like a local read. It consumes the shard
// streams; call at most once.
func (o *ObjectRead) WriteTo(ctx context.Context, w io.Writer) error {
	g := o.g
	if o.streamed {
		return fmt.Errorf("cluster: get %q: read already consumed", o.object)
	}
	o.streamed = true
	opts := g.streamOptions()
	opts.StripeSize = int(o.set.header.ShardSize) * g.k
	opts.Checksum = o.set.header.Algo.Stream()
	opts.CloseReaders = true
	if o.ranged {
		// A ranged open holds exactly k shard windows: there is no
		// spare for a hedge to rejoin from, so run unhedged and read
		// every block.
		opts.HedgeAfter = 0
	}
	dec, err := stream.NewDecoder(opts)
	if err != nil {
		o.streamed = false
		o.Close()
		return err
	}
	if err := dec.DecodeRange(ctx, o.set.readers, w, o.size, o.off, o.length); err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return fmt.Errorf("cluster: get %q: %w", o.object, err)
	}
	g.counter("cluster_gets_total", "Object gets, by result.",
		obs.Label{Key: "result", Value: "ok"}).Inc()
	g.counter("cluster_get_bytes_total", "Object payload bytes read.").Add(uint64(o.length))
	return nil
}

// OpenObject opens a full-object read: k+spares shards streaming
// under one map generation, size known up front.
func (g *Gateway) OpenObject(ctx context.Context, object string, class string) (*ObjectRead, error) {
	st := g.snap()
	placement, err := st.cmap.Place(object, g.k+g.m)
	if err != nil {
		return nil, err
	}
	set, err := g.open(ctx, st, object, placement, class, g.spares, -1, 0, -1)
	if err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, err
	}
	size := int64(set.header.FileSize)
	return &ObjectRead{g: g, object: object, set: set, size: size, off: 0, length: size}, nil
}

// GetObject streams the object's bytes into w, reconstructing from any
// k of its shards: failed nodes are skipped at open, stragglers are
// hedged around mid-stream, and corrupt blocks are healed by CRC-led
// reconstruction — the full degraded-read machinery, over the network.
func (g *Gateway) GetObject(ctx context.Context, object string, w io.Writer, class string) error {
	o, err := g.OpenObject(ctx, object, class)
	if err != nil {
		return err
	}
	return o.WriteTo(ctx, w)
}

// OpenObjectRange opens a byte-range read of the object: only the
// stripes covering [off, off+length) are fetched — exactly k shard
// block-windows, no spares — so the work is O(range), not O(object).
// length < 0 means to the end of the object; off < 0 means a suffix
// read of the last -off bytes. An off at or past the object's size
// returns a *RangeError carrying the size for a 416 response.
func (g *Gateway) OpenObjectRange(ctx context.Context, object string, off, length int64, class string) (*ObjectRead, error) {
	var spec rangeSpec
	switch {
	case off < 0:
		spec = rangeSpec{start: -off, suffix: true}
	case length < 0:
		spec = rangeSpec{start: off, end: -1}
	default:
		spec = rangeSpec{start: off, end: off + length - 1}
	}
	return g.openRange(ctx, object, spec, class)
}

// GetObjectRange streams the byte range [off, off+length) of the
// object into w (see OpenObjectRange for the off/length conventions).
func (g *Gateway) GetObjectRange(ctx context.Context, object string, w io.Writer, off, length int64, class string) error {
	o, err := g.OpenObjectRange(ctx, object, off, length, class)
	if err != nil {
		return err
	}
	return o.WriteTo(ctx, w)
}

// openRange resolves a range spec against the object's size (learned
// from one shard stat) and opens the covering stripes' block windows.
func (g *Gateway) openRange(ctx context.Context, object string, spec rangeSpec, class string) (*ObjectRead, error) {
	st := g.snap()
	placement, err := st.cmap.Place(object, g.k+g.m)
	if err != nil {
		return nil, err
	}
	stat, err := g.statObject(ctx, st, object, placement, class)
	if err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, err
	}
	size := int64(stat.FileSize)
	off, length, err := spec.resolve(size)
	if err != nil {
		return nil, fmt.Errorf("cluster: get %q: %w", object, err)
	}
	stripeSize := int64(stat.ShardSize) * int64(g.k)
	if stripeSize <= 0 {
		return nil, fmt.Errorf("cluster: get %q: shard stat reports zero shard size", object)
	}
	// Map the byte window onto whole stripes: block i of every shard
	// holds the stripe covering object bytes [i·stripe, (i+1)·stripe).
	firstStripe := off / stripeSize
	lastByte := off + length
	if lastByte > size {
		lastByte = size
	}
	count := (lastByte+stripeSize-1)/stripeSize - firstStripe
	if count < 1 {
		count = 1
	}
	set, err := g.open(ctx, st, object, placement, class, 0, -1, firstStripe, count)
	if err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, err
	}
	g.counter("cluster_range_gets_total", "Object byte-range gets opened.").Inc()
	return &ObjectRead{
		g: g, object: object, set: set,
		size: size, off: off, length: length, ranged: true,
	}, nil
}

// statObject learns an object's geometry and size from the first
// placed shard that answers a stat, in router order. Failures follow
// open's not-found rule: all-404 means the object is absent.
func (g *Gateway) statObject(ctx context.Context, st *mapState, object string, placement Placement, class string) (node.Stat, error) {
	var firstErr error
	failures, notFound := 0, 0
	for _, idx := range g.router.Order(object, placement) {
		info := placement[idx]
		cli, cerr := g.clientFor(st, info.ID)
		if cerr != nil {
			failures++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", idx, cerr)
			}
			continue
		}
		start := time.Now()
		stat, err := cli.WithClass(class).StatShard(ctx, object, idx)
		g.router.Observe(info.ID, time.Since(start), err)
		if err == nil {
			return stat, nil
		}
		failures++
		if errors.Is(err, node.ErrNotFound) {
			notFound++
		} else if firstErr == nil || errors.Is(firstErr, node.ErrNotFound) {
			firstErr = fmt.Errorf("shard %d from %s: %w", idx, info.ID, err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard %d from %s: %w", idx, info.ID, err)
		}
	}
	if failures > 0 && notFound == failures {
		return node.Stat{}, fmt.Errorf("cluster: get %q: %w on all %d shards",
			object, node.ErrNotFound, failures)
	}
	if firstErr == nil {
		firstErr = errors.New("no shards reachable")
	}
	return node.Stat{}, fmt.Errorf("cluster: get %q: no shard stat available: %w", object, firstErr)
}

// DeleteObject drops every shard of the object from its placement.
// Unreachable nodes make it return an error, but reachable shards are
// deleted regardless (deletes are idempotent; re-run to finish).
func (g *Gateway) DeleteObject(ctx context.Context, object string, class string) error {
	st := g.snap()
	placement, err := st.cmap.Place(object, g.k+g.m)
	if err != nil {
		return err
	}
	var firstErr error
	for idx, info := range placement {
		cli, cerr := g.clientFor(st, info.ID)
		if cerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: delete %q shard %d: %w", object, idx, cerr)
			}
			continue
		}
		if err := cli.WithClass(class).DeleteShard(ctx, object, idx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: delete %q shard %d on %s: %w", object, idx, info.ID, err)
		}
	}
	return firstErr
}

// Objects lists every object any reachable node stores shards for.
func (g *Gateway) Objects(ctx context.Context) ([]string, error) {
	st := g.snap()
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, info := range st.cmap.Nodes() {
		list, err := st.clients[info.ID].Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

// Handler returns the gateway's object API:
//
//	PUT    /v1/object/{object}     store an object (Content-Length required)
//	GET    /v1/object/{object}     fetch an object (honors single-range Range: headers)
//	DELETE /v1/object/{object}     delete an object's shards
//	GET    /v1/objects/all         cluster-wide object listing
//	GET    /v1/placement/{object}  the object's shard placement as JSON
//	GET    /v1/cluster/map         the serving cluster map with its epoch
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/object/{object}", g.handlePut)
	mux.HandleFunc("GET /v1/object/{object}", g.handleGet)
	mux.HandleFunc("DELETE /v1/object/{object}", g.handleDelete)
	mux.HandleFunc("GET /v1/cluster/map", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.Map().Info())
	})
	mux.HandleFunc("GET /v1/objects/all", func(w http.ResponseWriter, r *http.Request) {
		names, err := g.Objects(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("GET /v1/placement/{object}", func(w http.ResponseWriter, r *http.Request) {
		p, err := g.Place(r.PathValue("object"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, p)
	})
	return mux
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	if r.ContentLength < 0 {
		http.Error(w, "object put requires Content-Length", http.StatusLengthRequired)
		return
	}
	p, err := g.PutObject(r.Context(), object, r.Body, r.ContentLength, node.Class(r))
	if err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, p)
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	class := node.Class(r)

	var o *ObjectRead
	var err error
	if spec, ok := parseRange(r.Header.Get("Range")); ok {
		o, err = g.openRange(r.Context(), object, spec, class)
		var re *RangeError
		if errors.As(err, &re) {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", re.Size))
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
	} else {
		o, err = g.OpenObject(r.Context(), object, class)
	}
	if err != nil {
		gatewayFail(w, err)
		return
	}

	// Everything the client needs to detect a truncated response goes
	// out before the first payload byte: the shards are open, so the
	// exact length is known up front.
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Accept-Ranges", "bytes")
	h.Set("Content-Length", strconv.FormatInt(o.Length(), 10))
	if o.Ranged() {
		h.Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/%d", o.Off(), o.Off()+o.Length()-1, o.Size()))
		w.WriteHeader(http.StatusPartialContent)
	}

	cw := &countWriter{w: w}
	if err := o.WriteTo(r.Context(), cw); err != nil {
		if cw.n == 0 && !o.Ranged() {
			// Nothing on the wire yet; a clean error response is still
			// possible.
			gatewayFail(w, err)
			return
		}
		// The status line (and possibly payload bytes) already went
		// out. Error prose appended now would be indistinguishable
		// from object data, so kill the connection instead: the
		// Content-Length mismatch tells the client it was truncated.
		panic(http.ErrAbortHandler)
	}
}

// countWriter tallies payload bytes already written to the client, so
// the handler knows whether an error can still become a status code.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := g.DeleteObject(r.Context(), r.PathValue("object"), node.Class(r)); err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func gatewayFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, node.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// countingReader tallies bytes as the encoder consumes them.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
