package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

// GatewayOptions configures a Gateway. Map and geometry (K, M) are
// required; everything else defaults sensibly.
type GatewayOptions struct {
	// Map is the cluster membership placement draws from. Required.
	Map *Map
	// K and M are the erasure geometry: K data + M parity shards per
	// stripe. Required; K+M must not exceed the map's failure domains.
	K, M int
	// StripeSize is the data bytes per stripe on PUT. Default
	// stream.DefaultStripeSize.
	StripeSize int
	// Router orders shards for reads. Default FirstK.
	Router Router
	// Spares is how many shards beyond K a read opens up front: the
	// headroom hedged degraded reads need to reconstruct around a
	// straggler without a mid-stream reopen. Clamped to [0, M];
	// default 1 (when M > 0).
	Spares int
	// HedgeAfter enables hedged degraded reads on GET (see
	// stream.Options.HedgeAfter). Zero disables hedging.
	HedgeAfter time.Duration
	// HTTPClient is the transport shard requests ride — the hook for
	// timeouts, pooling, and fault.Transport chaos. Default
	// http.DefaultClient.
	HTTPClient *http.Client
	// Metrics receives cluster_* and the underlying stream_*/shardio_*
	// series. Nil disables.
	Metrics *obs.Registry
	// Seed makes decoder retry jitter reproducible.
	Seed uint64
}

// Gateway stripes whole objects across the cluster: PUT encodes an
// object through the streaming pipeline into K+M shard uploads placed
// rack-disjoint by Place; GET opens shards in router order and decodes
// — degraded, hedged, and CRC-healed exactly like local reads, because
// remote shards arrive as ordinary stream readers. Any node can host a
// gateway (placement is deterministic), so there is no metadata
// service to lose.
type Gateway struct {
	cmap    *Map
	k, m    int
	stripe  int
	spares  int
	router  Router
	hedge   time.Duration
	seed    uint64
	reg     *obs.Registry
	clients map[NodeID]*node.Client
	codec   *rs.Code
}

// NewGateway validates opts into a Gateway.
func NewGateway(opts GatewayOptions) (*Gateway, error) {
	if opts.Map == nil {
		return nil, errors.New("cluster: gateway needs a Map")
	}
	codec, err := rs.New(opts.K, opts.M)
	if err != nil {
		return nil, err
	}
	if d := opts.Map.Domains(); opts.K+opts.M > d {
		return nil, fmt.Errorf("cluster: RS(%d,%d) needs %d failure domains, map has %d",
			opts.K, opts.M, opts.K+opts.M, d)
	}
	stripeSize := opts.StripeSize
	if stripeSize <= 0 {
		stripeSize = stream.DefaultStripeSize
	}
	router := opts.Router
	if router == nil {
		router = FirstK{}
	}
	spares := opts.Spares
	if spares == 0 && opts.M > 0 {
		spares = 1
	}
	if spares > opts.M {
		spares = opts.M
	}
	if spares < 0 {
		spares = 0
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	g := &Gateway{
		cmap:    opts.Map,
		k:       opts.K,
		m:       opts.M,
		stripe:  stripeSize,
		spares:  spares,
		router:  router,
		hedge:   opts.HedgeAfter,
		seed:    opts.Seed,
		reg:     opts.Metrics,
		clients: make(map[NodeID]*node.Client, opts.Map.Len()),
		codec:   codec,
	}
	for _, n := range opts.Map.Nodes() {
		g.clients[n.ID] = node.NewClient(n.Addr).WithHTTPClient(hc)
	}
	return g, nil
}

// Shards returns the stripe width K+M.
func (g *Gateway) Shards() int { return g.k + g.m }

// Map returns the gateway's cluster map.
func (g *Gateway) Map() *Map { return g.cmap }

// Place returns the object's deterministic shard placement under the
// gateway's geometry.
func (g *Gateway) Place(object string) (Placement, error) {
	return g.cmap.Place(object, g.k+g.m)
}

// Client returns the shard client for a node in the map.
func (g *Gateway) Client(id NodeID) (*node.Client, bool) {
	c, ok := g.clients[id]
	return c, ok
}

func (g *Gateway) counter(name, help string, labels ...obs.Label) *obs.Counter {
	return g.reg.Counter(name, help, labels...)
}

// header builds shard idx's shardfile header for an object of size
// bytes encoded with the gateway's geometry and stripe size.
func (g *Gateway) header(idx int, size int64, shardSize int) shardfile.Header {
	stripeSize := uint64(shardSize * g.k)
	stripes := (uint64(size) + stripeSize - 1) / stripeSize
	return shardfile.Header{
		Version: shardfile.VersionV3,
		K:       uint32(g.k), M: uint32(g.m), Index: uint32(idx),
		ShardSize:   uint32(shardSize),
		StripeCount: stripes,
		FileSize:    uint64(size),
		Algo:        shardfile.AlgoCRC32C,
	}
}

// streamOptions is the shared pipeline config for this gateway's
// geometry.
func (g *Gateway) streamOptions() stream.Options {
	return stream.Options{
		Codec:      g.codec,
		StripeSize: g.stripe,
		Checksum:   stream.ChecksumCRC32C,
		HedgeAfter: g.hedge,
		Seed:       g.seed,
		Metrics:    g.reg,
	}
}

// PutObject encodes size bytes from r into K+M shards streamed
// concurrently to the object's placement. Every shard upload carries a
// full shardfile (header + checksummed blocks), so each node validates
// its shard independently and a node directory is scrubbable with
// dialga-inspect. Returns the placement used.
func (g *Gateway) PutObject(ctx context.Context, object string, r io.Reader, size int64, class string) (Placement, error) {
	if size < 0 {
		return nil, fmt.Errorf("cluster: put %q needs a known size", object)
	}
	placement, err := g.Place(object)
	if err != nil {
		return nil, err
	}
	enc, err := stream.NewEncoder(g.streamOptions())
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := g.k + g.m
	writers := make([]io.Writer, n)
	pipes := make([]*io.PipeWriter, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		h := g.header(i, size, enc.ShardSize())
		pr, pw := io.Pipe()
		pipes[i] = pw
		writers[i] = pw
		cli := g.clients[placement[i].ID].WithClass(class)
		wg.Add(1)
		go func(i int, cli *node.Client, pr *io.PipeReader, hdr []byte) {
			defer wg.Done()
			body := io.MultiReader(bytes.NewReader(hdr), pr)
			if err := cli.PutShard(ctx, object, i, body); err != nil {
				errs[i] = fmt.Errorf("shard %d -> %s: %w", i, placement[i].ID, err)
				// Fail the encoder's next write into this pipe so the
				// pipeline stops instead of blocking on a dead upload.
				pr.CloseWithError(errs[i])
				cancel()
				return
			}
			pr.Close()
		}(i, cli, pr, h.Marshal())
	}

	// Count input bytes locally: enc.Stats() aggregates across every
	// pipeline sharing the registry, so it cannot size-check one put.
	cr := &countingReader{r: r}
	encErr := enc.Encode(ctx, cr, writers)
	for _, pw := range pipes {
		if encErr != nil {
			pw.CloseWithError(encErr)
		} else {
			pw.Close()
		}
	}
	wg.Wait()

	if encErr != nil {
		g.counter("cluster_puts_total", "Object puts, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, fmt.Errorf("cluster: put %q: %w", object, encErr)
	}
	for _, err := range errs {
		if err != nil {
			g.counter("cluster_puts_total", "Object puts, by result.",
				obs.Label{Key: "result", Value: "error"}).Inc()
			return nil, fmt.Errorf("cluster: put %q: %w", object, err)
		}
	}
	if cr.n != size {
		g.counter("cluster_puts_total", "Object puts, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, fmt.Errorf("cluster: put %q: read %d bytes, expected %d", object, cr.n, size)
	}
	g.counter("cluster_puts_total", "Object puts, by result.",
		obs.Label{Key: "result", Value: "ok"}).Inc()
	g.counter("cluster_put_bytes_total", "Object payload bytes written.").Add(uint64(size))
	return placement, nil
}

// openSet is the result of opening an object's shards for decode.
type openSet struct {
	header  shardfile.Header
	readers []io.Reader // k+m entries, nil where unopened/failed
	opened  int
}

// open fetches shards of object in router preference order until k +
// spares are streaming (or candidates run out), observing per-node
// open latency into the router. exclude skips one shard index (the
// shard being rebuilt; -1 to open any). Callers own the readers — pass
// them to a decoder with CloseReaders set.
func (g *Gateway) open(ctx context.Context, object string, placement Placement, class string, spares, exclude int) (openSet, error) {
	n := len(placement)
	want := g.k + spares
	if want > n {
		want = n
	}
	set := openSet{readers: make([]io.Reader, n)}
	var firstErr error
	for _, idx := range g.router.Order(object, placement) {
		if set.opened >= want {
			break
		}
		if idx == exclude {
			continue
		}
		info := placement[idx]
		cli := g.clients[info.ID].WithClass(class)
		start := time.Now()
		h, body, err := cli.OpenShard(ctx, object, idx)
		g.router.Observe(info.ID, time.Since(start), err)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d from %s: %w", idx, info.ID, err)
			}
			g.counter("cluster_open_failures_total",
				"Shard opens that failed during object reads, by node.",
				obs.Label{Key: "node", Value: string(info.ID)}).Inc()
			continue
		}
		if int(h.Index) != idx || int(h.K) != g.k || int(h.M) != g.m {
			body.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d from %s: header (k=%d m=%d index=%d) does not match cluster geometry",
					idx, info.ID, h.K, h.M, h.Index)
			}
			continue
		}
		if set.opened == 0 {
			set.header = h
		}
		set.readers[idx] = body
		set.opened++
	}
	if set.opened < g.k {
		for _, r := range set.readers {
			if c, ok := r.(io.Closer); ok {
				c.Close()
			}
		}
		if firstErr == nil {
			firstErr = errors.New("no shards reachable")
		}
		return openSet{}, fmt.Errorf("cluster: get %q: only %d of %d shards available: %w",
			object, set.opened, g.k, firstErr)
	}
	return set, nil
}

// GetObject streams the object's bytes into w, reconstructing from any
// k of its shards: failed nodes are skipped at open, stragglers are
// hedged around mid-stream, and corrupt blocks are healed by CRC-led
// reconstruction — the full degraded-read machinery, over the network.
func (g *Gateway) GetObject(ctx context.Context, object string, w io.Writer, class string) error {
	placement, err := g.Place(object)
	if err != nil {
		return err
	}
	set, err := g.open(ctx, object, placement, class, g.spares, -1)
	if err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return err
	}
	opts := g.streamOptions()
	opts.StripeSize = int(set.header.ShardSize) * g.k
	opts.Checksum = set.header.Algo.Stream()
	opts.CloseReaders = true
	dec, err := stream.NewDecoder(opts)
	if err != nil {
		return err
	}
	if err := dec.Decode(ctx, set.readers, w, int64(set.header.FileSize)); err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return fmt.Errorf("cluster: get %q: %w", object, err)
	}
	g.counter("cluster_gets_total", "Object gets, by result.",
		obs.Label{Key: "result", Value: "ok"}).Inc()
	g.counter("cluster_get_bytes_total", "Object payload bytes read.").Add(set.header.FileSize)
	return nil
}

// DeleteObject drops every shard of the object from its placement.
// Unreachable nodes make it return an error, but reachable shards are
// deleted regardless (deletes are idempotent; re-run to finish).
func (g *Gateway) DeleteObject(ctx context.Context, object string, class string) error {
	placement, err := g.Place(object)
	if err != nil {
		return err
	}
	var firstErr error
	for idx, info := range placement {
		cli := g.clients[info.ID].WithClass(class)
		if err := cli.DeleteShard(ctx, object, idx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: delete %q shard %d on %s: %w", object, idx, info.ID, err)
		}
	}
	return firstErr
}

// Objects lists every object any reachable node stores shards for.
func (g *Gateway) Objects(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, info := range g.cmap.Nodes() {
		list, err := g.clients[info.ID].Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

// Handler returns the gateway's object API:
//
//	PUT    /v1/object/{object}     store an object (Content-Length required)
//	GET    /v1/object/{object}     fetch an object
//	DELETE /v1/object/{object}     delete an object's shards
//	GET    /v1/objects/all         cluster-wide object listing
//	GET    /v1/placement/{object}  the object's shard placement as JSON
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/object/{object}", g.handlePut)
	mux.HandleFunc("GET /v1/object/{object}", g.handleGet)
	mux.HandleFunc("DELETE /v1/object/{object}", g.handleDelete)
	mux.HandleFunc("GET /v1/objects/all", func(w http.ResponseWriter, r *http.Request) {
		names, err := g.Objects(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("GET /v1/placement/{object}", func(w http.ResponseWriter, r *http.Request) {
		p, err := g.Place(r.PathValue("object"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, p)
	})
	return mux
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	if r.ContentLength < 0 {
		http.Error(w, "object put requires Content-Length", http.StatusLengthRequired)
		return
	}
	p, err := g.PutObject(r.Context(), object, r.Body, r.ContentLength, node.Class(r))
	if err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, p)
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	w.Header().Set("Content-Type", "application/octet-stream")
	// The body streams as it decodes; an error after the first byte can
	// only truncate the response (the client sees the connection die).
	if err := g.GetObject(r.Context(), object, w, node.Class(r)); err != nil {
		gatewayFail(w, err)
	}
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := g.DeleteObject(r.Context(), r.PathValue("object"), node.Class(r)); err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func gatewayFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, node.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// countingReader tallies bytes as the encoder consumes them.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
