package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dialga/internal/node"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

// GatewayOptions configures a Gateway. Map and geometry (K, M) are
// required; everything else defaults sensibly.
type GatewayOptions struct {
	// Map is the cluster membership placement draws from. Required.
	Map *Map
	// K and M are the erasure geometry: K data + M parity shards per
	// stripe. Required; K+M must not exceed the map's failure domains.
	K, M int
	// StripeSize is the data bytes per stripe on PUT. Default
	// stream.DefaultStripeSize.
	StripeSize int
	// Router orders shards for reads. Default FirstK.
	Router Router
	// Spares is how many shards beyond K a read opens up front: the
	// headroom hedged degraded reads need to reconstruct around a
	// straggler without a mid-stream reopen. Clamped to [0, M];
	// default 1 (when M > 0).
	Spares int
	// HedgeAfter enables hedged degraded reads on GET (see
	// stream.Options.HedgeAfter). Zero disables hedging.
	HedgeAfter time.Duration
	// HTTPClient is the transport shard requests ride — the hook for
	// timeouts, pooling, and fault.Transport chaos. Default
	// http.DefaultClient.
	HTTPClient *http.Client
	// Metrics receives cluster_* and the underlying stream_*/shardio_*
	// series. Nil disables.
	Metrics *obs.Registry
	// Seed makes decoder retry jitter reproducible.
	Seed uint64
	// WriteQuorum is the number of shard uploads that must land before
	// a put is acknowledged. Zero means all K+M (every put fully
	// redundant at ack). Any other value must lie in [K+1, K+M]: at
	// least one shard beyond the data minimum, so an acked object
	// always survives the immediate loss of any single node. Shards
	// missing at ack time are journaled as write intents (see Intents)
	// and handed to repair.
	WriteQuorum int
	// PutRetries is the per-shard retry budget for transient upload
	// failures during a put. Zero means the default (2 retries); -1
	// disables retries entirely, which also disables the per-shard
	// replay spool — with retries on, each in-flight shard buffers its
	// own bytes in memory (roughly size·(K+M)/K per object total) so a
	// failed upload can be replayed from the start.
	PutRetries int
	// PutBackoff is the base delay between per-shard retry attempts,
	// grown linearly with full deterministic jitter. Default 50ms.
	PutBackoff time.Duration
	// Intents is the durable write-intent journal degraded puts record
	// the missing shards in before acknowledging. Nil disables
	// journaling (quorum puts still succeed, but a gateway crash
	// forgets which shards were owed).
	Intents *IntentLog
	// OnDegraded is called once per shard missing at ack time, after
	// its intent is journaled — the hook the repairer registers to
	// learn about owed shards without polling. Called from PutObject's
	// goroutine; keep it fast. Nil disables.
	OnDegraded func(object string, index int)
}

// Gateway stripes whole objects across the cluster: PUT encodes an
// object through the streaming pipeline into K+M shard uploads placed
// rack-disjoint by Place; GET opens shards in router order and decodes
// — degraded, hedged, and CRC-healed exactly like local reads, because
// remote shards arrive as ordinary stream readers. Any node can host a
// gateway (placement is deterministic), so there is no metadata
// service to lose.
type Gateway struct {
	cmap       *Map
	k, m       int
	stripe     int
	spares     int
	router     Router
	hedge      time.Duration
	seed       uint64
	reg        *obs.Registry
	clients    map[NodeID]*node.Client
	codec      *rs.Code
	quorum     int // shard uploads required to ack a put
	retries    int // per-shard transient retry budget (-1: disabled)
	backoff    time.Duration
	intents    *IntentLog
	onDegraded func(object string, index int)
}

// NewGateway validates opts into a Gateway.
func NewGateway(opts GatewayOptions) (*Gateway, error) {
	if opts.Map == nil {
		return nil, errors.New("cluster: gateway needs a Map")
	}
	codec, err := rs.New(opts.K, opts.M)
	if err != nil {
		return nil, err
	}
	if d := opts.Map.Domains(); opts.K+opts.M > d {
		return nil, fmt.Errorf("cluster: RS(%d,%d) needs %d failure domains, map has %d",
			opts.K, opts.M, opts.K+opts.M, d)
	}
	stripeSize := opts.StripeSize
	if stripeSize <= 0 {
		stripeSize = stream.DefaultStripeSize
	}
	router := opts.Router
	if router == nil {
		router = FirstK{}
	}
	spares := opts.Spares
	if spares == 0 && opts.M > 0 {
		spares = 1
	}
	if spares > opts.M {
		spares = opts.M
	}
	if spares < 0 {
		spares = 0
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	quorum := opts.WriteQuorum
	switch {
	case quorum == 0:
		quorum = opts.K + opts.M // full-width ack, always self-consistent
	case quorum < opts.K+1 || quorum > opts.K+opts.M:
		return nil, fmt.Errorf("cluster: write quorum %d outside [%d, %d]",
			opts.WriteQuorum, opts.K+1, opts.K+opts.M)
	}
	retries := opts.PutRetries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = -1
	}
	backoff := opts.PutBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	g := &Gateway{
		cmap:       opts.Map,
		k:          opts.K,
		m:          opts.M,
		stripe:     stripeSize,
		spares:     spares,
		router:     router,
		hedge:      opts.HedgeAfter,
		seed:       opts.Seed,
		reg:        opts.Metrics,
		clients:    make(map[NodeID]*node.Client, opts.Map.Len()),
		codec:      codec,
		quorum:     quorum,
		retries:    retries,
		backoff:    backoff,
		intents:    opts.Intents,
		onDegraded: opts.OnDegraded,
	}
	for _, n := range opts.Map.Nodes() {
		g.clients[n.ID] = node.NewClient(n.Addr).WithHTTPClient(hc)
	}
	return g, nil
}

// Shards returns the stripe width K+M.
func (g *Gateway) Shards() int { return g.k + g.m }

// SetOnDegraded installs the degraded-put callback after construction
// — the gateway is usually built before the repairer that wants the
// hook. Call before the gateway starts serving puts; the hook is read
// without synchronization.
func (g *Gateway) SetOnDegraded(f func(object string, index int)) { g.onDegraded = f }

// Map returns the gateway's cluster map.
func (g *Gateway) Map() *Map { return g.cmap }

// Place returns the object's deterministic shard placement under the
// gateway's geometry.
func (g *Gateway) Place(object string) (Placement, error) {
	return g.cmap.Place(object, g.k+g.m)
}

// Client returns the shard client for a node in the map.
func (g *Gateway) Client(id NodeID) (*node.Client, bool) {
	c, ok := g.clients[id]
	return c, ok
}

func (g *Gateway) counter(name, help string, labels ...obs.Label) *obs.Counter {
	return g.reg.Counter(name, help, labels...)
}

// header builds shard idx's shardfile header for an object of size
// bytes encoded with the gateway's geometry and stripe size.
func (g *Gateway) header(idx int, size int64, shardSize int) shardfile.Header {
	stripeSize := uint64(shardSize * g.k)
	stripes := (uint64(size) + stripeSize - 1) / stripeSize
	return shardfile.Header{
		Version: shardfile.VersionV3,
		K:       uint32(g.k), M: uint32(g.m), Index: uint32(idx),
		ShardSize:   uint32(shardSize),
		StripeCount: stripes,
		FileSize:    uint64(size),
		Algo:        shardfile.AlgoCRC32C,
	}
}

// streamOptions is the shared pipeline config for this gateway's
// geometry.
func (g *Gateway) streamOptions() stream.Options {
	return stream.Options{
		Codec:      g.codec,
		StripeSize: g.stripe,
		Checksum:   stream.ChecksumCRC32C,
		HedgeAfter: g.hedge,
		Seed:       g.seed,
		Metrics:    g.reg,
	}
}

// PutObject encodes size bytes from r into K+M shards streamed
// concurrently to the object's placement. Every shard upload carries a
// full shardfile (header + checksummed blocks), so each node validates
// its shard independently and a node directory is scrubbable with
// dialga-inspect.
//
// A put is acknowledged once WriteQuorum shard uploads have landed.
// Transient upload failures (connection errors, throttling, 5xx) are
// retried per shard with backoff and full jitter, replaying the shard
// from an in-memory spool; a shard that still cannot land does not
// fail the put as long as quorum holds — its absence is journaled as a
// durable write intent *before* the ack, then reported through
// OnDegraded so repair rebuilds it. Below quorum the put fails and the
// shards that did land are deleted best-effort. Returns the placement
// used.
func (g *Gateway) PutObject(ctx context.Context, object string, r io.Reader, size int64, class string) (Placement, error) {
	if size < 0 {
		return nil, fmt.Errorf("cluster: put %q needs a known size", object)
	}
	placement, err := g.Place(object)
	if err != nil {
		return nil, err
	}
	enc, err := stream.NewEncoder(g.streamOptions())
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := g.k + g.m
	writers := make([]io.Writer, n)
	pipes := make([]*io.PipeWriter, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		h := g.header(i, size, enc.ShardSize())
		pr, pw := io.Pipe()
		pipes[i] = pw
		writers[i] = pw
		wg.Add(1)
		go func(i int, pr *io.PipeReader, hdr []byte) {
			defer wg.Done()
			if err := g.uploadShard(ctx, object, i, placement[i].ID, class, pr, hdr); err != nil {
				errs[i] = fmt.Errorf("shard %d -> %s: %w", i, placement[i].ID, err)
			}
		}(i, pr, h.Marshal())
	}

	// Count input bytes locally: enc.Stats() aggregates across every
	// pipeline sharing the registry, so it cannot size-check one put.
	// The ctx wrapper bounds cancellation latency: the encoder's
	// producer loop reads the caller's reader without watching ctx, so
	// a trickling (or stalled-between-reads) source would otherwise
	// keep the whole put — pipes, uploader goroutines and all — alive
	// long after the caller gave up.
	cr := &countingReader{r: readerCtx(ctx, r)}
	encErr := enc.Encode(ctx, cr, writers)
	for _, pw := range pipes {
		if encErr != nil {
			pw.CloseWithError(encErr)
		} else {
			pw.Close()
		}
	}
	wg.Wait()

	fail := func(err error) (Placement, error) {
		g.counter("cluster_puts_total", "Object puts, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return nil, fmt.Errorf("cluster: put %q: %w", object, err)
	}
	if encErr != nil {
		return fail(encErr)
	}
	if cr.n != size {
		return fail(fmt.Errorf("read %d bytes, expected %d", cr.n, size))
	}

	landed := 0
	var missing []int
	var firstErr error
	for i, err := range errs {
		if err == nil {
			landed++
			continue
		}
		missing = append(missing, i)
		if firstErr == nil {
			firstErr = err
		}
		g.counter("cluster_put_shard_failures_total",
			"Shard uploads that failed permanently during puts, by node.",
			obs.Label{Key: "node", Value: string(placement[i].ID)}).Inc()
	}
	if landed < g.quorum {
		// Not enough durability to ack. The shards that landed are
		// stale the moment the client retries; clear them best-effort
		// on a fresh context (ours may already be cancelled).
		cleanCtx, cleanCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cleanCancel()
		for i, err := range errs {
			if err == nil {
				g.clients[placement[i].ID].WithClass(class).DeleteShard(cleanCtx, object, i)
			}
		}
		return fail(fmt.Errorf("only %d of %d shards landed, quorum is %d: %w",
			landed, n, g.quorum, firstErr))
	}

	// Quorum holds. Journal what is owed before acknowledging — the
	// durability contract is that an acked degraded put survives a
	// gateway crash — and discharge stale intents for shards this put
	// just (re)wrote.
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			if err := g.intents.Done(object, i); err != nil {
				return fail(err)
			}
		}
	}
	for _, i := range missing {
		if err := g.intents.Add(object, i); err != nil {
			return fail(err)
		}
	}
	if g.onDegraded != nil {
		for _, i := range missing {
			g.onDegraded(object, i)
		}
	}

	result := "ok"
	if len(missing) > 0 {
		result = "degraded"
		g.counter("cluster_put_degraded_total",
			"Puts acknowledged at quorum with one or more shards owed to repair.").Inc()
	}
	g.counter("cluster_puts_total", "Object puts, by result.",
		obs.Label{Key: "result", Value: result}).Inc()
	g.counter("cluster_put_bytes_total", "Object payload bytes written.").Add(uint64(size))
	return placement, nil
}

// uploadShard streams one shard from its pipe into its node. With
// retries enabled, the bytes are teed into a spool as the first
// attempt streams them; a transient failure drains the encoder's
// remaining output into the spool (keeping the pipeline moving) and
// replays the complete shard from memory, with linearly growing,
// fully-jittered backoff between attempts. Failures never tear down
// the put: the pipe is always drained to EOF so the other shards'
// encode is unaffected, and the caller decides afterwards whether
// quorum held.
func (g *Gateway) uploadShard(ctx context.Context, object string, idx int, id NodeID, class string, pr *io.PipeReader, hdr []byte) error {
	defer pr.Close()
	cli := g.clients[id].WithClass(class)
	if g.retries < 0 {
		err := cli.PutShard(ctx, object, idx, io.MultiReader(bytes.NewReader(hdr), pr))
		if err != nil {
			io.Copy(io.Discard, pr)
		}
		return err
	}
	sp := &putSpool{}
	body := &spoolBody{src: io.MultiReader(bytes.NewReader(hdr), pr), sp: sp}
	err := cli.PutShard(ctx, object, idx, body)
	rest := body.seal()
	if err == nil {
		return nil
	}
	if !node.Transient(err) {
		io.Copy(io.Discard, pr)
		return err
	}
	// Drain what the failed attempt did not consume — from the sealed
	// body's source, so the spool also picks up header bytes a
	// refused-at-connect attempt never read. Only a complete spool can
	// be replayed; a drain error means the encode itself failed and
	// there is nothing to retry.
	if _, derr := io.Copy(sp, rest); derr != nil {
		return err
	}
	for attempt := 1; attempt <= g.retries; attempt++ {
		if serr := sleepCtx(ctx, putBackoff(g.seed, idx, attempt, g.backoff)); serr != nil {
			return err
		}
		err = cli.PutShard(ctx, object, idx, bytes.NewReader(sp.bytes()))
		if err == nil || !node.Transient(err) {
			return err
		}
	}
	return err
}

// putBackoff is the delay before retry attempt (1-based): full jitter
// over [0, attempt·base), deterministic in (seed, shard, attempt) so a
// seeded chaos run replays its exact retry schedule.
func putBackoff(seed uint64, shard, attempt int, base time.Duration) time.Duration {
	span := time.Duration(attempt) * base
	h := mix(seed ^ uint64(shard)<<32 ^ uint64(attempt))
	return time.Duration(h % uint64(span))
}

// sleepCtx pauses for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// putSpool is a mutex-guarded append-only byte buffer. The lock
// matters: net/http's transport may still be reading (and closing) a
// request body from its own goroutine after RoundTrip has returned,
// so the tee that fills the spool can race the drain that completes
// it unless both sides serialize here.
type putSpool struct {
	mu sync.Mutex
	b  []byte
}

func (s *putSpool) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.b = append(s.b, p...)
	s.mu.Unlock()
	return len(p), nil
}

// bytes snapshots the spooled contents. Callers only read it after
// the upload attempt that fed the spool has been sealed and drained,
// so the copy is stable.
func (s *putSpool) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b
}

// spoolBody tees an upload body into a spool and can be sealed: after
// seal, reads report EOF without touching the source, cutting off the
// transport's post-RoundTrip body goroutine so the uploader gets the
// source back for exclusive use and can drain the unread remainder
// into the spool itself.
type spoolBody struct {
	mu     sync.Mutex
	src    io.Reader
	sp     *putSpool
	sealed bool
}

func (b *spoolBody) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed {
		return 0, io.EOF
	}
	n, err := b.src.Read(p)
	if n > 0 {
		b.sp.Write(p[:n])
	}
	return n, err
}

// seal cuts the transport off and hands the not-yet-consumed source
// back to the caller.
func (b *spoolBody) seal() io.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sealed = true
	return b.src
}

// readerCtx wraps r so each Read first checks ctx: once the put's
// context ends, the next read fails instead of letting a slow source
// hold the pipeline open. (A single Read already blocked inside r is
// beyond rescue — this bounds the damage to one call.)
func readerCtx(ctx context.Context, r io.Reader) io.Reader {
	return &ctxReader{ctx: ctx, r: r}
}

type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// openSet is the result of opening an object's shards for decode.
type openSet struct {
	header  shardfile.Header
	readers []io.Reader // k+m entries, nil where unopened/failed
	opened  int
}

// open fetches shards of object in router preference order until k +
// spares are streaming (or candidates run out), observing per-node
// open latency into the router. exclude skips one shard index (the
// shard being rebuilt; -1 to open any). Callers own the readers — pass
// them to a decoder with CloseReaders set.
func (g *Gateway) open(ctx context.Context, object string, placement Placement, class string, spares, exclude int) (openSet, error) {
	n := len(placement)
	want := g.k + spares
	if want > n {
		want = n
	}
	set := openSet{readers: make([]io.Reader, n)}
	var firstErr error
	for _, idx := range g.router.Order(object, placement) {
		if set.opened >= want {
			break
		}
		if idx == exclude {
			continue
		}
		info := placement[idx]
		cli := g.clients[info.ID].WithClass(class)
		start := time.Now()
		h, body, err := cli.OpenShard(ctx, object, idx)
		g.router.Observe(info.ID, time.Since(start), err)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d from %s: %w", idx, info.ID, err)
			}
			g.counter("cluster_open_failures_total",
				"Shard opens that failed during object reads, by node.",
				obs.Label{Key: "node", Value: string(info.ID)}).Inc()
			continue
		}
		if int(h.Index) != idx || int(h.K) != g.k || int(h.M) != g.m {
			body.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d from %s: header (k=%d m=%d index=%d) does not match cluster geometry",
					idx, info.ID, h.K, h.M, h.Index)
			}
			continue
		}
		if set.opened == 0 {
			set.header = h
		}
		set.readers[idx] = body
		set.opened++
	}
	if set.opened < g.k {
		for _, r := range set.readers {
			if c, ok := r.(io.Closer); ok {
				c.Close()
			}
		}
		if firstErr == nil {
			firstErr = errors.New("no shards reachable")
		}
		return openSet{}, fmt.Errorf("cluster: get %q: only %d of %d shards available: %w",
			object, set.opened, g.k, firstErr)
	}
	return set, nil
}

// GetObject streams the object's bytes into w, reconstructing from any
// k of its shards: failed nodes are skipped at open, stragglers are
// hedged around mid-stream, and corrupt blocks are healed by CRC-led
// reconstruction — the full degraded-read machinery, over the network.
func (g *Gateway) GetObject(ctx context.Context, object string, w io.Writer, class string) error {
	placement, err := g.Place(object)
	if err != nil {
		return err
	}
	set, err := g.open(ctx, object, placement, class, g.spares, -1)
	if err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return err
	}
	opts := g.streamOptions()
	opts.StripeSize = int(set.header.ShardSize) * g.k
	opts.Checksum = set.header.Algo.Stream()
	opts.CloseReaders = true
	dec, err := stream.NewDecoder(opts)
	if err != nil {
		return err
	}
	if err := dec.Decode(ctx, set.readers, w, int64(set.header.FileSize)); err != nil {
		g.counter("cluster_gets_total", "Object gets, by result.",
			obs.Label{Key: "result", Value: "error"}).Inc()
		return fmt.Errorf("cluster: get %q: %w", object, err)
	}
	g.counter("cluster_gets_total", "Object gets, by result.",
		obs.Label{Key: "result", Value: "ok"}).Inc()
	g.counter("cluster_get_bytes_total", "Object payload bytes read.").Add(set.header.FileSize)
	return nil
}

// DeleteObject drops every shard of the object from its placement.
// Unreachable nodes make it return an error, but reachable shards are
// deleted regardless (deletes are idempotent; re-run to finish).
func (g *Gateway) DeleteObject(ctx context.Context, object string, class string) error {
	placement, err := g.Place(object)
	if err != nil {
		return err
	}
	var firstErr error
	for idx, info := range placement {
		cli := g.clients[info.ID].WithClass(class)
		if err := cli.DeleteShard(ctx, object, idx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: delete %q shard %d on %s: %w", object, idx, info.ID, err)
		}
	}
	return firstErr
}

// Objects lists every object any reachable node stores shards for.
func (g *Gateway) Objects(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	var names []string
	var firstErr error
	reached := 0
	for _, info := range g.cmap.Nodes() {
		list, err := g.clients[info.ID].Objects(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		reached++
		for _, name := range list {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("cluster: no node reachable: %w", firstErr)
	}
	sort.Strings(names)
	return names, nil
}

// Handler returns the gateway's object API:
//
//	PUT    /v1/object/{object}     store an object (Content-Length required)
//	GET    /v1/object/{object}     fetch an object
//	DELETE /v1/object/{object}     delete an object's shards
//	GET    /v1/objects/all         cluster-wide object listing
//	GET    /v1/placement/{object}  the object's shard placement as JSON
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/object/{object}", g.handlePut)
	mux.HandleFunc("GET /v1/object/{object}", g.handleGet)
	mux.HandleFunc("DELETE /v1/object/{object}", g.handleDelete)
	mux.HandleFunc("GET /v1/objects/all", func(w http.ResponseWriter, r *http.Request) {
		names, err := g.Objects(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("GET /v1/placement/{object}", func(w http.ResponseWriter, r *http.Request) {
		p, err := g.Place(r.PathValue("object"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, p)
	})
	return mux
}

func (g *Gateway) handlePut(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	if r.ContentLength < 0 {
		http.Error(w, "object put requires Content-Length", http.StatusLengthRequired)
		return
	}
	p, err := g.PutObject(r.Context(), object, r.Body, r.ContentLength, node.Class(r))
	if err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, p)
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request) {
	object := r.PathValue("object")
	w.Header().Set("Content-Type", "application/octet-stream")
	// The body streams as it decodes; an error after the first byte can
	// only truncate the response (the client sees the connection die).
	if err := g.GetObject(r.Context(), object, w, node.Class(r)); err != nil {
		gatewayFail(w, err)
	}
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := g.DeleteObject(r.Context(), r.PathValue("object"), node.Class(r)); err != nil {
		gatewayFail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func gatewayFail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, node.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

// countingReader tallies bytes as the encoder consumes them.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
