package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// specMap builds a map from a spec or fails the test.
func specMap(t *testing.T, spec string) *Map {
	t.Helper()
	m, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sixNodeSpec is the canonical test topology: six nodes, six racks,
// two zones.
const sixNodeSpec = "n0=h0:1/r0/z0,n1=h1:1/r1/z0,n2=h2:1/r2/z0,n3=h3:1/r3/z1,n4=h4:1/r4/z1,n5=h5:1/r5/z1"

func TestParseSpec(t *testing.T) {
	m := specMap(t, sixNodeSpec)
	if m.Len() != 6 || m.Domains() != 6 {
		t.Fatalf("len=%d domains=%d, want 6/6", m.Len(), m.Domains())
	}
	n, ok := m.Get("n3")
	if !ok || n.Addr != "h3:1" || n.Rack != "r3" || n.Zone != "z1" || n.Domain() != "z1/r3" {
		t.Fatalf("n3 = %+v", n)
	}

	// Defaults: rack <- ID, zone <- "default".
	m = specMap(t, "a=h:1,b=h:2")
	a, _ := m.Get("a")
	if a.Rack != "a" || a.Zone != "default" {
		t.Fatalf("defaulted node = %+v", a)
	}

	// File form: one node per line, # comments, blank lines.
	m = specMap(t, "# test topology\nn0=h0:1/r0/z0\n\nn1=h1:1/r1/z0,n2=h2:1/r2/z0\n")
	if m.Len() != 3 {
		t.Fatalf("newline spec len = %d, want 3", m.Len())
	}

	for _, bad := range []string{
		"",                   // empty set
		"n0",                 // no addr
		"n0=h:1,n0=h:2",      // dup ID
		"n0=h:1,n1=h:1",      // dup addr
		"n0=h:1/r0/z0/extra", // too many fields
		"=h:1",               // empty ID
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestPlacementDeterministicAndRackDisjoint(t *testing.T) {
	m := specMap(t, sixNodeSpec)
	for i := 0; i < 200; i++ {
		object := fmt.Sprintf("object-%04d", i)
		p, err := m.Place(object, 6)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic: same inputs, same answer.
		p2, _ := m.Place(object, 6)
		for j := range p {
			if p[j].ID != p2[j].ID {
				t.Fatalf("%s: placement not deterministic at shard %d", object, j)
			}
		}
		// Rack-disjoint: every failure domain used at most once.
		domains := map[string]int{}
		for _, n := range p {
			domains[n.Domain()]++
		}
		for d, c := range domains {
			if c > 1 {
				t.Fatalf("%s: domain %s holds %d shards", object, d, c)
			}
		}
	}
}

func TestPlacementZoneSpread(t *testing.T) {
	// Four racks in z0, four in z1: a 4-shard stripe must use both
	// zones (2+2), never pile into one.
	m := specMap(t, "a0=h0:1/r0/z0,a1=h1:1/r1/z0,a2=h2:1/r2/z0,a3=h3:1/r3/z0,"+
		"b0=h4:1/r4/z1,b1=h5:1/r5/z1,b2=h6:1/r6/z1,b3=h7:1/r7/z1")
	for i := 0; i < 100; i++ {
		p, err := m.Place(fmt.Sprintf("zs-%d", i), 4)
		if err != nil {
			t.Fatal(err)
		}
		zones := map[string]int{}
		for _, n := range p {
			zones[n.Zone]++
		}
		if zones["z0"] != 2 || zones["z1"] != 2 {
			t.Fatalf("object zs-%d: zone spread %v, want 2+2", i, zones)
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	// Rendezvous hashing should spread primaries roughly evenly; with
	// 600 objects over 6 nodes no node should hold more than twice its
	// fair share of shard 0.
	m := specMap(t, sixNodeSpec)
	counts := map[NodeID]int{}
	for i := 0; i < 600; i++ {
		p, err := m.Place(fmt.Sprintf("balance-%d", i), 6)
		if err != nil {
			t.Fatal(err)
		}
		counts[p[0].ID]++
	}
	for id, c := range counts {
		if c > 200 {
			t.Fatalf("node %s holds %d of 600 primaries", id, c)
		}
	}
}

func TestPlacementRefusesTooFewDomains(t *testing.T) {
	// Three nodes share rack r0: only 4 domains for 6 shards.
	m := specMap(t, "n0=h0:1/r0/z0,n1=h1:1/r0/z0,n2=h2:1/r0/z0,n3=h3:1/r3/z1,n4=h4:1/r4/z1,n5=h5:1/r5/z1")
	if _, err := m.Place("x", 6); err == nil || !strings.Contains(err.Error(), "failure domains") {
		t.Fatalf("placement with 4 domains for 6 shards: %v", err)
	}
	// 4 shards fit the 4 domains.
	if _, err := m.Place("x", 4); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementStabilityUnderNodeLoss(t *testing.T) {
	// Rendezvous property: dropping one node moves only the shards it
	// held (plus the rank shifts it forces) — the surviving nodes'
	// relative score order is untouched. Verify that the set of chosen
	// nodes only shrinks by the lost node for most objects.
	all := specMap(t, sixNodeSpec)
	fiveSpec := strings.Join(strings.Split(sixNodeSpec, ",")[:5], ",")
	five := specMap(t, fiveSpec) // n5 removed
	moved := 0
	const objects = 200
	for i := 0; i < objects; i++ {
		object := fmt.Sprintf("stable-%d", i)
		pAll, err := all.Place(object, 4)
		if err != nil {
			t.Fatal(err)
		}
		pFive, err := five.Place(object, 4)
		if err != nil {
			t.Fatal(err)
		}
		before := map[NodeID]bool{}
		for _, n := range pAll {
			before[n.ID] = true
		}
		for _, n := range pFive {
			if !before[n.ID] {
				moved++
				break
			}
		}
	}
	// Only objects that had a shard on n5 (expected ~4/6 of them under
	// 4-of-6 placement) should see any new node appear.
	if moved > objects*8/10 {
		t.Fatalf("%d of %d placements changed after one node loss", moved, objects)
	}
}

func TestRouters(t *testing.T) {
	m := specMap(t, sixNodeSpec)
	p, err := m.Place("route-me", 6)
	if err != nil {
		t.Fatal(err)
	}

	order := FirstK{}.Order("route-me", p)
	for i, idx := range order {
		if idx != i {
			t.Fatalf("FirstK order = %v", order)
		}
	}

	rr := &RoundRobin{}
	o1 := rr.Order("route-me", p)
	o2 := rr.Order("route-me", p)
	if o1[0] == o2[0] {
		t.Fatalf("RoundRobin did not rotate: %v then %v", o1, o2)
	}

	ll := NewLeastLoaded()
	// Unobserved nodes first, then by latency.
	ll.Observe(p[0].ID, 50*time.Millisecond, nil)
	ll.Observe(p[1].ID, time.Millisecond, nil)
	order = ll.Order("route-me", p)
	if order[len(order)-1] != 0 || order[len(order)-2] != 1 {
		t.Fatalf("LeastLoaded order = %v, want observed nodes (1 then 0) last", order)
	}
	// A failure sinks a fast node behind a slow one.
	ll.Observe(p[1].ID, 0, fmt.Errorf("connection refused"))
	order = ll.Order("route-me", p)
	if order[len(order)-1] != 1 {
		t.Fatalf("LeastLoaded order after failure = %v, want shard 1 last", order)
	}

	if _, ok := NewRouter("least-loaded"); !ok {
		t.Fatal("NewRouter(least-loaded) unknown")
	}
	if _, ok := NewRouter("nope"); ok {
		t.Fatal("NewRouter accepted unknown policy")
	}
}
