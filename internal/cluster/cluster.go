// Package cluster is the control plane of the dialga shard service:
// static cluster membership with failure domains, deterministic
// rack/zone-aware shard placement, pluggable read routing, token-bucket
// admission control per traffic class, an object gateway that stripes
// whole objects across a placement of nodes with the streaming
// erasure pipeline, and a background repair queue that detects and
// rebuilds damaged shards without starving foreground traffic.
//
// The fault model is the Parallel Persistent Memory Model's: a node
// may fail at any point, but the shards it persisted survive it —
// recovery is re-attachment plus targeted reconstruction of exactly
// the shards that were lost, never whole-object re-replication. The
// data plane (internal/node) stays dumb; everything about *where*
// shards live and *who* may read or write *when* lives here.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID names one node in the cluster map.
type NodeID string

// NodeInfo is one node's membership record: its address and its
// failure-domain coordinates. A rack is the unit of correlated
// failure (a power feed, a top-of-rack switch); a zone groups racks
// (a room, a site). Placement never puts two shards of a stripe in
// one rack, and spreads across zones when it has the choice.
type NodeInfo struct {
	ID   NodeID `json:"id"`
	Addr string `json:"addr"`
	Rack string `json:"rack"`
	Zone string `json:"zone"`
}

// Domain returns the node's failure domain: its (zone, rack) pair,
// so equal rack names in different zones stay distinct domains.
func (n NodeInfo) Domain() string { return n.Zone + "/" + n.Rack }

// Map is a versioned cluster map: the full node set plus an epoch
// that orders successive maps. Placement and routing are pure
// functions of the map and the object name, so any node (or client)
// holding the same epoch computes the same answer without
// coordination. Maps are immutable after New; membership changes are
// expressed as a *new* Map with a higher epoch swapped in atomically
// (see Gateway.UpdateMap), never as in-place mutation.
type Map struct {
	epoch uint64
	nodes []NodeInfo // sorted by ID
	byID  map[NodeID]NodeInfo
}

// New validates a node set into a Map: IDs and addresses must be
// unique and non-empty; an empty rack defaults to the node's own ID
// (every node its own failure domain), an empty zone to "default".
func New(nodes []NodeInfo) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node set")
	}
	m := &Map{byID: make(map[NodeID]NodeInfo, len(nodes))}
	addrs := make(map[string]NodeID, len(nodes))
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node with empty ID (addr %q)", n.Addr)
		}
		if n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %s has no address", n.ID)
		}
		if _, dup := m.byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %s", n.ID)
		}
		if prev, dup := addrs[n.Addr]; dup {
			return nil, fmt.Errorf("cluster: nodes %s and %s share address %s", prev, n.ID, n.Addr)
		}
		if n.Rack == "" {
			n.Rack = string(n.ID)
		}
		if n.Zone == "" {
			n.Zone = "default"
		}
		m.byID[n.ID] = n
		addrs[n.Addr] = n.ID
		m.nodes = append(m.nodes, n)
	}
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].ID < m.nodes[j].ID })
	return m, nil
}

// ParseSpec builds a Map from a compact flag-friendly spec:
// "id=addr[/rack[/zone]]" entries joined by commas or newlines, e.g.
//
//	n0=127.0.0.1:7070/r0/z0,n1=127.0.0.1:7071/r1/z0,n2=127.0.0.1:7072/r2/z1
//
// Newlines let a -cluster-file spec list one node per line; lines
// starting with # are comments.
func ParseSpec(spec string) (*Map, error) {
	var nodes []NodeInfo
	for _, tok := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == '\n' }) {
		tok = strings.TrimSpace(tok)
		if tok == "" || strings.HasPrefix(tok, "#") {
			continue
		}
		id, rest, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: node spec %q wants id=addr[/rack[/zone]]", tok)
		}
		parts := strings.Split(rest, "/")
		n := NodeInfo{ID: NodeID(id), Addr: parts[0]}
		if len(parts) > 1 {
			n.Rack = parts[1]
		}
		if len(parts) > 2 {
			n.Zone = parts[2]
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("cluster: node spec %q has too many /-fields", tok)
		}
		nodes = append(nodes, n)
	}
	return New(nodes)
}

// Epoch returns the map's version. Epoch 0 is the boot map; every
// reload bumps it. Placement depends only on membership, not the
// epoch — the epoch exists so concurrent readers can tell which
// generation of the map an operation was pinned to.
func (m *Map) Epoch() uint64 { return m.epoch }

// WithEpoch returns a copy of the map stamped with the given epoch.
// The node set is shared (maps are immutable), so the copy is cheap.
func (m *Map) WithEpoch(epoch uint64) *Map {
	return &Map{epoch: epoch, nodes: m.nodes, byID: m.byID}
}

// MapInfo is the wire shape of a cluster map, served by the
// /v1/cluster/map admin endpoint.
type MapInfo struct {
	Epoch uint64     `json:"epoch"`
	Nodes []NodeInfo `json:"nodes"`
}

// Info returns the map's wire representation.
func (m *Map) Info() MapInfo { return MapInfo{Epoch: m.epoch, Nodes: m.nodes} }

// Nodes returns the membership, sorted by ID. The caller must not
// mutate it.
func (m *Map) Nodes() []NodeInfo { return m.nodes }

// Len returns the node count.
func (m *Map) Len() int { return len(m.nodes) }

// Get looks a node up by ID.
func (m *Map) Get(id NodeID) (NodeInfo, bool) {
	n, ok := m.byID[id]
	return n, ok
}

// Domains returns the number of distinct failure domains (zone/rack
// pairs) in the map — the ceiling on how many shards of one stripe
// can be placed strictly domain-disjoint.
func (m *Map) Domains() int {
	seen := make(map[string]struct{}, len(m.nodes))
	for _, n := range m.nodes {
		seen[n.Domain()] = struct{}{}
	}
	return len(seen)
}
