package adapt

import (
	"math"
	"testing"
	"time"
)

// testKnobs is the starting knob set for the scripted traces: enough
// headroom on every knob that a clamp never masks a policy decision
// unless a test wants it to.
func testKnobs() Knobs {
	return Knobs{
		HedgeAfter:   time.Millisecond,
		DeadlineMult: 3.0,
		Readahead:    2,
		Workers:      2,
		Window:       4,
	}
}

func testLimits() Limits {
	return Limits{
		MinHedgeAfter: 100 * time.Microsecond, MaxHedgeAfter: 8 * time.Millisecond,
		MinDeadlineMult: 1.5, MaxDeadlineMult: 16,
		MinReadahead: 0, MaxReadahead: 8,
		MinWorkers: 1, MaxWorkers: 4,
		MinWindow: 1, MaxWindow: 8,
	}
}

// lat builds a Signals sample with only the latency signal set.
func lat(us float64) Signals { return Signals{StripeP99US: us} }

// run replays a scripted signal trace through a fresh policy and
// returns every decision, threading the knob state exactly as the
// controller does.
func run(t *testing.T, p *Policy, start Knobs, trace []Signals) []Decision {
	t.Helper()
	out := make([]Decision, 0, len(trace))
	k := start
	for _, s := range trace {
		d := p.Decide(k, s)
		k = d.Knobs
		out = append(out, d)
	}
	return out
}

// adjustments filters a decision list down to ticks that moved knobs.
func adjustments(ds []Decision) []Decision {
	var out []Decision
	for _, d := range ds {
		if len(d.Changed) > 0 {
			out = append(out, d)
		}
	}
	return out
}

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestPolicyWarmup: the first sample only seeds the baseline — no
// decision, no knob movement, whatever the values look like.
func TestPolicyWarmup(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	d := p.Decide(testKnobs(), lat(50_000))
	if d.Reason != ReasonWarmup || len(d.Changed) != 0 {
		t.Fatalf("first tick = %+v, want pure warmup", d)
	}
	if d.Knobs != testKnobs() {
		t.Fatalf("warmup moved knobs: %v", d.Knobs)
	}
}

// TestPolicyStepChange pins the exact knob trajectory for a latency
// step: 1000us baseline, then a sustained jump to 2000us. The 110%
// trigger fires exactly once — the Schmitt trigger stays disarmed
// while the trailing baseline catches up, and once it re-arms the
// ratio is already back under the trigger — so a step costs one
// adjustment, not one per tick.
func TestPolicyStepChange(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	trace := []Signals{lat(1000), lat(1000)}
	for i := 0; i < 20; i++ {
		trace = append(trace, lat(2000))
	}
	ds := run(t, p, testKnobs(), trace)

	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("step change produced %d adjustments, want exactly 1: %+v", len(adj), adj)
	}
	d := adj[0]
	if d.Tick != 3 || d.Reason != ReasonLatencyHigh {
		t.Fatalf("adjustment at tick %d reason %q, want tick 3 latency-high", d.Tick, d.Reason)
	}
	if !eq(d.LatencyRatio, 2.0) {
		t.Fatalf("latency ratio = %v, want 2.0 (2000us against a 1000us baseline)", d.LatencyRatio)
	}
	// The aggressive branch moved every knob one step.
	want := Knobs{
		HedgeAfter:   800 * time.Microsecond, // 1ms * 0.8
		DeadlineMult: 2.7,                    // 3.0 * 0.9
		Readahead:    3,                      // 2 + 1
		Workers:      3,                      // 2 + 1
		Window:       5,                      // 4 + 1
	}
	if d.Knobs.HedgeAfter != want.HedgeAfter || !eq(d.Knobs.DeadlineMult, want.DeadlineMult) ||
		d.Knobs.Readahead != want.Readahead || d.Knobs.Workers != want.Workers ||
		d.Knobs.Window != want.Window {
		t.Fatalf("knobs after step = %+v, want %+v", d.Knobs, want)
	}
	// The final steady state keeps those knobs: no later tick reverted
	// or re-fired.
	if final := ds[len(ds)-1].Knobs; final.HedgeAfter != want.HedgeAfter || final.Readahead != want.Readahead {
		t.Fatalf("knobs drifted after the single adjustment: %+v", final)
	}
}

// TestPolicyRamp: a slow continuous ramp (+5% per tick) crosses the
// relative threshold once the trailing baseline falls far enough
// behind, fires once, and — because the ratio never falls back inside
// the re-arm band while the ramp continues — never fires again.
func TestPolicyRamp(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	trace := []Signals{}
	v := 1000.0
	for i := 0; i < 30; i++ {
		trace = append(trace, lat(v))
		v *= 1.05
	}
	ds := run(t, p, testKnobs(), trace)
	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("ramp produced %d adjustments, want exactly 1", len(adj))
	}
	// +5%/tick against an alpha=0.2 trailing EWMA crosses 110% on
	// tick 4: base = 1028.5..., lat = 1157.6..., ratio ≈ 1.1256.
	if adj[0].Tick != 4 {
		t.Fatalf("ramp fired at tick %d, want 4", adj[0].Tick)
	}
	if r := adj[0].LatencyRatio; r < 1.10 || r > 1.13 {
		t.Fatalf("ramp fire ratio = %v, want ≈1.1256", r)
	}
}

// TestPolicyInflatedSeedRecovers: a transient spike in the seeding
// window (process startup, cold caches) must not blind the trigger.
// The baseline seeds at 15000us, the true steady state is 3000us, and
// a genuine regression to 9000us follows two clean ticks. With the
// asymmetric baseline the clean ticks pull the EWMA down fast
// (15000 -> 7800 -> 4920, down-alpha 0.6) and the regression fires at
// ratio ≈ 1.83; a symmetric alpha=0.2 EWMA would still sit at 10680
// and report the 9000us window as *better* than baseline.
func TestPolicyInflatedSeedRecovers(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	ds := run(t, p, testKnobs(), []Signals{
		lat(15_000), lat(3000), lat(3000), lat(9000),
	})
	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("inflated seed trace produced %d adjustments, want exactly 1: %+v", len(adj), adj)
	}
	if adj[0].Tick != 4 || adj[0].Reason != ReasonLatencyHigh {
		t.Fatalf("fired at tick %d reason %q, want tick 4 latency-high", adj[0].Tick, adj[0].Reason)
	}
	if r := adj[0].LatencyRatio; r < 1.8 || r > 1.86 {
		t.Fatalf("fire ratio = %v, want ≈1.829 (9000 against the decayed 4920 baseline)", r)
	}
}

// TestPolicyOscillatingStragglers pins the cooldown suppression
// window: latency alternating 1000/3000 per tick re-arms the trigger
// on every low tick, but the per-knob cooldown (3 ticks) blocks every
// other excursion. Fires land at ticks 2, 6, 10 — the excursions at
// ticks 4 and 8 trigger but are fully suppressed.
func TestPolicyOscillatingStragglers(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	trace := []Signals{}
	for i := 0; i < 11; i++ {
		if i%2 == 1 {
			trace = append(trace, lat(3000))
		} else {
			trace = append(trace, lat(1000))
		}
	}
	ds := run(t, p, testKnobs(), trace)

	var fired, suppressed []int
	for _, d := range ds {
		if d.Reason != ReasonLatencyHigh {
			continue
		}
		if len(d.Changed) > 0 {
			fired = append(fired, d.Tick)
		} else if len(d.Suppressed) > 0 {
			suppressed = append(suppressed, d.Tick)
		}
	}
	wantFired := []int{2, 6, 10}
	wantSuppressed := []int{4, 8}
	if len(fired) != len(wantFired) {
		t.Fatalf("fired at ticks %v, want %v", fired, wantFired)
	}
	for i := range fired {
		if fired[i] != wantFired[i] {
			t.Fatalf("fired at ticks %v, want %v", fired, wantFired)
		}
	}
	if len(suppressed) != len(wantSuppressed) {
		t.Fatalf("suppressed at ticks %v, want %v", suppressed, wantSuppressed)
	}
	for i := range suppressed {
		if suppressed[i] != wantSuppressed[i] {
			t.Fatalf("suppressed at ticks %v, want %v", suppressed, wantSuppressed)
		}
	}
	// A suppressed excursion must name every knob it wanted to move.
	for _, d := range ds {
		if d.Tick == 4 {
			if len(d.Suppressed) != 5 {
				t.Fatalf("tick 4 suppressed %v, want all five knobs", d.Suppressed)
			}
		}
	}
}

// TestPolicyUselessHigh: hedges that mostly lose fire the back-off
// branch — shallower readahead, later hedges, looser deadlines — and
// the ratio baseline's hysteresis keeps it to one adjustment while
// the useless rate stays flat.
func TestPolicyUselessHigh(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	mk := func(tick uint64) Signals {
		return Signals{
			StripeP99US: 1000,
			HedgedReads: 10 * tick,
			HedgeWins:   1 * tick,
		}
	}
	trace := []Signals{}
	for i := uint64(0); i < 10; i++ {
		trace = append(trace, mk(i))
	}
	ds := run(t, p, testKnobs(), trace)
	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("flat useless-hedge rate produced %d adjustments, want 1", len(adj))
	}
	d := adj[0]
	if d.Reason != ReasonUselessHigh || d.Tick != 2 {
		t.Fatalf("adjustment = tick %d reason %q, want tick 2 useless-high", d.Tick, d.Reason)
	}
	if !eq(d.UselessRatio, 0.9) {
		t.Fatalf("useless ratio = %v, want 0.9 (9 of 10 hedges lost)", d.UselessRatio)
	}
	want := Knobs{
		HedgeAfter:   1250 * time.Microsecond, // 1ms * 1.25
		DeadlineMult: 3.45,                    // 3.0 * 1.15
		Readahead:    1,                       // 2 - 1
		Workers:      2,                       // untouched
		Window:       4,                       // untouched
	}
	if d.Knobs.HedgeAfter != want.HedgeAfter || !eq(d.Knobs.DeadlineMult, want.DeadlineMult) ||
		d.Knobs.Readahead != want.Readahead || d.Knobs.Workers != want.Workers ||
		d.Knobs.Window != want.Window {
		t.Fatalf("knobs after back-off = %+v, want %+v", d.Knobs, want)
	}
}

// TestPolicyUselessSmallSample: a window with almost no speculative
// work cannot fire the back-off, however bad its ratio looks — one
// lost hedge is noise, not a trend. The same loss rate at volume
// fires.
func TestPolicyUselessSmallSample(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	trace := []Signals{
		{StripeP99US: 1000},
		{StripeP99US: 1000, HedgedReads: 1},  // 1 hedge, lost: ratio 1.0 on a sample of 1
		{StripeP99US: 1000, HedgedReads: 3},  // 2 more lost hedges, still under the gate
		{StripeP99US: 1000, HedgedReads: 13}, // 10 lost hedges in one window: signal
	}
	ds := run(t, p, testKnobs(), trace)
	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("got %d adjustments, want 1 (small windows gated): %+v", len(adj), adj)
	}
	if adj[0].Tick != 4 || adj[0].Reason != ReasonUselessHigh {
		t.Fatalf("adjustment = tick %d reason %q, want tick 4 useless-high", adj[0].Tick, adj[0].Reason)
	}
	// The gated windows must report no-signal, not a terrifying 1.0.
	for _, d := range ds {
		if (d.Tick == 2 || d.Tick == 3) && d.UselessRatio >= 0 {
			t.Fatalf("tick %d useless ratio = %v, want -1 (below MinSpeculative)", d.Tick, d.UselessRatio)
		}
	}
}

// TestPolicyBreakerStorm: a burst of breaker trips is a regime change
// — the policy relaxes the demotion knobs and reseeds its baselines
// from the new normal instead of chasing the spike.
func TestPolicyBreakerStorm(t *testing.T) {
	p := NewPolicy(Config{Limits: testLimits()})
	trace := []Signals{
		lat(1000),
		lat(1000),
		{StripeP99US: 5000, BreakerTrips: 5}, // 5 trips in one tick: storm
		{StripeP99US: 5000, BreakerTrips: 5}, // trips flat: no new storm
		{StripeP99US: 5000, BreakerTrips: 5},
	}
	ds := run(t, p, testKnobs(), trace)
	adj := adjustments(ds)
	if len(adj) != 1 {
		t.Fatalf("storm produced %d adjustments, want 1", len(adj))
	}
	d := adj[0]
	if d.Reason != ReasonStorm || d.Tick != 3 {
		t.Fatalf("adjustment = tick %d reason %q, want tick 3 breaker-storm", d.Tick, d.Reason)
	}
	if d.Knobs.HedgeAfter != 1250*time.Microsecond || !eq(d.Knobs.DeadlineMult, 3.45) {
		t.Fatalf("storm knobs = %+v, want hedge 1.25ms mult 3.45", d.Knobs)
	}
	// The baseline reseeded at 5000us, so the post-storm plateau is
	// the new normal: ratio 1.0, steady, no latency-high chasing.
	for _, d := range ds[3:] {
		if d.Reason != ReasonSteady {
			t.Fatalf("post-storm tick %d reason %q, want steady (baseline reseeded)", d.Tick, d.Reason)
		}
		if !eq(d.LatencyRatio, 1.0) {
			t.Fatalf("post-storm ratio = %v, want 1.0", d.LatencyRatio)
		}
	}
}

// TestPolicyClampsAndPins: knobs never leave their limits, and a
// pipeline built without hedging (HedgeAfter 0) keeps it pinned at
// zero no matter how hard the latency branch fires.
func TestPolicyClampsAndPins(t *testing.T) {
	lim := testLimits()
	lim.MinHedgeAfter, lim.MaxHedgeAfter = 0, 0
	p := NewPolicy(Config{Limits: lim, CooldownTicks: 1})
	k := Knobs{HedgeAfter: 0, DeadlineMult: 1.5, Readahead: 8, Workers: 4, Window: 8}
	trace := []Signals{lat(1000)}
	for i := 0; i < 20; i++ {
		trace = append(trace, lat(1000*math.Pow(1.3, float64(i+1)))) // relentless regression
	}
	ds := run(t, p, k, trace)
	for _, d := range ds {
		if d.Knobs.HedgeAfter != 0 {
			t.Fatalf("tick %d enabled hedging on a hedge-less pipeline: %v", d.Tick, d.Knobs.HedgeAfter)
		}
		if d.Knobs.Readahead > lim.MaxReadahead || d.Knobs.Workers > lim.MaxWorkers ||
			d.Knobs.Window > lim.MaxWindow {
			t.Fatalf("tick %d escaped limits: %+v", d.Tick, d.Knobs)
		}
		if d.Knobs.DeadlineMult < lim.MinDeadlineMult-1e-9 {
			t.Fatalf("tick %d deadline mult below floor: %v", d.Tick, d.Knobs.DeadlineMult)
		}
	}
}

// TestPolicyReplayIsDeterministic: the same trace through two fresh
// policies yields identical decision sequences — the property every
// other test in this file depends on.
func TestPolicyReplayIsDeterministic(t *testing.T) {
	trace := []Signals{}
	v := 1000.0
	for i := 0; i < 40; i++ {
		s := lat(v)
		s.HedgedReads = uint64(i * 3)
		s.HedgeWins = uint64(i)
		s.BreakerTrips = uint64(i / 7)
		trace = append(trace, s)
		if i%5 == 0 {
			v *= 1.4
		} else {
			v *= 0.97
		}
	}
	a := run(t, NewPolicy(Config{Limits: testLimits()}), testKnobs(), trace)
	b := run(t, NewPolicy(Config{Limits: testLimits()}), testKnobs(), trace)
	for i := range a {
		if a[i].Reason != b[i].Reason || a[i].Knobs != b[i].Knobs ||
			len(a[i].Changed) != len(b[i].Changed) {
			t.Fatalf("replay diverged at tick %d: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}
