//go:build race

package adapt

// raceEnabled reports whether the race detector is active; the
// concurrent knob-hammer test scales its workload down under
// instrumentation.
const raceEnabled = true
