package adapt

import (
	"sync"
	"testing"
	"time"

	"dialga/internal/obs"
	"dialga/internal/vclock"
)

// scripted returns a Source that replays trace and then repeats its
// last sample forever (a controller may tick more often than the
// script is long).
func scripted(trace []Signals) Source {
	var mu sync.Mutex
	i := 0
	return SignalsFunc(func() Signals {
		mu.Lock()
		defer mu.Unlock()
		s := trace[i]
		if i < len(trace)-1 {
			i++
		}
		return s
	})
}

// stepTrace is warmup, one steady tick, then a sustained latency
// step: exactly one adjustment however many ticks run.
func stepTrace() []Signals {
	return []Signals{lat(1000), lat(1000), lat(2000), lat(2000), lat(2000)}
}

// TestControllerClockDriven drives Run with a fake clock: every
// Advance by one interval is exactly one policy tick, with no real
// sleeping anywhere.
func TestControllerClockDriven(t *testing.T) {
	fc := vclock.NewFake()
	reg := obs.NewRegistry()
	c, err := New(Options{
		Source:   scripted(stepTrace()),
		Initial:  testKnobs(),
		Policy:   Config{Limits: testLimits()},
		Interval: 100 * time.Millisecond,
		Clock:    fc,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	fc.BlockUntil(1) // the loop's ticker is armed
	ticks := reg.Counter("adapt_ticks_total", "")
	for i := 1; i <= 6; i++ {
		fc.Advance(100 * time.Millisecond)
		waitCounter(t, ticks, uint64(i))
	}
	c.Stop()

	if got := reg.Counter("adapt_adjustments_total", "").Value(); got != 1 {
		t.Fatalf("adjustments = %d, want exactly 1 for a step trace", got)
	}
	if h := c.History(); len(h) != 1 || h[0].Reason != ReasonLatencyHigh {
		t.Fatalf("history = %+v, want one latency-high decision", h)
	}
	if k := c.State().Load(); k.Readahead != 3 || k.HedgeAfter != 800*time.Microsecond {
		t.Fatalf("published knobs = %+v, want the stepped set", k)
	}
	// Advancing after Stop must not tick.
	before := ticks.Value()
	fc.Advance(time.Second)
	if ticks.Value() != before {
		t.Fatal("controller ticked after Stop")
	}
}

// waitCounter spins (bounded, no sleeps) until the counter reaches
// want — the rendezvous between the fake-clock Advance and the
// controller goroutine's Step.
func waitCounter(t *testing.T, c *obs.Counter, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Value(), want)
		}
	}
}

// TestControllerStripeDriven: with EveryPulls set, policy ticks land
// on exact PipelineTuning call counts — fully deterministic with no
// clock at all.
func TestControllerStripeDriven(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Options{
		Source:     scripted(stepTrace()),
		Initial:    testKnobs(),
		Policy:     Config{Limits: testLimits()},
		EveryPulls: 4,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ticks := reg.Counter("adapt_ticks_total", "")
	for pull := 1; pull <= 24; pull++ {
		tn := c.PipelineTuning()
		if want := uint64(pull / 4); ticks.Value() != want {
			t.Fatalf("after pull %d: %d ticks, want %d", pull, ticks.Value(), want)
		}
		// Until the step adjustment (tick 3 = pull 12), tuning is the
		// initial knob set.
		if pull < 12 && tn.Readahead != 2 {
			t.Fatalf("pull %d saw readahead %d before the step", pull, tn.Readahead)
		}
		if pull >= 12 && tn.Readahead != 3 {
			t.Fatalf("pull %d saw readahead %d, want the stepped 3", pull, tn.Readahead)
		}
	}
	if got := reg.Counter("adapt_adjustments_total", "").Value(); got != uint64(len(c.History())) {
		t.Fatalf("adjustments counter %d != history length %d",
			got, len(c.History()))
	}
}

// TestControllerMetricsAndTrace: knob gauges track the published set
// and adjusting ticks annotate the trace ring.
func TestControllerMetricsAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	c, err := New(Options{
		Source:  scripted(stepTrace()),
		Initial: testKnobs(),
		Policy:  Config{Limits: testLimits()},
		Metrics: reg,
		Trace:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := reg.Gauge("adapt_readahead", "").Value(); g != 2 {
		t.Fatalf("initial readahead gauge = %v, want 2", g)
	}
	for i := 0; i < 4; i++ {
		c.Step()
	}
	if g := reg.Gauge("adapt_readahead", "").Value(); g != 3 {
		t.Fatalf("post-step readahead gauge = %v, want 3", g)
	}
	if g := reg.Gauge("adapt_hedge_after_us", "").Value(); g != 800 {
		t.Fatalf("hedge gauge = %v, want 800us", g)
	}
	if got := reg.Counter("adapt_knob_changes_total", "", obs.Label{Key: "knob", Value: "readahead"}).Value(); got != 1 {
		t.Fatalf("readahead change counter = %d, want 1", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || len(spans[0].Events) != 1 || spans[0].Events[0].Name != "adapt" {
		t.Fatalf("trace ring = %+v, want one adapt annotation span", spans)
	}
}

// TestControllerNoSource: Options without a Source are rejected.
func TestControllerNoSource(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New accepted an Options with no Source")
	}
}

// TestControllerStopWithoutRun: Stop on a never-started controller
// returns immediately.
func TestControllerStopWithoutRun(t *testing.T) {
	c, err := New(Options{Source: scripted(stepTrace()), Initial: testKnobs()})
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Stop() // and it is idempotent
}
