package adapt

import (
	"testing"
	"time"

	"dialga/internal/obs"
)

// TestRegistrySourceWindowedLatency: each Sample must quantile only
// the stripe spans published since the previous Sample. A stall that
// was already observed once stays in the tracer's ring for another ~60
// stripes, but it must not pin every later window's p99 at the stall
// value — that is exactly the failure mode that blinds the relative
// trigger (p99 and baseline converge on the stall, ratio 1.0, no
// fire). The stall span here gets a real ~2ms duration via a sleep;
// the clean spans end immediately (microseconds even with scheduler
// overshoot), so window separation is orders of magnitude.
func TestRegistrySourceWindowedLatency(t *testing.T) {
	tr := obs.NewTracer(64)
	src := NewRegistrySource(obs.NewRegistry(), tr, 0)

	endFast := func(id int64) {
		tr.Begin(id).End()
	}

	// Window 1: nine fast stripes and one 2ms stall.
	for id := int64(0); id < 9; id++ {
		endFast(id)
	}
	stall := tr.Begin(9)
	time.Sleep(2 * time.Millisecond)
	stall.End()

	first := src.Sample()
	if first.StripeP99US < 1000 {
		t.Fatalf("first window p99 = %vus, want >= 1000 (the stall)", first.StripeP99US)
	}

	// Window 2: ten fast stripes. The stall is still in the ring but
	// was sampled already, so it must not dominate this window.
	for id := int64(10); id < 20; id++ {
		endFast(id)
	}
	second := src.Sample()
	if second.StripeP99US >= first.StripeP99US/2 {
		t.Fatalf("second window p99 = %vus, want well below the stalled first window (%vus)",
			second.StripeP99US, first.StripeP99US)
	}

	// Window 3: no new spans. The source re-reports the last non-empty
	// window rather than dropping to zero (which would route the
	// latency signal to the block-level EWMA fallback mid-run).
	third := src.Sample()
	if third.StripeP99US != second.StripeP99US || third.StripeP50US != second.StripeP50US {
		t.Fatalf("empty window reported p50/p99 %v/%v, want last window's %v/%v",
			third.StripeP50US, third.StripeP99US, second.StripeP50US, second.StripeP99US)
	}

	// Controller annotation spans (negative IDs) never enter the
	// quantiles or move the window cursor.
	ann := tr.Begin(-3)
	ann.Event("adapt", "latency-high")
	ann.End()
	endFast(20)
	fourth := src.Sample()
	if fourth.StripeP99US >= first.StripeP99US/2 {
		t.Fatalf("annotation span leaked into the latency window: p99 %vus", fourth.StripeP99US)
	}
}
