package adapt

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestStateTornReadFree hammers State.Load and PipelineTuning from
// many reader goroutines (standing in for decode workers and the
// shard gather loop) while a writer republishes knob sets as fast as
// it can. Every published set encodes one generation number in every
// field, so any torn read — a mix of two generations — is detected
// structurally, not just by the race detector.
func TestStateTornReadFree(t *testing.T) {
	gens := 20_000
	if raceEnabled {
		gens = 2_000
	}
	mk := func(g int) Knobs {
		return Knobs{
			HedgeAfter:   time.Duration(g) * time.Microsecond,
			DeadlineMult: float64(g),
			Readahead:    g,
			Workers:      g,
			Window:       g,
		}
	}
	st := NewState(mk(0))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(viaTuning bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var g int
				var ok bool
				if viaTuning {
					tn := st.PipelineTuning()
					g = tn.Readahead
					ok = tn.HedgeAfter == time.Duration(g)*time.Microsecond &&
						tn.DeadlineMult == float64(g) &&
						tn.Workers == g && tn.Window == g
				} else {
					k := st.Load()
					g = k.Readahead
					ok = k == mk(g)
				}
				if !ok {
					select {
					case errs <- "torn knob read: fields from mixed generations":
					default:
					}
					return
				}
			}
		}(r%2 == 0)
	}
	for g := 1; g <= gens; g++ {
		st.Store(mk(g))
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if st.Load() != mk(gens) {
		t.Fatalf("final state = %+v, want generation %d", st.Load(), gens)
	}
}

// TestControllerConcurrentStepAndTuning: Steps racing PipelineTuning
// pulls (the stripe-driven mode's real shape) stay serialized and the
// history/counter invariant holds.
func TestControllerConcurrentStepAndTuning(t *testing.T) {
	pulls := 50_000
	if raceEnabled {
		pulls = 5_000
	}
	c, err := New(Options{
		Source:     scripted(stepTrace()),
		Initial:    testKnobs(),
		Policy:     Config{Limits: testLimits()},
		EveryPulls: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pulls; i++ {
				tn := c.PipelineTuning()
				if tn.Readahead != 2 && tn.Readahead != 3 {
					panic("impossible readahead value observed")
				}
			}
		}()
	}
	wg.Wait()
	if h := c.History(); len(h) != 1 {
		t.Fatalf("history = %d adjustments, want 1 (step trace)", len(h))
	}
}
