package adapt

import (
	"sort"
	"strconv"

	"dialga/internal/obs"
)

// Signals is one observation of the pipeline, the policy's entire
// input. Counter fields are cumulative (monotone); the policy keeps
// the previous sample and works on deltas, so a Source just reports
// current totals. A recorded []Signals trace replays a controller run
// exactly.
type Signals struct {
	// StripeP50US / StripeP99US are stripe end-to-end latency
	// quantiles in microseconds over the spans finished since the
	// previous sample (see RegistrySource); zero when no spans have
	// finished yet.
	StripeP50US float64
	StripeP99US float64
	// FleetEWMAUS is the median of the per-shard block-read latency
	// EWMAs, microseconds — the same signal the deadline derives from.
	// Used as the latency signal when no spans are available.
	FleetEWMAUS float64

	// Cumulative pipeline counters.
	Stripes          uint64 // stripes completed
	HedgedReads      uint64 // stripes that hedged past a straggler
	HedgeWins        uint64 // hedges where reconstruction beat the straggler
	BreakerTrips     uint64 // circuit-breaker trips
	ReadaheadHits    uint64 // block requests served from readahead
	ReadaheadUseless uint64 // readahead blocks discarded unused
}

// latencyUS is the latency signal the policy thresholds against:
// stripe p99 when spans exist, else the fleet-median EWMA.
func (s Signals) latencyUS() float64 {
	if s.StripeP99US > 0 {
		return s.StripeP99US
	}
	return s.FleetEWMAUS
}

// Source produces Signals samples. Implementations must be safe for
// concurrent use with the pipeline they observe.
type Source interface {
	Sample() Signals
}

// SignalsFunc adapts a function to the Source interface — scripted
// test traces are a closure over a slice.
type SignalsFunc func() Signals

func (f SignalsFunc) Sample() Signals { return f() }

// RegistrySource samples a live pipeline through its obs.Registry and
// obs.Tracer. It relies on the registry's identity guarantee (the same
// name+labels always return the same series) to read the very
// counters the pipeline increments, with no extra plumbing between
// the layers.
//
// The latency quantiles are windowed per sample: each Sample call sees
// only the stripe spans published since the previous call (the whole
// retained ring on the first). Stripe spans carry their sequence
// number as the span ID and are published in order by the pipeline's
// in-order consumer, so "new since last sample" is exactly "ID above
// the last one seen". Without the window, a recurring straggler burst
// keeps one stall inside the span ring at all times, the ring-wide p99
// pins at the stall value, and the policy's relative trigger — which
// compares each window against the trailing baseline — can never see
// the clean-regime latency again. Sample mutates the window cursor, so
// a RegistrySource must be owned by a single controller (ticks
// serialize under the controller's lock).
type RegistrySource struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	shards int   // shard count for the per-shard EWMA sweep
	lastID int64 // newest stripe span ID seen by the previous Sample
	// Last non-empty window's quantiles, re-reported when a sample
	// window contains no new spans (an idle tick in clock-driven mode)
	// so the latency signal doesn't collapse to the block-level EWMA
	// fallback, which is in a different regime than stripe latency.
	lastP50, lastP99 float64
}

// NewRegistrySource returns a source reading decode-pipeline signals
// from reg (required) and stripe spans from tracer (optional). shards
// is the decoder's k+m shard count.
func NewRegistrySource(reg *obs.Registry, tracer *obs.Tracer, shards int) *RegistrySource {
	return &RegistrySource{reg: reg, tracer: tracer, shards: shards, lastID: -1}
}

func (s *RegistrySource) Sample() Signals {
	var sig Signals
	if s.tracer != nil {
		durs := make([]float64, 0, 64)
		maxID := s.lastID
		for _, sp := range s.tracer.Snapshot() { // newest first
			if sp.ID < 0 {
				continue // the controller's own annotation spans
			}
			if sp.ID <= s.lastID {
				break // published in ID order: the rest was sampled already
			}
			if sp.ID > maxID {
				maxID = sp.ID
			}
			durs = append(durs, float64(sp.DurUS))
		}
		s.lastID = maxID
		if len(durs) > 0 {
			sort.Float64s(durs)
			s.lastP50 = quantile(durs, 0.50)
			s.lastP99 = quantile(durs, 0.99)
		}
		sig.StripeP50US = s.lastP50
		sig.StripeP99US = s.lastP99
	}
	if s.reg == nil {
		return sig
	}
	lbl := obs.Label{Key: "pipeline", Value: "decode"}
	sig.Stripes = s.reg.Counter("stream_stripes_total", "", lbl).Value()
	sig.HedgedReads = s.reg.Counter("stream_hedged_reads_total", "", lbl).Value()
	sig.HedgeWins = s.reg.Counter("stream_hedge_wins_total", "", lbl).Value()
	sig.BreakerTrips = s.reg.Counter("stream_breaker_trips_total", "", lbl).Value()
	sig.ReadaheadHits = s.reg.Counter("shardio_readahead_hits_total", "").Value()
	sig.ReadaheadUseless = s.reg.Counter("shardio_readahead_useless_total", "").Value()
	ewmas := make([]float64, 0, s.shards)
	for i := 0; i < s.shards; i++ {
		v := s.reg.Gauge("shardio_shard_ewma_us", "",
			obs.Label{Key: "shard", Value: strconv.Itoa(i)}).Value()
		if v > 0 {
			ewmas = append(ewmas, v)
		}
	}
	if len(ewmas) > 0 {
		sort.Float64s(ewmas)
		sig.FleetEWMAUS = quantile(ewmas, 0.50)
	}
	return sig
}

// quantile reads q from sorted (ascending) xs by nearest-rank.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
