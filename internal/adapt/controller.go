package adapt

import (
	"errors"
	"sync"
	"time"

	"dialga/internal/obs"
	"dialga/internal/stream"
	"dialga/internal/vclock"
)

// DefaultInterval is the controller tick period when Options.Interval
// is zero and no stripe-driven pacing is configured.
const DefaultInterval = 100 * time.Millisecond

// Options configures a Controller.
type Options struct {
	// Source supplies the signal samples. Required.
	Source Source
	// Initial is the knob set the controller starts from — normally
	// the pipeline's static Options values.
	Initial Knobs
	// Policy tunes the thresholds; zero fields take the paper
	// defaults. A zero Limits is replaced by DefaultLimits(Initial).
	Policy Config
	// Interval is the tick period in clock-driven mode (Run). Zero
	// means DefaultInterval.
	Interval time.Duration
	// EveryPulls enables stripe-driven pacing: when > 0, every
	// EveryPulls-th PipelineTuning call runs one synchronous policy
	// tick before returning, instead of a background ticker. Pipeline
	// tuning pulls happen at stripe boundaries, so ticks land at
	// deterministic points in the stripe sequence — the mode the
	// reproducible chaos tests and the A/B benchmark use.
	EveryPulls int
	// Clock drives Run's ticker; nil means the wall clock.
	Clock vclock.Clock
	// Metrics, when non-nil, receives the adapt_* series: knob gauges,
	// tick and adjustment counters, and per-knob change counters.
	Metrics *obs.Registry
	// Trace, when non-nil, records one span per adjusting tick
	// (negative span IDs, so they never collide with stripe spans)
	// annotated with the reason and resulting knob set.
	Trace *obs.Tracer
}

// Controller runs the feedback loop: sample Signals, run the policy,
// publish the resulting knobs. It implements stream.Tuner, so the
// controller itself is what you hand to stream.Options.Tuner.
type Controller struct {
	opts   Options
	clock  vclock.Clock
	state  *State
	policy *Policy

	mu      sync.Mutex // serializes ticks; guards history
	history []Decision

	pulls atomic64

	stop    chan struct{}
	done    chan struct{}
	runOnce sync.Once

	ticksC   *obs.Counter // adapt_ticks_total
	adjC     *obs.Counter // adapt_adjustments_total
	supC     *obs.Counter // adapt_suppressed_total
	changeC  map[KnobName]*obs.Counter
	hedgeG   *obs.Gauge
	multG    *obs.Gauge
	raG      *obs.Gauge
	workersG *obs.Gauge
	windowG  *obs.Gauge
}

// atomic64 is a tiny counter wrapper (kept separate so Controller's
// zero-field alignment stays obvious).
type atomic64 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic64) incAndGet() int {
	a.mu.Lock()
	a.n++
	n := a.n
	a.mu.Unlock()
	return n
}

var errNoSource = errors.New("adapt: Options.Source is required")

// New validates opts and returns a controller publishing
// opts.Initial. Nothing runs until Run (clock-driven) or until the
// pipeline starts pulling tuning (stripe-driven).
func New(opts Options) (*Controller, error) {
	if opts.Source == nil {
		return nil, errNoSource
	}
	if opts.Interval == 0 {
		opts.Interval = DefaultInterval
	}
	if (opts.Policy.Limits == Limits{}) {
		opts.Policy.Limits = DefaultLimits(opts.Initial)
	}
	c := &Controller{
		opts:   opts,
		clock:  vclock.OrReal(opts.Clock),
		state:  NewState(opts.Initial),
		policy: NewPolicy(opts.Policy),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	reg := opts.Metrics
	c.ticksC = reg.Counter("adapt_ticks_total",
		"Controller policy ticks (samples evaluated).")
	c.adjC = reg.Counter("adapt_adjustments_total",
		"Controller ticks that changed at least one pipeline knob.")
	c.supC = reg.Counter("adapt_suppressed_total",
		"Knob moves suppressed by a cooldown or clamp while a trigger was firing.")
	c.changeC = make(map[KnobName]*obs.Counter, len(knobNames))
	for _, k := range knobNames {
		c.changeC[k] = reg.Counter("adapt_knob_changes_total",
			"Individual knob moves, by knob.", obs.Label{Key: "knob", Value: string(k)})
	}
	c.hedgeG = reg.Gauge("adapt_hedge_after_us", "Current hedge interval knob, microseconds.")
	c.multG = reg.Gauge("adapt_deadline_mult", "Current deadline multiplier knob.")
	c.raG = reg.Gauge("adapt_readahead", "Current per-shard readahead depth knob.")
	c.workersG = reg.Gauge("adapt_workers", "Current active worker count knob.")
	c.windowG = reg.Gauge("adapt_window", "Current in-flight window knob.")
	c.export(opts.Initial)
	return c, nil
}

func (c *Controller) export(k Knobs) {
	c.hedgeG.Set(float64(k.HedgeAfter) / float64(time.Microsecond))
	c.multG.Set(k.DeadlineMult)
	c.raG.Set(float64(k.Readahead))
	c.workersG.Set(float64(k.Workers))
	c.windowG.Set(float64(k.Window))
}

// State returns the knob publication point (also a stream.Tuner, for
// callers that want the knobs without the stripe-driven stepping).
func (c *Controller) State() *State { return c.state }

// PipelineTuning implements stream.Tuner. In stripe-driven mode every
// EveryPulls-th call first runs a policy tick, closing the loop with
// no background goroutine and no wall-clock dependence.
func (c *Controller) PipelineTuning() stream.Tuning {
	if n := c.opts.EveryPulls; n > 0 {
		if c.pulls.incAndGet()%n == 0 {
			c.Step()
		}
	}
	return c.state.PipelineTuning()
}

// Step runs one synchronous sample → decide → publish tick and
// returns the decision. Safe for concurrent use; ticks serialize.
func (c *Controller) Step() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	sig := c.opts.Source.Sample()
	dec := c.policy.Decide(c.state.Load(), sig)
	c.ticksC.Inc()
	c.supC.Add(uint64(len(dec.Suppressed)))
	if len(dec.Changed) > 0 {
		c.state.Store(dec.Knobs)
		c.export(dec.Knobs)
		c.adjC.Inc()
		for _, k := range dec.Changed {
			c.changeC[k].Inc()
		}
		c.history = append(c.history, dec)
		if tr := c.opts.Trace; tr != nil {
			sp := tr.Begin(-int64(dec.Tick))
			sp.Event("adapt", string(dec.Reason)+" "+dec.Knobs.String())
			sp.End()
		}
	}
	return dec
}

// History returns a copy of every adjusting decision so far, in tick
// order — the audit trail the deterministic tests assert against.
// Steady, warmup, and fully-suppressed ticks are not recorded, so
// len(History()) always equals the adapt_adjustments_total counter.
func (c *Controller) History() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Decision, len(c.history))
	copy(out, c.history)
	return out
}

// Run starts the clock-driven loop: one Step per Interval until Stop.
// It returns immediately; calling it again is a no-op.
func (c *Controller) Run() {
	c.runOnce.Do(func() {
		go func() {
			defer close(c.done)
			tk := c.clock.NewTicker(c.opts.Interval)
			defer tk.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-tk.C():
					c.Step()
				}
			}
		}()
	})
}

// Stop halts a running clock-driven loop and waits for it to exit.
// Safe to call multiple times, and a no-op if Run was never called.
func (c *Controller) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.runOnce.Do(func() { close(c.done) }) // Run never started: unblock the wait
	<-c.done
}
