package adapt

import "time"

// Paper-derived policy constants. The source scheme triggers on
// *relative* thresholds against a trailing baseline rather than
// absolute latencies, which is what lets one policy serve devices
// whose "normal" differs by orders of magnitude:
//
//   - latency above 110% of its trailing baseline => the device (or a
//     straggling shard) is degrading; spend more speculative work to
//     hide it (deeper readahead, earlier hedges, tighter deadlines).
//   - useless-work ratio above 150% of its trailing baseline => the
//     speculation is missing; back it off before it steals bandwidth
//     from demand reads.
const (
	// DefaultLatencyTrigger fires the aggressive branch when observed
	// latency exceeds this multiple of the trailing baseline.
	DefaultLatencyTrigger = 1.10
	// DefaultUselessTrigger fires the back-off branch when the
	// useless-work ratio exceeds this multiple of its baseline.
	DefaultUselessTrigger = 1.50
	// DefaultReArm is the hysteresis band: a fired trigger re-arms
	// only once its ratio falls below this multiple of baseline.
	DefaultReArm = 1.05
	// DefaultBaselineAlpha is the EWMA weight of the newest sample in
	// the trailing baselines.
	DefaultBaselineAlpha = 0.2
	// DefaultCooldownTicks is how many controller ticks a knob rests
	// after moving.
	DefaultCooldownTicks = 3
	// DefaultStormTrips is the per-tick breaker-trip delta treated as
	// a regime change rather than a gradual drift.
	DefaultStormTrips = 3
	// DefaultUselessFloor keeps the useless-ratio trigger meaningful
	// when its baseline is near zero: the ratio must also exceed this
	// absolute floor to fire.
	DefaultUselessFloor = 0.15
	// DefaultMinSpeculative is the least speculative work (hedges +
	// readahead serves) a tick must have issued for its useless ratio
	// to count as a signal. One lost hedge in an otherwise quiet window
	// is a 100% useless ratio by arithmetic and pure noise by any other
	// standard; below this sample size the ratio reports no-signal.
	DefaultMinSpeculative = 4
	// DefaultBaselineDownAlpha is the EWMA weight used when the newest
	// latency sample is *below* the trailing baseline. The baseline's
	// job is to approximate the sustainable steady state, so it adopts
	// improvements faster than regressions: a transient spike that
	// happens to land in the seeding window (process startup, a cold
	// cache) would otherwise sit in a slow symmetric EWMA for many
	// ticks, during which a genuine regression can't clear the relative
	// trigger because the baseline is still inflated.
	DefaultBaselineDownAlpha = 0.6
)

// Per-fire knob step sizes. Multiplicative for the time/ratio knobs
// (symmetric in log space), additive for the small-integer ones.
const (
	hedgeTighten    = 0.8  // aggressive: hedge sooner
	hedgeRelax      = 1.25 // back off: hedge later
	deadlineTighten = 0.9  // aggressive: demote stragglers sooner
	deadlineRelax   = 1.15 // back off / storm: be more forgiving
	readaheadStep   = 1
	workersStep     = 1
	windowStep      = 1
)

// Config parameterizes the policy. The zero value of any field means
// its Default constant above; Limits is required (zero limits pin
// every knob at its minimum, which is never what you want).
type Config struct {
	LatencyTrigger float64
	UselessTrigger float64
	ReArm          float64
	BaselineAlpha  float64
	// BaselineDownAlpha weights latency samples below the current
	// baseline (improvements); BaselineAlpha weights samples above it.
	BaselineDownAlpha float64
	CooldownTicks     int
	StormTrips        uint64
	UselessFloor      float64
	// MinSpeculative gates the useless trigger on sample size: zero
	// means the default, 1 means every nonempty window counts.
	MinSpeculative int
	Limits         Limits
}

func (c Config) withDefaults() Config {
	if c.LatencyTrigger == 0 {
		c.LatencyTrigger = DefaultLatencyTrigger
	}
	if c.UselessTrigger == 0 {
		c.UselessTrigger = DefaultUselessTrigger
	}
	if c.ReArm == 0 {
		c.ReArm = DefaultReArm
	}
	if c.BaselineAlpha == 0 {
		c.BaselineAlpha = DefaultBaselineAlpha
	}
	if c.BaselineDownAlpha == 0 {
		c.BaselineDownAlpha = DefaultBaselineDownAlpha
	}
	if c.CooldownTicks == 0 {
		c.CooldownTicks = DefaultCooldownTicks
	}
	if c.StormTrips == 0 {
		c.StormTrips = DefaultStormTrips
	}
	if c.UselessFloor == 0 {
		c.UselessFloor = DefaultUselessFloor
	}
	if c.MinSpeculative <= 0 {
		c.MinSpeculative = DefaultMinSpeculative
	}
	return c
}

// Reason labels why a tick adjusted (or declined to adjust) knobs.
type Reason string

const (
	ReasonWarmup      Reason = "warmup"        // first sample: baselines seeded, no decision
	ReasonSteady      Reason = "steady"        // no trigger fired
	ReasonLatencyHigh Reason = "latency-high"  // observed latency > trigger * baseline
	ReasonUselessHigh Reason = "useless-high"  // useless-work ratio > trigger * baseline
	ReasonStorm       Reason = "breaker-storm" // trip burst: regime reset + back-off
)

// Decision is the full, reproducible outcome of one policy tick.
type Decision struct {
	Tick   int
	Reason Reason
	Knobs  Knobs // knob set after this tick

	// Changed lists knobs this tick actually moved; empty for steady
	// ticks. Suppressed lists knobs the firing branch wanted to move
	// but left alone because their cooldown had not expired (or the
	// clamp made the move a no-op).
	Changed    []KnobName
	Suppressed []KnobName

	// The evidence: the ratios the thresholds compared.
	LatencyRatio float64
	UselessRatio float64
}

// Policy is the deterministic feedback state machine: Decide consumes
// one Signals sample and the current knob set and returns the next.
// It is NOT safe for concurrent use — the controller serializes calls
// — and it holds no clock, no channels, and no references into the
// pipeline, so a scripted []Signals trace replays a run bit-for-bit.
type Policy struct {
	cfg Config

	ticks    int
	seeded   bool
	prev     Signals
	latBase  float64 // trailing latency baseline (EWMA)
	useBase  float64 // trailing useless-ratio baseline (EWMA)
	latArmed bool    // Schmitt trigger states
	useArmed bool
	cooldown map[KnobName]int
}

// NewPolicy returns a policy with cfg (zero fields defaulted).
func NewPolicy(cfg Config) *Policy {
	return &Policy{
		cfg:      cfg.withDefaults(),
		latArmed: true,
		useArmed: true,
		cooldown: make(map[KnobName]int),
	}
}

// uselessRatio computes this tick's useless-work share: hedges that
// did not win plus readahead blocks discarded, over all speculative
// work issued. Fewer than min speculative ops this tick reports -1
// (no signal) — a window too small to divide meaningfully.
func uselessRatio(d Signals, min int) float64 {
	issued := d.HedgedReads + d.ReadaheadHits + d.ReadaheadUseless
	if issued == 0 || issued < uint64(min) {
		return -1
	}
	useless := d.HedgedReads - d.HedgeWins + d.ReadaheadUseless
	return float64(useless) / float64(issued)
}

// delta returns cur - prev field-wise for the cumulative counters.
func delta(cur, prev Signals) Signals {
	return Signals{
		Stripes:          cur.Stripes - prev.Stripes,
		HedgedReads:      cur.HedgedReads - prev.HedgedReads,
		HedgeWins:        cur.HedgeWins - prev.HedgeWins,
		BreakerTrips:     cur.BreakerTrips - prev.BreakerTrips,
		ReadaheadHits:    cur.ReadaheadHits - prev.ReadaheadHits,
		ReadaheadUseless: cur.ReadaheadUseless - prev.ReadaheadUseless,
	}
}

// Decide runs one policy tick.
func (p *Policy) Decide(cur Knobs, s Signals) Decision {
	p.ticks++
	dec := Decision{Tick: p.ticks, Knobs: cur}

	// Cooldowns age once per tick, before this tick's moves re-arm
	// them.
	for k, n := range p.cooldown {
		if n > 0 {
			p.cooldown[k] = n - 1
		}
	}

	lat := s.latencyUS()
	if !p.seeded {
		// First observation seeds the baselines; deciding against an
		// empty baseline would make the very first sample look like a
		// 100% regression.
		p.seeded = true
		p.prev = s
		p.latBase = lat
		dec.Reason = ReasonWarmup
		return dec
	}

	d := delta(s, p.prev)
	p.prev = s

	latRatio := 0.0
	if p.latBase > 0 && lat > 0 {
		latRatio = lat / p.latBase
	}
	useRatio := uselessRatio(d, p.cfg.MinSpeculative)
	dec.LatencyRatio = latRatio
	dec.UselessRatio = useRatio

	// Hysteresis re-arming happens on the way down, before triggers
	// are evaluated, so a ratio that dipped and spiked again within
	// one tick still counts as a single excursion.
	if latRatio > 0 && latRatio < p.cfg.ReArm {
		p.latArmed = true
	}
	if useRatio >= 0 && useRatio < p.cfg.ReArm*p.useBase {
		p.useArmed = true
	}

	next := cur
	apply := func(name KnobName, set func(*Knobs)) {
		if p.cooldown[name] > 0 {
			dec.Suppressed = append(dec.Suppressed, name)
			return
		}
		trial := next
		set(&trial)
		trial = p.cfg.Limits.clamp(trial)
		if trial == next {
			dec.Suppressed = append(dec.Suppressed, name)
			return
		}
		next = trial
		dec.Changed = append(dec.Changed, name)
		p.cooldown[name] = p.cfg.CooldownTicks
	}

	switch {
	case d.BreakerTrips >= p.cfg.StormTrips:
		// A burst of trips is a regime change (a shard died, a device
		// collapsed), not drift: relax the demotion machinery so the
		// survivors aren't hedged into the ground, and restart the
		// baselines from the new normal.
		dec.Reason = ReasonStorm
		apply(KnobDeadlineMult, func(k *Knobs) { k.DeadlineMult *= deadlineRelax })
		apply(KnobHedgeAfter, func(k *Knobs) {
			k.HedgeAfter = time.Duration(float64(k.HedgeAfter) * hedgeRelax)
		})
		p.latBase = lat
		p.useBase = 0
		p.latArmed = true
		p.useArmed = true

	case p.useArmed && useRatio >= 0 &&
		useRatio > p.cfg.UselessFloor &&
		useRatio > p.cfg.UselessTrigger*p.useBase:
		// Speculation is mostly missing: shallower readahead, later
		// hedges, more forgiving deadlines.
		dec.Reason = ReasonUselessHigh
		apply(KnobReadahead, func(k *Knobs) { k.Readahead -= readaheadStep })
		apply(KnobHedgeAfter, func(k *Knobs) {
			k.HedgeAfter = time.Duration(float64(k.HedgeAfter) * hedgeRelax)
		})
		apply(KnobDeadlineMult, func(k *Knobs) { k.DeadlineMult *= deadlineRelax })
		p.useArmed = false

	case p.latArmed && latRatio > p.cfg.LatencyTrigger:
		// Latency regressed against its own history: hide it with
		// more speculative work and more pipeline slack.
		dec.Reason = ReasonLatencyHigh
		apply(KnobReadahead, func(k *Knobs) { k.Readahead += readaheadStep })
		apply(KnobHedgeAfter, func(k *Knobs) {
			k.HedgeAfter = time.Duration(float64(k.HedgeAfter) * hedgeTighten)
		})
		apply(KnobDeadlineMult, func(k *Knobs) { k.DeadlineMult *= deadlineTighten })
		apply(KnobWorkers, func(k *Knobs) { k.Workers += workersStep })
		apply(KnobWindow, func(k *Knobs) { k.Window += windowStep })
		p.latArmed = false

	default:
		dec.Reason = ReasonSteady
	}

	// Trailing baselines absorb the new sample last, so the thresholds
	// above compared against history only. A storm already reseeded.
	// The latency baseline is asymmetric: improvements pull it down
	// with the faster down-alpha, regressions lift it with the slow
	// one — the baseline tracks the sustainable steady state, not the
	// arithmetic mean of spikes and lulls.
	if dec.Reason != ReasonStorm {
		if lat > 0 {
			a := p.cfg.BaselineAlpha
			if lat < p.latBase {
				a = p.cfg.BaselineDownAlpha
			}
			p.latBase = (1-a)*p.latBase + a*lat
		}
		if useRatio >= 0 {
			a := p.cfg.BaselineAlpha
			p.useBase = (1-a)*p.useBase + a*useRatio
		}
	}

	dec.Knobs = next
	return dec
}
