package adapt

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"
	"time"

	"dialga/internal/fault"
	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/stream"
)

// The chaos A/B scenario: persistent-memory-like block latencies with
// a seeded straggler schedule that shifts mid-run.
//
// Every shard pays a seeded baseline delay per block read (slightly
// different mean per shard, so the stripe gather is a max-of-8 of
// non-identical draws). On top of that, one shard is an order of
// magnitude slower in short periodic bursts (Span-bounded fault.Slow
// ops): shard 3 owns the bursts before chaosShift, shard 7 after. The
// burst shape matters: a burst costs the pipeline one reconstruction-
// deadline stall, then the shard falls behind and is reconstructed
// around; the clean gap before the next burst is long enough for it
// to drain its backlog and re-engage, so every burst reliably lands a
// deadline stall — including in the tail window the p99 assertion
// reads. The same shard bytes and the same fault plan are decoded
// twice — once with the static knob set, once with an
// adapt.Controller in stripe-driven mode closing the loop — so the
// only variable is adaptation.
//
// What adaptation can win here, and what the assertions check: the
// straggler transition spikes stripe latency past the policy's 110%
// relative threshold and the controller raises the readahead depth —
// the paper's prefetch knob. A demand-only gather pays the max of
// eight independent per-block draws every stripe; with readahead the
// shards buffer ahead at their own pace and the gather drains
// buffers, so the cadence drops toward the slowest shard's mean.
// Straggler rejoin stalls cost the reconstruction deadline, which the
// controller's deadline-multiplier knob tightens. Both effects
// compound: the adaptive run must finish faster and with a lower
// steady-state tail p50 than the static run under the identical fault
// schedule, without blowing up the tail p99. Delay means sit in the milliseconds because sub-ms timer
// sleeps overshoot badly on a virtualized kernel; the stripe count is
// held down to keep the two decodes inside a couple of seconds.

const (
	chaosK         = 6
	chaosM         = 2
	chaosShardSize = 256
	chaosStripes   = 160
	chaosClean     = 40     // stripes before the first straggler burst
	chaosShift     = 100    // stripe where the straggler moves 3 -> 7
	chaosBurst     = 4      // slow blocks per straggler burst
	chaosEvery     = 32     // stripes between burst starts
	chaosBaseUS    = 2_000  // per-block delay mean for shard 0; +100 per shard
	chaosSlowUS    = 12_000 // straggler extra delay mean; uniform in [mean/2, 3*mean/2)
)

func chaosOpts(t *testing.T) stream.Options {
	t.Helper()
	code, err := rs.New(chaosK, chaosM)
	if err != nil {
		t.Fatal(err)
	}
	return stream.Options{
		Codec:      code,
		StripeSize: chaosK * chaosShardSize,
		Workers:    2,
		Window:     4,
		Checksum:   stream.ChecksumCRC32C,
		HedgeAfter: time.Millisecond,
		Seed:       42,
		// Isolate the hedge/readahead knobs: with the breaker allowed to
		// sideline the straggler, both runs converge and the A/B washes
		// out. Breaker-storm handling has its own policy tests.
		BreakerThreshold: -1,
	}
}

func chaosEncode(t *testing.T, opts stream.Options, payload []byte) [][]byte {
	t.Helper()
	enc, err := stream.NewEncoder(opts)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([]bytes.Buffer, chaosK+chaosM)
	writers := make([]io.Writer, len(bufs))
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(bufs))
	for i := range bufs {
		out[i] = bufs[i].Bytes()
	}
	return out
}

// basePlan paces shard i like a real device: every block read pays a
// seeded delay with mean chaosBaseUS+10*i microseconds. The per-shard
// Len offset keeps the eight delay sequences distinct (fault delays
// are deterministic in (Off, Len, draw index)), so each stripe gather
// is a genuine max over non-identical draws — the regime where
// readahead buffering pays.
func basePlan(i int) fault.Plan {
	return fault.Plan{Ops: []fault.Op{{Kind: fault.Slow, Len: int64(chaosBaseUS + 100*i)}}}
}

// slowBurst overlays an order-of-magnitude extra delay on every block
// in stripes [from, to) — one Span-bounded straggler burst.
func slowBurst(p fault.Plan, from, to, blockSize int) fault.Plan {
	p.Ops = append(p.Ops, fault.Op{
		Kind: fault.Slow,
		Off:  int64(from * blockSize),
		Len:  chaosSlowUS,
		Span: int64((to - from) * blockSize),
	})
	return p
}

// chaosReaders wraps every shard stream in its baseline pacing plan
// and overlays the periodic straggler bursts — on shard 3 before
// chaosShift, shard 7 after. blockSize is the decoder's framed block
// length, so stripe indices convert exactly to shard-stream byte
// offsets.
func chaosReaders(shards [][]byte, blockSize int) []io.Reader {
	readers := make([]io.Reader, len(shards))
	for i := range shards {
		plan := basePlan(i)
		for s := chaosClean; s+chaosBurst <= chaosStripes; s += chaosEvery {
			target := 3
			if s >= chaosShift {
				target = 7
			}
			if i == target {
				plan = slowBurst(plan, s, s+chaosBurst, blockSize)
			}
		}
		readers[i] = fault.NewReader(bytes.NewReader(shards[i]), plan)
	}
	return readers
}

// tailQ is the stripe-latency quantile q (microseconds) over the most
// recent n stripe spans — the steady-state tail, where the adapted
// knobs have had time to act. Controller annotation spans (negative
// IDs) are excluded.
func tailQ(tr *obs.Tracer, n int, q float64) float64 {
	durs := make([]float64, 0, n)
	for _, sp := range tr.Snapshot() { // newest first
		if sp.ID < 0 {
			continue
		}
		durs = append(durs, float64(sp.DurUS))
		if len(durs) == n {
			break
		}
	}
	if len(durs) == 0 {
		return 0
	}
	// Small n: nearest-rank on a sorted copy.
	for i := 1; i < len(durs); i++ {
		for j := i; j > 0 && durs[j] < durs[j-1]; j-- {
			durs[j], durs[j-1] = durs[j-1], durs[j]
		}
	}
	idx := int(q * float64(len(durs)))
	if idx >= len(durs) {
		idx = len(durs) - 1
	}
	return durs[idx]
}

// TestChaosShiftingStragglerAdaptiveVsStatic is the acceptance test
// for the closed loop: under an identical seeded fault schedule the
// adaptive decode must produce byte-exact output, finish faster than
// the static decode, run a lower steady-state stripe p50, and account
// for every knob adjustment exactly.
func TestChaosShiftingStragglerAdaptiveVsStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos A/B pays real injected latency")
	}
	opts := chaosOpts(t)
	payload := make([]byte, chaosStripes*chaosK*chaosShardSize)
	rand.New(rand.NewSource(11)).Read(payload)
	shards := chaosEncode(t, opts, payload)

	decode := func(adaptive bool) (time.Duration, stream.Stats, *obs.Tracer, *Controller, *obs.Registry) {
		reg := obs.NewRegistry()
		// A small span ring makes the sampled stripe p99 a sliding
		// window, so the latency signal tracks the current regime rather
		// than the whole run's history.
		tr := obs.NewTracer(64)
		o := opts
		o.Metrics = reg
		o.Trace = tr
		var ctrl *Controller
		if adaptive {
			var err error
			ctrl, err = New(Options{
				Source: NewRegistrySource(reg, tr, chaosK+chaosM),
				// A sidelined straggler discards its readahead buffers by
				// design, which pollutes the useless ratio with a cost the
				// reconstruction path already chose to pay; a burst window
				// also splits a hedge from its win across two samples. Only
				// back off on a majority-useless window with a real sample
				// behind it; the back-off branch has its own deterministic
				// policy tests. EveryPulls below is sized so one tick spans a
				// burst plus its clean surroundings (~16 stripes), diluting
				// the discard spike with steady readahead hits — narrower
				// windows can land entirely inside the post-burst recovery,
				// where discards are the majority even on a healthy run
				// (especially under -race, which halves readahead volume).
				Policy: Config{UselessFloor: 0.5, MinSpeculative: 8},
				Initial: Knobs{
					HedgeAfter:   o.HedgeAfter,
					DeadlineMult: 3.0, // shardio.DefaultDeadlineMult
					Readahead:    0,
					Workers:      o.Workers,
					Window:       o.Window,
				},
				EveryPulls: 32, // ~2 tuning pulls per stripe -> a tick every ~16 stripes
				Metrics:    reg,
				Trace:      tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			o.Tuner = ctrl
		}
		dec, err := stream.NewDecoder(o)
		if err != nil {
			t.Fatal(err)
		}
		readers := chaosReaders(shards, dec.BlockSize())
		var out bytes.Buffer
		start := time.Now()
		if err := dec.Decode(context.Background(), readers, &out, int64(len(payload))); err != nil {
			t.Fatalf("decode (adaptive=%v): %v", adaptive, err)
		}
		dur := time.Since(start)
		if !bytes.Equal(out.Bytes(), payload) {
			t.Fatalf("decode (adaptive=%v) produced wrong bytes", adaptive)
		}
		// Exact accounting, both runs: every adjustment increments the
		// counter once and lands in history once. For the static run both
		// sides are zero (the series is unregistered, Value() == 0).
		adjusted := reg.Counter("adapt_adjustments_total", "").Value()
		var hist int
		if ctrl != nil {
			hist = len(ctrl.History())
		}
		if adjusted != uint64(hist) {
			t.Fatalf("adaptive=%v: adapt_adjustments_total = %d, history = %d — must match exactly",
				adaptive, adjusted, hist)
		}
		return dur, dec.Stats(), tr, ctrl, reg
	}

	staticDur, staticSt, staticTr, _, _ := decode(false)
	adaptDur, adaptSt, adaptTr, ctrl, adaptReg := decode(true)
	t.Logf("static: dur=%v hedged=%d wins=%d", staticDur, staticSt.HedgedReads, staticSt.HedgeWins)
	t.Logf("adapt:  dur=%v hedged=%d wins=%d raHits=%d ticks=%d suppressed=%d",
		adaptDur, adaptSt.HedgedReads, adaptSt.HedgeWins,
		adaptReg.Counter("shardio_readahead_hits_total", "").Value(),
		adaptReg.Counter("adapt_ticks_total", "").Value(),
		adaptReg.Counter("adapt_suppressed_total", "").Value())
	for _, d := range ctrl.History() {
		t.Logf("  tick %d %s -> %+v", d.Tick, d.Reason, d.Knobs)
	}

	if staticSt.HedgedReads == 0 || adaptSt.HedgedReads == 0 {
		t.Fatalf("stragglers never triggered hedges (static %d, adaptive %d)",
			staticSt.HedgedReads, adaptSt.HedgedReads)
	}

	// The loop must actually have closed: the clean -> slow transition
	// is a >10x latency step against the warmed-up baseline, far past
	// the 1.10 trigger, so at least one latency-high adjustment fires.
	hist := ctrl.History()
	if len(hist) == 0 {
		t.Fatal("controller never adjusted under a 10x latency shift")
	}
	sawLatencyHigh := false
	for _, d := range hist {
		switch d.Reason {
		case ReasonLatencyHigh, ReasonUselessHigh, ReasonStorm:
		default:
			t.Fatalf("history records non-adjusting reason %q", d.Reason)
		}
		if d.Reason == ReasonLatencyHigh {
			sawLatencyHigh = true
		}
	}
	if !sawLatencyHigh {
		t.Fatalf("no latency-high adjustment in history: %+v", hist)
	}
	// Aggression must have raised the prefetch knob from its static
	// zero — the paper's central adaptation — and the live group must
	// have served reads from it. The check reads the history, not the
	// final knob set: a late useless-high tick may legitimately back
	// the depth off again after the last burst's buffers are discarded.
	maxRA := 0
	for _, d := range hist {
		if d.Knobs.Readahead > maxRA {
			maxRA = d.Knobs.Readahead
		}
	}
	if maxRA < 1 {
		t.Fatalf("controller never raised readahead above the static 0: %+v", hist)
	}
	if adaptReg.Counter("shardio_readahead_hits_total", "").Value() == 0 {
		t.Fatal("adaptive group never served a block from readahead")
	}

	// A/B: the adaptive run beats the static run end to end, and the
	// steady-state tail shows where the win comes from. The p50 is the
	// honest cadence signal: with raised readahead the gather drains
	// buffers instead of paying the max of eight fresh draws, so the
	// typical tail stripe is milliseconds cheaper — large against
	// scheduler noise, asserted strictly. The p99 of a 48-stripe tail
	// window is the single burst stall inside it; the tightened
	// deadline makes that stall ~10% cheaper on average, but the window
	// max is one span, and stripes queued behind the stall (in-flight
	// window 4) can inflate their spans by several milliseconds of pure
	// scheduling. The p99 assertion therefore only rejects a blowup —
	// an adaptive tail stall 1.5x the static one means a knob moved the
	// wrong way (a relaxed deadline roughly doubles the stall), not
	// that the max-of-48 drew an unlucky queue.
	if adaptDur >= staticDur {
		t.Fatalf("adaptive decode (%v) not faster than static (%v)", adaptDur, staticDur)
	}
	tail := 48 // within the 64-span ring
	sP50, aP50 := tailQ(staticTr, tail, 0.50), tailQ(adaptTr, tail, 0.50)
	sP99, aP99 := tailQ(staticTr, tail, 0.99), tailQ(adaptTr, tail, 0.99)
	t.Logf("tail(%d): static p50/p99 %.0f/%.0fus, adaptive %.0f/%.0fus", tail, sP50, sP99, aP50, aP99)
	if sP99 == 0 || aP99 == 0 {
		t.Fatalf("missing stripe spans (static p99 %v, adaptive p99 %v)", sP99, aP99)
	}
	if aP50 >= sP50 {
		t.Fatalf("adaptive tail p50 %.0fus not below static %.0fus", aP50, sP50)
	}
	if aP99 >= sP99*1.5 {
		t.Fatalf("adaptive tail p99 %.0fus blew past static %.0fus", aP99, sP99)
	}

	// Useless hedges (hedges the straggler still won): tightening the
	// deadline must not make speculation start missing. Absolute counts
	// here are 0-3 per run — a rejoin block that lands inside the
	// verify-queue lag gets late-claimed, turning that hedge "useless"
	// — so the check allows that scheduling jitter while still
	// catching a real blowup: a too-tight deadline hedges stripes the
	// straggler would have served, and with ~15-20 hedged stripes per
	// run that failure mode pushes this counter well past the
	// allowance.
	staticUseless := staticSt.HedgedReads - staticSt.HedgeWins
	adaptUseless := adaptSt.HedgedReads - adaptSt.HedgeWins
	if adaptUseless > staticUseless+4 {
		t.Fatalf("adaptive useless hedges %d blew past static %d", adaptUseless, staticUseless)
	}
}
