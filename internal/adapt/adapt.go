// Package adapt closes the paper's adaptive-scheduling loop over the
// live decode pipeline: a feedback controller samples the
// observability layer (internal/obs) and moves the pipeline's
// scheduling knobs — per-shard readahead depth, hedge interval,
// deadline multiplier, active worker count, and the bounded in-flight
// window — while stripes are flowing.
//
// The policy is the paper's relative-threshold rule mapped from
// prefetcher scheduling onto degraded reads: raise prefetch/hedge
// aggressiveness when the observed stripe latency exceeds 110% of its
// trailing baseline, and back off when the useless-work ratio (hedges
// that did not win, readahead blocks discarded unused) exceeds 150% of
// its baseline. Both triggers are Schmitt triggers — once fired they
// re-arm only after the signal falls back inside a hysteresis band —
// and every knob carries an independent tick-count cooldown, so the
// controller nudges rather than oscillates.
//
// The package is built deterministic-first: the policy is a pure
// state machine over Signals values (replayable from a recorded
// trace), the controller takes a vclock.Clock for its ticker, and the
// knobs publish through an atomic pointer so pipeline goroutines read
// them torn-free at stripe boundaries. With no controller attached the
// pipeline never touches this package and behaves byte-for-byte as
// before.
package adapt

import (
	"fmt"
	"sync/atomic"
	"time"

	"dialga/internal/stream"
)

// KnobName identifies one tunable pipeline knob in decisions,
// cooldowns, and metrics labels.
type KnobName string

const (
	KnobHedgeAfter   KnobName = "hedge_after"
	KnobDeadlineMult KnobName = "deadline_mult"
	KnobReadahead    KnobName = "readahead"
	KnobWorkers      KnobName = "workers"
	KnobWindow       KnobName = "window"
)

// knobNames is the fixed iteration order for cooldown bookkeeping and
// metrics — deterministic output requires deterministic order.
var knobNames = []KnobName{
	KnobHedgeAfter, KnobDeadlineMult, KnobReadahead, KnobWorkers, KnobWindow,
}

// Knobs is one complete setting of the dynamic pipeline knobs. The
// controller owns a single current Knobs value and publishes copies
// atomically; pipeline code never mutates one.
type Knobs struct {
	// HedgeAfter is the hedge interval / deadline floor. Zero means
	// the pipeline was built without hedging and the knob is pinned.
	HedgeAfter time.Duration
	// DeadlineMult scales the fleet-median latency EWMA into the
	// per-stripe deadline.
	DeadlineMult float64
	// Readahead is the per-shard speculative read depth in blocks.
	Readahead int
	// Workers is the active encode/decode worker count.
	Workers int
	// Window is the bounded in-flight stripe window.
	Window int
}

// Limits clamps every knob move. Min == Max pins a knob.
type Limits struct {
	MinHedgeAfter, MaxHedgeAfter     time.Duration
	MinDeadlineMult, MaxDeadlineMult float64
	MinReadahead, MaxReadahead       int
	MinWorkers, MaxWorkers           int
	MinWindow, MaxWindow             int
}

// DefaultLimits derives sane clamps from the pipeline's initial knob
// values: the hedge interval may move a factor of 8 either way, the
// deadline multiplier stays in [1.5, 16], readahead in [0, 8], and
// workers/window may only shrink from their static ceilings (the
// pipeline goroutines and channel buffers are sized at build time).
func DefaultLimits(initial Knobs) Limits {
	l := Limits{
		MinDeadlineMult: 1.5,
		MaxDeadlineMult: 16,
		MinReadahead:    0,
		MaxReadahead:    8,
		MinWorkers:      1,
		MaxWorkers:      initial.Workers,
		MinWindow:       1,
		MaxWindow:       initial.Window,
	}
	if initial.HedgeAfter > 0 {
		l.MinHedgeAfter = initial.HedgeAfter / 8
		l.MaxHedgeAfter = initial.HedgeAfter * 8
	}
	return l
}

// clamp returns k with every field forced inside l.
func (l Limits) clamp(k Knobs) Knobs {
	k.HedgeAfter = clampDur(k.HedgeAfter, l.MinHedgeAfter, l.MaxHedgeAfter)
	k.DeadlineMult = clampF(k.DeadlineMult, l.MinDeadlineMult, l.MaxDeadlineMult)
	k.Readahead = clampI(k.Readahead, l.MinReadahead, l.MaxReadahead)
	k.Workers = clampI(k.Workers, l.MinWorkers, l.MaxWorkers)
	k.Window = clampI(k.Window, l.MinWindow, l.MaxWindow)
	return k
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		v = lo
	}
	if hi > 0 && v > hi {
		v = hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		v = lo
	}
	if hi > 0 && v > hi {
		v = hi
	}
	return v
}

func clampI(v, lo, hi int) int {
	if v < lo {
		v = lo
	}
	if hi > 0 && v > hi {
		v = hi
	}
	return v
}

func (k Knobs) String() string {
	return fmt.Sprintf("hedge=%v mult=%.2f ra=%d workers=%d window=%d",
		k.HedgeAfter, k.DeadlineMult, k.Readahead, k.Workers, k.Window)
}

// State is the lock-free publication point between the controller
// (single writer) and the pipeline goroutines (many readers): a whole
// Knobs value swaps atomically, so a reader never observes a torn mix
// of old and new settings. State implements stream.Tuner, so it plugs
// directly into stream.Options.Tuner.
type State struct {
	knobs atomic.Pointer[Knobs]
}

// NewState returns a State publishing initial.
func NewState(initial Knobs) *State {
	s := &State{}
	s.Store(initial)
	return s
}

// Store publishes a new knob set; the pipeline sees it at its next
// stripe boundary.
func (s *State) Store(k Knobs) { s.knobs.Store(&k) }

// Load returns the current knob set.
func (s *State) Load() Knobs { return *s.knobs.Load() }

// PipelineTuning implements stream.Tuner over the published knobs.
func (s *State) PipelineTuning() stream.Tuning {
	k := s.Load()
	return stream.Tuning{
		HedgeAfter:   k.HedgeAfter,
		DeadlineMult: k.DeadlineMult,
		Readahead:    k.Readahead,
		Workers:      k.Workers,
		Window:       k.Window,
	}
}
