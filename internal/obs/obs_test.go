package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("x_total", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "help", Label{"shard", "3"})
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
	if other := r.Gauge("g", "help", Label{"shard", "4"}); other == g {
		t.Fatal("different label sets shared a series")
	}
}

func TestNilRegistryAndMetricsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	tr := (*Tracer)(nil)
	sp := tr.Begin(1)
	// None of these may panic.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	sp.Event("read", "")
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics reported values")
	}
	var sb strings.Builder
	if err := r.Expose(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q err=%v", sb.String(), err)
	}
	if tr.Snapshot() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer reported spans")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge re-registration of a counter name did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramBucketEdges pins the inclusive-upper-bound contract: an
// observation exactly on a bound stays with its peers below, never
// spilling into the bucket above.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 4, 8})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // bound 1 is inclusive
		{1.5, 1}, {2, 1}, // exact power of two: with its peers in (1,2]
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {1e9, 4}, // overflow bucket
	}
	for _, tc := range cases {
		h.Observe(tc.v)
	}
	counts, sum, count := h.Snapshot()
	if count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", count, len(cases))
	}
	want := make([]uint64, 5)
	var wantSum float64
	for _, tc := range cases {
		want[tc.bucket]++
		wantSum += tc.v
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if sum != wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	if got := h.Bounds(); len(got) != 4 || got[3] != 8 {
		t.Fatalf("Bounds() = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(1.5) // (1,2]
	}
	for i := 0; i < 10; i++ {
		h.Observe(100) // overflow
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %g, want 2", q)
	}
	if q := h.Quantile(0.89); q != 2 {
		t.Fatalf("p89 = %g, want 2", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %g, want +Inf (overflow bucket)", q)
	}
	if q := h.Quantile(-1); q != 2 {
		t.Fatalf("clamped q<0 = %g, want 2", q)
	}
	if q := h.Quantile(2); !math.IsInf(q, 1) {
		t.Fatalf("clamped q>1 = %g, want +Inf", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.Histogram("bad", "", []float64{1, 1})
}

func TestLabelRendering(t *testing.T) {
	got := renderLabels([]Label{{"b", "2"}, {"a", `quote " back \ nl` + "\n"}})
	want := `a="quote \" back \\ nl\n",b="2"`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatal("empty label set should render empty")
	}
}
