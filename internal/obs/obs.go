// Package obs is the repository's dependency-free observability
// substrate: an atomic metrics registry (counters, gauges and
// log-linear histograms with explicit bucket upper bounds), a
// Prometheus-text-format exposition, and a lightweight ring-buffer
// tracer for stripe lifecycles.
//
// The paper's coordinator is driven entirely by measurement — PMU
// sampling feeding relative-latency and useless-prefetch thresholds —
// and the production layers (internal/stream, internal/shardio) follow
// the same discipline at stream scale: every scheduling decision
// (hedge, breaker trip, retry, heal) is visible as a metric or a span
// so it can be tuned from the outside. Metrics registered here back
// stream.Stats snapshots and are served by `dialga-bench -serve` at
// /metrics and /debug/trace.
//
// Design constraints:
//
//   - No dependencies beyond the standard library.
//   - Hot-path updates are single atomic operations; registration
//     (name lookup, label rendering) happens once at construction.
//   - Every method is safe on a nil receiver: a nil *Registry hands
//     out nil metrics whose updates no-op, so instrumented code never
//     branches on "is observability on".
//   - Exposition is deterministic: families sorted by name, series by
//     label set, so the output is golden-file testable.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one constant key/value pair attached to a metric series at
// registration time (e.g. shard="3", pipeline="decode").
type Label struct {
	Key   string
	Value string
}

// metricKind discriminates the three series types a family can hold.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// family groups every series sharing one metric name: same kind, same
// help string, and (for histograms) same bucket bounds.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64      // histogram families only
	series map[string]any // rendered label set -> *Counter/*Gauge/*Histogram
}

// Registry is a set of metric families. All methods are safe for
// concurrent use, and safe on a nil *Registry (metrics come back nil
// and their updates no-op).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels canonicalizes a label set: sorted by key, values
// escaped, joined as `k="v",k2="v2"`. The empty set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes to a
// label value: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns (creating if needed) the family and the series slot
// for one registration. It panics when the same name is re-registered
// with a different kind — that is a programming error the process
// should not limp past.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) any {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]any)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	if s, ok := f.series[key]; ok {
		return s
	}
	var s any
	switch kind {
	case counterKind:
		s = &Counter{}
	case gaugeKind:
		s = &Gauge{}
	case histogramKind:
		s = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// Counter returns the counter series for (name, labels), registering
// it on first use. The same (name, labels) always returns the same
// *Counter, so independent components sharing a registry accumulate
// into one series. On a nil registry it returns nil (updates no-op).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, counterKind, nil, labels).(*Counter)
}

// Gauge returns the gauge series for (name, labels), registering it on
// first use. On a nil registry it returns nil (updates no-op).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, gaugeKind, nil, labels).(*Gauge)
}

// Histogram returns the histogram series for (name, labels),
// registering it on first use. bounds are the inclusive upper bounds
// of the finite buckets in ascending order; an overflow (+Inf) bucket
// is always appended. The bounds of the first registration win for the
// whole family. On a nil registry it returns nil (updates no-op).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d: %v", name, i, bounds))
		}
	}
	return r.lookup(name, help, histogramKind, append([]float64(nil), bounds...), labels).(*Histogram)
}
