package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers registration, updates, and Expose
// from many goroutines at once. Under -race this proves the whole
// surface is data-race free; in any mode it checks the final totals
// are exact (no lost updates).
func TestRegistryConcurrent(t *testing.T) {
	iters := 2000
	if raceEnabled {
		iters = 400
	}
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Re-register every iteration: lookup must be safe and
				// always return the same series.
				r.Counter("c_total", "h").Inc()
				r.Gauge("g", "h", Label{"w", fmt.Sprint(g)}).Set(float64(i))
				r.Histogram("h_us", "h", []float64{1, 4, 16}).Observe(float64(i % 20))
				if i%64 == 0 {
					if err := r.Expose(io.Discard); err != nil {
						t.Errorf("Expose: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "h").Value(); got != uint64(workers*iters) {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*iters)
	}
	_, _, count := r.Histogram("h_us", "h", []float64{1, 4, 16}).Snapshot()
	if count != uint64(workers*iters) {
		t.Fatalf("histogram count = %d, want %d", count, workers*iters)
	}
}

// TestTracerConcurrent runs span producers against snapshot/JSON
// readers; span ownership transfer and ring eviction must be clean
// under -race.
func TestTracerConcurrent(t *testing.T) {
	spans := 3000
	if raceEnabled {
		spans = 600
	}
	tr := NewTracer(64)
	done := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, sp := range tr.Snapshot() {
					if len(sp.Events) != 1 || sp.Events[0].Name != "emit" {
						t.Errorf("torn span observed: %+v", sp)
						return
					}
				}
				if err := tr.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < spans; i++ {
				sp := tr.Begin(int64(g*spans + i))
				sp.Event("emit", "x")
				sp.End()
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()
	if tr.Total() != uint64(4*spans) {
		t.Fatalf("Total = %d, want %d", tr.Total(), 4*spans)
	}
}
