package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// Expose writes every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label set, histograms as cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. The output is deterministic for a
// fixed registry state, so it can be pinned by golden-file tests. A
// nil registry writes nothing.
func (r *Registry) Expose(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot the family and series structure under the lock, then
	// render from live atomics: registration is rare, updates are not.
	type seriesRef struct {
		labels string
		metric any
	}
	type famRef struct {
		*family
		series []seriesRef
	}
	r.mu.Lock()
	fams := make([]famRef, 0, len(r.fams))
	for _, f := range r.fams {
		fr := famRef{family: f}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fr.series = append(fr.series, seriesRef{labels: k, metric: f.series[k]})
		}
		fams = append(fams, fr)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				writeSeries(bw, f.name, s.labels, strconv.FormatUint(m.Value(), 10))
			case *Gauge:
				writeSeries(bw, f.name, s.labels, formatFloat(m.Value()))
			case *Histogram:
				counts, sum, count := m.Snapshot()
				var cum uint64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < len(m.bounds) {
						le = formatFloat(m.bounds[i])
					}
					writeSeries(bw, f.name+"_bucket", joinLabels(s.labels, `le="`+le+`"`),
						strconv.FormatUint(cum, 10))
				}
				writeSeries(bw, f.name+"_sum", s.labels, formatFloat(sum))
				writeSeries(bw, f.name+"_count", s.labels, strconv.FormatUint(count, 10))
			}
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
