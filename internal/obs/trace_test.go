package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		sp := tr.Begin(i)
		sp.Event("read", "")
		sp.Event("emit", fmt.Sprintf("stripe %d", i))
		sp.End()
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Newest first: 9, 8, 7, 6.
	for i, sp := range spans {
		if sp.ID != int64(9-i) {
			t.Fatalf("span %d has ID %d, want %d", i, sp.ID, 9-i)
		}
		if len(sp.Events) != 2 || sp.Events[0].Name != "read" || sp.Events[1].Name != "emit" {
			t.Fatalf("span %d events = %+v", i, sp.Events)
		}
	}
}

func TestTracerEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin(1)
	sp.End()
	sp.End()
	if tr.Total() != 1 {
		t.Fatalf("double End recorded %d spans, want 1", tr.Total())
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	for i := int64(0); i < DefaultTraceCapacity+5; i++ {
		tr.Begin(i).End()
	}
	if got := len(tr.Snapshot()); got != DefaultTraceCapacity {
		t.Fatalf("retained %d, want %d", got, DefaultTraceCapacity)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Begin(3)
	sp.Event("read", "got=5")
	sp.Event("reconstruct", "")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total uint64 `json:"total"`
		Spans []struct {
			ID     int64 `json:"id"`
			Events []struct {
				Name string `json:"name"`
				Attr string `json:"attr"`
			} `json:"events"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Total != 1 || len(doc.Spans) != 1 || doc.Spans[0].ID != 3 {
		t.Fatalf("unexpected trace doc: %+v", doc)
	}
	if doc.Spans[0].Events[0].Name != "read" || doc.Spans[0].Events[0].Attr != "got=5" {
		t.Fatalf("unexpected events: %+v", doc.Spans[0].Events)
	}
	// Empty tracer must still serialize spans as [], not null.
	buf.Reset()
	if err := NewTracer(2).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"spans": []`)) {
		t.Fatalf("empty tracer JSON: %s", buf.String())
	}
}
