package obs

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry exercising every
// family kind, label rendering, and histogram bucket accumulation.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("stream_stripes_total", "Stripes fully emitted downstream.",
		Label{"pipeline", "decode"}).Add(42)
	r.Counter("stream_stripes_total", "Stripes fully emitted downstream.",
		Label{"pipeline", "encode"}).Add(7)
	r.Counter("plain_total", "A series without labels.").Add(3)
	r.Gauge("shardio_shard_ewma_us", "Per-shard block-read latency EWMA.",
		Label{"shard", "0"}).Set(12.5)
	r.Gauge("shardio_shard_ewma_us", "Per-shard block-read latency EWMA.",
		Label{"shard", "1"}).Set(250)
	h := r.Histogram("stream_stripe_latency_us", "Per-stripe codec latency.",
		[]float64{1, 2, 4, 8}, Label{"pipeline", "decode"})
	for _, v := range []float64{0.5, 2, 2, 3, 9} {
		h.Observe(v)
	}
	return r
}

func TestExposeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Expose(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "expose.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExposeParses is a minimal structural parse of the text format:
// every non-comment line is `name{labels} value` with a numeric value,
// HELP/TYPE come before their series, and histogram buckets are
// cumulative and le-ordered — the properties a Prometheus scraper
// relies on.
func TestExposeParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Expose(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]string{}
	var lastBucketCum uint64
	var lastBucketSeries string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("series line %q has no value", line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("series %q value %q not numeric: %v", series, value, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unterminated label set in %q", series)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("series %q appeared before its TYPE line", series)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q not a uint: %v", value, err)
			}
			key := series[:strings.Index(series, "le=")]
			if key == lastBucketSeries && cum < lastBucketCum {
				t.Fatalf("bucket series %q not cumulative: %d after %d", series, cum, lastBucketCum)
			}
			lastBucketSeries, lastBucketCum = key, cum
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if typed["stream_stripes_total"] != "counter" || typed["stream_stripe_latency_us"] != "histogram" {
		t.Fatalf("TYPE lines missing or wrong: %v", typed)
	}
}

func TestExposeHistogramHasInf(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Expose(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`stream_stripe_latency_us_bucket{pipeline="decode",le="+Inf"} 5`,
		`stream_stripe_latency_us_bucket{pipeline="decode",le="2"} 3`,
		`stream_stripe_latency_us_count{pipeline="decode"} 5`,
		fmt.Sprintf(`stream_stripe_latency_us_sum{pipeline="decode"} %s`, formatFloat(16.5)),
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
