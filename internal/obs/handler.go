package obs

import "net/http"

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the /metrics endpoint every
// dialga server (dialga-node, `dialga-bench -serve`) mounts, kept here
// so the content type and error handling are written once. A nil
// registry serves an empty (but valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.Expose(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Handler returns an http.Handler serving the tracer's span ring as
// JSON, newest first — the /debug/trace endpoint.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
