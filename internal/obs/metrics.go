package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing series. The zero value is
// ready to use; all methods are safe on a nil *Counter (no-ops), so
// uninstrumented code paths cost one branch.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// atomicFloat is a float64 updated with atomic bit operations; Add is
// a CAS loop (contention on these is one update per stripe, not per
// byte, so the loop virtually never retries).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Gauge is a float64 series that can go up and down (an EWMA, a
// deadline, a breaker state). The zero value is ready; all methods are
// safe on a nil *Gauge.
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.store(v)
	}
}

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v.add(d)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram is a fixed-bucket distribution with explicit inclusive
// upper bounds plus an overflow (+Inf) bucket: an observation v lands
// in the first bucket whose bound is >= v. Updates are two atomic adds
// and one CAS; all methods are safe on a nil *Histogram.
type Histogram struct {
	bounds []float64       // finite inclusive upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: exact-bound observations stay with their
	// bucket's peers in (prev, bound] instead of spilling upward.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Bounds returns a copy of the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Snapshot copies the per-bucket counts (len(Bounds())+1 entries, the
// last being the overflow bucket) along with the running sum and total
// observation count. The three values are each atomically read but not
// mutually consistent under concurrent writes; totals catch up once
// writers pause, which is the same contract stream.Stats has always
// had.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.load(), h.count.Load()
}

// Quantile returns an upper bound on the q-quantile (clamped to
// [0, 1]) at bucket resolution: the bound of the bucket the rank falls
// in, or +Inf when it falls in the overflow bucket. It returns 0 when
// nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, _, total := h.Snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if rank < cum {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
