//go:build race

package obs

// raceEnabled reports whether the race detector is active; the
// concurrent registry/tracer hammer tests scale their workload down
// under instrumentation (the stream package uses the same pattern).
const raceEnabled = true
