package obs

import (
	"sync/atomic"
	"testing"
)

// The registry's promise to the stream hot path is "one atomic op per
// update, same as the raw counters it replaced". These benchmarks pin
// that: BenchmarkObsCounterAdd vs BenchmarkObsRawAtomicAdd is the
// per-update overhead the CI BENCH_obs artifact tracks (the end-to-end
// bound is <2% on BenchmarkStreamEncode at the repository root).

func BenchmarkObsRawAtomicAdd(b *testing.B) {
	var v atomic.Uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Add(1)
	}
}

func BenchmarkObsCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	bounds := make([]float64, 26)
	for i := range bounds {
		bounds[i] = float64(uint64(1) << i)
	}
	h := NewRegistry().Histogram("bench_us", "", bounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

func BenchmarkObsNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsSpan(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(int64(i))
		sp.Event("read", "")
		sp.Event("emit", "")
		sp.End()
	}
}
