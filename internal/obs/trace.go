package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultTraceCapacity is the span ring size NewTracer(0) uses.
const DefaultTraceCapacity = 256

// SpanEvent is one step inside a span: a name (read, verify,
// reconstruct, emit, ...), its offset from the span start, and an
// optional free-form annotation (hedge targets, demoted counts, ...).
type SpanEvent struct {
	Name string `json:"name"`
	AtUS int64  `json:"at_us"`
	Attr string `json:"attr,omitempty"`
}

// Span is the recorded lifecycle of one unit of work (a stripe moving
// through the decode pipeline). A span is owned by exactly one
// goroutine at a time — the pipeline's existing happens-before edges
// (channel handoffs) carry it producer → worker → consumer — and is
// published to the tracer's ring only at End.
type Span struct {
	ID     int64       `json:"id"`
	Start  time.Time   `json:"start"`
	DurUS  int64       `json:"dur_us"`
	Events []SpanEvent `json:"events"`

	tr   *Tracer
	done bool
}

// Tracer keeps the last N finished spans in a ring buffer. Begin/End
// cost one mutex acquisition per span plus the events appended in
// between; a nil *Tracer no-ops everywhere, so tracing defaults off.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	n     int // filled entries
	next  int // ring write cursor
	total uint64
}

// NewTracer returns a tracer retaining the last capacity finished
// spans (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Begin starts a span for unit id. On a nil tracer it returns nil,
// and every Span method is safe on a nil receiver, so callers
// instrument unconditionally.
func (t *Tracer) Begin(id int64) *Span {
	if t == nil {
		return nil
	}
	return &Span{ID: id, Start: time.Now(), tr: t}
}

// Event appends one named step with an optional annotation.
func (s *Span) Event(name, attr string) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{
		Name: name,
		AtUS: int64(time.Since(s.Start) / time.Microsecond),
		Attr: attr,
	})
}

// End finalizes the span and publishes it to the tracer's ring,
// evicting the oldest span once the ring is full. End is idempotent;
// events appended after End are lost.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.DurUS = int64(time.Since(s.Start) / time.Microsecond)
	t := s.tr
	t.mu.Lock()
	t.ring[t.next] = *s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of spans ever finished (including ones the
// ring has since evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, newest first. The returned
// slice is a copy; the Events slices are shared with the ring but are
// immutable once a span has ended.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 0; i < t.n; i++ {
		// next-1 is the newest entry; walk backwards.
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// WriteJSON writes the retained spans (newest first) as an indented
// JSON document: {"total": N, "spans": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}{Total: t.Total(), Spans: t.Snapshot()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
