package shardfile

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"dialga/internal/rs"
	"dialga/internal/stream"
)

// castagnoli is the tests' independent CRC-32C table: header and
// trailer expectations are computed with stdlib hash/crc32 rather
// than the gf.CRC32C the implementation uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func mustRS(t testing.TB, k, m int) *rs.Code {
	t.Helper()
	c, err := rs.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func v3Header() Header {
	return Header{
		Version: VersionV3, K: 8, M: 4, Index: 11,
		ShardSize: 131072, StripeCount: 2048, FileSize: 1 << 31,
		Algo: AlgoCRC32C,
	}
}

func TestHeaderMarshalParseRoundTrip(t *testing.T) {
	for _, h := range []Header{
		v3Header(),
		{Version: VersionV2, K: 4, M: 2, Index: 0, ShardSize: 256, StripeCount: 10, FileSize: 9999},
		{Version: VersionV3, K: 3, M: 1, Index: 3, ShardSize: 64, StripeCount: 1, FileSize: 100, Algo: AlgoNone},
	} {
		got, err := Parse(bytes.NewReader(h.Marshal()))
		if err != nil {
			t.Fatalf("Parse(%+v): %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: got %+v want %+v", got, h)
		}
	}
	// Version 0 marshals as v3.
	h := v3Header()
	h.Version = 0
	got, err := Parse(bytes.NewReader(h.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != VersionV3 {
		t.Fatalf("zero version marshalled as %d, want v3", got.Version)
	}
}

// TestHeaderRejections is the table-driven negative suite: every
// mutation of a valid v3 header must be rejected, and the self-CRC
// must catch silent field corruption that would otherwise still parse.
func TestHeaderRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[0:], 0xdeadbeef)
			return b
		}},
		{"unknown version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 7)
			return b
		}},
		{"corrupt k field under self-CRC", func(b []byte) []byte {
			b[8] ^= 0xff // parses as a plausible geometry without the CRC
			return b
		}},
		{"single bit flip under self-CRC", func(b []byte) []byte {
			b[25] ^= 1 // stripe count off by one
			return b
		}},
		{"corrupt self-CRC itself", func(b []byte) []byte {
			b[45] ^= 1
			return b
		}},
		{"unknown checksum algo", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[40:], 99)
			binary.LittleEndian.PutUint32(b[44:], crc32.Checksum(b[:44], castagnoli))
			return b
		}},
		{"index outside geometry", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 12)
			binary.LittleEndian.PutUint32(b[44:], crc32.Checksum(b[:44], castagnoli))
			return b
		}},
		{"zero geometry", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			binary.LittleEndian.PutUint32(b[44:], crc32.Checksum(b[:44], castagnoli))
			return b
		}},
		{"truncated v3 tail", func(b []byte) []byte {
			return b[:HeaderSizeV2+2]
		}},
		{"truncated v2 prefix", func(b []byte) []byte {
			return b[:16]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mutate(v3Header().Marshal())
			if _, err := Parse(bytes.NewReader(buf)); err == nil {
				t.Fatalf("mutated header accepted")
			}
		})
	}
}

// TestParseV1Rejected pins the oldest layout: a 16-byte v1 header
// (magic + size, no version) must not parse.
func TestParseV1Rejected(t *testing.T) {
	old := make([]byte, 16)
	binary.LittleEndian.PutUint32(old[0:], Magic)
	binary.LittleEndian.PutUint64(old[8:], 12345)
	if _, err := Parse(bytes.NewReader(old)); err == nil {
		t.Fatal("v1 header accepted")
	}
}

func TestHeaderSizes(t *testing.T) {
	v2 := Header{Version: VersionV2, K: 4, M: 2, ShardSize: 100, StripeCount: 3}
	v3 := Header{Version: VersionV3, K: 4, M: 2, ShardSize: 100, StripeCount: 3, Algo: AlgoCRC32C}
	if len(v2.Marshal()) != HeaderSizeV2 || v2.HeaderSize() != HeaderSizeV2 {
		t.Fatal("v2 header size wrong")
	}
	if len(v3.Marshal()) != HeaderSizeV3 || v3.HeaderSize() != HeaderSizeV3 {
		t.Fatal("v3 header size wrong")
	}
	if v2.ExpectedFileSize() != 40+3*100 {
		t.Fatalf("v2 expected size %d", v2.ExpectedFileSize())
	}
	if v3.ExpectedFileSize() != 48+3*104 {
		t.Fatalf("v3 expected size %d", v3.ExpectedFileSize())
	}
	if AlgoNone.TrailerSize() != 0 || AlgoCRC32C.TrailerSize() != 4 {
		t.Fatal("trailer sizes wrong")
	}
	if AlgoNone.Stream() != stream.ChecksumNone || AlgoCRC32C.Stream() != stream.ChecksumCRC32C {
		t.Fatal("Algo -> stream.Checksum mapping wrong")
	}
}

// block builds a shardSize payload + CRC trailer stripe block.
func block(payload []byte) []byte {
	b := append([]byte(nil), payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	return append(b, crc[:]...)
}

func TestScrub(t *testing.T) {
	h := Header{Version: VersionV3, K: 2, M: 1, Index: 0, ShardSize: 32, StripeCount: 4, Algo: AlgoCRC32C}
	p := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, 32) }

	var body bytes.Buffer
	body.Write(block(p(1)))
	bad := block(p(2))
	bad[5] ^= 0x40 // corrupt stripe 1
	body.Write(bad)
	body.Write(block(p(3)))
	bad2 := block(p(4))
	bad2[32] ^= 1 // corrupt the trailer of stripe 3
	body.Write(bad2)

	res, err := Scrub(bytes.NewReader(body.Bytes()), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stripes != 4 || res.Corrupt != 2 {
		t.Fatalf("scrub found %d/%d corrupt, want 2/4", res.Corrupt, res.Stripes)
	}
	if len(res.CorruptStripes) != 2 || res.CorruptStripes[0] != 1 || res.CorruptStripes[1] != 3 {
		t.Fatalf("corrupt stripes %v, want [1 3]", res.CorruptStripes)
	}

	// Truncated shard: body ends one block early.
	short := body.Bytes()[:3*36]
	if _, err := Scrub(bytes.NewReader(short), h); err == nil {
		t.Fatal("scrub accepted a truncated shard")
	}

	// Unverifiable formats.
	h2 := h
	h2.Algo = AlgoNone
	if _, err := Scrub(bytes.NewReader(nil), h2); !errors.Is(err, ErrNoChecksum) {
		t.Fatalf("scrub of AlgoNone returned %v, want ErrNoChecksum", err)
	}
}

// TestScrubMatchesEncoderOutput scrubs blocks produced by the real
// streaming encoder, pinning the two packages to one trailer format.
func TestScrubMatchesEncoderOutput(t *testing.T) {
	code := mustRS(t, 3, 2)
	enc, err := stream.NewEncoder(stream.Options{Codec: code, StripeSize: 3 * 64, Checksum: stream.ChecksumCRC32C})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("dialga!"), 100)
	bufs := make([]bytes.Buffer, enc.Shards())
	writers := make([]io.Writer, enc.Shards())
	for i := range bufs {
		writers[i] = &bufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	stripes := uint64(enc.Stats().Stripes)
	for i := range bufs {
		h := Header{
			Version: VersionV3, K: 3, M: 2, Index: uint32(i),
			ShardSize: uint32(enc.ShardSize()), StripeCount: stripes,
			Algo: AlgoCRC32C,
		}
		res, err := Scrub(bytes.NewReader(bufs[i].Bytes()), h)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if res.Corrupt != 0 || res.Stripes != stripes {
			t.Fatalf("shard %d: scrub %d/%d corrupt on pristine encoder output", i, res.Corrupt, res.Stripes)
		}
	}
}
