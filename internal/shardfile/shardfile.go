// Package shardfile defines the self-describing on-disk shard-file
// format shared by cmd/dialga-encode (writer/reader) and
// cmd/dialga-inspect (scrubber).
//
// A shard file is a fixed header followed by StripeCount blocks of
// BlockSize bytes each. Two header versions are in the wild:
//
//	v2 (40 bytes, legacy): geometry + shard index + stripe count +
//	    file size. Blocks are bare ShardSize-byte payloads with no
//	    integrity trailer.
//	v3 (48 bytes): everything in v2, plus a checksum-algorithm field
//	    describing the per-block trailer (CRC-32C today) and a
//	    CRC-32C over the header itself, so a corrupted header is
//	    rejected instead of mis-parsed into a plausible geometry.
//
// Readers accept both; writers emit v3.
package shardfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"dialga/internal/gf"
	"dialga/internal/stream"
)

const (
	// Magic identifies a dialga shard file.
	Magic = 0xd1a16aec

	// VersionV2 is the legacy header: no checksum field, no header CRC,
	// bare blocks.
	VersionV2 = 2
	// VersionV3 adds the checksum-algorithm field and a header self-CRC.
	VersionV3 = 3

	// HeaderSizeV2 and HeaderSizeV3 are the on-disk header lengths.
	HeaderSizeV2 = 40
	HeaderSizeV3 = 48

	// headerCRCOff is where the v3 header self-CRC lives; it covers
	// bytes [0, headerCRCOff).
	headerCRCOff = 44
)

// Algo identifies the per-block checksum trailer of a shard file.
type Algo uint32

const (
	// AlgoNone means bare blocks: no trailer, no corruption detection.
	AlgoNone Algo = 0
	// AlgoCRC32C means each block carries a 4-byte little-endian
	// CRC-32C (Castagnoli) trailer.
	AlgoCRC32C Algo = 1
)

func (a Algo) String() string {
	switch a {
	case AlgoNone:
		return "none"
	case AlgoCRC32C:
		return "crc32c"
	default:
		return fmt.Sprintf("algo(%d)", uint32(a))
	}
}

// TrailerSize returns the per-block trailer bytes for the algorithm.
func (a Algo) TrailerSize() int {
	if a == AlgoCRC32C {
		return 4
	}
	return 0
}

// Stream maps the on-disk algorithm to the streaming pipeline's
// checksum mode.
func (a Algo) Stream() stream.Checksum {
	if a == AlgoCRC32C {
		return stream.ChecksumCRC32C
	}
	return stream.ChecksumNone
}

// Header is the parsed shard-file header.
//
// v3 layout (little-endian):
//
//	off  0  u32  magic
//	off  4  u32  version
//	off  8  u32  k (data shards)
//	off 12  u32  m (parity shards)
//	off 16  u32  shard index in [0, k+m)
//	off 20  u32  shard payload bytes per stripe (excluding trailer)
//	off 24  u64  stripe count
//	off 32  u64  original file size
//	off 40  u32  checksum algorithm (v3 only)
//	off 44  u32  CRC-32C over bytes [0, 44) (v3 only)
type Header struct {
	Version     uint32 // VersionV2 or VersionV3; 0 marshals as VersionV3
	K, M        uint32
	Index       uint32
	ShardSize   uint32
	StripeCount uint64
	FileSize    uint64
	Algo        Algo // v2 headers parse as AlgoNone
}

// HeaderSize returns the on-disk length of this header's version.
func (h Header) HeaderSize() int {
	if h.Version == VersionV2 {
		return HeaderSizeV2
	}
	return HeaderSizeV3
}

// BlockSize returns the on-disk bytes per stripe block: the shard
// payload plus the checksum trailer.
func (h Header) BlockSize() int64 {
	return int64(h.ShardSize) + int64(h.Algo.TrailerSize())
}

// ExpectedFileSize returns the exact byte length a well-formed shard
// file with this header must have; anything else is truncated or
// ragged.
func (h Header) ExpectedFileSize() int64 {
	return int64(h.HeaderSize()) + int64(h.StripeCount)*h.BlockSize()
}

// Marshal serializes the header in its version's layout (v3 when
// Version is zero), computing the self-CRC for v3.
func (h Header) Marshal() []byte {
	version := h.Version
	if version == 0 {
		version = VersionV3
	}
	size := HeaderSizeV3
	if version == VersionV2 {
		size = HeaderSizeV2
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint32(buf[8:], h.K)
	binary.LittleEndian.PutUint32(buf[12:], h.M)
	binary.LittleEndian.PutUint32(buf[16:], h.Index)
	binary.LittleEndian.PutUint32(buf[20:], h.ShardSize)
	binary.LittleEndian.PutUint64(buf[24:], h.StripeCount)
	binary.LittleEndian.PutUint64(buf[32:], h.FileSize)
	if version >= VersionV3 {
		binary.LittleEndian.PutUint32(buf[40:], uint32(h.Algo))
		binary.LittleEndian.PutUint32(buf[headerCRCOff:], gf.CRC32C(buf[:headerCRCOff]))
	}
	return buf
}

// Parse reads and validates a shard header from r, consuming exactly
// the header's on-disk length (40 bytes for v2, 48 for v3) and
// nothing more.
func Parse(r io.Reader) (Header, error) {
	buf := make([]byte, HeaderSizeV3)
	if _, err := io.ReadFull(r, buf[:HeaderSizeV2]); err != nil {
		return Header{}, fmt.Errorf("header truncated: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(buf[0:]); magic != Magic {
		return Header{}, fmt.Errorf("bad magic %#x", magic)
	}
	version := binary.LittleEndian.Uint32(buf[4:])
	switch version {
	case VersionV2:
	case VersionV3:
		if _, err := io.ReadFull(r, buf[HeaderSizeV2:]); err != nil {
			return Header{}, fmt.Errorf("v3 header truncated: %w", err)
		}
		want := binary.LittleEndian.Uint32(buf[headerCRCOff:])
		if got := gf.CRC32C(buf[:headerCRCOff]); got != want {
			return Header{}, fmt.Errorf("header self-CRC mismatch: computed %#x, stored %#x (corrupt header)", got, want)
		}
	default:
		return Header{}, fmt.Errorf("unsupported shard header version %d (want %d or %d)", version, VersionV2, VersionV3)
	}
	h := Header{
		Version:     version,
		K:           binary.LittleEndian.Uint32(buf[8:]),
		M:           binary.LittleEndian.Uint32(buf[12:]),
		Index:       binary.LittleEndian.Uint32(buf[16:]),
		ShardSize:   binary.LittleEndian.Uint32(buf[20:]),
		StripeCount: binary.LittleEndian.Uint64(buf[24:]),
		FileSize:    binary.LittleEndian.Uint64(buf[32:]),
	}
	if version >= VersionV3 {
		h.Algo = Algo(binary.LittleEndian.Uint32(buf[40:]))
		if h.Algo != AlgoNone && h.Algo != AlgoCRC32C {
			return Header{}, fmt.Errorf("unknown checksum algorithm %d", h.Algo)
		}
	}
	if h.K == 0 || h.M == 0 {
		return Header{}, fmt.Errorf("invalid geometry k=%d m=%d", h.K, h.M)
	}
	if h.Index >= h.K+h.M {
		return Header{}, fmt.Errorf("shard index %d outside geometry k+m=%d", h.Index, h.K+h.M)
	}
	if h.ShardSize == 0 && h.StripeCount > 0 {
		return Header{}, fmt.Errorf("zero shard size with %d stripes", h.StripeCount)
	}
	return h, nil
}

// Path returns the conventional file name of shard i in dir.
func Path(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard.%03d", i))
}

// ErrNoChecksum reports a scrub request against a shard format that
// carries no per-block integrity trailer (v2, or v3 with AlgoNone).
var ErrNoChecksum = errors.New("shardfile: shard has no checksum trailers to verify")

// maxCorruptListed caps the per-shard corrupt-stripe list a scrub
// returns, keeping reports bounded on badly damaged files.
const maxCorruptListed = 16

// ScrubResult summarizes one shard file's integrity scan.
type ScrubResult struct {
	Stripes        uint64   // blocks scanned
	Corrupt        uint64   // blocks whose trailer failed verification
	CorruptStripes []uint64 // first maxCorruptListed corrupt stripe indices
}

// Scrub reads every stripe block of a shard file (r must be
// positioned just past the header) and verifies each block's checksum
// trailer. It returns ErrNoChecksum when the header's algorithm
// cannot be verified, and a read error if the file ends before
// StripeCount blocks.
func Scrub(r io.Reader, h Header) (ScrubResult, error) {
	var res ScrubResult
	if h.Algo != AlgoCRC32C {
		return res, ErrNoChecksum
	}
	block := make([]byte, h.BlockSize())
	payload := int(h.ShardSize)
	for s := uint64(0); s < h.StripeCount; s++ {
		if _, err := io.ReadFull(r, block); err != nil {
			return res, fmt.Errorf("stripe %d: %w (truncated shard)", s, err)
		}
		res.Stripes++
		want := binary.LittleEndian.Uint32(block[payload:])
		if gf.CRC32C(block[:payload]) != want {
			res.Corrupt++
			if len(res.CorruptStripes) < maxCorruptListed {
				res.CorruptStripes = append(res.CorruptStripes, s)
			}
		}
	}
	return res, nil
}
