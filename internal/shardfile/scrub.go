package shardfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// ShardStatus classifies one shard slot of a scrubbed directory.
type ShardStatus int

const (
	// ShardOK: header valid, every block trailer verified.
	ShardOK ShardStatus = iota
	// ShardMissing: no file at the slot's conventional path.
	ShardMissing
	// ShardBadHeader: the header failed to parse (bad magic, version,
	// self-CRC, or geometry).
	ShardBadHeader
	// ShardTruncated: the file's size disagrees with its header.
	ShardTruncated
	// ShardReadError: the block scan failed partway (I/O error or an
	// early end despite a plausible size).
	ShardReadError
	// ShardCorrupt: one or more block trailers failed verification.
	ShardCorrupt
	// ShardUnverifiable: the format carries no block trailers (v2, or
	// v3 with AlgoNone) — nothing to check against, but not damage.
	ShardUnverifiable
)

func (s ShardStatus) String() string {
	switch s {
	case ShardOK:
		return "ok"
	case ShardMissing:
		return "missing"
	case ShardBadHeader:
		return "bad-header"
	case ShardTruncated:
		return "truncated"
	case ShardReadError:
		return "read-error"
	case ShardCorrupt:
		return "corrupt"
	case ShardUnverifiable:
		return "unverifiable"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Damaged reports whether the status demands repair: the shard is
// absent or its bytes cannot be trusted. Unverifiable legacy shards
// are not damaged — they carry nothing to check against.
func (s ShardStatus) Damaged() bool {
	switch s {
	case ShardMissing, ShardBadHeader, ShardTruncated, ShardReadError, ShardCorrupt:
		return true
	default:
		return false
	}
}

// ShardReport is one shard slot's scrub outcome.
type ShardReport struct {
	Index  int
	Status ShardStatus
	Header Header      // zero when the header was missing or unreadable
	Result ScrubResult // block-scan tallies (zero when the scan never ran)
	Detail string      // human-readable cause for the non-OK statuses
}

// DirReport is a whole shard directory's scrub outcome: one entry per
// shard slot 0..k+m-1 of the geometry learned from the first parseable
// header.
type DirReport struct {
	Geometry Header // the header the slot count was derived from
	Shards   []ShardReport
}

// Damaged reports whether any shard slot needs repair.
func (r DirReport) Damaged() bool {
	for _, s := range r.Shards {
		if s.Status.Damaged() {
			return true
		}
	}
	return false
}

// Counts tallies the slots by disposition.
func (r DirReport) Counts() (ok, damaged, missing, unverifiable int) {
	for _, s := range r.Shards {
		switch {
		case s.Status == ShardOK:
			ok++
		case s.Status == ShardMissing:
			missing++
		case s.Status == ShardUnverifiable:
			unverifiable++
		default:
			damaged++
		}
	}
	return
}

// ScrubFile scrubs a single shard file: parse and validate the header
// (the v3 self-CRC catches corrupted headers), check the on-disk size
// against the header, then verify every block trailer. The returned
// report's Index is taken from the header when it parses, else -1.
func ScrubFile(path string) ShardReport {
	rep := ShardReport{Index: -1}
	f, err := os.Open(path)
	if err != nil {
		rep.Status = ShardMissing
		rep.Detail = err.Error()
		return rep
	}
	defer f.Close()
	h, err := Parse(f)
	if err != nil {
		rep.Status = ShardBadHeader
		rep.Detail = err.Error()
		return rep
	}
	rep.Header, rep.Index = h, int(h.Index)
	if fi, err := f.Stat(); err == nil && fi.Size() != h.ExpectedFileSize() {
		rep.Status = ShardTruncated
		rep.Detail = fmt.Sprintf("%d bytes on disk, want %d", fi.Size(), h.ExpectedFileSize())
		return rep
	}
	res, err := Scrub(f, h)
	rep.Result = res
	switch {
	case err == ErrNoChecksum:
		rep.Status = ShardUnverifiable
		rep.Detail = fmt.Sprintf("v%d, checksum=%s: no block trailers", h.Version, h.Algo)
	case err != nil:
		rep.Status = ShardReadError
		rep.Detail = err.Error()
	case res.Corrupt > 0:
		rep.Status = ShardCorrupt
		rep.Detail = fmt.Sprintf("%d of %d blocks failed %s (stripes %v)",
			res.Corrupt, res.Stripes, h.Algo, res.CorruptStripes)
	default:
		rep.Status = ShardOK
	}
	return rep
}

// ScrubDir scrubs every shard slot of a shard directory laid out by
// Path. It learns the geometry from the first parseable header, then
// scrubs slots 0..k+m-1, reporting each as ok, missing, damaged
// (bad header / truncated / read error / corrupt), or unverifiable.
// The same walk backs both `dialga-inspect -verify` and the cluster
// repair queue's damage detection, so the two can never disagree on
// what counts as damage.
func ScrubDir(dir string) (DirReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return DirReport{}, err
	}
	// Find one parseable header to learn the geometry, so missing
	// shard slots can be reported by index.
	var rep DirReport
	haveGeom := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "shard.%d", &idx); err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		h, perr := Parse(f)
		f.Close()
		if perr == nil {
			rep.Geometry, haveGeom = h, true
			break
		}
	}
	if !haveGeom {
		return rep, fmt.Errorf("no readable shard headers in %s", dir)
	}
	for i := 0; i < int(rep.Geometry.K+rep.Geometry.M); i++ {
		sr := ScrubFile(Path(dir, i))
		sr.Index = i
		rep.Shards = append(rep.Shards, sr)
	}
	return rep, nil
}
