package isal

import (
	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

// DecomposedProgram models ISA-L-D (§5.1): wide-stripe encoding split
// into sub-stripes of at most Width data blocks. The first group
// encodes parity directly; each subsequent group reloads the parity
// (written with non-temporal stores, so the reload is a PM read) and
// accumulates into it — the "parity reloading" and amplified write
// traffic the paper charges against the decompose strategy (§5.7),
// in exchange for keeping the concurrent stream count low enough to
// re-activate the hardware prefetcher.
type DecomposedProgram struct {
	Layout *workload.Layout
	Cfg    *mem.Config
	Width  int

	groups [][2]int
	stripe int
	group  int
	row    int
}

// NewDecomposedProgram constructs the ISA-L-D access program. A width
// of 0 selects 16, the L2 stream prefetcher's comfortable range.
func NewDecomposedProgram(l *workload.Layout, cfg *mem.Config, width int) *DecomposedProgram {
	if width <= 0 {
		width = 16
	}
	p := &DecomposedProgram{Layout: l, Cfg: cfg, Width: width}
	for lo := 0; lo < l.K; lo += width {
		hi := lo + width
		if hi > l.K {
			hi = l.K
		}
		p.groups = append(p.groups, [2]int{lo, hi})
	}
	return p
}

// Groups returns the number of sub-stripes per stripe.
func (p *DecomposedProgram) Groups() int { return len(p.groups) }

// DataBytes implements engine.Program.
func (p *DecomposedProgram) DataBytes() uint64 { return p.Layout.DataBytes() }

// Next implements engine.Program: one op per (group, row).
func (p *DecomposedProgram) Next(op *engine.Op) bool {
	if p.stripe >= p.Layout.Stripes {
		return false
	}
	g := p.groups[p.group]
	lo, hi := g[0], g[1]
	kg := hi - lo
	rowOff := mem.Addr(p.row * mem.CachelineSize)

	data := p.Layout.Data[p.stripe]
	for j := lo; j < hi; j++ {
		op.Loads = append(op.Loads, data[j]+rowOff)
	}
	parity := p.Layout.Parity[p.stripe]
	if p.group > 0 {
		// Parity reload: the previous group's NT-stored parity comes
		// back from the device.
		for i := 0; i < p.Layout.M; i++ {
			op.Loads = append(op.Loads, parity[i]+rowOff)
		}
	}
	op.ComputeCycles = float64(kg*p.Layout.M) * p.Cfg.VectorsPerLine() * p.Cfg.ComputeCycPerVecParity
	if p.group > 0 {
		// Accumulating into reloaded parity adds one XOR pass.
		op.ComputeCycles += float64(p.Layout.M) * p.Cfg.VectorsPerLine() * p.Cfg.XORCycPerVec
	}
	for i := 0; i < p.Layout.M; i++ {
		op.Stores = append(op.Stores, parity[i]+rowOff)
	}

	p.row++
	if p.row >= p.Layout.LinesPerBlock() {
		p.row = 0
		p.group++
		if p.group >= len(p.groups) {
			p.group = 0
			p.stripe++
		}
	}
	return true
}
