package isal

import (
	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

// KernelParams selects the entry-point variant of the encode kernel,
// mirroring DIALGA's statically generated ISA-L entry points (§4.1.2):
// the coordinator switches among them per stripe and passes the
// prefetch distance as a parameter.
type KernelParams struct {
	// Shuffle applies the static shuffle mapping: encode tasks are
	// reordered at 64 B cacheline granularity so the L2 stream
	// prefetcher never sees sequential runs — the lightweight
	// "hardware prefetcher off" switch (§4.2.2).
	Shuffle bool
	// SWPrefetch enables the branchless pipelined software prefetcher:
	// while processing cacheline task N, task N+PrefetchDistance is
	// prefetched (§4.1.2, Fig. 9).
	SWPrefetch bool
	// PrefetchDistance is d in cacheline tasks. DIALGA's hill climbing
	// starts at d=k.
	PrefetchDistance int
	// BufferFriendly applies the non-uniform distance of §4.3.2: the
	// first cacheline of each XPLine is prefetched FirstLineBoost tasks
	// earlier, the rest RestReduce tasks later.
	BufferFriendly bool
	// FirstLineBoost is the extra distance for XPLine-first lines
	// (paper: initial distance k+4 => boost 4).
	FirstLineBoost int
	// RestReduce is the distance reduction for non-first lines.
	RestReduce int
	// XPLineLoop expands the loop task granularity to one 256 B XPLine
	// per block per iteration (§4.3.3), trading single-thread latency
	// for read-buffer efficiency under pressure.
	XPLineLoop bool
	// PrefetchOverheadCycles models a naive (branching) software
	// prefetch interface; DIALGA's vectorized pointer pre-processing
	// keeps this at zero (§4.2.2).
	PrefetchOverheadCycles float64
}

// DefaultBoost is the paper's k+4 first-line distance expressed as a
// boost over d=k.
const DefaultBoost = 4

// DefaultRestReduce is the distance reduction applied to non-first
// cachelines under buffer-friendly prefetching.
const DefaultRestReduce = 2

// linesPerGroup returns the loop-expansion factor for the XPLine loop:
// the device's media line in cachelines (4 on Optane), capped so one
// group never exceeds a block.
func (p *Program) linesPerGroup() int {
	n := p.Cfg.PMLineSize / mem.CachelineSize
	if n < 1 {
		n = 1
	}
	if r := p.Layout.LinesPerBlock(); n > r {
		n = r
	}
	return n
}

// task is one cacheline load task: row r of block j.
type task struct {
	row int
	j   int
}

// Program generates the table-lookup kernel's access stream over a
// layout. One Op is one loop iteration: a full row (k loads, m stores)
// or, with XPLineLoop, an XPLine group (4k loads, 4m stores).
type Program struct {
	Layout *workload.Layout
	Cfg    *mem.Config
	Params KernelParams
	// OnStripe, if set, is invoked at each stripe boundary and may
	// mutate Params — the hook DIALGA's coordinator uses for
	// per-function-call strategy switching.
	OnStripe func(stripe int, p *KernelParams)
	// LRCLocalGroups, when positive, models LRC(k, m', l) encoding:
	// the layout's M parity blocks are the m' global plus l local
	// parities, and each data line additionally feeds one local XOR
	// (§4.1 "Other Coding Tasks").
	LRCLocalGroups int

	// Iteration state.
	stripe   int
	opIdx    int // op index within the stripe
	taskBase uint64

	// Cached per-stripe structure, rebuilt when mode changes.
	order    []task  // within-stripe load order
	opStart  []int   // first index in order of each op
	opRows   [][]int // distinct rows covered by each op
	modeShuf bool
	modeXP   bool
	built    bool
}

// NewProgram constructs a program over the layout with the given
// initial parameters.
func NewProgram(l *workload.Layout, cfg *mem.Config, params KernelParams) *Program {
	return &Program{Layout: l, Cfg: cfg, Params: params}
}

// DataBytes implements engine.Program.
func (p *Program) DataBytes() uint64 { return p.Layout.DataBytes() }

// rebuild constructs the within-stripe task order and op boundaries for
// the current parameters.
func (p *Program) rebuild() {
	R := p.Layout.LinesPerBlock()
	K := p.Layout.K
	p.order = p.order[:0]
	p.opStart = p.opStart[:0]
	p.opRows = p.opRows[:0]

	if p.Params.XPLineLoop {
		gsz := p.linesPerGroup()
		groups := (R + gsz - 1) / gsz
		perm := identity(groups)
		if p.Params.Shuffle {
			perm = staticShuffle(groups)
		}
		for _, g := range perm {
			lo := g * gsz
			hi := lo + gsz
			if hi > R {
				hi = R
			}
			p.opStart = append(p.opStart, len(p.order))
			rows := make([]int, 0, hi-lo)
			for r := lo; r < hi; r++ {
				rows = append(rows, r)
			}
			p.opRows = append(p.opRows, rows)
			// Block-major within the group: the whole XPLine of block
			// j is consumed before moving to block j+1, so the
			// implicit 256 B load is fully used before eviction.
			for j := 0; j < K; j++ {
				for r := lo; r < hi; r++ {
					p.order = append(p.order, task{row: r, j: j})
				}
			}
		}
	} else {
		perm := identity(R)
		if p.Params.Shuffle {
			perm = staticShuffle(R)
		}
		for _, r := range perm {
			p.opStart = append(p.opStart, len(p.order))
			p.opRows = append(p.opRows, []int{r})
			for j := 0; j < K; j++ {
				p.order = append(p.order, task{row: r, j: j})
			}
		}
	}
	p.modeShuf = p.Params.Shuffle
	p.modeXP = p.Params.XPLineLoop
	p.built = true
}

func identity(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// staticShuffle is the deterministic cacheline-task permutation of the
// shuffle mapping: a stride walk perm[i] = i*J mod n with J coprime to
// n and far from 1, so consecutive entries are never sequential in
// either direction and the stream prefetcher's confidence never builds
// — the "carefully designed" static mapping of §4.2.2.
func staticShuffle(n int) []int {
	if n <= 2 {
		// Too short to shuffle meaningfully; reverse order still
		// avoids ascending runs.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = n - 1 - i
		}
		return perm
	}
	j := n/2 + 1
	for gcd(j, n) != 1 || j == 1 {
		j++
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i * j) % n
	}
	return perm
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// tasksPerStripe returns the number of cacheline load tasks per stripe.
func (p *Program) tasksPerStripe() uint64 {
	return uint64(p.Layout.LinesPerBlock() * p.Layout.K)
}

// loadAddrAt resolves a global task index to its load address,
// returning false past the end of the workload.
func (p *Program) loadAddrAt(idx uint64) (mem.Addr, bool) {
	tps := p.tasksPerStripe()
	s := int(idx / tps)
	if s >= p.Layout.Stripes {
		return 0, false
	}
	t := p.order[idx%tps]
	return p.Layout.Data[s][t.j] + mem.Addr(t.row*mem.CachelineSize), true
}

// Next implements engine.Program.
func (p *Program) Next(op *engine.Op) bool {
	if p.stripe >= p.Layout.Stripes {
		return false
	}
	if p.opIdx == 0 {
		if p.OnStripe != nil {
			p.OnStripe(p.stripe, &p.Params)
		}
		if !p.built || p.modeShuf != p.Params.Shuffle || p.modeXP != p.Params.XPLineLoop {
			p.rebuild()
		}
	}

	start := p.opStart[p.opIdx]
	end := len(p.order)
	if p.opIdx+1 < len(p.opStart) {
		end = p.opStart[p.opIdx+1]
	}
	chunk := p.order[start:end]
	rows := p.opRows[p.opIdx]

	// Software prefetches for the chunk d tasks ahead.
	if p.Params.SWPrefetch && p.Params.PrefetchDistance > 0 {
		d := uint64(p.Params.PrefetchDistance)
		op.PrefetchExtraCycles = p.Params.PrefetchOverheadCycles
		if !p.Params.BufferFriendly {
			for i := range chunk {
				target, ok := p.loadAddrAt(p.taskBase + uint64(i) + d)
				if !ok {
					continue // tail: revert to the standard entry point
				}
				op.SWPrefetches = append(op.SWPrefetches, target)
			}
		} else {
			// Non-uniform distances (§4.3.2): a line that opens an
			// XPLine is prefetched FirstLineBoost tasks earlier (its
			// implicit 256 B load starts early); the remaining lines
			// RestReduce tasks later (they only need the buffer hit).
			// Classifying by *target* keeps coverage exact: every task
			// is prefetched by exactly one predecessor.
			boost := uint64(p.Params.FirstLineBoost)
			if boost == 0 {
				boost = DefaultBoost
			}
			reduce := uint64(p.Params.RestReduce)
			if reduce == 0 {
				reduce = DefaultRestReduce
			}
			for i := range chunk {
				base := p.taskBase + uint64(i)
				if far, ok := p.loadAddrAt(base + d + boost); ok &&
					uint64(far)%uint64(p.Cfg.PMLineSize) == 0 {
					op.SWPrefetches = append(op.SWPrefetches, far)
				}
				nearIdx := base + d
				if nearIdx > reduce {
					nearIdx -= reduce
				}
				if near, ok := p.loadAddrAt(nearIdx); ok &&
					uint64(near)%uint64(p.Cfg.PMLineSize) != 0 {
					op.SWPrefetches = append(op.SWPrefetches, near)
				}
			}
		}
	}

	// Demand loads.
	sAddrs := p.Layout.Data[p.stripe]
	for _, t := range chunk {
		op.Loads = append(op.Loads, sAddrs[t.j]+mem.Addr(t.row*mem.CachelineSize))
	}

	// Compute: k x m table-lookup multiply-accumulates per row (for
	// LRC, k x m' global products plus one local XOR per data line).
	gfParities := p.Layout.M
	if p.LRCLocalGroups > 0 {
		gfParities = p.Layout.M - p.LRCLocalGroups
	}
	op.ComputeCycles = float64(len(rows)*p.Layout.K*gfParities) *
		p.Cfg.VectorsPerLine() * p.Cfg.ComputeCycPerVecParity
	if p.LRCLocalGroups > 0 {
		op.ComputeCycles += float64(len(rows)*p.Layout.K) *
			p.Cfg.VectorsPerLine() * p.Cfg.XORCycPerVec
	}

	// Non-temporal parity stores, one line per parity per row.
	pAddrs := p.Layout.Parity[p.stripe]
	for i := 0; i < p.Layout.M; i++ {
		for _, r := range rows {
			op.Stores = append(op.Stores, pAddrs[i]+mem.Addr(r*mem.CachelineSize))
		}
	}

	p.taskBase += uint64(len(chunk))
	p.opIdx++
	if p.opIdx >= len(p.opStart) {
		p.opIdx = 0
		p.stripe++
	}
	return true
}
