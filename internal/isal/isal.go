// Package isal provides the table-lookup erasure codec with the
// interface shape of Intel ISA-L (ec_init_tables / ec_encode_data), plus
// the simulator entry-point programs that model ISA-L's memory-access
// pattern on the simulated testbed.
//
// The real ISA-L dispatches among assembly entry points per instruction
// set; DIALGA statically extends those entry points with prefetching
// variants (§4.1.2). Here the same idea appears twice:
//
//   - the byte-level codec (this file) encodes real data, one read per
//     data block, exactly like ISA-L's GF table-lookup kernel;
//   - Program (program.go) generates the kernel's memory-access stream
//     for the engine, parameterized by the same entry-point variants
//     (plain, shuffled, software-prefetch, XPLine-expanded).
package isal

import (
	"fmt"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
	"dialga/internal/rs"
)

// Tables is the expanded coefficient table set, the analogue of the
// gf_tables buffer ISA-L builds in ec_init_tables: one VPSHUFB-style
// nibble-table pair per (data, parity) coefficient.
type Tables struct {
	K, M int
	code *rs.Code
	nib  [][]gf.NibbleTables // [m][k]
}

// InitTables builds encode tables for RS(k+m, k) with the default
// Cauchy generator.
func InitTables(k, m int) (*Tables, error) {
	code, err := rs.New(k, m)
	if err != nil {
		return nil, err
	}
	return tablesFor(code, code.ParityMatrix())
}

func tablesFor(code *rs.Code, coeff *ecmatrix.Matrix) (*Tables, error) {
	t := &Tables{K: coeff.Cols, M: coeff.Rows, code: code}
	t.nib = make([][]gf.NibbleTables, t.M)
	for i := 0; i < t.M; i++ {
		t.nib[i] = make([]gf.NibbleTables, t.K)
		for j := 0; j < t.K; j++ {
			t.nib[i][j] = gf.MakeNibbleTables(coeff.At(i, j))
		}
	}
	return t, nil
}

// EncodeData computes parity from data using the nibble-table kernel:
// each data block is read exactly once; per 64 B of data, each parity
// accumulator receives one table-lookup multiply-XOR — ISA-L's memory
// pattern.
func (t *Tables) EncodeData(data, parity [][]byte) error {
	if len(data) != t.K || len(parity) != t.M {
		return fmt.Errorf("isal: want %d data and %d parity blocks, got %d and %d",
			t.K, t.M, len(data), len(parity))
	}
	size := len(data[0])
	for _, b := range data {
		if len(b) != size {
			return fmt.Errorf("isal: ragged data blocks")
		}
	}
	for _, p := range parity {
		if len(p) != size {
			return fmt.Errorf("isal: parity size mismatch")
		}
		for i := range p {
			p[i] = 0
		}
	}
	for j, src := range data {
		for i := range parity {
			nt := &t.nib[i][j]
			dst := parity[i]
			for x, b := range src {
				dst[x] ^= nt.Lo[b&0xf] ^ nt.Hi[b>>4]
			}
		}
	}
	return nil
}

// DecodeTables builds tables that reconstruct the given missing stripe
// indices from the listed survivors (exactly k of them). Decoding then
// runs through EncodeData with the survivors as "data" — the identical
// memory pattern the paper notes in §4.1 ("Other Coding Tasks").
func (t *Tables) DecodeTables(survivors, missing []int) (*Tables, error) {
	if len(survivors) != t.K {
		return nil, fmt.Errorf("isal: need exactly k=%d survivors", t.K)
	}
	if len(missing) == 0 || len(missing) > t.M {
		return nil, fmt.Errorf("isal: %d erasures outside [1,%d]", len(missing), t.M)
	}
	inv, err := t.code.DecodeMatrix(survivors)
	if err != nil {
		return nil, err
	}
	gen := t.code.Generator()
	dec := ecmatrix.New(len(missing), t.K)
	for r, idx := range missing {
		if idx < t.K {
			copy(dec.Row(r), inv.Row(idx))
			continue
		}
		// Missing parity: its row over the survivors is
		// parityRow * inv.
		prow := gen.Row(idx)
		for j := 0; j < t.K; j++ {
			var acc byte
			for c := 0; c < t.K; c++ {
				acc ^= gf.Mul(prow[c], inv.At(c, j))
			}
			dec.Set(r, j, acc)
		}
	}
	return tablesFor(t.code, dec)
}

// Code exposes the underlying RS code (for verification in tests and
// examples).
func (t *Tables) Code() *rs.Code { return t.code }
