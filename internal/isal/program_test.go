package isal

import (
	"testing"

	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func testLayout(t *testing.T, k, m, block, totalKB int) *workload.Layout {
	t.Helper()
	l, err := workload.New(workload.Config{
		K: k, M: m, BlockSize: block,
		TotalDataBytes: totalKB << 10,
		Placement:      workload.Scattered,
		Seed:           7,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// drain consumes the whole program, returning op-level aggregates.
func drain(t *testing.T, p engine.Program) (loads, stores, prefetches int, compute float64) {
	t.Helper()
	var op engine.Op
	for {
		op.Reset()
		if !p.Next(&op) {
			return
		}
		loads += len(op.Loads)
		stores += len(op.Stores)
		prefetches += len(op.SWPrefetches)
		compute += op.ComputeCycles
	}
}

func TestProgramLoadStoreCounts(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 8, 4, 1024, 256)
	p := NewProgram(l, &cfg, KernelParams{})
	loads, stores, prefetches, compute := drain(t, p)
	wantLoads := l.Stripes * 8 * 16 // k blocks x 16 lines
	if loads != wantLoads {
		t.Fatalf("loads = %d, want %d", loads, wantLoads)
	}
	wantStores := l.Stripes * 4 * 16
	if stores != wantStores {
		t.Fatalf("stores = %d, want %d", stores, wantStores)
	}
	if prefetches != 0 {
		t.Fatal("plain kernel issued prefetches")
	}
	if compute <= 0 {
		t.Fatal("no compute charged")
	}
	if p.DataBytes() != l.DataBytes() {
		t.Fatal("DataBytes mismatch")
	}
}

func TestProgramLoadsCoverEveryLineOnce(t *testing.T) {
	cfg := mem.DefaultConfig()
	for _, params := range []KernelParams{
		{},
		{Shuffle: true},
		{XPLineLoop: true},
		{Shuffle: true, XPLineLoop: true},
	} {
		l := testLayout(t, 4, 2, 1024, 64)
		p := NewProgram(l, &cfg, params)
		seen := map[mem.Addr]int{}
		var op engine.Op
		for {
			op.Reset()
			if !p.Next(&op) {
				break
			}
			for _, a := range op.Loads {
				seen[a.LineAddr()]++
			}
		}
		want := l.Stripes * 4 * 16
		if len(seen) != want {
			t.Fatalf("params %+v: %d distinct lines, want %d", params, len(seen), want)
		}
		for a, n := range seen {
			if n != 1 {
				t.Fatalf("params %+v: line %x loaded %d times", params, uint64(a), n)
			}
		}
	}
}

func TestShuffleAvoidsSequentialRuns(t *testing.T) {
	for _, n := range []int{4, 8, 16, 64, 80} {
		perm := staticShuffle(n)
		seen := make([]bool, n)
		for i, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: not a permutation", n)
			}
			seen[v] = true
			if i > 0 && v == perm[i-1]+1 {
				t.Fatalf("n=%d: sequential pair at %d", n, i)
			}
		}
	}
}

func TestSWPrefetchTargetsLeadLoads(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 4, 2, 1024, 64)
	d := 8
	p := NewProgram(l, &cfg, KernelParams{SWPrefetch: true, PrefetchDistance: d})
	var loadSeq, pfSeq []mem.Addr
	var op engine.Op
	for {
		op.Reset()
		if !p.Next(&op) {
			break
		}
		loadSeq = append(loadSeq, op.Loads...)
		pfSeq = append(pfSeq, op.SWPrefetches...)
	}
	if len(pfSeq) == 0 {
		t.Fatal("no prefetches")
	}
	// Prefetch i must equal load i+d (pipelined, distance d), except
	// for the tail where prefetching reverts to the standard kernel.
	if len(pfSeq) != len(loadSeq)-d {
		t.Fatalf("prefetch count %d, want %d", len(pfSeq), len(loadSeq)-d)
	}
	for i, a := range pfSeq {
		if a != loadSeq[i+d] {
			t.Fatalf("prefetch %d targets %x, want load[%d]=%x", i, uint64(a), i+d, uint64(loadSeq[i+d]))
		}
	}
}

func TestBufferFriendlyCoverage(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 4, 2, 1024, 64)
	p := NewProgram(l, &cfg, KernelParams{
		SWPrefetch: true, PrefetchDistance: 8,
		BufferFriendly: true, FirstLineBoost: 4, RestReduce: 2,
	})
	loads := map[mem.Addr]bool{}
	pf := map[mem.Addr]int{}
	var op engine.Op
	for {
		op.Reset()
		if !p.Next(&op) {
			break
		}
		for _, a := range op.Loads {
			loads[a] = true
		}
		for _, a := range op.SWPrefetches {
			pf[a]++
		}
	}
	// Every prefetched address is a real load target and no address is
	// prefetched twice (exact coverage of the classify-by-target
	// scheme).
	for a, n := range pf {
		if !loads[a] {
			t.Fatalf("prefetched non-load address %x", uint64(a))
		}
		if n != 1 {
			t.Fatalf("address %x prefetched %d times", uint64(a), n)
		}
	}
	// Coverage is near-complete (tail and boundary windows excepted).
	if len(pf) < len(loads)*9/10 {
		t.Fatalf("buffer-friendly prefetch covers only %d of %d loads", len(pf), len(loads))
	}
}

func TestXPLineLoopGroupsBlockLines(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 4, 2, 1024, 64)
	p := NewProgram(l, &cfg, KernelParams{XPLineLoop: true})
	var op engine.Op
	op.Reset()
	if !p.Next(&op) {
		t.Fatal("empty program")
	}
	// One op covers 4 rows x k blocks, block-major: the first four
	// loads are consecutive lines of one block (a full XPLine).
	if len(op.Loads) != 4*4 {
		t.Fatalf("XPLine op has %d loads, want 16", len(op.Loads))
	}
	for i := 1; i < 4; i++ {
		if op.Loads[i] != op.Loads[i-1]+mem.CachelineSize {
			t.Fatal("XPLine group is not block-contiguous")
		}
	}
	if op.Loads[0].PageOffset()%mem.XPLineSize != 0 {
		t.Fatal("XPLine group not aligned to an XPLine")
	}
}

func TestOnStripeHookSwitchesParams(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 4, 2, 1024, 64)
	p := NewProgram(l, &cfg, KernelParams{})
	var calls int
	p.OnStripe = func(stripe int, kp *KernelParams) {
		calls++
		kp.Shuffle = stripe%2 == 1 // flip per stripe
	}
	var op engine.Op
	total := 0
	for {
		op.Reset()
		if !p.Next(&op) {
			break
		}
		total += len(op.Loads)
	}
	if calls != l.Stripes {
		t.Fatalf("OnStripe called %d times, want %d", calls, l.Stripes)
	}
	if total != l.Stripes*4*16 {
		t.Fatal("switching params mid-run lost loads")
	}
}

func TestLRCComputeAndStores(t *testing.T) {
	cfg := mem.DefaultConfig()
	// LRC(4, 2 global, 2 local): layout M = 4.
	l := testLayout(t, 4, 4, 1024, 64)
	plain := NewProgram(l, &cfg, KernelParams{})
	lrc := NewProgram(l, &cfg, KernelParams{})
	lrc.LRCLocalGroups = 2
	_, plainStores, _, plainCompute := drain(t, plain)
	_, lrcStores, _, lrcCompute := drain(t, lrc)
	if plainStores != lrcStores {
		t.Fatal("LRC must store the same m+l parity lines")
	}
	if lrcCompute >= plainCompute {
		t.Fatal("LRC local XOR parities must be cheaper than GF parities")
	}
}

func TestDecomposedProgram(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 48, 4, 1024, 96)
	p := NewDecomposedProgram(l, &cfg, 16)
	if p.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", p.Groups())
	}
	loads, stores, _, _ := drain(t, p)
	lines := l.LinesPerBlock()
	// Loads: all data lines once + parity reloads for groups 2 and 3.
	wantLoads := l.Stripes * (48*lines + 2*4*lines)
	if loads != wantLoads {
		t.Fatalf("loads = %d, want %d (with parity reloading)", loads, wantLoads)
	}
	// Stores: m lines per row per group.
	wantStores := l.Stripes * 3 * 4 * lines
	if stores != wantStores {
		t.Fatalf("stores = %d, want %d (amplified parity writes)", stores, wantStores)
	}
}

func TestDecomposedDefaultWidth(t *testing.T) {
	cfg := mem.DefaultConfig()
	l := testLayout(t, 20, 4, 1024, 80)
	p := NewDecomposedProgram(l, &cfg, 0)
	if p.Width != 16 || p.Groups() != 2 {
		t.Fatalf("default width=%d groups=%d", p.Width, p.Groups())
	}
}
