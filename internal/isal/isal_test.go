package isal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dialga/internal/rs"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

func TestEncodeDataMatchesRS(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []struct{ k, m int }{{2, 2}, {8, 4}, {24, 4}} {
		tab, err := InitTables(p.k, p.m)
		if err != nil {
			t.Fatal(err)
		}
		rsc, err := rs.New(p.k, p.m)
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 1024)
		want, _ := rsc.EncodeAppend(data)
		got := randBlocks(r, p.m, 1024) // must be overwritten
		if err := tab.EncodeData(data, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("k=%d m=%d parity %d differs from rs reference", p.k, p.m, i)
			}
		}
	}
}

func TestEncodeDataValidation(t *testing.T) {
	tab, _ := InitTables(4, 2)
	r := rand.New(rand.NewSource(2))
	data := randBlocks(r, 4, 64)
	if err := tab.EncodeData(data[:3], randBlocks(r, 2, 64)); err == nil {
		t.Fatal("short data accepted")
	}
	if err := tab.EncodeData(data, randBlocks(r, 1, 64)); err == nil {
		t.Fatal("short parity accepted")
	}
	ragged := randBlocks(r, 4, 64)
	ragged[1] = ragged[1][:32]
	if err := tab.EncodeData(ragged, randBlocks(r, 2, 64)); err == nil {
		t.Fatal("ragged data accepted")
	}
	if err := tab.EncodeData(data, randBlocks(r, 2, 32)); err == nil {
		t.Fatal("parity size mismatch accepted")
	}
}

func TestDecodeTables(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tab, err := InitTables(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(r, 6, 512)
	parity := randBlocks(r, 3, 512)
	if err := tab.EncodeData(data, parity); err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)

	// Lose data blocks 1, 4 and parity 7.
	missing := []int{1, 4, 7}
	var survivors []int
	for i := 0; i < 9 && len(survivors) < 6; i++ {
		if i != 1 && i != 4 && i != 7 {
			survivors = append(survivors, i)
		}
	}
	dec, err := tab.DecodeTables(survivors, missing)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([][]byte, 6)
	for i, s := range survivors {
		srcs[i] = full[s]
	}
	out := randBlocks(r, 3, 512)
	if err := dec.EncodeData(srcs, out); err != nil {
		t.Fatal(err)
	}
	for i, idx := range missing {
		if !bytes.Equal(out[i], full[idx]) {
			t.Fatalf("decoded block %d (stripe %d) wrong", i, idx)
		}
	}
}

func TestDecodeTablesValidation(t *testing.T) {
	tab, _ := InitTables(4, 2)
	if _, err := tab.DecodeTables([]int{0, 1, 2}, []int{3}); err == nil {
		t.Fatal("short survivor list accepted")
	}
	if _, err := tab.DecodeTables([]int{0, 1, 2, 3}, nil); err == nil {
		t.Fatal("empty missing list accepted")
	}
	if _, err := tab.DecodeTables([]int{0, 1, 2, 3}, []int{4, 5, 1}); err == nil {
		t.Fatal("too many erasures accepted")
	}
}

// Property: decode-tables reconstruction roundtrips for random erasures.
func TestQuickDecodeRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(8)
		m := 1 + r.Intn(4)
		tab, err := InitTables(k, m)
		if err != nil {
			return false
		}
		size := 8 * (1 + r.Intn(32))
		data := randBlocks(r, k, size)
		parity := randBlocks(r, m, size)
		if err := tab.EncodeData(data, parity); err != nil {
			return false
		}
		full := append(append([][]byte{}, data...), parity...)
		nMiss := 1 + r.Intn(m)
		perm := r.Perm(k + m)
		missing := perm[:nMiss]
		var survivors []int
		for _, i := range perm[nMiss:] {
			survivors = append(survivors, i)
		}
		survivors = survivors[:k]
		dec, err := tab.DecodeTables(survivors, missing)
		if err != nil {
			return false
		}
		srcs := make([][]byte, k)
		for i, s := range survivors {
			srcs[i] = full[s]
		}
		out := randBlocks(r, nMiss, size)
		if err := dec.EncodeData(srcs, out); err != nil {
			return false
		}
		for i, idx := range missing {
			if !bytes.Equal(out[i], full[idx]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
