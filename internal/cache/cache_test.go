package cache

import (
	"testing"

	"dialga/internal/mem"
)

func TestMissThenHit(t *testing.T) {
	c := New("L1", 32<<10, 8)
	addr := mem.Addr(0x1000)
	hit, _ := c.Lookup(addr, 0)
	if hit {
		t.Fatal("cold cache should miss")
	}
	c.Insert(addr, 100, false)
	hit, ready := c.Lookup(addr, 200)
	if !hit || ready != 200 {
		t.Fatalf("expected hit ready-now, got hit=%v ready=%v", hit, ready)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSameLineDifferentOffsets(t *testing.T) {
	c := New("L1", 32<<10, 8)
	c.Insert(mem.Addr(0x1000), 0, false)
	hit, _ := c.Lookup(mem.Addr(0x1030), 10) // same 64B line
	if !hit {
		t.Fatal("offset within line should hit")
	}
	hit, _ = c.Lookup(mem.Addr(0x1040), 10) // next line
	if hit {
		t.Fatal("next line should miss")
	}
}

func TestInFlightPrefetchStall(t *testing.T) {
	c := New("L2", 1<<20, 16)
	addr := mem.Addr(0x2000)
	c.Insert(addr, 500, true) // prefetch arriving at t=500
	hit, ready := c.Lookup(addr, 100)
	if !hit || ready != 500 {
		t.Fatalf("in-flight prefetch: hit=%v ready=%v, want hit at 500", hit, ready)
	}
	if c.Stats().LatePrefetchHits != 1 {
		t.Fatal("late prefetch hit not counted")
	}
	// After arrival, ready is now.
	hit, ready = c.Lookup(addr, 600)
	if !hit || ready != 600 {
		t.Fatalf("arrived line: hit=%v ready=%v", hit, ready)
	}
}

func TestUselessPrefetchEviction(t *testing.T) {
	// Tiny direct-mapped-ish cache: 1 set equivalent via size = ways*64.
	c := New("L1", 2*64, 2) // 1 set, 2 ways
	c.Insert(mem.Addr(0), 0, true)
	c.Insert(mem.Addr(64), 0, true)
	if ev := c.Insert(mem.Addr(128), 0, false); !ev {
		t.Fatal("evicting an unused prefetched line must report useless")
	}
	if c.Stats().UselessPrefetch != 1 {
		t.Fatal("useless prefetch not counted")
	}
	// A demand-hit prefetched line is no longer useless when evicted.
	c.InvalidateAll()
	c.Insert(mem.Addr(0), 0, true)
	c.Lookup(mem.Addr(0), 1) // use it
	c.Insert(mem.Addr(64), 0, false)
	if ev := c.Insert(mem.Addr(128), 0, false); ev {
		t.Fatal("used prefetched line wrongly reported useless")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", 2*64, 2) // 1 set, 2 ways
	c.Insert(mem.Addr(0), 0, false)
	c.Insert(mem.Addr(64), 0, false)
	c.Lookup(mem.Addr(0), 1) // refresh line 0
	c.Insert(mem.Addr(128), 0, false)
	if !c.Contains(mem.Addr(0)) {
		t.Fatal("recently used line evicted")
	}
	if c.Contains(mem.Addr(64)) {
		t.Fatal("LRU line not evicted")
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := New("t", 2*64, 2)
	c.Insert(mem.Addr(0), 0, true)
	before := c.Stats()
	if !c.Contains(mem.Addr(0)) {
		t.Fatal("Contains false for present line")
	}
	if c.Contains(mem.Addr(64)) {
		t.Fatal("Contains true for absent line")
	}
	if c.Stats() != before {
		t.Fatal("Contains changed statistics")
	}
	// The line must still count as prefetched-unused on eviction.
	c.Insert(mem.Addr(64), 0, false)
	if ev := c.Insert(mem.Addr(128), 0, false); !ev {
		t.Fatal("Contains cleared the prefetch mark")
	}
}

func TestRefillExistingLine(t *testing.T) {
	c := New("t", 2*64, 2)
	c.Insert(mem.Addr(0), 900, true)
	// Demand refill of the same line updates arrival and clears the mark.
	c.Insert(mem.Addr(0), 50, false)
	hit, ready := c.Lookup(mem.Addr(0), 60)
	if !hit || ready != 60 {
		t.Fatalf("refilled line: hit=%v ready=%v", hit, ready)
	}
	c.Insert(mem.Addr(64), 0, false)
	if ev := c.Insert(mem.Addr(128), 0, false); ev {
		t.Fatal("demand-refilled line still marked prefetched")
	}
}

func TestInvalidateAllAndResetStats(t *testing.T) {
	c := New("t", 32<<10, 8)
	c.Insert(mem.Addr(0), 0, false)
	c.Lookup(mem.Addr(0), 1)
	c.InvalidateAll()
	if c.Contains(mem.Addr(0)) {
		t.Fatal("InvalidateAll left contents")
	}
	if c.Stats().Hits != 1 {
		t.Fatal("InvalidateAll should preserve stats")
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestNonPowerOfTwoGeometry(t *testing.T) {
	// 11-way LLC-like geometry: sets round down to a power of two.
	c := New("LLC", 24*(1<<20)+768<<10, 11)
	if c.Name() != "LLC" {
		t.Fatal("name lost")
	}
	// Must behave as a cache: insert/lookup roundtrip over many sets.
	for i := 0; i < 10000; i++ {
		c.Insert(mem.Addr(i*64), 0, false)
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if h, _ := c.Lookup(mem.Addr(i*64), 1); h {
			hits++
		}
	}
	if hits != 10000 {
		t.Fatalf("LLC-sized cache lost lines under capacity: %d/10000 hits", hits)
	}
}
