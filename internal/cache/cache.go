// Package cache implements a set-associative, LRU, write-allocate cache
// model with prefetch-fill support and the statistics the DIALGA
// coordinator consumes (hits, misses, useless-prefetch evictions).
//
// Lines carry an arrival timestamp so that a demand access to a line
// whose prefetch is still in flight stalls only for the remaining time —
// this is how late prefetches deliver partial benefit, the effect behind
// the paper's small-block observations (Obs. 4).
package cache

import (
	"fmt"

	"dialga/internal/mem"
)

type line struct {
	tag      uint64
	lru      uint64
	arrival  float64 // ns timestamp when data is present
	valid    bool
	prefetch bool // filled by a prefetch and not yet demand-accessed
}

// Stats aggregates cache event counts.
type Stats struct {
	Hits             uint64
	Misses           uint64
	PrefetchFills    uint64
	UselessPrefetch  uint64 // prefetched lines evicted before any demand hit
	LatePrefetchHits uint64 // demand hits on in-flight prefetched lines
}

// Cache is one level of a set-associative cache. It is not safe for
// concurrent use; the engine serializes accesses.
type Cache struct {
	name    string
	sets    int
	ways    int
	setMask uint64
	lines   []line
	tick    uint64
	stats   Stats
}

// New constructs a cache level of the given total size and associativity.
// Size must be a multiple of ways*64 and the set count must be a power
// of two (true for all real L1/L2 geometries; the LLC's 11-way 24.75 MB
// geometry is mapped onto the nearest power-of-two set count).
func New(name string, size, ways int) *Cache {
	if size <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d ways=%d", size, ways))
	}
	sets := size / (ways * mem.CachelineSize)
	if sets == 0 {
		sets = 1
	}
	// Round down to a power of two so set indexing is a mask.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*ways),
	}
}

// Name returns the level's label ("L1", "L2", "LLC").
func (c *Cache) Name() string { return c.name }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without invalidating contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) set(tag uint64) []line {
	s := int(tag & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup performs a demand access for the cacheline containing addr at
// time now. It returns whether the line was present and, if so, the
// time at which its data is available (>= now only for in-flight
// prefetches). A hit refreshes LRU state and clears the prefetch mark.
func (c *Cache) Lookup(addr mem.Addr, now float64) (hit bool, readyAt float64) {
	tag := addr.Line()
	set := c.set(tag)
	c.tick++
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			if l.prefetch {
				l.prefetch = false
				if l.arrival > now {
					c.stats.LatePrefetchHits++
				}
			}
			c.stats.Hits++
			if l.arrival > now {
				return true, l.arrival
			}
			return true, now
		}
	}
	c.stats.Misses++
	return false, now
}

// Contains reports whether the line is present (or in flight) without
// touching LRU or statistics. Used by prefetchers to filter requests.
func (c *Cache) Contains(addr mem.Addr) bool {
	tag := addr.Line()
	set := c.set(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the cacheline containing addr, with data arriving at
// time arrival. prefetched marks the fill as speculative. It returns
// true if the fill evicted a prefetched line that was never used
// (the PMU 0xf2 "useless hardware prefetch" analogue).
func (c *Cache) Insert(addr mem.Addr, arrival float64, prefetched bool) (evictedUseless bool) {
	tag := addr.Line()
	set := c.set(tag)
	c.tick++
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			// Refill of an existing (possibly in-flight) line.
			l.arrival = arrival
			if !prefetched {
				l.prefetch = false
			}
			l.lru = c.tick
			return false
		}
		if !l.valid {
			victim = i
			oldest = 0
		} else if l.lru < oldest {
			victim = i
			oldest = l.lru
		}
	}
	v := &set[victim]
	evictedUseless = v.valid && v.prefetch
	if evictedUseless {
		c.stats.UselessPrefetch++
	}
	*v = line{tag: tag, lru: c.tick, arrival: arrival, valid: true, prefetch: prefetched}
	if prefetched {
		c.stats.PrefetchFills++
	}
	return evictedUseless
}

// InvalidateAll clears the cache contents (statistics are preserved).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}
