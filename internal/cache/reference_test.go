package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dialga/internal/mem"
)

// refCache is a naive reference implementation of a set-associative LRU
// cache: per-set slices ordered by recency.
type refCache struct {
	sets int
	ways int
	data []([]uint64) // per set, MRU first
}

func newRef(sets, ways int) *refCache {
	return &refCache{sets: sets, ways: ways, data: make([][]uint64, sets)}
}

func (r *refCache) setOf(tag uint64) int { return int(tag % uint64(r.sets)) }

func (r *refCache) lookup(tag uint64) bool {
	s := r.setOf(tag)
	for i, t := range r.data[s] {
		if t == tag {
			// Move to MRU.
			copy(r.data[s][1:i+1], r.data[s][:i])
			r.data[s][0] = tag
			return true
		}
	}
	return false
}

func (r *refCache) insert(tag uint64) {
	s := r.setOf(tag)
	for i, t := range r.data[s] {
		if t == tag {
			copy(r.data[s][1:i+1], r.data[s][:i])
			r.data[s][0] = tag
			return
		}
	}
	if len(r.data[s]) >= r.ways {
		r.data[s] = r.data[s][:r.ways-1]
	}
	r.data[s] = append([]uint64{tag}, r.data[s]...)
}

// Property: the cache's hit/miss sequence matches the reference model
// under a demand-only access pattern (lookup; insert on miss).
func TestQuickMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const ways = 4
		const sets = 8
		c := New("t", sets*ways*mem.CachelineSize, ways)
		ref := newRef(sets, ways)
		for i := 0; i < 3000; i++ {
			line := uint64(r.Intn(sets * ways * 3))
			addr := mem.Addr(line * mem.CachelineSize)
			hit, _ := c.Lookup(addr, float64(i))
			refHit := ref.lookup(line)
			if hit != refHit {
				t.Logf("seed %d step %d line %d: cache=%v ref=%v", seed, i, line, hit, refHit)
				return false
			}
			if !hit {
				c.Insert(addr, float64(i), false)
				ref.insert(line)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals lookups, and prefetch fills never
// exceed inserts.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New("t", 16*mem.CachelineSize, 2)
		lookups := 0
		inserts := uint64(0)
		prefetchIns := uint64(0)
		for i := 0; i < 1000; i++ {
			addr := mem.Addr(r.Intn(64) * mem.CachelineSize)
			switch r.Intn(3) {
			case 0:
				c.Lookup(addr, float64(i))
				lookups++
			case 1:
				c.Insert(addr, float64(i), false)
				inserts++
			case 2:
				if !c.Contains(addr) {
					c.Insert(addr, float64(i), true)
					prefetchIns++
				}
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != uint64(lookups) {
			return false
		}
		if st.PrefetchFills > prefetchIns {
			return false
		}
		return st.UselessPrefetch <= st.PrefetchFills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
