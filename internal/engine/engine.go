// Package engine is the deterministic execution engine of the memory-
// hierarchy simulator. It advances N logical threads through their
// memory-access programs in global timestamp order, so threads contend
// for the shared LLC and memory device exactly as the paper's
// multi-threaded encode benchmarks do.
//
// A program yields Ops — one per encode "row" (or packet operation for
// XOR codecs). Each op carries optional software prefetches, a batch of
// demand loads (overlapped up to the configured memory-level
// parallelism), a compute cost, and non-temporal stores. The engine
// charges issue costs, walks the L1/L2/LLC hierarchy, trains the
// per-core stream prefetcher on L2 demand accesses, and resolves misses
// against the device model with queueing.
package engine

import (
	"fmt"

	"dialga/internal/cache"
	"dialga/internal/hwpf"
	"dialga/internal/mem"
	"dialga/internal/pmem"
)

// Op is one unit of work yielded by a Program. Slices are owned by the
// program and may be reused between calls.
type Op struct {
	// SWPrefetches are software prefetch targets issued before the
	// loads (prefetcht0 semantics: fill all levels).
	SWPrefetches []mem.Addr
	// Loads are demand loads required before Compute. They overlap up
	// to Config.MLP.
	Loads []mem.Addr
	// ComputeCycles is charged after all loads complete.
	ComputeCycles float64
	// Stores are non-temporal stores issued after compute; they bypass
	// the cache hierarchy and post to the device's write path.
	Stores []mem.Addr
	// PrefetchExtraCycles adds per-prefetch scheduling overhead beyond
	// the branchless baseline (models a naive branching prefetch
	// interface; DIALGA's operator keeps this at zero).
	PrefetchExtraCycles float64
}

// Reset clears the op for reuse.
func (o *Op) Reset() {
	o.SWPrefetches = o.SWPrefetches[:0]
	o.Loads = o.Loads[:0]
	o.Stores = o.Stores[:0]
	o.ComputeCycles = 0
	o.PrefetchExtraCycles = 0
}

// Program generates the op stream of one simulated thread.
type Program interface {
	// Next fills op (after the engine resets it) and reports whether an
	// op was produced; false means the program is complete.
	Next(op *Op) bool
	// DataBytes returns the number of application data bytes the
	// program encodes/decodes in total (the throughput numerator).
	DataBytes() uint64
}

// TelemetryAware programs receive a telemetry handle before the run
// starts; DIALGA's coordinator uses it to sample counters.
type TelemetryAware interface {
	Attach(*Telemetry)
}

// Telemetry exposes a thread's live counters to an adaptive program.
type Telemetry struct {
	t *Thread
	e *Engine
}

// NowNS returns the thread's current simulated time.
func (tl *Telemetry) NowNS() float64 { return tl.t.now }

// Loads returns the number of demand loads issued so far.
func (tl *Telemetry) Loads() uint64 { return tl.t.stats.Loads }

// LoadLatencySumNS returns the cumulative demand-load latency; paired
// with Loads it yields windowed average latency.
func (tl *Telemetry) LoadLatencySumNS() float64 { return tl.t.stats.LoadLatSumNS }

// UselessHWPrefetches returns the thread's L2 useless-prefetch count
// (the PMU 0xf2 analogue).
func (tl *Telemetry) UselessHWPrefetches() uint64 { return tl.t.l2.Stats().UselessPrefetch }

// HWPrefetchesIssued returns the stream prefetcher's issue count.
func (tl *Telemetry) HWPrefetchesIssued() uint64 { return tl.t.pf.Stats().Issued }

// ThreadCount returns the number of threads in the run (the
// concurrency signal of the coordinator's I/O pattern collection).
func (tl *Telemetry) ThreadCount() int { return len(tl.e.threads) }

// ReadBufferCapacityLines returns the PM read buffer capacity in
// XPLines (0 on DRAM), for DIALGA's Eq. 1.
func (tl *Telemetry) ReadBufferCapacityLines() int { return tl.e.dev.BufferCapacityLines() }

// SetHWPrefetchEnabled toggles this thread's stream prefetcher issue
// gate. The real DIALGA cannot do this cheaply via MSR and instead uses
// the shuffle mapping; the simulator exposes both mechanisms so their
// equivalence is testable.
func (tl *Telemetry) SetHWPrefetchEnabled(on bool) { tl.t.pf.Enabled = on }

// ThreadStats are per-thread accumulated counters.
type ThreadStats struct {
	Loads        uint64
	Stores       uint64
	SWPrefetches uint64
	LoadLatSumNS float64
	LoadStallNS  float64 // time the thread waited on load completion
	FillStallNS  float64 // time issue stalled on a full line-fill buffer
	StoreStallNS float64 // time the thread waited on write backpressure
	ComputeNS    float64
	L3Misses     uint64
	L3StallNS    float64 // latency beyond LLC of demand loads
}

// Thread is one simulated hardware thread with private L1/L2 and stream
// prefetcher, sharing the LLC and device.
type Thread struct {
	id    int
	now   float64
	done  bool
	prog  Program
	l1    *cache.Cache
	l2    *cache.Cache
	pf    *hwpf.Prefetcher
	stats ThreadStats
	op    Op
	// fills are the line-fill-buffer slots (completion times) for
	// outstanding demand fills; sq are the L2 superqueue slots shared
	// by every memory fill the core initiates (demand misses, software
	// prefetches, hardware prefetches). Full structures bound a
	// thread's memory bandwidth at slots x 64 B per average fill
	// latency — which is what makes buffer-friendly prefetching pay
	// off: buffer-hit fills release their slot much sooner than media
	// fills.
	fills []float64
	sq    []float64
}

// acquireSlot returns the earliest-free slot of a pool and the
// (possibly delayed) time the new fill can start.
func acquireSlot(pool []float64, now float64) (float64, *float64) {
	best := 0
	for i := 1; i < len(pool); i++ {
		if pool[i] < pool[best] {
			best = i
		}
	}
	if pool[best] > now {
		now = pool[best]
	}
	return now, &pool[best]
}

// tryAcquireSlot returns a free slot or nil (used by hardware
// prefetches, which are dropped rather than stalled when the
// superqueue is full).
func tryAcquireSlot(pool []float64, now float64) *float64 {
	for i := range pool {
		if pool[i] <= now {
			return &pool[i]
		}
	}
	return nil
}

// Stats returns the thread's counters.
func (t *Thread) Stats() ThreadStats { return t.stats }

// Engine runs a set of programs over a shared memory system.
type Engine struct {
	cfg     mem.Config
	dev     *pmem.Device
	llc     *cache.Cache
	threads []*Thread
}

// New constructs an engine with the given configuration and device kind
// (the data source the paper varies in Fig. 3).
func New(cfg mem.Config, kind mem.DeviceKind) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg: cfg,
		dev: pmem.New(kind, &cfg),
		llc: cache.New("LLC", cfg.LLCSize, cfg.LLCWays),
	}
	return e, nil
}

// Config returns the engine configuration.
func (e *Engine) Config() *mem.Config { return &e.cfg }

// Device returns the shared memory device.
func (e *Engine) Device() *pmem.Device { return e.dev }

// AddThread registers a program as a new simulated thread and returns
// the thread handle.
func (e *Engine) AddThread(p Program) *Thread {
	t := &Thread{
		id:    len(e.threads),
		prog:  p,
		l1:    cache.New("L1", e.cfg.L1Size, e.cfg.L1Ways),
		l2:    cache.New("L2", e.cfg.L2Size, e.cfg.L2Ways),
		pf:    hwpf.New(&e.cfg),
		fills: make([]float64, e.cfg.MLP),
		sq:    make([]float64, e.cfg.SQDepth),
	}
	e.threads = append(e.threads, t)
	if ta, ok := p.(TelemetryAware); ok {
		ta.Attach(&Telemetry{t: t, e: e})
	}
	return t
}

// Result summarizes a run.
type Result struct {
	ElapsedNS      float64
	DataBytes      uint64
	ThroughputGBps float64

	Threads []ThreadStats

	// Aggregated cache and prefetcher statistics across threads.
	L1, L2 cache.Stats
	LLC    cache.Stats
	PF     hwpf.Stats
	Dev    pmem.Stats

	// Per-layer read traffic for Fig. 19. EncodeReadBytes is the
	// application-level traffic (64 B per demand load), CtrlReadBytes
	// the memory-controller traffic, MediaReadBytes the PM media
	// traffic.
	EncodeReadBytes uint64
	CtrlReadBytes   uint64
	MediaReadBytes  uint64
}

// AvgLoadLatencyNS returns the mean demand-load latency of the run.
func (r *Result) AvgLoadLatencyNS() float64 {
	var lat float64
	var n uint64
	for _, t := range r.Threads {
		lat += t.LoadLatSumNS
		n += t.Loads
	}
	if n == 0 {
		return 0
	}
	return lat / float64(n)
}

// MissCyclesPerLoad returns demand LLC-miss latency cycles normalized
// by loads, at the configured frequency.
func (r *Result) MissCyclesPerLoad(cfg *mem.Config) float64 {
	var stall float64
	var n uint64
	for _, t := range r.Threads {
		stall += t.L3StallNS
		n += t.Loads
	}
	if n == 0 {
		return 0
	}
	return cfg.NSToCycles(stall) / float64(n)
}

// StallCyclesPerLoad returns the thread-visible memory stall cycles per
// demand load: time the core actually waited on load completion or on
// full fill structures. Unlike MissCyclesPerLoad this includes the
// residual waits of prefetched streams, making it the analogue of the
// paper's Fig. 17 "cache miss cycles normalized by loads".
func (r *Result) StallCyclesPerLoad(cfg *mem.Config) float64 {
	var stall float64
	var n uint64
	for _, t := range r.Threads {
		stall += t.LoadStallNS + t.FillStallNS
		n += t.Loads
	}
	if n == 0 {
		return 0
	}
	return cfg.NSToCycles(stall) / float64(n)
}

// UselessPrefetchRatio returns useless L2 prefetches / prefetch fills.
func (r *Result) UselessPrefetchRatio() float64 {
	if r.L2.PrefetchFills == 0 {
		return 0
	}
	return float64(r.L2.UselessPrefetch) / float64(r.L2.PrefetchFills)
}

// L2PrefetchRatio returns HW prefetches issued / L2 demand accesses.
func (r *Result) L2PrefetchRatio() float64 {
	demand := r.L2.Hits + r.L2.Misses
	if demand == 0 {
		return 0
	}
	return float64(r.PF.Issued) / float64(demand)
}

// Run executes all thread programs to completion and returns the
// aggregate result. The engine is single-use: construct a new one per
// experiment.
func (e *Engine) Run() (*Result, error) {
	if len(e.threads) == 0 {
		return nil, fmt.Errorf("engine: no threads")
	}
	running := len(e.threads)
	for running > 0 {
		// Advance the thread with the smallest clock (deterministic
		// tie-break on id by scan order).
		var t *Thread
		for _, c := range e.threads {
			if c.done {
				continue
			}
			if t == nil || c.now < t.now {
				t = c
			}
		}
		t.op.Reset()
		if !t.prog.Next(&t.op) {
			t.done = true
			running--
			continue
		}
		e.exec(t, &t.op)
	}

	res := &Result{}
	var finish float64
	for _, t := range e.threads {
		if t.now > finish {
			finish = t.now
		}
		res.Threads = append(res.Threads, t.stats)
		res.DataBytes += t.prog.DataBytes()
		addCacheStats(&res.L1, t.l1.Stats())
		addCacheStats(&res.L2, t.l2.Stats())
		addPFStats(&res.PF, t.pf.Stats())
		res.EncodeReadBytes += t.stats.Loads * mem.CachelineSize
	}
	// The paper's benchmark ends with a memory fence: drain the device.
	finish = e.dev.Drain(finish)
	res.ElapsedNS = finish
	res.LLC = e.llc.Stats()
	res.Dev = e.dev.Stats()
	res.CtrlReadBytes = res.Dev.CtrlReadBytes
	res.MediaReadBytes = res.Dev.MediaReadBytes
	if finish > 0 {
		res.ThroughputGBps = float64(res.DataBytes) / finish
	}
	return res, nil
}

func addCacheStats(dst *cache.Stats, s cache.Stats) {
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.PrefetchFills += s.PrefetchFills
	dst.UselessPrefetch += s.UselessPrefetch
	dst.LatePrefetchHits += s.LatePrefetchHits
}

func addPFStats(dst *hwpf.Stats, s hwpf.Stats) {
	dst.Accesses += s.Accesses
	dst.Issued += s.Issued
	dst.StreamAllocs += s.StreamAllocs
	dst.StreamEvicts += s.StreamEvicts
	dst.ConfidenceHit += s.ConfidenceHit
}

// exec advances thread t through one op.
func (e *Engine) exec(t *Thread, op *Op) {
	cfg := &e.cfg

	// 1. Software prefetches.
	for _, a := range op.SWPrefetches {
		t.now += cfg.CyclesToNS(cfg.PrefetchIssueCyc + op.PrefetchExtraCycles)
		t.stats.SWPrefetches++
		e.swPrefetch(t, a.LineAddr(), t.now)
	}

	// 2. Demand loads. Issue proceeds without blocking on data (the
	// out-of-order window), limited by line-fill-buffer availability;
	// the op's compute waits for all its loads.
	opReady := t.now
	for _, a := range op.Loads {
		t.now += cfg.CyclesToNS(cfg.LoadIssueCyc)
		ready := e.demandLoad(t, a.LineAddr(), t.now)
		t.stats.Loads++
		t.stats.LoadLatSumNS += ready - t.now
		if ready > opReady {
			opReady = ready
		}
	}
	if opReady > t.now {
		t.stats.LoadStallNS += opReady - t.now
		t.now = opReady
	}

	// 3. Compute.
	if op.ComputeCycles > 0 {
		d := cfg.CyclesToNS(op.ComputeCycles)
		t.stats.ComputeNS += d
		t.now += d
	}

	// 4. Non-temporal stores.
	for _, a := range op.Stores {
		t.now += cfg.CyclesToNS(cfg.StoreIssueCyc)
		t.stats.Stores++
		proceed := e.dev.Write(a.LineAddr(), t.now)
		if proceed > t.now {
			t.stats.StoreStallNS += proceed - t.now
			t.now = proceed
		}
	}
}

// demandLoad walks the hierarchy for a demand load issued at time
// `issue` and returns when the data is available.
func (e *Engine) demandLoad(t *Thread, addr mem.Addr, issue float64) float64 {
	cfg := &e.cfg
	if hit, r := t.l1.Lookup(addr, issue); hit {
		ready := issue + cfg.CyclesToNS(cfg.L1LatCycles)
		if r > ready {
			ready = r
		}
		return ready
	}
	// The access reaches L2: train the stream prefetcher.
	e.hwPrefetch(t, addr, issue, true)
	if hit, r := t.l2.Lookup(addr, issue); hit {
		ready := issue + cfg.CyclesToNS(cfg.L2LatCycles)
		if r > ready {
			ready = r
		}
		t.l1.Insert(addr, ready, false)
		return ready
	}
	if hit, r := e.llc.Lookup(addr, issue); hit {
		ready := issue + cfg.CyclesToNS(cfg.LLCLatCycles)
		if r > ready {
			ready = r
		}
		t.l2.Insert(addr, ready, false)
		t.l1.Insert(addr, ready, false)
		return ready
	}
	// Memory-level demand fill: occupies a line-fill buffer and a
	// superqueue entry until data arrives.
	start, lfb := acquireSlot(t.fills, issue)
	start2, sqs := acquireSlot(t.sq, start)
	if start2 > issue {
		t.stats.FillStallNS += start2 - issue
	}
	ready := e.dev.Read(addr, start2)
	*lfb = ready
	*sqs = ready
	t.stats.L3Misses++
	t.stats.L3StallNS += ready - issue
	e.llc.Insert(addr, ready, false)
	t.l2.Insert(addr, ready, false)
	t.l1.Insert(addr, ready, false)
	return ready
}

// hwPrefetch lets the stream prefetcher observe an L2 access and
// services whatever it asks for. HW prefetches fill L2 and LLC.
func (e *Engine) hwPrefetch(t *Thread, addr mem.Addr, now float64, demand bool) {
	var reqs []mem.Addr
	if demand {
		reqs = t.pf.OnAccess(addr)
	} else {
		reqs = t.pf.OnPrefetch(addr)
	}
	for _, req := range reqs {
		if t.l2.Contains(req) {
			continue
		}
		var arrival float64
		if hit, r := e.llc.Lookup(req, now); hit {
			arrival = now + e.cfg.CyclesToNS(e.cfg.LLCLatCycles)
			if r > arrival {
				arrival = r
			}
		} else {
			// Hardware prefetches issue from the L2's own queues and
			// throttle behind demands: when the core's superqueue is
			// saturated they are dropped, but they do not occupy core
			// slots themselves. No occupancy-based throttling beyond
			// this: the paper's Obs. 5 depends on the prefetcher
			// remaining aggressive under memory pressure.
			if tryAcquireSlot(t.sq, now) == nil {
				continue
			}
			arrival = e.dev.Read(req, now)
			e.llc.Insert(req, arrival, true)
		}
		t.l2.Insert(req, arrival, true)
	}
}

// swPrefetch services a software prefetch (prefetcht0: fills L1+L2+LLC).
// It trains the hardware prefetcher — the "training effect" the paper
// observes raising DIALGA's controller-level read traffic (Fig. 19a).
func (e *Engine) swPrefetch(t *Thread, addr mem.Addr, now float64) {
	if t.l1.Contains(addr) {
		return
	}
	e.hwPrefetch(t, addr, now, false)
	if t.l2.Contains(addr) {
		return // already present or in flight
	}
	var arrival float64
	if hit, r := e.llc.Lookup(addr, now); hit {
		arrival = now + e.cfg.CyclesToNS(e.cfg.LLCLatCycles)
		if r > arrival {
			arrival = r
		}
	} else {
		// DIALGA's pipelined software prefetch targets the L2
		// (prefetcht1 semantics): it occupies a superqueue entry —
		// not a line-fill buffer — until the data arrives, and a full
		// superqueue stalls the issuing thread.
		start, slot := acquireSlot(t.sq, now)
		if start > t.now {
			t.stats.FillStallNS += start - t.now
			t.now = start
		}
		arrival = e.dev.Read(addr, start)
		*slot = arrival
		e.llc.Insert(addr, arrival, true)
	}
	t.l2.Insert(addr, arrival, true)
}
