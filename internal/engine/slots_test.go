package engine

import (
	"testing"

	"dialga/internal/mem"
)

// swOnlyProgram issues software prefetches far ahead and then loads:
// throughput is bounded by superqueue slots x 64B / fill latency.
type swOnlyProgram struct {
	base  mem.Addr
	lines int
	dist  int
	pos   int
}

func (p *swOnlyProgram) DataBytes() uint64 { return uint64(p.lines) * mem.CachelineSize }

func (p *swOnlyProgram) Next(op *Op) bool {
	if p.pos >= p.lines {
		return false
	}
	n := 8
	if p.pos+n > p.lines {
		n = p.lines - p.pos
	}
	for i := 0; i < n; i++ {
		if tgt := p.pos + i + p.dist; tgt < p.lines {
			op.SWPrefetches = append(op.SWPrefetches, p.base+mem.Addr(tgt*mem.CachelineSize))
		}
		op.Loads = append(op.Loads, p.base+mem.Addr((p.pos+i)*mem.CachelineSize))
	}
	p.pos += n
	return true
}

func TestSuperqueueBoundsPrefetchBandwidth(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	run := func(sq int) float64 {
		c := cfg
		c.SQDepth = sq
		e, err := New(c, mem.PM)
		if err != nil {
			t.Fatal(err)
		}
		e.AddThread(&swOnlyProgram{base: 0, lines: 65536, dist: 256})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputGBps
	}
	small := run(8)
	big := run(32)
	if big <= small {
		t.Fatalf("deeper superqueue (%v GB/s) not faster than shallow (%v GB/s)", big, small)
	}
	// The shallow queue's bandwidth must respect the slot bound:
	// 8 slots x 64B per (at least) the buffer-hit latency.
	bound := 8 * 64.0 / cfg.PMBufHitNS
	if small > bound*1.15 {
		t.Fatalf("throughput %v exceeds the physical slot bound %v", small, bound)
	}
}

func TestLFBBoundsDemandBandwidth(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	run := func(mlp int) float64 {
		c := cfg
		c.MLP = mlp
		e, err := New(c, mem.PM)
		if err != nil {
			t.Fatal(err)
		}
		e.AddThread(&seqProgram{base: 0, lines: 32768, perOp: 16})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputGBps
	}
	if run(16) <= run(4) {
		t.Fatal("more line-fill buffers did not raise demand bandwidth")
	}
}

func TestFillStallAccounted(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	cfg.MLP = 2
	cfg.SQDepth = 2
	e, _ := New(cfg, mem.PM)
	e.AddThread(&seqProgram{base: 0, lines: 4096, perOp: 16})
	res, _ := e.Run()
	var stall float64
	for _, th := range res.Threads {
		stall += th.FillStallNS
	}
	if stall <= 0 {
		t.Fatal("tiny fill structures must cause fill stalls")
	}
}

// A demand load to a line whose software prefetch is still in flight
// must wait only the remaining time, not a full memory latency.
func TestInFlightPrefetchPartialHiding(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	// Distance 1 op (~8 lines): prefetches are late but in flight.
	late := &swOnlyProgram{base: 0, lines: 16384, dist: 8}
	e1, _ := New(cfg, mem.PM)
	e1.AddThread(late)
	resLate, _ := e1.Run()

	none := &seqProgram{base: 0, lines: 16384, perOp: 8}
	e2, _ := New(cfg, mem.PM)
	e2.AddThread(none)
	resNone, _ := e2.Run()

	if resLate.ThroughputGBps <= resNone.ThroughputGBps {
		t.Fatalf("late prefetch (%v) should still beat no prefetch (%v)",
			resLate.ThroughputGBps, resNone.ThroughputGBps)
	}
}

// A branching (naive) prefetch interface costs extra cycles per
// prefetch and must slow the run (the §4.2.2 operator claim).
func TestPrefetchOverheadCycles(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	run := func(extra float64) float64 {
		e, _ := New(cfg, mem.PM)
		e.AddThread(&overheadProgram{swOnlyProgram{base: 0, lines: 16384, dist: 64}, extra})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedNS
	}
	branchless := run(0)
	branching := run(8)
	if branching <= branchless {
		t.Fatalf("branching prefetch interface (%v ns) not slower than branchless (%v ns)",
			branching, branchless)
	}
}

type overheadProgram struct {
	swOnlyProgram
	extra float64
}

func (p *overheadProgram) Next(op *Op) bool {
	if !p.swOnlyProgram.Next(op) {
		return false
	}
	op.PrefetchExtraCycles = p.extra
	return true
}

// Hardware prefetches are dropped, not stalled, when the superqueue is
// busy: a prefetch-heavy phase cannot deadlock or stall the core.
func TestHWPrefetchDropsUnderPressure(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.SQDepth = 2
	e, _ := New(cfg, mem.PM)
	e.AddThread(&seqProgram{base: 0, lines: 16384, perOp: 16})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PF.Issued == 0 {
		t.Fatal("no prefetches issued at all")
	}
	// Fewer prefetch fills than issues = some were dropped.
	if res.L2.PrefetchFills >= res.PF.Issued {
		t.Fatal("expected some hardware prefetches to be dropped with a tiny superqueue")
	}
}
