package engine

import (
	"testing"

	"dialga/internal/mem"
)

// seqProgram loads `lines` consecutive cachelines starting at base,
// `perOp` per op, with optional compute and stores.
type seqProgram struct {
	base    mem.Addr
	lines   int
	perOp   int
	compute float64
	store   bool
	pos     int
	tel     *Telemetry
}

func (p *seqProgram) DataBytes() uint64 { return uint64(p.lines) * mem.CachelineSize }

func (p *seqProgram) Attach(t *Telemetry) { p.tel = t }

func (p *seqProgram) Next(op *Op) bool {
	if p.pos >= p.lines {
		return false
	}
	n := p.perOp
	if p.pos+n > p.lines {
		n = p.lines - p.pos
	}
	for i := 0; i < n; i++ {
		a := p.base + mem.Addr((p.pos+i)*mem.CachelineSize)
		op.Loads = append(op.Loads, a)
		if p.store {
			op.Stores = append(op.Stores, a+(1<<30))
		}
	}
	op.ComputeCycles = p.compute
	p.pos += n
	return true
}

func run(t *testing.T, cfg mem.Config, kind mem.DeviceKind, progs ...Program) *Result {
	t.Helper()
	e, err := New(cfg, kind)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		e.AddThread(p)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNoThreads(t *testing.T) {
	e, _ := New(mem.DefaultConfig(), mem.DRAM)
	if _, err := e.Run(); err == nil {
		t.Fatal("empty engine ran")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.Channels = 0
	if _, err := New(cfg, mem.PM); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSequentialDRAMFasterThanPM(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	mk := func() *seqProgram { return &seqProgram{base: 0, lines: 4096, perOp: 8} }
	dram := run(t, cfg, mem.DRAM, mk())
	pm := run(t, cfg, mem.PM, mk())
	if dram.ThroughputGBps <= pm.ThroughputGBps {
		t.Fatalf("DRAM (%v GB/s) not faster than PM (%v GB/s)", dram.ThroughputGBps, pm.ThroughputGBps)
	}
}

func TestHWPrefetchImprovesSequential(t *testing.T) {
	for _, kind := range []mem.DeviceKind{mem.DRAM, mem.PM} {
		cfg := mem.DefaultConfig()
		cfg.HWPrefetchEnabled = false
		off := run(t, cfg, kind, &seqProgram{base: 0, lines: 8192, perOp: 8})
		cfg.HWPrefetchEnabled = true
		on := run(t, cfg, kind, &seqProgram{base: 0, lines: 8192, perOp: 8})
		if on.ThroughputGBps <= off.ThroughputGBps {
			t.Fatalf("%v: prefetch on (%v) not faster than off (%v)",
				kind, on.ThroughputGBps, off.ThroughputGBps)
		}
		if on.PF.Issued == 0 {
			t.Fatal("no prefetches issued on sequential stream")
		}
	}
}

func TestCacheHitsOnRepeatedAccess(t *testing.T) {
	cfg := mem.DefaultConfig()
	// Two passes over a small (L1-resident) region.
	p := &seqProgram{base: 0, lines: 64, perOp: 8}
	e, _ := New(cfg, mem.PM)
	e.AddThread(p)
	res1, _ := e.Run()
	miss1 := res1.L1.Misses

	q1 := &seqProgram{base: 0, lines: 64, perOp: 8}
	q2 := &seqProgram{base: 0, lines: 64, perOp: 8}
	e2, _ := New(cfg, mem.PM)
	th := e2.AddThread(&chain{a: q1, b: q2})
	res2, _ := e2.Run()
	_ = th
	if res2.L1.Misses >= 2*miss1 {
		t.Fatalf("second pass did not hit cache: %d misses vs %d first-pass", res2.L1.Misses, miss1)
	}
}

type chain struct {
	a, b Program
}

func (c *chain) DataBytes() uint64 { return c.a.DataBytes() + c.b.DataBytes() }
func (c *chain) Next(op *Op) bool {
	if c.a.Next(op) {
		return true
	}
	return c.b.Next(op)
}

func TestMultiThreadContention(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	single := run(t, cfg, mem.PM, &seqProgram{base: 0, lines: 8192, perOp: 8})

	var progs []Program
	for i := 0; i < 16; i++ {
		progs = append(progs, &seqProgram{base: mem.Addr(uint64(i) << 34), lines: 8192, perOp: 8})
	}
	many := run(t, cfg, mem.PM, progs...)
	// Aggregate throughput grows but per-thread latency rises under
	// contention.
	if many.ThroughputGBps <= single.ThroughputGBps {
		t.Fatalf("16 threads (%v GB/s) not faster than 1 (%v GB/s)",
			many.ThroughputGBps, single.ThroughputGBps)
	}
	if many.AvgLoadLatencyNS() <= single.AvgLoadLatencyNS() {
		t.Fatalf("contention did not raise load latency: %v vs %v",
			many.AvgLoadLatencyNS(), single.AvgLoadLatencyNS())
	}
	if many.ThroughputGBps > 16*single.ThroughputGBps {
		t.Fatal("scaling beyond linear is impossible")
	}
}

func TestSWPrefetchHidesLatency(t *testing.T) {
	cfg := mem.DefaultConfig()
	cfg.HWPrefetchEnabled = false
	plain := run(t, cfg, mem.PM, &seqProgram{base: 0, lines: 8192, perOp: 8})
	pf := run(t, cfg, mem.PM, &swPrefProgram{seqProgram{base: 0, lines: 8192, perOp: 8}, 32})
	if pf.ThroughputGBps <= plain.ThroughputGBps {
		t.Fatalf("software prefetch (%v) not faster than plain (%v)",
			pf.ThroughputGBps, plain.ThroughputGBps)
	}
	var sw uint64
	for _, th := range pf.Threads {
		sw += th.SWPrefetches
	}
	if sw == 0 {
		t.Fatal("no software prefetches recorded")
	}
}

type swPrefProgram struct {
	seqProgram
	dist int
}

func (p *swPrefProgram) Next(op *Op) bool {
	start := p.pos
	if !p.seqProgram.Next(op) {
		return false
	}
	for i := 0; i < len(op.Loads); i++ {
		tgt := start + i + p.dist
		if tgt < p.lines {
			op.SWPrefetches = append(op.SWPrefetches, p.base+mem.Addr(tgt*mem.CachelineSize))
		}
	}
	return true
}

func TestComputeScalesWithFrequency(t *testing.T) {
	mk := func() *seqProgram { return &seqProgram{base: 0, lines: 2048, perOp: 8, compute: 500} }
	slow := mem.DefaultConfig()
	slow.CPUFreqGHz = 1.0
	fast := mem.DefaultConfig()
	fast.CPUFreqGHz = 3.3
	rs := run(t, slow, mem.DRAM, mk())
	rf := run(t, fast, mem.DRAM, mk())
	if rf.ElapsedNS >= rs.ElapsedNS {
		t.Fatal("higher frequency did not shorten a compute-heavy run")
	}
}

func TestStoresProduceWriteTraffic(t *testing.T) {
	cfg := mem.DefaultConfig()
	res := run(t, cfg, mem.PM, &seqProgram{base: 0, lines: 1024, perOp: 8, store: true})
	if res.Dev.CtrlWriteBytes != 1024*mem.CachelineSize {
		t.Fatalf("ctrl write bytes = %d", res.Dev.CtrlWriteBytes)
	}
	if res.Dev.MediaWriteBytes == 0 {
		t.Fatal("no media writes")
	}
}

func TestTelemetryAttachAndCounters(t *testing.T) {
	cfg := mem.DefaultConfig()
	p := &seqProgram{base: 0, lines: 512, perOp: 8}
	e, _ := New(cfg, mem.PM)
	e.AddThread(p)
	if p.tel == nil {
		t.Fatal("telemetry not attached")
	}
	if p.tel.ThreadCount() != 1 {
		t.Fatal("thread count wrong")
	}
	if p.tel.ReadBufferCapacityLines() != cfg.PMReadBufBytes/mem.XPLineSize {
		t.Fatal("buffer capacity wrong")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if p.tel.Loads() != 512 {
		t.Fatalf("telemetry loads = %d", p.tel.Loads())
	}
	if p.tel.LoadLatencySumNS() <= 0 {
		t.Fatal("no latency recorded")
	}
	if p.tel.NowNS() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestTelemetryHWPrefetchToggle(t *testing.T) {
	cfg := mem.DefaultConfig()
	p := &seqProgram{base: 0, lines: 4096, perOp: 8}
	e, _ := New(cfg, mem.PM)
	e.AddThread(p)
	p.tel.SetHWPrefetchEnabled(false)
	res, _ := e.Run()
	if res.PF.Issued != 0 {
		t.Fatal("telemetry toggle did not disable the prefetcher")
	}
}

func TestResultMetrics(t *testing.T) {
	cfg := mem.DefaultConfig()
	res := run(t, cfg, mem.PM, &seqProgram{base: 0, lines: 4096, perOp: 8})
	if res.DataBytes != 4096*mem.CachelineSize {
		t.Fatal("DataBytes wrong")
	}
	if res.EncodeReadBytes != res.DataBytes {
		t.Fatal("encode-layer traffic should equal one load per line")
	}
	if res.CtrlReadBytes == 0 || res.MediaReadBytes < res.CtrlReadBytes {
		t.Fatalf("layer traffic inconsistent: ctrl=%d media=%d", res.CtrlReadBytes, res.MediaReadBytes)
	}
	if res.MissCyclesPerLoad(&cfg) <= 0 {
		t.Fatal("no miss cycles on a streaming run")
	}
	if res.ThroughputGBps <= 0 || res.ElapsedNS <= 0 {
		t.Fatal("throughput/elapsed not computed")
	}
}

func TestSequence(t *testing.T) {
	cfg := mem.DefaultConfig()
	a := &seqProgram{base: 0, lines: 256, perOp: 8}
	b := &seqProgram{base: 1 << 30, lines: 128, perOp: 8}
	seq := NewSequence(a, b)
	if seq.DataBytes() != (256+128)*mem.CachelineSize {
		t.Fatal("Sequence DataBytes wrong")
	}
	e, _ := New(cfg, mem.PM)
	e.AddThread(seq)
	if a.tel == nil || b.tel == nil {
		t.Fatal("Sequence did not propagate telemetry")
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var loads uint64
	for _, th := range res.Threads {
		loads += th.Loads
	}
	if loads != 384 {
		t.Fatalf("sequence ran %d loads, want 384", loads)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Program {
		var ps []Program
		for i := 0; i < 4; i++ {
			ps = append(ps, &seqProgram{base: mem.Addr(uint64(i) << 34), lines: 2048, perOp: 8})
		}
		return ps
	}
	cfg := mem.DefaultConfig()
	a := run(t, cfg, mem.PM, mk()...)
	b := run(t, cfg, mem.PM, mk()...)
	if a.ElapsedNS != b.ElapsedNS || a.Dev != b.Dev {
		t.Fatal("engine is not deterministic")
	}
}
