package engine

// Sequence chains programs back to back on one thread: the workload
// shape (block size, stripe width) changes at each boundary, as in
// production systems whose object sizes vary (the paper's §3.2
// motivation, citing the Twitter cache study). Telemetry is propagated
// to every telemetry-aware child, so adaptive programs re-tune when
// their segment starts.
type Sequence struct {
	Programs []Program
	idx      int
}

// NewSequence chains the given programs.
func NewSequence(progs ...Program) *Sequence {
	return &Sequence{Programs: progs}
}

// Next implements Program.
func (s *Sequence) Next(op *Op) bool {
	for s.idx < len(s.Programs) {
		if s.Programs[s.idx].Next(op) {
			return true
		}
		s.idx++
	}
	return false
}

// DataBytes implements Program.
func (s *Sequence) DataBytes() uint64 {
	var n uint64
	for _, p := range s.Programs {
		n += p.DataBytes()
	}
	return n
}

// Attach implements TelemetryAware.
func (s *Sequence) Attach(t *Telemetry) {
	for _, p := range s.Programs {
		if ta, ok := p.(TelemetryAware); ok {
			ta.Attach(t)
		}
	}
}
