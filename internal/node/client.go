package node

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"dialga/internal/shardfile"
)

// Stat is the JSON shape of /v1/stat: the parsed shard header.
type Stat struct {
	Version     uint32 `json:"version"`
	K           uint32 `json:"k"`
	M           uint32 `json:"m"`
	Index       uint32 `json:"index"`
	ShardSize   uint32 `json:"shard_size"`
	StripeCount uint64 `json:"stripe_count"`
	FileSize    uint64 `json:"file_size"`
	Algo        string `json:"algo"`
}

func statFromHeader(h shardfile.Header) Stat {
	return Stat{
		Version: h.Version, K: h.K, M: h.M, Index: h.Index,
		ShardSize: h.ShardSize, StripeCount: h.StripeCount,
		FileSize: h.FileSize, Algo: h.Algo.String(),
	}
}

// ScrubStatus is the JSON shape of /v1/scrub: one shard's server-side
// integrity verdict.
type ScrubStatus struct {
	Index   int    `json:"index"`
	Status  string `json:"status"`
	Damaged bool   `json:"damaged"`
	Stripes uint64 `json:"stripes"`
	Corrupt uint64 `json:"corrupt"`
	Detail  string `json:"detail,omitempty"`
}

// NetError wraps a transport-level failure (connection refused, reset,
// timeout) as transient: the remote node may be back for the next
// stripe, so shardio's retry-with-backoff and per-stripe demotion
// apply instead of permanently killing the shard.
type NetError struct{ Err error }

func (e *NetError) Error() string { return "node: " + e.Err.Error() }

// Transient marks the failure as momentary (the shardio convention).
func (e *NetError) Transient() bool { return true }

func (e *NetError) Unwrap() error { return e.Err }

// StatusError reports a non-2xx response from a peer. 404 unwraps to
// ErrNotFound; 429 (admission throttled) and 5xx are transient.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("node: remote returned %d: %s", e.Code, strings.TrimSpace(e.Msg))
}

// Transient reports whether a retry could plausibly succeed.
func (e *StatusError) Transient() bool {
	return e.Code == http.StatusTooManyRequests || e.Code >= 500
}

// Is makes a 404 StatusError match ErrNotFound.
func (e *StatusError) Is(target error) bool {
	return target == ErrNotFound && e.Code == http.StatusNotFound
}

// Transient reports whether err advertises itself as momentary via the
// Transient() bool convention (NetError, throttled/5xx StatusError,
// fault-injected errors). The cluster layer keys retry-vs-give-up
// decisions for shard uploads off this.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Client talks the shard API to one node. The zero value is unusable;
// build one with NewClient. Safe for concurrent use.
type Client struct {
	base  string // "http://host:port"
	hc    *http.Client
	class string
}

// NewClient returns a client for the node at addr ("host:port" or a
// full http URL), sending foreground-class requests through
// http.DefaultClient.
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient, class: ClassForeground}
}

// WithClass returns a copy of the client tagging every request with
// the given traffic class (ClassForeground, ClassRepair).
func (c *Client) WithClass(class string) *Client {
	d := *c
	d.class = class
	return &d
}

// WithHTTPClient returns a copy of the client using hc for transport —
// the hook for timeouts, connection pools, and fault.Transport chaos.
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	d := *c
	d.hc = hc
	return &d
}

// Addr returns the client's base URL.
func (c *Client) Addr() string { return c.base }

func (c *Client) shardURL(kind, object string, idx int) string {
	return fmt.Sprintf("%s/v1/%s/%s/%d", c.base, kind, url.PathEscape(object), idx)
}

// do runs one request, mapping transport failures to transient
// NetErrors and non-2xx responses to StatusErrors. On success the
// caller owns resp.Body.
func (c *Client) do(ctx context.Context, method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ClassHeader, c.class)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &NetError{Err: err}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, &StatusError{Code: resp.StatusCode, Msg: string(msg)}
	}
	return resp, nil
}

// PutShard uploads exact shardfile bytes to the node's slot for
// (object, idx).
func (c *Client) PutShard(ctx context.Context, object string, idx int, body io.Reader) error {
	resp, err := c.do(ctx, http.MethodPut, c.shardURL("shard", object, idx), body)
	if err != nil {
		return err
	}
	return drainClose(resp.Body)
}

// GetShard fetches raw shardfile bytes (header included). The caller
// must Close the body.
func (c *Client) GetShard(ctx context.Context, object string, idx int) (io.ReadCloser, error) {
	resp, err := c.do(ctx, http.MethodGet, c.shardURL("shard", object, idx), nil)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// OpenShard fetches a shard and parses its header, returning a body
// positioned at the first block with every read error wrapped as
// transient — the reader the streaming decoder's hedged reads,
// retries, and breakers drive directly. The caller must Close it.
func (c *Client) OpenShard(ctx context.Context, object string, idx int) (shardfile.Header, io.ReadCloser, error) {
	return c.OpenShardAt(ctx, object, idx, 0, -1)
}

// OpenShardAt is OpenShard over a block window: the body holds count
// whole blocks starting at block index `block` (count < 0: through the
// last block). The parsed header still describes the full shard. A
// (0, -1) window is wire-identical to OpenShard.
func (c *Client) OpenShardAt(ctx context.Context, object string, idx int, block, count int64) (shardfile.Header, io.ReadCloser, error) {
	u := c.shardURL("shard", object, idx)
	if block != 0 || count >= 0 {
		u = fmt.Sprintf("%s?block=%d&count=%d", u, block, count)
	}
	resp, err := c.do(ctx, http.MethodGet, u, nil)
	if err != nil {
		return shardfile.Header{}, nil, err
	}
	body := resp.Body
	h, err := shardfile.Parse(body)
	if err != nil {
		body.Close()
		return shardfile.Header{}, nil, fmt.Errorf("node: shard %s/%d from %s: %w", object, idx, c.base, err)
	}
	return h, &transientBody{rc: body}, nil
}

// StatShard fetches a shard's parsed header.
func (c *Client) StatShard(ctx context.Context, object string, idx int) (Stat, error) {
	return getJSON[Stat](ctx, c, c.shardURL("stat", object, idx))
}

// ScrubShard asks the node to verify one shard server-side.
func (c *Client) ScrubShard(ctx context.Context, object string, idx int) (ScrubStatus, error) {
	return getJSON[ScrubStatus](ctx, c, c.shardURL("scrub", object, idx))
}

// DeleteShard drops a shard (idempotent on the server).
func (c *Client) DeleteShard(ctx context.Context, object string, idx int) error {
	resp, err := c.do(ctx, http.MethodDelete, c.shardURL("shard", object, idx), nil)
	if err != nil {
		return err
	}
	return drainClose(resp.Body)
}

// Objects lists the object names the node stores shards for.
func (c *Client) Objects(ctx context.Context) ([]string, error) {
	return getJSON[[]string](ctx, c, c.base+"/v1/objects")
}

func getJSON[T any](ctx context.Context, c *Client, url string) (T, error) {
	var v T
	resp, err := c.do(ctx, http.MethodGet, url, nil)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, &NetError{Err: err}
	}
	return v, nil
}

func drainClose(body io.ReadCloser) error {
	io.Copy(io.Discard, io.LimitReader(body, 4096))
	return body.Close()
}

// transientBody wraps a response body so mid-stream transport errors
// surface as transient NetErrors (io.EOF passes through untouched:
// a clean end of stream is not a fault).
type transientBody struct {
	rc io.ReadCloser
}

func (b *transientBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if err != nil && err != io.EOF {
		err = &NetError{Err: err}
	}
	return n, err
}

func (b *transientBody) Close() error { return b.rc.Close() }
