package node

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"dialga/internal/obs"
)

// Traffic classes. Every shard request carries one in the
// ClassHeader; the node's admission control meters each class through
// its own token bucket so background repair can never starve
// foreground serving.
const (
	// ClassForeground is user-facing traffic: object puts/gets and the
	// shard I/O they fan out into. The default when no class header is
	// present.
	ClassForeground = "foreground"
	// ClassRepair is background reconstruction traffic: scrub reads
	// and rebuilt-shard writes issued by the repair queue.
	ClassRepair = "repair"
)

// ClassHeader is the HTTP header naming a request's traffic class.
const ClassHeader = "X-Dialga-Class"

// Admitter is the node's admission-control hook: Admit blocks until
// the class's token bucket covers cost (or ctx ends). It is a tiny
// interface so the data plane does not depend on the control plane —
// internal/cluster's token-bucket Limiter implements it, and a nil
// Admitter admits everything.
type Admitter interface {
	Admit(ctx context.Context, class string, cost float64) error
}

// Server is a node's HTTP API over its local shard store.
//
// Wire format (all bodies are exact shardfile bytes — v3 header +
// checksummed blocks — except where noted):
//
//	PUT    /v1/shard/{object}/{idx}   store one shard (validated, atomic)
//	GET    /v1/shard/{object}/{idx}   fetch one shard (?block=N&count=M for a block window)
//	DELETE /v1/shard/{object}/{idx}   drop one shard (idempotent)
//	GET    /v1/stat/{object}/{idx}    parsed header as JSON
//	GET    /v1/scrub/{object}/{idx}   server-side scrub report as JSON
//	GET    /v1/objects                stored object names as JSON
//	GET    /healthz                   liveness
//	GET    /metrics                   Prometheus text exposition
//
// Every /v1 request passes admission control for its traffic class
// (ClassHeader, default foreground); a request the limiter cannot
// cover before its context ends gets 429.
type Server struct {
	store *Store
	admit Admitter
	reg   *obs.Registry

	requests  *obs.Counter // node_requests_total{route,class}
	throttled *obs.Counter // node_throttled_total{class}
}

// NewServer wires a store, an optional admission controller, and an
// optional metrics registry (also served at /metrics) into a Server.
func NewServer(store *Store, admit Admitter, reg *obs.Registry) *Server {
	return &Server{store: store, admit: admit, reg: reg}
}

// Handler returns the node's routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/shard/{object}/{idx}", s.withAdmission("shard_put", s.handlePut))
	mux.HandleFunc("GET /v1/shard/{object}/{idx}", s.withAdmission("shard_get", s.handleGet))
	mux.HandleFunc("DELETE /v1/shard/{object}/{idx}", s.withAdmission("shard_delete", s.handleDelete))
	mux.HandleFunc("GET /v1/stat/{object}/{idx}", s.withAdmission("stat", s.handleStat))
	mux.HandleFunc("GET /v1/scrub/{object}/{idx}", s.withAdmission("scrub", s.handleScrub))
	mux.HandleFunc("GET /v1/objects", s.withAdmission("objects", s.handleObjects))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// Class extracts a request's traffic class, defaulting unknown or
// absent values to foreground.
func Class(r *http.Request) string {
	if c := r.Header.Get(ClassHeader); c == ClassRepair {
		return ClassRepair
	}
	return ClassForeground
}

// withAdmission meters a handler: one admission token per request in
// the request's class, counted per route.
func (s *Server) withAdmission(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		class := Class(r)
		s.reg.Counter("node_requests_total",
			"Shard-API requests served, by route and traffic class.",
			obs.Label{Key: "route", Value: route},
			obs.Label{Key: "class", Value: class}).Inc()
		if s.admit != nil {
			if err := s.admit.Admit(r.Context(), class, 1); err != nil {
				s.reg.Counter("node_throttled_total",
					"Shard-API requests rejected by admission control, by traffic class.",
					obs.Label{Key: "class", Value: class}).Inc()
				http.Error(w, "admission: "+err.Error(), http.StatusTooManyRequests)
				return
			}
		}
		h(w, r)
	}
}

// shardParams pulls {object}/{idx} out of the matched route.
func shardParams(w http.ResponseWriter, r *http.Request) (string, int, bool) {
	object := r.PathValue("object")
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if object == "" || err != nil || idx < 0 {
		http.Error(w, "bad shard path", http.StatusBadRequest)
		return "", 0, false
	}
	return object, idx, true
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadShard):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	object, idx, ok := shardParams(w, r)
	if !ok {
		return
	}
	if err := s.store.Put(object, idx, r.Body); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	object, idx, ok := shardParams(w, r)
	if !ok {
		return
	}
	// ?block=N&count=M selects a window of whole blocks — the unit a
	// range read needs, since blocks carry their own checksum trailers.
	// Defaults (0, -1) stream the entire shard, wire-identical to a GET
	// without query parameters.
	block, count := int64(0), int64(-1)
	q := r.URL.Query()
	if v := q.Get("block"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, "bad block parameter", http.StatusBadRequest)
			return
		}
		block = n
	}
	if v := q.Get("count"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n == 0 {
			http.Error(w, "bad count parameter", http.StatusBadRequest)
			return
		}
		count = n
	}
	h, body, err := s.store.GetAt(object, idx, block, count)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer body.Close()
	length := h.ExpectedFileSize()
	if block != 0 || count >= 0 {
		blocks := int64(h.StripeCount) - block
		if count >= 0 && count < blocks {
			blocks = count
		}
		length = int64(h.HeaderSize()) + blocks*int64(h.BlockSize())
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.WriteHeader(http.StatusOK)
	// Re-emit the header we consumed during validation, then stream
	// the blocks; a broken client connection is the client's problem.
	if _, err := w.Write(h.Marshal()); err != nil {
		return
	}
	io.Copy(w, body)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	object, idx, ok := shardParams(w, r)
	if !ok {
		return
	}
	if err := s.store.Delete(object, idx); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	object, idx, ok := shardParams(w, r)
	if !ok {
		return
	}
	h, err := s.store.Stat(object, idx)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, statFromHeader(h))
}

func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	object, idx, ok := shardParams(w, r)
	if !ok {
		return
	}
	rep, err := s.store.Scrub(object, idx)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, ScrubStatus{
		Index:   rep.Index,
		Status:  rep.Status.String(),
		Damaged: rep.Status.Damaged(),
		Stripes: rep.Result.Stripes,
		Corrupt: rep.Result.Corrupt,
		Detail:  rep.Detail,
	})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	names, err := s.store.Objects()
	if err != nil {
		s.fail(w, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, names)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
