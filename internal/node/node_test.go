package node

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dialga/internal/obs"
	"dialga/internal/rs"
	"dialga/internal/shardfile"
	"dialga/internal/stream"
)

// encodeShards builds k+m exact shardfile byte blobs for a payload.
func encodeShards(t *testing.T, k, m int, payload []byte) [][]byte {
	t.Helper()
	code, err := rs.New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := stream.NewEncoder(stream.Options{
		Codec: code, StripeSize: 4 * 1024, Checksum: stream.ChecksumCRC32C,
	})
	if err != nil {
		t.Fatal(err)
	}
	stripes := (uint64(len(payload)) + uint64(enc.StripeSize()) - 1) / uint64(enc.StripeSize())
	bufs := make([]bytes.Buffer, k+m)
	writers := make([]io.Writer, k+m)
	for i := range bufs {
		h := shardfile.Header{
			Version: shardfile.VersionV3,
			K:       uint32(k), M: uint32(m), Index: uint32(i),
			ShardSize: uint32(enc.ShardSize()), StripeCount: stripes,
			FileSize: uint64(len(payload)), Algo: shardfile.AlgoCRC32C,
		}
		bufs[i].Write(h.Marshal())
		writers[i] = &bufs[i]
	}
	if err := enc.Encode(context.Background(), bytes.NewReader(payload), writers); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, k+m)
	for i := range bufs {
		out[i] = bufs[i].Bytes()
	}
	return out
}

func testPayload(n int) []byte {
	buf := make([]byte, n)
	st := uint64(7)
	for i := range buf {
		st = st*6364136223846793005 + 1442695040888963407
		buf[i] = byte(st >> 56)
	}
	return buf
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	shards := encodeShards(t, 2, 1, testPayload(10_000))
	for i, b := range shards {
		if err := store.Put("obj", i, bytes.NewReader(b)); err != nil {
			t.Fatalf("put shard %d: %v", i, err)
		}
	}
	for i, want := range shards {
		h, body, err := store.Get("obj", i)
		if err != nil {
			t.Fatalf("get shard %d: %v", i, err)
		}
		got, err := io.ReadAll(body)
		body.Close()
		if err != nil {
			t.Fatal(err)
		}
		full := append(h.Marshal(), got...)
		if !bytes.Equal(full, want) {
			t.Fatalf("shard %d: stored bytes differ (got %d, want %d)", i, len(full), len(want))
		}
		rep, err := store.Scrub("obj", i)
		if err != nil || rep.Status != shardfile.ShardOK {
			t.Fatalf("scrub shard %d: %v %v", i, rep.Status, err)
		}
	}
	names, err := store.Objects()
	if err != nil || len(names) != 1 || names[0] != "obj" {
		t.Fatalf("objects = %v, %v", names, err)
	}
	if err := store.Delete("obj", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Get("obj", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted shard: %v, want ErrNotFound", err)
	}
	// Deleting again is idempotent.
	if err := store.Delete("obj", 0); err != nil {
		t.Fatalf("re-delete: %v", err)
	}
}

func TestStoreRejectsBadUploads(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	shards := encodeShards(t, 2, 1, testPayload(5_000))

	// Index mismatch: shard 1's header uploaded to slot 0.
	if err := store.Put("obj", 0, bytes.NewReader(shards[1])); !errors.Is(err, ErrBadShard) {
		t.Fatalf("index-mismatch put: %v, want ErrBadShard", err)
	}
	// Truncated body.
	if err := store.Put("obj", 0, bytes.NewReader(shards[0][:len(shards[0])-10])); !errors.Is(err, ErrBadShard) {
		t.Fatalf("truncated put: %v, want ErrBadShard", err)
	}
	// Corrupt header (self-CRC fails).
	bad := append([]byte(nil), shards[0]...)
	bad[8] ^= 0xff
	if err := store.Put("obj", 0, bytes.NewReader(bad)); !errors.Is(err, ErrBadShard) {
		t.Fatalf("bad-header put: %v, want ErrBadShard", err)
	}
	// Unusable object names ("../escape" is fine — it percent-encodes
	// to a safe directory name — but "." and "" cannot).
	if err := store.Put(".", 0, bytes.NewReader(shards[0])); !errors.Is(err, ErrBadShard) {
		t.Fatalf("dot put: %v, want ErrBadShard", err)
	}
	if err := store.Put("", 0, bytes.NewReader(shards[0])); !errors.Is(err, ErrBadShard) {
		t.Fatalf("empty-name put: %v, want ErrBadShard", err)
	}
	// Nothing got persisted.
	names, err := store.Objects()
	if err != nil || len(names) != 0 {
		t.Fatalf("objects after rejected puts = %v, %v", names, err)
	}
}

// denyAll is an Admitter that rejects every request.
type denyAll struct{}

func (denyAll) Admit(context.Context, string, float64) error {
	return errors.New("bucket empty")
}

func TestServerHTTPRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := OpenStore(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store, nil, reg).Handler())
	defer ts.Close()
	cli := NewClient(ts.URL)
	ctx := context.Background()

	shards := encodeShards(t, 2, 1, testPayload(20_000))
	for i, b := range shards {
		if err := cli.PutShard(ctx, "http-obj", i, bytes.NewReader(b)); err != nil {
			t.Fatalf("put shard %d: %v", i, err)
		}
	}
	h, body, err := cli.OpenShard(ctx, "http-obj", 1)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := append(h.Marshal(), blocks...); !bytes.Equal(got, shards[1]) {
		t.Fatalf("fetched shard differs: %d vs %d bytes", len(got), len(shards[1]))
	}
	st, err := cli.StatShard(ctx, "http-obj", 2)
	if err != nil || st.Index != 2 || st.K != 2 || st.M != 1 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	sc, err := cli.ScrubShard(ctx, "http-obj", 0)
	if err != nil || sc.Damaged {
		t.Fatalf("scrub = %+v, %v", sc, err)
	}
	names, err := cli.Objects(ctx)
	if err != nil || len(names) != 1 || names[0] != "http-obj" {
		t.Fatalf("objects = %v, %v", names, err)
	}
	if _, _, err := cli.OpenShard(ctx, "nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing shard: %v, want ErrNotFound", err)
	}
	if err := cli.DeleteShard(ctx, "http-obj", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.StatShard(ctx, "http-obj", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat deleted: %v, want ErrNotFound", err)
	}
}

func TestServerAdmissionThrottles(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := OpenStore(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store, denyAll{}, reg).Handler())
	defer ts.Close()

	_, err = NewClient(ts.URL).Objects(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled request: %v, want 429 StatusError", err)
	}
	if !se.Transient() {
		t.Fatal("429 must be transient so shard readers retry instead of dying")
	}
	if got := reg.Counter("node_throttled_total", "", obs.Label{Key: "class", Value: ClassForeground}).Value(); got != 1 {
		t.Fatalf("node_throttled_total = %d, want 1", got)
	}
}

func TestClientNetErrorsAreTransient(t *testing.T) {
	cli := NewClient("127.0.0.1:1") // nothing listens here
	_, err := cli.Objects(context.Background())
	var ne *NetError
	if !errors.As(err, &ne) {
		t.Fatalf("connection-refused error: %v, want NetError", err)
	}
	if !ne.Transient() {
		t.Fatal("transport failures must be transient")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		fmt.Fprint(w, "done")
	})

	ts := httptest.NewUnstartedServer(nil)
	ln := ts.Listener
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, &http.Server{Handler: mux}, ln, 0)
	}()

	// Start an in-flight request, then trigger shutdown while it hangs.
	resp := make(chan error, 1)
	go func() {
		r, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			b, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if string(b) != "done" {
				err = fmt.Errorf("body = %q", b)
			}
		}
		resp <- err
	}()
	<-started
	cancel()
	close(release) // let the handler finish inside the drain window

	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil on clean drain", err)
	}
	if err := <-resp; err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	}
}
