package node

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// DefaultDrainTimeout bounds how long a shutting-down server waits for
// in-flight requests to finish before the process exits anyway.
const DefaultDrainTimeout = 10 * time.Second

// SignalContext returns a context cancelled on SIGINT or SIGTERM —
// the trigger both dialga-node and `dialga-bench -serve` hand to
// Serve for graceful shutdown.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
}

// Serve runs srv until it fails or ctx is cancelled, then drains:
// the listener closes immediately (no new connections) while in-flight
// requests get up to drain (DefaultDrainTimeout when <= 0) to finish
// via http.Server.Shutdown. A clean shutdown returns nil, never
// http.ErrServerClosed. When ln is nil, Serve listens on srv.Addr.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
			return
		}
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(sctx)
		<-errc // collect the Serve goroutine's ErrServerClosed
		if errors.Is(err, context.DeadlineExceeded) {
			// Drain window elapsed with requests still in flight: cut
			// them off rather than hanging the process forever.
			srv.Close()
			return nil
		}
		return err
	}
}
