package node

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dialga/internal/obs"
)

// seedStore fills dir with a store holding the given shards of one
// object, then lets the caller damage the files before "restarting"
// the node by re-opening the store.
func seedStore(t *testing.T, dir, object string, shards [][]byte) {
	t.Helper()
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range shards {
		if err := s.Put(object, i, bytes.NewReader(b)); err != nil {
			t.Fatalf("seed put shard %d: %v", i, err)
		}
	}
}

func objDir(t *testing.T, dir, object string) string {
	t.Helper()
	s := &Store{dir: dir}
	d, err := s.objectDir(object)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStoreRestartRecovery(t *testing.T) {
	const object = "recover-me"
	cases := []struct {
		name            string
		damage          func(t *testing.T, od string, shards [][]byte)
		wantTmpRemoved  int
		wantQuarantined int
		wantShards      int // shard files surviving for the object
	}{
		{
			name: "clean store untouched",
			damage: func(t *testing.T, od string, shards [][]byte) {
			},
			wantShards: 5,
		},
		{
			// A crash between the temp write and the rename leaves an
			// orphaned .put-*.tmp holding a prefix of the upload.
			name: "orphaned tmp from crashed put",
			damage: func(t *testing.T, od string, shards [][]byte) {
				tmp := filepath.Join(od, ".put-2-99.tmp")
				if err := os.WriteFile(tmp, shards[2][:len(shards[2])/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantTmpRemoved: 1,
			wantShards:     5,
		},
		{
			// The filesystem dropped tail pages on power loss: the
			// header is intact but the file is short.
			name: "truncated shard tail",
			damage: func(t *testing.T, od string, shards [][]byte) {
				path := filepath.Join(od, "shard.001")
				if err := os.Truncate(path, int64(len(shards[1])-7)); err != nil {
					t.Fatal(err)
				}
			},
			wantQuarantined: 1,
			wantShards:      4,
		},
		{
			// Bit rot inside the 44 header bytes the self-CRC covers.
			name: "corrupted header",
			damage: func(t *testing.T, od string, shards [][]byte) {
				path := filepath.Join(od, "shard.003")
				b := append([]byte(nil), shards[3]...)
				b[10] ^= 0x40
				if err := os.WriteFile(path, b, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantQuarantined: 1,
			wantShards:      4,
		},
		{
			// Garbage appended past the promised file size is just as
			// untrustworthy as a missing tail.
			name: "overlong shard file",
			damage: func(t *testing.T, od string, shards [][]byte) {
				path := filepath.Join(od, "shard.000")
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte("junk"))
				f.Close()
			},
			wantQuarantined: 1,
			wantShards:      4,
		},
		{
			name: "compound crash damage",
			damage: func(t *testing.T, od string, shards [][]byte) {
				if err := os.WriteFile(filepath.Join(od, ".put-0-1.tmp"), []byte("x"), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(od, ".put-4-2.tmp"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(filepath.Join(od, "shard.002"), 20); err != nil {
					t.Fatal(err)
				}
			},
			wantTmpRemoved:  2,
			wantQuarantined: 1,
			wantShards:      4,
		},
	}

	shards := encodeShards(t, 3, 2, bytes.Repeat([]byte("crash consistency "), 800))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seedStore(t, dir, object, shards)
			od := objDir(t, dir, object)
			tc.damage(t, od, shards)

			reg := obs.NewRegistry()
			s, err := OpenStore(dir, reg)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			if got := int(reg.Counter("node_recovery_tmp_removed_total", "").Value()); got != tc.wantTmpRemoved {
				t.Errorf("tmp removed = %d, want %d", got, tc.wantTmpRemoved)
			}
			if got := int(reg.Counter("node_recovery_quarantined_total", "").Value()); got != tc.wantQuarantined {
				t.Errorf("quarantined = %d, want %d", got, tc.wantQuarantined)
			}
			if got := int(reg.Gauge("node_store_shards", "").Value()); got != tc.wantShards {
				t.Errorf("node_store_shards = %d, want %d", got, tc.wantShards)
			}
			// No crash litter survives in the object dir, and every
			// remaining shard is fully readable.
			files, err := os.ReadDir(od)
			if err != nil {
				t.Fatal(err)
			}
			live := 0
			for _, f := range files {
				if strings.HasSuffix(f.Name(), ".tmp") {
					t.Errorf("tmp file %s survived recovery", f.Name())
				}
				if strings.HasPrefix(f.Name(), "shard.") {
					live++
					idx := int(f.Name()[len(f.Name())-1] - '0')
					h, r, err := s.Get(object, idx)
					if err != nil {
						t.Errorf("surviving shard %d unreadable: %v", idx, err)
						continue
					}
					r.Close()
					if int(h.Index) != idx {
						t.Errorf("shard %d header index = %d", idx, h.Index)
					}
				}
			}
			if live != tc.wantShards {
				t.Errorf("object dir holds %d shards, want %d", live, tc.wantShards)
			}
			// Quarantined files are preserved, not deleted, and stay
			// invisible to the object listing.
			qfiles, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
			if len(qfiles) != tc.wantQuarantined {
				t.Errorf("quarantine holds %d files, want %d", len(qfiles), tc.wantQuarantined)
			}
			objs, err := s.Objects()
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range objs {
				if o != object {
					t.Errorf("unexpected object %q listed after recovery", o)
				}
			}
		})
	}
}

func TestRecoveryRemovesEmptiedObjectDir(t *testing.T) {
	dir := t.TempDir()
	shards := encodeShards(t, 2, 1, []byte("tiny"))
	seedStore(t, dir, "only", shards[:1])
	if err := os.Truncate(filepath.Join(objDir(t, dir, "only"), "shard.000"), 10); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := s.Objects()
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 0 {
		t.Fatalf("objects after quarantining the only shard: %v", objs)
	}
}

func TestQuarantineNameCollisions(t *testing.T) {
	dir := t.TempDir()
	shards := encodeShards(t, 2, 1, []byte("dup"))
	for round := 0; round < 3; round++ {
		seedStore(t, dir, "dup", shards[:1])
		if err := os.Truncate(filepath.Join(objDir(t, dir, "dup"), "shard.000"), 10); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(dir, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) != 3 {
		t.Fatalf("quarantine holds %d files after 3 rounds, want 3", len(qfiles))
	}
}

func TestDotObjectNamesRejected(t *testing.T) {
	s, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".", "..", ".quarantine", ".hidden"} {
		if err := s.Put(name, 0, bytes.NewReader(nil)); err == nil {
			t.Errorf("Put(%q) accepted a dot-prefixed object name", name)
		}
	}
}
