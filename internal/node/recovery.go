package node

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dialga/internal/shardfile"
)

// quarantineDir is the store-root directory damaged shard files are
// moved into instead of deleted, so an operator (or a forensic tool)
// can still look at what the recovery scan condemned. It is
// dot-prefixed, which keeps it out of Objects and the shard count.
const quarantineDir = ".quarantine"

// RecoveryReport summarizes one startup recovery scan.
type RecoveryReport struct {
	TmpRemoved  int // orphaned .put-*.tmp upload files deleted
	Quarantined int // torn, truncated, or unreadable shard files moved aside
	Scanned     int // shard files examined
}

// Recover walks the store and repairs the damage a crash can leave
// behind, restoring the invariant that every shard.* file under the
// root is a complete, parseable shardfile:
//
//   - Orphaned upload temp files (.put-*.tmp) are deleted. A crash
//     between the temp write and the rename leaves one; it was never
//     visible to readers and its shard was never acknowledged.
//   - Shard files whose v3 header fails its self-CRC, or whose size
//     disagrees with the header's expected file size (a torn or
//     truncated write, e.g. a filesystem that dropped tail pages on
//     power loss), are moved into .quarantine/ rather than deleted —
//     the repair plane will rebuild the shard from its peers, and the
//     damaged bytes stay available for inspection.
//
// Block-level corruption (a flipped bit inside a block body) is left
// to the periodic scrub: detecting it requires reading every byte,
// which is too expensive for a startup path, and the per-block CRC
// trailers catch it on first read anyway.
//
// OpenStore runs Recover automatically; it is exported so tests and
// tools can re-run the scan on a live store.
func (s *Store) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	s.recRuns.Inc()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dir := filepath.Join(s.dir, e.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			return rep, err
		}
		for _, f := range files {
			name := f.Name()
			switch {
			case f.IsDir():
				continue
			case strings.HasPrefix(name, ".put-") && strings.HasSuffix(name, ".tmp"):
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return rep, err
				}
				rep.TmpRemoved++
				s.recTmp.Inc()
			case strings.HasPrefix(name, "shard."):
				rep.Scanned++
				path := filepath.Join(dir, name)
				if verr := verifyShardFile(path); verr != nil {
					if err := s.quarantine(e.Name(), path); err != nil {
						return rep, err
					}
					rep.Quarantined++
					s.recQuar.Inc()
				}
			}
		}
		// A dir left empty by the cleanup is itself crash litter.
		os.Remove(dir)
	}
	return rep, nil
}

// verifyShardFile checks that path holds a structurally complete
// shardfile: the v3 header parses (its self-CRC validates the first 44
// bytes) and the file length matches the size the header promises.
// It reads only the header, never the blocks.
func verifyShardFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := shardfile.Parse(f)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != h.ExpectedFileSize() {
		return fmt.Errorf("node: shard file is %d bytes, header wants %d (torn write)",
			fi.Size(), h.ExpectedFileSize())
	}
	return nil
}

// quarantine moves a condemned shard file into the store's quarantine
// directory under a name that records which object it belonged to,
// picking a numeric suffix if a previous incarnation is already there.
func (s *Store) quarantine(objEnc, path string) error {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(qdir, objEnc+"."+filepath.Base(path))
	for i := 0; i < 10000; i++ {
		dst := base
		if i > 0 {
			dst = fmt.Sprintf("%s.%d", base, i)
		}
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			return os.Rename(path, dst)
		}
	}
	return fmt.Errorf("node: quarantine name space exhausted for %s", path)
}
