// Package node is the data plane of the dialga shard service: a
// disk-backed shard store, an HTTP server exposing it (put / get /
// stat / scrub / delete per shard, plus object listing, /metrics and
// /healthz), a client for talking to peers, and a graceful-shutdown
// serving helper.
//
// A node knows nothing about placement, routing, or repair — that is
// internal/cluster's control plane, layered on top of the client. The
// wire format is deliberately dumb: a shard travels as the exact
// shardfile bytes (v3 header + checksummed blocks) that dialga-encode
// writes to disk, so the store can validate uploads with the header
// self-CRC and byte count alone, `dialga-inspect -verify` can scrub a
// node's data directory directly, and a shard fetched over HTTP can be
// fed straight into the streaming decoder.
package node

import (
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dialga/internal/obs"
	"dialga/internal/shardfile"
)

// ErrNotFound reports a shard or object the store does not hold.
var ErrNotFound = errors.New("node: shard not found")

// ErrBadShard reports an upload rejected by validation: unparseable
// header, index mismatch, or a byte count that disagrees with the
// header.
var ErrBadShard = errors.New("node: invalid shard upload")

// Store is a node's local shard storage: one directory per object
// (name percent-encoded), shard files laid out by shardfile.Path
// inside it. Writes are atomic (temp file + rename), so a crashed or
// abandoned upload never leaves a half-written shard where the scrub
// or a reader could trip over it. Safe for concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex // serializes multi-step directory mutations (delete-last-shard cleanup)
	tmp uint64     // temp-file sequence

	puts    *obs.Counter // node_store_puts_total
	gets    *obs.Counter // node_store_gets_total
	deletes *obs.Counter // node_store_deletes_total
	rejects *obs.Counter // node_store_rejected_total
	shards  *obs.Gauge   // node_store_shards
	recRuns *obs.Counter // node_recovery_runs_total
	recTmp  *obs.Counter // node_recovery_tmp_removed_total
	recQuar *obs.Counter // node_recovery_quarantined_total
}

// OpenStore creates (if needed) and opens a shard store rooted at dir,
// running the crash-recovery scan (see Recover) before the store
// serves anything: orphaned upload temp files are deleted and torn or
// unreadable shard files are quarantined, so every shard the open
// store reports actually parses. A non-nil reg receives the store's
// node_store_* and node_recovery_* series.
func OpenStore(dir string, reg *obs.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir: dir,
		puts: reg.Counter("node_store_puts_total",
			"Shard files accepted and committed to the local store."),
		gets: reg.Counter("node_store_gets_total",
			"Shard files opened for reading from the local store."),
		deletes: reg.Counter("node_store_deletes_total",
			"Shard files deleted from the local store."),
		rejects: reg.Counter("node_store_rejected_total",
			"Shard uploads rejected by header or size validation."),
		shards: reg.Gauge("node_store_shards",
			"Shard files currently held by the local store."),
		recRuns: reg.Counter("node_recovery_runs_total",
			"Crash-recovery scans run over the local store."),
		recTmp: reg.Counter("node_recovery_tmp_removed_total",
			"Orphaned upload temp files removed by recovery scans."),
		recQuar: reg.Counter("node_recovery_quarantined_total",
			"Torn or unreadable shard files quarantined by recovery scans."),
	}
	if _, err := s.Recover(); err != nil {
		return nil, err
	}
	n, err := s.countShards()
	if err != nil {
		return nil, err
	}
	s.shards.Set(float64(n))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// objectDir maps an object name to its directory, percent-encoding
// anything that could escape the store root. Empty names, names that
// encode to path navigation, and names that would collide with the
// store's dot-prefixed bookkeeping dirs (.quarantine) are rejected.
func (s *Store) objectDir(object string) (string, error) {
	if object == "" {
		return "", fmt.Errorf("%w: empty object name", ErrBadShard)
	}
	enc := url.PathEscape(object)
	if strings.HasPrefix(enc, ".") || strings.ContainsAny(enc, "/\\") {
		return "", fmt.Errorf("%w: unusable object name %q", ErrBadShard, object)
	}
	return filepath.Join(s.dir, enc), nil
}

func (s *Store) countShards() (int, error) {
	objects, err := s.Objects()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, o := range objects {
		dir, err := s.objectDir(o)
		if err != nil {
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), "shard.") {
				n++
			}
		}
	}
	return n, nil
}

// Put validates and atomically commits one shard upload: the body must
// be exact shardfile bytes whose header parses, whose index matches
// idx, and whose length matches the header's expected file size.
// Anything else is rejected with ErrBadShard and leaves no trace on
// disk. An existing shard at the slot is replaced atomically.
func (s *Store) Put(object string, idx int, body io.Reader) error {
	dir, err := s.objectDir(object)
	if err != nil {
		s.rejects.Inc()
		return err
	}
	h, err := shardfile.Parse(body)
	if err != nil {
		s.rejects.Inc()
		return fmt.Errorf("%w: %v", ErrBadShard, err)
	}
	if int(h.Index) != idx {
		s.rejects.Inc()
		return fmt.Errorf("%w: header says shard %d, uploaded to slot %d", ErrBadShard, h.Index, idx)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	s.tmp++
	tmp := filepath.Join(dir, fmt.Sprintf(".put-%d-%d.tmp", idx, s.tmp))
	s.mu.Unlock()
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if _, err := f.Write(h.Marshal()); err != nil {
		f.Close()
		return err
	}
	want := h.ExpectedFileSize() - int64(h.HeaderSize())
	n, err := io.Copy(f, body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if n != want {
		s.rejects.Inc()
		os.Remove(tmp)
		os.Remove(dir) // only removes an object dir the rejected put created empty
		return fmt.Errorf("%w: body carried %d block bytes, header wants %d", ErrBadShard, n, want)
	}
	path := shardfile.Path(dir, idx)
	existed := false
	if _, err := os.Stat(path); err == nil {
		existed = true
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	s.puts.Inc()
	if !existed {
		s.shards.Add(1)
	}
	return nil
}

// Get opens a shard for reading, returning its parsed header and a
// reader positioned at the first block (the header bytes already
// consumed). The caller must Close the reader.
func (s *Store) Get(object string, idx int) (shardfile.Header, io.ReadCloser, error) {
	dir, err := s.objectDir(object)
	if err != nil {
		return shardfile.Header{}, nil, err
	}
	f, err := os.Open(shardfile.Path(dir, idx))
	if err != nil {
		if os.IsNotExist(err) {
			err = fmt.Errorf("%w: %s/%d", ErrNotFound, object, idx)
		}
		return shardfile.Header{}, nil, err
	}
	h, err := shardfile.Parse(f)
	if err != nil {
		f.Close()
		return shardfile.Header{}, nil, fmt.Errorf("stored shard %s/%d unreadable: %w", object, idx, err)
	}
	s.gets.Inc()
	return h, f, nil
}

// GetAt opens a window of a shard: the parsed header plus a reader
// over count whole blocks starting at block index `block` (each block
// is one stripe's worth of this shard: data plus checksum trailer).
// count < 0 means through the last block; count is clamped to the
// blocks that exist. A block index past the end is rejected. The
// caller must Close the reader.
func (s *Store) GetAt(object string, idx int, block, count int64) (shardfile.Header, io.ReadCloser, error) {
	h, f, err := s.Get(object, idx)
	if err != nil {
		return shardfile.Header{}, nil, err
	}
	if block == 0 && count < 0 {
		return h, f, nil
	}
	stripes := int64(h.StripeCount)
	if block < 0 || block >= stripes {
		f.Close()
		return shardfile.Header{}, nil, fmt.Errorf("%w: block %d outside shard %s/%d (%d blocks)",
			ErrBadShard, block, object, idx, stripes)
	}
	if count < 0 || block+count > stripes {
		count = stripes - block
	}
	blockSize := int64(h.BlockSize())
	seeker, ok := f.(io.Seeker)
	if !ok {
		f.Close()
		return shardfile.Header{}, nil, fmt.Errorf("stored shard %s/%d not seekable", object, idx)
	}
	// Get left the reader at block 0; step straight to the window.
	if _, err := seeker.Seek(int64(h.HeaderSize())+block*blockSize, io.SeekStart); err != nil {
		f.Close()
		return shardfile.Header{}, nil, err
	}
	return h, &limitedCloser{Reader: io.LimitReader(f, count*blockSize), c: f}, nil
}

// limitedCloser bounds a ReadCloser without losing Close.
type limitedCloser struct {
	io.Reader
	c io.Closer
}

func (l *limitedCloser) Close() error { return l.c.Close() }

// Stat parses and returns a stored shard's header without reading its
// blocks.
func (s *Store) Stat(object string, idx int) (shardfile.Header, error) {
	h, r, err := s.Get(object, idx)
	if err != nil {
		return shardfile.Header{}, err
	}
	r.Close()
	return h, nil
}

// Scrub runs the shared shardfile scrub over one stored shard,
// verifying the header, size, and every block trailer.
func (s *Store) Scrub(object string, idx int) (shardfile.ShardReport, error) {
	dir, err := s.objectDir(object)
	if err != nil {
		return shardfile.ShardReport{}, err
	}
	rep := shardfile.ScrubFile(shardfile.Path(dir, idx))
	rep.Index = idx
	return rep, nil
}

// Delete removes a shard; deleting the object's last shard removes its
// directory. Deleting a shard that is not there is not an error.
func (s *Store) Delete(object string, idx int) error {
	dir, err := s.objectDir(object)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err = os.Remove(shardfile.Path(dir, idx))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	s.deletes.Inc()
	s.shards.Add(-1)
	// Opportunistic cleanup; fails harmlessly while shards remain.
	os.Remove(dir)
	return nil
}

// Objects lists the object names with at least one shard stored here,
// sorted.
func (s *Store) Objects() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue // files, and bookkeeping dirs like .quarantine
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // foreign directory; not ours to report
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
