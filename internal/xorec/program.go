package xorec

import (
	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

// scratchRegionOffset places the per-thread parity scratch area used by
// the XOR kernels, relative to the layout's parity region. Optimized
// XOR libraries accumulate parity packets in a small reused buffer that
// stays cache-resident and write the finished parity out afterwards.
const scratchRegionOffset = 4 << 30

// Program replays an XOR schedule's memory-access pattern over a
// layout: per stripe, each packet operation reads its source packet
// (data block or cache-resident scratch parity), XORs, and at stripe
// end flushes the scratch parities to the stripe's parity blocks with
// non-temporal stores.
//
// This is the access pattern the paper contrasts with ISA-L's (§2.2):
// data packets are read from scattered positions and re-read across
// operations, with short per-packet sequential runs — hostile to the
// stream prefetcher.
type Program struct {
	Layout *workload.Layout
	Cfg    *mem.Config
	Sched  Schedule

	scratch    mem.Addr
	packetSize int
	stripe     int
	phase      int // 0 = schedule ops, 1 = flush
	opIdx      int
	flushIdx   int
}

// NewProgram builds the XOR access program. The schedule must have been
// built for the layout's (k, m); block size must be a multiple of 8.
func NewProgram(l *workload.Layout, cfg *mem.Config, sched Schedule) *Program {
	return &Program{
		Layout:     l,
		Cfg:        cfg,
		Sched:      sched,
		scratch:    l.Parity[0][0] + scratchRegionOffset,
		packetSize: l.BlockSize / W,
	}
}

// DataBytes implements engine.Program.
func (p *Program) DataBytes() uint64 { return p.Layout.DataBytes() }

// packetAddr returns the base address of packet (block, bit) for the
// current stripe.
func (p *Program) packetAddr(block, bit int) mem.Addr {
	off := mem.Addr(bit * p.packetSize)
	if block < p.Layout.K {
		return p.Layout.Data[p.stripe][block] + off
	}
	return p.scratch + mem.Addr((block-p.Layout.K)*p.Layout.BlockSize) + off
}

// appendPacketLines appends the 64 B lines covering [base, base+packetSize).
func (p *Program) appendPacketLines(dst []mem.Addr, base mem.Addr) []mem.Addr {
	first := uint64(base) / mem.CachelineSize
	last := (uint64(base) + uint64(p.packetSize) - 1) / mem.CachelineSize
	for l := first; l <= last; l++ {
		dst = append(dst, mem.Addr(l*mem.CachelineSize))
	}
	return dst
}

// opBatch is the number of packet operations fused into one engine op.
// Out-of-order execution overlaps the independent packet loads of
// adjacent XOR operations, so their cache misses must be allowed to
// overlap up to the machine's MLP just as in the table-lookup kernel.
const opBatch = 16

// Next implements engine.Program.
func (p *Program) Next(op *engine.Op) bool {
	for {
		if p.stripe >= p.Layout.Stripes {
			return false
		}
		if p.phase == 0 {
			if p.opIdx < len(p.Sched) {
				vecs := float64(p.packetSize) / float64(p.Cfg.SIMD)
				if vecs < 1 {
					vecs = 1
				}
				for n := 0; n < opBatch && p.opIdx < len(p.Sched); n++ {
					s := p.Sched[p.opIdx]
					p.opIdx++
					// Destination packets are the reused scratch
					// accumulators: they stay L1-resident and their
					// read-modify-write cost is part of the XOR pass,
					// so only source packets generate memory traffic.
					if s.SrcBlock >= p.Layout.K {
						// Parity-sourced copy/XOR (delta scheduling):
						// also scratch-resident.
						op.ComputeCycles += vecs * p.Cfg.XORCycPerVec
						continue
					}
					op.Loads = p.appendPacketLines(op.Loads, p.packetAddr(s.SrcBlock, s.SrcBit))
					if s.Copy {
						op.ComputeCycles += vecs * p.Cfg.XORCycPerVec / 2
					} else {
						op.ComputeCycles += vecs * p.Cfg.XORCycPerVec
					}
				}
				return true
			}
			p.phase = 1
			p.flushIdx = 0
		}
		// Flush phase: one op per parity block.
		if p.flushIdx < p.Layout.M {
			i := p.flushIdx
			p.flushIdx++
			lines := p.Layout.LinesPerBlock()
			src := p.scratch + mem.Addr(i*p.Layout.BlockSize)
			dst := p.Layout.Parity[p.stripe][i]
			for l := 0; l < lines; l++ {
				off := mem.Addr(l * mem.CachelineSize)
				op.Loads = append(op.Loads, src+off)
				op.Stores = append(op.Stores, dst+off)
			}
			op.ComputeCycles = float64(lines) * p.Cfg.VectorsPerLine()
			return true
		}
		// Stripe complete.
		p.phase = 0
		p.opIdx = 0
		p.stripe++
	}
}
