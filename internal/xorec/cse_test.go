package xorec

import (
	"bytes"
	"math/rand"
	"testing"

	"dialga/internal/ecmatrix"
)

// executeWithTemps runs a schedule that may reference temporary blocks:
// the parity slice is extended with scratch blocks.
func executeWithTemps(t *testing.T, sched Schedule, k, m int, data [][]byte) [][]byte {
	t.Helper()
	size := len(data[0])
	temps := sched.TempBlocks(k, m)
	out := make([][]byte, m+temps)
	for i := range out {
		out[i] = make([]byte, size)
	}
	if err := executeSchedule(sched, data, out, size); err != nil {
		t.Fatal(err)
	}
	return out[:m]
}

func TestCSEScheduleMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []struct{ k, m int }{{4, 2}, {8, 4}, {12, 3}, {24, 4}} {
		gen := ecmatrix.Cauchy(p.k, p.m)
		bm := ecmatrix.ToBitMatrix(ecmatrix.ParityRows(gen, p.k))
		naive := NaiveSchedule(bm, p.k, p.m)
		cse := CSESchedule(bm, p.k, p.m)

		data := randBlocks(r, p.k, 256)
		want := make([][]byte, p.m)
		for i := range want {
			want[i] = make([]byte, 256)
		}
		if err := executeSchedule(naive, data, want, 256); err != nil {
			t.Fatal(err)
		}
		got := executeWithTemps(t, cse, p.k, p.m, data)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("k=%d m=%d: CSE parity %d differs", p.k, p.m, i)
			}
		}
	}
}

func TestCSEScheduleReducesOps(t *testing.T) {
	for _, p := range []struct{ k, m int }{{8, 4}, {24, 4}} {
		gen := ecmatrix.Cauchy(p.k, p.m)
		bm := ecmatrix.ToBitMatrix(ecmatrix.ParityRows(gen, p.k))
		naive := NaiveSchedule(bm, p.k, p.m)
		cse := CSESchedule(bm, p.k, p.m)
		if len(cse) >= len(naive) {
			t.Errorf("k=%d m=%d: CSE schedule (%d ops) not smaller than naive (%d ops)",
				p.k, p.m, len(cse), len(naive))
		}
		t.Logf("k=%d m=%d: naive=%d smart=%d cse=%d (temps=%d)",
			p.k, p.m, len(naive), len(SmartSchedule(bm, p.k, p.m)), len(cse), cse.TempBlocks(p.k, p.m))
	}
}

func TestCSEScheduleDeterministic(t *testing.T) {
	gen := ecmatrix.Cauchy(8, 4)
	bm := ecmatrix.ToBitMatrix(ecmatrix.ParityRows(gen, 8))
	a := CSESchedule(bm, 8, 4)
	b := CSESchedule(bm, 8, 4)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func TestTempBlocksZeroWithoutTemps(t *testing.T) {
	enc, _ := NewEncoder(4, 2, Options{})
	if n := enc.Schedule().TempBlocks(4, 2); n != 0 {
		t.Fatalf("naive schedule reports %d temp blocks", n)
	}
}

func TestLRCSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	enc, err := NewEncoder(8, 4, Options{SmartSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := enc.LRCSchedule(2)
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(r, 8, 256)
	// Execute: outputs are 4 global + 2 local parities (+ temps if any).
	temps := sched.TempBlocks(8, 6)
	out := make([][]byte, 6+temps)
	for i := range out {
		out[i] = make([]byte, 256)
	}
	if err := executeSchedule(sched, data, out, 256); err != nil {
		t.Fatal(err)
	}
	// Globals match the plain encoder.
	want, _ := enc.EncodeAppend(data)
	for i := 0; i < 4; i++ {
		if !bytes.Equal(out[i], want[i]) {
			t.Fatalf("LRC global parity %d differs", i)
		}
	}
	// Locals are group XORs.
	for g := 0; g < 2; g++ {
		for j := 0; j < 256; j++ {
			var x byte
			for b := g * 4; b < (g+1)*4; b++ {
				x ^= data[b][j]
			}
			if out[4+g][j] != x {
				t.Fatalf("LRC local parity %d wrong at %d", g, j)
			}
		}
	}
	if _, err := enc.LRCSchedule(3); err == nil {
		t.Fatal("l not dividing k accepted")
	}
}

func TestEncoderWithCSE(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cse, err := NewEncoder(8, 4, Options{CSESchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewEncoder(8, 4, Options{})
	data := randBlocks(r, 8, 512)
	want, _ := plain.EncodeAppend(data)
	got, err := cse.EncodeAppend(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("CSE encoder parity %d differs", i)
		}
	}
	// Decode still works (decode schedules are built independently).
	full := append(append([][]byte{}, data...), got...)
	dec, err := cse.NewDecoder([]int{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	work := make([][]byte, len(full))
	copy(work, full)
	work[0], work[9] = nil, nil
	if err := dec.Decode(work); err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if !bytes.Equal(work[i], full[i]) {
			t.Fatalf("decode after CSE encode wrong at %d", i)
		}
	}
}
