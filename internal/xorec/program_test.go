package xorec

import (
	"testing"

	"dialga/internal/engine"
	"dialga/internal/mem"
	"dialga/internal/workload"
)

func testLayout(t *testing.T, k, m, block, totalKB int) *workload.Layout {
	t.Helper()
	l, err := workload.New(workload.Config{
		K: k, M: m, BlockSize: block,
		TotalDataBytes: totalKB << 10,
		Placement:      workload.Scattered,
		Seed:           5,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestProgramCoversDataAndFlushesParity(t *testing.T) {
	cfg := mem.DefaultConfig()
	enc, err := NewEncoder(4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := testLayout(t, 4, 2, 1024, 64)
	p := NewProgram(l, &cfg, enc.Schedule())
	if p.DataBytes() != l.DataBytes() {
		t.Fatal("DataBytes mismatch")
	}
	dataLines := map[mem.Addr]bool{}
	parityStores := map[mem.Addr]bool{}
	var op engine.Op
	for {
		op.Reset()
		if !p.Next(&op) {
			break
		}
		for _, a := range op.Loads {
			dataLines[a.LineAddr()] = true
		}
		for _, a := range op.Stores {
			parityStores[a.LineAddr()] = true
		}
	}
	// All data lines are touched (XOR codecs read everything, often
	// repeatedly), and every parity line is written exactly once per
	// stripe via the flush.
	for s := 0; s < l.Stripes; s++ {
		for j := 0; j < 4; j++ {
			for line := 0; line < 16; line++ {
				a := (l.Data[s][j] + mem.Addr(line*64)).LineAddr()
				if !dataLines[a] {
					t.Fatalf("data line %x never loaded", uint64(a))
				}
			}
		}
		for i := 0; i < 2; i++ {
			for line := 0; line < 16; line++ {
				a := (l.Parity[s][i] + mem.Addr(line*64)).LineAddr()
				if !parityStores[a] {
					t.Fatalf("parity line %x never stored", uint64(a))
				}
			}
		}
	}
}

func TestProgramRunsOnEngine(t *testing.T) {
	cfg := mem.DefaultConfig()
	enc, err := NewEncoder(8, 4, Options{SmartSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(cfg, mem.PM)
	if err != nil {
		t.Fatal(err)
	}
	l := testLayout(t, 8, 4, 1024, 512)
	e.AddThread(NewProgram(l, e.Config(), enc.Schedule()))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputGBps <= 0 {
		t.Fatal("no throughput")
	}
	// The XOR pattern re-reads data packets: application-level loads
	// must exceed one per data line.
	if res.EncodeReadBytes <= res.DataBytes {
		t.Fatal("XOR codec should issue more loads than one per data byte")
	}
}

// XOR codecs must be slower on the simulated PM than the table-lookup
// kernel at equal parameters — the paper's core comparison (§2.2, §5.2).
func TestXORSlowerThanTableLookupOnPM(t *testing.T) {
	cfg := mem.DefaultConfig()
	enc, _ := NewCerasure(8, 4)

	run := func(p engine.Program) float64 {
		e, err := engine.New(cfg, mem.PM)
		if err != nil {
			t.Fatal(err)
		}
		e.AddThread(p)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputGBps
	}
	xor := run(NewProgram(testLayout(t, 8, 4, 1024, 1024), &cfg, enc.Schedule()))
	isal := run(isalLike(t, &cfg))
	if xor >= isal {
		t.Fatalf("XOR codec (%v GB/s) not slower than table-lookup (%v GB/s)", xor, isal)
	}
}

// isalLike emits the table-lookup pattern without importing package
// isal (no import cycle, xorec is a lower layer): one load per data
// line, row-major.
type tablePattern struct {
	l      *workload.Layout
	cfg    *mem.Config
	stripe int
	row    int
}

func isalLike(t *testing.T, cfg *mem.Config) engine.Program {
	return &tablePattern{l: testLayout(t, 8, 4, 1024, 1024), cfg: cfg}
}

func (p *tablePattern) DataBytes() uint64 { return p.l.DataBytes() }

func (p *tablePattern) Next(op *engine.Op) bool {
	if p.stripe >= p.l.Stripes {
		return false
	}
	off := mem.Addr(p.row * 64)
	for j := 0; j < p.l.K; j++ {
		op.Loads = append(op.Loads, p.l.Data[p.stripe][j]+off)
	}
	op.ComputeCycles = float64(p.l.K*p.l.M) * p.cfg.ComputeCycPerVecParity
	for i := 0; i < p.l.M; i++ {
		op.Stores = append(op.Stores, p.l.Parity[p.stripe][i]+off)
	}
	p.row++
	if p.row >= p.l.LinesPerBlock() {
		p.row = 0
		p.stripe++
	}
	return true
}

func TestCombinedScheduleMatchesDirectEncode(t *testing.T) {
	// The decomposed combined schedule must compute the same parity as
	// the monolithic encoder when executed on real bytes, including the
	// partial-parity recombination.
	d, err := NewDecomposed(24, 4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := d.CombinedSchedule()
	full, err := NewEncoder(24, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 24)
	for i := range data {
		data[i] = make([]byte, 256)
		for j := range data[i] {
			data[i][j] = byte(i*37 + j)
		}
	}
	want, _ := full.EncodeAppend(data)

	// Execute the combined schedule: parity space = groups*m blocks.
	groups := d.Groups()
	scratch := make([][]byte, groups*4)
	for i := range scratch {
		scratch[i] = make([]byte, 256)
	}
	if err := executeSchedule(sched, data, scratch, 256); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := range want[i] {
			if scratch[i][j] != want[i][j] {
				t.Fatalf("combined schedule parity %d differs at %d", i, j)
			}
		}
	}
}
