package xorec

import (
	"math"
	"math/rand"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// scaledCauchy builds the systematic generator whose parity portion is
// the Cauchy matrix with row i scaled by rowScale[i] and column j scaled
// by colScale[j]. All scales must be nonzero; scaling by nonzero field
// elements preserves the MDS property (every square submatrix of a
// Cauchy matrix stays nonsingular under nonzero row/column scaling).
func scaledCauchy(k, m int, rowScale, colScale []byte) *ecmatrix.Matrix {
	gen := ecmatrix.Cauchy(k, m)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			v := gen.At(k+i, j)
			v = gf.Mul(v, rowScale[i])
			v = gf.Mul(v, colScale[j])
			gen.Set(k+i, j, v)
		}
	}
	return gen
}

// parityOnes returns the XOR weight (bitmatrix ones) of the parity
// portion of a scaled Cauchy matrix without materializing the bitmatrix.
func parityOnes(k, m int, rowScale, colScale []byte) int {
	base := ecmatrix.Cauchy(k, m)
	total := 0
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			v := gf.Mul(gf.Mul(base.At(k+i, j), rowScale[i]), colScale[j])
			total += ecmatrix.ElementOnes(v)
		}
	}
	return total
}

// NormalizeCauchy applies the classic "good Cauchy" normalization: scale
// each column so the first parity row becomes all ones, then scale each
// remaining row by the inverse of its lightest element. This is
// Zerasure's deterministic starting point before annealing.
func NormalizeCauchy(k, m int) (rowScale, colScale []byte) {
	base := ecmatrix.Cauchy(k, m)
	colScale = make([]byte, k)
	for j := 0; j < k; j++ {
		colScale[j] = gf.Inv(base.At(k, j))
	}
	rowScale = make([]byte, m)
	rowScale[0] = 1
	for i := 1; i < m; i++ {
		// Choose the row scale minimizing the row's bit weight.
		best, bestW := byte(1), 1<<30
		for s := 1; s < 256; s++ {
			w := 0
			for j := 0; j < k; j++ {
				v := gf.Mul(gf.Mul(base.At(k+i, j), byte(s)), colScale[j])
				w += ecmatrix.ElementOnes(v)
			}
			if w < bestW {
				best, bestW = byte(s), w
			}
		}
		rowScale[i] = best
	}
	return rowScale, colScale
}

// ZerasureOptions tunes the simulated-annealing search.
type ZerasureOptions struct {
	// Iterations of the annealing loop. Zero selects a default that
	// scales with the matrix size.
	Iterations int
	// Seed for the deterministic search.
	Seed int64
	// MaxK bounds the stripe width the search will attempt; Zerasure's
	// search space explodes for wide stripes and the paper reports
	// missing results for k > 32 (§5.2.1). Zero selects 32.
	MaxK int
}

// ErrSearchSpace is returned by NewZerasure for stripes wider than the
// search can converge on, mirroring the paper's missing wide-stripe
// results for Zerasure.
type ErrSearchSpace struct{ K, MaxK int }

func (e ErrSearchSpace) Error() string {
	return "xorec: zerasure annealing does not converge for k > maxK"
}

// NewZerasure constructs the Zerasure baseline encoder: normalization +
// simulated annealing over row/column scalings to minimize bitmatrix
// ones, with smart scheduling on the result.
func NewZerasure(k, m int, opts ZerasureOptions) (*Encoder, error) {
	maxK := opts.MaxK
	if maxK == 0 {
		maxK = 32
	}
	if k > maxK {
		return nil, ErrSearchSpace{K: k, MaxK: maxK}
	}
	// Zerasure's annealing starts from the raw Cauchy matrix rather
	// than the normalized one; with a bounded iteration budget this
	// lands on heavier matrices than Cerasure's greedy-from-normalized
	// search, which is the narrow-stripe weakness the paper observes
	// ("suboptimal encoding matrix", §5.2.1).
	rowScale := make([]byte, m)
	colScale := make([]byte, k)
	for i := range rowScale {
		rowScale[i] = 1
	}
	for j := range colScale {
		colScale[j] = 1
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 60 * (k + m)
	}
	r := rand.New(rand.NewSource(opts.Seed + 0x5ea))
	cur := parityOnes(k, m, rowScale, colScale)
	best := cur
	bestRow := append([]byte(nil), rowScale...)
	bestCol := append([]byte(nil), colScale...)
	t0 := float64(cur) * 0.05
	for it := 0; it < iters; it++ {
		temp := t0 * math.Pow(0.995, float64(it))
		// Neighbor: perturb one random scale.
		var idx int
		var old byte
		isRow := r.Intn(k+m) < m
		if isRow {
			idx = r.Intn(m)
			old = rowScale[idx]
			rowScale[idx] = byte(1 + r.Intn(255))
		} else {
			idx = r.Intn(k)
			old = colScale[idx]
			colScale[idx] = byte(1 + r.Intn(255))
		}
		next := parityOnes(k, m, rowScale, colScale)
		accept := next <= cur
		if !accept && temp > 0 {
			accept = r.Float64() < math.Exp(float64(cur-next)/temp)
		}
		if accept {
			cur = next
			if cur < best {
				best = cur
				copy(bestRow, rowScale)
				copy(bestCol, colScale)
			}
		} else {
			if isRow {
				rowScale[idx] = old
			} else {
				colScale[idx] = old
			}
		}
	}
	gen := scaledCauchy(k, m, bestRow, bestCol)
	return NewEncoder(k, m, Options{Matrix: gen, SmartSchedule: true})
}
