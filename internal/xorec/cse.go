package xorec

import "dialga/internal/ecmatrix"

// CSESchedule builds an encoding schedule with common-subexpression
// elimination in the spirit of Luo et al.'s efficient XOR schedules
// (the paper's [17], cited in §2.2 as "optimize the encoding bitmatrix
// to reduce memory accesses and computations"): packet pairs that
// co-occur in multiple parity rows are computed once into temporary
// packets and reused.
//
// Temporaries occupy block numbers k+m, k+m+1, ... (one packet per
// (block, bit) slot, W slots per block); executeSchedule and the
// simulator Program both address them through the same scratch
// numbering as parity blocks.
func CSESchedule(bm *ecmatrix.BitMatrix, k, m int) Schedule {
	rows := bm.Rows
	cols := bm.Cols

	// Each parity row is a set of source terms. Terms 0..cols-1 are
	// data packets (block c/W, bit c%W); terms >= cols are temporaries.
	rowTerms := make([]map[int]bool, rows)
	for r := 0; r < rows; r++ {
		set := map[int]bool{}
		for c := 0; c < cols; c++ {
			if bm.At(r, c) {
				set[c] = true
			}
		}
		rowTerms[r] = set
	}

	type pair struct{ a, b int }
	nextTemp := cols
	// tempDef[t] = the pair a temporary computes.
	tempDef := map[int]pair{}
	var tempOrder []int

	// Greedy pairing: repeatedly extract the pair with the highest
	// co-occurrence count (>= 2) across rows.
	for {
		counts := map[pair]int{}
		var best pair
		bestN := 1
		for _, set := range rowTerms {
			terms := make([]int, 0, len(set))
			for t := range set {
				terms = append(terms, t)
			}
			// Deterministic order for reproducible schedules.
			sortInts(terms)
			for i := 0; i < len(terms); i++ {
				for j := i + 1; j < len(terms); j++ {
					p := pair{terms[i], terms[j]}
					counts[p]++
					if counts[p] > bestN || (counts[p] == bestN+1) {
						if counts[p] > bestN {
							best = p
							bestN = counts[p]
						}
					}
				}
			}
		}
		if bestN < 2 {
			break
		}
		t := nextTemp
		nextTemp++
		tempDef[t] = best
		tempOrder = append(tempOrder, t)
		for _, set := range rowTerms {
			if set[best.a] && set[best.b] {
				delete(set, best.a)
				delete(set, best.b)
				set[t] = true
			}
		}
	}

	termBlockBit := func(term int) (int, int) {
		if term < cols {
			return term / W, term % W
		}
		// Temporaries live after the parity blocks.
		idx := term - cols
		return k + m + idx/W, idx % W
	}

	var sched Schedule
	// Emit temporaries in creation order (definitions only reference
	// data packets or earlier temporaries).
	for _, t := range tempOrder {
		def := tempDef[t]
		db, dbit := termBlockBit(t)
		ab, abit := termBlockBit(def.a)
		bb, bbit := termBlockBit(def.b)
		sched = append(sched,
			XOROp{SrcBlock: ab, SrcBit: abit, DstBlock: db, DstBit: dbit, Copy: true},
			XOROp{SrcBlock: bb, SrcBit: bbit, DstBlock: db, DstBit: dbit},
		)
	}
	// Emit parity rows from their reduced term sets.
	for r := 0; r < rows; r++ {
		dstBlock := k + r/W
		dstBit := r % W
		terms := make([]int, 0, len(rowTerms[r]))
		for t := range rowTerms[r] {
			terms = append(terms, t)
		}
		sortInts(terms)
		first := true
		for _, t := range terms {
			sb, sbit := termBlockBit(t)
			sched = append(sched, XOROp{
				SrcBlock: sb, SrcBit: sbit,
				DstBlock: dstBlock, DstBit: dstBit,
				Copy: first,
			})
			first = false
		}
	}
	return sched
}

// TempBlocks returns the number of scratch blocks (beyond the m parity
// blocks) a schedule requires for its temporaries.
func (s Schedule) TempBlocks(k, m int) int {
	max := k + m - 1
	for _, op := range s {
		if op.SrcBlock > max {
			max = op.SrcBlock
		}
		if op.DstBlock > max {
			max = op.DstBlock
		}
	}
	return max - (k + m - 1)
}

func sortInts(a []int) {
	// Insertion sort: term sets are small and this avoids pulling in
	// sort for a hot inner loop.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
