package xorec

import "dialga/internal/ecmatrix"

// NaiveSchedule converts a parity bitmatrix ((m*8) x (k*8)) into the
// straightforward schedule: each parity packet is a copy of its first
// source packet followed by XORs of the remaining sources. The cost is
// exactly Ones(bitmatrix) operations (copies included).
func NaiveSchedule(bm *ecmatrix.BitMatrix, k, m int) Schedule {
	var sched Schedule
	for r := 0; r < bm.Rows; r++ {
		dstBlock := k + r/W
		dstBit := r % W
		first := true
		for c := 0; c < bm.Cols; c++ {
			if !bm.At(r, c) {
				continue
			}
			sched = append(sched, XOROp{
				SrcBlock: c / W,
				SrcBit:   c % W,
				DstBlock: dstBlock,
				DstBit:   dstBit,
				Copy:     first,
			})
			first = false
		}
	}
	return sched
}

// SmartSchedule implements Jerasure-style delta ("smart") scheduling:
// when computing a parity packet, it may start from a previously
// computed parity packet whose source set differs minimally, XORing only
// the symmetric difference. This is the scheduling optimization Zerasure
// builds on. The result computes exactly the same parity packets, often
// with fewer operations on dense matrices.
func SmartSchedule(bm *ecmatrix.BitMatrix, k, m int) Schedule {
	rows := bm.Rows
	cols := bm.Cols
	// rowBits[r] = set of source columns for parity row r.
	rowBits := make([][]bool, rows)
	for r := 0; r < rows; r++ {
		bits := make([]bool, cols)
		copy(bits, bm.Row(r))
		rowBits[r] = bits
	}
	ones := func(bits []bool) int {
		n := 0
		for _, b := range bits {
			if b {
				n++
			}
		}
		return n
	}
	diff := func(a, b []bool) int {
		n := 0
		for i := range a {
			if a[i] != b[i] {
				n++
			}
		}
		return n
	}

	computed := make([]bool, rows) // parity rows already produced
	var order []int
	var sched Schedule

	for len(order) < rows {
		// Pick the cheapest remaining row: min over (direct cost,
		// delta cost from any computed row).
		best, bestCost, bestBase := -1, 1<<30, -1
		for r := 0; r < rows; r++ {
			if computed[r] {
				continue
			}
			cost := ones(rowBits[r]) // copy + xors = ones ops
			base := -1
			for _, p := range order {
				d := diff(rowBits[r], rowBits[p]) + 1 // copy + delta xors
				if d < cost {
					cost = d
					base = p
				}
			}
			if cost < bestCost {
				best, bestCost, bestBase = r, cost, base
			}
		}
		r := best
		dstBlock := k + r/W
		dstBit := r % W
		if bestBase == -1 {
			// Direct evaluation.
			first := true
			for c := 0; c < cols; c++ {
				if !rowBits[r][c] {
					continue
				}
				sched = append(sched, XOROp{SrcBlock: c / W, SrcBit: c % W, DstBlock: dstBlock, DstBit: dstBit, Copy: first})
				first = false
			}
		} else {
			// Copy the base parity packet, then XOR the delta.
			b := bestBase
			sched = append(sched, XOROp{SrcBlock: k + b/W, SrcBit: b % W, DstBlock: dstBlock, DstBit: dstBit, Copy: true})
			for c := 0; c < cols; c++ {
				if rowBits[r][c] != rowBits[b][c] {
					sched = append(sched, XOROp{SrcBlock: c / W, SrcBit: c % W, DstBlock: dstBlock, DstBit: dstBit})
				}
			}
		}
		computed[r] = true
		order = append(order, r)
	}
	return sched
}

// ScheduleStats summarizes a schedule's memory behaviour for the
// simulator and for cost reporting.
type ScheduleStats struct {
	Ops        int // total packet operations
	Copies     int
	XORs       int
	DataReads  int // reads of data-block packets
	ParityRead int // reads of previously computed parity packets
}

// Stats computes summary statistics for a schedule given k data blocks.
func (s Schedule) Stats(k int) ScheduleStats {
	var st ScheduleStats
	st.Ops = len(s)
	for _, op := range s {
		if op.Copy {
			st.Copies++
		} else {
			st.XORs++
		}
		if op.SrcBlock < k {
			st.DataReads++
		} else {
			st.ParityRead++
		}
	}
	return st
}
