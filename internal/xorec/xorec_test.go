package xorec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

// refBitEncode computes the expected parity blocks in the Jerasure packet
// layout directly from GF(2^8) arithmetic: a block of size s is a w x
// (s) bit matrix whose rows are the w packets; each bit column is one
// GF symbol, multiplied through the parity matrix.
func refBitEncode(t *testing.T, enc *Encoder, data [][]byte) [][]byte {
	t.Helper()
	size := len(data[0])
	ps := size / W
	k, m := enc.K(), enc.M()
	out := make([][]byte, m)
	for i := range out {
		out[i] = make([]byte, size)
	}
	bm := enc.ParityBitMatrix()
	for col := 0; col < ps*8; col++ {
		bytePos, bitPos := col/8, uint(col%8)
		// Gather the input bit vector: bit (j*W + b) = bit bitPos of
		// data[j]'s packet b at bytePos.
		x := make([]bool, k*W)
		for j := 0; j < k; j++ {
			for b := 0; b < W; b++ {
				x[j*W+b] = data[j][b*ps+bytePos]&(1<<bitPos) != 0
			}
		}
		y := bm.BitMatrixVecMul(x)
		for i := 0; i < m; i++ {
			for b := 0; b < W; b++ {
				if y[i*W+b] {
					out[i][b*ps+bytePos] |= 1 << bitPos
				}
			}
		}
	}
	return out
}

// XOR encoding must agree with the direct bitmatrix-on-symbol-columns
// reference computation.
func TestEncodeMatchesBitReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []struct{ k, m int }{{2, 2}, {4, 2}, {8, 4}, {24, 4}} {
		enc, err := NewEncoder(p.k, p.m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 512)
		want := refBitEncode(t, enc, data)
		got, err := enc.EncodeAppend(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("k=%d m=%d parity %d differs from bit-level reference", p.k, p.m, i)
			}
		}
	}
}

func TestSmartScheduleSameParity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, p := range []struct{ k, m int }{{4, 2}, {8, 4}, {12, 3}} {
		naive, err := NewEncoder(p.k, p.m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		smart, err := NewEncoder(p.k, p.m, Options{SmartSchedule: true})
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 256)
		a, _ := naive.EncodeAppend(data)
		b, _ := smart.EncodeAppend(data)
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("smart schedule parity differs for k=%d m=%d", p.k, p.m)
			}
		}
		if len(smart.Schedule()) > len(naive.Schedule()) {
			t.Errorf("smart schedule (%d ops) worse than naive (%d ops) for k=%d m=%d",
				len(smart.Schedule()), len(naive.Schedule()), p.k, p.m)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	enc, _ := NewEncoder(4, 2, Options{})
	r := rand.New(rand.NewSource(3))
	data := randBlocks(r, 4, 64)
	if err := enc.Encode(data[:3], randBlocks(r, 2, 64)); err == nil {
		t.Fatal("short data accepted")
	}
	if err := enc.Encode(data, randBlocks(r, 1, 64)); err == nil {
		t.Fatal("short parity accepted")
	}
	bad := randBlocks(r, 4, 60) // not a multiple of 8... 60 % 8 == 4
	if err := enc.Encode(bad, randBlocks(r, 2, 60)); err == nil {
		t.Fatal("unaligned block size accepted")
	}
	if _, err := NewEncoder(0, 2, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewEncoder(300, 2, Options{}); err == nil {
		t.Fatal("k+m>256 accepted")
	}
}

func TestDecoderAllPatterns(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	enc, err := NewEncoder(6, 3, Options{SmartSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	data := randBlocks(r, 6, 128)
	parity, err := enc.EncodeAppend(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	n := len(full)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				missing := []int{a, b, c}
				dec, err := enc.NewDecoder(missing)
				if err != nil {
					t.Fatalf("decoder for %v: %v", missing, err)
				}
				work := make([][]byte, n)
				copy(work, full)
				for _, e := range missing {
					work[e] = nil
				}
				if err := dec.Decode(work); err != nil {
					t.Fatalf("decode %v: %v", missing, err)
				}
				for i := range full {
					if !bytes.Equal(work[i], full[i]) {
						t.Fatalf("block %d wrong after decoding %v", i, missing)
					}
				}
			}
		}
	}
}

func TestDecoderValidation(t *testing.T) {
	enc, _ := NewEncoder(4, 2, Options{})
	if _, err := enc.NewDecoder(nil); err == nil {
		t.Fatal("empty erasure list accepted")
	}
	if _, err := enc.NewDecoder([]int{0, 1, 2}); err == nil {
		t.Fatal("too many erasures accepted")
	}
	if _, err := enc.NewDecoder([]int{9}); err == nil {
		t.Fatal("out-of-range erasure accepted")
	}
	dec, err := enc.NewDecoder([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(make([][]byte, 3)); err == nil {
		t.Fatal("wrong stripe width accepted")
	}
}

func TestZerasure(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	enc, err := NewZerasure(8, 4, ZerasureOptions{Seed: 1, Iterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	// The annealed code must still be a working MDS code.
	data := randBlocks(r, 8, 256)
	parity, err := enc.EncodeAppend(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	missing := []int{0, 3, 9, 11}
	dec, err := enc.NewDecoder(missing)
	if err != nil {
		t.Fatal(err)
	}
	work := make([][]byte, len(full))
	copy(work, full)
	for _, e := range missing {
		work[e] = nil
	}
	if err := dec.Decode(work); err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if !bytes.Equal(work[i], full[i]) {
			t.Fatalf("zerasure decode wrong at block %d", i)
		}
	}

	// Annealing must not be worse than the plain Cauchy code.
	plain, _ := NewEncoder(8, 4, Options{SmartSchedule: true})
	if enc.XORCount() > plain.XORCount() {
		t.Errorf("zerasure XOR count %d worse than plain %d", enc.XORCount(), plain.XORCount())
	}
}

func TestZerasureWideStripeRefusal(t *testing.T) {
	if _, err := NewZerasure(48, 4, ZerasureOptions{Seed: 1}); err == nil {
		t.Fatal("zerasure should refuse k=48 (search space too large, per paper §5.2.1)")
	}
	var e ErrSearchSpace
	_, err := NewZerasure(48, 4, ZerasureOptions{Seed: 1})
	if !errorsAs(err, &e) || e.K != 48 {
		t.Fatalf("expected ErrSearchSpace{K:48}, got %v", err)
	}
}

func errorsAs(err error, target *ErrSearchSpace) bool {
	if e, ok := err.(ErrSearchSpace); ok {
		*target = e
		return true
	}
	return false
}

func TestCerasure(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, p := range []struct{ k, m int }{{8, 4}, {24, 4}, {48, 4}} {
		enc, err := NewCerasure(p.k, p.m)
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 128)
		parity, err := enc.EncodeAppend(data)
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([][]byte{}, data...), parity...)
		missing := []int{1, p.k} // one data, one parity
		dec, err := enc.NewDecoder(missing)
		if err != nil {
			t.Fatal(err)
		}
		work := make([][]byte, len(full))
		copy(work, full)
		for _, e := range missing {
			work[e] = nil
		}
		if err := dec.Decode(work); err != nil {
			t.Fatal(err)
		}
		for i := range full {
			if !bytes.Equal(work[i], full[i]) {
				t.Fatalf("cerasure decode wrong at block %d (k=%d)", i, p.k)
			}
		}
		plain, _ := NewEncoder(p.k, p.m, Options{SmartSchedule: true})
		if enc.XORCount() > plain.XORCount() {
			t.Errorf("cerasure k=%d XOR count %d worse than plain %d", p.k, enc.XORCount(), plain.XORCount())
		}
	}
}

func TestDecomposedMatchesFullCode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, p := range []struct{ k, m, w int }{{24, 4, 16}, {48, 4, 16}, {48, 4, 0}, {20, 2, 7}} {
		dec, err := NewDecomposed(p.k, p.m, p.w, nil)
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewEncoder(p.k, p.m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 256)
		want, _ := full.EncodeAppend(data)
		got := randBlocks(r, p.m, 256) // pre-filled garbage: Encode must overwrite
		if err := dec.Encode(data, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("decomposed parity %d differs from full code (k=%d width=%d)", i, p.k, p.w)
			}
		}
		wantGroups := (p.k + max(p.w, 1) - 1) / max(p.w, 1)
		if p.w == 0 {
			wantGroups = (p.k + DefaultDecomposeWidth - 1) / DefaultDecomposeWidth
		}
		if dec.Groups() != wantGroups {
			t.Fatalf("groups = %d, want %d", dec.Groups(), wantGroups)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestScheduleStats(t *testing.T) {
	enc, _ := NewEncoder(4, 2, Options{})
	st := enc.Schedule().Stats(4)
	if st.Ops != len(enc.Schedule()) {
		t.Fatal("Ops mismatch")
	}
	if st.Copies != 2*W {
		t.Fatalf("naive schedule should have one copy per parity packet: got %d want %d", st.Copies, 2*W)
	}
	if st.Copies+st.XORs != st.Ops {
		t.Fatal("copies + xors != ops")
	}
	if st.DataReads+st.ParityRead != st.Ops {
		t.Fatal("reads don't sum to ops")
	}
	if st.ParityRead != 0 {
		t.Fatal("naive schedule should not read parity packets")
	}
}

// Property: encode then decode roundtrips for random parameters and
// random erasure patterns, for both scheduling modes.
func TestQuickEncodeDecodeRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		m := 1 + r.Intn(4)
		enc, err := NewEncoder(k, m, Options{SmartSchedule: seed%2 == 0})
		if err != nil {
			return false
		}
		size := 8 * (1 + r.Intn(64))
		data := randBlocks(r, k, size)
		parity, err := enc.EncodeAppend(data)
		if err != nil {
			return false
		}
		full := append(append([][]byte{}, data...), parity...)
		nMiss := 1 + r.Intn(m)
		missing := r.Perm(k + m)[:nMiss]
		dec, err := enc.NewDecoder(missing)
		if err != nil {
			return false
		}
		work := make([][]byte, len(full))
		copy(work, full)
		for _, e := range missing {
			work[e] = nil
		}
		if err := dec.Decode(work); err != nil {
			return false
		}
		for i := range full {
			if !bytes.Equal(work[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXOREncode_8_4_1K(b *testing.B) {
	enc, err := NewEncoder(8, 4, Options{SmartSchedule: true})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	data := randBlocks(r, 8, 1024)
	parity := randBlocks(r, 4, 1024)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
