package xorec

import (
	"fmt"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// NewCerasure constructs the Cerasure baseline encoder: a greedy
// steepest-descent search over row/column scalings (far fewer
// evaluations than Zerasure's annealing, converges for wide stripes),
// with smart scheduling.
func NewCerasure(k, m int) (*Encoder, error) {
	if k <= 0 || m <= 0 || k+m > gf.FieldSize {
		return nil, fmt.Errorf("xorec: invalid parameters k=%d m=%d", k, m)
	}
	rowScale, colScale := NormalizeCauchy(k, m)
	base := ecmatrix.Cauchy(k, m)
	// Greedy passes: for each column then each row, pick the scale that
	// minimizes that line's bit weight given current other scales.
	// Repeat until a full pass yields no improvement (bounded passes).
	colWeight := func(j int, s byte) int {
		w := 0
		for i := 0; i < m; i++ {
			w += ecmatrix.ElementOnes(gf.Mul(gf.Mul(base.At(k+i, j), rowScale[i]), s))
		}
		return w
	}
	rowWeight := func(i int, s byte) int {
		w := 0
		for j := 0; j < k; j++ {
			w += ecmatrix.ElementOnes(gf.Mul(gf.Mul(base.At(k+i, j), s), colScale[j]))
		}
		return w
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for j := 0; j < k; j++ {
			cur := colWeight(j, colScale[j])
			for s := 1; s < 256; s++ {
				if w := colWeight(j, byte(s)); w < cur {
					cur = w
					colScale[j] = byte(s)
					improved = true
				}
			}
		}
		for i := 0; i < m; i++ {
			cur := rowWeight(i, rowScale[i])
			for s := 1; s < 256; s++ {
				if w := rowWeight(i, byte(s)); w < cur {
					cur = w
					rowScale[i] = byte(s)
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	gen := scaledCauchy(k, m, rowScale, colScale)
	return NewEncoder(k, m, Options{Matrix: gen, SmartSchedule: true})
}

// Decomposed wraps an encoder family to implement the wide-stripe
// decomposition strategy used by Cerasure and by ISA-L-D (§5.1): the k
// data blocks are split into groups of at most Width, each group is
// encoded to m partial parities with a narrow code, and the partial
// parities are XOR-combined into the stripe parity. Decomposition
// re-activates the hardware prefetcher (fewer concurrent streams) at the
// cost of extra partial-parity write and read traffic.
type Decomposed struct {
	k, m, width int
	groups      [][2]int   // [lo, hi) data ranges
	subs        []*Encoder // one narrow encoder per group
}

// DefaultDecomposeWidth is the sub-stripe width used when none is given;
// chosen to sit inside the L2 stream prefetcher's comfortable tracking
// range (16 streams).
const DefaultDecomposeWidth = 16

// NewDecomposed builds a decomposed encoder over groups of at most width
// data blocks. The combined code is the Cauchy code whose parity matrix
// columns are the concatenation of the groups' columns, so the overall
// stripe remains MDS.
func NewDecomposed(k, m, width int, build func(subK, subM int, cols *ecmatrix.Matrix) (*Encoder, error)) (*Decomposed, error) {
	if width <= 0 {
		width = DefaultDecomposeWidth
	}
	if k <= 0 || m <= 0 || k+m > gf.FieldSize {
		return nil, fmt.Errorf("xorec: invalid parameters k=%d m=%d", k, m)
	}
	full := ecmatrix.Cauchy(k, m)
	parity := ecmatrix.ParityRows(full, k)
	d := &Decomposed{k: k, m: m, width: width}
	for lo := 0; lo < k; lo += width {
		hi := lo + width
		if hi > k {
			hi = k
		}
		subK := hi - lo
		// Build the sub-generator: identity on top, the full code's
		// parity columns [lo, hi) below, so partial parities XOR to the
		// stripe parity.
		gen := ecmatrix.New(subK+m, subK)
		for i := 0; i < subK; i++ {
			gen.Set(i, i, 1)
		}
		for i := 0; i < m; i++ {
			for j := 0; j < subK; j++ {
				gen.Set(subK+i, j, parity.At(i, lo+j))
			}
		}
		var enc *Encoder
		var err error
		if build != nil {
			enc, err = build(subK, m, gen)
		} else {
			enc, err = NewEncoder(subK, m, Options{Matrix: gen, SmartSchedule: true})
		}
		if err != nil {
			return nil, err
		}
		d.groups = append(d.groups, [2]int{lo, hi})
		d.subs = append(d.subs, enc)
	}
	return d, nil
}

// K returns the data block count.
func (d *Decomposed) K() int { return d.k }

// M returns the parity block count.
func (d *Decomposed) M() int { return d.m }

// Groups returns the number of sub-stripes.
func (d *Decomposed) Groups() int { return len(d.groups) }

// Width returns the maximum sub-stripe width.
func (d *Decomposed) Width() int { return d.width }

// SubEncoders exposes the per-group encoders (for schedule/trace
// inspection by the simulator).
func (d *Decomposed) SubEncoders() []*Encoder { return d.subs }

// Encode computes stripe parity by combining partial parities of each
// group. parity blocks are overwritten.
func (d *Decomposed) Encode(data, parity [][]byte) error {
	if len(data) != d.k {
		return fmt.Errorf("xorec: got %d data blocks, want %d", len(data), d.k)
	}
	if len(parity) != d.m {
		return fmt.Errorf("xorec: got %d parity blocks, want %d", len(parity), d.m)
	}
	size := -1
	for _, b := range data {
		if size == -1 {
			size = len(b)
		} else if len(b) != size {
			return fmt.Errorf("xorec: data blocks must be equally sized")
		}
	}
	if size <= 0 || size%W != 0 {
		return errPacketAlign
	}
	partial := make([][]byte, d.m)
	for i := range partial {
		partial[i] = make([]byte, size)
		if len(parity[i]) != size {
			return fmt.Errorf("xorec: parity blocks must match data block size")
		}
	}
	for g, rng := range d.groups {
		sub := data[rng[0]:rng[1]]
		if err := d.subs[g].Encode(sub, partial); err != nil {
			return err
		}
		if g == 0 {
			for i := range parity {
				copy(parity[i], partial[i])
			}
		} else {
			for i := range parity {
				gf.AddSlice(parity[i], partial[i])
			}
		}
	}
	return nil
}

// CombinedSchedule flattens the per-group schedules into one stripe
// schedule with global block numbering: data blocks 0..k-1, and group
// g's partial parity i at block k + g*m + i (group 0's partials double
// as the final parity blocks k..k+m-1). After the per-group schedules,
// recombination ops XOR the later groups' partials into group 0's.
// The result is what Program replays for a decomposed encoder: at any
// moment only one group's (≤ Width) data streams are live, which is
// how decomposition re-activates the hardware prefetcher — at the cost
// of the extra partial-parity traffic the paper charges against the
// strategy.
func (d *Decomposed) CombinedSchedule() Schedule {
	var out Schedule
	for g, rng := range d.groups {
		lo := rng[0]
		subK := rng[1] - rng[0]
		for _, op := range d.subs[g].Schedule() {
			mapped := op
			if op.SrcBlock < subK {
				mapped.SrcBlock = lo + op.SrcBlock
			} else {
				mapped.SrcBlock = d.k + g*d.m + (op.SrcBlock - subK)
			}
			if op.DstBlock < subK {
				mapped.DstBlock = lo + op.DstBlock
			} else {
				mapped.DstBlock = d.k + g*d.m + (op.DstBlock - subK)
			}
			out = append(out, mapped)
		}
	}
	for g := 1; g < len(d.groups); g++ {
		for i := 0; i < d.m; i++ {
			for b := 0; b < W; b++ {
				out = append(out, XOROp{
					SrcBlock: d.k + g*d.m + i, SrcBit: b,
					DstBlock: d.k + i, DstBit: b,
				})
			}
		}
	}
	return out
}

// XORCount returns the total packet operations across groups, plus the
// recombination XORs.
func (d *Decomposed) XORCount() int {
	n := 0
	for _, s := range d.subs {
		n += len(s.Schedule())
	}
	// Recombination: (groups-1) * m * W packet XORs.
	n += (len(d.groups) - 1) * d.m * W
	return n
}
