// Package xorec implements XOR-based (bitmatrix) erasure codecs in the
// Jerasure lineage, together with the two optimized baselines the DIALGA
// paper compares against:
//
//   - Zerasure (Zhou & Tian, FAST'19): matrix normalization plus a
//     simulated-annealing search over column/row scalings to minimize the
//     XOR count, combined with smart (delta) scheduling.
//   - Cerasure (Niu et al., ICCD'23): greedy scaling search with fewer
//     evaluations, plus wide-stripe decomposition that splits encoding
//     into narrower sub-stripes and combines partial parities.
//
// Unlike the table-lookup strategy (package isal), XOR codecs convert
// each GF(2^8) coefficient into an 8x8 bit block and evaluate parity as a
// sequence of packet-level XOR operations. This reads data packets
// repeatedly from different locations — the larger memory footprint the
// paper identifies as their weakness on PM (§2.2).
package xorec

import (
	"errors"
	"fmt"

	"dialga/internal/ecmatrix"
	"dialga/internal/gf"
)

// W is the bit width of the field; sub-blocks ("packets") per block.
const W = 8

// XOROp is one packet-level operation in an encoding schedule.
// Destination packet (DstBlock, DstBit) is overwritten (Copy) or
// accumulated (XOR) with source packet (SrcBlock, SrcBit).
//
// Block numbering: 0..k-1 are data blocks, k..k+m-1 are parity blocks
// (so schedules can reference previously computed parity packets).
type XOROp struct {
	SrcBlock, SrcBit int
	DstBlock, DstBit int
	Copy             bool
}

// Schedule is an ordered list of packet XOR operations computing all
// parity packets. Its length is the XOR-count cost metric.
type Schedule []XOROp

// XORCount returns the number of non-copy operations in the schedule.
func (s Schedule) XORCount() int {
	n := 0
	for _, op := range s {
		if !op.Copy {
			n++
		}
	}
	return n
}

// Encoder is an XOR-based encoder for RS(k+m, k) with w=8.
type Encoder struct {
	k, m       int
	gen        *ecmatrix.Matrix    // (k+m) x k systematic generator over GF(2^8)
	parityBM   *ecmatrix.BitMatrix // (m*8) x (k*8) parity bitmatrix
	schedule   Schedule
	smart      bool
	tempBlocks int // scratch blocks needed by CSE temporaries
}

// Options configures Encoder construction.
type Options struct {
	// Matrix overrides the generator matrix; nil selects a systematic
	// Cauchy matrix.
	Matrix *ecmatrix.Matrix
	// SmartSchedule enables delta scheduling (reuse of previously
	// computed parity packets); naive scheduling otherwise.
	SmartSchedule bool
	// CSESchedule enables common-subexpression scheduling (Luo et
	// al.-style pair sharing with temporary packets); takes precedence
	// over SmartSchedule.
	CSESchedule bool
}

// NewEncoder builds an XOR encoder for k data and m parity blocks.
func NewEncoder(k, m int, opts Options) (*Encoder, error) {
	if k <= 0 || m <= 0 || k+m > gf.FieldSize {
		return nil, fmt.Errorf("xorec: invalid parameters k=%d m=%d", k, m)
	}
	gen := opts.Matrix
	if gen == nil {
		gen = ecmatrix.Cauchy(k, m)
	}
	if gen.Rows != k+m || gen.Cols != k {
		return nil, fmt.Errorf("xorec: generator must be %dx%d, got %dx%d", k+m, k, gen.Rows, gen.Cols)
	}
	parity := ecmatrix.ParityRows(gen, k)
	bm := ecmatrix.ToBitMatrix(parity)
	e := &Encoder{k: k, m: m, gen: gen.Clone(), parityBM: bm, smart: opts.SmartSchedule}
	switch {
	case opts.CSESchedule:
		e.schedule = CSESchedule(bm, k, m)
	case opts.SmartSchedule:
		e.schedule = SmartSchedule(bm, k, m)
	default:
		e.schedule = NaiveSchedule(bm, k, m)
	}
	e.tempBlocks = e.schedule.TempBlocks(k, m)
	return e, nil
}

// K returns the data block count.
func (e *Encoder) K() int { return e.k }

// M returns the parity block count.
func (e *Encoder) M() int { return e.m }

// Schedule returns the encoder's XOR schedule (shared storage; treat as
// read-only).
func (e *Encoder) Schedule() Schedule { return e.schedule }

// ParityBitMatrix returns the parity bitmatrix (shared storage; treat as
// read-only).
func (e *Encoder) ParityBitMatrix() *ecmatrix.BitMatrix { return e.parityBM }

// XORCount returns the number of packet XORs per stripe.
func (e *Encoder) XORCount() int { return e.schedule.XORCount() }

var errPacketAlign = errors.New("xorec: block size must be a positive multiple of 8")

// Encode computes parity blocks from data blocks. Block sizes must be
// equal and a multiple of W (=8) bytes so each block splits into 8
// bit-row packets.
func (e *Encoder) Encode(data, parity [][]byte) error {
	size, err := checkStripe(data, parity, e.k, e.m)
	if err != nil {
		return err
	}
	out := parity
	if e.tempBlocks > 0 {
		// CSE schedules write temporaries beyond the parity blocks.
		out = make([][]byte, e.m+e.tempBlocks)
		copy(out, parity)
		for i := e.m; i < len(out); i++ {
			out[i] = make([]byte, size)
		}
	}
	return executeSchedule(e.schedule, data, out, size)
}

// EncodeAppend allocates and returns the parity blocks.
func (e *Encoder) EncodeAppend(data [][]byte) ([][]byte, error) {
	if len(data) != e.k {
		return nil, fmt.Errorf("xorec: got %d data blocks, want %d", len(data), e.k)
	}
	if len(data) == 0 || len(data[0]) == 0 {
		return nil, errPacketAlign
	}
	parity := make([][]byte, e.m)
	for i := range parity {
		parity[i] = make([]byte, len(data[0]))
	}
	if err := e.Encode(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

func checkStripe(data, parity [][]byte, k, m int) (int, error) {
	if len(data) != k {
		return 0, fmt.Errorf("xorec: got %d data blocks, want %d", len(data), k)
	}
	if len(parity) != m {
		return 0, fmt.Errorf("xorec: got %d parity blocks, want %d", len(parity), m)
	}
	size := -1
	for _, b := range data {
		if size == -1 {
			size = len(b)
		}
		if len(b) != size {
			return 0, errors.New("xorec: data blocks must be equally sized")
		}
	}
	for _, b := range parity {
		if len(b) != size {
			return 0, errors.New("xorec: parity blocks must match data block size")
		}
	}
	if size <= 0 || size%W != 0 {
		return 0, errPacketAlign
	}
	return size, nil
}

// executeSchedule runs the packet operations. blocks are addressed with
// the schedule's numbering: 0..k-1 data, k.. parity.
func executeSchedule(sched Schedule, data, parity [][]byte, size int) error {
	ps := size / W
	packet := func(block, bit int) []byte {
		var b []byte
		if block < len(data) {
			b = data[block]
		} else {
			b = parity[block-len(data)]
		}
		return b[bit*ps : (bit+1)*ps]
	}
	for _, op := range sched {
		src := packet(op.SrcBlock, op.SrcBit)
		dst := packet(op.DstBlock, op.DstBit)
		if op.Copy {
			copy(dst, src)
		} else {
			gf.AddSlice(dst, src)
		}
	}
	return nil
}

// LRCSchedule extends an encoder's schedule with l local XOR parities
// (§4.1 "Other Coding Tasks"): data blocks are divided into l groups
// and each group's XOR is written to an additional parity packet. The
// combined schedule computes m global + l local parities into blocks
// k..k+m+l-1 (locals after globals). l must divide k.
func (e *Encoder) LRCSchedule(l int) (Schedule, error) {
	if l <= 0 || e.k%l != 0 {
		return nil, fmt.Errorf("xorec: l=%d must divide k=%d", l, e.k)
	}
	// Global schedule dst blocks are k..k+m-1 already; temporaries (if
	// any) must shift up by l so locals can sit at k+m..k+m+l-1.
	groupSize := e.k / l
	out := make(Schedule, 0, len(e.schedule)+l*groupSize*W)
	for _, op := range e.schedule {
		if op.SrcBlock >= e.k+e.m {
			op.SrcBlock += l
		}
		if op.DstBlock >= e.k+e.m {
			op.DstBlock += l
		}
		out = append(out, op)
	}
	for g := 0; g < l; g++ {
		lo := g * groupSize
		dst := e.k + e.m + g
		for bit := 0; bit < W; bit++ {
			for j := 0; j < groupSize; j++ {
				out = append(out, XOROp{
					SrcBlock: lo + j, SrcBit: bit,
					DstBlock: dst, DstBit: bit,
					Copy: j == 0,
				})
			}
		}
	}
	return out, nil
}

// Decoder holds a decode schedule for a specific erasure pattern.
type Decoder struct {
	k, m      int
	survivors []int
	missing   []int
	schedule  Schedule
	bm        *ecmatrix.BitMatrix
}

// NewDecoder builds a decoder for the given erasure pattern (stripe
// indices of missing blocks) from the encoder's generator matrix. The
// decode bitmatrix is derived from the inverted survivor matrix — the
// paper notes (§5.4) its density is not optimized by encoding-side
// searches, which is why XOR decode underperforms.
func (e *Encoder) NewDecoder(missing []int) (*Decoder, error) {
	if len(missing) == 0 {
		return nil, errors.New("xorec: nothing to decode")
	}
	if len(missing) > e.m {
		return nil, fmt.Errorf("xorec: %d erasures exceed m=%d", len(missing), e.m)
	}
	isMissing := make(map[int]bool, len(missing))
	for _, i := range missing {
		if i < 0 || i >= e.k+e.m {
			return nil, fmt.Errorf("xorec: erasure index %d out of range", i)
		}
		isMissing[i] = true
	}
	var survivors []int
	for i := 0; i < e.k+e.m && len(survivors) < e.k; i++ {
		if !isMissing[i] {
			survivors = append(survivors, i)
		}
	}
	if len(survivors) < e.k {
		return nil, fmt.Errorf("xorec: only %d survivors for k=%d", len(survivors), e.k)
	}
	sub := e.gen.SubMatrix(survivors)
	inv, err := sub.Invert()
	if err != nil {
		return nil, err
	}
	// Rows to reconstruct: for data block d, row = inv.Row(d); for a
	// missing parity p, row = parityRow(p) * inv (coefficients over the
	// survivors).
	var missingSorted []int
	for i := 0; i < e.k+e.m; i++ {
		if isMissing[i] {
			missingSorted = append(missingSorted, i)
		}
	}
	dec := ecmatrix.New(len(missingSorted), e.k)
	parityM := ecmatrix.ParityRows(e.gen, e.k)
	for r, idx := range missingSorted {
		if idx < e.k {
			copy(dec.Row(r), inv.Row(idx))
			continue
		}
		// parity row composed with inverse.
		prow := parityM.Row(idx - e.k)
		for j := 0; j < e.k; j++ {
			var acc byte
			for t := 0; t < e.k; t++ {
				acc ^= gf.Mul(prow[t], inv.At(t, j))
			}
			dec.Set(r, j, acc)
		}
	}
	bm := ecmatrix.ToBitMatrix(dec)
	sched := NaiveSchedule(bm, e.k, len(missingSorted))
	return &Decoder{k: e.k, m: e.m, survivors: survivors, missing: missingSorted, schedule: sched, bm: bm}, nil
}

// Schedule returns the decode schedule.
func (d *Decoder) Schedule() Schedule { return d.schedule }

// BitMatrix returns the decode bitmatrix.
func (d *Decoder) BitMatrix() *ecmatrix.BitMatrix { return d.bm }

// Missing returns the stripe indices this decoder reconstructs.
func (d *Decoder) Missing() []int { return append([]int(nil), d.missing...) }

// Decode reconstructs the missing blocks. blocks is the full stripe
// (k+m entries, stripe order) with nil at missing positions; outputs are
// written into freshly allocated slices placed back into blocks.
func (d *Decoder) Decode(blocks [][]byte) error {
	if len(blocks) != d.k+d.m {
		return fmt.Errorf("xorec: stripe has %d blocks, want %d", len(blocks), d.k+d.m)
	}
	size := -1
	for _, s := range d.survivors {
		if blocks[s] == nil {
			return fmt.Errorf("xorec: survivor block %d is nil", s)
		}
		if size == -1 {
			size = len(blocks[s])
		} else if len(blocks[s]) != size {
			return errors.New("xorec: survivor blocks must be equally sized")
		}
	}
	if size <= 0 || size%W != 0 {
		return errPacketAlign
	}
	srcs := make([][]byte, d.k)
	for i, s := range d.survivors {
		srcs[i] = blocks[s]
	}
	outs := make([][]byte, len(d.missing))
	for i := range outs {
		outs[i] = make([]byte, size)
	}
	if err := executeSchedule(d.schedule, srcs, outs, size); err != nil {
		return err
	}
	for i, idx := range d.missing {
		blocks[idx] = outs[i]
	}
	return nil
}
