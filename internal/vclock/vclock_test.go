package vclock

import (
	"testing"
	"time"
)

func TestFakeTimerFiresOnAdvance(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(10 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	f.Advance(9 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	f.Advance(time.Millisecond)
	select {
	case at := <-tm.C():
		if got := at.Sub(time.Unix(1_700_000_000, 0)); got != 10*time.Millisecond {
			t.Fatalf("fire time offset = %v, want 10ms", got)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestFakeTimerStopAndReset(t *testing.T) {
	f := NewFake()
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on an armed timer reported inactive")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported active")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	tm.Reset(time.Second)
	f.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
	// Reset after firing re-arms (the group's hedge timer relies on
	// stop-drain-reset cycles).
	tm.Reset(time.Second)
	f.Advance(time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("re-reset timer did not fire")
	}
}

func TestFakeTickerCoalescesAndStops(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(10 * time.Millisecond)
	// Three periods elapse with nobody draining: the capacity-1 channel
	// coalesces to one pending tick, like time.Ticker.
	f.Advance(30 * time.Millisecond)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("undrained ticker delivered %d ticks, want 1 (coalesced)", n)
	}
	// Drained each period, it delivers each tick.
	f.Advance(10 * time.Millisecond)
	<-tk.C()
	f.Advance(10 * time.Millisecond)
	<-tk.C()
	tk.Stop()
	f.Advance(50 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestFakeFiringOrderIsDeadlineOrder(t *testing.T) {
	f := NewFake()
	late := f.NewTimer(20 * time.Millisecond)
	early := f.NewTimer(5 * time.Millisecond)
	f.Advance(30 * time.Millisecond)
	a := <-early.C()
	b := <-late.C()
	if !a.Before(b) {
		t.Fatalf("fire times out of order: early=%v late=%v", a, b)
	}
}

func TestFakeBlockUntil(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.BlockUntil(1)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("BlockUntil(1) returned with no waiters")
	case <-time.After(5 * time.Millisecond):
	}
	f.NewTimer(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("BlockUntil(1) did not return after a timer was armed")
	}
}

func TestOrReal(t *testing.T) {
	if OrReal(nil) == nil {
		t.Fatal("OrReal(nil) returned nil")
	}
	fk := NewFake()
	if OrReal(fk) != Clock(fk) {
		t.Fatal("OrReal did not pass through a non-nil clock")
	}
	// Real clock sanity: Now advances, timers fire.
	c := Real()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
}
