// Package vclock is a minimal virtual-clock seam: an interface over
// time.Now / time.NewTimer / time.NewTicker with a real implementation
// and a deterministic fake.
//
// The adaptive controller (internal/adapt), the shard-I/O scheduler
// (internal/shardio), and their tests all take a Clock instead of
// calling the time package directly, so every time-driven decision —
// breaker cooldowns, hedge deadlines, controller ticks — can be
// replayed exactly from a scripted schedule with no real sleeping. A
// nil Clock everywhere means "wall clock", so production code pays one
// nil check and no behaviour change.
package vclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) Ticker
	// After returns a channel that receives the fire time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Timer is the injectable face of *time.Timer. Stop and Reset carry
// the *time.Timer contract: Reset must only be called on stopped or
// drained timers.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration)
}

// Ticker is the injectable face of *time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real returns the wall-clock implementation.
func Real() Clock { return realClock{} }

// OrReal returns c, or the wall clock when c is nil — the one-liner
// every Options.Clock consumer uses.
func OrReal(c Clock) Clock {
	if c == nil {
		return realClock{}
	}
	return c
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker       { return realTicker{time.NewTicker(d)} }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time   { return t.t.C }
func (t realTimer) Stop() bool            { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) { t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Fake is a deterministic Clock: time advances only when a test calls
// Advance (or Set), and every timer/ticker whose deadline is reached
// fires synchronously inside that call, in deadline order. All methods
// are safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
	blocked *sync.Cond // signalled whenever the waiter set changes
}

// NewFake returns a fake clock starting at a fixed, arbitrary epoch
// (determinism beats realism: the same test run always sees the same
// absolute times).
func NewFake() *Fake {
	f := &Fake{now: time.Unix(1_700_000_000, 0)}
	f.blocked = sync.NewCond(&f.mu)
	return f
}

// fakeWaiter is one pending timer/ticker/After registration.
type fakeWaiter struct {
	at     time.Time
	period time.Duration // 0: one-shot
	ch     chan time.Time
	dead   bool
}

func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Set jumps the clock to t (monotone: earlier times are ignored),
// firing everything due on the way.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceTo(t)
}

// Advance moves the clock forward by d, firing due timers and tickers
// in deadline order. A ticker due several times within d fires once
// per period.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.advanceTo(f.now.Add(d))
}

// advanceTo fires waiters in deadline order up to target; caller holds
// f.mu. Sends are non-blocking after the first buffered slot: timer
// channels have capacity 1 like the time package's, and a ticker that
// nobody drained coalesces missed ticks, matching time.Ticker.
func (f *Fake) advanceTo(target time.Time) {
	for {
		var next *fakeWaiter
		for _, w := range f.waiters {
			if w.dead || w.at.After(target) {
				continue
			}
			if next == nil || w.at.Before(next.at) {
				next = w
			}
		}
		if next == nil {
			break
		}
		f.now = next.at
		select {
		case next.ch <- next.at:
		default:
		}
		if next.period > 0 {
			next.at = next.at.Add(next.period)
		} else {
			next.dead = true
		}
	}
	if target.After(f.now) {
		f.now = target
	}
	f.gc()
}

// gc drops dead waiters; caller holds f.mu.
func (f *Fake) gc() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.dead {
			live = append(live, w)
		}
	}
	f.waiters = live
}

// add registers a waiter and wakes BlockUntil callers.
func (f *Fake) add(w *fakeWaiter) {
	f.mu.Lock()
	f.waiters = append(f.waiters, w)
	f.blocked.Broadcast()
	f.mu.Unlock()
}

// Waiters returns the number of live pending timers/tickers — the
// test-side rendezvous for "has the code under test armed its timer
// yet?".
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.dead {
			n++
		}
	}
	return n
}

// BlockUntil returns once at least n live waiters are registered.
// Tests call it before Advance so the goroutine under test is known to
// be parked on the clock, eliminating the arm/advance race that makes
// wall-clock tests flaky.
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		live := 0
		for _, w := range f.waiters {
			if !w.dead {
				live++
			}
		}
		if live >= n {
			return
		}
		f.blocked.Wait()
	}
}

func (f *Fake) NewTimer(d time.Duration) Timer {
	w := &fakeWaiter{ch: make(chan time.Time, 1)}
	f.mu.Lock()
	w.at = f.now.Add(d)
	f.waiters = append(f.waiters, w)
	f.blocked.Broadcast()
	if d <= 0 {
		f.advanceTo(f.now)
	}
	f.mu.Unlock()
	return &fakeTimer{f: f, w: w}
}

func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	w := &fakeWaiter{period: d, ch: make(chan time.Time, 1)}
	f.mu.Lock()
	w.at = f.now.Add(d)
	f.waiters = append(f.waiters, w)
	f.blocked.Broadcast()
	f.mu.Unlock()
	return &fakeTicker{f: f, w: w}
}

func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C()
}

type fakeTimer struct {
	f *Fake
	w *fakeWaiter
}

func (t *fakeTimer) C() <-chan time.Time { return t.w.ch }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	active := !t.w.dead
	t.w.dead = true
	return active
}

func (t *fakeTimer) Reset(d time.Duration) {
	t.f.mu.Lock()
	t.w.dead = false
	t.w.at = t.f.now.Add(d)
	// Reset may revive a fired (gc'd) waiter: re-register if absent.
	found := false
	for _, w := range t.f.waiters {
		if w == t.w {
			found = true
			break
		}
	}
	if !found {
		t.f.waiters = append(t.f.waiters, t.w)
	}
	t.f.blocked.Broadcast()
	t.f.mu.Unlock()
}

type fakeTicker struct {
	f *Fake
	w *fakeWaiter
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }

func (t *fakeTicker) Stop() {
	t.f.mu.Lock()
	t.w.dead = true
	t.f.mu.Unlock()
}

// Deadlines returns the pending fire times, soonest first — a debug
// aid for tests asserting on the armed schedule.
func (f *Fake) Deadlines() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []time.Time
	for _, w := range f.waiters {
		if !w.dead {
			out = append(out, w.at)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
