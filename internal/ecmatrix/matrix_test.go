package ecmatrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dialga/internal/gf"
)

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := New(5, 5)
	r.Read(m.Data)
	id := Identity(5)
	left := Mul(id, m)
	right := Mul(m, id)
	for i := range m.Data {
		if left.Data[i] != m.Data[i] || right.Data[i] != m.Data[i] {
			t.Fatal("identity multiplication changed the matrix")
		}
	}
}

func TestInvertRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(12)
		m := New(n, n)
		// Random matrices over GF(256) are invertible with high
		// probability; retry until one is.
		var inv *Matrix
		var err error
		for {
			r.Read(m.Data)
			inv, err = m.Invert()
			if err == nil {
				break
			}
		}
		prod := Mul(m, inv)
		id := Identity(n)
		for i := range prod.Data {
			if prod.Data[i] != id.Data[i] {
				t.Fatalf("m * m^-1 != I for n=%d", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := New(3, 3)
	// Two identical rows => singular.
	for c := 0; c < 3; c++ {
		m.Set(0, c, byte(c+1))
		m.Set(1, c, byte(c+1))
		m.Set(2, c, byte(7*c+3))
	}
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := New(4, 6)
	r.Read(a.Data)
	x := make([]byte, 6)
	r.Read(x)
	got := a.MulVec(x)
	// Compare with Mul against a 6x1 matrix.
	xm := New(6, 1)
	copy(xm.Data, x)
	want := Mul(a, xm)
	for i := 0; i < 4; i++ {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec differs at row %d", i)
		}
	}
}

func systematicTopIsIdentity(t *testing.T, gen *Matrix, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if gen.At(i, j) != want {
				t.Fatalf("systematic top block not identity at (%d,%d)", i, j)
			}
		}
	}
}

// Every k x k submatrix of an MDS generator must be invertible; check a
// sample of survivor sets including all-parity-heavy ones.
func checkMDS(t *testing.T, gen *Matrix, k, m int) {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	total := k + m
	for trial := 0; trial < 60; trial++ {
		rows := r.Perm(total)[:k]
		sub := gen.SubMatrix(rows)
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("survivor set %v not invertible (k=%d m=%d)", rows, k, m)
		}
	}
}

func TestVandermondeSystematicMDS(t *testing.T) {
	for _, kp := range []struct{ k, m int }{{2, 2}, {4, 2}, {8, 4}, {10, 4}, {24, 4}, {48, 4}, {20, 8}} {
		gen := Vandermonde(kp.k, kp.m)
		systematicTopIsIdentity(t, gen, kp.k)
		checkMDS(t, gen, kp.k, kp.m)
	}
}

func TestCauchySystematicMDS(t *testing.T) {
	for _, kp := range []struct{ k, m int }{{2, 2}, {4, 2}, {8, 4}, {24, 4}, {48, 4}, {64, 4}} {
		gen := Cauchy(kp.k, kp.m)
		systematicTopIsIdentity(t, gen, kp.k)
		checkMDS(t, gen, kp.k, kp.m)
	}
}

func TestParityRows(t *testing.T) {
	gen := Cauchy(6, 3)
	p := ParityRows(gen, 6)
	if p.Rows != 3 || p.Cols != 6 {
		t.Fatalf("ParityRows wrong shape %dx%d", p.Rows, p.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			if p.At(i, j) != gen.At(6+i, j) {
				t.Fatal("ParityRows content mismatch")
			}
		}
	}
}

// The bitmatrix expansion must agree with GF(2^8) arithmetic: multiplying
// the expanded matrix by the bit-decomposition of a vector equals the
// bit-decomposition of the GF product.
func TestBitMatrixMatchesFieldArithmetic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := New(3, 4)
	r.Read(m.Data)
	bm := ToBitMatrix(m)
	if bm.Rows != 24 || bm.Cols != 32 {
		t.Fatalf("bitmatrix shape %dx%d", bm.Rows, bm.Cols)
	}
	for trial := 0; trial < 200; trial++ {
		x := make([]byte, 4)
		r.Read(x)
		want := m.MulVec(x)
		xbits := make([]bool, 32)
		for j, v := range x {
			for i := 0; i < 8; i++ {
				xbits[j*8+i] = v&(1<<uint(i)) != 0
			}
		}
		gotBits := bm.BitMatrixVecMul(xbits)
		for rIdx, wv := range want {
			var got byte
			for i := 0; i < 8; i++ {
				if gotBits[rIdx*8+i] {
					got |= 1 << uint(i)
				}
			}
			if got != wv {
				t.Fatalf("bitmatrix product differs at row %d: got %d want %d", rIdx, got, wv)
			}
		}
	}
}

func TestBitMatrixOnes(t *testing.T) {
	b := NewBitMatrix(2, 3)
	b.Set(0, 0, true)
	b.Set(1, 2, true)
	b.Set(1, 1, true)
	if b.Ones() != 3 {
		t.Fatalf("Ones = %d, want 3", b.Ones())
	}
	if b.RowOnes(0) != 1 || b.RowOnes(1) != 2 {
		t.Fatal("RowOnes wrong")
	}
}

func TestBitMatrixIdentityExpansion(t *testing.T) {
	id := Identity(3)
	bm := ToBitMatrix(id)
	if bm.Ones() != 24 {
		t.Fatalf("identity expansion should have exactly 24 ones, got %d", bm.Ones())
	}
	for i := 0; i < 24; i++ {
		if !bm.At(i, i) {
			t.Fatalf("identity expansion missing diagonal bit %d", i)
		}
	}
}

// Property: inverting twice returns the original matrix.
func TestQuickDoubleInvert(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := New(n, n)
		var inv *Matrix
		var err error
		for {
			r.Read(m.Data)
			inv, err = m.Invert()
			if err == nil {
				break
			}
		}
		back, err := inv.Invert()
		if err != nil {
			return false
		}
		for i := range m.Data {
			if back.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Cross-check Vandermonde parity encoding against direct evaluation for a
// tiny code where parity has a closed form: with k=1 the single parity
// row must be a nonzero scalar (any survivor works).
func TestDegenerateSingleData(t *testing.T) {
	gen := Vandermonde(1, 2)
	if gen.At(0, 0) != 1 {
		t.Fatal("systematic k=1 top must be [1]")
	}
	for i := 1; i < 3; i++ {
		if gen.At(i, 0) == 0 {
			t.Fatal("parity coefficient must be nonzero for MDS")
		}
	}
	_ = gf.Mul(gen.At(1, 0), 1)
}
