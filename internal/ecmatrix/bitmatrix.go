package ecmatrix

import "dialga/internal/gf"

// BitMatrix is a matrix over GF(2) used by XOR-based codecs. A w=8
// expansion maps each GF(2^8) element to an 8x8 binary block, so a
// (k+m) x k generator over GF(2^8) becomes an (8(k+m)) x (8k) bitmatrix
// whose parity portion drives pure-XOR encoding.
type BitMatrix struct {
	Rows, Cols int
	Bits       []bool // row-major
}

// NewBitMatrix returns a zero bitmatrix.
func NewBitMatrix(rows, cols int) *BitMatrix {
	return &BitMatrix{Rows: rows, Cols: cols, Bits: make([]bool, rows*cols)}
}

// At returns bit (r, c).
func (b *BitMatrix) At(r, c int) bool { return b.Bits[r*b.Cols+c] }

// Set assigns bit (r, c).
func (b *BitMatrix) Set(r, c int, v bool) { b.Bits[r*b.Cols+c] = v }

// Row returns row r aliasing internal storage.
func (b *BitMatrix) Row(r int) []bool { return b.Bits[r*b.Cols : (r+1)*b.Cols] }

// Clone returns a deep copy.
func (b *BitMatrix) Clone() *BitMatrix {
	n := NewBitMatrix(b.Rows, b.Cols)
	copy(n.Bits, b.Bits)
	return n
}

// Ones returns the number of set bits; for an XOR codec this counts the
// XOR/copy operations per w-bit column of data, the cost metric Zerasure
// and Cerasure minimize.
func (b *BitMatrix) Ones() int {
	n := 0
	for _, v := range b.Bits {
		if v {
			n++
		}
	}
	return n
}

// RowOnes returns the number of set bits in row r.
func (b *BitMatrix) RowOnes(r int) int {
	n := 0
	for _, v := range b.Row(r) {
		if v {
			n++
		}
	}
	return n
}

// elementColumns returns the 8x8 binary expansion of e: column j of the
// block is the bit pattern of e * x^j, matching Jerasure's
// jerasure_matrix_to_bitmatrix construction for w=8.
func elementColumns(e byte) [8]byte {
	var cols [8]byte
	v := e
	for j := 0; j < 8; j++ {
		cols[j] = v
		v = gf.Mul(v, 2)
	}
	return cols
}

// ElementOnes returns the number of set bits in the 8x8 binary expansion
// of e — the XOR weight contribution of a single GF(2^8) coefficient.
func ElementOnes(e byte) int {
	cols := elementColumns(e)
	n := 0
	for _, c := range cols {
		for v := c; v != 0; v &= v - 1 {
			n++
		}
	}
	return n
}

// ToBitMatrix expands a GF(2^8) matrix into its w=8 binary form.
func ToBitMatrix(m *Matrix) *BitMatrix {
	const w = 8
	out := NewBitMatrix(m.Rows*w, m.Cols*w)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			cols := elementColumns(m.At(r, c))
			for j := 0; j < w; j++ {
				col := cols[j]
				for i := 0; i < w; i++ {
					if col&(1<<uint(i)) != 0 {
						out.Set(r*w+i, c*w+j, true)
					}
				}
			}
		}
	}
	return out
}

// BitMatrixVecMul multiplies the bitmatrix by a bit-vector (one bool per
// column) over GF(2); used for verifying the expansion against GF(2^8)
// arithmetic in tests.
func (b *BitMatrix) BitMatrixVecMul(x []bool) []bool {
	if len(x) != b.Cols {
		panic("ecmatrix: bit vector length mismatch")
	}
	out := make([]bool, b.Rows)
	for r := 0; r < b.Rows; r++ {
		row := b.Row(r)
		acc := false
		for c, v := range row {
			if v && x[c] {
				acc = !acc
			}
		}
		out[r] = acc
	}
	return out
}
