// Package ecmatrix provides matrices over GF(2^8) for erasure-code
// construction: Vandermonde and Cauchy generator matrices, Gaussian
// inversion for decoding, and the w=8 bitmatrix expansion used by
// XOR-based codecs (Jerasure/Zerasure/Cerasure lineage).
package ecmatrix

import (
	"errors"
	"fmt"

	"dialga/internal/gf"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// New returns a zero Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("ecmatrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := New(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("ecmatrix: dimension mismatch in Mul")
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			mrow := gf.MulRow(av)
			for j := 0; j < b.Cols; j++ {
				orow[j] ^= mrow[brow[j]]
			}
		}
	}
	return out
}

// MulVec returns a*x for a column vector x (len a.Cols).
func (m *Matrix) MulVec(x []byte) []byte {
	if len(x) != m.Cols {
		panic("ecmatrix: vector length mismatch")
	}
	out := make([]byte, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc byte
		for j, c := range row {
			acc ^= gf.Mul(c, x[j])
		}
		out[i] = acc
	}
	return out
}

// ErrSingular is returned when a matrix passed to Invert has no inverse,
// i.e. the chosen survivor set cannot reconstruct the stripe.
var ErrSingular = errors.New("ecmatrix: matrix is singular")

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("ecmatrix: Invert on non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Scale pivot row to 1.
		pv := work.At(col, col)
		if pv != 1 {
			scale := gf.Inv(pv)
			scaleRow(work.Row(col), scale)
			scaleRow(inv.Row(col), scale)
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work.Row(r), work.Row(col), f)
			addScaledRow(inv.Row(r), inv.Row(col), f)
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(row []byte, c byte) {
	mrow := gf.MulRow(c)
	for i := range row {
		row[i] = mrow[row[i]]
	}
}

func addScaledRow(dst, src []byte, c byte) {
	mrow := gf.MulRow(c)
	for i := range dst {
		dst[i] ^= mrow[src[i]]
	}
}

// SubMatrix returns the matrix formed by the given rows (in order).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := New(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Vandermonde returns the (k+m) x k extended-Vandermonde generator matrix
// in systematic form: the top k rows are the identity, and the bottom m
// rows are derived by Gaussian elimination from a raw Vandermonde matrix,
// guaranteeing that every k x k submatrix of the result is invertible.
func Vandermonde(k, m int) *Matrix {
	if k <= 0 || m < 0 || k+m > gf.FieldSize {
		panic(fmt.Sprintf("ecmatrix: invalid Vandermonde parameters k=%d m=%d", k, m))
	}
	raw := New(k+m, k)
	for r := 0; r < k+m; r++ {
		for c := 0; c < k; c++ {
			raw.Set(r, c, gf.Pow(byte(r), c))
		}
	}
	// Systematize: reduce the top k x k block to identity by column
	// operations applied to the whole matrix.
	top := raw.SubMatrix(seq(k))
	topInv, err := top.Invert()
	if err != nil {
		panic("ecmatrix: raw Vandermonde top block singular (impossible for distinct points)")
	}
	return Mul(raw, topInv)
}

// Cauchy returns the (k+m) x k systematic Cauchy generator matrix:
// identity on top, and parity rows p[i][j] = 1/(x_i + y_j) with
// x_i = k+i, y_j = j, which are distinct elements of GF(2^8).
func Cauchy(k, m int) *Matrix {
	if k <= 0 || m < 0 || k+m > gf.FieldSize {
		panic(fmt.Sprintf("ecmatrix: invalid Cauchy parameters k=%d m=%d", k, m))
	}
	out := New(k+m, k)
	for i := 0; i < k; i++ {
		out.Set(i, i, 1)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			out.Set(k+i, j, gf.Inv(byte(k+i)^byte(j)))
		}
	}
	return out
}

// ParityRows returns the m x k parity portion of a systematic (k+m) x k
// generator matrix.
func ParityRows(gen *Matrix, k int) *Matrix {
	m := gen.Rows - k
	out := New(m, k)
	for i := 0; i < m; i++ {
		copy(out.Row(i), gen.Row(k+i))
	}
	return out
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
