package shardio

import (
	"bytes"
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dialga/internal/obs"
)

// countReader counts completed Reads — the rendezvous tests use to
// know a shard goroutine has finished prefetching before any request
// is issued.
type countReader struct {
	r     io.Reader
	reads atomic.Int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.reads.Add(1)
	return n, err
}

// waitReads polls (no sleeps, bounded by deadline) until every counter
// reaches want.
func waitReads(t *testing.T, crs []*countReader, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, c := range crs {
			if c.reads.Load() < want {
				done = false
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("prefetch did not reach %d reads per shard", want)
		}
	}
}

// TestReadaheadServesFromBuffer creates a group with readahead enabled
// and waits for every shard to prefetch its full depth before issuing
// the first request. Stripe 0 and 1 must then be readahead hits on
// every shard, and the delivered bytes must be the prefetched ones —
// not re-reads.
func TestReadaheadServesFromBuffer(t *testing.T) {
	const n, stripes, depth = 3, 6, 2
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	crs := make([]*countReader, n)
	for i := range readers {
		crs[i] = &countReader{r: bytes.NewReader(shards[i])}
		readers[i] = crs[i]
	}
	reg := obs.NewRegistry()
	g := newTestGroup(t, readers, Options{Quorum: n, Readahead: depth, Metrics: reg})
	waitReads(t, crs, depth)

	hits := reg.Counter("shardio_readahead_hits_total", "")
	for s := 0; s < stripes; s++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatalf("stripe %d: %v", s, err)
		}
		for i := 0; i < n; i++ {
			want := shards[i][s*testBlock : (s+1)*testBlock]
			if !bytes.Equal(st.Blocks[i], want) {
				t.Fatalf("stripe %d shard %d: wrong bytes from readahead path", s, i)
			}
		}
		st.Release()
	}
	// The first depth stripes per shard were buffered before any
	// request existed, so at least n*depth hits are guaranteed; later
	// stripes may or may not hit depending on scheduling.
	if got := hits.Value(); got < n*depth {
		t.Fatalf("readahead hits = %d, want >= %d", got, n*depth)
	}
	// Clean EOF after the last stripe must flow through the readahead
	// path too: every shard's terminal marker reports StateEOF.
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if st.States[i] != StateEOF {
			t.Fatalf("post-stream shard %d state = %v, want StateEOF", i, st.States[i])
		}
	}
	st.Release()
}

// TestServeFromReadaheadQueue pins the queue semantics directly:
// skipped stripes are useless prefetches, a matching stripe is a hit
// with the buffers swapped, and a terminal marker answers any later
// request.
func TestServeFromReadaheadQueue(t *testing.T) {
	reg := obs.NewRegistry()
	g := &Group{pool: newBlockPool(4)}
	g.raHits = reg.Counter("shardio_readahead_hits_total", "")
	g.raUseless = reg.Counter("shardio_readahead_useless_total", "")

	mkbuf := func(fill byte) []byte {
		b := g.pool.get()
		for i := range b {
			b[i] = fill
		}
		return b
	}

	// Empty queue: not served.
	ra := []raBlock{}
	res := result{buf: g.pool.get()}
	if g.serveFromReadahead(&ra, request{seq: 0, buf: res.buf}, &res) {
		t.Fatal("empty queue reported served")
	}

	// Queue [0,1,2], request seq 2: 0 and 1 useless, 2 is a hit.
	ra = []raBlock{
		{seq: 0, buf: mkbuf(0xa0), dur: time.Millisecond},
		{seq: 1, buf: mkbuf(0xa1), dur: time.Millisecond},
		{seq: 2, buf: mkbuf(0xa2), dur: 7 * time.Millisecond, retries: 1, transients: 1},
	}
	res = result{buf: g.pool.get()}
	if !g.serveFromReadahead(&ra, request{seq: 2, buf: res.buf}, &res) {
		t.Fatal("hit not served")
	}
	if len(ra) != 0 {
		t.Fatalf("queue left with %d entries, want 0", len(ra))
	}
	if res.buf[0] != 0xa2 {
		t.Fatalf("served buffer byte = %#x, want the prefetched 0xa2", res.buf[0])
	}
	if res.dur != 7*time.Millisecond || res.retries != 1 || res.transients != 1 {
		t.Fatalf("hit did not carry the measured read stats: %+v", res)
	}
	if got := reg.Counter("shardio_readahead_useless_total", "").Value(); got != 2 {
		t.Fatalf("useless = %d, want 2", got)
	}
	if got := reg.Counter("shardio_readahead_hits_total", "").Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}

	// Terminal EOF marker at seq 4 answers a request for seq 9.
	ra = []raBlock{{seq: 4, eof: true}}
	res = result{buf: g.pool.get()}
	if !g.serveFromReadahead(&ra, request{seq: 9, buf: res.buf}, &res) {
		t.Fatal("eof marker not served")
	}
	if !res.eof || res.err != nil || res.buf != nil {
		t.Fatalf("eof result = %+v, want eof with nil buf", res)
	}
}

// settableTuning is a TuningSource tests flip between stripes.
type settableTuning struct {
	mu sync.Mutex
	t  Tuning
}

func (s *settableTuning) set(t Tuning) {
	s.mu.Lock()
	s.t = t
	s.mu.Unlock()
}

func (s *settableTuning) ShardTuning() Tuning {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t
}

// TestTuningRetunesAtStripeBoundary drives a group with a TuningSource
// and checks the dynamic knobs move at the next Next call: readahead
// depth lands in the gauge and the deadline multiplier/hedge interval
// overrides take effect without recreating the group.
func TestTuningRetunesAtStripeBoundary(t *testing.T) {
	const n, stripes = 3, 4
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	reg := obs.NewRegistry()
	src := &settableTuning{}
	src.set(Tuning{Readahead: -1}) // leave static at first
	g := newTestGroup(t, readers, Options{
		Quorum:     n,
		HedgeAfter: 50 * time.Millisecond,
		Tuning:     src,
		Metrics:    reg,
	})

	depthG := reg.Gauge("shardio_readahead_depth", "")
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st.Release()
	if depthG.Value() != 0 {
		t.Fatalf("depth gauge = %v before tuning, want 0", depthG.Value())
	}
	if g.deadlineMult != g.opts.DeadlineMult {
		t.Fatalf("deadlineMult drifted with a static tuning: %v", g.deadlineMult)
	}

	src.set(Tuning{Readahead: 3, DeadlineMult: 9.5, HedgeAfter: 5 * time.Millisecond})
	st, err = g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st.Release()
	if depthG.Value() != 3 {
		t.Fatalf("depth gauge = %v after tuning, want 3", depthG.Value())
	}
	if g.readahead.Load() != 3 {
		t.Fatalf("readahead knob = %d, want 3", g.readahead.Load())
	}
	if g.deadlineMult != 9.5 {
		t.Fatalf("deadlineMult = %v, want 9.5", g.deadlineMult)
	}
	if g.hedgeAfter != 5*time.Millisecond {
		t.Fatalf("hedgeAfter = %v, want 5ms", g.hedgeAfter)
	}

	// Out-of-range values leave the knobs alone; readahead 0 disables.
	src.set(Tuning{Readahead: 0, DeadlineMult: 0.5, HedgeAfter: -time.Second})
	st, err = g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st.Release()
	if g.readahead.Load() != 0 || depthG.Value() != 0 {
		t.Fatal("readahead 0 did not disable prefetching")
	}
	if g.deadlineMult != 9.5 || g.hedgeAfter != 5*time.Millisecond {
		t.Fatalf("invalid tuning moved knobs: mult=%v hedge=%v", g.deadlineMult, g.hedgeAfter)
	}
}
