package shardio

import (
	"context"
	"io"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dialga/internal/obs"
	"dialga/internal/vclock"
)

// shardMeta is the gather loop's per-shard state. It is owned by the
// single consumer goroutine; the shard goroutines never touch it.
type shardMeta struct {
	missing bool
	dead    bool
	deadErr error
	eof     bool

	outstanding    bool      // a request is in flight
	outstandingSeq int64     // its stripe
	late           *lateSlot // armed slot of the stripe that hedged past the read
	lateSeq        int64

	ewma EWMA // block-read latency tracker

	misses    int // consecutive adaptive-deadline misses (breaker input)
	trips     int // total breaker trips (sets the cooldown backoff)
	open      bool
	openUntil time.Time

	// Registry series for this shard; nil (no-op) without
	// Options.Metrics.
	ewmaG  *obs.Gauge   // shardio_shard_ewma_us
	openG  *obs.Gauge   // shardio_breaker_open: 1 while the breaker is open
	tripsC *obs.Counter // shardio_breaker_trips_total
}

func (m *shardMeta) observe(d time.Duration) {
	m.ewma.Observe(d)
	m.ewmaG.Set(m.ewma.Micros())
}

// Group schedules block reads across a stripe's shard readers. Create
// one per decode with NewGroup, call Next once per stripe from a
// single goroutine, and Close when done.
type Group struct {
	opts    Options
	clock   vclock.Clock
	n       int
	readers []io.Reader
	req     []chan request
	results chan result
	pool    *blockPool

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	seq int64
	sh  []shardMeta

	// Dynamic knobs. deadlineMult and hedgeAfter are owned by the
	// single consumer goroutine and re-loaded from Options.Tuning at
	// every stripe boundary; readahead is additionally read by the
	// shard goroutines between block reads, so it is atomic. Without a
	// TuningSource they stay at their static Options values forever.
	deadlineMult float64
	hedgeAfter   time.Duration
	readahead    atomic.Int32

	// Steady-state reuse: gathering a stripe — hedged or not — must not
	// allocate. Stripes cycle through a pool (Release returns them),
	// the hedge timer is reset rather than recreated, and the gather
	// loop's awaited flags and the deadline's EWMA gather reuse
	// group-owned scratch (all owned by the single consumer goroutine).
	stripes     sync.Pool
	timer       vclock.Timer
	awaited     []bool
	ewmaScratch []float64

	// Group-wide registry series; nil (no-op) without Options.Metrics.
	deadlineG   *obs.Gauge   // shardio_deadline_us: last adaptive deadline
	hedgedC     *obs.Counter // shardio_hedged_stripes_total
	lateClaimed *obs.Counter // shardio_late_blocks_claimed_total
	lateDropped *obs.Counter // shardio_late_blocks_dropped_total
	raDepthG    *obs.Gauge   // shardio_readahead_depth: current depth knob
	raHits      *obs.Counter // shardio_readahead_hits_total
	raUseless   *obs.Counter // shardio_readahead_useless_total
}

// NewGroup validates opts, spawns one reader goroutine per non-nil
// shard reader, and returns the ready group. Nil entries in readers
// are permanently missing shards.
func NewGroup(readers []io.Reader, opts Options) (*Group, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, err
	}
	n := len(readers)
	g := &Group{
		opts:         opts,
		clock:        vclock.OrReal(opts.Clock),
		n:            n,
		readers:      readers,
		req:          make([]chan request, n),
		results:      make(chan result, n),
		pool:         newBlockPool(opts.BlockSize),
		stop:         make(chan struct{}),
		sh:           make([]shardMeta, n),
		awaited:      make([]bool, n),
		deadlineMult: opts.DeadlineMult,
		hedgeAfter:   opts.HedgeAfter,
	}
	g.readahead.Store(int32(opts.Readahead))
	reg := opts.Metrics
	g.deadlineG = reg.Gauge("shardio_deadline_us",
		"Adaptive per-stripe deadline derived from the fleet-median latency EWMA, microseconds.")
	g.hedgedC = reg.Counter("shardio_hedged_stripes_total",
		"Stripes gathered without at least one live shard that missed the deadline.")
	g.lateClaimed = reg.Counter("shardio_late_blocks_claimed_total",
		"Straggler blocks that arrived late but were claimed for their stripe via the hedge race.")
	g.lateDropped = reg.Counter("shardio_late_blocks_dropped_total",
		"Straggler blocks that arrived after their stripe had committed to reconstruction.")
	g.raDepthG = reg.Gauge("shardio_readahead_depth",
		"Current per-shard readahead depth (blocks speculatively read past the last request).")
	g.raDepthG.Set(float64(opts.Readahead))
	g.raHits = reg.Counter("shardio_readahead_hits_total",
		"Block requests served from a shard's readahead buffer.")
	g.raUseless = reg.Counter("shardio_readahead_useless_total",
		"Readahead blocks discarded because their stripe was skipped — useless prefetches.")
	for i, r := range readers {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		g.sh[i].ewmaG = reg.Gauge("shardio_shard_ewma_us",
			"Per-shard block-read latency EWMA, microseconds.", lbl)
		g.sh[i].openG = reg.Gauge("shardio_breaker_open",
			"1 while the shard's circuit breaker is open, else 0.", lbl)
		g.sh[i].tripsC = reg.Counter("shardio_breaker_trips_total",
			"Circuit-breaker trips for this shard, including half-open re-trips.", lbl)
		if r == nil {
			g.sh[i].missing = true
			continue
		}
		g.req[i] = make(chan request, 1)
		g.wg.Add(1)
		go g.runShard(i)
	}
	return g, nil
}

// Close signals every shard goroutine to exit and drains any results
// already buffered. A goroutine blocked inside an underlying Read
// exits as soon as that Read returns (use context-aware readers to
// make that prompt under cancellation); its buffer is dropped to the
// GC. Close is idempotent and safe after a cancelled Next.
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		close(g.stop)
		// Recycle whatever already landed; goroutines still blocked in
		// a Read will drop their buffers on the floor when they wake.
		for {
			select {
			case res := <-g.results:
				g.pool.put(res.buf)
			default:
				return
			}
		}
	})
}

// wait blocks until every shard goroutine has exited — i.e. until
// every in-flight Read has returned. Exposed for leak tests.
func (g *Group) wait() { g.wg.Wait() }

// enqueue hands shard i a request for stripe seq. The caller must
// know the shard is idle (no outstanding request).
func (g *Group) enqueue(i int, seq int64) {
	m := &g.sh[i]
	m.outstanding = true
	m.outstandingSeq = seq
	g.req[i] <- request{seq: seq, buf: g.pool.get()}
}

// eligible reports whether shard i can be asked for a block right now.
func (g *Group) eligible(i int, now time.Time) bool {
	m := &g.sh[i]
	return !m.missing && !m.dead && !m.eof && !m.outstanding &&
		!(m.open && now.Before(m.openUntil))
}

// deadline derives the stripe's adaptive deadline from the fleet: the
// median of live shards' latency EWMAs times DeadlineMult, clamped to
// [HedgeAfter, MaxDeadline]. ok is false until any shard has a sample.
func (g *Group) deadline() (time.Duration, bool) {
	ewmas := g.ewmaScratch[:0]
	defer func() { g.ewmaScratch = ewmas[:0] }()
	for i := range g.sh {
		m := &g.sh[i]
		if m.ewma.Samples() > 0 && !m.missing && !m.dead && !m.eof {
			ewmas = append(ewmas, m.ewma.Micros())
		}
	}
	if len(ewmas) == 0 {
		return 0, false
	}
	slices.Sort(ewmas) // generic sort: no interface boxing on the hot path
	med := ewmas[len(ewmas)/2]
	d := time.Duration(g.deadlineMult * med * float64(time.Microsecond))
	if d < g.hedgeAfter {
		d = g.hedgeAfter
	}
	if d > g.opts.MaxDeadline {
		d = g.opts.MaxDeadline
	}
	g.deadlineG.Set(float64(d) / float64(time.Microsecond))
	return d, true
}

// breakerCooldown returns the open period after a shard's trips-th
// consecutive breaker trip: base doubled per prior trip, clamped to
// ceiling. The doubling stops at the ceiling rather than shifting
// blindly, so however many times a shard re-trips, the cooldown can
// never overflow time.Duration into a negative (instantly expired)
// open period.
func breakerCooldown(base time.Duration, trips int, ceiling time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if ceiling < base {
		ceiling = base
	}
	d := base
	for i := 0; i < trips; i++ {
		if d >= ceiling/2 {
			return ceiling
		}
		d <<= 1
	}
	return d
}

// breakerCeiling is the cooldown cap: a shard should never be benched
// longer than the worst deadline the group itself tolerates, and never
// less than one base cooldown.
func (g *Group) breakerCeiling() time.Duration {
	if g.opts.MaxDeadline > g.opts.BreakerCooldown {
		return g.opts.MaxDeadline
	}
	return g.opts.BreakerCooldown
}

// miss records a deadline miss against shard i's breaker, tripping it
// open (or re-opening a half-open probe) once misses reach the
// threshold. Cooldown doubles with every consecutive trip, capped at
// breakerCeiling.
func (g *Group) miss(i int, st *Stripe) {
	m := &g.sh[i]
	m.misses++
	if g.opts.BreakerThreshold <= 0 {
		return
	}
	if !m.open && m.misses < g.opts.BreakerThreshold {
		return
	}
	m.open = true
	m.openUntil = g.clock.Now().Add(breakerCooldown(g.opts.BreakerCooldown, m.trips, g.breakerCeiling()))
	m.trips++
	m.misses = 0
	st.Trips++
	m.openG.Set(1)
	m.tripsC.Inc()
}

// getStripe takes a stripe from the group's pool (allocating only when
// the pool is empty) and resets it for sequence seq.
func (g *Group) getStripe(seq int64) *Stripe {
	st, _ := g.stripes.Get().(*Stripe)
	if st == nil {
		st = &Stripe{
			Blocks:     make([][]byte, g.n),
			States:     make([]ShardState, g.n),
			Errs:       make([]error, g.n),
			Transients: make([]uint64, g.n),
			slots:      make([]*lateSlot, g.n),
			slotGen:    make([]int64, g.n),
			slotStore:  make([]lateSlot, g.n),
		}
		for i := range st.slotStore {
			st.slotStore[i].gen = -1 // stripe seqs start at 0
			st.slotStore[i].pool = g.pool
		}
	}
	st.Seq = seq
	clear(st.Blocks)
	clear(st.States)
	clear(st.Errs)
	clear(st.Transients)
	clear(st.slots)
	clear(st.slotGen)
	st.Retries, st.LateTransients, st.Trips, st.Panics = 0, 0, 0, 0
	st.Hedged = false
	st.pool = g.pool
	st.home = &g.stripes
	return st
}

// retune loads the current Tuning, if any, and swaps the dynamic
// knobs. Called once per stripe before any read is issued, so a knob
// change never straddles a stripe.
func (g *Group) retune() {
	src := g.opts.Tuning
	if src == nil {
		return
	}
	t := src.ShardTuning()
	if t.DeadlineMult >= 1 {
		g.deadlineMult = t.DeadlineMult
	}
	if t.HedgeAfter > 0 && g.opts.HedgeAfter > 0 {
		// The hedge switch itself stays static (a group built without
		// hedging has no breaker/late-slot machinery warmed); the floor
		// moves freely.
		g.hedgeAfter = t.HedgeAfter
	}
	if t.Readahead >= 0 {
		if old := g.readahead.Load(); int32(t.Readahead) != old {
			g.readahead.Store(int32(t.Readahead))
			g.raDepthG.Set(float64(t.Readahead))
		}
	}
}

// Next gathers the blocks of the next stripe. It returns a non-nil
// error only when ctx is cancelled; every per-shard failure is
// reported in the Stripe instead. The caller owns the returned stripe
// and must Release it.
func (g *Group) Next(ctx context.Context) (*Stripe, error) {
	g.retune()
	seq := g.seq
	g.seq++
	st := g.getStripe(seq)
	now := g.clock.Now()
	awaited := g.awaited
	clear(awaited)
	wait := 0
	for i := range g.sh {
		m := &g.sh[i]
		switch {
		case m.missing:
			st.States[i] = StateMissing
		case m.dead:
			st.States[i] = StateDead
			st.Errs[i] = m.deadErr
		case m.eof:
			st.States[i] = StateEOF
		case m.open && now.Before(m.openUntil):
			st.States[i] = StateOpen
		case m.outstanding:
			// Still serving an earlier stripe: a straggler mid-read.
			st.States[i] = StateSlow
		default:
			g.enqueue(i, seq)
			awaited[i] = true
			wait++
			st.States[i] = StateSlow // provisional until its result lands
		}
	}

	hedge := g.hedgeAfter > 0
	got := 0
	armed := false // the reusable group timer is counting for this stripe
	fired := false
	var timeC <-chan time.Time
	timedOut := false
	arm := func() {
		if !hedge || armed {
			return
		}
		if d, ok := g.deadline(); ok {
			if g.timer == nil {
				g.timer = g.clock.NewTimer(d)
			} else {
				g.timer.Reset(d) // always stopped-and-drained between stripes
			}
			timeC = g.timer.C()
			armed = true
		}
	}
	arm()
	defer func() {
		if armed && !fired && !g.timer.Stop() {
			<-g.timer.C()
		}
	}()

	// abandon demotes every still-awaited shard to slow for this
	// stripe, registering the late slot that lets the hedge race
	// resolve in the worker.
	abandon := func() {
		for i := range awaited {
			if !awaited[i] {
				continue
			}
			awaited[i] = false
			m := &g.sh[i]
			slot := &st.slotStore[i]
			slot.arm(m.outstandingSeq)
			m.late, m.lateSeq = slot, m.outstandingSeq
			st.slots[i] = slot
			st.slotGen[i] = m.outstandingSeq
			st.States[i] = StateSlow
			st.Hedged = true
			g.miss(i, st)
		}
		wait = 0
	}

	for wait > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timeC:
			fired = true
			timeC = nil
			if got >= g.opts.Quorum {
				abandon()
			} else {
				timedOut = true // keep waiting; hedge as soon as quorum lands
			}
		case res := <-g.results:
			g.consume(&res, seq, st, awaited, &wait, &got)
			if hedge && wait > 0 && got >= g.opts.Quorum {
				if timedOut {
					abandon()
				} else {
					arm() // first samples may only exist now (cold start)
				}
			}
		}
	}
	if st.Hedged {
		g.hedgedC.Inc()
	}
	return st, nil
}

// consume folds one shard result into the gather state. Stale results
// (from stripes already hedged past) recycle or hand off their block
// and re-admit the shard to the current stripe when it is eligible.
func (g *Group) consume(res *result, seq int64, st *Stripe, awaited []bool, wait, got *int) {
	i := res.shard
	m := &g.sh[i]
	m.outstanding = false
	st.Retries += uint64(res.retries)
	if res.panicked {
		st.Panics++
	}

	if res.seq != seq {
		// A background read from a stripe the pipeline already left.
		switch {
		case res.eof:
			m.eof = true
			st.States[i] = StateEOF
			g.pool.put(res.buf)
		case res.err != nil:
			m.dead, m.deadErr = true, res.err
			st.States[i] = StateDead
			st.Errs[i] = res.err
			g.pool.put(res.buf)
		default:
			st.LateTransients += uint64(res.transients)
			m.observe(res.dur)
			delivered := false
			if m.late != nil && m.lateSeq == res.seq {
				delivered = m.late.offer(res.seq, res.buf)
			}
			if delivered {
				g.lateClaimed.Inc()
			} else {
				g.lateDropped.Inc()
				g.pool.put(res.buf)
			}
			// Rejoin the stripe being gathered: the shard may have
			// recovered and can still make this deadline.
			if g.eligible(i, g.clock.Now()) {
				g.enqueue(i, seq)
				awaited[i] = true
				*wait++
			}
		}
		if m.late != nil && m.lateSeq == res.seq {
			m.late = nil
		}
		return
	}

	if awaited[i] {
		awaited[i] = false
		*wait--
	}
	switch {
	case res.eof:
		m.eof = true
		st.States[i] = StateEOF
		g.pool.put(res.buf)
	case res.err != nil:
		m.dead, m.deadErr = true, res.err
		st.States[i] = StateDead
		st.Errs[i] = res.err
		g.pool.put(res.buf)
	default:
		st.Blocks[i] = res.buf
		st.Transients[i] = uint64(res.transients)
		st.States[i] = StateOK
		*got++
		m.observe(res.dur)
		m.misses = 0
		if m.open {
			// Half-open probe answered in time: breaker closes.
			m.open = false
			m.trips = 0
			m.openG.Set(0)
		}
	}
}
