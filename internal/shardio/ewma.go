package shardio

import "time"

// ewmaAlpha is the weight of the newest latency sample in a moving
// average: heavy enough to react to a source turning slow within a few
// observations, light enough to ride out one hiccup.
const ewmaAlpha = 0.25

// EWMA is an exponentially weighted moving average of durations — the
// latency tracker behind the group's adaptive per-stripe deadlines,
// exported so other schedulers (the cluster read router's least-loaded
// policy) rank sources with exactly the same estimator. The zero value
// is ready to use. Not safe for concurrent use; callers that share one
// across goroutines must lock around it.
type EWMA struct {
	v float64 // microseconds
	n uint64
}

// Observe folds one latency sample into the average. The first sample
// seeds the average directly.
func (e *EWMA) Observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	if e.n == 0 {
		e.v = us
	} else {
		e.v = ewmaAlpha*us + (1-ewmaAlpha)*e.v
	}
	e.n++
}

// Micros returns the current average in microseconds (0 before any
// sample).
func (e *EWMA) Micros() float64 { return e.v }

// Value returns the current average as a duration (0 before any
// sample).
func (e *EWMA) Value() time.Duration {
	return time.Duration(e.v * float64(time.Microsecond))
}

// Samples returns how many observations have been folded in.
func (e *EWMA) Samples() uint64 { return e.n }
