package shardio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"time"
)

// request asks a shard goroutine for the block of stripe seq. The
// goroutine skip-reads any blocks between its stream position and seq
// first, so shards sidelined by an open breaker stay stripe-aligned.
type request struct {
	seq int64
	buf []byte
}

// result is a shard goroutine's answer to one request. Exactly one
// result is sent per request, so the results channel (capacity = shard
// count) can never block a send.
type result struct {
	shard      int
	seq        int64
	buf        []byte
	err        error         // terminal failure; nil for delivered blocks and clean EOF
	eof        bool          // clean EOF at a block boundary, at or before seq
	panicked   bool          // err is a *PanicError
	dur        time.Duration // wall time of the final block read, incl. retries
	transients int           // transient errors absorbed reading this request
	retries    int           // backoff retries spent on this request
}

// errClosed reports a read abandoned because the group was closed
// mid-backoff.
var errClosed = errors.New("shardio: group closed")

// runShard serves block requests for shard i until the group closes.
// It owns the reader: all Reads for the shard happen here, so a slow
// read blocks only this goroutine while the gather loop moves on.
func (g *Group) runShard(i int) {
	defer g.wg.Done()
	r := g.readers[i]
	// Deterministic full-jitter source: fixed Seed => fixed schedule.
	rng := rand.New(rand.NewSource(int64(g.opts.Seed ^ uint64(i)*0x9e3779b97f4a7c15)))
	var scratch []byte
	pos := int64(0) // next block index the reader is positioned at
	for {
		var req request
		select {
		case <-g.stop:
			return
		case req = <-g.req[i]:
		}
		res := result{shard: i, seq: req.seq, buf: req.buf}
		g.serve(i, r, rng, &scratch, &pos, req, &res)
		select {
		case g.results <- res:
		case <-g.stop:
			return
		}
	}
}

// serve fulfills one request, converting panics (a misbehaving reader
// implementation) into a typed error instead of killing the process.
func (g *Group) serve(i int, r io.Reader, rng *rand.Rand, scratch *[]byte, pos *int64, req request, res *result) {
	defer func() {
		if p := recover(); p != nil {
			res.err = &PanicError{
				Stage: fmt.Sprintf("shard %d reader", i),
				Value: p,
				Stack: debug.Stack(),
			}
			res.panicked = true
		}
	}()
	// Catch up: consume the blocks between the reader's position and
	// the requested stripe (skipped while the breaker was open or the
	// shard was sidelined as slow).
	for *pos < req.seq {
		if *scratch == nil {
			*scratch = make([]byte, g.opts.BlockSize)
		}
		eof, err := g.readBlock(r, rng, *scratch, res)
		*pos++
		if eof {
			res.eof = true
			return
		}
		if err != nil {
			res.err = err
			return
		}
	}
	start := time.Now()
	eof, err := g.readBlock(r, rng, req.buf, res)
	*pos++
	res.dur = time.Since(start)
	if eof {
		res.eof = true
		return
	}
	res.err = err
}

// readBlock reads one full block, absorbing up to MaxRetries transient
// errors with exponential full-jitter backoff. A clean EOF before the
// first byte returns eof=true; a mid-block EOF or any other failure is
// terminal.
func (g *Group) readBlock(r io.Reader, rng *rand.Rand, buf []byte, res *result) (eof bool, err error) {
	n := 0
	for attempt := 0; ; {
		m, err := io.ReadFull(r, buf[n:])
		n += m
		switch {
		case err == nil:
			return false, nil
		case err == io.EOF && n == 0:
			return true, nil
		case isTransient(err) && attempt < g.opts.MaxRetries:
			attempt++
			res.retries++
			res.transients++
			if g.opts.Backoff > 0 {
				shift := attempt - 1
				if shift > 16 {
					shift = 16
				}
				d := time.Duration(rng.Int63n(int64(g.opts.Backoff<<shift) + 1))
				if !g.sleep(d) {
					return false, errClosed
				}
			}
		default:
			return false, err
		}
	}
}

// sleep pauses for d or until the group closes; it reports whether the
// full duration elapsed.
func (g *Group) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-g.stop:
		return false
	}
}
