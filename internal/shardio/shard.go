package shardio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime/debug"
	"time"
)

// request asks a shard goroutine for the block of stripe seq. The
// goroutine skip-reads any blocks between its stream position and seq
// first, so shards sidelined by an open breaker stay stripe-aligned.
type request struct {
	seq int64
	buf []byte
}

// result is a shard goroutine's answer to one request. Exactly one
// result is sent per request, so the results channel (capacity = shard
// count) can never block a send.
type result struct {
	shard      int
	seq        int64
	buf        []byte
	err        error         // terminal failure; nil for delivered blocks and clean EOF
	eof        bool          // clean EOF at a block boundary, at or before seq
	panicked   bool          // err is a *PanicError
	dur        time.Duration // wall time of the final block read, incl. retries
	transients int           // transient errors absorbed reading this request
	retries    int           // backoff retries spent on this request
}

// errClosed reports a read abandoned because the group was closed
// mid-backoff.
var errClosed = errors.New("shardio: group closed")

// raBlock is one block a shard goroutine read speculatively, ahead of
// any request — the live-pipeline prefetch buffer entry. dur is the
// wall time of the actual device read, reported when the block is
// served so the latency EWMA keeps tracking the device, not the
// buffer.
type raBlock struct {
	seq        int64
	buf        []byte // nil for terminal (eof/err) markers
	dur        time.Duration
	eof        bool
	err        error
	transients int
	retries    int
}

// runShard serves block requests for shard i until the group closes.
// It owns the reader: all Reads for the shard happen here, so a slow
// read blocks only this goroutine while the gather loop moves on.
//
// With a positive readahead depth the goroutine fills idle time
// between requests by reading up to depth blocks past its stream
// position into pooled buffers; a request for a buffered block is
// answered without touching the reader (a readahead hit), and buffered
// blocks whose stripe the group skipped — a breaker-open or
// sidelined-slow period — are discarded and counted as useless
// prefetches. The depth knob is read atomically between block reads,
// so the adaptive controller can move it mid-stream without tearing.
func (g *Group) runShard(i int) {
	defer g.wg.Done()
	r := g.readers[i]
	// Deterministic full-jitter source: fixed Seed => fixed schedule.
	rng := rand.New(rand.NewSource(int64(g.opts.Seed ^ uint64(i)*0x9e3779b97f4a7c15)))
	var scratch []byte
	pos := int64(0) // next block index the reader is positioned at
	var ra []raBlock
	terminal := false // eof or hard error observed while reading ahead
	for {
		var req request
		got := false
		// Speculative phase: with no request pending and budget left,
		// read the next block ahead. A request arriving mid-phase is
		// served at the next loop check; one arriving mid-read waits
		// out that read, exactly as it would were the shard mid-read
		// for an earlier stripe.
		for !got && !terminal {
			depth := int(g.readahead.Load())
			if depth <= 0 || len(ra) >= depth {
				break
			}
			select {
			case <-g.stop:
				return
			case req = <-g.req[i]:
				got = true
			default:
				rb := raBlock{seq: pos, buf: g.pool.get()}
				var sc result // scratch for readBlock's retry counters
				start := g.clock.Now()
				eof, err := g.readBlock(r, rng, rb.buf, &sc)
				rb.dur = g.clock.Now().Sub(start)
				rb.eof, rb.err = eof, err
				rb.transients, rb.retries = sc.transients, sc.retries
				pos++
				if eof || err != nil {
					g.pool.put(rb.buf)
					rb.buf = nil
					terminal = true
				}
				ra = append(ra, rb)
			}
		}
		if !got {
			select {
			case <-g.stop:
				return
			case req = <-g.req[i]:
			}
		}
		res := result{shard: i, seq: req.seq, buf: req.buf}
		if served := g.serveFromReadahead(&ra, req, &res); !served {
			g.serve(i, r, rng, &scratch, &pos, req, &res)
		}
		select {
		case g.results <- res:
		case <-g.stop:
			return
		}
	}
}

// serveFromReadahead answers req from the readahead queue when
// possible. Entries for stripes before req.seq are useless prefetches
// (their stripes were gathered — or skipped — without this shard);
// their buffers go back to the pool. A terminal marker (EOF or hard
// error) answers any request at or past its stripe, matching the
// catch-up semantics of serve.
func (g *Group) serveFromReadahead(ra *[]raBlock, req request, res *result) bool {
	q := *ra
	for len(q) > 0 {
		rb := q[0]
		if rb.eof || rb.err != nil {
			// The stream ended (or died) at rb.seq <= req.seq: the
			// marker answers this and every later request.
			res.eof, res.err = rb.eof, rb.err
			res.transients, res.retries = rb.transients, rb.retries
			g.pool.put(res.buf)
			res.buf = nil
			*ra = q
			return true
		}
		if rb.seq > req.seq {
			break // future block; cannot happen today, kept for safety
		}
		q = q[1:]
		if rb.seq < req.seq {
			g.pool.put(rb.buf)
			g.raUseless.Inc()
			continue
		}
		// rb.seq == req.seq: a readahead hit. Swap buffers — the
		// requested one returns to the pool, the prefetched one rides
		// the result.
		g.pool.put(res.buf)
		res.buf = rb.buf
		res.dur = rb.dur
		res.transients, res.retries = rb.transients, rb.retries
		g.raHits.Inc()
		*ra = q
		return true
	}
	*ra = q
	return false
}

// serve fulfills one request, converting panics (a misbehaving reader
// implementation) into a typed error instead of killing the process.
func (g *Group) serve(i int, r io.Reader, rng *rand.Rand, scratch *[]byte, pos *int64, req request, res *result) {
	defer func() {
		if p := recover(); p != nil {
			res.err = &PanicError{
				Stage: fmt.Sprintf("shard %d reader", i),
				Value: p,
				Stack: debug.Stack(),
			}
			res.panicked = true
		}
	}()
	// Catch up: consume the blocks between the reader's position and
	// the requested stripe (skipped while the breaker was open or the
	// shard was sidelined as slow).
	for *pos < req.seq {
		if *scratch == nil {
			*scratch = make([]byte, g.opts.BlockSize)
		}
		eof, err := g.readBlock(r, rng, *scratch, res)
		*pos++
		if eof {
			res.eof = true
			return
		}
		if err != nil {
			res.err = err
			return
		}
	}
	start := g.clock.Now()
	eof, err := g.readBlock(r, rng, req.buf, res)
	*pos++
	res.dur = g.clock.Now().Sub(start)
	if eof {
		res.eof = true
		return
	}
	res.err = err
}

// readBlock reads one full block, absorbing up to MaxRetries transient
// errors with exponential full-jitter backoff. A clean EOF before the
// first byte returns eof=true; a mid-block EOF or any other failure is
// terminal.
func (g *Group) readBlock(r io.Reader, rng *rand.Rand, buf []byte, res *result) (eof bool, err error) {
	n := 0
	for attempt := 0; ; {
		m, err := io.ReadFull(r, buf[n:])
		n += m
		switch {
		case err == nil:
			return false, nil
		case err == io.EOF && n == 0:
			return true, nil
		case isTransient(err) && attempt < g.opts.MaxRetries:
			attempt++
			res.retries++
			res.transients++
			if g.opts.Backoff > 0 {
				shift := attempt - 1
				if shift > 16 {
					shift = 16
				}
				d := time.Duration(rng.Int63n(int64(g.opts.Backoff<<shift) + 1))
				if !g.sleep(d) {
					return false, errClosed
				}
			}
		default:
			return false, err
		}
	}
}

// sleep pauses for d or until the group closes; it reports whether the
// full duration elapsed.
func (g *Group) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := g.clock.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-g.stop:
		return false
	}
}
