package shardio

import (
	"bytes"
	"context"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"dialga/internal/obs"
	"dialga/internal/vclock"
)

// TestBreakerCooldownClamped pins the cooldown schedule: doubling per
// trip, monotone, always positive, and clamped to the ceiling — in
// particular for trip counts far past where an unclamped base<<trips
// would overflow time.Duration into a negative, instantly expired
// cooldown (the default base overflows at 36 trips; ~33 for 1s).
func TestBreakerCooldownClamped(t *testing.T) {
	base := DefaultBreakerCooldown
	ceiling := DefaultMaxDeadline
	prev := time.Duration(0)
	for trips := 0; trips < 100; trips++ {
		d := breakerCooldown(base, trips, ceiling)
		if d <= 0 {
			t.Fatalf("trip %d: cooldown %v not positive", trips, d)
		}
		if d > ceiling {
			t.Fatalf("trip %d: cooldown %v above ceiling %v", trips, d, ceiling)
		}
		if d < prev {
			t.Fatalf("trip %d: cooldown %v shrank from %v", trips, d, prev)
		}
		prev = d
	}
	if got := breakerCooldown(base, 0, ceiling); got != base {
		t.Fatalf("first trip cooldown = %v, want base %v", got, base)
	}
	if got := breakerCooldown(base, 1, ceiling); got != 2*base {
		t.Fatalf("second trip cooldown = %v, want %v", got, 2*base)
	}
	if got := breakerCooldown(base, 99, ceiling); got != ceiling {
		t.Fatalf("deep-trip cooldown = %v, want ceiling %v", got, ceiling)
	}
	// A ceiling below the base never lowers the cooldown under one base
	// period, and a disabled base stays disabled.
	if got := breakerCooldown(base, 0, base/2); got != base {
		t.Fatalf("sub-base ceiling gave %v, want %v", got, base)
	}
	if got := breakerCooldown(0, 10, ceiling); got != 0 {
		t.Fatalf("zero base gave %v, want 0", got)
	}
}

// TestBreakerManyTripsStayOpen drives a shard's breaker through far
// more consecutive trips than the old shift arithmetic tolerated and
// checks every open period still lands in the future with a bounded
// cooldown — a shard that keeps missing must stay benched, not be
// silently re-admitted by an overflowed openUntil.
func TestBreakerManyTripsStayOpen(t *testing.T) {
	opts, err := Options{BlockSize: 8, Quorum: 1, HedgeAfter: time.Millisecond}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// A fake clock makes the cooldown arithmetic fully deterministic:
	// no wall-clock jitter between miss() stamping openUntil and the
	// assertions below reading "now".
	fc := vclock.NewFake()
	g := &Group{opts: opts, sh: make([]shardMeta, 1), clock: fc}
	st := &Stripe{}
	m := &g.sh[0]
	for i := 0; i < 300; i++ {
		g.miss(0, st)
		if !m.open {
			continue // still accumulating misses toward the threshold
		}
		after := fc.Now()
		if !m.openUntil.After(after) {
			t.Fatalf("trip %d: openUntil %v not in the future", m.trips, m.openUntil)
		}
		if cool := m.openUntil.Sub(after); cool > g.breakerCeiling() {
			t.Fatalf("trip %d: cooldown %v above ceiling %v", m.trips, cool, g.breakerCeiling())
		}
	}
	if st.Trips < 40 {
		t.Fatalf("breaker tripped %d times, want >= 40", st.Trips)
	}
}

// TestGroupMetricsRegistered checks the Options.Metrics wiring: a
// group publishes per-shard EWMA gauges and the group-wide series into
// the registry, and a plain gather updates them.
func TestGroupMetricsRegistered(t *testing.T) {
	const n, stripes = 3, 2
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	reg := obs.NewRegistry()
	g := newTestGroup(t, readers, Options{Metrics: reg})
	for s := 0; s < stripes; s++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		st.Release()
	}
	for i := 0; i < n; i++ {
		ewma := reg.Gauge("shardio_shard_ewma_us", "", obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		if ewma.Value() <= 0 {
			t.Fatalf("shard %d EWMA gauge = %v, want > 0 after reads", i, ewma.Value())
		}
		open := reg.Gauge("shardio_breaker_open", "", obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		if open.Value() != 0 {
			t.Fatalf("shard %d breaker-open gauge = %v, want 0", i, open.Value())
		}
	}
	var buf bytes.Buffer
	if err := reg.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shardio_shard_ewma_us", "shardio_breaker_open", "shardio_breaker_trips_total", "shardio_hedged_stripes_total", "shardio_deadline_us"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}
