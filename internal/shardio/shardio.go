// Package shardio is a straggler-tolerant shard-I/O scheduling layer
// for the streaming erasure decoder.
//
// The plain decoder reads one block per stripe from every shard reader
// in turn, so a single slow-but-alive reader drags every stripe down
// to the straggler's speed. Erasure coding makes "slow" a soft
// failure: any k of the k+m blocks recover the stripe, so a laggard
// can be treated as an erasure-for-now and reconstructed around — the
// stream-layer analogue of DIALGA's relative-latency trigger, which
// reacts to a shard running behind its peers rather than to hard
// errors only.
//
// A Group owns one goroutine per shard reader and schedules block
// reads with four defenses layered on top of the raw io.Reader:
//
//   - Latency tracking. Every block read updates a per-shard EWMA;
//     the fleet median of those EWMAs yields an adaptive per-stripe
//     deadline (DeadlineMult × p50, clamped to [HedgeAfter,
//     MaxDeadline]).
//   - Hedged reads. A shard that misses the deadline while at least
//     Quorum blocks have arrived is demoted to slow for the stripe:
//     the stripe proceeds to reconstruction immediately while the slow
//     read continues in the background. Whichever finishes first wins
//     — the consumer may claim a late-arriving block via
//     Stripe.TakeLate up to the moment it commits to reconstruction.
//   - Retry with backoff. Transient read errors (Transient() bool ==
//     true) are retried up to MaxRetries times with exponential
//     backoff and full jitter, deterministically seeded, instead of a
//     single immediate retry.
//   - Circuit breaking. A shard that misses its deadline
//     BreakerThreshold times in a row is demoted to open: the group
//     stops waiting for it entirely. After a cooldown (doubling per
//     trip) the breaker goes half-open and the next stripe issues a
//     probe read; an on-time probe closes the breaker, a miss re-opens
//     it with a longer cooldown.
//
// Per-shard stream position is tracked by the shard goroutine itself:
// a request for stripe s first skip-reads any blocks an open or slow
// period left behind, so shards re-admitted by a half-open probe are
// always stripe-aligned.
//
// All Group methods are intended for a single consumer goroutine (the
// decoder's producer); only Stripe.TakeLate is safe to call
// concurrently with the gather loop.
package shardio

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dialga/internal/obs"
	"dialga/internal/vclock"
)

// Defaults applied by NewGroup for zero-valued Options fields.
const (
	DefaultDeadlineMult     = 3.0
	DefaultMaxDeadline      = 15 * time.Second
	DefaultMaxRetries       = 3
	DefaultBackoff          = 500 * time.Microsecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 250 * time.Millisecond
)

// Options configures a Group.
type Options struct {
	// BlockSize is the bytes read from each shard per stripe.
	// Required.
	BlockSize int

	// Quorum is the minimum number of delivered blocks that makes a
	// stripe recoverable (the code's k). Hedging never abandons a
	// laggard while fewer than Quorum blocks have arrived. Required.
	Quorum int

	// HedgeAfter enables hedged reads when positive: it is both the
	// switch and the floor of the adaptive deadline, so scheduling
	// noise on fast in-memory reads cannot trigger spurious hedges.
	// Zero disables hedging (and the circuit breaker with it): every
	// stripe waits for all live shards, however slow.
	HedgeAfter time.Duration

	// DeadlineMult scales the fleet-median EWMA into the per-stripe
	// deadline. Default DefaultDeadlineMult; must be >= 1.
	DeadlineMult float64

	// MaxDeadline caps the adaptive deadline. Default
	// DefaultMaxDeadline.
	MaxDeadline time.Duration

	// MaxRetries bounds transient-error retries per block read.
	// Default DefaultMaxRetries; negative means no retries.
	MaxRetries int

	// Backoff is the base of the exponential full-jitter backoff
	// between retries: retry i sleeps uniform [0, Backoff<<(i-1)).
	// Default DefaultBackoff.
	Backoff time.Duration

	// BreakerThreshold is the number of consecutive deadline misses
	// that opens a shard's circuit breaker. Default
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int

	// BreakerCooldown is the open period before the first half-open
	// probe; it doubles with every consecutive trip. Default
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration

	// Seed makes retry jitter reproducible. Shard i derives its RNG
	// from Seed^i, so a fixed seed yields a fixed backoff schedule.
	Seed uint64

	// Readahead is the initial per-shard readahead depth: each shard
	// goroutine may speculatively read up to this many blocks past the
	// last requested stripe while it would otherwise sit idle, serving
	// later requests from memory — the live-pipeline analogue of the
	// paper's prefetch degree. Blocks read ahead of a stripe the group
	// skips (breaker-open or sidelined-slow periods) are discarded and
	// counted as useless prefetches. Zero disables readahead.
	Readahead int

	// Tuning, when non-nil, is consulted once per stripe (at the
	// gather boundary, before any read of that stripe is issued) and
	// overrides DeadlineMult, HedgeAfter, and Readahead for that stripe
	// — the actuation seam of the adaptive controller
	// (internal/adapt). Zero-valued fields of the returned Tuning leave
	// the corresponding static option in force. Nil keeps every knob
	// static.
	Tuning TuningSource

	// Clock, when non-nil, replaces the wall clock for deadlines,
	// breaker cooldowns, latency measurement, and backoff sleeps —
	// the determinism seam for tests (vclock.Fake). Nil means the real
	// clock and changes nothing.
	Clock vclock.Clock

	// Metrics, when non-nil, is the registry the group publishes its
	// scheduling telemetry into: per-shard EWMA and breaker gauges,
	// breaker-trip counters, the adaptive-deadline gauge, and hedged
	// stripe / late-block counters (shardio_* series). Nil disables
	// registration; the group still works and Stripe counters are
	// unaffected.
	Metrics *obs.Registry
}

// Tuning is the dynamically adjustable subset of Options: the knobs
// the adaptive controller may swap while a decode is running. Swaps
// take effect at stripe boundaries only — the group loads one Tuning
// per gather, so a stripe never sees a torn mix of old and new knobs.
type Tuning struct {
	// DeadlineMult overrides Options.DeadlineMult when >= 1.
	DeadlineMult float64
	// HedgeAfter overrides Options.HedgeAfter when > 0. It cannot
	// switch hedging on for a group constructed with HedgeAfter == 0
	// (the decoder sizes its machinery off the static option); it
	// raises or lowers the deadline floor of a hedging group.
	HedgeAfter time.Duration
	// Readahead overrides Options.Readahead when >= 0 (-1 leaves the
	// static depth; 0 switches readahead off).
	Readahead int
}

// TuningSource supplies the current Tuning. Implementations must be
// safe for concurrent use and tear-free (internal/adapt publishes via
// an atomic pointer); the group calls it once per stripe.
type TuningSource interface {
	ShardTuning() Tuning
}

// Normalize fills defaults and validates. NewGroup applies it
// automatically; it is exported so wrappers can validate straggler
// options at construction time and surface errors early.
func (o Options) Normalize() (Options, error) {
	if o.BlockSize <= 0 {
		return o, fmt.Errorf("shardio: BlockSize %d must be positive", o.BlockSize)
	}
	if o.Quorum <= 0 {
		return o, fmt.Errorf("shardio: Quorum %d must be positive", o.Quorum)
	}
	if o.HedgeAfter < 0 {
		return o, fmt.Errorf("shardio: HedgeAfter %v must not be negative", o.HedgeAfter)
	}
	if o.DeadlineMult == 0 {
		o.DeadlineMult = DefaultDeadlineMult
	}
	if o.DeadlineMult < 1 {
		return o, fmt.Errorf("shardio: DeadlineMult %g must be >= 1", o.DeadlineMult)
	}
	if o.MaxDeadline == 0 {
		o.MaxDeadline = DefaultMaxDeadline
	}
	if o.MaxDeadline < 0 {
		return o, fmt.Errorf("shardio: MaxDeadline %v must not be negative", o.MaxDeadline)
	}
	// Disabled-by-negative knobs canonicalize to -1, not 0: zero means
	// "unset, take the default", and Normalize must be idempotent (the
	// stream layer validates early and the group normalizes again).
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = DefaultMaxRetries
	case o.MaxRetries < 0:
		o.MaxRetries = -1
	}
	if o.Backoff == 0 {
		o.Backoff = DefaultBackoff
	}
	if o.Backoff < 0 {
		return o, fmt.Errorf("shardio: Backoff %v must not be negative", o.Backoff)
	}
	switch {
	case o.BreakerThreshold == 0:
		o.BreakerThreshold = DefaultBreakerThreshold
	case o.BreakerThreshold < 0:
		o.BreakerThreshold = -1 // disabled
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.BreakerCooldown < 0 {
		return o, fmt.Errorf("shardio: BreakerCooldown %v must not be negative", o.BreakerCooldown)
	}
	if o.Readahead < 0 {
		return o, fmt.Errorf("shardio: Readahead %d must not be negative", o.Readahead)
	}
	return o, nil
}

// ShardState is a shard's disposition for one stripe — the decoder's
// four-severity model plus the bookkeeping states around it.
type ShardState uint8

const (
	// StateOK: the block arrived in time and is present in Blocks.
	StateOK ShardState = iota
	// StateMissing: no reader was provided for this shard.
	StateMissing
	// StateEOF: the shard ended cleanly at a block boundary (at or
	// before this stripe).
	StateEOF
	// StateDead: the shard failed hard — a non-transient error, a
	// ragged mid-block EOF, or retries exhausted — and is retired for
	// the rest of the stream.
	StateDead
	// StateSlow: the shard is alive but missed the stripe's adaptive
	// deadline (or is still serving an earlier stripe); its block may
	// yet arrive and be claimed with TakeLate.
	StateSlow
	// StateOpen: the shard's circuit breaker is open; the group did
	// not ask it for this stripe at all.
	StateOpen
)

func (s ShardState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateMissing:
		return "missing"
	case StateEOF:
		return "eof"
	case StateDead:
		return "dead"
	case StateSlow:
		return "slow"
	case StateOpen:
		return "open"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// PanicError is a panic recovered from a pipeline or shard-reader
// goroutine, surfaced as an ordinary error instead of killing the
// process.
type PanicError struct {
	Stage string // which goroutine panicked, e.g. "shard 3 reader"
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Stage, e.Value)
}

// transienter matches errors advertising themselves as momentary via
// a Transient() bool method (the net.Error convention, also satisfied
// by fault.Err).
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// blockPool recycles block buffers across stripes. It is a plain
// mutex-guarded free list rather than a sync.Pool: Put-ing a []byte
// into a sync.Pool heap-allocates a *[]byte box on every cycle, which
// would put a per-stripe allocation on the steady-state gather path.
// The list is intrinsically bounded by the buffers in circulation
// (one per in-flight read plus the stripes the consumer holds).
// Dropped buffers (abandoned mid-read at Close) are simply collected
// by the GC.
type blockPool struct {
	size int
	mu   sync.Mutex
	free [][]byte
}

func newBlockPool(size int) *blockPool {
	return &blockPool{size: size}
}

func (bp *blockPool) get() []byte {
	bp.mu.Lock()
	if n := len(bp.free); n > 0 {
		b := bp.free[n-1]
		bp.free[n-1] = nil
		bp.free = bp.free[:n-1]
		bp.mu.Unlock()
		return b
	}
	bp.mu.Unlock()
	return make([]byte, bp.size)
}

func (bp *blockPool) put(b []byte) {
	b = b[:cap(b)]
	if len(b) != bp.size {
		return
	}
	bp.mu.Lock()
	bp.free = append(bp.free, b)
	bp.mu.Unlock()
}

// lateSlot is the rendezvous for the hedge race on one abandoned
// block read: the gather loop offers the straggler's block when it
// finally lands, the worker takes it if reconstruction has not won
// yet. One slot per shard lives inline in every pooled stripe and is
// armed with the abandoned read's sequence number as its generation
// when the stripe hedges past that shard. Every method checks the
// caller's generation, so a worker still racing on a stripe whose
// object has been released, pooled, and re-armed for a newer stripe
// can never touch the new read's block. All methods are safe for
// concurrent use.
type lateSlot struct {
	mu    sync.Mutex
	gen   int64 // the armed read's stripe seq; -1 until first armed
	buf   []byte
	taken bool // consumer committed (with or without the block) or stripe released
	pool  *blockPool
}

// arm resets the slot for a new abandoned read. A buffer left from an
// earlier generation that was never taken is recycled here — its
// generation can no longer reach it (Release normally does this, so
// the path is a safety net). A taken buffer is left to the GC: the
// previous cycle's worker may still be reading it.
func (s *lateSlot) arm(gen int64) {
	s.mu.Lock()
	if s.buf != nil && !s.taken {
		s.pool.put(s.buf)
	}
	s.buf = nil
	s.taken = false
	s.gen = gen
	s.mu.Unlock()
}

// offer hands the late block to the slot. It reports false when the
// consumer has already committed, the stripe was released, or the slot
// has been re-armed for a newer read — in all of which the caller
// keeps ownership of buf.
func (s *lateSlot) offer(gen int64, buf []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen || s.taken || s.buf != nil {
		return false
	}
	s.buf = buf
	return true
}

// take commits the consumer's decision: it returns the late block if
// one arrived (the direct read won the hedge race) or nil (the hedge
// reconstruction wins), and blocks later offers either way. The
// returned slice stays valid until the stripe is released.
func (s *lateSlot) take(gen int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen {
		return nil
	}
	s.taken = true
	return s.buf
}

// reclaim detaches the buffered block, if any, for recycling, and
// blocks later offers for this generation.
func (s *lateSlot) reclaim(gen int64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.gen {
		return nil
	}
	s.taken = true
	b := s.buf
	s.buf = nil
	return b
}

// Stripe is the outcome of one Group.Next gather: per-shard blocks and
// dispositions plus the counters the stripe accrued.
type Stripe struct {
	Seq int64
	// Blocks holds the full BlockSize-byte block per StateOK shard,
	// nil otherwise. Slices are owned by the group's pool and are
	// valid until Release.
	Blocks [][]byte
	// States is each shard's disposition this stripe.
	States []ShardState
	// Errs carries the terminal error for StateDead shards (every
	// stripe from the one it died on).
	Errs []error
	// Transients counts transient read errors absorbed while reading
	// each delivered block — the consumer decides whether a checksum
	// clears such a block or it must be demoted.
	Transients []uint64
	// Retries totals backoff retries observed during this gather,
	// including ones surfacing from stale background reads.
	Retries uint64
	// LateTransients totals transient errors absorbed by background
	// reads whose blocks arrived too late to serve their stripe.
	LateTransients uint64
	// Hedged reports that the stripe proceeded without at least one
	// live shard that missed the adaptive deadline.
	Hedged bool
	// Trips counts circuit-breaker trips (first trips and half-open
	// re-trips) during this gather.
	Trips uint64
	// Panics counts shard-reader panics recovered during this gather;
	// the affected shards surface as StateDead with a *PanicError.
	Panics uint64

	slots     []*lateSlot // armed slots (into slotStore), nil when not hedged
	slotGen   []int64     // generation each slot was armed with
	slotStore []lateSlot  // inline per-shard slot backing, reused across pool cycles
	pool      *blockPool
	home      *sync.Pool // the Group's stripe pool; Release returns st here
}

// TakeLate claims shard i's late-arriving block for a StateSlow
// shard: non-nil when the direct read beat reconstruction to the
// worker. At most one call per shard decides the race; the block is
// valid until Release. Safe to call from a worker goroutine while the
// gather loop runs.
func (st *Stripe) TakeLate(i int) []byte {
	if st.slots == nil || st.slots[i] == nil {
		return nil
	}
	return st.slots[i].take(st.slotGen[i])
}

// Release recycles every buffer the stripe owns, including late
// blocks, and returns the stripe to its group's pool. The stripe and
// its slices must not be used afterwards. Release is idempotent.
func (st *Stripe) Release() {
	if st.pool == nil {
		return
	}
	for i, b := range st.Blocks {
		if b != nil {
			st.pool.put(b)
			st.Blocks[i] = nil
		}
	}
	for i, s := range st.slots {
		if s == nil {
			continue
		}
		if b := s.reclaim(st.slotGen[i]); b != nil {
			st.pool.put(b)
		}
		st.slots[i] = nil
	}
	home := st.home
	st.pool, st.home = nil, nil
	if home != nil {
		home.Put(st)
	}
}
