package shardio

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"
)

// gatherStripes runs count Next/Release cycles and reports how many of
// them hedged.
func gatherStripes(t testing.TB, g *Group, count int) int {
	t.Helper()
	hedged := 0
	for i := 0; i < count; i++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Hedged {
			hedged++
		}
		st.Release()
	}
	return hedged
}

// TestGatherAllocsSteadyState: once pools and EWMAs are warm, a
// healthy all-shards-on-time gather cycle must not allocate — stripes
// come from the group pool, blocks from the free list, and the
// deadline math runs on group-owned scratch.
func TestGatherAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const n, stripes = 4, 200
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	g := newTestGroup(t, readers, Options{Quorum: 3, HedgeAfter: time.Second})
	gatherStripes(t, g, 20) // warm pools, EWMAs, and goroutine timers
	if a := testing.AllocsPerRun(40, func() {
		gatherStripes(t, g, 1)
	}); a != 0 {
		t.Errorf("healthy gather allocates %.1f per stripe, want 0", a)
	}
}

// TestGatherAllocsHedged: the hedged path — deadline timer, abandon,
// late-slot arming, stale-result rejoin — must be equally allocation
// free. A permanent straggler forces a hedge on (at least) every other
// stripe.
func TestGatherAllocsHedged(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const n, stripes = 4, 400
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		// Pace the healthy shards so stripes take long enough for the
		// straggler's stale results to land mid-gather and re-admit it —
		// otherwise it stays outstanding and later stripes never hedge.
		// Delays sit well above sleep granularity (~1ms) so the EWMA
		// split between healthy and straggler is real.
		readers[i] = &slowReader{r: bytes.NewReader(shards[i]), delay: time.Millisecond, slowReads: -1}
	}
	readers[2] = &slowReader{r: bytes.NewReader(shards[2]), delay: 8 * time.Millisecond, slowReads: -1}
	g := newTestGroup(t, readers, Options{
		Quorum:           3,
		HedgeAfter:       500 * time.Microsecond,
		DeadlineMult:     1.5,
		BreakerThreshold: -1, // keep the straggler in play every stripe
	})
	gatherStripes(t, g, 20)
	hedged := 0
	if a := testing.AllocsPerRun(60, func() {
		hedged += gatherStripes(t, g, 1)
	}); a != 0 {
		t.Errorf("hedged gather allocates %.1f per stripe, want 0", a)
	}
	if hedged == 0 {
		t.Error("no stripe hedged; the straggler scenario did not engage")
	}
}
