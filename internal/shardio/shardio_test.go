package shardio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"dialga/internal/fault"
)

const testBlock = 16

// mkShards builds n shard streams of stripes blocks each, every byte
// tagged with (shard, stripe) so misdelivery is detectable.
func mkShards(n, stripes int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, stripes*testBlock)
		for s := 0; s < stripes; s++ {
			for j := 0; j < testBlock; j++ {
				b[s*testBlock+j] = byte(i*31 + s*7 + j)
			}
		}
		out[i] = b
	}
	return out
}

func newTestGroup(t *testing.T, readers []io.Reader, opts Options) *Group {
	t.Helper()
	if opts.BlockSize == 0 {
		opts.BlockSize = testBlock
	}
	if opts.Quorum == 0 {
		opts.Quorum = 2
	}
	g, err := NewGroup(readers, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// slowReader delays every Read by a fixed duration, optionally only
// for the first slowReads calls (a straggler that recovers).
type slowReader struct {
	r         io.Reader
	delay     time.Duration
	slowReads int // <0: always slow
	calls     int
}

func (s *slowReader) Read(p []byte) (int, error) {
	s.calls++
	if s.slowReads < 0 || s.calls <= s.slowReads {
		time.Sleep(s.delay)
	}
	return s.r.Read(p)
}

// alwaysTransient fails every Read with a transient error.
type alwaysTransient struct{}

func (alwaysTransient) Read([]byte) (int, error) { return 0, &fault.Err{Off: 0} }

func TestOptionsValidation(t *testing.T) {
	for _, bad := range []Options{
		{BlockSize: 0, Quorum: 1},
		{BlockSize: 8, Quorum: 0},
		{BlockSize: 8, Quorum: 1, HedgeAfter: -time.Second},
		{BlockSize: 8, Quorum: 1, DeadlineMult: 0.5},
		{BlockSize: 8, Quorum: 1, Backoff: -1},
		{BlockSize: 8, Quorum: 1, MaxDeadline: -1},
		{BlockSize: 8, Quorum: 1, BreakerCooldown: -1},
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Fatalf("options %+v accepted", bad)
		}
	}
	got, err := Options{BlockSize: 8, Quorum: 1, MaxRetries: -1, BreakerThreshold: -1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxRetries != -1 || got.BreakerThreshold != -1 {
		t.Fatalf("negative MaxRetries/BreakerThreshold should canonicalize to -1, got %d/%d",
			got.MaxRetries, got.BreakerThreshold)
	}
	if got.DeadlineMult != DefaultDeadlineMult || got.Backoff != DefaultBackoff {
		t.Fatal("defaults not applied")
	}
	// Normalize must be idempotent: the stream layer validates early and
	// NewGroup normalizes again. In particular "disabled" must never
	// canonicalize to 0, or the second pass would read it as "unset" and
	// silently re-enable the default (a breaker that cannot be turned
	// off from stream.Options).
	again, err := got.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatalf("Normalize not idempotent:\n first %+v\nsecond %+v", got, again)
	}
}

func TestGroupDeliversInOrder(t *testing.T) {
	const n, stripes = 4, 5
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	g := newTestGroup(t, readers, Options{})
	for s := 0; s < stripes; s++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if st.States[i] != StateOK {
				t.Fatalf("stripe %d shard %d state %v", s, i, st.States[i])
			}
			want := shards[i][s*testBlock : (s+1)*testBlock]
			if !bytes.Equal(st.Blocks[i], want) {
				t.Fatalf("stripe %d shard %d block mismatch", s, i)
			}
		}
		st.Release()
	}
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if st.States[i] != StateEOF {
			t.Fatalf("post-end shard %d state %v, want eof", i, st.States[i])
		}
	}
	st.Release()
}

func TestGroupMissingAndDead(t *testing.T) {
	const n, stripes = 4, 3
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	readers[0] = nil // missing
	readers[1] = bytes.NewReader(shards[1])
	readers[2] = bytes.NewReader(shards[2][:testBlock+3]) // dies mid-block on stripe 1
	readers[3] = bytes.NewReader(shards[3])
	g := newTestGroup(t, readers, Options{})
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.States[0] != StateMissing || st.States[2] != StateOK {
		t.Fatalf("stripe 0 states %v", st.States)
	}
	st.Release()
	st, err = g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.States[2] != StateDead || st.Errs[2] == nil {
		t.Fatalf("ragged shard state %v err %v, want dead", st.States[2], st.Errs[2])
	}
	st.Release()
	// Death is sticky and keeps reporting.
	st, err = g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.States[2] != StateDead {
		t.Fatalf("stripe 2 shard 2 state %v, want sticky dead", st.States[2])
	}
	st.Release()
}

func TestGroupRetriesTransients(t *testing.T) {
	const n, stripes = 3, 4
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	// Shard 1 hiccups twice: once at a block boundary, once mid-block.
	readers[1] = fault.NewReader(bytes.NewReader(shards[1]), fault.Plan{Ops: []fault.Op{
		{Kind: fault.ErrOnce, Off: testBlock},
		{Kind: fault.ErrOnce, Off: 2*testBlock + 5},
	}})
	g := newTestGroup(t, readers, Options{Backoff: 50 * time.Microsecond})
	var retries, transients uint64
	for s := 0; s < stripes; s++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if st.States[i] != StateOK {
				t.Fatalf("stripe %d shard %d state %v", s, i, st.States[i])
			}
			if !bytes.Equal(st.Blocks[i], shards[i][s*testBlock:(s+1)*testBlock]) {
				t.Fatalf("stripe %d shard %d corrupted across retry", s, i)
			}
			transients += st.Transients[i]
		}
		retries += st.Retries
		st.Release()
	}
	if retries != 2 || transients != 2 {
		t.Fatalf("retries/transients = %d/%d, want 2/2", retries, transients)
	}
}

func TestGroupRetriesExhaust(t *testing.T) {
	readers := []io.Reader{alwaysTransient{}, bytes.NewReader(mkShards(2, 2)[1])}
	g := newTestGroup(t, readers, Options{Quorum: 1, MaxRetries: 2, Backoff: 10 * time.Microsecond})
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.States[0] != StateDead {
		t.Fatalf("shard 0 state %v, want dead after retries exhausted", st.States[0])
	}
	if !errors.Is(st.Errs[0], fault.ErrInjected) {
		t.Fatalf("dead err %v does not expose the underlying fault", st.Errs[0])
	}
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	st.Release()
}

// TestGroupHedgesStraggler: with hedging on, a straggler is demoted to
// slow once quorum has landed, the stripe proceeds, and the late block
// is claimable afterwards via TakeLate.
func TestGroupHedgesStraggler(t *testing.T) {
	const n, stripes = 4, 3
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	readers[2] = &slowReader{r: bytes.NewReader(shards[2]), delay: 40 * time.Millisecond, slowReads: -1}
	g := newTestGroup(t, readers, Options{
		Quorum:           3,
		HedgeAfter:       2 * time.Millisecond,
		BreakerThreshold: -1, // isolate hedging from the breaker
	})

	start := time.Now()
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 30*time.Millisecond {
		t.Fatalf("hedged gather took %v, stalled on the straggler", d)
	}
	if !st.Hedged || st.States[2] != StateSlow {
		t.Fatalf("Hedged=%v States[2]=%v, want hedged slow", st.Hedged, st.States[2])
	}
	for _, i := range []int{0, 1, 3} {
		if st.States[i] != StateOK {
			t.Fatalf("healthy shard %d state %v", i, st.States[i])
		}
	}
	// The slow read finishes in the background; its block becomes
	// claimable for exactly this stripe.
	time.Sleep(80 * time.Millisecond)
	st2, err := g.Next(context.Background()) // drains the stale result
	if err != nil {
		t.Fatal(err)
	}
	late := st.TakeLate(2)
	if late == nil {
		t.Fatal("straggler block never became claimable")
	}
	if !bytes.Equal(late[:testBlock], shards[2][:testBlock]) {
		t.Fatal("late block has wrong bytes")
	}
	st.Release()
	st2.Release()
}

// TestGroupTakeLateBeforeArrival: committing before the straggler
// lands returns nil (the hedge reconstruction wins) and the late
// arrival is recycled, not delivered.
func TestGroupTakeLateBeforeArrival(t *testing.T) {
	const n = 3
	shards := mkShards(n, 2)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	readers[0] = &slowReader{r: bytes.NewReader(shards[0]), delay: 30 * time.Millisecond, slowReads: -1}
	g := newTestGroup(t, readers, Options{
		Quorum:           2,
		HedgeAfter:       2 * time.Millisecond,
		BreakerThreshold: -1,
	})
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Hedged {
		t.Fatal("expected a hedged stripe")
	}
	if b := st.TakeLate(0); b != nil {
		t.Fatal("TakeLate returned a block before the straggler delivered")
	}
	time.Sleep(60 * time.Millisecond)
	st2, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if b := st.TakeLate(0); b != nil {
		t.Fatal("TakeLate delivered after the race was decided")
	}
	st.Release()
	st2.Release()
}

// TestGroupBreakerTripsAndRecovers: a persistent straggler trips the
// breaker open (stop waiting entirely); once it recovers, a half-open
// probe closes the breaker and the shard serves blocks again — from
// the correct stream offset.
func TestGroupBreakerTripsAndRecovers(t *testing.T) {
	const n, stripes = 4, 300
	shards := mkShards(n, stripes)
	readers := make([]io.Reader, n)
	for i := range readers {
		readers[i] = bytes.NewReader(shards[i])
	}
	// Slow for the first 4 reads (~enough to trip), then instant.
	readers[1] = &slowReader{r: bytes.NewReader(shards[1]), delay: 25 * time.Millisecond, slowReads: 4}
	g := newTestGroup(t, readers, Options{
		Quorum:           3,
		HedgeAfter:       2 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
	})
	var trips uint64
	sawOpen, sawRecovered := false, false
	deadline := time.Now().Add(5 * time.Second)
	for s := 0; s < stripes && time.Now().Before(deadline); s++ {
		st, err := g.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		trips += st.Trips
		switch st.States[1] {
		case StateOpen:
			sawOpen = true
		case StateOK:
			if sawOpen {
				sawRecovered = true
				if !bytes.Equal(st.Blocks[1], shards[1][int(st.Seq)*testBlock:(int(st.Seq)+1)*testBlock]) {
					t.Fatalf("stripe %d: recovered shard served a misaligned block", st.Seq)
				}
			}
		}
		st.Release()
		if sawRecovered {
			break
		}
		// Give the straggler's background read room to land so the
		// probe path can run.
		time.Sleep(2 * time.Millisecond)
	}
	if trips == 0 {
		t.Fatal("breaker never tripped")
	}
	if !sawOpen {
		t.Fatal("breaker never reported an open (skipped) stripe")
	}
	if !sawRecovered {
		t.Fatal("half-open probe never re-admitted the recovered shard")
	}
}

func TestGroupPanicRecovered(t *testing.T) {
	panicky := readerFunc(func([]byte) (int, error) { panic("boom") })
	readers := []io.Reader{panicky, bytes.NewReader(mkShards(2, 1)[1])}
	g := newTestGroup(t, readers, Options{Quorum: 1})
	st, err := g.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.States[0] != StateDead || st.Panics != 1 {
		t.Fatalf("state %v panics %d, want dead/1", st.States[0], st.Panics)
	}
	var pe *PanicError
	if !errors.As(st.Errs[0], &pe) || pe.Value != "boom" {
		t.Fatalf("err %v is not the recovered panic", st.Errs[0])
	}
	st.Release()
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// TestGroupCancelledNext: a cancelled context unblocks Next while a
// read is still in flight; Close then lets the goroutines drain.
func TestGroupCancelledNext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	blocked := fault.NewReader(bytes.NewReader(mkShards(1, 4)[0]), fault.Plan{
		Ops: []fault.Op{{Kind: fault.Slow, Off: 0, Len: 5_000_000}}, // ~5s per read
	}).WithContext(ctx)
	g := newTestGroup(t, []io.Reader{blocked}, Options{Quorum: 1})
	done := make(chan error, 1)
	go func() {
		_, err := g.Next(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not return after cancellation")
	}
	g.Close()
	waitDone := make(chan struct{})
	go func() { g.wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(2 * time.Second):
		t.Fatal("shard goroutines leaked after Close of a cancelled group")
	}
}

// TestGroupCloseReleasesGoroutines is the package-level leak check:
// goroutine count returns to baseline after heavy hedged use.
func TestGroupCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		const n = 5
		shards := mkShards(n, 6)
		readers := make([]io.Reader, n)
		for i := range readers {
			readers[i] = bytes.NewReader(shards[i])
		}
		readers[4] = &slowReader{r: bytes.NewReader(shards[4]), delay: 5 * time.Millisecond, slowReads: -1}
		g, err := NewGroup(readers, Options{
			BlockSize: testBlock, Quorum: 3,
			HedgeAfter: time.Millisecond, BreakerThreshold: 2,
			BreakerCooldown: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			st, err := g.Next(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			st.Release()
		}
		g.Close()
		g.wait()
	}
	// The runtime may briefly keep helper goroutines (timers); poll.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d at start, %d after", base, runtime.NumGoroutine())
}
