//go:build race

package shardio

// raceEnabled reports whether the race detector is active; the
// allocation-budget tests skip under instrumentation, which allocates
// on its own (same pattern as the obs and stream packages).
const raceEnabled = true
