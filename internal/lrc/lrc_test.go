package lrc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlocks(r *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		r.Read(out[i])
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(12, 4, 5); err == nil {
		t.Fatal("l not dividing k accepted")
	}
	if _, err := New(12, 4, 0); err == nil {
		t.Fatal("l=0 accepted")
	}
	if _, err := New(0, 4, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	c, err := New(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 12 || c.M() != 4 || c.L() != 2 || c.TotalBlocks() != 18 {
		t.Fatal("accessors wrong")
	}
	if c.GroupOf(0) != 0 || c.GroupOf(5) != 0 || c.GroupOf(6) != 1 || c.GroupOf(11) != 1 {
		t.Fatal("GroupOf wrong")
	}
	lo, hi := c.GroupRange(1)
	if lo != 6 || hi != 12 {
		t.Fatalf("GroupRange(1) = [%d,%d)", lo, hi)
	}
}

func TestEncodeVerify(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []struct{ k, m, l int }{{4, 2, 2}, {12, 4, 2}, {24, 4, 4}, {48, 4, 4}} {
		c, err := New(p.k, p.m, p.l)
		if err != nil {
			t.Fatal(err)
		}
		data := randBlocks(r, p.k, 300)
		global, local, err := c.EncodeAppend(data)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := c.Verify(data, global, local)
		if err != nil || !ok {
			t.Fatalf("verify failed for %+v: %v", p, err)
		}
		local[0][5] ^= 0xff
		ok, _ = c.Verify(data, global, local)
		if ok {
			t.Fatal("verify passed with corrupt local parity")
		}
		local[0][5] ^= 0xff
		global[0][7] ^= 1
		ok, _ = c.Verify(data, global, local)
		if ok {
			t.Fatal("verify passed with corrupt global parity")
		}
	}
}

func fullStripe(data, global, local [][]byte) [][]byte {
	out := append([][]byte{}, data...)
	out = append(out, global...)
	return append(out, local...)
}

func TestRepairLocalSingleFailure(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c, _ := New(12, 4, 3)
	data := randBlocks(r, 12, 128)
	global, local, _ := c.EncodeAppend(data)
	for idx := 0; idx < 12; idx++ {
		stripe := fullStripe(data, global, local)
		want := stripe[idx]
		stripe[idx] = nil
		if err := c.RepairLocal(stripe, idx); err != nil {
			t.Fatalf("local repair of %d failed: %v", idx, err)
		}
		if !bytes.Equal(stripe[idx], want) {
			t.Fatalf("local repair of %d produced wrong data", idx)
		}
	}
}

func TestRepairLocalRefusals(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c, _ := New(8, 2, 2)
	data := randBlocks(r, 8, 64)
	global, local, _ := c.EncodeAppend(data)

	stripe := fullStripe(data, global, local)
	stripe[0], stripe[1] = nil, nil // two failures in group 0
	if err := c.RepairLocal(stripe, 0); err == nil {
		t.Fatal("local repair with two group failures accepted")
	}

	stripe = fullStripe(data, global, local)
	stripe[0] = nil
	stripe[8+2+0] = nil // group-0 local parity gone
	if err := c.RepairLocal(stripe, 0); err == nil {
		t.Fatal("local repair without local parity accepted")
	}

	stripe = fullStripe(data, global, local)
	if err := c.RepairLocal(stripe, 9); err == nil {
		t.Fatal("local repair of a parity index accepted")
	}
}

func TestReconstructMixedFailures(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c, _ := New(12, 4, 2)
	data := randBlocks(r, 12, 96)
	global, local, _ := c.EncodeAppend(data)
	ref := fullStripe(data, global, local)

	cases := [][]int{
		{0},              // single data: local path
		{0, 6},           // one per group: two local repairs
		{0, 1},           // two in one group: global decode
		{12},             // one global parity
		{16},             // one local parity
		{0, 12, 16},      // data + global parity + local parity
		{0, 1, 2, 3},     // m failures in one group
		{0, 1, 6, 7},     // two per group, needs global
		{12, 13, 14, 15}, // all global parities
	}
	for _, erased := range cases {
		stripe := make([][]byte, len(ref))
		copy(stripe, ref)
		for _, e := range erased {
			stripe[e] = nil
		}
		if err := c.Reconstruct(stripe); err != nil {
			t.Fatalf("reconstruct %v failed: %v", erased, err)
		}
		for i := range ref {
			if !bytes.Equal(stripe[i], ref[i]) {
				t.Fatalf("block %d wrong after reconstructing %v", i, erased)
			}
		}
	}
}

func TestReconstructBeyondCapability(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c, _ := New(8, 2, 2)
	data := randBlocks(r, 8, 64)
	global, local, _ := c.EncodeAppend(data)
	stripe := fullStripe(data, global, local)
	// 3 data failures in one group, local parity also gone: exceeds m=2
	// global capability and not locally repairable.
	stripe[0], stripe[1], stripe[2], stripe[10] = nil, nil, nil, nil
	if err := c.Reconstruct(stripe); err == nil {
		t.Fatal("unrecoverable pattern accepted")
	}
}

func TestRepairCost(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	c, _ := New(12, 4, 3) // group size 4
	data := randBlocks(r, 12, 32)
	global, local, _ := c.EncodeAppend(data)
	stripe := fullStripe(data, global, local)
	stripe[0] = nil
	if got := c.RepairCost(stripe, 0); got != 4 {
		t.Fatalf("local repair cost = %d, want 4", got)
	}
	stripe[1] = nil
	if got := c.RepairCost(stripe, 0); got != 12 {
		t.Fatalf("global repair cost = %d, want 12", got)
	}
}

// Property: local parity of each group is the XOR of the group's data.
func TestQuickLocalParityIsGroupXOR(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 1 + r.Intn(4)
		k := l * (1 + r.Intn(5))
		c, err := New(k, 2, l)
		if err != nil {
			return false
		}
		size := 1 + r.Intn(100)
		data := randBlocks(r, k, size)
		_, local, err := c.EncodeAppend(data)
		if err != nil {
			return false
		}
		for g := 0; g < l; g++ {
			lo, hi := c.GroupRange(g)
			for j := 0; j < size; j++ {
				var want byte
				for i := lo; i < hi; i++ {
					want ^= data[i][j]
				}
				if local[g][j] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: any m random erasures among data+global blocks reconstruct.
func TestQuickReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := New(12, 4, 2)
		if err != nil {
			return false
		}
		data := randBlocks(r, 12, 48)
		global, local, err := c.EncodeAppend(data)
		if err != nil {
			return false
		}
		ref := fullStripe(data, global, local)
		stripe := make([][]byte, len(ref))
		copy(stripe, ref)
		for _, e := range r.Perm(16)[:4] {
			stripe[e] = nil
		}
		if err := c.Reconstruct(stripe); err != nil {
			return false
		}
		for i := range ref {
			if !bytes.Equal(stripe[i], ref[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLRCEncode_12_4_2_1K(b *testing.B) {
	c, err := New(12, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	data := randBlocks(r, 12, 1024)
	global := randBlocks(r, 4, 1024)
	local := randBlocks(r, 2, 1024)
	b.SetBytes(12 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, global, local); err != nil {
			b.Fatal(err)
		}
	}
}
