// Package lrc implements Azure-style Locally Repairable Codes.
//
// An LRC(k, m, l) code (§4.1 "Other Coding Tasks" of the DIALGA paper)
// builds on an RS(k+m, k) code by dividing the k data blocks into l
// groups and adding one local XOR parity per group. Single-block failures
// repair from the (k/l) blocks of one group instead of k blocks; up to m
// arbitrary data failures decode through the global RS parities.
package lrc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"dialga/internal/gf"
	"dialga/internal/rs"
)

// Code is an immutable LRC(k, m, l) instance. Stripe layout:
// blocks[0:k] data, blocks[k:k+m] global parity, blocks[k+m:k+m+l] local
// parity (group g covers data blocks [g*k/l, (g+1)*k/l)).
type Code struct {
	k, m, l   int
	groupSize int
	global    *rs.Code
}

// New constructs an LRC(k, m, l) code. l must divide k.
func New(k, m, l int) (*Code, error) {
	if l <= 0 {
		return nil, fmt.Errorf("lrc: l must be positive, got %d", l)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("lrc: l=%d must divide k=%d", l, k)
	}
	global, err := rs.New(k, m)
	if err != nil {
		return nil, err
	}
	return &Code{k: k, m: m, l: l, groupSize: k / l, global: global}, nil
}

// K returns the number of data blocks.
func (c *Code) K() int { return c.k }

// M returns the number of global parity blocks.
func (c *Code) M() int { return c.m }

// L returns the number of local groups (= local parity blocks).
func (c *Code) L() int { return c.l }

// TotalBlocks returns the stripe width k+m+l.
func (c *Code) TotalBlocks() int { return c.k + c.m + c.l }

// GroupOf returns the local group index of data block i.
func (c *Code) GroupOf(i int) int { return i / c.groupSize }

// GroupRange returns the [lo, hi) data-block range of group g.
func (c *Code) GroupRange(g int) (lo, hi int) {
	return g * c.groupSize, (g + 1) * c.groupSize
}

var errBlockShape = errors.New("lrc: blocks must be non-empty and equally sized")

// scratchPool recycles the local-parity scratch used by Verify.
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

func blockSize(blocks [][]byte) (int, error) {
	size := -1
	for _, b := range blocks {
		if len(b) == 0 {
			continue
		}
		if size == -1 {
			size = len(b)
		} else if len(b) != size {
			return 0, errBlockShape
		}
	}
	if size <= 0 {
		return 0, errBlockShape
	}
	return size, nil
}

// Encode computes m global and l local parity blocks for the k data
// blocks, writing into global (m slices) and local (l slices).
func (c *Code) Encode(data, global, local [][]byte) error {
	if len(data) != c.k || len(global) != c.m || len(local) != c.l {
		return fmt.Errorf("lrc: want %d data, %d global, %d local blocks; got %d/%d/%d",
			c.k, c.m, c.l, len(data), len(global), len(local))
	}
	size, err := blockSize(data)
	if err != nil {
		return err
	}
	if err := c.global.Encode(data, global); err != nil {
		return err
	}
	for g := 0; g < c.l; g++ {
		lo, hi := c.GroupRange(g)
		if len(local[g]) != size {
			return errBlockShape
		}
		gf.XorInto(local[g], data[lo:hi]...)
	}
	return nil
}

// EncodeAppend allocates and returns (global, local) parity blocks.
func (c *Code) EncodeAppend(data [][]byte) (global, local [][]byte, err error) {
	size, err := blockSize(data)
	if err != nil {
		return nil, nil, err
	}
	global = make([][]byte, c.m)
	for i := range global {
		global[i] = make([]byte, size)
	}
	local = make([][]byte, c.l)
	for i := range local {
		local[i] = make([]byte, size)
	}
	if err := c.Encode(data, global, local); err != nil {
		return nil, nil, err
	}
	return global, local, nil
}

// RepairLocal reconstructs a single missing data block using only its
// local group: XOR of the group's surviving data blocks and the group's
// local parity. blocks is the full stripe (len k+m+l) with nil or
// zero-length entries for missing blocks; only the target block is
// reconstructed, reusing the capacity of a zero-length target entry when
// it is large enough.
func (c *Code) RepairLocal(blocks [][]byte, idx int) error {
	if idx < 0 || idx >= c.k {
		return fmt.Errorf("lrc: local repair only covers data blocks, got index %d", idx)
	}
	if len(blocks) != c.TotalBlocks() {
		return fmt.Errorf("lrc: stripe has %d blocks, want %d", len(blocks), c.TotalBlocks())
	}
	size, err := blockSize(blocks)
	if err != nil {
		return err
	}
	g := c.GroupOf(idx)
	lp := blocks[c.k+c.m+g]
	if len(lp) == 0 {
		return errors.New("lrc: local parity for the group is missing; use Reconstruct")
	}
	lo, hi := c.GroupRange(g)
	srcs := make([][]byte, 0, c.groupSize)
	srcs = append(srcs, lp)
	for i := lo; i < hi; i++ {
		if i == idx {
			continue
		}
		if len(blocks[i]) == 0 {
			return errors.New("lrc: another block in the group is missing; use Reconstruct")
		}
		srcs = append(srcs, blocks[i])
	}
	out := blocks[idx]
	if cap(out) >= size {
		out = out[:size]
	} else {
		out = make([]byte, size)
	}
	gf.XorInto(out, srcs...)
	blocks[idx] = out
	return nil
}

// Reconstruct repairs a stripe in place, preferring local repair when a
// missing data block's group is otherwise intact, and falling back to
// global RS decode. Local parities are rebuilt from data afterwards.
// blocks must have length k+m+l with nil entries for missing blocks.
func (c *Code) Reconstruct(blocks [][]byte) error {
	if len(blocks) != c.TotalBlocks() {
		return fmt.Errorf("lrc: stripe has %d blocks, want %d", len(blocks), c.TotalBlocks())
	}
	size, err := blockSize(blocks)
	if err != nil {
		return err
	}
	// Pass 1: local repair for cheaply repairable data blocks.
	for idx := 0; idx < c.k; idx++ {
		if len(blocks[idx]) != 0 {
			continue
		}
		if c.locallyRepairable(blocks, idx) {
			if err := c.RepairLocal(blocks, idx); err != nil {
				return err
			}
		}
	}
	// Pass 2: global decode for whatever data/global-parity is left.
	rsStripe := blocks[:c.k+c.m]
	missing := 0
	for _, b := range rsStripe {
		if len(b) == 0 {
			missing++
		}
	}
	if missing > 0 {
		if err := c.global.Reconstruct(rsStripe); err != nil {
			return err
		}
	}
	// Pass 3: rebuild any missing local parities from (now complete) data.
	for g := 0; g < c.l; g++ {
		lp := blocks[c.k+c.m+g]
		if len(lp) != 0 {
			continue
		}
		if cap(lp) >= size {
			lp = lp[:size]
		} else {
			lp = make([]byte, size)
		}
		lo, hi := c.GroupRange(g)
		gf.XorInto(lp, blocks[lo:hi]...)
		blocks[c.k+c.m+g] = lp
	}
	return nil
}

func (c *Code) locallyRepairable(blocks [][]byte, idx int) bool {
	g := c.GroupOf(idx)
	if len(blocks[c.k+c.m+g]) == 0 {
		return false
	}
	lo, hi := c.GroupRange(g)
	for i := lo; i < hi; i++ {
		if i != idx && len(blocks[i]) == 0 {
			return false
		}
	}
	return true
}

// RepairCost returns the number of blocks read to repair block idx with
// the cheapest available strategy given the erasure pattern in blocks:
// groupSize for a local repair, k for a global decode.
func (c *Code) RepairCost(blocks [][]byte, idx int) int {
	if idx < c.k && c.locallyRepairable(blocks, idx) {
		return c.groupSize
	}
	return c.k
}

// Verify reports whether all parities are consistent with the data. The
// local-parity scratch is pooled and compared word-at-a-time, exiting at
// the first inconsistent group.
func (c *Code) Verify(data, global, local [][]byte) (bool, error) {
	ok, err := c.global.Verify(data, global)
	if err != nil || !ok {
		return ok, err
	}
	size, err := blockSize(data)
	if err != nil {
		return false, err
	}
	bp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(bp)
	if cap(*bp) < size {
		*bp = make([]byte, size)
	}
	buf := (*bp)[:size]
	for g := 0; g < c.l; g++ {
		if len(local[g]) != size {
			return false, errBlockShape
		}
		lo, hi := c.GroupRange(g)
		gf.XorInto(buf, data[lo:hi]...)
		if !bytes.Equal(buf, local[g]) {
			return false, nil
		}
	}
	return true, nil
}
