// Package hwpf models the Intel L2 stream hardware prefetcher as
// characterized by the reverse-engineering literature the DIALGA paper
// builds on (Rohan et al., Didier et al.) and by the paper's own
// observations (§3.2):
//
//   - a fixed table of stream slots (32 unidirectional on Cascade Lake,
//     64 from Ice Lake on); streams beyond capacity thrash the table and
//     never gain confidence (Obs. 3, the wide-stripe collapse);
//   - per-stream confidence built by sequential next-line accesses, with
//     a trigger threshold before the first issue and a degree that ramps
//     with confidence (small blocks never reach confidence, Obs. 4);
//   - prefetches never cross 4 KiB page boundaries;
//   - non-sequential (shuffled) accesses within a page decay confidence,
//     which is exactly the mechanism DIALGA's static shuffle mapping
//     exploits as a lightweight per-function "off switch" (§4.2.2).
package hwpf

import "dialga/internal/mem"

type stream struct {
	page       uint64 // 4 KiB page index
	lastLine   int    // last accessed line offset within the page (0..63)
	maxIssued  int    // highest line offset prefetched so far (-1 none)
	confidence int
	lru        uint64
	valid      bool
}

const linesPerPage = mem.PageSize / mem.CachelineSize

// Stats aggregates prefetcher event counts.
type Stats struct {
	Accesses      uint64 // training accesses observed
	Issued        uint64 // prefetch requests issued
	StreamAllocs  uint64 // new streams allocated
	StreamEvicts  uint64 // streams evicted due to capacity (table thrash)
	ConfidenceHit uint64 // sequential hits that increased confidence
}

// Prefetcher is the L2 stream prefetcher model. Not safe for concurrent
// use; the engine owns one per simulated core.
type Prefetcher struct {
	// Enabled gates issue; training continues while disabled so that
	// re-enabling behaves like the real MSR toggle (stream state is
	// retained but issue stops instantly).
	Enabled bool
	// TableSize is the number of unidirectional stream slots.
	TableSize int
	// Trigger is the confidence needed before the first issue.
	Trigger int
	// MaxDegree is the maximum number of lines prefetched ahead.
	MaxDegree int

	streams []stream
	tick    uint64
	stats   Stats
	reqBuf  []mem.Addr
}

// New constructs a prefetcher from the configuration.
func New(cfg *mem.Config) *Prefetcher {
	return &Prefetcher{
		Enabled:   cfg.HWPrefetchEnabled,
		TableSize: cfg.StreamTableSize,
		Trigger:   cfg.StreamTrigger,
		MaxDegree: cfg.StreamMaxDegree,
		streams:   make([]stream, cfg.StreamTableSize),
	}
}

// Stats returns a copy of the accumulated statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// ResetStats clears statistics, retaining stream state.
func (p *Prefetcher) ResetStats() { p.stats = Stats{} }

// Reset clears all stream state and statistics.
func (p *Prefetcher) Reset() {
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.stats = Stats{}
}

// degree returns how many lines ahead to issue at a confidence level: a
// gradual ramp (doubling every two confidence steps) from 1 at trigger
// up to MaxDegree. The slow ramp is why short streams (small blocks)
// see little benefit: by the time the prefetcher is aggressive, the
// block is over (Obs. 4).
func (p *Prefetcher) degree(confidence int) int {
	steps := (confidence - p.Trigger) / 2
	if steps > 10 {
		steps = 10
	}
	d := 1 << uint(steps)
	if d > p.MaxDegree {
		d = p.MaxDegree
	}
	return d
}

// OnAccess trains the prefetcher with a demand access that reached L2
// and returns the lines to prefetch (empty when disabled, untriggered,
// or at page end). The returned slice is reused across calls.
func (p *Prefetcher) OnAccess(addr mem.Addr) []mem.Addr {
	return p.observe(addr, true)
}

// OnPrefetch trains the prefetcher with a software prefetch that
// reached L2 — the "training effect" of prefetch instructions on the
// streamer ([7], §5.9). Software prefetches are L2 accesses and train
// and allocate streams exactly like demand accesses.
func (p *Prefetcher) OnPrefetch(addr mem.Addr) []mem.Addr {
	return p.observe(addr, true)
}

func (p *Prefetcher) observe(addr mem.Addr, allocate bool) []mem.Addr {
	p.stats.Accesses++
	p.reqBuf = p.reqBuf[:0]
	page := addr.Page()
	lineOff := int(addr.PageOffset()) / mem.CachelineSize
	p.tick++

	// Find the stream for this page.
	var s *stream
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].page == page {
			s = &p.streams[i]
			break
		}
	}
	if s == nil {
		if !allocate {
			return p.reqBuf
		}
		// Allocate, evicting the LRU slot.
		victim := 0
		var oldest uint64 = ^uint64(0)
		for i := range p.streams {
			if !p.streams[i].valid {
				victim = i
				oldest = 0
				break
			}
			if p.streams[i].lru < oldest {
				victim = i
				oldest = p.streams[i].lru
			}
		}
		if p.streams[victim].valid {
			p.stats.StreamEvicts++
		}
		p.streams[victim] = stream{page: page, lastLine: lineOff, maxIssued: -1, lru: p.tick, valid: true}
		p.stats.StreamAllocs++
		return p.reqBuf
	}

	s.lru = p.tick
	switch {
	case lineOff == s.lastLine+1:
		// Ascending sequential: build confidence and advance the
		// stream frontier.
		s.confidence++
		p.stats.ConfidenceHit++
		s.lastLine = lineOff
	case lineOff == s.lastLine:
		// Same line (sub-line access): neutral.
	case lineOff < s.lastLine:
		// Behind the stream frontier: real streamers ignore these
		// (demand loads trailing a prefetch frontier must not destroy
		// the stream).
		return p.reqBuf
	default:
		// Forward jump: neutral. The frontier does not move, so a far
		// software prefetch (buffer-friendly mode) does not block the
		// trailing sequential accesses from training the stream, and a
		// shuffled pattern (DIALGA's switch, almost all jumps) never
		// accumulates confidence.
	}

	if !p.Enabled || s.confidence < p.Trigger {
		return p.reqBuf
	}
	// Issue up to degree lines ahead of the access, within the page,
	// skipping lines already issued for this stream.
	d := p.degree(s.confidence)
	from := lineOff + 1
	if s.maxIssued >= from {
		from = s.maxIssued + 1
	}
	to := lineOff + d
	if to > linesPerPage-1 {
		to = linesPerPage - 1
	}
	for l := from; l <= to; l++ {
		p.reqBuf = append(p.reqBuf, mem.Addr(page*mem.PageSize+uint64(l*mem.CachelineSize)))
		p.stats.Issued++
	}
	if to > s.maxIssued {
		s.maxIssued = to
	}
	return p.reqBuf
}

// ActiveStreams returns the number of valid stream slots (diagnostic).
func (p *Prefetcher) ActiveStreams() int {
	n := 0
	for i := range p.streams {
		if p.streams[i].valid {
			n++
		}
	}
	return n
}
