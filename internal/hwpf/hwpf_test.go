package hwpf

import (
	"testing"

	"dialga/internal/mem"
)

func newTestPF() *Prefetcher {
	cfg := mem.DefaultConfig()
	return New(&cfg)
}

// Walk a page sequentially and collect issued prefetches.
func walkSequential(p *Prefetcher, base mem.Addr, lines int) []mem.Addr {
	var issued []mem.Addr
	for i := 0; i < lines; i++ {
		reqs := p.OnAccess(base + mem.Addr(i*mem.CachelineSize))
		issued = append(issued, reqs...)
	}
	return issued
}

func TestTriggerThreshold(t *testing.T) {
	p := newTestPF()
	// Fewer than Trigger sequential accesses: nothing issued.
	issued := walkSequential(p, 0, p.Trigger)
	if len(issued) != 0 {
		t.Fatalf("issued %d prefetches before reaching trigger", len(issued))
	}
	// One more access crosses the threshold.
	reqs := p.OnAccess(mem.Addr(p.Trigger * mem.CachelineSize))
	if len(reqs) == 0 {
		t.Fatal("no prefetch at trigger confidence")
	}
}

func TestSequentialIssuesAhead(t *testing.T) {
	p := newTestPF()
	issued := walkSequential(p, 0, 16) // a 1 KB block
	if len(issued) == 0 {
		t.Fatal("sequential walk issued nothing")
	}
	// All issued lines are ahead of the walk and within the page.
	seen := map[uint64]bool{}
	for _, a := range issued {
		if a.Page() != 0 {
			t.Fatalf("prefetch crossed page boundary: %#x", uint64(a))
		}
		if seen[a.Line()] {
			t.Fatalf("line %d prefetched twice", a.Line())
		}
		seen[a.Line()] = true
	}
}

func TestNoPageCrossing(t *testing.T) {
	p := newTestPF()
	// Walk the tail of a page; issued prefetches must stop at the edge.
	base := mem.Addr(mem.PageSize - 8*mem.CachelineSize)
	issued := walkSequential(p, base, 8)
	for _, a := range issued {
		if a.Page() != 0 {
			t.Fatalf("prefetch %#x crossed the 4 KB boundary", uint64(a))
		}
	}
}

func TestShuffleDefeatsPrefetcher(t *testing.T) {
	p := newTestPF()
	// Shuffled (non-sequential) access order within a page: a stride
	// pattern with no +1 steps.
	order := []int{0, 17, 3, 40, 9, 25, 50, 12, 33, 5, 60, 21, 44, 8, 30, 55}
	var issued int
	for _, l := range order {
		issued += len(p.OnAccess(mem.Addr(l * mem.CachelineSize)))
	}
	if issued != 0 {
		t.Fatalf("shuffled access pattern still triggered %d prefetches", issued)
	}
}

func TestDisabledStillTrains(t *testing.T) {
	p := newTestPF()
	p.Enabled = false
	issued := walkSequential(p, 0, 16)
	if len(issued) != 0 {
		t.Fatal("disabled prefetcher issued requests")
	}
	// Re-enabling mid-stream resumes issue immediately (state retained).
	p.Enabled = true
	reqs := p.OnAccess(mem.Addr(16 * mem.CachelineSize))
	if len(reqs) == 0 {
		t.Fatal("re-enabled prefetcher did not resume")
	}
}

// Obs. 3: more concurrent streams than table slots thrash the table and
// stop all prefetching.
func TestStreamTableOverflow(t *testing.T) {
	p := newTestPF()
	nStreams := p.TableSize + 1
	var issued int
	// Round-robin over nStreams pages, sequential within each page —
	// the wide-stripe encode pattern.
	for line := 0; line < 32; line++ {
		for s := 0; s < nStreams; s++ {
			addr := mem.Addr(s*mem.PageSize + line*mem.CachelineSize)
			issued += len(p.OnAccess(addr))
		}
	}
	if issued != 0 {
		t.Fatalf("k > table size should disable prefetching, issued %d", issued)
	}
	if p.Stats().StreamEvicts == 0 {
		t.Fatal("expected stream table thrash")
	}

	// Exactly at capacity all streams train and issue.
	p.Reset()
	issued = 0
	for line := 0; line < 32; line++ {
		for s := 0; s < p.TableSize; s++ {
			addr := mem.Addr(s*mem.PageSize + line*mem.CachelineSize)
			issued += len(p.OnAccess(addr))
		}
	}
	if issued == 0 {
		t.Fatal("k == table size should prefetch")
	}
}

func TestDegreeRamp(t *testing.T) {
	p := newTestPF()
	var perAccess []int
	for i := 0; i < 20; i++ {
		reqs := p.OnAccess(mem.Addr(i * mem.CachelineSize))
		perAccess = append(perAccess, len(reqs))
	}
	// Issues begin small and the frontier advances by at most MaxDegree.
	maxBurst := 0
	for _, n := range perAccess {
		if n > maxBurst {
			maxBurst = n
		}
	}
	if maxBurst > p.MaxDegree {
		t.Fatalf("burst %d exceeds MaxDegree %d", maxBurst, p.MaxDegree)
	}
}

func TestSameLineAccessNeutral(t *testing.T) {
	p := newTestPF()
	walkSequential(p, 0, p.Trigger+1) // build confidence
	before := p.Stats().Issued
	// Re-access the same line repeatedly: confidence must not collapse.
	for i := 0; i < 4; i++ {
		p.OnAccess(mem.Addr(p.Trigger * mem.CachelineSize))
	}
	reqs := p.OnAccess(mem.Addr((p.Trigger + 1) * mem.CachelineSize))
	if p.Stats().Issued == before && len(reqs) == 0 {
		t.Fatal("same-line accesses destroyed the stream")
	}
}

func TestActiveStreams(t *testing.T) {
	p := newTestPF()
	if p.ActiveStreams() != 0 {
		t.Fatal("fresh table not empty")
	}
	p.OnAccess(0)
	p.OnAccess(mem.PageSize)
	if p.ActiveStreams() != 2 {
		t.Fatalf("ActiveStreams = %d, want 2", p.ActiveStreams())
	}
	p.Reset()
	if p.ActiveStreams() != 0 || p.Stats() != (Stats{}) {
		t.Fatal("Reset incomplete")
	}
}

// Frontier semantics: accesses behind the stream frontier are ignored
// (a demand trailing a prefetch frontier must not kill the stream).
func TestBackwardAccessIgnored(t *testing.T) {
	p := newTestPF()
	walkSequential(p, 0, p.Trigger+2) // trained, frontier ahead
	before := p.Stats().Issued
	// Replay earlier lines: no decay, no issue anchored backwards.
	for i := 0; i < 4; i++ {
		if got := len(p.OnAccess(mem.Addr(i * mem.CachelineSize))); got != 0 {
			t.Fatalf("backward access issued %d prefetches", got)
		}
	}
	// The stream continues from its frontier.
	reqs := p.OnAccess(mem.Addr((p.Trigger + 2) * mem.CachelineSize))
	if p.Stats().Issued == before && len(reqs) == 0 {
		t.Fatal("backward accesses destroyed the stream")
	}
}

// Forward jumps are neutral: the frontier stays so the trailing
// sequential accesses keep training (the buffer-friendly prefetch
// pattern relies on this).
func TestForwardJumpNeutral(t *testing.T) {
	p := newTestPF()
	// Pattern: 0,1,[far 5],2,3,4,... confidence must still build.
	p.OnAccess(0)
	p.OnAccess(mem.Addr(1 * mem.CachelineSize))
	p.OnAccess(mem.Addr(5 * mem.CachelineSize)) // far prefetch-like jump
	issued := 0
	for l := 2; l < 12; l++ {
		issued += len(p.OnAccess(mem.Addr(l * mem.CachelineSize)))
	}
	if issued == 0 {
		t.Fatal("forward jump blocked stream training")
	}
}

func TestResetStats(t *testing.T) {
	p := newTestPF()
	walkSequential(p, 0, 16)
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not clear")
	}
	if p.ActiveStreams() == 0 {
		t.Fatal("ResetStats must retain stream state")
	}
}
