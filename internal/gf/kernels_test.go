package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelLengths are the slice lengths every kernel test sweeps: empty,
// sub-word, word-aligned, and off-by-one around the 8- and 64-byte
// boundaries the word loops care about.
var kernelLengths = []int{0, 1, 7, 8, 9, 63, 64, 65, 255, 256, 1000}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestMulSliceMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		for c := 0; c < 256; c += 7 {
			want := make([]byte, n)
			RefMulSlice(byte(c), want, src)
			got := make([]byte, n)
			MulSlice(byte(c), got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice c=%d n=%d differs from reference", c, n)
			}
		}
	}
}

func TestMulSliceAddMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		init := randBytes(r, n)
		for c := 0; c < 256; c += 5 {
			want := append([]byte(nil), init...)
			RefMulSliceAdd(byte(c), want, src)
			got := append([]byte(nil), init...)
			MulSliceAdd(byte(c), got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSliceAdd c=%d n=%d differs from reference", c, n)
			}
		}
	}
}

func TestWordTablesMatchRef(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		init := randBytes(r, n)
		for c := 0; c < 256; c += 3 {
			wt := MakeWordTables(byte(c))

			want := make([]byte, n)
			RefMulSlice(byte(c), want, src)
			got := make([]byte, n)
			wt.MulSlice(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("WordTables.MulSlice c=%d n=%d differs", c, n)
			}

			want = append([]byte(nil), init...)
			RefMulSliceAdd(byte(c), want, src)
			got = append([]byte(nil), init...)
			wt.MulSliceAdd(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("WordTables.MulSliceAdd c=%d n=%d differs", c, n)
			}
		}
	}
}

func TestMulAddQuadMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		for trial := 0; trial < 8; trial++ {
			var cs [4]byte
			for i := range cs {
				cs[i] = byte(r.Intn(256))
			}
			qt := MakeQuadTables(cs[0], cs[1], cs[2], cs[3])
			acc := randBytes(r, 4*n)
			want := append([]byte(nil), acc...)
			for p := 0; p < n; p++ {
				for x := 0; x < 4; x++ {
					want[4*p+x] ^= Mul(cs[x], src[p])
				}
			}
			qt.MulAddQuad(acc, src)
			if !bytes.Equal(acc, want) {
				t.Fatalf("MulAddQuad n=%d cs=%v differs from reference", n, cs)
			}
		}
	}
}

func TestMulAddPairMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		for trial := 0; trial < 8; trial++ {
			c0, c1 := byte(r.Intn(256)), byte(r.Intn(256))
			pt := MakePairTables(c0, c1)
			acc := randBytes(r, 2*n)
			want := append([]byte(nil), acc...)
			for p := 0; p < n; p++ {
				want[2*p] ^= Mul(c0, src[p])
				want[2*p+1] ^= Mul(c1, src[p])
			}
			pt.MulAddPair(acc, src)
			if !bytes.Equal(acc, want) {
				t.Fatalf("MulAddPair n=%d c0=%d c1=%d differs", n, c0, c1)
			}
		}
	}
}

func TestDeinterleaveRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	for _, n := range kernelLengths {
		acc := randBytes(r, 4*n)
		d := make([][]byte, 4)
		for i := range d {
			d[i] = randBytes(r, n) // overwritten: stale content must not leak
		}
		Deinterleave4(acc, d[0], d[1], d[2], d[3])
		for p := 0; p < n; p++ {
			for x := 0; x < 4; x++ {
				if d[x][p] != acc[4*p+x] {
					t.Fatalf("Deinterleave4 n=%d row %d pos %d wrong", n, x, p)
				}
			}
		}

		acc2 := randBytes(r, 2*n)
		Deinterleave2(acc2, d[0][:n], d[1][:n])
		for p := 0; p < n; p++ {
			if d[0][p] != acc2[2*p] || d[1][p] != acc2[2*p+1] {
				t.Fatalf("Deinterleave2 n=%d pos %d wrong", n, p)
			}
		}
	}
}

func TestMulAdd4MatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(27))
	for _, n := range kernelLengths {
		src := randBytes(r, n)
		var cs [4]byte
		for i := range cs {
			cs[i] = byte(r.Intn(256))
		}
		want := make([][]byte, 4)
		got := make([][]byte, 4)
		for x := range want {
			init := randBytes(r, n)
			want[x] = append([]byte(nil), init...)
			got[x] = append([]byte(nil), init...)
			RefMulSliceAdd(cs[x], want[x], src)
		}
		MulAdd4(cs[0], cs[1], cs[2], cs[3], got[0], got[1], got[2], got[3], src)
		for x := range got {
			if !bytes.Equal(got[x], want[x]) {
				t.Fatalf("MulAdd4 n=%d row %d differs", n, x)
			}
		}
		MulAdd2(cs[0], cs[1], got[0], got[1], src)
		RefMulSliceAdd(cs[0], want[0], src)
		RefMulSliceAdd(cs[1], want[1], src)
		if !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
			t.Fatalf("MulAdd2 n=%d differs", n)
		}
	}
}

func TestXorInto(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	for _, n := range kernelLengths {
		for srcCount := 0; srcCount <= 5; srcCount++ {
			srcs := make([][]byte, srcCount)
			for j := range srcs {
				srcs[j] = randBytes(r, n)
			}
			want := make([]byte, n)
			for j := range srcs {
				for i := range want {
					want[i] ^= srcs[j][i]
				}
			}
			dst := randBytes(r, n) // must be overwritten, not accumulated
			XorInto(dst, srcs...)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XorInto n=%d srcs=%d wrong", n, srcCount)
			}
		}
	}
}

func TestKernelPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	qt := MakeQuadTables(1, 2, 3, 4)
	expectPanic("MulAddQuad short acc", func() { qt.MulAddQuad(make([]byte, 8), make([]byte, 8)) })
	pt := MakePairTables(1, 2)
	expectPanic("MulAddPair short acc", func() { pt.MulAddPair(make([]byte, 8), make([]byte, 8)) })
	expectPanic("Deinterleave4 ragged", func() {
		Deinterleave4(make([]byte, 32), make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 7))
	})
	expectPanic("Deinterleave4 short acc", func() {
		Deinterleave4(make([]byte, 31), make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 8))
	})
	expectPanic("MulAdd4 ragged", func() {
		MulAdd4(1, 2, 3, 4, make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 7), make([]byte, 8))
	})
	expectPanic("MulAdd2 ragged", func() {
		MulAdd2(1, 2, make([]byte, 8), make([]byte, 7), make([]byte, 8))
	})
	expectPanic("XorInto ragged", func() { XorInto(make([]byte, 8), make([]byte, 7)) })
}

// FuzzMulSliceAdd pins the word-parallel and SWAR single-coefficient
// kernels byte-for-byte against the scalar reference on arbitrary
// (coefficient, destination, source) inputs, including unaligned
// lengths.
func FuzzMulSliceAdd(f *testing.F) {
	f.Add(uint8(0x57), []byte("hello world, this is 21b"), []byte{1})
	f.Add(uint8(0), []byte{}, []byte{})
	f.Add(uint8(1), bytes.Repeat([]byte{0xff}, 65), []byte{9})
	f.Add(uint8(0x8e), bytes.Repeat([]byte{0xa5}, 63), bytes.Repeat([]byte{0x5a}, 9))
	f.Fuzz(func(t *testing.T, c uint8, src, dstSeed []byte) {
		dst := make([]byte, len(src))
		for i := range dst {
			if len(dstSeed) > 0 {
				dst[i] = dstSeed[i%len(dstSeed)]
			}
		}
		want := append([]byte(nil), dst...)
		RefMulSliceAdd(c, want, src)

		got := append([]byte(nil), dst...)
		MulSliceAdd(c, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSliceAdd c=%d len=%d diverges from scalar reference", c, len(src))
		}

		wt := MakeWordTables(c)
		got2 := append([]byte(nil), dst...)
		wt.MulSliceAdd(got2, src)
		if !bytes.Equal(got2, want) {
			t.Fatalf("WordTables.MulSliceAdd c=%d len=%d diverges from scalar reference", c, len(src))
		}

		wantMul := make([]byte, len(src))
		RefMulSlice(c, wantMul, src)
		gotMul := append([]byte(nil), dst...)
		MulSlice(c, gotMul, src)
		if !bytes.Equal(gotMul, wantMul) {
			t.Fatalf("MulSlice c=%d len=%d diverges from scalar reference", c, len(src))
		}
		gotMul2 := append([]byte(nil), dst...)
		wt.MulSlice(gotMul2, src)
		if !bytes.Equal(gotMul2, wantMul) {
			t.Fatalf("WordTables.MulSlice c=%d len=%d diverges from scalar reference", c, len(src))
		}
	})
}

// FuzzMulAddFused pins the packed pair/quad interleaved kernels and the
// direct MulAdd2/MulAdd4 kernels against the scalar reference.
func FuzzMulAddFused(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(4), []byte("fused kernel seed data .."), []byte{7})
	f.Add(uint8(0), uint8(0xff), uint8(0x80), uint8(0x01), []byte{}, []byte{})
	f.Add(uint8(0x1d), uint8(0x57), uint8(0x8e), uint8(0xc3), bytes.Repeat([]byte{3}, 65), []byte{0xee, 2})
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3 uint8, src, seed []byte) {
		n := len(src)
		mkInit := func(mult int) []byte {
			b := make([]byte, mult*n)
			for i := range b {
				if len(seed) > 0 {
					b[i] = seed[i%len(seed)]
				}
			}
			return b
		}
		cs := [4]byte{c0, c1, c2, c3}

		// Quad interleaved vs reference.
		qt := MakeQuadTables(c0, c1, c2, c3)
		acc := mkInit(4)
		wantAcc := append([]byte(nil), acc...)
		for p := 0; p < n; p++ {
			for x := 0; x < 4; x++ {
				wantAcc[4*p+x] ^= Mul(cs[x], src[p])
			}
		}
		qt.MulAddQuad(acc, src)
		if !bytes.Equal(acc, wantAcc) {
			t.Fatalf("MulAddQuad diverges, n=%d cs=%v", n, cs)
		}

		// Pair interleaved vs reference.
		pt := MakePairTables(c0, c1)
		acc2 := mkInit(2)
		wantAcc2 := append([]byte(nil), acc2...)
		for p := 0; p < n; p++ {
			wantAcc2[2*p] ^= Mul(c0, src[p])
			wantAcc2[2*p+1] ^= Mul(c1, src[p])
		}
		pt.MulAddPair(acc2, src)
		if !bytes.Equal(acc2, wantAcc2) {
			t.Fatalf("MulAddPair diverges, n=%d", n)
		}

		// Direct fused vs reference.
		want := make([][]byte, 4)
		got := make([][]byte, 4)
		for x := range want {
			init := mkInit(1)
			want[x] = append([]byte(nil), init...)
			got[x] = append([]byte(nil), init...)
			RefMulSliceAdd(cs[x], want[x], src)
		}
		MulAdd4(c0, c1, c2, c3, got[0], got[1], got[2], got[3], src)
		for x := range got {
			if !bytes.Equal(got[x], want[x]) {
				t.Fatalf("MulAdd4 row %d diverges, n=%d", x, n)
			}
		}

		// Deinterleave4 must invert the interleaving.
		rows := make([][]byte, 4)
		for x := range rows {
			rows[x] = make([]byte, n)
		}
		Deinterleave4(wantAcc, rows[0], rows[1], rows[2], rows[3])
		for p := 0; p < n; p++ {
			for x := 0; x < 4; x++ {
				if rows[x][p] != wantAcc[4*p+x] {
					t.Fatalf("Deinterleave4 wrong at row %d pos %d", x, p)
				}
			}
		}
	})
}

func BenchmarkMulSliceAdd64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(src)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		MulSliceAdd(0x57, dst, src)
	}
}

func BenchmarkRefMulSliceAdd64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(src)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		RefMulSliceAdd(0x57, dst, src)
	}
}

func BenchmarkWordTablesMulSliceAdd64K(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(7)).Read(src)
	wt := MakeWordTables(0x57)
	b.SetBytes(64 << 10)
	for i := 0; i < b.N; i++ {
		wt.MulSliceAdd(dst, src)
	}
}

// BenchmarkMulAddQuad64K reports bytes/op as 4*n: one op updates four
// parity rows, so MB/s is directly comparable with the single-row
// kernels above.
func BenchmarkMulAddQuad64K(b *testing.B) {
	const n = 64 << 10
	src := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(src)
	acc := make([]byte, 4*n)
	qt := MakeQuadTables(0x57, 0x8e, 0x3b, 0xc3)
	b.SetBytes(4 * n)
	for i := 0; i < b.N; i++ {
		qt.MulAddQuad(acc, src)
	}
}

func BenchmarkMulAdd4_64K(b *testing.B) {
	const n = 64 << 10
	src := make([]byte, n)
	rand.New(rand.NewSource(7)).Read(src)
	d := make([][]byte, 4)
	for i := range d {
		d[i] = make([]byte, n)
	}
	b.SetBytes(4 * n)
	for i := 0; i < b.N; i++ {
		MulAdd4(0x57, 0x8e, 0x3b, 0xc3, d[0], d[1], d[2], d[3], src)
	}
}

func BenchmarkDeinterleave4_64K(b *testing.B) {
	const n = 64 << 10
	acc := make([]byte, 4*n)
	rand.New(rand.NewSource(7)).Read(acc)
	d := make([][]byte, 4)
	for i := range d {
		d[i] = make([]byte, n)
	}
	b.SetBytes(4 * n)
	for i := 0; i < b.N; i++ {
		Deinterleave4(acc, d[0], d[1], d[2], d[3])
	}
}
