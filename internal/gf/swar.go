package gf

import "encoding/binary"

// WordTables is the 64-bit SWAR form of the VPSHUFB split tables: the
// eight comb multipliers c*2^i packed for lane-parallel use. Because GF
// multiplication is linear over the bits of the operand,
//
//	c*b = XOR_{i : bit i of b set} c*2^i,
//
// and the comb multipliers are exactly the power-of-two entries of the
// nibble split tables (Lo[1<<i] for the low nibble, Hi[1<<i] for the
// high), a packed word of 8 source bytes is multiplied by c with eight
// bit-plane extractions and eight integer multiplies — no table loads
// in the inner loop. This is the pure-register analogue of the VPSHUFB
// kernel; see DESIGN.md for how it compares with the packed split
// tables (PairTables/QuadTables) that the encoder actually uses.
type WordTables struct {
	comb [8]uint64
}

// lanesLSB has the low bit of every byte lane set.
const lanesLSB = 0x0101010101010101

// MakeWordTables derives the SWAR comb for coefficient c from its
// nibble split tables.
func MakeWordTables(c byte) WordTables {
	nt := MakeNibbleTables(c)
	var t WordTables
	for i := 0; i < 4; i++ {
		t.comb[i] = uint64(nt.Lo[1<<i])
		t.comb[4+i] = uint64(nt.Hi[1<<i])
	}
	return t
}

// Mul64 multiplies all eight byte lanes of w by the coefficient.
func (t *WordTables) Mul64(w uint64) uint64 {
	var p uint64
	p ^= (w & lanesLSB) * t.comb[0]
	p ^= (w >> 1 & lanesLSB) * t.comb[1]
	p ^= (w >> 2 & lanesLSB) * t.comb[2]
	p ^= (w >> 3 & lanesLSB) * t.comb[3]
	p ^= (w >> 4 & lanesLSB) * t.comb[4]
	p ^= (w >> 5 & lanesLSB) * t.comb[5]
	p ^= (w >> 6 & lanesLSB) * t.comb[6]
	p ^= (w >> 7 & lanesLSB) * t.comb[7]
	return p
}

// MulSlice sets dst[i] = c*src[i] eight bytes per step using the SWAR
// comb. dst and src must share a length.
func (t *WordTables) MulSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: WordTables.MulSlice length mismatch")
	}
	for len(src) >= 8 && len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst, t.Mul64(binary.LittleEndian.Uint64(src)))
		src, dst = src[8:], dst[8:]
	}
	for i, b := range src {
		var p byte
		for bit := 0; bit < 8; bit++ {
			if b>>uint(bit)&1 != 0 {
				p ^= byte(t.comb[bit])
			}
		}
		dst[i] = p
	}
}

// MulSliceAdd accumulates dst[i] ^= c*src[i] eight bytes per step using
// the SWAR comb. dst and src must share a length.
func (t *WordTables) MulSliceAdd(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf: WordTables.MulSliceAdd length mismatch")
	}
	for len(src) >= 8 && len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst,
			binary.LittleEndian.Uint64(dst)^t.Mul64(binary.LittleEndian.Uint64(src)))
		src, dst = src[8:], dst[8:]
	}
	for i, b := range src {
		var p byte
		for bit := 0; bit < 8; bit++ {
			if b>>uint(bit)&1 != 0 {
				p ^= byte(t.comb[bit])
			}
		}
		dst[i] ^= p
	}
}
