package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x5a, 0xa5) != 0xff {
		t.Fatalf("Add(0x5a,0xa5) = %#x, want 0xff", Add(0x5a, 0xa5))
	}
	if Add(7, 7) != 0 {
		t.Fatal("a+a must be 0 in GF(2^8)")
	}
}

func TestMulIdentity(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("%d * 1 != %d", a, a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("%d * 0 != 0", a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := a; b < 256; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul not commutative at %d,%d", a, b)
			}
		}
	}
}

func TestMulAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		a, b, c := byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("Mul not associative at %d,%d,%d", a, b, c)
		}
	}
}

func TestDistributive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		a, b, c := byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))
		if Mul(a, b^c) != Mul(a, b)^Mul(a, c) {
			t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
		}
	}
}

// Reference slow multiply: carry-less multiply then reduce by Poly.
func slowMul(a, b byte) byte {
	var p uint16
	ua, ub := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if ub&1 != 0 {
			p ^= ua
		}
		ub >>= 1
		ua <<= 1
		if ua&0x100 != 0 {
			ua ^= Poly
		}
	}
	return byte(p)
}

func TestMulMatchesPolynomialReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,a) != Inv(a) for a=%d", a)
		}
	}
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div roundtrip fails at %d/%d", a, b)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestExpLogRoundtrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("alpha does not generate the multiplicative group: %d distinct powers", len(seen))
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for n := 0; n < 16; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestNibbleTablesMatchMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		nt := MakeNibbleTables(byte(c))
		for b := 0; b < 256; b++ {
			if got, want := nt.Mul(byte(b)), Mul(byte(c), byte(b)); got != want {
				t.Fatalf("nibble mul mismatch c=%d b=%d: got %d want %d", c, b, got, want)
			}
		}
	}
}

func TestAddSlice(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		a := make([]byte, n)
		b := make([]byte, n)
		r.Read(a)
		r.Read(b)
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] ^ b[i]
		}
		AddSlice(a, b)
		if !bytes.Equal(a, want) {
			t.Fatalf("AddSlice wrong for n=%d", n)
		}
	}
}

func TestAddSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddSlice(make([]byte, 3), make([]byte, 4))
}

func TestMulSliceAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	src := make([]byte, 513)
	r.Read(src)
	dst := make([]byte, len(src))
	for c := 0; c < 256; c++ {
		MulSlice(byte(c), dst, src)
		for i := range src {
			if dst[i] != Mul(byte(c), src[i]) {
				t.Fatalf("MulSlice c=%d differs at %d", c, i)
			}
		}
	}
}

func TestMulSliceAddAgainstScalar(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := make([]byte, 257)
	r.Read(src)
	for c := 0; c < 256; c++ {
		dst := make([]byte, len(src))
		r.Read(dst)
		want := make([]byte, len(src))
		for i := range want {
			want[i] = dst[i] ^ Mul(byte(c), src[i])
		}
		MulSliceAdd(byte(c), dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSliceAdd c=%d mismatch", c)
		}
	}
}

func TestDotSlice(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const n = 128
	srcs := make([][]byte, 5)
	coeffs := make([]byte, 5)
	for j := range srcs {
		srcs[j] = make([]byte, n)
		r.Read(srcs[j])
		coeffs[j] = byte(r.Intn(256))
	}
	dst := make([]byte, n)
	r.Read(dst) // DotSlice must overwrite, not accumulate
	DotSlice(coeffs, dst, srcs)
	for i := 0; i < n; i++ {
		var want byte
		for j := range srcs {
			want ^= Mul(coeffs[j], srcs[j][i])
		}
		if dst[i] != want {
			t.Fatalf("DotSlice differs at %d", i)
		}
	}
}

// Property: multiplication by a fixed nonzero c is a bijection on slices.
func TestQuickMulSliceBijective(t *testing.T) {
	f := func(data []byte, cRaw byte) bool {
		c := cRaw | 1 // ensure nonzero
		enc := make([]byte, len(data))
		MulSlice(c, enc, data)
		dec := make([]byte, len(data))
		MulSlice(Inv(c), dec, enc)
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (a+b)*c distributes over slices.
func TestQuickSliceDistributive(t *testing.T) {
	f := func(a, b []byte, c byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		sum := make([]byte, n)
		copy(sum, a)
		AddSlice(sum, b)
		left := make([]byte, n)
		MulSlice(c, left, sum)
		ra := make([]byte, n)
		MulSlice(c, ra, a)
		rb := make([]byte, n)
		MulSlice(c, rb, b)
		AddSlice(ra, rb)
		return bytes.Equal(left, ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulSliceAdd4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSliceAdd(0x57, dst, src)
	}
}

func BenchmarkAddSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddSlice(dst, src)
	}
}
