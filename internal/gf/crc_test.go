package gf

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
)

func TestCRC32CMatchesStdlib(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	r := rand.New(rand.NewSource(31))
	for _, n := range kernelLengths {
		p := randBytes(r, n)
		if got, want := CRC32C(p), crc32.Checksum(p, table); got != want {
			t.Fatalf("CRC32C n=%d: got %08x want %08x", n, got, want)
		}
	}
}

// The encode plan checksums each block tile-by-tile; folding the tiles
// through CRC32CUpdate must equal one Checksum over the whole block.
func TestCRC32CUpdateFoldsTiles(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for _, n := range []int{0, 1, 100, 4096, 4097, 3*4096 + 65} {
		p := randBytes(r, n)
		for _, tile := range []int{1, 7, 4096} {
			var crc uint32
			for off := 0; off < n; off += tile {
				end := off + tile
				if end > n {
					end = n
				}
				crc = CRC32CUpdate(crc, p[off:end])
			}
			if want := CRC32C(p); crc != want {
				t.Fatalf("n=%d tile=%d: folded %08x want %08x", n, tile, crc, want)
			}
		}
	}
}

func TestMulSliceXorMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for _, n := range kernelLengths {
		a := randBytes(r, n)
		b := randBytes(r, n)
		for c := 0; c < 256; c += 7 {
			want := make([]byte, n)
			RefMulSliceXor(byte(c), want, a, b)
			got := make([]byte, n)
			MulSliceXor(byte(c), got, a, b)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSliceXor c=%d n=%d differs from reference", c, n)
			}
			// In-place form: dst aliases a.
			inPlace := append([]byte(nil), a...)
			MulSliceXor(byte(c), inPlace, inPlace, b)
			if !bytes.Equal(inPlace, want) {
				t.Fatalf("MulSliceXor in-place c=%d n=%d differs from reference", c, n)
			}
		}
	}
}

func TestMulSliceXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	MulSliceXor(3, make([]byte, 4), make([]byte, 4), make([]byte, 5))
}

func FuzzMulSliceXor(f *testing.F) {
	f.Add(uint8(2), []byte("hello world, this is a tile"), []byte("another source block here!!"))
	f.Fuzz(func(t *testing.T, c uint8, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		want := make([]byte, n)
		RefMulSliceXor(c, want, a, b)
		got := make([]byte, n)
		MulSliceXor(c, got, a, b)
		if !bytes.Equal(got, want) {
			t.Fatalf("MulSliceXor c=%d n=%d differs from reference", c, n)
		}
	})
}
